/**
 * @file
 * Fig. 13 — power breakdown with InFO-SoW at 12.8 Tbps/mm.
 */

#include "bench_power_breakdown_common.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 13", "power breakdown with InFO-SoW");
    bench::printPowerBreakdown(tech::infoSow());
    std::cout << "\nPaper: the 8192-port InFO-SoW package draws "
                 "92.5 kW (1.5 pJ/b links), well above the Si-IF "
                 "design.\n";
    return 0;
}
