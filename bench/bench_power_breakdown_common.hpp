/**
 * @file
 * Shared row emitter for the power-breakdown figures (10, 11, 13).
 */

#ifndef WSS_BENCH_POWER_BREAKDOWN_COMMON_HPP
#define WSS_BENCH_POWER_BREAKDOWN_COMMON_HPP

#include "bench_common.hpp"
#include "core/radix_solver.hpp"

namespace wss::bench {

/// Solve every (substrate, external I/O) point for one WSI tech and
/// print the power breakdown the way Figs. 10/11/13 stack it.
inline void
printPowerBreakdown(const tech::WsiTechnology &wsi)
{
    Table table("Power breakdown, " + wsi.name + " (" +
                    Table::num(wsi.totalBandwidthDensity(), 0) +
                    " Gbps/mm)",
                {"substrate (mm)", "external I/O", "ports",
                 "SSC core (kW)", "internal I/O (kW)",
                 "external I/O (kW)", "total (kW)", "I/O share %",
                 "W/mm^2"});
    for (double side : kSubstrates) {
        for (const auto &ext : externalIoSchemes()) {
            const auto result =
                core::RadixSolver(paperSpec(side, wsi, ext))
                    .solveMaxPorts();
            const auto &p = result.best.power;
            table.addRow({Table::num(side, 0), ext.name,
                          Table::num(result.best.ports),
                          Table::num(p.ssc_core / 1000.0, 2),
                          Table::num(p.internal_io / 1000.0, 2),
                          Table::num(p.external_io / 1000.0, 2),
                          Table::num(p.total() / 1000.0, 2),
                          Table::num(100.0 * p.ioFraction(), 1),
                          Table::num(result.best.power_density, 3)});
        }
    }
    table.print(std::cout);
}

} // namespace wss::bench

#endif // WSS_BENCH_POWER_BREAKDOWN_COMMON_HPP
