/**
 * @file
 * Fig. 17 — maximum ports when reducing the SSC radix (same die
 * area) at 3200 Gbps/mm internal density.
 */

#include "bench_deradix_common.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 17", "subswitch deradixing at 3200 Gbps/mm");
    bench::printDeradixSweep(tech::siIf());
    std::cout << "\nPaper: halving the SSC radix (256 -> 128) doubles "
                 "the 300 mm switch from 2048 to 4096 ports by freeing "
                 "beachfront\nfor feedthroughs; quartering overshoots "
                 "(area binds) and falls back.\n";
    return 0;
}
