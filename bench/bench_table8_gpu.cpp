/**
 * @file
 * Table VIII — a 2048-GPU singular-GPU cluster on one waferscale
 * switch versus a 2-layer NVSwitch network (DGX GH200).
 */

#include "bench_common.hpp"
#include "sysarch/use_cases.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Table VIII",
                  "singular GPU cluster: waferscale vs NVSwitch");

    for (const auto &[gpus, ru] :
         {std::pair{2048L, 20}, std::pair{1024L, 11}}) {
        const auto cmp = sysarch::singularGpuCluster(gpus, ru);
        Table table(std::string(gpus == 2048 ? "300 mm" : "200 mm") +
                        " waferscale switch, 800G per GPU",
                    {"metric", cmp.waferscale.name,
                     cmp.conventional.name});
        table.addRow({"# of GPUs", Table::num(cmp.waferscale.endpoints),
                      Table::num(cmp.conventional.endpoints)});
        table.addRow({"# of switches",
                      Table::num(cmp.waferscale.switches),
                      Table::num(cmp.conventional.switches)});
        table.addRow({"# of cables", Table::num(cmp.waferscale.cables),
                      Table::num(cmp.conventional.cables)});
        table.addRow({"hop count",
                      Table::num(cmp.waferscale.worst_case_hops),
                      Table::num(cmp.conventional.worst_case_hops)});
        table.addRow({"size (RU)",
                      Table::num(cmp.waferscale.rack_units),
                      Table::num(cmp.conventional.rack_units)});
        table.addRow({"port bandwidth (Gbps)",
                      Table::num(cmp.waferscale.port_bandwidth, 0),
                      Table::num(cmp.conventional.port_bandwidth, 0)});
        table.addRow({"bisection bandwidth (Tbps)",
                      Table::num(cmp.waferscale.bisection_tbps, 1),
                      Table::num(cmp.conventional.bisection_tbps, 1)});
        table.print(std::cout);
    }
    std::cout << "\nWith 2048 GPUs x 96 GB-class HBM, the shared pool "
                 "passes the petabyte mark (the paper quotes 1.152 PB) "
                 "at a\nsingle switch hop — 8x the GPUs and 7x the "
                 "bisection of the NVSwitch build in one tenth the "
                 "rack space.\n";
    return 0;
}
