/**
 * @file
 * Fig. 5 — random mapping versus Algorithm 1 (pairwise exchange).
 *
 * For Clos fabrics of growing size mapped onto the wafer mesh, prints
 * the worst-case channel load C(M) of the best random placement and
 * of the optimized placement, plus the resulting available internal
 * bandwidth per port (the paper's improvement metric).
 */

#include "bench_common.hpp"
#include "mapping/pairwise_exchange.hpp"
#include "topology/clos.hpp"

#include <cmath>

int
main()
{
    using namespace wss;
    bench::banner("Figure 5",
                  "random mapping vs Algorithm 1 pairwise exchange");

    Table table("C(M) in Gbps per direction (lower is better)",
                {"ports", "chiplets", "grid", "random C(M)",
                 "optimized C(M)", "improvement %",
                 "per-port BW gain %"});

    const power::SscConfig ssc = power::tomahawk5(1);
    Rng rng(bench::envInt("WSS_BENCH_SEED", 1));
    for (std::int64_t ports : {1024, 2048, 4096, 8192}) {
        const auto topo = topology::buildFoldedClos({ports, ssc, 1});
        const int rows = static_cast<int>(
            std::ceil(std::sqrt(topo.nodeCount())));
        const int cols = (topo.nodeCount() + rows - 1) / rows;
        const mapping::WaferFloorplan fp(rows, cols, true,
                                         ssc.edgeLength());
        const auto result = mapping::searchBestMapping(
            topo, fp, true, rng,
            bench::envInt("WSS_BENCH_RESTARTS", 8));
        const double improvement =
            100.0 * (result.initial_max_edge_load -
                     result.max_edge_load) /
            result.initial_max_edge_load;
        // Per-port available bandwidth scales inversely with C(M).
        const double bw_gain =
            100.0 * (result.initial_max_edge_load /
                         result.max_edge_load -
                     1.0);
        table.addRow({Table::num(ports), Table::num(topo.nodeCount()),
                      std::to_string(rows) + "x" + std::to_string(cols),
                      Table::num(result.initial_max_edge_load, 0),
                      Table::num(result.max_edge_load, 0),
                      Table::num(improvement, 1),
                      Table::num(bw_gain, 1)});
    }
    table.print(std::cout);
    std::cout << "\nPaper: the heuristic improves worst-case per-port "
                 "internal bandwidth by 147.6% over an unoptimized\n"
                 "random initialization (our external-escape model "
                 "spreads load 4 ways, so random placements start\n"
                 "less congested and the measured gain is smaller; "
                 "the direction and mechanism match).\n";
    return 0;
}
