/**
 * @file
 * Fig. 8 — internal/external bandwidth utilization maps at the
 * maximum feasible radix, for SerDes @3200 and Optical @6400.
 *
 * Prints, per chiplet site, the utilization of its hottest adjacent
 * mesh edge (load / capacity) as a percentage grid; ring (I/O
 * chiplet) rows are marked separately, mirroring the paper's grey
 * squares.
 */

#include "bench_common.hpp"
#include "core/radix_solver.hpp"
#include "mapping/pairwise_exchange.hpp"

#include <cmath>
#include <cstdio>

namespace {

using namespace wss;

void
printUtilizationGrid(const core::DesignSpec &spec, std::int64_t ports)
{
    const core::RadixSolver solver(spec);
    const auto topo = solver.buildTopology(ports);
    const int rows = static_cast<int>(
        std::ceil(std::sqrt(topo.nodeCount())));
    const int cols = (topo.nodeCount() + rows - 1) / rows;
    const mapping::WaferFloorplan fp(rows, cols,
                                     spec.external_io.usesMeshForEscape(),
                                     spec.ssc.edgeLength());
    Rng rng(spec.seed);
    mapping::WaferMapping wm(topo, fp, fp.hasIoRing());
    const auto search = mapping::searchBestMapping(
        topo, fp, fp.hasIoRing(), rng, spec.mapping_restarts);
    wm.assign(search.assignment);

    const double capacity =
        fp.sscEdge() * spec.wsi.totalBandwidthDensity();
    const auto &loads = wm.edgeLoads();

    std::printf("%s, %s, %lld ports (%dx%d SSC grid + I/O ring):\n",
                spec.wsi.name.c_str(), spec.external_io.name.c_str(),
                static_cast<long long>(ports), rows, cols);
    std::printf("utilization of each site's hottest edge (%%), "
                "'.' = empty site\n");
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            const int site = fp.interiorSite(r, c);
            if (wm.nodeAt(site) < 0) {
                std::printf("   . ");
                continue;
            }
            double hottest = 0.0;
            for (int e : fp.edgesOf(site))
                hottest = std::max(hottest, loads[e]);
            std::printf("%4.0f ", 100.0 * hottest / capacity);
        }
        std::printf("\n");
    }
    // Ring (external I/O) utilization: load on the ring edges.
    double ring_max = 0.0, ring_sum = 0.0;
    int ring_edges = 0;
    for (int site = fp.interiorCount(); site < fp.siteCount(); ++site) {
        for (int e : fp.edgesOf(site)) {
            ring_max = std::max(ring_max, loads[e]);
            ring_sum += loads[e];
            ++ring_edges;
        }
    }
    if (ring_edges > 0) {
        std::printf("I/O ring edges: mean %.0f%%, max %.0f%% of edge "
                    "capacity\n",
                    100.0 * ring_sum / ring_edges / capacity,
                    100.0 * ring_max / capacity);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace wss;
    bench::banner("Figure 8",
                  "bandwidth utilization of internal and external I/O");

    // SerDes at its maximum feasible radix, 3200 Gbps/mm.
    {
        core::DesignSpec spec =
            bench::paperSpec(300.0, tech::siIf(), tech::serdes());
        const auto result = core::RadixSolver(spec).solveMaxPorts();
        printUtilizationGrid(spec, result.best.ports);
    }
    // Optical I/O at its maximum feasible radix, 6400 Gbps/mm.
    {
        core::DesignSpec spec =
            bench::paperSpec(300.0, tech::siIf2x(), tech::opticalIo());
        const auto result = core::RadixSolver(spec).solveMaxPorts();
        printUtilizationGrid(spec, result.best.ports);
    }
    std::cout << "Paper: SerDes leaves the fabric nearly idle (its "
                 "periphery is the bottleneck), while Optical I/O at\n"
                 "6400 Gbps/mm drives interior edges close to "
                 "saturation.\n";
    return 0;
}
