/**
 * @file
 * Ablation — oblivious versus credit-adaptive ECMP spine selection.
 *
 * The paper's Booksim runs use oblivious random ECMP over the Clos
 * uplinks; a waferscale switch could cheaply implement adaptive
 * selection because congestion state is on-die. This ablation
 * quantifies what that design choice is worth on an adversarial
 * permutation and on uniform traffic.
 */

#include "bench_common.hpp"
#include "sim/load_sweep.hpp"
#include "topology/clos.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Ablation", "oblivious vs adaptive ECMP routing");

    const std::int64_t ports = bench::envInt("WSS_BENCH_PORTS", 512);
    const auto topo =
        topology::buildFoldedClos({ports, power::tomahawk5(1), 1});
    const bool fast = bench::fastMode();

    sim::SimConfig cfg;
    cfg.warmup = fast ? 300 : 1000;
    cfg.measure = fast ? 1000 : 2500;
    cfg.drain_limit = fast ? 3000 : 6000;
    cfg.seed = bench::envInt("WSS_BENCH_SEED", 1);

    Table table("Saturation throughput and latency at 0.6 load",
                {"pattern", "routing", "zero-load", "lat@0.6",
                 "saturation"});
    for (const char *pattern : {"uniform", "transpose", "tornado"}) {
        for (bool adaptive : {false, true}) {
            sim::NetworkSpec spec;
            spec.vcs = 16;
            spec.buffer_per_port = 32;
            spec.rc_delay_ingress = 2;
            spec.rc_delay_transit = 2;
            spec.pipeline_delay = 9;
            spec.terminal_link_latency = 8;
            spec.internal_link_latency = 1;
            spec.adaptive_routing = adaptive;
            const auto sweep = sim::sweepLoad(
                [&] {
                    return std::make_unique<sim::Network>(topo, spec,
                                                          cfg.seed);
                },
                [&](double rate) {
                    return std::make_unique<sim::SyntheticWorkload>(
                        sim::makeTraffic(pattern,
                                         static_cast<int>(ports)),
                        rate, 1);
                },
                {0.05, 0.3, 0.6, 0.8, 0.95}, cfg);
            table.addRow({pattern, adaptive ? "adaptive" : "oblivious",
                          Table::num(sweep.zero_load_latency, 1),
                          Table::num(sweep.points[2].avg_latency, 1),
                          Table::num(sweep.saturation_throughput, 3)});
        }
    }
    table.print(std::cout);
    std::cout << "\nAdaptive spine selection helps most when the "
                 "permutation concentrates load on a few uplinks; "
                 "uniform\ntraffic is already balanced, so the gain "
                 "there bounds the allocator noise.\n";
    return 0;
}
