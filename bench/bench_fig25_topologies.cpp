/**
 * @file
 * Fig. 25 — non-Clos topologies: maximum 200G ports (a) uncon-
 * strained (area only), (b) with bandwidth/power constraints, and
 * (c) with the optimizations (6400 Gbps/mm links + heterogeneous
 * design where applicable).
 */

#include "bench_common.hpp"
#include "core/radix_solver.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 25",
                  "Clos vs Mesh / Butterfly / Flattened Butterfly / "
                  "Dragonfly at 300 mm");

    const core::TopologyKind kinds[] = {
        core::TopologyKind::Clos, core::TopologyKind::Butterfly,
        core::TopologyKind::Dragonfly,
        core::TopologyKind::FlattenedButterfly,
        core::TopologyKind::Mesh};

    Table table("Maximum 200G ports at 300 mm (Optical I/O)",
                {"topology", "(a) ideal", "(b) constrained 3200",
                 "(c) optimized 6400", "vs one TH-5 (c)"});
    for (const auto kind : kinds) {
        // (a) area only.
        core::DesignSpec ideal = bench::paperSpec(
            300.0, tech::siIf(), tech::opticalIo());
        ideal.topology = kind;
        ideal.area_only = true;
        const auto a = core::RadixSolver(ideal).solveMaxPorts();

        // (b) all constraints at the 3200 Gbps/mm baseline, water
        // cooling envelope.
        core::DesignSpec constrained = bench::paperSpec(
            300.0, tech::siIf(), tech::opticalIo());
        constrained.topology = kind;
        constrained.cooling = tech::waterCooling();
        const auto b = core::RadixSolver(constrained).solveMaxPorts();

        // (c) optimized: overclocked 6400 Gbps/mm links plus the
        // heterogeneous leaves for the indirect topologies.
        core::DesignSpec optimized = bench::paperSpec(
            300.0, tech::siIf2x(), tech::opticalIo());
        optimized.topology = kind;
        optimized.cooling = tech::waterCooling();
        if (kind == core::TopologyKind::Clos)
            optimized.leaf_split = 4;
        const auto c = core::RadixSolver(optimized).solveMaxPorts();

        table.addRow(
            {std::string(core::toString(kind)),
             Table::num(a.best.ports), Table::num(b.best.ports),
             Table::num(c.best.ports),
             Table::num(static_cast<double>(c.best.ports) / 256.0, 1) +
                 "x"});
    }
    table.print(std::cout);
    std::cout << "\nPaper: all topologies see order-of-magnitude ideal "
                 "gains (19x-44x); constraints cut them dramatically "
                 "and the\noptimizations reclaim much of it. Mesh and "
                 "butterfly end ~10% above Clos (easy 2D layout / "
                 "thin spine) but\nwith far worse bisection and "
                 "blocking; dragonfly and flattened butterfly land "
                 "1.7x-3.2x below Clos.\n";
    return 0;
}
