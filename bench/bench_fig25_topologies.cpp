/**
 * @file
 * Fig. 25 — non-Clos topologies: maximum 200G ports (a) uncon-
 * strained (area only), (b) with bandwidth/power constraints, and
 * (c) with the optimizations (6400 Gbps/mm links + heterogeneous
 * design where applicable).
 *
 * The 15 (topology x variant) solver calls are independent, so they
 * run as generic tasks of one exec::Campaign on a work-stealing
 * pool (WSS_JOBS threads); each task writes its cell of a
 * preallocated result grid — no locks. Per-task timing lands in
 * WSS_BENCH_CSV / WSS_BENCH_JSON when set.
 */

#include "bench_common.hpp"
#include "core/radix_solver.hpp"
#include "exec/campaign.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 25",
                  "Clos vs Mesh / Butterfly / Flattened Butterfly / "
                  "Dragonfly at 300 mm");

    const core::TopologyKind kinds[] = {
        core::TopologyKind::Clos, core::TopologyKind::Butterfly,
        core::TopologyKind::Dragonfly,
        core::TopologyKind::FlattenedButterfly,
        core::TopologyKind::Mesh};
    constexpr int kVariants = 3; // (a) ideal, (b) constrained, (c) opt

    // One solver spec per (kind, variant) cell.
    auto make_spec = [](core::TopologyKind kind, int variant) {
        core::DesignSpec spec;
        switch (variant) {
        case 0: // (a) area only.
            spec = bench::paperSpec(300.0, tech::siIf(),
                                    tech::opticalIo());
            spec.area_only = true;
            break;
        case 1: // (b) all constraints at the 3200 Gbps/mm baseline,
                // water cooling envelope.
            spec = bench::paperSpec(300.0, tech::siIf(),
                                    tech::opticalIo());
            spec.cooling = tech::waterCooling();
            break;
        default: // (c) optimized: overclocked 6400 Gbps/mm links plus
                 // the heterogeneous leaves for the indirect
                 // topologies.
            spec = bench::paperSpec(300.0, tech::siIf2x(),
                                    tech::opticalIo());
            spec.cooling = tech::waterCooling();
            if (kind == core::TopologyKind::Clos)
                spec.leaf_split = 4;
            break;
        }
        spec.topology = kind;
        return spec;
    };

    std::vector<std::int64_t> port_grid(std::size(kinds) * kVariants);
    exec::Campaign campaign;
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
        for (int variant = 0; variant < kVariants; ++variant) {
            const auto spec = make_spec(kinds[k], variant);
            auto *slot = &port_grid[k * kVariants +
                                    static_cast<std::size_t>(variant)];
            campaign.addTask(
                std::string(core::toString(kinds[k])) + "/" +
                    static_cast<char>('a' + variant),
                [spec, slot] {
                    *slot = core::RadixSolver(spec)
                                .solveMaxPorts()
                                .best.ports;
                });
        }
    }

    exec::ThreadPool pool(bench::benchJobs());
    const auto result = campaign.run(&pool);

    Table table("Maximum 200G ports at 300 mm (Optical I/O)",
                {"topology", "(a) ideal", "(b) constrained 3200",
                 "(c) optimized 6400", "vs one TH-5 (c)"});
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
        const std::int64_t a = port_grid[k * kVariants];
        const std::int64_t b = port_grid[k * kVariants + 1];
        const std::int64_t c = port_grid[k * kVariants + 2];
        table.addRow(
            {std::string(core::toString(kinds[k])), Table::num(a),
             Table::num(b), Table::num(c),
             Table::num(static_cast<double>(c) / 256.0, 1) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nPaper: all topologies see order-of-magnitude ideal "
                 "gains (19x-44x); constraints cut them dramatically "
                 "and the\noptimizations reclaim much of it. Mesh and "
                 "butterfly end ~10% above Clos (easy 2D layout / "
                 "thin spine) but\nwith far worse bisection and "
                 "blocking; dragonfly and flattened butterfly land "
                 "1.7x-3.2x below Clos.\n";
    bench::reportCampaign(result);
    return 0;
}
