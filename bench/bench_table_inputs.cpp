/**
 * @file
 * Tables I, II, IV, V — the technology inputs the evaluation runs on,
 * printed from the models so every constant is auditable.
 */

#include "bench_common.hpp"
#include "tech/link_latency.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Tables I / II / IV / V", "model input parameters");

    Table wsi_table("Table I — WSI technologies",
                    {"technology", "wire pitch (um)",
                     "Gbps/mm/layer", "layers", "total Gbps/mm",
                     "pJ/bit", "hop latency (ns)", "max side (mm)"});
    for (const auto &t :
         {tech::siliconInterposer(), tech::siIf(), tech::siIf2x(),
          tech::infoSow()}) {
        wsi_table.addRow({t.name, Table::num(t.wire_pitch_um, 1),
                          Table::num(t.bandwidth_density_per_layer, 0),
                          Table::num(t.signal_layers),
                          Table::num(t.totalBandwidthDensity(), 0),
                          Table::num(t.energy_per_bit, 2),
                          Table::num(t.hop_latency_ns, 1),
                          Table::num(t.max_substrate_side_mm, 0)});
    }
    wsi_table.print(std::cout);

    Table ssc_table("Table II — Tomahawk-5 sub-switch configurations",
                    {"configuration", "radix", "line rate (Gbps)",
                     "area (mm^2)", "core power (W)",
                     "total BW (Tbps)"});
    for (int cfg : {1, 2, 3}) {
        const auto ssc = power::tomahawk5(cfg);
        ssc_table.addRow({ssc.name, Table::num(ssc.radix),
                          Table::num(ssc.line_rate, 0),
                          Table::num(ssc.area, 0),
                          Table::num(ssc.core_power, 0),
                          Table::num(ssc.totalBandwidth() / 1000.0, 1)});
    }
    ssc_table.print(std::cout);

    Table ext_table("Table IV — external I/O technologies",
                    {"technology", "placement", "raw density",
                     "layers", "pJ/bit", "signal fraction",
                     "300 mm capacity/dir (Tbps)"});
    for (const auto &ext : bench::externalIoSchemes()) {
        ext_table.addRow(
            {ext.name,
             ext.placement == tech::IoPlacement::Periphery
                 ? "periphery (Gbps/mm)"
                 : "area (Gbps/mm^2)",
             Table::num(ext.raw_density_per_layer, 0),
             Table::num(ext.layers), Table::num(ext.energy_per_bit, 1),
             Table::num(ext.signal_fraction, 2),
             Table::num(ext.capacityPerDirection(300.0) / 1000.0, 1)});
    }
    ext_table.print(std::cout);

    Table lat_table("Table V — connection latencies",
                    {"connection", "latency (ns)"});
    lat_table.addRow({"on-wafer (Si-IF)",
                      Table::num(tech::link_latency::kOnWaferNs, 0)});
    lat_table.addRow({"in-rack PCB",
                      Table::num(tech::link_latency::kInRackPcbNs, 0)});
    lat_table.addRow({"100 m optical",
                      Table::num(tech::link_latency::kOptical100mNs, 0)});
    lat_table.addRow({"inter-chiplet mesh hop",
                      Table::num(tech::link_latency::kMeshHopNs, 0)});
    lat_table.print(std::cout);
    return 0;
}
