/**
 * @file
 * Fig. 12 — maximum 200G ports with InFO-SoW's 12.8 Tbps/mm internal
 * density.
 */

#include "bench_common.hpp"
#include "core/radix_solver.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 12",
                  "maximum ports with InFO-SoW (12.8 Tbps/mm)");

    Table table("Maximum 200G ports (InFO-SoW)",
                {"substrate (mm)", "external I/O", "max ports",
                 "same as Si-IF 6400?"});
    for (double side : bench::kSubstrates) {
        for (const auto &ext : bench::externalIoSchemes()) {
            const auto info =
                core::RadixSolver(
                    bench::paperSpec(side, tech::infoSow(), ext))
                    .solveMaxPorts();
            const auto siif =
                core::RadixSolver(
                    bench::paperSpec(side, tech::siIf2x(), ext))
                    .solveMaxPorts();
            table.addRow({Table::num(side, 0), ext.name,
                          Table::num(info.best.ports),
                          info.best.ports == siif.best.ports ? "yes"
                                                             : "no"});
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper: InFO-SoW reaches the same port counts as "
                 "6400 Gbps/mm Si-IF (the fabric stops binding), but "
                 "at much\nhigher power (Fig. 13), which is why the "
                 "paper keeps Si-IF as its primary technology.\n";
    return 0;
}
