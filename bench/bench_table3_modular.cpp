/**
 * @file
 * Table III — commercial modular switches versus waferscale switches.
 */

#include "bench_common.hpp"
#include "core/radix_solver.hpp"
#include "sysarch/enclosure.hpp"
#include "sysarch/power_delivery.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Table III", "modular switches vs waferscale switches");

    Table table("Modular vs waferscale (ports at 200 Gbps)",
                {"router", "space (RU)", "total BW (Tb/s)",
                 "ports @200G", "total power (kW)", "power/port (W)",
                 "capacity density (Tbps/RU)"});
    for (const auto &row : sysarch::modularSwitchCatalog()) {
        table.addRow({row.name, Table::num(row.rack_units, 1),
                      Table::num(row.total_bandwidth_tbps, 1),
                      Table::num(row.ports_200g),
                      Table::num(row.total_power_kw, 1),
                      Table::num(row.powerPerPort(), 1),
                      Table::num(row.capacityDensity(), 1)});
    }

    for (double side : {300.0, 200.0}) {
        core::DesignSpec spec =
            bench::paperSpec(side, tech::siIf2x(), tech::opticalIo());
        spec.leaf_split = 4; // heterogeneous design
        const auto solved = core::RadixSolver(spec).solveMaxPorts();
        const auto enclosure =
            sysarch::planEnclosure(solved.best.ports, 200.0);
        // Table III quotes the provisioned PSU bank power.
        const auto delivery = sysarch::sizePowerDelivery(
            solved.best.power.total(), side);
        const double power_kw = delivery.provisioned / 1000.0;
        table.addRow(
            {"WS (" + Table::num(side, 0) + "mm)",
             Table::num(enclosure.rack_units),
             Table::num(solved.best.ports * 200.0 / 1000.0, 1),
             Table::num(solved.best.ports), Table::num(power_kw, 0),
             Table::num(power_kw * 1000.0 / solved.best.ports, 1),
             Table::num(enclosure.capacity_density_tbps_ru, 1)});
    }
    table.print(std::cout);
    std::cout << "\nPaper: 7.1x-14.2x more ports than modular chassis "
                 "at 300 mm (3.6x-7.1x at 200 mm), ~3x lower power "
                 "per port,\nand 7.5x-11.4x higher capacity density.\n";
    return 0;
}
