/**
 * @file
 * Ablation — why chiplet-based WSI: monolithic versus chiplet
 * manufacturing yield (paper Section III.A/III.B).
 */

#include "bench_common.hpp"
#include "tech/yield.hpp"
#include "topology/clos.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Ablation",
                  "monolithic vs chiplet-based WSI manufacturing yield");

    const tech::YieldModel model; // 0.1 defects/cm^2, 99.9% bonds

    Table mono("Monolithic waferscale yield vs redundancy coverage",
               {"substrate (mm)", "coverage 0%", "coverage 50%",
                "coverage 90%", "coverage 99%"});
    for (double side : bench::kSubstrates) {
        mono.addRow(
            {Table::num(side, 0),
             Table::num(tech::monolithicWaferYield(side, 0.0, model), 6),
             Table::num(tech::monolithicWaferYield(side, 0.5, model), 6),
             Table::num(tech::monolithicWaferYield(side, 0.9, model), 4),
             Table::num(tech::monolithicWaferYield(side, 0.99, model),
                        3)});
    }
    mono.print(std::cout);

    Table chiplet("Chiplet-based assembly yield (KGD, 99.9% bonds)",
                  {"switch", "SSC sockets", "spares 0", "spares 1",
                   "spares 2", "spares 4"});
    for (std::int64_t ports : {2048, 4096, 8192}) {
        const int sockets = static_cast<int>(
            topology::closChipletCount(ports, 256));
        std::vector<std::string> row{
            Table::num(ports) + "-port Clos", Table::num(sockets)};
        for (int spares : {0, 1, 2, 4}) {
            row.push_back(Table::num(
                tech::chipletSystemYield(sockets, spares, model), 4));
        }
        chiplet.addRow(row);
    }
    chiplet.print(std::cout);

    Table cost("KGD silicon-cost factor (dies fabbed per good die)",
               {"die", "area (mm^2)", "die yield", "cost factor"});
    for (const auto &[name, area] :
         {std::pair{"TH-5 SSC", 800.0}, std::pair{"hetero leaf", 198.0},
          std::pair{"I/O chiplet", 50.0}}) {
        cost.addRow({name, Table::num(area, 0),
                     Table::num(tech::dieYield(area, model), 3),
                     Table::num(tech::kgdCostFactor(area, model), 3)});
    }
    cost.print(std::cout);

    std::cout << "\nPaper's argument quantified: an unprotected "
                 "monolithic wafer practically never yields; even 99% "
                 "redundancy\ncoverage leaves it below a KGD chiplet "
                 "assembly, which with a couple of spare sockets "
                 "exceeds 99.9%\nsystem yield while paying only a "
                 "~2x silicon-cost factor on the big dies.\n";
    return 0;
}
