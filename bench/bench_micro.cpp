/**
 * @file
 * google-benchmark microbenchmarks for the heavy inner loops: the
 * pairwise-exchange mapping search and the cycle-accurate router —
 * performance regressions here directly inflate every figure bench.
 */

#include <benchmark/benchmark.h>

#include <bit>

#include "mapping/pairwise_exchange.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "power/ssc.hpp"
#include "sim/simulator.hpp"
#include "topology/clos.hpp"
#include "util/ring_queue.hpp"

namespace {

using namespace wss;

void
BM_MappingSearch(benchmark::State &state)
{
    const std::int64_t ports = state.range(0);
    const auto topo =
        topology::buildFoldedClos({ports, power::tomahawk5(1), 1});
    const int rows = static_cast<int>(
        std::ceil(std::sqrt(topo.nodeCount())));
    const int cols = (topo.nodeCount() + rows - 1) / rows;
    const mapping::WaferFloorplan fp(rows, cols, true, 28.284);
    Rng rng(1);
    for (auto _ : state) {
        const auto result =
            mapping::searchBestMapping(topo, fp, true, rng, 1);
        benchmark::DoNotOptimize(result.max_edge_load);
    }
    state.SetLabel(std::to_string(topo.nodeCount()) + " chiplets");
}
BENCHMARK(BM_MappingSearch)->Arg(1024)->Arg(2048)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

void
BM_IncrementalSwap(benchmark::State &state)
{
    const auto topo =
        topology::buildFoldedClos({8192, power::tomahawk5(1), 1});
    const mapping::WaferFloorplan fp(10, 10, true, 28.284);
    mapping::WaferMapping wm(topo, fp, true);
    Rng rng(2);
    wm.assignRandom(rng);
    int a = 0;
    for (auto _ : state) {
        const int b =
            static_cast<int>(rng.nextBelow(topo.nodeCount()));
        if (a != b)
            wm.swapNodes(a, b);
        benchmark::DoNotOptimize(wm.maxEdgeLoad());
        a = b;
    }
}
BENCHMARK(BM_IncrementalSwap);

void
BM_RouterCycleThroughput(benchmark::State &state)
{
    // Flit-forwarding throughput of the 2048-port fabric at 50% load:
    // items processed = simulated cycles.
    const auto topo =
        topology::buildFoldedClos({2048, power::tomahawk5(3), 1});
    sim::NetworkSpec spec;
    spec.vcs = 16;
    spec.buffer_per_port = 32;
    spec.pipeline_delay = 9;
    spec.terminal_link_latency = 8;
    sim::Network net(topo, spec, 3);
    sim::SyntheticWorkload workload(sim::uniformTraffic(2048), 0.5, 1);
    Rng rng(4);
    sim::Cycle now = 0;
    std::vector<util::RingQueue<sim::Flit>> source(2048);
    for (auto _ : state) {
        workload.generate(now, rng, [&](int src, int dst, int flits) {
            for (int i = 0; i < flits; ++i) {
                sim::Flit flit;
                flit.src = src;
                flit.dst = dst;
                flit.head = i == 0;
                flit.tail = i == flits - 1;
                flit.vc = 0;
                flit.created = now;
                source[src].push_back(flit);
            }
        });
        for (int t = 0; t < 2048; ++t) {
            if (!source[t].empty() &&
                net.tryInject(t, now, source[t].front()))
                source[t].pop_front();
            benchmark::DoNotOptimize(net.eject(t, now));
        }
        net.step(now);
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouterCycleThroughput)->Unit(benchmark::kMicrosecond);

void
BM_RouterCycleThroughputObserved(benchmark::State &state)
{
    // Same fabric and load as BM_RouterCycleThroughput, but through
    // the Simulator with observability on — compare against the
    // un-instrumented variant to see the cost of live counters and
    // per-cycle occupancy histograms (the "obs on" price).
    const auto topo =
        topology::buildFoldedClos({2048, power::tomahawk5(3), 1});
    sim::NetworkSpec spec;
    spec.vcs = 16;
    spec.buffer_per_port = 32;
    spec.pipeline_delay = 9;
    spec.terminal_link_latency = 8;
    sim::Network net(topo, spec, 3);
    sim::SyntheticWorkload workload(sim::uniformTraffic(2048), 0.5, 1);
    obs::MetricsRegistry registry;
    net.instrument(registry);
    Rng rng(4);
    sim::Cycle now = 0;
    std::vector<util::RingQueue<sim::Flit>> source(2048);
    for (auto _ : state) {
        workload.generate(now, rng, [&](int src, int dst, int flits) {
            for (int i = 0; i < flits; ++i) {
                sim::Flit flit;
                flit.src = src;
                flit.dst = dst;
                flit.head = i == 0;
                flit.tail = i == flits - 1;
                flit.vc = 0;
                flit.created = now;
                source[src].push_back(flit);
            }
        });
        for (int t = 0; t < 2048; ++t) {
            if (!source[t].empty() &&
                net.tryInject(t, now, source[t].front()))
                source[t].pop_front();
            benchmark::DoNotOptimize(net.eject(t, now));
        }
        net.step(now);
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouterCycleThroughputObserved)
    ->Unit(benchmark::kMicrosecond);

void
BM_ChannelPushPop(benchmark::State &state)
{
    // The ring-buffer DelayLine at full occupancy: one push + one
    // pop per simulated cycle, the per-hop cost floor of every flit.
    sim::DelayLine<sim::Flit> line(8);
    sim::Flit flit;
    sim::Cycle now = 0;
    for (now = 0; now < 8; ++now)
        line.push(now, flit);
    for (auto _ : state) {
        auto out = line.pop(now);
        benchmark::DoNotOptimize(out);
        line.push(now, flit);
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelPushPop);

void
BM_RouterStepIdle(benchmark::State &state)
{
    // Stepping a fabric with nothing in flight. With the active-set
    // scheduler this is O(1) in fabric size — no router has pending
    // work, so none is stepped — which is what keeps low-load and
    // drain phases cheap.
    const auto topo =
        topology::buildFoldedClos({2048, power::tomahawk5(3), 1});
    sim::NetworkSpec spec;
    spec.vcs = 16;
    spec.buffer_per_port = 32;
    sim::Network net(topo, spec, 3);
    sim::Cycle now = 0;
    for (auto _ : state) {
        net.step(now);
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(std::to_string(net.routerCount()) + " routers");
}
BENCHMARK(BM_RouterStepIdle);

void
BM_InjectSparse(benchmark::State &state)
{
    // One busy terminal out of 2048: the injection/ejection sweeps
    // and the router active set should scale with traffic, not with
    // terminal count.
    const auto topo =
        topology::buildFoldedClos({2048, power::tomahawk5(3), 1});
    sim::NetworkSpec spec;
    spec.vcs = 16;
    spec.buffer_per_port = 32;
    sim::Network net(topo, spec, 3);
    sim::Flit flit;
    flit.src = 0;
    flit.dst = 1;
    flit.head = true;
    flit.tail = true;
    sim::Cycle now = 0;
    for (auto _ : state) {
        flit.created = now;
        benchmark::DoNotOptimize(net.tryInject(0, now, flit));
        const auto &pending = net.ejectPending();
        for (std::size_t w = 0; w < pending.size(); ++w) {
            std::uint64_t word = pending[w];
            while (word) {
                const int t = static_cast<int>(w) * 64 +
                              std::countr_zero(word);
                word &= word - 1;
                benchmark::DoNotOptimize(net.eject(t, now));
            }
        }
        net.step(now);
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InjectSparse);

void
BM_CounterHandleDisabled(benchmark::State &state)
{
    // The <=1%-overhead contract rests on this: bumping a detached
    // (default-constructed) counter must cost one predicted branch.
    obs::Counter counter;
    std::uint64_t i = 0;
    for (auto _ : state) {
        counter.inc(i++ & 1);
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterHandleDisabled);

void
BM_CounterHandleEnabled(benchmark::State &state)
{
    obs::MetricsRegistry registry;
    obs::Counter counter = registry.counter("bench");
    std::uint64_t i = 0;
    for (auto _ : state) {
        counter.inc(i++ & 1);
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterHandleEnabled);

void
BM_ProfilerScopeDisabled(benchmark::State &state)
{
    // Same contract as the detached counter: a ScopedPhase on a null
    // profiler must cost one predicted branch each way, so hot loops
    // can stay instrumented unconditionally.
    for (auto _ : state) {
        obs::ScopedPhase phase(nullptr, "bench");
        benchmark::DoNotOptimize(&phase);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerScopeDisabled);

void
BM_ProfilerScopeEnabled(benchmark::State &state)
{
    obs::Profiler profiler;
    for (auto _ : state) {
        obs::ScopedPhase phase(&profiler, "bench");
        benchmark::DoNotOptimize(&phase);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerScopeEnabled);

void
BM_FlightRecorderDisabled(benchmark::State &state)
{
    // The recorder's null-handle contract: with no ring attached to
    // this thread, recordEvent is one predicted branch, so campaign
    // and simulator call sites stay instrumented unconditionally.
    // tools/check.sh gates the disabled/enabled ratio at >= 10x.
    std::int64_t i = 0;
    for (auto _ : state) {
        obs::recordEvent(obs::EventKind::SimEpoch, i++, 0);
        benchmark::DoNotOptimize(i);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderDisabled);

void
BM_FlightRecorderEnabled(benchmark::State &state)
{
    obs::FlightRecorder::enable();
    obs::FlightRecorder::attachCurrentThread("bench");
    std::int64_t i = 0;
    for (auto _ : state) {
        obs::recordEvent(obs::EventKind::SimEpoch, i++, 0, "bench");
        benchmark::DoNotOptimize(i);
    }
    state.SetItemsProcessed(state.iterations());
    obs::FlightRecorder::detachCurrentThread();
    obs::FlightRecorder::resetForTesting();
}
BENCHMARK(BM_FlightRecorderEnabled);

} // namespace

BENCHMARK_MAIN();
