/**
 * @file
 * Collectives — what LLM training traffic costs on a waferscale
 * switch versus the conventional fat-tree it replaces.
 *
 * The solver-sized waferscale design and a 64-port baseline are
 * calibrated into flow::SwitchProfiles (as in bench_dcn), then the
 * canonical collective set — ring / halving-doubling / tree
 * allreduce and the MoE all-to-all — is executed flow-level over a
 * payload sweep, every cell cross-checked against the closed-form
 * alpha-beta model.
 *
 * Emits bench_results/BENCH_coll.json (see --json): one point per
 * (design, collective, payload) keyed like bench_simcore points so
 * tools/bench_compare.py can diff successive PRs. The engine is
 * deterministic, so any drift in busbw/steps/messages is a
 * behavioural change, not noise.
 *
 * Usage: bench_coll [--smoke] [--json PATH]
 *   --smoke shrinks the calibration sweep, rank count and payload
 *   sweep for CI (WSS_BENCH_FAST=1 does the same).
 */

#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "bench_common.hpp"
#include "coll/campaign.hpp"
#include "core/radix_solver.hpp"
#include "obs/run_manifest.hpp"
#include "topology/clos.hpp"

namespace {

using namespace wss;

/// Round @p ports down to a positive multiple of ssc.radix / 2.
std::int64_t
alignPorts(std::int64_t ports, int ssc_radix)
{
    const std::int64_t half = ssc_radix / 2;
    return std::max<std::int64_t>(ports / half, 1) * half;
}

flow::SwitchProfile
calibrate(const std::string &name, std::int64_t radix,
          std::int64_t cal_ports, const power::SscConfig &ssc,
          double power_watts, bool smoke, exec::ThreadPool *pool)
{
    flow::CalibrationSpec spec;
    spec.name = name;
    spec.ports = alignPorts(cal_ports, ssc.radix);
    spec.ssc = ssc;
    spec.rates = sim::geometricRates(0.05, 0.95, smoke ? 3 : 5);
    spec.sim_cfg.warmup = smoke ? 200 : 1000;
    spec.sim_cfg.measure = smoke ? 500 : 4000;
    spec.sim_cfg.drain_limit = smoke ? 3000 : 20000;
    spec.sim_cfg.seed =
        static_cast<std::uint64_t>(bench::envInt("WSS_BENCH_SEED", 1));
    spec.power_watts = power_watts;
    flow::SwitchProfile profile =
        flow::calibrateSwitchProfile(spec, pool);
    profile.radix = radix;
    return profile;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace wss;
    bool smoke = bench::fastMode();
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            fatal("bench_coll: unknown argument '", argv[i],
                  "' (--smoke | --json PATH)");
    }

    bench::banner("Collectives",
                  "allreduce / all-to-all schedules on waferscale vs "
                  "conventional, cross-checked against alpha-beta");

    exec::ThreadPool pool(bench::benchJobs());

    core::DesignSpec spec = bench::paperSpec(
        300.0, tech::siIf2x(), tech::opticalIo());
    spec.mapping_restarts = bench::envInt("WSS_BENCH_RESTARTS", 2);
    const auto solved = core::RadixSolver(spec).solveMaxPorts();
    if (solved.best.ports == 0)
        fatal("bench_coll: solver found no feasible design");
    const std::int64_t ws_ports =
        alignPorts(solved.best.ports, spec.ssc.radix);

    const power::SscConfig conv_ssc =
        power::scaledSsc(32, spec.ssc.line_rate);
    constexpr std::int64_t kConvPorts = 64;
    const double conv_power =
        static_cast<double>(
            topology::closChipletCount(kConvPorts, conv_ssc.radix)) *
            conv_ssc.core_power +
        power::externalIoPower(kConvPorts, conv_ssc.line_rate,
                               tech::serdes());

    const std::int64_t cal_cap = smoke ? 128 : 512;
    const flow::SwitchProfile ws = calibrate(
        "ws-" + std::to_string(ws_ports), ws_ports,
        std::min(ws_ports, cal_cap), spec.ssc,
        solved.best.power.total(), smoke, &pool);
    const flow::SwitchProfile conv = calibrate(
        "conv-64", kConvPorts, kConvPorts, conv_ssc, conv_power,
        smoke, &pool);

    coll::CollCampaignConfig cfg;
    cfg.designs = {ws, conv};
    cfg.kind = flow::DcnKind::FatTree;
    // 128 ranks pushes the conventional 64-port baseline to a second
    // tier (the waferscale switch stays single-hop); smoke keeps both
    // single-switch for speed.
    cfg.ranks = smoke ? 8 : 128;
    cfg.payload_bytes = smoke
                            ? std::vector<double>{1 << 16}
                            : std::vector<double>{1 << 16, 1 << 20,
                                                  1 << 24};
    cfg.seed =
        static_cast<std::uint64_t>(bench::envInt("WSS_BENCH_SEED", 1));
    const coll::CollResult result =
        coll::CollCampaign(cfg).run(&pool);

    Table table("Collectives (" + Table::num(cfg.ranks) + " ranks)",
                {"design", "collective", "payload", "flow us",
                 "flow busbw", "model us", "flow/model"});
    for (const auto &cell : result.cells) {
        const double ratio = cell.model.seconds > 0.0
                                 ? cell.flow.seconds /
                                       cell.model.seconds
                                 : 0.0;
        table.addRow({cell.design, cell.collective,
                      Table::num(cell.payload_bytes, 0),
                      Table::num(cell.flow.seconds * 1e6, 2),
                      Table::num(cell.flow.busbw_gbps, 1),
                      Table::num(cell.model.seconds * 1e6, 2),
                      Table::num(ratio, 4)});
    }
    table.print(std::cout);

    if (json_path) {
        std::ofstream os(json_path);
        if (!os)
            fatal("cannot open '", json_path, "' for writing");
        os << std::setprecision(
            std::numeric_limits<double>::max_digits10);
        os << "{\n  \"bench\": \"coll\",\n  \"smoke\": "
           << (smoke ? "true" : "false") << ",\n  \"ws_design\": \""
           << ws.name << "\",\n  \"conv_design\": \"" << conv.name
           << "\",\n  \"ranks\": " << cfg.ranks
           << ",\n  \"points\": [";
        for (std::size_t i = 0; i < result.cells.size(); ++i) {
            const auto &c = result.cells[i];
            os << (i ? ",\n" : "\n") << "    {\"name\": \""
               << c.design << "/" << c.collective
               << "\", \"rate\": " << c.payload_bytes
               << ", \"busbw_gbps\": " << c.flow.busbw_gbps
               << ", \"flow_us\": " << c.flow.seconds * 1e6
               << ", \"model_us\": " << c.model.seconds * 1e6
               << ", \"steps\": " << c.flow.steps
               << ", \"messages\": " << c.flow.messages
               << ", \"failed\": " << c.flow.failed_messages << "}";
        }
        os << "\n  ]\n}\n";
        if (!os.flush())
            fatal("short write to '", json_path, "'");
        inform("Collectives JSON written to ", json_path);

        // Provenance sibling: bench_compare.py refuses to diff two
        // reports whose manifests disagree on configuration.
        obs::RunManifest manifest("bench_coll");
        manifest.setConfig("smoke", smoke ? "true" : "false");
        manifest.setConfig("ranks",
                           static_cast<std::int64_t>(cfg.ranks));
        manifest.setConfig("ws_design", ws.name);
        manifest.setConfig("conv_design", conv.name);
        manifest.setConfig(
            "payloads",
            static_cast<std::int64_t>(cfg.payload_bytes.size()));
        manifest.setSeed(cfg.seed);
        manifest.setJobs(result.threads);
        manifest.addArtifact(json_path, "bench-json");
        manifest.addPhaseSeconds("campaign", result.wall_seconds);
        const std::string manifest_path =
            std::string(json_path) + ".manifest.json";
        manifest.writeJsonFile(manifest_path);
        inform("Collectives manifest written to ", manifest_path);
    }

    std::cout << "\n[campaign] " << result.cells.size()
              << " cells on " << result.threads << " threads, wall "
              << Table::num(result.wall_seconds, 2) << " s\n"
              << "\nOn the single waferscale switch every algorithm "
                 "runs at one hop and the full derated line rate;\n"
                 "the conventional fat-tree pays its extra tiers in "
                 "alpha on every one of the schedule's steps.\n";
    return 0;
}
