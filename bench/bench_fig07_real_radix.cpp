/**
 * @file
 * Fig. 7 — maximum 200G ports achievable at 3200 Gbps/mm internal
 * bandwidth density for SerDes, Optical I/O, and Area I/O external
 * connectivity, with the binding constraint for each point.
 */

#include "bench_common.hpp"
#include "core/radix_solver.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 7",
                  "maximum ports at 3200 Gbps/mm internal density");

    Table table("Maximum 200G ports (Si-IF, 3200 Gbps/mm)",
                {"substrate (mm)", "external I/O", "max ports",
                 "blocked next by"});
    for (double side : bench::kSubstrates) {
        for (const auto &ext : bench::externalIoSchemes()) {
            const core::DesignSpec spec =
                bench::paperSpec(side, tech::siIf(), ext);
            const auto result = core::RadixSolver(spec).solveMaxPorts();
            table.addRow(
                {Table::num(side, 0), ext.name,
                 Table::num(result.best.ports),
                 std::string(result.blocking
                                 ? core::toString(
                                       result.blocking->violated)
                                 : "ladder end")});
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper: SerDes only doubles the ports (512 at "
                 "300 mm); Optical/Area I/O reach ~4x more but stall "
                 "at 2048\nfrom 200 mm onward because the internal "
                 "3200 Gbps/mm fabric saturates first.\n";
    return 0;
}
