/**
 * @file
 * Fig. 18 — maximum ports when reducing the SSC radix at
 * 6400 Gbps/mm internal density.
 */

#include "bench_deradix_common.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 18", "subswitch deradixing at 6400 Gbps/mm");
    bench::printDeradixSweep(tech::siIf2x());
    std::cout << "\nPaper: with the internal bandwidth already "
                 "sufficient, deradixing only packs fewer ports per "
                 "die and the\nachievable radix drops — the effect is "
                 "more pronounced than at 3200 Gbps/mm.\n";
    return 0;
}
