/**
 * @file
 * Simulator-core throughput benchmark — the tracked flits-per-second
 * trajectory of the cycle-accurate fabric simulator.
 *
 * Every packet-level figure (Figs. 21-24) and every exec/fault
 * campaign funnels through Simulator::run, so its Mflits/s is the
 * scaling limit of the whole reproduction. This bench pins that
 * number on representative design points:
 *
 *   - the Fig. 21 configuration (single radix-64 SSC, 64 VCs,
 *     200 ns-class terminal links) at 10% load and at saturation,
 *     with observability off and on,
 *   - a 4x4 direct mesh (Fig. 25's alternative topology), and
 *   - a 256-port folded Clos (the paper's main fabric shape),
 *
 * and emits BENCH_simcore.json (see --json) so successive PRs can
 * diff the trajectory with tools/bench_compare.py. SimResult fields
 * (flits delivered, end cycle) are included per point: a perf PR must
 * keep them bit-identical while moving the Mflits/s.
 *
 * Usage: bench_simcore [--smoke] [--json PATH] [--only SUBSTR]
 *                      [--reps N]
 *
 * --reps sweeps the whole point set N times and reports each point's
 * minimum wall time. The simulation is deterministic (the behavioural
 * fields must be identical across repetitions — asserted), so the
 * fastest repetition is the closest observation of what the code
 * costs: anything above it is scheduler interference, which matters
 * on the short low-load points whose whole run fits in a few
 * milliseconds. Repetitions of one point are deliberately spread
 * across full sweeps (not run back to back) so a single interference
 * burst cannot taint all of them.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/run_manifest.hpp"
#include "sim/simulator.hpp"
#include "topology/clos.hpp"
#include "topology/mesh.hpp"
#include "util/artifact.hpp"

namespace {

using namespace wss;

struct Point
{
    std::string name;
    topology::LogicalTopology topo;
    sim::NetworkSpec spec;
    double rate = 0.0;
    bool observe = false;
};

struct Measurement
{
    std::string name;
    double rate = 0.0;
    bool observe = false;
    double wall_seconds = 0.0;
    double mflits_per_second = 0.0;
    double kcycles_per_second = 0.0;
    sim::Cycle end_cycle = 0;
    std::int64_t flits_delivered = 0;
    double accepted = 0.0;
    bool stable = false;
};

sim::NetworkSpec
fig21Spec()
{
    // The Fig. 21 sweep's 200 ns-link cell at 32 flits/port.
    sim::NetworkSpec spec;
    spec.vcs = 64;
    spec.buffer_per_port = 32;
    spec.rc_delay_ingress = 1;
    spec.rc_delay_transit = 1;
    spec.pipeline_delay = 1;
    spec.terminal_link_latency = 10;
    return spec;
}

topology::LogicalTopology
fig21Topo()
{
    topology::LogicalTopology topo("single-ssc", 200.0);
    const int type = topo.addSscType(power::scaledSsc(64, 200.0));
    topo.addNode(topology::NodeRole::Router, type, 64);
    return topo;
}

Measurement
runPoint(const Point &point, bool smoke, std::uint64_t seed)
{
    sim::SimConfig cfg;
    cfg.warmup = smoke ? 100 : 1000;
    cfg.measure = smoke ? 300 : 8000;
    cfg.drain_limit = smoke ? 1000 : 4000;
    cfg.seed = seed;
    cfg.observe = point.observe;

    // Fresh fabric per run: Simulator::run consumes the network
    // state, and identical construction is exactly what makes
    // repetitions comparable.
    sim::Network net(point.topo, point.spec, seed + 1);
    sim::SyntheticWorkload workload(
        sim::uniformTraffic(net.terminalCount()), point.rate, 1);
    sim::Simulator simulator(net, workload, cfg);

    const auto start = std::chrono::steady_clock::now();
    const sim::SimResult result = simulator.run();
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();

    Measurement m;
    m.name = point.name;
    m.rate = point.rate;
    m.observe = point.observe;
    m.wall_seconds = seconds;
    m.mflits_per_second =
        seconds > 0.0
            ? static_cast<double>(result.flits_delivered) / seconds / 1e6
            : 0.0;
    m.kcycles_per_second =
        seconds > 0.0
            ? static_cast<double>(result.end_cycle + 1) / seconds / 1e3
            : 0.0;
    m.end_cycle = result.end_cycle;
    m.flits_delivered = result.flits_delivered;
    m.accepted = result.accepted;
    m.stable = result.stable;
    return m;
}

void
writeJson(const std::string &path, const std::vector<Measurement> &runs,
          bool smoke)
{
    util::writeArtifactFile(path, "bench_simcore", [&](std::ostream &os) {
        os << "{\n  \"bench\": \"simcore\",\n  \"smoke\": "
           << (smoke ? "true" : "false") << ",\n  \"points\": [\n";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            const Measurement &m = runs[i];
            os << "    {\"name\": \"" << m.name << "\", \"rate\": "
               << m.rate << ", \"observe\": "
               << (m.observe ? "true" : "false")
               << ", \"wall_seconds\": " << m.wall_seconds
               << ", \"mflits_per_second\": " << m.mflits_per_second
               << ", \"kcycles_per_second\": " << m.kcycles_per_second
               << ", \"end_cycle\": " << m.end_cycle
               << ", \"flits_delivered\": " << m.flits_delivered
               << ", \"accepted\": " << m.accepted << ", \"stable\": "
               << (m.stable ? "true" : "false") << "}"
               << (i + 1 < runs.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
    });
    inform("simcore JSON written to ", path);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace wss;

    bool smoke = bench::fastMode();
    std::string json_path = "BENCH_simcore.json";
    std::string only;
    int reps = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc)
            only = argv[++i];
        else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
            reps = std::atoi(argv[++i]);
        else
            fatal("bench_simcore: unknown argument '", argv[i],
                  "' (usage: bench_simcore [--smoke] [--json PATH] "
                  "[--only SUBSTR] [--reps N])");
    }
    if (reps < 1)
        fatal("bench_simcore: --reps must be >= 1");

    bench::banner("Simulator core",
                  "flits/s throughput on representative design points");

    std::vector<Point> points;
    points.push_back({"fig21/load0.10", fig21Topo(), fig21Spec(), 0.10,
                      false});
    points.push_back({"fig21/load0.98", fig21Topo(), fig21Spec(), 0.98,
                      false});
    points.push_back({"fig21/load0.10/obs", fig21Topo(), fig21Spec(),
                      0.10, true});
    points.push_back({"fig21/load0.98/obs", fig21Topo(), fig21Spec(),
                      0.98, true});
    {
        sim::NetworkSpec spec;
        spec.vcs = 8;
        spec.buffer_per_port = 16;
        spec.pipeline_delay = 1;
        spec.terminal_link_latency = 1;
        spec.internal_link_latency = 1;
        const auto mesh =
            topology::buildMesh(4, 4, power::scaledSsc(16, 200.0));
        points.push_back({"mesh4x4/load0.10", mesh, spec, 0.10, false});
        points.push_back({"mesh4x4/load0.20", mesh, spec, 0.20, false});
    }
    {
        sim::NetworkSpec spec;
        spec.vcs = 16;
        spec.buffer_per_port = 32;
        spec.pipeline_delay = 1;
        spec.terminal_link_latency = 1;
        spec.internal_link_latency = 1;
        const auto clos = topology::buildFoldedClos(
            {256, power::scaledSsc(32, 200.0), 1});
        points.push_back({"clos256/load0.10", clos, spec, 0.10, false});
        points.push_back({"clos256/load0.80", clos, spec, 0.80, false});
    }

    const auto seed = static_cast<std::uint64_t>(
        bench::envInt("WSS_BENCH_SEED", 1));

    Table table("Simulator-core throughput" +
                    std::string(smoke ? " (smoke)" : ""),
                {"point", "Mflits/s", "kcycles/s", "wall s", "accepted",
                 "flits delivered", "end cycle"});
    std::vector<Measurement> runs;
    for (int rep = 0; rep < reps; ++rep) {
        std::size_t idx = 0;
        for (const Point &point : points) {
            if (!only.empty() &&
                point.name.find(only) == std::string::npos)
                continue;
            const Measurement m = runPoint(point, smoke, seed);
            if (rep == 0) {
                runs.push_back(m);
            } else {
                Measurement &best = runs[idx];
                if (m.end_cycle != best.end_cycle ||
                    m.flits_delivered != best.flits_delivered)
                    fatal("bench_simcore: repetition ", rep, " of ",
                          point.name, " diverged (end_cycle ",
                          m.end_cycle, " vs ", best.end_cycle,
                          ") — the simulator is supposed to be "
                          "deterministic");
                if (m.wall_seconds < best.wall_seconds)
                    best = m;
            }
            ++idx;
        }
    }
    for (const Measurement &m : runs)
        table.addRow({m.name, Table::num(m.mflits_per_second, 3),
                      Table::num(m.kcycles_per_second, 1),
                      Table::num(m.wall_seconds, 3),
                      Table::num(m.accepted, 3),
                      Table::num(static_cast<double>(m.flits_delivered)),
                      Table::num(static_cast<double>(m.end_cycle))});
    table.print(std::cout);
    std::cout << "\nflits delivered / end cycle are part of the "
                 "contract: a perf PR must move Mflits/s while keeping "
                 "them\nbit-identical (compare runs with "
                 "tools/bench_compare.py).\n";

    writeJson(json_path, runs, smoke);

    // Provenance sibling: bench_compare.py refuses to diff two
    // reports whose manifests disagree on configuration.
    obs::RunManifest manifest("bench_simcore");
    manifest.setConfig("smoke", smoke ? "true" : "false");
    manifest.setConfig("only", only);
    manifest.setConfig("reps", static_cast<std::int64_t>(reps));
    manifest.setConfig("points",
                       static_cast<std::int64_t>(runs.size()));
    manifest.setSeed(seed);
    manifest.setJobs(1);
    manifest.addArtifact(json_path, "bench-json");
    for (const Measurement &m : runs)
        manifest.addPhaseSeconds(m.name, m.wall_seconds);
    const std::string manifest_path = json_path + ".manifest.json";
    manifest.writeJsonFile(manifest_path);
    inform("simcore manifest written to ", manifest_path);
    return 0;
}
