/**
 * @file
 * DCN — the flow-level waferscale-vs-conventional datacenter-network
 * comparison (the paper's Table IX story, taken past closed form).
 *
 * One waferscale switch design (radix from core::RadixSolver) and a
 * conventional 64-port baseline are each calibrated into a
 * flow::SwitchProfile by sweeping the cycle-accurate fabric
 * simulator, then dropped into fat-trees covering the same host
 * count. The flow-level simulator reports what the closed-form
 * comparison cannot: FCT and slowdown tails under websearch/hadoop
 * traffic at multiple loads, next to the structural columns (switch
 * count, tiers, hops, power).
 *
 * Emits bench_results/BENCH_dcn.json (see --json) so successive PRs
 * can diff the comparison.
 *
 * Usage: bench_dcn [--smoke] [--json PATH]
 *   --smoke shrinks the calibration sweep and the flow counts for CI
 *   (WSS_BENCH_FAST=1 does the same).
 */

#include <cstring>
#include <sstream>

#include "bench_common.hpp"
#include "core/radix_solver.hpp"
#include "flow/dcn_campaign.hpp"
#include "topology/clos.hpp"

namespace {

using namespace wss;

/// Round @p ports down to a positive multiple of ssc.radix / 2.
std::int64_t
alignPorts(std::int64_t ports, int ssc_radix)
{
    const std::int64_t half = ssc_radix / 2;
    return std::max<std::int64_t>(ports / half, 1) * half;
}

flow::SwitchProfile
calibrate(const std::string &name, std::int64_t radix,
          std::int64_t cal_ports, const power::SscConfig &ssc,
          double power_watts, bool smoke, exec::ThreadPool *pool)
{
    flow::CalibrationSpec spec;
    spec.name = name;
    spec.ports = alignPorts(cal_ports, ssc.radix);
    spec.ssc = ssc;
    spec.rates = sim::geometricRates(0.05, 0.95, smoke ? 3 : 5);
    spec.sim_cfg.warmup = smoke ? 200 : 1000;
    spec.sim_cfg.measure = smoke ? 500 : 4000;
    spec.sim_cfg.drain_limit = smoke ? 3000 : 20000;
    spec.sim_cfg.seed =
        static_cast<std::uint64_t>(bench::envInt("WSS_BENCH_SEED", 1));
    spec.power_watts = power_watts;
    flow::SwitchProfile profile =
        flow::calibrateSwitchProfile(spec, pool);
    profile.radix = radix;
    return profile;
}

void
designLine(const flow::SwitchProfile &p)
{
    std::cout << "  " << p.name << ": radix " << p.radix << " x "
              << Table::num(p.line_rate_gbps, 0) << "G, "
              << Table::num(p.power_watts / 1000.0, 2)
              << " kW/switch, zero-load "
              << Table::num(p.zero_load_latency, 1)
              << " cycles, saturation "
              << Table::num(p.saturation, 3) << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace wss;
    bool smoke = bench::fastMode();
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            fatal("bench_dcn: unknown argument '", argv[i],
                  "' (--smoke | --json PATH)");
    }

    bench::banner("DCN",
                  "flow-level waferscale vs conventional fat-tree: "
                  "FCT tails, hops, power");

    exec::ThreadPool pool(bench::benchJobs());

    // Waferscale design: solver-sized on the paper's 300 mm design
    // point; the conventional baseline is a 64 x 200G pizza box
    // built from the same chiplet family.
    core::DesignSpec spec = bench::paperSpec(
        300.0, tech::siIf2x(), tech::opticalIo());
    spec.mapping_restarts = bench::envInt("WSS_BENCH_RESTARTS", 2);
    const auto solved = core::RadixSolver(spec).solveMaxPorts();
    if (solved.best.ports == 0)
        fatal("bench_dcn: solver found no feasible design");
    const std::int64_t ws_ports =
        alignPorts(solved.best.ports, spec.ssc.radix);

    const power::SscConfig conv_ssc =
        power::scaledSsc(32, spec.ssc.line_rate);
    constexpr std::int64_t kConvPorts = 64;
    const double conv_power =
        static_cast<double>(
            topology::closChipletCount(kConvPorts, conv_ssc.radix)) *
            conv_ssc.core_power +
        power::externalIoPower(kConvPorts, conv_ssc.line_rate,
                               tech::serdes());

    const std::int64_t cal_cap = smoke ? 128 : 512;
    const flow::SwitchProfile ws = calibrate(
        "ws-" + std::to_string(ws_ports), ws_ports,
        std::min(ws_ports, cal_cap), spec.ssc,
        solved.best.power.total(), smoke, &pool);
    const flow::SwitchProfile conv = calibrate(
        "conv-64", kConvPorts, kConvPorts, conv_ssc, conv_power,
        smoke, &pool);
    std::cout << "calibrated designs:\n";
    designLine(ws);
    designLine(conv);
    std::cout << "\n";

    flow::DcnCampaignConfig cfg;
    cfg.designs = {ws, conv};
    cfg.kind = flow::DcnKind::FatTree;
    cfg.hosts = smoke ? 128 : 256;
    cfg.workloads = {flow::workloadByName("websearch"),
                     flow::workloadByName("hadoop")};
    cfg.loads = {0.3, 0.7};
    cfg.flows_per_cell = smoke ? 2000 : 100000;
    cfg.seed =
        static_cast<std::uint64_t>(bench::envInt("WSS_BENCH_SEED", 1));
    const flow::DcnResult result = flow::DcnCampaign(cfg).run(&pool);

    Table table("Fat-tree comparison (" + Table::num(cfg.hosts) +
                    " hosts, " + Table::num(cfg.flows_per_cell) +
                    " flows/cell)",
                {"design", "workload", "load", "switches", "tiers",
                 "hops", "power kW", "fct p50 us", "fct p99 us",
                 "slow p99"});
    for (const auto &cell : result.cells) {
        table.addRow({cell.design, cell.workload,
                      Table::num(cell.load, 2),
                      Table::num(cell.switches),
                      Table::num(cell.tiers),
                      Table::num(cell.worst_hops),
                      Table::num(cell.power_kw, 2),
                      Table::num(cell.sim.fct_p50_s * 1e6, 1),
                      Table::num(cell.sim.fct_p99_s * 1e6, 1),
                      Table::num(cell.sim.slowdown_p99, 2)});
    }
    table.print(std::cout);

    if (json_path) {
        std::ostringstream campaign;
        result.writeJson(campaign);
        std::ofstream os(json_path);
        if (!os)
            fatal("cannot open '", json_path, "' for writing");
        os << "{\n  \"bench\": \"dcn\",\n  \"smoke\": "
           << (smoke ? "true" : "false") << ",\n  \"ws_design\": \""
           << ws.name << "\",\n  \"conv_design\": \"" << conv.name
           << "\",\n  \"campaign\": " << campaign.str() << "}\n";
        if (!os.flush())
            fatal("short write to '", json_path, "'");
        inform("DCN JSON written to ", json_path);
    }

    std::cout << "\n[campaign] " << result.cells.size()
              << " cells on " << result.threads << " threads, wall "
              << Table::num(result.wall_seconds, 2) << " s\n"
              << "\nOne waferscale switch replaces the whole "
                 "fat-tree: fewer switches and hops at the same "
                 "bisection, and the\nFCT tail difference under "
                 "load is what only the flow-level simulator can "
                 "report.\n";
    return 0;
}
