/**
 * @file
 * Fig. 9 — maximum 200G ports at 6400 Gbps/mm internal bandwidth
 * density (overclocked Si-IF links, Section V.A).
 */

#include "bench_common.hpp"
#include "core/radix_solver.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 9",
                  "maximum ports at 6400 Gbps/mm internal density");

    Table table("Maximum 200G ports (Si-IF overclocked, 6400 Gbps/mm)",
                {"substrate (mm)", "external I/O", "max ports",
                 "vs 3200 Gbps/mm"});
    for (double side : bench::kSubstrates) {
        for (const auto &ext : bench::externalIoSchemes()) {
            const auto base = core::RadixSolver(
                                  bench::paperSpec(side, tech::siIf(), ext))
                                  .solveMaxPorts();
            const auto fast =
                core::RadixSolver(
                    bench::paperSpec(side, tech::siIf2x(), ext))
                    .solveMaxPorts();
            const double gain =
                base.best.ports > 0
                    ? static_cast<double>(fast.best.ports) /
                          static_cast<double>(base.best.ports)
                    : 0.0;
            table.addRow({Table::num(side, 0), ext.name,
                          Table::num(fast.best.ports),
                          Table::num(gain, 2) + "x"});
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper: doubling the internal density lifts Optical "
                 "I/O to 8192 ports at 300 mm (4x) and 4096 at 200 mm "
                 "(2x);\n100 mm stays at its ideal 1024; Area I/O does "
                 "not move (its external capacity binds).\n";
    return 0;
}
