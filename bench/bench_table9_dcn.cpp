/**
 * @file
 * Table IX — a hyperscale DCN built with 48 waferscale spine switches
 * versus a conventional TH-5 network.
 */

#include "bench_common.hpp"
#include "sysarch/use_cases.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Table IX", "DCN with waferscale spine switches");

    for (const auto &[racks, ru] :
         {std::pair{16384L, 20}, std::pair{8192L, 11}}) {
        const auto cmp = sysarch::waferscaleDcn(racks, 48, ru);
        Table table(std::string(racks == 16384 ? "300 mm" : "200 mm") +
                        " waferscale switches",
                    {"metric", cmp.waferscale.name,
                     cmp.conventional.name});
        table.addRow({"# of racks", Table::num(cmp.waferscale.endpoints),
                      Table::num(cmp.conventional.endpoints)});
        table.addRow({"# of switches",
                      Table::num(cmp.waferscale.switches),
                      Table::num(cmp.conventional.switches)});
        table.addRow({"# of cables", Table::num(cmp.waferscale.cables),
                      Table::num(cmp.conventional.cables)});
        table.addRow({"worst case hop count",
                      Table::num(cmp.waferscale.worst_case_hops),
                      Table::num(cmp.conventional.worst_case_hops)});
        table.addRow({"size (RU)",
                      Table::num(cmp.waferscale.rack_units),
                      Table::num(cmp.conventional.rack_units)});
        table.addRow({"per-rack BW (Gbps)",
                      Table::num(cmp.waferscale.port_bandwidth, 0),
                      Table::num(cmp.conventional.port_bandwidth, 0)});
        table.addRow({"bisection bandwidth (Tbps)",
                      Table::num(cmp.waferscale.bisection_tbps, 1),
                      Table::num(cmp.conventional.bisection_tbps, 1)});
        table.print(std::cout);

        const auto savings = sysarch::estimateSavings(cmp);
        std::cout << "savings: optics $"
                  << Table::num(savings.optics_usd / 1e6, 0)
                  << "M, fiber $"
                  << Table::num(savings.fiber_usd / 1e6, 2)
                  << "M, colocation $"
                  << Table::num(savings.colocation_usd / 1e6, 1)
                  << "M -> total $"
                  << Table::num(savings.total() / 1e6, 0) << "M\n\n";
    }
    std::cout << "Paper: 66% fewer optical links and 94% less spine "
                 "rack space — hundreds of millions of dollars for "
                 "the\nbiggest datacenters.\n";
    return 0;
}
