/**
 * @file
 * Fig. 23 — a 2048-port 800G waferscale switch versus the equivalent
 * 2048-host network of discrete TH-5 switch boxes, across synthetic
 * traffic patterns.
 *
 * Both fabrics are the same logical 2-level Clos of radix-64 (800G)
 * sub-switches; only the physical latencies differ, exactly as in
 * the paper: waferscale SSC delay 11 cycles with 1-cycle inter-SSC
 * links, baseline switch-box delay 15 cycles with 8-cycle inter-box
 * links, 8-cycle host I/O on both, 16 VCs, 32-flit buffers.
 *
 * The ten (pattern x fabric) sweeps run as one exec::Campaign on a
 * work-stealing pool (WSS_JOBS threads), so every core chews on a
 * different curve; per-cell timing lands in WSS_BENCH_CSV /
 * WSS_BENCH_JSON when set. Results are bit-identical to the old
 * serial loop.
 */

#include "bench_common.hpp"
#include "exec/campaign.hpp"
#include "topology/clos.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 23",
                  "2048-port waferscale switch vs TH-5 switch network");

    const std::int64_t ports = bench::envInt("WSS_BENCH_PORTS", 2048);
    const auto topo = topology::buildFoldedClos(
        {ports, power::tomahawk5(3), 1}); // 64 x 800G configuration
    const bool fast = bench::fastMode();

    auto make_spec = [&](bool waferscale) {
        sim::NetworkSpec spec;
        spec.vcs = 16;
        spec.buffer_per_port = 32;
        spec.rc_delay_ingress = 2;
        spec.rc_delay_transit = 2;
        // Total switch traversal: 11 cycles on-wafer, 15 in a box.
        spec.pipeline_delay = waferscale ? 9 : 13;
        spec.terminal_link_latency = 8;
        spec.internal_link_latency = waferscale ? 1 : 8;
        return spec;
    };

    const std::vector<double> rates = {0.1, 0.3, 0.5, 0.7, 0.85};
    sim::SimConfig cfg;
    cfg.warmup = fast ? 300 : 1000;
    cfg.measure = fast ? 1000 : 2500;
    cfg.drain_limit = fast ? 3000 : 6000;
    cfg.seed = bench::envInt("WSS_BENCH_SEED", 1);

    const char *patterns[] = {"uniform", "bitcomp", "shuffle",
                              "tornado", "asymmetric"};

    exec::Campaign campaign;
    for (const char *pattern : patterns) {
        for (bool waferscale : {true, false}) {
            const auto spec = make_spec(waferscale);
            exec::SweepJob job;
            job.make_network = [&topo, spec](std::uint64_t seed) {
                return std::make_unique<sim::Network>(topo, spec, seed);
            };
            job.make_workload = [pattern,
                                 ports](double rate, std::uint64_t) {
                return std::make_unique<sim::SyntheticWorkload>(
                    sim::makeTraffic(pattern, static_cast<int>(ports)),
                    rate, 1);
            };
            job.rates = rates;
            job.cfg = cfg;
            campaign.addSweep(std::string(pattern) + "/" +
                                  (waferscale ? "waferscale" : "th5"),
                              std::move(job));
        }
    }

    exec::ThreadPool pool(bench::benchJobs());
    const auto result = campaign.run(&pool);

    Table table("Average packet latency (cycles of 20 ns) and "
                "saturation throughput",
                {"pattern", "fabric", "zero-load", "lat@0.5", "lat@0.7",
                 "saturation"});
    std::size_t job_index = 0;
    for (const char *pattern : patterns) {
        for (bool waferscale : {true, false}) {
            const auto &sweep =
                result.jobs[job_index++].sweep.combined;
            table.addRow({pattern,
                          waferscale ? "waferscale" : "TH-5 network",
                          Table::num(sweep.zero_load_latency, 1),
                          Table::num(sweep.points[2].avg_latency, 1),
                          Table::num(sweep.points[3].avg_latency, 1),
                          Table::num(sweep.saturation_throughput, 3)});
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper: the waferscale switch's zero-load latency "
                 "is ~38% lower (37 vs 60 cycles) with equal or higher "
                 "saturation\nthroughput on every pattern except "
                 "asymmetric.\n";
    bench::reportCampaign(result);
    return 0;
}
