/**
 * @file
 * Fig. 6 — maximum ports achievable with WSI when only substrate
 * area constrains ("the ideal case"), for the three TH-5 port-rate
 * configurations at 100/200/300 mm substrates.
 */

#include "bench_common.hpp"
#include "core/radix_solver.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 6",
                  "ideal (area-only) maximum port count vs substrate");

    Table table("Maximum ports, area constraint only",
                {"substrate (mm)", "SSC config", "max ports",
                 "benefit vs one SSC"});
    for (double side : bench::kSubstrates) {
        for (int cfg : {1, 2, 3}) {
            core::DesignSpec spec = bench::paperSpec(
                side, tech::siIf(), tech::opticalIo());
            spec.ssc = power::tomahawk5(cfg);
            spec.area_only = true;
            const auto result = core::RadixSolver(spec).solveMaxPorts();
            table.addRow(
                {Table::num(side, 0), spec.ssc.name,
                 Table::num(result.best.ports),
                 Table::num(static_cast<double>(result.best.ports) /
                                spec.ssc.radix,
                            0) +
                     "x"});
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper: up to 32x more ports than a single TH-5 at "
                 "300 mm; 16x at 200 mm; 4x at 100 mm.\n";
    return 0;
}
