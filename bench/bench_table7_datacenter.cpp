/**
 * @file
 * Table VII — a single-switch datacenter versus an equivalent TH-5
 * Clos network.
 */

#include "bench_common.hpp"
#include "sysarch/use_cases.hpp"

namespace {

void
printComparison(const wss::sysarch::DeploymentComparison &cmp,
                const char *title)
{
    using wss::Table;
    Table table(title,
                {"metric", cmp.waferscale.name, cmp.conventional.name});
    auto row = [&](const char *metric, auto ws, auto conv) {
        table.addRow({metric, Table::num(ws), Table::num(conv)});
    };
    row("# of servers", cmp.waferscale.endpoints,
        cmp.conventional.endpoints);
    row("# of switches", cmp.waferscale.switches,
        cmp.conventional.switches);
    row("# of cables", cmp.waferscale.cables, cmp.conventional.cables);
    row("worst case hop count", cmp.waferscale.worst_case_hops,
        cmp.conventional.worst_case_hops);
    row("size (RU)", cmp.waferscale.rack_units,
        cmp.conventional.rack_units);
    table.addRow({"port bandwidth (Gbps)",
                  Table::num(cmp.waferscale.port_bandwidth, 0),
                  Table::num(cmp.conventional.port_bandwidth, 0)});
    table.addRow({"bisection bandwidth (Tbps)",
                  Table::num(cmp.waferscale.bisection_tbps, 1),
                  Table::num(cmp.conventional.bisection_tbps, 1)});
    table.print(std::cout);
}

} // namespace

int
main()
{
    using namespace wss;
    bench::banner("Table VII",
                  "single-switch datacenter vs TH-5 Clos network");

    printComparison(
        sysarch::singleSwitchDatacenter(8192, 200.0, 20),
        "300 mm waferscale switch (8192 servers)");
    printComparison(
        sysarch::singleSwitchDatacenter(4096, 200.0, 11),
        "200 mm waferscale switch (4096 servers)");

    const auto savings = sysarch::estimateSavings(
        sysarch::singleSwitchDatacenter(8192, 200.0, 20));
    std::cout << "\nEstimated savings (300 mm): optics $"
              << Table::num(savings.optics_usd / 1e6, 1)
              << "M, colocation $"
              << Table::num(savings.colocation_usd / 1e6, 2)
              << "M over 36 months.\n";
    std::cout << "Paper: 90% less rack space, one third the hop "
                 "count, and all inter-switch optics removed.\n";
    return 0;
}
