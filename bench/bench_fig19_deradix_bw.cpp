/**
 * @file
 * Fig. 19 — available internal I/O bandwidth per SSC port at 300 mm,
 * radix-256 versus deradixed radix-128 sub-switches.
 */

#include "bench_common.hpp"
#include "core/radix_solver.hpp"
#include "topology/clos.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 19",
                  "available internal bandwidth per port, 300 mm, "
                  "3200 Gbps/mm");

    Table table("Per-port internal bandwidth at the hottest edge "
                "(requirement: 200 Gbps)",
                {"SSC radix", "system radix", "available (Gbps/port)",
                 "meets 200G?"});
    for (int factor : {1, 2}) {
        for (std::int64_t ports : {2048, 4096, 8192}) {
            core::DesignSpec spec =
                bench::paperSpec(300.0, tech::siIf(), tech::opticalIo());
            spec.ssc =
                topology::deradixedSsc(power::tomahawk5(1), factor);
            const auto eval = core::RadixSolver(spec).evaluate(ports);
            std::string available =
                eval.violated == core::Constraint::Area ||
                        eval.violated == core::Constraint::TopologyLimit
                    ? "does not fit"
                    : Table::num(eval.available_bw_per_port, 0);
            table.addRow({Table::num(spec.ssc.radix), Table::num(ports),
                          available,
                          eval.feasible ? "yes"
                          : eval.violated ==
                                  core::Constraint::InternalBandwidth
                              ? "no"
                              : "n/a"});
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper: with radix-256 SSCs only the 2048-port "
                 "system meets 200G per port; deradixed radix-128 SSCs "
                 "lift the\n4096-port system above the requirement.\n";
    return 0;
}
