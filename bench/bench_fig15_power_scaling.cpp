/**
 * @file
 * Fig. 15 — node-normalized core power of the Tomahawk and TeraLynx
 * series versus radix, with the least-squares quadratic fits.
 */

#include "bench_common.hpp"
#include "power/radix_power_model.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 15",
                  "commodity switch power vs radix, normalized to 5 nm");

    Table table("Catalog points (radix in 200G-equivalent ports)",
                {"series", "part", "radix", "node", "raw core (W)",
                 "5nm-normalized (W)", "quadratic model (W)"});
    const power::RadixPowerModel model;
    for (const auto &[series, catalog] :
         {std::pair{"Tomahawk", power::tomahawkSeries()},
          std::pair{"TeraLynx", power::teralynxSeries()}}) {
        for (const auto &ssc : catalog) {
            table.addRow(
                {series, ssc.name, Table::num(ssc.radix),
                 std::string(tech::toString(ssc.node)),
                 Table::num(ssc.core_power, 1),
                 Table::num(ssc.corePowerAt5nm(), 1),
                 Table::num(model.corePower(ssc.radix, ssc.line_rate),
                            1)});
        }
    }
    table.print(std::cout);

    Table fits("Least-squares quadratic fits P(k) = a k^2 + b k + c",
               {"series", "a", "b", "c", "P(256)"});
    for (const auto &[series, catalog] :
         {std::pair{"Tomahawk", power::tomahawkSeries()},
          std::pair{"TeraLynx", power::teralynxSeries()}}) {
        const auto fit = power::fitQuadratic(catalog);
        fits.addRow({series, Table::num(fit.a, 5), Table::num(fit.b, 3),
                     Table::num(fit.c, 2), Table::num(fit(256.0), 1)});
    }
    fits.print(std::cout);
    std::cout << "\nPaper: normalized power tracks the quadratic "
                 "scaling suggested by Ahn et al. for both series — "
                 "the basis\nof the heterogeneous-switch optimization "
                 "(two half-radix dies burn half the power of one "
                 "full-radix die).\n";
    return 0;
}
