/**
 * @file
 * Ablation — square-substrate simplification versus a round wafer.
 *
 * The paper assumes a square substrate ("100 mm corresponds to a
 * square with a side of 100 mm"); real wafers are round, offering
 * pi/4 of the area and pi/4 of the periphery beachfront of the
 * circumscribing square. This ablation quantifies how much of each
 * headline result survives the shape correction.
 */

#include "bench_common.hpp"
#include "core/radix_solver.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Ablation", "square substrate vs round wafer");

    Table table("Maximum 200G ports (Optical I/O)",
                {"diameter/side (mm)", "internal BW", "square",
                 "round", "round blocked by"});
    for (double side : bench::kSubstrates) {
        for (bool overclocked : {false, true}) {
            const auto wsi =
                overclocked ? tech::siIf2x() : tech::siIf();
            core::DesignSpec spec =
                bench::paperSpec(side, wsi, tech::opticalIo());
            const auto square = core::RadixSolver(spec).solveMaxPorts();
            spec.round_substrate = true;
            const auto round = core::RadixSolver(spec).solveMaxPorts();
            table.addRow(
                {Table::num(side, 0),
                 Table::num(wsi.totalBandwidthDensity(), 0) + " Gbps/mm",
                 Table::num(square.best.ports),
                 Table::num(round.best.ports),
                 std::string(round.blocking
                                 ? core::toString(
                                       round.blocking->violated)
                                 : "ladder end")});
        }
    }
    table.print(std::cout);
    std::cout << "\nA round wafer loses pi/4 (~21%) of area and "
                 "beachfront: internally-bound points survive (the "
                 "mesh channel\nloads do not change) while area-bound "
                 "points drop one ladder step — the paper's "
                 "square-substrate numbers\nare mild upper bounds.\n";
    return 0;
}
