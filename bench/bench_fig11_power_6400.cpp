/**
 * @file
 * Fig. 11 — power breakdown at 6400 Gbps/mm internal density.
 */

#include "bench_power_breakdown_common.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 11", "power breakdown at 6400 Gbps/mm");
    bench::printPowerBreakdown(tech::siIf2x());
    std::cout << "\nPaper: up to 62 kW for the 8192-port switch (3.5x "
                 "the 3200 Gbps/mm case); I/O is 33%-43.8% of the "
                 "total.\n";
    return 0;
}
