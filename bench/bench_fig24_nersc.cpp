/**
 * @file
 * Fig. 24 — trace-driven comparison of the 2048-port waferscale
 * switch versus the TH-5 switch network on NERSC mini-app workloads.
 *
 * The paper replays LULESH / MOCFE / MultiGrid / Nekbone traces
 * (512/1024 ranks, duplicated onto 2048 endpoints). Real traces are
 * not redistributable, so structurally matched synthetic traces are
 * generated (see src/trace/generators.*). Replay is closed-loop: the
 * mini-apps are bulk-synchronous, so each iteration's communication
 * is released only after the previous iteration has drained
 * (TraceWorkload's barrier mode). The comparison metric is sustained
 * communication throughput = flits delivered / makespan when the
 * compute gaps are fully compressed — exactly where the waferscale
 * fabric's lower per-hop latency shortens the application critical
 * path.
 */

#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "topology/clos.hpp"
#include "trace/generators.hpp"
#include "trace/trace_workload.hpp"

namespace {

using namespace wss;

sim::NetworkSpec
fabricSpec(bool waferscale)
{
    sim::NetworkSpec spec;
    spec.vcs = 16;
    spec.buffer_per_port = 32;
    spec.rc_delay_ingress = 2;
    spec.rc_delay_transit = 2;
    spec.pipeline_delay = waferscale ? 9 : 13;
    spec.terminal_link_latency = 8;
    spec.internal_link_latency = waferscale ? 1 : 8;
    return spec;
}

struct ReplayResult
{
    sim::Cycle makespan = 0;
    double sustained_flits_per_cycle = 0.0;
    double avg_latency = 0.0;
    bool completed = false;
};

/// Closed-loop replay of @p trace at @p intensity through one fabric.
ReplayResult
replay(const topology::LogicalTopology &topo, bool waferscale,
       const trace::MessageTrace &trace, double intensity,
       sim::Cycle barrier_period, std::uint64_t seed)
{
    sim::Network net(topo, fabricSpec(waferscale), seed);
    trace::TraceWorkload workload(trace, intensity, barrier_period);
    sim::SimConfig cfg;
    cfg.warmup = 0;
    cfg.run_to_exhaustion = true;
    // Generous ceiling: barriers stretch the timeline dynamically.
    cfg.measure = 40 * workload.scaledSpan() + 100000;
    cfg.drain_limit = 0;
    cfg.seed = seed;
    sim::Simulator sim(net, workload, cfg);
    const auto result = sim.run();

    ReplayResult out;
    out.makespan = result.end_cycle;
    out.sustained_flits_per_cycle =
        result.end_cycle > 0
            ? static_cast<double>(result.flits_delivered) /
                  static_cast<double>(result.end_cycle)
            : 0.0;
    out.avg_latency = result.avg_packet_latency;
    out.completed = result.stable;
    return out;
}

} // namespace

int
main()
{
    using namespace wss;
    bench::banner("Figure 24",
                  "NERSC mini-app traces: waferscale vs TH-5 network");

    const auto topo = topology::buildFoldedClos(
        {2048, power::tomahawk5(3), 1});
    const bool fast = bench::fastMode();
    const std::uint64_t seed = bench::envInt("WSS_BENCH_SEED", 1);

    trace::GeneratorConfig gen;
    gen.iterations = fast ? 2 : 3;
    gen.iteration_period = 600;
    gen.base_message_flits = 8;
    gen.seed = seed;

    // Compute gaps fully compressed: communication dominates and the
    // fabric's latency sets the iteration critical path.
    const double intensity = 8.0;

    Table table("Closed-loop replay (iteration barriers), intensity x8",
                {"trace", "fabric", "makespan (cycles)",
                 "sustained flits/cycle", "avg latency", "completed"});
    Table summary("Sustained-throughput comparison",
                  {"trace", "waferscale", "TH-5 network",
                   "waferscale advantage %"});

    for (const char *name :
         {"lulesh", "mocfe", "multigrid", "nekbone"}) {
        // 512-rank traces duplicated 4x onto the 2048 endpoints, as
        // in the paper.
        const auto base = trace::generateMiniApp(name, 512, gen);
        const auto trace = trace::duplicateTrace(base, 4);

        double throughput[2] = {0.0, 0.0};
        for (bool waferscale : {true, false}) {
            const auto r = replay(topo, waferscale, trace, intensity,
                                  gen.iteration_period, seed);
            throughput[waferscale ? 0 : 1] =
                r.sustained_flits_per_cycle;
            table.addRow({name,
                          waferscale ? "waferscale" : "TH-5 network",
                          Table::num(r.makespan),
                          Table::num(r.sustained_flits_per_cycle, 2),
                          Table::num(r.avg_latency, 1),
                          r.completed ? "yes" : "no"});
        }
        summary.addRow(
            {name, Table::num(throughput[0], 2),
             Table::num(throughput[1], 2),
             Table::num(100.0 * (throughput[0] / throughput[1] - 1.0),
                        1)});
    }
    table.print(std::cout);
    summary.print(std::cout);
    std::cout << "\nPaper: waferscale saturation throughput is 116.7% "
                 "(LULESH), 16.7% (MOCFE), 21.4% (MultiGrid) and "
                 "15.2%\n(Nekbone) above the TH-5 network. Absolute "
                 "ratios here depend on the synthetic-trace "
                 "substitution; the\nwaferscale fabric wins on every "
                 "trace, most where the communication critical path "
                 "is longest.\n";
    return 0;
}
