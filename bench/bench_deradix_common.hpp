/**
 * @file
 * Shared sweep for the subswitch-deradixing figures (17, 18).
 */

#ifndef WSS_BENCH_DERADIX_COMMON_HPP
#define WSS_BENCH_DERADIX_COMMON_HPP

#include "bench_common.hpp"
#include "core/radix_solver.hpp"
#include "topology/clos.hpp"

namespace wss::bench {

/// Sweep deradix factors {1, 2, 4} at every substrate for one WSI
/// operating point and print the achievable radix.
inline void
printDeradixSweep(const tech::WsiTechnology &wsi)
{
    Table table("Maximum ports vs sub-switch radix (" + wsi.name + ", " +
                    Table::num(wsi.totalBandwidthDensity(), 0) +
                    " Gbps/mm, Optical I/O)",
                {"substrate (mm)", "SSC radix", "max ports",
                 "blocked next by"});
    for (double side : kSubstrates) {
        for (int factor : {1, 2, 4}) {
            core::DesignSpec spec =
                paperSpec(side, wsi, tech::opticalIo());
            spec.ssc =
                topology::deradixedSsc(power::tomahawk5(1), factor);
            const auto result = core::RadixSolver(spec).solveMaxPorts();
            table.addRow(
                {Table::num(side, 0), Table::num(spec.ssc.radix),
                 Table::num(result.best.ports),
                 std::string(result.blocking
                                 ? core::toString(
                                       result.blocking->violated)
                                 : "ladder end")});
        }
    }
    table.print(std::cout);
}

} // namespace wss::bench

#endif // WSS_BENCH_DERADIX_COMMON_HPP
