/**
 * @file
 * Resilience — defect-map Monte-Carlo over the paper's spare-socket
 * yield story (Section III.A/III.B, taken past assembly time).
 *
 * Where bench_ablation_yield reports the closed-form
 * tech::chipletSystemYield, this bench samples concrete defect maps
 * (bond failures, KGD test escapes, field failures), repairs them
 * with spare SSCs, and asks what the degraded switch still delivers:
 * survival probability, expected usable radix, surviving bisection,
 * and — for the first few maps of each cell — the packet-level
 * saturation throughput of the degraded fabric.
 */

#include "bench_common.hpp"
#include "fault/resilience.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Resilience",
                  "defect-map Monte-Carlo: survival, usable radix, "
                  "degraded throughput");

    fault::ResilienceConfig cfg;
    cfg.ssc = power::scaledSsc(64, 200.0);
    cfg.radices = {256, 512, 1024};
    cfg.defect_densities = {0.1, 0.3};
    cfg.spare_counts = {0, 1, 2, 4};
    cfg.samples = bench::fastMode() ? 200 : 2000;
    cfg.sim_samples = bench::fastMode() ? 0 : 2;
    cfg.sim_cfg.warmup = 500;
    cfg.sim_cfg.measure = 2000;
    cfg.sim_cfg.drain_limit = 10000;
    cfg.seed =
        static_cast<std::uint64_t>(bench::envInt("WSS_BENCH_SEED", 1));

    exec::ThreadPool pool(bench::benchJobs());
    const fault::ResilienceResult result =
        fault::ResilienceCampaign(cfg).run(&pool);

    Table table("Survival and degraded capacity (" +
                    Table::num(cfg.samples) + " maps/cell)",
                {"topology", "density", "spares", "survival",
                 "analytic", "E[ports]", "bisection", "deg/healthy thr"});
    for (const auto &cell : result.cells) {
        table.addRow(
            {cell.topology, Table::num(cell.defect_density, 2),
             Table::num(cell.spares), Table::num(cell.survival, 4),
             Table::num(cell.analytic_bond_yield, 4),
             Table::num(cell.expected_usable_ports, 1),
             Table::num(cell.mean_bisection_fraction, 4),
             cell.sim_samples > 0
                 ? Table::num(cell.mean_degraded_throughput, 3) + "/" +
                       Table::num(cell.healthy_throughput, 3)
                 : "-"});
    }
    table.print(std::cout);

    if (const char *path = std::getenv("WSS_BENCH_CSV")) {
        std::ofstream os(path);
        if (!os)
            fatal("cannot open '", path, "' for writing");
        result.writeCsv(os);
        inform("resilience CSV written to ", path);
    }
    if (const char *path = std::getenv("WSS_BENCH_JSON")) {
        std::ofstream os(path);
        if (!os)
            fatal("cannot open '", path, "' for writing");
        result.writeJson(os);
        inform("resilience JSON written to ", path);
    }

    std::cout << "\n[campaign] " << result.cells.size() << " cells on "
              << result.threads << " threads, wall "
              << Table::num(result.wall_seconds, 2) << " s\n"
              << "\nSpare sockets close the survival gap the "
                 "closed-form bond-yield model predicts, and the "
                 "degraded/healthy\nthroughput ratio tracks the "
                 "surviving bisection fraction under uniform "
                 "traffic.\n";
    return 0;
}
