/**
 * @file
 * Fig. 28 — maximum ports allowed by each cooling solution at each
 * wafer size, after the heterogeneous optimization.
 */

#include "bench_common.hpp"
#include "core/radix_solver.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 28",
                  "maximum ports per cooling solution (heterogeneous "
                  "design)");

    Table table("Maximum 200G ports (6400 Gbps/mm, Optical I/O, "
                "4x leaf split)",
                {"cooling", "100 mm", "200 mm", "300 mm",
                 "300 mm benefit"});
    for (const auto &cooling : tech::allCoolingSolutions()) {
        std::vector<std::string> row{cooling.name};
        std::int64_t at300 = 0;
        for (double side : bench::kSubstrates) {
            core::DesignSpec spec = bench::paperSpec(
                side, tech::siIf2x(), tech::opticalIo());
            spec.leaf_split = 4;
            spec.cooling = cooling;
            const auto result = core::RadixSolver(spec).solveMaxPorts();
            row.push_back(Table::num(result.best.ports));
            if (side == 300.0)
                at300 = result.best.ports;
        }
        row.push_back(Table::num(at300 / 256.0, 0) + "x");
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nPaper: even air cooling sustains an 8x-radix "
                 "switch and water cooling 32x at 300 mm; multi-phase "
                 "cooling is\nrecommended to unlock the full benefit "
                 "at every wafer size.\n";
    return 0;
}
