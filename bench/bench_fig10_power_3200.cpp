/**
 * @file
 * Fig. 10 — power breakdown at 3200 Gbps/mm internal density.
 */

#include "bench_power_breakdown_common.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 10", "power breakdown at 3200 Gbps/mm");
    bench::printPowerBreakdown(tech::siIf());
    std::cout << "\nPaper: power exceeds 14 kW-class for the 200/300 mm "
                 "Optical and Area I/O switches at this density.\n";
    return 0;
}
