/**
 * @file
 * Fig. 21 — saturation throughput versus input-buffer size for
 * several link delays (cycle-accurate, 64 VCs, shared input buffer).
 *
 * One radix-64 router with terminals behind links of the given
 * delay; credit round-trip = 2 x delay + processing. Small shared
 * buffers cannot cover the credit RTT, capping throughput — the
 * mechanism behind the paper's low-latency-buffering claim: on-wafer
 * links (1-cycle) saturate with a fraction of the buffering that
 * 200 ns-class links need.
 *
 * All 24 (buffer x delay) cells run as one exec::Campaign on a
 * work-stealing pool (WSS_JOBS threads); per-cell timing lands in
 * WSS_BENCH_CSV / WSS_BENCH_JSON when set.
 */

#include "bench_common.hpp"
#include "core/buffer_sizing.hpp"
#include "exec/campaign.hpp"
#include "topology/logical_topology.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 21",
                  "saturation throughput vs buffer size and link delay");

    // A single radix-64 SSC: all 64 ports face terminals.
    topology::LogicalTopology topo("single-ssc", 200.0);
    const int type = topo.addSscType(power::scaledSsc(64, 200.0));
    topo.addNode(topology::NodeRole::Router, type, 64);

    const bool fast = bench::fastMode();
    const int link_delays[] = {1, 5, 10, 25}; // cycles (20 ns each)
    const int buffers[] = {4, 8, 16, 32, 64, 128};

    exec::Campaign campaign;
    for (int buffer : buffers) {
        for (int delay : link_delays) {
            sim::NetworkSpec spec;
            spec.vcs = 64;
            spec.buffer_per_port = buffer;
            spec.rc_delay_ingress = 1;
            spec.rc_delay_transit = 1;
            spec.pipeline_delay = 1;
            spec.terminal_link_latency = delay;

            exec::SweepJob job;
            job.make_network = [&topo, spec](std::uint64_t seed) {
                return std::make_unique<sim::Network>(topo, spec, seed);
            };
            job.make_workload = [](double rate, std::uint64_t) {
                return std::make_unique<sim::SyntheticWorkload>(
                    sim::uniformTraffic(64), rate, 1);
            };
            job.rates = {0.98};
            job.cfg.warmup = fast ? 300 : 1000;
            job.cfg.measure = fast ? 1000 : 4000;
            job.cfg.drain_limit = 2000;
            job.cfg.seed = bench::envInt("WSS_BENCH_SEED", 1);
            campaign.addSweep("buffer" + std::to_string(buffer) +
                                  "/delay" + std::to_string(delay),
                              std::move(job));
        }
    }

    exec::ThreadPool pool(bench::benchJobs());
    const auto result = campaign.run(&pool);

    Table table("Accepted throughput at offered 0.98 "
                "(flits/terminal/cycle)",
                {"buffer (flits/port)", "delay 1 (20ns)",
                 "delay 5 (100ns)", "delay 10 (200ns)",
                 "delay 25 (500ns)", "B=RTTxBW rule (200ns)"});
    std::size_t cell = 0;
    for (int buffer : buffers) {
        std::vector<std::string> row{Table::num(buffer)};
        for (std::size_t d = 0; d < std::size(link_delays); ++d) {
            const auto &sweep = result.jobs[cell++].sweep;
            row.push_back(
                Table::num(sweep.combined.points[0].accepted, 3));
        }
        // The B = RTT x BW rule for the 200 ns link (RTT = 2 x 10
        // cycles x 20 ns), one 200G flow per credit loop.
        row.push_back(Table::num(
            core::bufferSizeFlits(2 * 10 * 20.0, 200.0, 1, 4000)));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nPaper: saturation throughput climbs with buffer "
                 "size and the knee moves right as link delay grows; "
                 "1-cycle\non-wafer links saturate with a small "
                 "fraction of the buffering a 200 ns link needs.\n";
    bench::reportCampaign(result);
    return 0;
}
