/**
 * @file
 * Fig. 22 — latency versus load with and without proprietary routing
 * (removing the L3 IP-table lookup in non-ingress SSCs).
 *
 * 2-level Clos of radix-256 SSCs, 64 VCs, 128-flit shared buffer per
 * port, uniform traffic. Baseline: 4-cycle route computation at every
 * SSC; proprietary: 2 cycles at the ingress SSC (full lookup once,
 * destination port prepended to the header) and 1 cycle elsewhere.
 * Switch pipeline is 16 cycles total in the baseline, as in the
 * paper.
 *
 * The paper simulates the 8192-port (96-SSC) fabric; the default here
 * is the 2048-port quarter-scale fabric so the bench completes on a
 * laptop core — set WSS_BENCH_PORTS=8192 for the full configuration.
 */

#include "bench_common.hpp"
#include "sim/load_sweep.hpp"
#include "topology/clos.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 22",
                  "proprietary routing: latency vs load (uniform)");

    const std::int64_t ports = bench::envInt("WSS_BENCH_PORTS", 2048);
    const auto topo =
        topology::buildFoldedClos({ports, power::tomahawk5(1), 1});
    const bool fast = bench::fastMode();

    auto make_spec = [&](bool proprietary) {
        sim::NetworkSpec spec;
        spec.vcs = 64;
        spec.buffer_per_port = 128;
        spec.rc_delay_ingress = proprietary ? 2 : 4;
        spec.rc_delay_transit = proprietary ? 1 : 4;
        spec.pipeline_delay = 12; // 16-cycle switch incl. baseline RC
        spec.terminal_link_latency = 8;
        spec.internal_link_latency = 1;
        return spec;
    };

    const std::vector<double> rates = {0.1, 0.3, 0.5, 0.6, 0.7,
                                       0.8, 0.9};
    sim::SimConfig cfg;
    cfg.warmup = fast ? 300 : 1000;
    cfg.measure = fast ? 1000 : 2500;
    cfg.drain_limit = fast ? 3000 : 6000;
    cfg.seed = bench::envInt("WSS_BENCH_SEED", 1);

    Table table("Average packet latency (cycles of 20 ns)",
                {"offered load", "baseline latency",
                 "proprietary latency", "baseline accepted",
                 "proprietary accepted"});
    sim::SweepResult base, prop;
    for (bool proprietary : {false, true}) {
        const auto spec = make_spec(proprietary);
        auto sweep = sim::sweepLoad(
            [&] {
                return std::make_unique<sim::Network>(topo, spec,
                                                      cfg.seed);
            },
            [&](double rate) {
                return std::make_unique<sim::SyntheticWorkload>(
                    sim::uniformTraffic(static_cast<int>(ports)), rate,
                    1);
            },
            rates, cfg);
        (proprietary ? prop : base) = std::move(sweep);
    }
    for (std::size_t i = 0; i < rates.size(); ++i) {
        table.addRow({Table::num(rates[i], 2),
                      Table::num(base.points[i].avg_latency, 1),
                      Table::num(prop.points[i].avg_latency, 1),
                      Table::num(base.points[i].accepted, 3),
                      Table::num(prop.points[i].accepted, 3)});
    }
    table.print(std::cout);
    std::cout << "\nzero-load latency: baseline "
              << Table::num(base.zero_load_latency, 1)
              << " vs proprietary "
              << Table::num(prop.zero_load_latency, 1)
              << " cycles; saturation throughput: baseline "
              << Table::num(base.saturation_throughput, 3)
              << " vs proprietary "
              << Table::num(prop.saturation_throughput, 3) << " ("
              << Table::num(100.0 * (prop.saturation_throughput /
                                         base.saturation_throughput -
                                     1.0),
                            1)
              << "% better)\n";
    std::cout << "Paper: proprietary routing lowers zero-load latency "
                 "and raises saturation throughput by 14.5%/11% for "
                 "the\n200/300 mm switches.\n";
    return 0;
}
