/**
 * @file
 * Table VI — chiplets needed by Clos versus hierarchical and modular
 * crossbars.
 */

#include "bench_common.hpp"
#include "topology/clos.hpp"
#include "topology/properties.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Table VI",
                  "chiplet counts: Clos vs hierarchical/modular "
                  "crossbars");

    Table table("Chiplets required (k = 256)",
                {"total ports N", "Clos 3(N/k)", "HC (N/k)^2",
                 "MC (N/k)^2", "HC area (m^2 of silicon)"});
    for (std::int64_t ports : {1024, 2048, 4096, 8192, 16384}) {
        const auto hc =
            topology::hierarchicalCrossbarChiplets(ports, 256);
        table.addRow({Table::num(ports),
                      Table::num(topology::closChipletCount(ports, 256)),
                      Table::num(hc),
                      Table::num(
                          topology::modularCrossbarChiplets(ports, 256)),
                      Table::num(hc * 800.0 / 1e6, 2)});
    }
    table.print(std::cout);
    std::cout << "\nPaper: at N = 8192 a Clos needs 96 chiplets where "
                 "crossbar scalings need 1024 — prohibitive in area, "
                 "power,\nand cost.\n";
    return 0;
}
