/**
 * @file
 * Fig. 16 — power reduction from the heterogeneous switch design
 * (scaled smaller dies as leaves), with the cooling envelopes.
 */

#include "bench_common.hpp"
#include "core/radix_solver.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 16",
                  "heterogeneous switch power reduction + cooling "
                  "envelopes");

    Table table("Homogeneous vs heterogeneous (leaves split 4x, "
                "6400 Gbps/mm, Optical I/O)",
                {"substrate (mm)", "ports", "homogeneous (kW)",
                 "heterogeneous (kW)", "reduction %",
                 "density before (W/mm^2)", "density after (W/mm^2)",
                 "within water 0.5?"});
    for (double side : bench::kSubstrates) {
        core::DesignSpec spec =
            bench::paperSpec(side, tech::siIf2x(), tech::opticalIo());
        const auto homo = core::RadixSolver(spec).solveMaxPorts();
        spec.leaf_split = 4;
        const auto hetero =
            core::RadixSolver(spec).evaluate(homo.best.ports);
        const double reduction =
            100.0 *
            (1.0 - hetero.power.total() / homo.best.power.total());
        table.addRow(
            {Table::num(side, 0), Table::num(homo.best.ports),
             Table::num(homo.best.power.total() / 1000.0, 1),
             Table::num(hetero.power.total() / 1000.0, 1),
             Table::num(reduction, 1),
             Table::num(homo.best.power_density, 3),
             Table::num(hetero.power_density, 3),
             hetero.power_density <=
                     tech::waterCooling().max_power_density_w_mm2
                 ? "yes"
                 : "no"});
    }
    table.print(std::cout);

    Table envelopes("Cooling envelopes (W/mm^2)",
                    {"solution", "sustainable density",
                     "budget at 300 mm (kW)"});
    for (const auto &cooling : tech::allCoolingSolutions()) {
        envelopes.addRow(
            {cooling.name,
             Table::num(cooling.max_power_density_w_mm2, 2),
             Table::num(cooling.powerBudget(300.0) / 1000.0, 1)});
    }
    envelopes.print(std::cout);
    std::cout << "\nPaper: 30.8% reduction at 300 mm (33.5% at smaller "
                 "substrates); density falls from 0.69 to 0.48 W/mm^2, "
                 "inside\nthe 0.5 W/mm^2 water-cooling envelope. The "
                 "reduction shrinks with substrate size because "
                 "internal I/O power\n(untouched by the optimization) "
                 "grows in share.\n";
    return 0;
}
