/**
 * @file
 * Fig. 27 — sensitivity of the maximum radix to the internal
 * bandwidth density (number of interposer signal layers).
 */

#include "bench_common.hpp"
#include "core/radix_solver.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 27",
                  "maximum ports vs internal bandwidth density "
                  "(signal layers)");

    Table table("Maximum 200G ports at 300 mm (Optical I/O)",
                {"signal layers", "density (Gbps/mm)", "max ports",
                 "blocked next by"});
    for (int layers : {1, 2, 4, 8, 12, 16, 24, 32}) {
        core::DesignSpec spec = bench::paperSpec(
            300.0, tech::siIfWithLayers(layers), tech::opticalIo());
        const auto result = core::RadixSolver(spec).solveMaxPorts();
        table.addRow(
            {Table::num(layers),
             Table::num(spec.wsi.totalBandwidthDensity(), 0),
             Table::num(result.best.ports),
             std::string(result.blocking
                             ? core::toString(result.blocking->violated)
                             : "ladder end")});
    }
    table.print(std::cout);
    std::cout << "\nPaper: the radix climbs with density until the "
                 "substrate area itself becomes the bottleneck — more "
                 "metal\nlayers than the ~8 assumed are unlikely short "
                 "term (yield loss per extra layer), so internal "
                 "bandwidth\nremains the practical limiter.\n";
    return 0;
}
