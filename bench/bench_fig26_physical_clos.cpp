/**
 * @file
 * Fig. 26 — mapped Clos (feedthrough channels over the chiplet mesh)
 * versus physical Clos (dedicated repeatered traces): maximum radix
 * at two internal densities, and the power comparison at iso-radix.
 */

#include "bench_common.hpp"
#include "core/physical_clos.hpp"
#include "core/radix_solver.hpp"

int
main()
{
    using namespace wss;
    bench::banner("Figure 26", "Clos-mapped-to-mesh vs physical Clos");

    for (const auto &wsi : {tech::siIf(), tech::infoSow()}) {
        Table table("Maximum 200G ports, " + wsi.name + " (" +
                        Table::num(wsi.totalBandwidthDensity(), 0) +
                        " Gbps/mm, Optical I/O)",
                    {"substrate (mm)", "mapped Clos", "physical Clos",
                     "physical (wires under SSCs)"});
        for (double side : {200.0, 300.0}) {
            const core::DesignSpec spec =
                bench::paperSpec(side, wsi, tech::opticalIo());
            const auto mapped =
                core::RadixSolver(spec).solveMaxPorts();
            const auto phys =
                core::solveMaxPortsPhysicalClos(spec, false);
            const auto phys_under =
                core::solveMaxPortsPhysicalClos(spec, true);
            table.addRow({Table::num(side, 0),
                          Table::num(mapped.best.ports),
                          Table::num(phys.ports),
                          Table::num(phys_under.ports)});
        }
        table.print(std::cout);
    }

    // (c) power at iso-radix, 300 mm baseline density.
    const core::DesignSpec spec =
        bench::paperSpec(300.0, tech::siIf(), tech::opticalIo());
    const std::int64_t iso = 1024;
    const auto mapped = core::RadixSolver(spec).evaluate(iso);
    const auto phys = core::evaluatePhysicalClos(spec, iso, false);
    Table power("Power at iso-radix (" + Table::num(iso) + " ports, "
                "300 mm, 3200 Gbps/mm)",
                {"construction", "SSC core (kW)", "internal I/O (kW)",
                 "external I/O (kW)", "total (kW)"});
    power.addRow({"mapped Clos",
                  Table::num(mapped.power.ssc_core / 1000.0, 2),
                  Table::num(mapped.power.internal_io / 1000.0, 2),
                  Table::num(mapped.power.external_io / 1000.0, 2),
                  Table::num(mapped.power.total() / 1000.0, 2)});
    power.addRow({"physical Clos",
                  Table::num(phys.power.ssc_core / 1000.0, 2),
                  Table::num(phys.power.internal_io / 1000.0, 2),
                  Table::num(phys.power.external_io / 1000.0, 2),
                  Table::num(phys.power.total() / 1000.0, 2)});
    power.print(std::cout);
    std::cout << "\noverhead: "
              << Table::num(100.0 * (phys.power.total() /
                                         mapped.power.total() -
                                     1.0),
                            1)
              << "% (paper: ~10% at iso-radix)\n";
    std::cout << "Paper: physical Clos always trails mapped Clos — the "
                 "dedicated traces cut into SSC placement area — even "
                 "when\nwires may run under the chiplets.\n";
    return 0;
}
