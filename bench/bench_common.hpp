/**
 * @file
 * Shared helpers for the per-figure/per-table bench binaries.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper: it prints the same rows/series the paper reports (aligned
 * text via wss::Table) plus a short header naming the artifact.
 * Environment knobs:
 *   WSS_BENCH_RESTARTS  mapping-search restarts (default 4)
 *   WSS_BENCH_SEED      base RNG seed (default 1)
 *   WSS_BENCH_FAST      if set, shrink simulation phases for smoke
 *                       runs
 *   WSS_JOBS            worker threads for campaign-driven benches
 *                       (default: hardware concurrency)
 *   WSS_BENCH_CSV       write the campaign's per-cell CSV here
 *   WSS_BENCH_JSON      write the campaign's JSON summary here
 */

#ifndef WSS_BENCH_COMMON_HPP
#define WSS_BENCH_COMMON_HPP

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/design.hpp"
#include "exec/campaign.hpp"
#include "power/ssc.hpp"
#include "tech/cooling.hpp"
#include "tech/external_io.hpp"
#include "tech/wsi.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace wss::bench {

/// Integer environment knob with default.
inline int
envInt(const char *name, int fallback)
{
    const char *value = std::getenv(name);
    return value ? std::atoi(value) : fallback;
}

/// True when WSS_BENCH_FAST is set (shrunken simulation phases).
inline bool
fastMode()
{
    return std::getenv("WSS_BENCH_FAST") != nullptr;
}

/// Announce which paper artifact this binary regenerates.
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::cout << "### " << artifact << " — " << description << "\n\n";
}

/// The three substrate sides the paper sweeps (mm).
inline const double kSubstrates[] = {100.0, 200.0, 300.0};

/// Baseline design spec shared by the radix benches.
inline core::DesignSpec
paperSpec(double side, const tech::WsiTechnology &wsi,
          const tech::ExternalIoTech &ext)
{
    core::DesignSpec spec;
    spec.substrate_side = side;
    spec.wsi = wsi;
    spec.external_io = ext;
    spec.ssc = power::tomahawk5(1);
    spec.cooling = tech::unlimitedCooling();
    spec.mapping_restarts = envInt("WSS_BENCH_RESTARTS", 4);
    spec.seed = static_cast<std::uint64_t>(envInt("WSS_BENCH_SEED", 1));
    return spec;
}

/// Worker threads for campaign-driven benches (WSS_JOBS override).
inline int
benchJobs()
{
    return exec::ThreadPool::defaultThreads();
}

/**
 * Write the campaign's timing artifacts where the environment asks
 * (WSS_BENCH_CSV / WSS_BENCH_JSON) and print the one-line timing
 * summary every converted figure bench reports.
 */
inline void
reportCampaign(const exec::CampaignResult &result)
{
    if (const char *path = std::getenv("WSS_BENCH_CSV")) {
        std::ofstream os(path);
        if (!os)
            fatal("cannot open '", path, "' for writing");
        result.writeCsv(os);
        inform("campaign CSV written to ", path);
    }
    if (const char *path = std::getenv("WSS_BENCH_JSON")) {
        std::ofstream os(path);
        if (!os)
            fatal("cannot open '", path, "' for writing");
        result.writeJson(os);
        inform("campaign JSON written to ", path);
    }
    double busy = 0.0;
    for (const auto &job : result.jobs)
        busy += job.seconds;
    // busy sums each cell's wall time, so busy/wall measures lane
    // occupancy (how many cells ran concurrently), not speedup —
    // compare wall at --jobs N vs --jobs 1 for that.
    std::cout << "\n[campaign] " << result.jobs.size() << " jobs on "
              << result.threads << " threads: wall "
              << Table::num(result.wall_seconds, 2)
              << " s, cell-seconds " << Table::num(busy, 2)
              << ", concurrency "
              << Table::num(result.wall_seconds > 0.0
                                ? busy / result.wall_seconds
                                : 0.0,
                            2)
              << "x\n";
}

/// All three external I/O schemes in the paper's plotting order.
inline std::vector<tech::ExternalIoTech>
externalIoSchemes()
{
    return {tech::serdes(), tech::opticalIo(), tech::areaIo()};
}

} // namespace wss::bench

#endif // WSS_BENCH_COMMON_HPP
