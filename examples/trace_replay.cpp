/**
 * @file
 * Example: the full trace workflow — synthesize a mini-app trace,
 * persist it, reload it, and replay it closed-loop through two
 * fabrics (waferscale versus discrete switch network), reporting the
 * application-level speedup the lower-latency fabric buys.
 *
 *   $ ./examples/trace_replay [app] [ranks] [duplicate]
 *   $ ./examples/trace_replay multigrid 64 2
 */

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "sim/simulator.hpp"
#include "topology/clos.hpp"
#include "trace/generators.hpp"
#include "trace/trace_workload.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace wss;

    const std::string app = argc > 1 ? argv[1] : "lulesh";
    const int ranks = argc > 2 ? std::atoi(argv[2]) : 64;
    const int duplicate = argc > 3 ? std::atoi(argv[3]) : 2;
    if (ranks <= 0 || duplicate <= 0)
        fatal("usage: trace_replay [app] [ranks] [duplicate]");

    // 1. Synthesize and round-trip the trace through its text format
    //    (what `wss trace --out` writes).
    trace::GeneratorConfig gen;
    gen.iterations = 3;
    gen.iteration_period = 500;
    trace::MessageTrace generated = trace::generateMiniApp(app, ranks,
                                                           gen);
    generated = trace::duplicateTrace(generated, duplicate);
    std::stringstream file;
    trace::saveTrace(generated, file);
    const trace::MessageTrace trace = trace::loadTrace(file);
    std::cout << "trace '" << trace.name << "': " << trace.ranks
              << " ranks, " << trace.events.size() << " messages, "
              << trace.totalFlits() << " flits\n\n";

    // 2. A fabric with enough ports for every rank.
    std::int64_t ports = 128;
    while (ports < trace.ranks)
        ports *= 2;
    const auto topo =
        topology::buildFoldedClos({ports, power::tomahawk5(1), 1});

    // 3. Closed-loop replay through both fabrics.
    Table table("Closed-loop replay (iteration barriers, compute "
                "compressed 8x)",
                {"fabric", "makespan (cycles)", "avg latency",
                 "sustained flits/cycle"});
    double makespan[2] = {0.0, 0.0};
    for (bool waferscale : {true, false}) {
        sim::NetworkSpec spec;
        spec.vcs = 8;
        spec.buffer_per_port = 32;
        spec.rc_delay_ingress = 2;
        spec.rc_delay_transit = 2;
        spec.pipeline_delay = waferscale ? 9 : 13;
        spec.terminal_link_latency = 8;
        spec.internal_link_latency = waferscale ? 1 : 8;
        sim::Network net(topo, spec, 3);
        trace::TraceWorkload workload(trace, 8.0, gen.iteration_period);
        sim::SimConfig cfg;
        cfg.run_to_exhaustion = true;
        cfg.measure = 40 * workload.scaledSpan() + 100000;
        cfg.drain_limit = 0;
        sim::Simulator sim(net, workload, cfg);
        const auto result = sim.run();
        makespan[waferscale ? 0 : 1] =
            static_cast<double>(result.end_cycle);
        table.addRow(
            {waferscale ? "waferscale switch" : "TH-5 network",
             Table::num(result.end_cycle),
             Table::num(result.avg_packet_latency, 1),
             Table::num(static_cast<double>(result.flits_delivered) /
                            static_cast<double>(result.end_cycle),
                        2)});
    }
    table.print(std::cout);
    std::cout << "\ncommunication-phase speedup from the waferscale "
                 "switch: "
              << Table::num(makespan[1] / makespan[0], 2) << "x\n";
    return 0;
}
