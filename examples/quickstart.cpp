/**
 * @file
 * Quickstart: size a waferscale network switch in ~30 lines.
 *
 * Builds the paper's flagship design point — a 300 mm Si-IF substrate
 * with overclocked 6400 Gbps/mm links, optical external I/O, TH-5
 * sub-switches, and heterogeneous leaves — solves for the maximum
 * feasible radix, and prints what limits it and what it costs.
 *
 *   $ ./examples/quickstart
 */

#include <iostream>

#include "core/radix_solver.hpp"
#include "power/link_power.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace wss;

    // 1. Describe the design point.
    core::DesignSpec spec;
    spec.substrate_side = 300.0;                 // mm, square substrate
    spec.wsi = tech::siIf2x();                   // 6400 Gbps/mm links
    spec.external_io = tech::opticalIo();        // on-wafer E/O chiplets
    spec.ssc = power::tomahawk5(1);              // 256 x 200G sub-switch
    spec.cooling = tech::waterCooling();         // 0.5 W/mm^2 envelope
    spec.leaf_split = 4;                         // heterogeneous leaves

    // 2. Solve for the maximum feasible switch radix.
    const core::RadixSolver solver(spec);
    const core::SolveResult result = solver.solveMaxPorts();
    const core::DesignEvaluation &best = result.best;

    // 3. Report.
    Table table("Waferscale switch, 300 mm substrate",
                {"metric", "value"});
    table.addRow({"switch radix (200G ports)", Table::num(best.ports)});
    table.addRow({"sub-switch chiplets", Table::num(best.ssc_chiplets)});
    table.addRow({"I/O chiplets", Table::num(best.io_chiplets)});
    table.addRow({"silicon area (mm^2)",
                  Table::num(best.silicon_area, 0)});
    table.addRow({"hottest mesh edge (Gbps/dir)",
                  Table::num(best.max_edge_load, 0) + " of " +
                      Table::num(best.edge_capacity, 0)});
    table.addRow({"total power (kW)",
                  Table::num(best.power.total() / 1000.0, 1)});
    table.addRow({"  SSC core (kW)",
                  Table::num(best.power.ssc_core / 1000.0, 1)});
    table.addRow({"  internal I/O (kW)",
                  Table::num(best.power.internal_io / 1000.0, 1)});
    table.addRow({"  external I/O (kW)",
                  Table::num(best.power.external_io / 1000.0, 1)});
    table.addRow({"power density (W/mm^2)",
                  Table::num(best.power_density, 3)});
    if (result.blocking) {
        table.addRow(
            {"next size blocked by",
             std::string(core::toString(result.blocking->violated)) +
                 " (at " + Table::num(result.blocking->ports) +
                 " ports)"});
    }
    table.print(std::cout);

    std::cout << "\nThat is " << best.ports / spec.ssc.radix
              << "x the radix of a single Tomahawk-5.\n";
    return 0;
}
