/**
 * @file
 * Example: sweep the whole design space in one run.
 *
 * Crosses substrate sizes x WSI technologies x external I/O schemes
 * x optimizations and prints the feasible frontier — a compact
 * reproduction of the paper's Sections IV-V analysis for custom
 * parameter ranges.
 *
 *   $ ./examples/design_space_explorer [restarts]
 */

#include <cstdlib>
#include <iostream>

#include "core/radix_solver.hpp"
#include "power/link_power.hpp"
#include "topology/clos.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace wss;
    const int restarts = argc > 1 ? std::atoi(argv[1]) : 3;

    Table table("Design-space frontier (Clos, water cooling)",
                {"substrate", "WSI", "external I/O", "optimization",
                 "max ports", "power (kW)", "W/mm^2",
                 "blocked next by"});

    const auto wsis = {tech::siIf(), tech::siIf2x(), tech::infoSow()};
    for (double side : {200.0, 300.0}) {
        for (const auto &wsi : wsis) {
            for (const auto &ext :
                 {tech::serdes(), tech::opticalIo(), tech::areaIo()}) {
                for (const char *opt :
                     {"none", "hetero", "deradix-2"}) {
                    core::DesignSpec spec;
                    spec.substrate_side = side;
                    spec.wsi = wsi;
                    spec.external_io = ext;
                    spec.ssc = power::tomahawk5(1);
                    spec.cooling = tech::waterCooling();
                    spec.mapping_restarts = restarts;
                    if (std::string(opt) == "hetero")
                        spec.leaf_split = 4;
                    else if (std::string(opt) == "deradix-2")
                        spec.ssc = topology::deradixedSsc(
                            power::tomahawk5(1), 2);
                    const auto result =
                        core::RadixSolver(spec).solveMaxPorts();
                    table.addRow(
                        {Table::num(side, 0) + "mm", wsi.name,
                         ext.name, opt, Table::num(result.best.ports),
                         Table::num(result.best.power.total() / 1000.0,
                                    1),
                         Table::num(result.best.power_density, 3),
                         std::string(
                             result.blocking
                                 ? core::toString(
                                       result.blocking->violated)
                                 : "ladder end")});
                }
            }
        }
    }
    table.print(std::cout);
    return 0;
}
