/**
 * @file
 * Example: drive the cycle-accurate fabric simulator directly.
 *
 * Builds a waferscale switch fabric (a folded Clos of SSCs with
 * on-wafer link latencies), runs a latency-versus-load sweep under a
 * chosen synthetic traffic pattern, and prints the curve — the same
 * machinery behind Figs. 21-24, exposed as a small CLI.
 *
 *   $ ./examples/fabric_simulation [pattern] [ports] [packet_flits]
 *   $ ./examples/fabric_simulation tornado 512 4
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "sim/load_sweep.hpp"
#include "topology/clos.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace wss;

    const std::string pattern = argc > 1 ? argv[1] : "uniform";
    const std::int64_t ports = argc > 2 ? std::atoll(argv[2]) : 512;
    const int packet = argc > 3 ? std::atoi(argv[3]) : 1;
    if (ports <= 0 || packet <= 0)
        fatal("usage: fabric_simulation [pattern] [ports] "
              "[packet_flits]");

    // A waferscale 2-level Clos of TH-5-like sub-switches.
    const auto topo =
        topology::buildFoldedClos({ports, power::tomahawk5(1), 1});
    std::cout << "fabric: " << topo.nodeCount()
              << " radix-256 sub-switches, " << ports << " ports, "
              << pattern << " traffic, " << packet
              << "-flit packets\n\n";

    sim::NetworkSpec spec;
    spec.vcs = 16;
    spec.buffer_per_port = 64;
    spec.rc_delay_ingress = 2;
    spec.rc_delay_transit = 2;
    spec.pipeline_delay = 9;        // 11-cycle SSC traversal
    spec.terminal_link_latency = 8; // host I/O
    spec.internal_link_latency = 1; // on-wafer hop

    sim::SimConfig cfg;
    cfg.warmup = 1000;
    cfg.measure = 4000;
    cfg.drain_limit = 20000;

    const auto sweep = sim::sweepLoad(
        [&] { return std::make_unique<sim::Network>(topo, spec, 7); },
        [&](double rate) {
            return std::make_unique<sim::SyntheticWorkload>(
                sim::makeTraffic(pattern, static_cast<int>(ports)),
                rate, packet);
        },
        sim::linearRates(0.9, 9), cfg);

    // One extra instrumented run at moderate load: measured link
    // utilization (the runtime counterpart of Fig. 8's provisioned
    // channel loads).
    sim::Network net(topo, spec, 7);
    sim::SyntheticWorkload workload(
        sim::makeTraffic(pattern, static_cast<int>(ports)), 0.5,
        packet);
    sim::Simulator sim(net, workload, cfg);
    sim.run();
    const auto util =
        net.linkUtilization(cfg.warmup + cfg.measure);
    double hottest = 0.0, total = 0.0;
    for (double u : util) {
        hottest = std::max(hottest, u);
        total += u;
    }

    Table table("Latency vs load (cycles of 20 ns)",
                {"offered", "accepted", "avg latency", "p99 latency",
                 "stable"});
    for (const auto &point : sweep.points) {
        table.addRow({Table::num(point.offered, 2),
                      Table::num(point.accepted, 3),
                      Table::num(point.avg_latency, 1),
                      Table::num(point.p99_latency, 1),
                      point.stable ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "\nzero-load latency: "
              << Table::num(sweep.zero_load_latency, 1)
              << " cycles; saturation throughput: "
              << Table::num(sweep.saturation_throughput, 3)
              << " flits/terminal/cycle\n";
    std::cout << "link utilization at 0.5 load: hottest "
              << Table::num(100.0 * hottest, 1) << "%, mean "
              << Table::num(100.0 * total / util.size(), 1)
              << "% across " << util.size() << " bundles\n";
    return 0;
}
