/**
 * @file
 * Example: plan a single-switch datacenter (paper Section VIII.B).
 *
 * Given a server count and per-server bandwidth, picks the smallest
 * waferscale switch configuration that hosts the whole datacenter
 * behind one switch, sizes the full system (power delivery, cooling
 * loop, enclosure), and compares against the conventional TH-5 Clos
 * build with a cost estimate.
 *
 *   $ ./examples/datacenter_planner [servers] [gbps_per_server]
 *   $ ./examples/datacenter_planner 4096 200
 */

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/radix_solver.hpp"
#include "power/link_power.hpp"
#include "sysarch/cooling_loop.hpp"
#include "sysarch/enclosure.hpp"
#include "sysarch/power_delivery.hpp"
#include "sysarch/use_cases.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace wss;

    const std::int64_t servers = argc > 1 ? std::atoll(argv[1]) : 8192;
    const Gbps rate = argc > 2 ? std::atof(argv[2]) : 200.0;
    if (servers <= 0 || rate <= 0.0)
        fatal("usage: datacenter_planner [servers] [gbps_per_server]");

    // Find the smallest substrate whose max radix covers the demand.
    core::DesignSpec chosen;
    core::SolveResult solved;
    bool found = false;
    for (double side : {100.0, 200.0, 300.0}) {
        core::DesignSpec spec;
        spec.substrate_side = side;
        spec.wsi = tech::siIf2x();
        spec.external_io = tech::opticalIo();
        spec.ssc = power::tomahawk5(rate >= 800.0  ? 3
                                    : rate >= 400.0 ? 2
                                                    : 1);
        spec.cooling = tech::waterCooling();
        spec.leaf_split = 4;
        const auto result = core::RadixSolver(spec).solveMaxPorts();
        if (result.best.ports >= servers) {
            chosen = spec;
            solved = result;
            found = true;
            break;
        }
        chosen = spec;
        solved = result;
    }
    if (!found) {
        std::cout << "No single waferscale switch covers " << servers
                  << " servers at " << rate << " Gbps; the largest (300 "
                  << "mm) supports " << solved.best.ports
                  << " ports. Shard the datacenter across switches or "
                  << "lower the per-server rate.\n";
        return 1;
    }

    const auto &best = solved.best;
    const auto delivery = sysarch::sizePowerDelivery(
        best.power.total(), chosen.substrate_side);
    // Chiplet-array side for the cooling layout (SSC grid + I/O ring).
    const int grid = static_cast<int>(
        std::ceil(std::sqrt(best.ssc_chiplets))) + 2;
    const auto cooling =
        sysarch::sizeCoolingLoop(best.power.total(), grid);
    const auto enclosure = sysarch::planEnclosure(servers, rate);

    Table plan("Single-switch datacenter plan",
               {"component", "value"});
    plan.addRow({"servers", Table::num(servers)});
    plan.addRow({"substrate",
                 Table::num(chosen.substrate_side, 0) + " mm"});
    plan.addRow({"switch radix", Table::num(best.ports)});
    plan.addRow({"switch power",
                 Table::num(best.power.total() / 1000.0, 1) + " kW"});
    plan.addRow({"PSUs (N+N)", Table::num(delivery.psus)});
    plan.addRow({"DC-DC bricks", Table::num(delivery.dcdc_converters)});
    plan.addRow({"VRMs", Table::num(delivery.vrms)});
    plan.addRow({"cold plates (PCLs)", Table::num(cooling.pcls)});
    plan.addRow({"coolant channels",
                 Table::num(cooling.supply_channels)});
    plan.addRow({"junction temperature",
                 Table::num(cooling.junction_temperature, 0) + " C"});
    plan.addRow({"front-panel adapters", Table::num(enclosure.adapters)});
    plan.addRow({"splitter factor", Table::num(enclosure.split)});
    plan.addRow({"chassis height",
                 Table::num(enclosure.rack_units) + " RU"});
    plan.print(std::cout);

    const auto cmp = sysarch::singleSwitchDatacenter(
        servers, rate, enclosure.rack_units);
    const auto savings = sysarch::estimateSavings(cmp);
    Table vs("Versus a TH-5 Clos network", {"metric", "waferscale",
                                            "TH-5 Clos"});
    vs.addRow({"switches", Table::num(cmp.waferscale.switches),
               Table::num(cmp.conventional.switches)});
    vs.addRow({"cables", Table::num(cmp.waferscale.cables),
               Table::num(cmp.conventional.cables)});
    vs.addRow({"worst-case hops",
               Table::num(cmp.waferscale.worst_case_hops),
               Table::num(cmp.conventional.worst_case_hops)});
    vs.addRow({"rack units", Table::num(cmp.waferscale.rack_units),
               Table::num(cmp.conventional.rack_units)});
    vs.print(std::cout);
    std::cout << "\nEstimated savings: $"
              << Table::num(savings.total() / 1e6, 1)
              << "M (optics $" << Table::num(savings.optics_usd / 1e6, 1)
              << "M, colocation $"
              << Table::num(savings.colocation_usd / 1e6, 2) << "M)\n";
    return 0;
}
