/**
 * @file
 * Example: size a "singular GPU" training cluster (paper Section
 * VIII.B, Table VIII / Fig. 32).
 *
 * One waferscale switch in its 800G configuration fronts every GPU
 * directly (no top-of-rack switches); the example reports the rack
 * architecture — compute racks, the switch rack, shared-memory pool —
 * and the comparison against a 2-layer NVSwitch network.
 *
 *   $ ./examples/gpu_cluster [gpus] [gpu_hbm_gb]
 */

#include <cstdlib>
#include <iostream>

#include "core/radix_solver.hpp"
#include "power/link_power.hpp"
#include "sysarch/enclosure.hpp"
#include "sysarch/use_cases.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace wss;

    const std::int64_t gpus = argc > 1 ? std::atoll(argv[1]) : 2048;
    const double hbm_gb = argc > 2 ? std::atof(argv[2]) : 576.0;
    if (gpus <= 0 || hbm_gb <= 0.0)
        fatal("usage: gpu_cluster [gpus] [gpu_hbm_gb]");

    // The 800G switch configuration: TH-5 config 3 sub-switches,
    // with heterogeneous leaves (the GPU switch box shares the
    // Fig. 29 architecture) to stay inside the water-cooling budget.
    core::DesignSpec spec;
    spec.substrate_side = 300.0;
    spec.wsi = tech::siIf2x();
    spec.external_io = tech::opticalIo();
    spec.ssc = power::tomahawk5(3);
    spec.cooling = tech::waterCooling();
    spec.leaf_split = 2;
    const auto solved = core::RadixSolver(spec).solveMaxPorts();
    if (solved.best.ports < gpus) {
        std::cout << "A single 300 mm waferscale switch supports "
                  << solved.best.ports << " x 800G GPUs; " << gpus
                  << " requested. Reduce the cluster or add switches.\n";
        return 1;
    }

    // Rack architecture (Fig. 32): 8 GPUs + 1 CPU per server box,
    // 32 boxes per compute rack.
    const std::int64_t boxes = (gpus + 7) / 8;
    const std::int64_t racks = (boxes + 31) / 32;
    const auto enclosure = sysarch::planEnclosure(gpus, 800.0);

    Table plan("Singular-GPU cluster plan", {"component", "value"});
    plan.addRow({"GPUs", Table::num(gpus)});
    plan.addRow({"switch configuration",
                 Table::num(solved.best.ports) + " x 800G"});
    plan.addRow({"server boxes (8 GPU + 1 CPU)", Table::num(boxes)});
    plan.addRow({"compute racks (32 boxes each)", Table::num(racks)});
    plan.addRow({"switch rack height",
                 Table::num(enclosure.rack_units) + " RU"});
    plan.addRow({"optical cables (GPU direct)", Table::num(gpus)});
    plan.addRow({"shared VRAM pool",
                 Table::num(gpus * hbm_gb / 1000.0, 2) + " TB"});
    plan.addRow({"bisection bandwidth",
                 Table::num(gpus * 800.0 / 2.0 / 1000.0, 1) + " Tbps"});
    plan.addRow({"GPU-to-GPU switch hops", "1"});
    plan.print(std::cout);

    const auto cmp = sysarch::singularGpuCluster(
        gpus, enclosure.rack_units);
    Table vs("Versus the DGX GH200 NVSwitch network",
             {"metric", "waferscale", "NVSwitch"});
    vs.addRow({"GPUs", Table::num(cmp.waferscale.endpoints),
               Table::num(cmp.conventional.endpoints)});
    vs.addRow({"switches", Table::num(cmp.waferscale.switches),
               Table::num(cmp.conventional.switches)});
    vs.addRow({"cables", Table::num(cmp.waferscale.cables),
               Table::num(cmp.conventional.cables)});
    vs.addRow({"hop count", Table::num(cmp.waferscale.worst_case_hops),
               Table::num(cmp.conventional.worst_case_hops)});
    vs.addRow({"switch rack units",
               Table::num(cmp.waferscale.rack_units),
               Table::num(cmp.conventional.rack_units)});
    vs.addRow({"bisection (Tbps)",
               Table::num(cmp.waferscale.bisection_tbps, 1),
               Table::num(cmp.conventional.bisection_tbps, 1)});
    vs.print(std::cout);
    return 0;
}
