/**
 * @file
 * Tests for the trace layer: format round-trip, duplication, the
 * mini-app generators' structure, and trace-driven replay.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "coll/schedule.hpp"
#include "power/ssc.hpp"
#include "sim/simulator.hpp"
#include "topology/clos.hpp"
#include "trace/coll_lowering.hpp"
#include "trace/generators.hpp"
#include "trace/trace_workload.hpp"

namespace wss::trace {
namespace {

TEST(MessageTrace, SaveLoadRoundTrip)
{
    MessageTrace trace;
    trace.name = "demo";
    trace.ranks = 4;
    trace.events = {{0, 0, 1, 2}, {5, 1, 2, 1}, {9, 3, 0, 7}};
    std::stringstream ss;
    saveTrace(trace, ss);
    const MessageTrace loaded = loadTrace(ss);
    EXPECT_EQ(loaded.name, "demo");
    EXPECT_EQ(loaded.ranks, 4);
    ASSERT_EQ(loaded.events.size(), 3u);
    EXPECT_EQ(loaded.events[2].cycle, 9);
    EXPECT_EQ(loaded.events[2].size_flits, 7);
}

TEST(MessageTrace, ValidateCatchesProblems)
{
    MessageTrace trace;
    trace.ranks = 2;
    trace.events = {{5, 0, 1, 1}, {3, 1, 0, 1}}; // out of order
    EXPECT_NE(trace.validate(), "");
    trace.normalize();
    EXPECT_EQ(trace.validate(), "");
    trace.events.push_back({10, 0, 5, 1}); // rank out of range
    EXPECT_NE(trace.validate(), "");
}

TEST(MessageTrace, Metrics)
{
    MessageTrace trace;
    trace.ranks = 2;
    trace.events = {{0, 0, 1, 3}, {10, 1, 0, 7}};
    EXPECT_EQ(trace.span(), 10);
    EXPECT_EQ(trace.totalFlits(), 10);
    EXPECT_DOUBLE_EQ(trace.averageLoad(), 10.0 / (10.0 * 2));
}

TEST(MessageTrace, DuplicationMapsOntoDisjointRanges)
{
    MessageTrace trace;
    trace.name = "demo";
    trace.ranks = 8;
    trace.events = {{0, 0, 7, 1}, {4, 3, 2, 2}};
    const MessageTrace big = duplicateTrace(trace, 4);
    EXPECT_EQ(big.ranks, 32);
    EXPECT_EQ(big.events.size(), 8u);
    EXPECT_EQ(big.validate(), "");
    // The third copy's first event runs 16..23.
    EXPECT_EQ(big.events[2].src, 16);
    EXPECT_EQ(big.events[2].dst, 23);
}

class MiniAppGenerators
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(MiniAppGenerators, ProducesAValidStructuredTrace)
{
    GeneratorConfig cfg;
    cfg.iterations = 2;
    const MessageTrace trace = generateMiniApp(GetParam(), 64, cfg);
    EXPECT_EQ(trace.validate(), "");
    EXPECT_EQ(trace.ranks, 64);
    EXPECT_GT(trace.events.size(), 100u);
    EXPECT_GT(trace.span(), 0);
    EXPECT_GT(trace.averageLoad(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(All, MiniAppGenerators,
                         ::testing::Values("lulesh", "mocfe",
                                           "multigrid", "nekbone"));

TEST(MiniAppGenerators, LuleshTalksToAllNeighborClasses)
{
    GeneratorConfig cfg;
    cfg.iterations = 1;
    cfg.base_message_flits = 8;
    const MessageTrace trace = generateLulesh(27, cfg); // 3x3x3
    // The center rank (1,1,1) = 13 sends to all 26 neighbors.
    int center_sends = 0;
    bool saw_face = false, saw_edge = false, saw_corner = false;
    for (const auto &e : trace.events) {
        if (e.src == 13 && e.size_flits > 0) {
            ++center_sends;
            saw_face |= e.size_flits == 8;
            saw_edge |= e.size_flits == 4;
            saw_corner |= e.size_flits == 2;
        }
    }
    EXPECT_GE(center_sends, 26);
    EXPECT_TRUE(saw_face);
    EXPECT_TRUE(saw_edge);
    EXPECT_TRUE(saw_corner);
}

TEST(MiniAppGenerators, MocfeSweepsAreWavefrontStaggered)
{
    GeneratorConfig cfg;
    cfg.iterations = 1;
    const MessageTrace trace = generateMocfe(64, cfg); // 4x4x4
    // The first octant sweeps (-,-,-) from the far corner (rank 63),
    // so rank 63 fires at cycle 0 while rank 0 sits at the deepest
    // wavefront of that sweep and fires strictly later.
    sim::Cycle first_origin = -1, first_far = -1;
    for (const auto &e : trace.events) {
        if (first_origin < 0 && e.src == 63)
            first_origin = e.cycle;
        if (first_far < 0 && e.src == 0)
            first_far = e.cycle;
    }
    ASSERT_GE(first_origin, 0);
    ASSERT_GE(first_far, 0);
    EXPECT_EQ(first_origin, 0);
    EXPECT_LT(first_origin, first_far);
}

TEST(MiniAppGenerators, MultigridShrinksMessagesUpTheHierarchy)
{
    GeneratorConfig cfg;
    cfg.iterations = 1;
    cfg.base_message_flits = 8;
    const MessageTrace trace = generateMultigrid(64, cfg); // side 4
    bool saw_fine = false, saw_coarse = false;
    for (const auto &e : trace.events) {
        saw_fine |= e.size_flits == 8;
        saw_coarse |= e.size_flits <= 4;
    }
    EXPECT_TRUE(saw_fine);
    EXPECT_TRUE(saw_coarse);
}

TEST(MiniAppGenerators, NekboneIncludesAllreducePhases)
{
    GeneratorConfig cfg;
    cfg.iterations = 1;
    const MessageTrace trace = generateNekbone(64, cfg);
    // Recursive doubling: every rank exchanges with rank^1.
    bool saw_pair = false;
    for (const auto &e : trace.events)
        saw_pair |= (e.src ^ e.dst) == 1 && e.size_flits == 1;
    EXPECT_TRUE(saw_pair);
}

TEST(MiniAppGenerators, RejectsNonCubeRanks)
{
    EXPECT_DEATH(generateLulesh(50), "cube");
    EXPECT_DEATH(generateMiniApp("bogus", 64), "unknown mini-app");
}

TEST(TraceWorkload, ReplaysEveryMessageExactlyOnce)
{
    GeneratorConfig cfg;
    cfg.iterations = 1;
    const MessageTrace trace = generateNekbone(8, cfg); // 2x2x2
    TraceWorkload workload(trace, 1.0);
    Rng rng(1);
    std::int64_t packets = 0, flits = 0;
    for (sim::Cycle now = 0; now <= trace.span() + 1; ++now) {
        workload.generate(now, rng, [&](int, int, int f) {
            ++packets;
            flits += f;
        });
    }
    EXPECT_TRUE(workload.exhausted(trace.span() + 1));
    EXPECT_EQ(packets,
              static_cast<std::int64_t>(trace.events.size()));
    EXPECT_EQ(flits, trace.totalFlits());
}

TEST(TraceWorkload, IntensityCompressesTheTimeline)
{
    GeneratorConfig cfg;
    cfg.iterations = 2;
    const MessageTrace trace = generateNekbone(8, cfg);
    TraceWorkload half(trace, 0.5);
    TraceWorkload twice(trace, 2.0);
    EXPECT_NEAR(static_cast<double>(half.scaledSpan()),
                2.0 * trace.span(), 2.0);
    EXPECT_NEAR(static_cast<double>(twice.scaledSpan()),
                0.5 * trace.span(), 2.0);
    EXPECT_NEAR(twice.offeredLoad(), 4.0 * half.offeredLoad(), 1e-9);
}

TEST(TraceWorkload, DrivesTheSimulatorEndToEnd)
{
    GeneratorConfig cfg;
    cfg.iterations = 2;
    cfg.iteration_period = 400;
    const MessageTrace trace = generateLulesh(27, cfg);
    // 27 ranks on a 64-port fabric (extra terminals stay idle).
    const auto topo = topology::buildFoldedClos(
        {64, power::scaledSsc(16, 200.0), 1});
    sim::NetworkSpec spec;
    spec.vcs = 4;
    spec.buffer_per_port = 16;
    spec.pipeline_delay = 2;
    spec.terminal_link_latency = 2;
    sim::Network net(topo, spec, 3);
    TraceWorkload workload(trace, 1.0);
    sim::SimConfig sim_cfg;
    sim_cfg.warmup = 0;
    sim_cfg.measure = workload.scaledSpan() + 1;
    sim_cfg.drain_limit = 50000;
    sim::Simulator sim(net, workload, sim_cfg);
    const auto result = sim.run();
    EXPECT_TRUE(result.stable);
    EXPECT_EQ(result.packets_finished,
              static_cast<std::int64_t>(trace.events.size()));
    EXPECT_GT(result.avg_packet_latency, 0.0);
}


TEST(TraceWorkload, BarrierModeHoldsEpochsUntilDelivery)
{
    // Two epochs of one message each; without delivery feedback the
    // second epoch must never be released.
    MessageTrace trace;
    trace.name = "barrier";
    trace.ranks = 4;
    trace.events = {{0, 0, 1, 1}, {100, 2, 3, 1}};
    TraceWorkload workload(trace, 1.0, 100);
    Rng rng(1);
    int emitted = 0;
    for (sim::Cycle now = 0; now < 500; ++now)
        workload.generate(now, rng, [&](int, int, int) { ++emitted; });
    EXPECT_EQ(emitted, 1);
    EXPECT_FALSE(workload.exhausted(500));

    // Delivering the first packet opens the second epoch.
    workload.packetDelivered(500);
    for (sim::Cycle now = 500; now < 510; ++now)
        workload.generate(now, rng, [&](int, int, int) { ++emitted; });
    EXPECT_EQ(emitted, 2);
    EXPECT_TRUE(workload.exhausted(510));
}

TEST(TraceWorkload, BarrierModeStretchesWithLatency)
{
    // The same trace completes later when delivery feedback lags:
    // the makespan is latency-sensitive, the mechanism behind the
    // Fig. 24 comparison.
    MessageTrace trace;
    trace.name = "stretch";
    trace.ranks = 2;
    trace.events = {{0, 0, 1, 1}, {10, 1, 0, 1}, {20, 0, 1, 1}};
    Rng rng(1);
    auto makespan = [&](sim::Cycle delivery_lag) {
        TraceWorkload workload(trace, 1.0, 10);
        std::vector<sim::Cycle> deliveries;
        sim::Cycle done = 0;
        int emitted = 0;
        for (sim::Cycle now = 0; now < 1000 && done == 0; ++now) {
            while (!deliveries.empty() && deliveries.front() <= now) {
                workload.packetDelivered(now);
                deliveries.erase(deliveries.begin());
            }
            workload.generate(now, rng, [&](int, int, int) {
                ++emitted;
                deliveries.push_back(now + delivery_lag);
            });
            if (emitted == 3 && deliveries.empty())
                done = now;
        }
        return done;
    };
    EXPECT_GT(makespan(50), makespan(5));
}

TEST(TraceWorkload, ClosedLoopReplayCompletesInTheSimulator)
{
    GeneratorConfig cfg;
    cfg.iterations = 2;
    cfg.iteration_period = 300;
    const MessageTrace trace = generateNekbone(27, cfg);
    const auto topo = topology::buildFoldedClos(
        {64, power::scaledSsc(16, 200.0), 1});
    sim::NetworkSpec spec;
    spec.vcs = 4;
    spec.buffer_per_port = 16;
    spec.pipeline_delay = 2;
    spec.terminal_link_latency = 2;
    sim::Network net(topo, spec, 3);
    TraceWorkload workload(trace, 4.0, cfg.iteration_period);
    sim::SimConfig sim_cfg;
    sim_cfg.run_to_exhaustion = true;
    sim_cfg.measure = 100000;
    sim_cfg.drain_limit = 0;
    sim::Simulator sim(net, workload, sim_cfg);
    const auto result = sim.run();
    EXPECT_TRUE(result.stable);
    EXPECT_EQ(result.packets_finished,
              static_cast<std::int64_t>(trace.events.size()));
    EXPECT_GT(result.end_cycle, 0);
    EXPECT_EQ(result.flits_delivered, trace.totalFlits());
}

// --- coll:: schedule lowering ---------------------------------------

TEST(CollLowering, AppendScheduleLowersStepMajor)
{
    MessageTrace mt;
    mt.ranks = 8;
    const coll::Schedule s =
        coll::allReduceSchedule(coll::Algorithm::Ring, 8);
    appendSchedule(mt, s, 100, 10, 64);
    ASSERT_EQ(mt.events.size(), s.messages.size());
    for (std::size_t i = 0; i < mt.events.size(); ++i) {
        const auto &e = mt.events[i];
        const auto &m = s.messages[i];
        EXPECT_EQ(e.cycle,
                  100 + static_cast<sim::Cycle>(m.step) * 10);
        EXPECT_EQ(e.src, m.src);
        EXPECT_EQ(e.dst, m.dst);
        // Ring chunks: 1/8 of 64 flits.
        EXPECT_EQ(e.size_flits, 8);
    }
    EXPECT_TRUE(mt.validate().empty()) << mt.validate();
    // Sub-flit fractions round up to one flit, never to zero.
    MessageTrace tiny;
    tiny.ranks = 8;
    appendSchedule(tiny, s, 0, 1, 1);
    for (const auto &e : tiny.events)
        EXPECT_EQ(e.size_flits, 1);
}

TEST(CollLowering, RejectsUndersizedTraceAndBadPayload)
{
    const coll::Schedule s =
        coll::allReduceSchedule(coll::Algorithm::Ring, 8);
    MessageTrace small;
    small.ranks = 4;
    EXPECT_DEATH(appendSchedule(small, s, 0, 1, 8), "ranks");
    MessageTrace ok;
    ok.ranks = 8;
    EXPECT_DEATH(appendSchedule(ok, s, 0, 1, 0), "payload");
}

/**
 * The allreduce phases of the mini-app generators now come from
 * coll::allReduceSchedule (recursive doubling). These golden hashes
 * were captured from the pre-refactor emitter: the lowering through
 * coll:: must keep every generated trace bit-identical.
 */
TEST(CollLowering, GeneratorGoldensAreBitIdentical)
{
    const auto fnv = [](const std::string &text) {
        std::uint64_t h = 1469598103934665603ull;
        for (const unsigned char c : text) {
            h ^= c;
            h *= 1099511628211ull;
        }
        return h;
    };
    GeneratorConfig cfg;
    cfg.iterations = 3;
    const struct
    {
        const char *app;
        int ranks;
        std::uint64_t hash;
    } goldens[] = {
        {"nekbone", 27, 0xec4c920855396b1cull},
        {"nekbone", 64, 0xeff44359f928e274ull},
        {"lulesh", 27, 0x50c69a5fd150b762ull},
        {"lulesh", 64, 0x3c8de9ea5af3a613ull},
    };
    for (const auto &g : goldens) {
        const MessageTrace t = generateMiniApp(g.app, g.ranks, cfg);
        std::ostringstream os;
        saveTrace(t, os);
        EXPECT_EQ(fnv(os.str()), g.hash)
            << g.app << " " << g.ranks
            << " drifted from its golden trace";
    }
}

} // namespace
} // namespace wss::trace
