/**
 * @file
 * Tests for the observability layer: metrics registry semantics
 * (handle aliasing, histogram bucket edges, snapshot deltas,
 * cross-thread merge), Chrome-trace JSON well-formedness (parsed back
 * by a minimal in-test JSON reader), trace-content determinism across
 * thread counts, flush-checked artifact writing, and the contract
 * that observability never perturbs simulation results. Phase 2
 * additions: the hierarchical Profiler (nesting, merge re-rooting,
 * null-handle no-op), RunManifest provenance (round-trip, the
 * timestamp-free identity hash), sink-owned trace-track allocation,
 * and the `wss report` engine's health checks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/campaign.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_schedule.hpp"
#include "obs/crash_dump.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/watchdog.hpp"
#include "obs/report.hpp"
#include "obs/run_manifest.hpp"
#include "obs/sim_observation.hpp"
#include "obs/trace_event.hpp"
#include "power/ssc.hpp"
#include "sim/load_sweep.hpp"
#include "sim/simulator.hpp"
#include "topology/clos.hpp"
#include "util/artifact.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace wss::obs {
namespace {

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(Metrics, CounterHandlesAliasTheSameCell)
{
    MetricsRegistry reg;
    Counter a = reg.counter("events");
    Counter b = reg.counter("events");
    a.inc();
    b.inc(4);
    EXPECT_EQ(reg.counterValue("events"), 5u);
    EXPECT_TRUE(a.enabled());
}

TEST(Metrics, DefaultHandlesAreDisabledNoOps)
{
    Counter c;
    Gauge g;
    Histogram h;
    EXPECT_FALSE(c.enabled());
    EXPECT_FALSE(g.enabled());
    EXPECT_FALSE(h.enabled());
    // Must be safe to call (the whole point of the null-handle
    // design: instrumented code never branches on an "observing?"
    // flag).
    c.inc();
    c.inc(100);
    g.set(7);
    g.add(-3);
    h.record(1.5);
}

TEST(Metrics, GaugeSetAndAdd)
{
    MetricsRegistry reg;
    Gauge g = reg.gauge("depth");
    g.set(10);
    g.add(-4);
    EXPECT_EQ(reg.gaugeValue("depth"), 6);
    EXPECT_EQ(reg.gaugeValue("absent"), 0);
}

TEST(Metrics, HandlesSurviveRegistryGrowthAndMove)
{
    MetricsRegistry reg;
    Counter first = reg.counter("a");
    // Force map growth: the node holding "a" must not move.
    for (int i = 0; i < 200; ++i)
        reg.counter("grow" + std::to_string(i));
    first.inc(3);
    MetricsRegistry moved = std::move(reg);
    first.inc(2);
    EXPECT_EQ(moved.counterValue("a"), 5u);
}

TEST(Histogram, BucketEdgesAreLessOrEqual)
{
    MetricsRegistry reg;
    Histogram h = reg.histogram("occ", {0.0, 1.0, 4.0});
    // Exactly on an edge counts in that bucket ("le" semantics).
    h.record(0.0);  // bucket 0 (v <= 0)
    h.record(1.0);  // bucket 1 (v <= 1)
    h.record(0.5);  // bucket 1
    h.record(4.0);  // bucket 2 (v <= 4)
    h.record(4.5);  // overflow
    h.record(-1.0); // bucket 0
    const HistogramData *data = reg.findHistogram("occ");
    ASSERT_NE(data, nullptr);
    ASSERT_EQ(data->buckets.size(), 4u);
    EXPECT_EQ(data->buckets[0], 2u);
    EXPECT_EQ(data->buckets[1], 2u);
    EXPECT_EQ(data->buckets[2], 1u);
    EXPECT_EQ(data->buckets[3], 1u); // overflow
    EXPECT_EQ(data->count, 6u);
    EXPECT_DOUBLE_EQ(data->sum, 9.0);
    EXPECT_DOUBLE_EQ(data->min, -1.0);
    EXPECT_DOUBLE_EQ(data->max, 4.5);
}

TEST(Histogram, RejectsBadEdgesDiesLoudly)
{
    EXPECT_EXIT(
        {
            MetricsRegistry reg;
            reg.histogram("bad", {3.0, 1.0});
        },
        ::testing::ExitedWithCode(1), "strictly ascending");
    EXPECT_EXIT(
        {
            MetricsRegistry reg;
            reg.histogram("empty", {});
        },
        ::testing::ExitedWithCode(1), "at least one bucket edge");
    EXPECT_EXIT(
        {
            MetricsRegistry reg;
            reg.histogram("h", {1.0, 2.0});
            reg.histogram("h", {1.0, 3.0});
        },
        ::testing::ExitedWithCode(1), "different bucket edges");
}

TEST(Metrics, SnapshotDeltaIsPerPhaseArithmetic)
{
    MetricsRegistry reg;
    Counter c = reg.counter("flits");
    c.inc(10);
    const MetricsSnapshot warmup_end = reg.snapshot();
    c.inc(25);
    reg.counter("late").inc(2); // appears only after the baseline
    const MetricsSnapshot measure_end = reg.snapshot();
    const MetricsSnapshot delta =
        MetricsSnapshot::delta(measure_end, warmup_end);
    EXPECT_EQ(delta.value("flits"), 25u);
    EXPECT_EQ(delta.value("late"), 2u);
    EXPECT_EQ(delta.value("absent"), 0u);
}

TEST(Metrics, MergeAggregatesAcrossThreads)
{
    // The concurrency pattern the registry is designed for: one
    // registry per worker, merged after the barrier. No instrument is
    // ever shared between threads.
    constexpr int kThreads = 4;
    constexpr int kIncrements = 10000;
    std::vector<MetricsRegistry> per_thread(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&per_thread, t] {
            Counter c = per_thread[t].counter("work");
            Histogram h =
                per_thread[t].histogram("dist", {10.0, 100.0});
            for (int i = 0; i < kIncrements; ++i) {
                c.inc();
                h.record(static_cast<double>(i % 150));
            }
            per_thread[t].gauge("last").set(t);
        });
    for (auto &thread : threads)
        thread.join();

    MetricsRegistry total;
    for (const auto &reg : per_thread)
        total.merge(reg);

    EXPECT_EQ(total.counterValue("work"),
              static_cast<std::uint64_t>(kThreads) * kIncrements);
    const HistogramData *dist = total.findHistogram("dist");
    ASSERT_NE(dist, nullptr);
    EXPECT_EQ(dist->count,
              static_cast<std::uint64_t>(kThreads) * kIncrements);
    EXPECT_EQ(dist->buckets[0] + dist->buckets[1] + dist->buckets[2],
              dist->count);
    EXPECT_DOUBLE_EQ(dist->min, 0.0);
    EXPECT_DOUBLE_EQ(dist->max, 149.0);
    // Gauges sum on merge (0+1+2+3).
    EXPECT_EQ(total.gaugeValue("last"), 6);
}

// ---------------------------------------------------------------------
// A minimal JSON reader, just enough to parse traces back in-test.
// ---------------------------------------------------------------------

struct Json
{
    enum Kind
    {
        Null,
        Boolean,
        Number,
        String,
        Array,
        Object
    };
    Kind kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Json> array;
    std::vector<std::pair<std::string, Json>> object;

    const Json *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json
    parse()
    {
        Json value = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos_;
    }

    Json
    parseValue()
    {
        skipSpace();
        switch (peek()) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': {
            Json v;
            v.kind = Json::String;
            v.string = parseString();
            return v;
        }
        case 't':
        case 'f': return parseBool();
        case 'n': parseLiteral("null"); return Json{};
        default: return parseNumber();
        }
    }

    void
    parseLiteral(const char *lit)
    {
        for (const char *p = lit; *p; ++p)
            expect(*p);
    }

    Json
    parseBool()
    {
        Json v;
        v.kind = Json::Boolean;
        if (peek() == 't') {
            parseLiteral("true");
            v.boolean = true;
        } else {
            parseLiteral("false");
        }
        return v;
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a number");
        Json v;
        v.kind = Json::Number;
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (peek() != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                switch (peek()) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                default: fail("unsupported escape");
                }
                ++pos_;
            } else {
                out += c;
            }
        }
        ++pos_; // closing quote
        return out;
    }

    Json
    parseArray()
    {
        expect('[');
        Json v;
        v.kind = Json::Array;
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            skipSpace();
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            expect(',');
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json v;
        v.kind = Json::Object;
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipSpace();
            std::string key = parseString();
            skipSpace();
            expect(':');
            v.object.emplace_back(std::move(key), parseValue());
            skipSpace();
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            expect(',');
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

Json
parseTrace(const TraceEventSink &sink)
{
    std::ostringstream os;
    sink.write(os);
    return JsonParser(os.str()).parse();
}

// ---------------------------------------------------------------------
// TraceEventSink
// ---------------------------------------------------------------------

TEST(TraceEvent, WritesWellFormedJsonParsedBack)
{
    TraceEventSink sink;
    sink.setProcessName("wss test");
    sink.setThreadName(0, "worker 0");
    sink.complete("cell \"a\"\n", "sweep", 0, 100, 50,
                  {TraceArg::num("rate", 0.25),
                   TraceArg::str("job", "uniform\\shuffle"),
                   TraceArg::num("rep", std::int64_t{3})});
    sink.instant("link 5 down", "fault", 0, 1234,
                 {TraceArg::num("link", std::int64_t{5})});
    EXPECT_EQ(sink.size(), 4u);

    const Json root = parseTrace(sink);
    ASSERT_EQ(root.kind, Json::Object);
    const Json *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, Json::Array);
    ASSERT_EQ(events->array.size(), 4u);

    // Metadata sorts first.
    EXPECT_EQ(events->array[0].find("ph")->string, "M");
    EXPECT_EQ(events->array[1].find("ph")->string, "M");
    EXPECT_EQ(events->array[0].find("name")->string, "process_name");

    // The span round-trips its escapes and args exactly.
    const Json &span = events->array[2];
    EXPECT_EQ(span.find("ph")->string, "X");
    EXPECT_EQ(span.find("name")->string, "cell \"a\"\n");
    EXPECT_EQ(span.find("cat")->string, "sweep");
    EXPECT_DOUBLE_EQ(span.find("ts")->number, 100.0);
    EXPECT_DOUBLE_EQ(span.find("dur")->number, 50.0);
    const Json *args = span.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->find("rate")->kind, Json::Number);
    EXPECT_DOUBLE_EQ(args->find("rate")->number, 0.25);
    EXPECT_EQ(args->find("job")->string, "uniform\\shuffle");
    EXPECT_DOUBLE_EQ(args->find("rep")->number, 3.0);

    // The instant carries the "s" scope field Perfetto requires.
    const Json &instant = events->array[3];
    EXPECT_EQ(instant.find("ph")->string, "i");
    EXPECT_EQ(instant.find("s")->string, "t");
    EXPECT_DOUBLE_EQ(instant.find("ts")->number, 1234.0);
}

TEST(TraceEvent, NonFiniteNumbersBecomeStrings)
{
    TraceEventSink sink;
    sink.instant("x", "t", 0, 0,
                 {TraceArg::num("inf",
                                std::numeric_limits<double>::infinity()),
                  TraceArg::num("nan",
                                std::numeric_limits<double>::quiet_NaN())});
    // Must still parse as JSON (no bare inf/nan literals).
    const Json root = parseTrace(sink);
    const Json *args = root.find("traceEvents")->array[0].find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->find("inf")->kind, Json::String);
    EXPECT_EQ(args->find("nan")->kind, Json::String);
}

TEST(TraceEvent, EventsSortChronologicallyAfterMetadata)
{
    TraceEventSink sink;
    sink.instant("late", "t", 0, 300);
    sink.instant("early", "t", 0, 100);
    sink.setProcessName("p"); // recorded last, sorts first
    const Json root = parseTrace(sink);
    const auto &events = root.find("traceEvents")->array;
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].find("ph")->string, "M");
    EXPECT_EQ(events[1].find("name")->string, "early");
    EXPECT_EQ(events[2].find("name")->string, "late");
}

/// Multiset of deterministic event content: (ph, name, cat, args as
/// written), metadata excluded. Timestamps and tid legitimately vary
/// with scheduling; everything here must not.
std::multiset<std::string>
eventContent(const TraceEventSink &sink)
{
    const Json root = parseTrace(sink);
    std::multiset<std::string> content;
    for (const Json &e : root.find("traceEvents")->array) {
        if (e.find("ph")->string == "M")
            continue;
        std::string line = e.find("ph")->string + "|" +
                           e.find("name")->string + "|";
        if (const Json *cat = e.find("cat"))
            line += cat->string;
        line += "|";
        if (const Json *args = e.find("args"))
            for (const auto &[k, v] : args->object) {
                line += k + "=";
                line += v.kind == Json::String
                            ? v.string
                            : std::to_string(v.number);
                line += ";";
            }
        content.insert(std::move(line));
    }
    return content;
}

exec::SweepJob
tinySweepJob()
{
    // Shared topology/spec via shared_ptr: the factories outlive this
    // function.
    auto topo = std::make_shared<topology::LogicalTopology>(
        topology::buildFoldedClos({8, power::scaledSsc(8, 200.0), 1}));
    sim::NetworkSpec spec;
    spec.vcs = 2;
    spec.buffer_per_port = 8;
    exec::SweepJob job;
    job.make_network = [topo, spec](std::uint64_t seed) {
        return std::make_unique<sim::Network>(*topo, spec, seed);
    };
    job.make_workload = [](double rate, std::uint64_t) {
        return std::make_unique<sim::SyntheticWorkload>(
            sim::uniformTraffic(8), rate, 1);
    };
    job.rates = {0.1, 0.4};
    job.cfg.warmup = 200;
    job.cfg.measure = 800;
    job.cfg.drain_limit = 8000;
    job.cfg.seed = 5;
    job.repetitions = 2;
    return job;
}

TEST(TraceEvent, CampaignContentIsIdenticalAtAnyThreadCount)
{
    exec::Campaign campaign;
    campaign.addSweep("uniform", tinySweepJob());
    campaign.addTask("solve", [] {});

    TraceEventSink serial_sink;
    exec::ThreadPool one(1);
    campaign.run(&one, &serial_sink);

    TraceEventSink parallel_sink;
    exec::ThreadPool four(4);
    campaign.run(&four, &parallel_sink);

    const auto serial = eventContent(serial_sink);
    const auto parallel = eventContent(parallel_sink);
    EXPECT_EQ(serial, parallel);
    // 2 rates x 2 reps + 1 task = 5 spans.
    EXPECT_EQ(serial.size(), 5u);
}

TEST(TraceEvent, FaultScheduleEmitsInstantEvents)
{
    // 16 ports -> multiple spines, so killing one uplink bundle
    // leaves the fabric connected (ECMP reroutes around it).
    const auto topo =
        topology::buildFoldedClos({16, power::scaledSsc(8, 200.0), 1});
    sim::NetworkSpec spec;
    spec.vcs = 2;
    spec.buffer_per_port = 8;
    sim::Network net(topo, spec, 3);
    sim::SyntheticWorkload workload(sim::uniformTraffic(16), 0.2, 1);

    // Flap the first link touching router 0 (the pattern the fault
    // tests use; ECMP reroutes around it).
    int link = -1;
    for (std::size_t li = 0; li < topo.links().size(); ++li)
        if (topo.links()[li].a == 0 || topo.links()[li].b == 0) {
            link = static_cast<int>(li);
            break;
        }
    ASSERT_GE(link, 0);
    fault::FaultSchedule schedule;
    schedule.flapLink(link, 100, 400);

    TraceEventSink sink;
    sim::SimConfig cfg;
    cfg.warmup = 200;
    cfg.measure = 600;
    cfg.drain_limit = 8000;
    schedule.installInto(cfg, &sink);

    sim::Simulator sim(net, workload, cfg);
    sim.run();

    const auto content = eventContent(sink);
    ASSERT_EQ(content.size(), 2u);
    // Timestamps of fault instants are *simulated* cycles.
    const Json root = parseTrace(sink);
    for (const Json &e : root.find("traceEvents")->array) {
        EXPECT_EQ(e.find("ph")->string, "i");
        EXPECT_EQ(e.find("cat")->string, "fault");
        const double ts = e.find("ts")->number;
        EXPECT_TRUE(ts == 100.0 || ts == 400.0);
    }
}

// ---------------------------------------------------------------------
// Artifact writing
// ---------------------------------------------------------------------

TEST(Artifact, WriteArtifactFileRoundTrips)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "wss_obs_artifact.txt")
            .string();
    util::writeArtifactFile(path, "test", [](std::ostream &os) {
        os << "line one\nline two\n";
    });
    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), "line one\nline two\n");
    std::remove(path.c_str());
}

TEST(Artifact, CampaignCsvFileIsCompleteOnDisk)
{
    // The regression the flush-checked writers exist for: a fatal()
    // after writeCsvFile must never leave a truncated artifact. The
    // file-writing path flushes, closes and verifies before
    // returning, so by the time control is back the bytes are down.
    exec::Campaign campaign;
    campaign.addSweep("uniform", tinySweepJob());
    const exec::CampaignResult result = campaign.run();

    std::ostringstream expected;
    result.writeCsv(expected);

    const std::string path =
        (std::filesystem::temp_directory_path() / "wss_obs_campaign.csv")
            .string();
    result.writeCsvFile(path);
    std::ifstream in(path);
    std::stringstream on_disk;
    on_disk << in.rdbuf();
    EXPECT_EQ(on_disk.str(), expected.str());
    EXPECT_FALSE(on_disk.str().empty());
    EXPECT_EQ(on_disk.str().back(), '\n');
    std::remove(path.c_str());
}

TEST(Artifact, UnwritablePathDiesLoudly)
{
    EXPECT_EXIT(util::writeArtifactFile(
                    "/nonexistent-dir/deeper/out.csv", "test",
                    [](std::ostream &) {}),
                ::testing::ExitedWithCode(1), "cannot open");
}

// ---------------------------------------------------------------------
// Simulator observation
// ---------------------------------------------------------------------

struct ObservedRun
{
    sim::SimResult result;
    std::shared_ptr<const SimObservation> obs;
};

ObservedRun
runObserved(double rate, bool observe, sim::Cycle sample_every = 0)
{
    const auto topo =
        topology::buildFoldedClos({8, power::scaledSsc(8, 200.0), 1});
    sim::NetworkSpec spec;
    spec.vcs = 2;
    spec.buffer_per_port = 8;
    sim::Network net(topo, spec, 21);
    sim::SyntheticWorkload workload(sim::uniformTraffic(8), rate, 2);
    sim::SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 1200;
    cfg.drain_limit = 12000;
    cfg.seed = 33;
    cfg.observe = observe;
    cfg.observe_sample_every = sample_every;
    sim::Simulator sim(net, workload, cfg);
    ObservedRun run;
    run.result = sim.run();
    run.obs = run.result.observation;
    return run;
}

TEST(SimObservation, ResultsAreBitIdenticalWithObservabilityOnOrOff)
{
    const ObservedRun off = runObserved(0.5, false);
    const ObservedRun on = runObserved(0.5, true, 100);
    EXPECT_EQ(off.obs, nullptr);
    ASSERT_NE(on.obs, nullptr);

    // Observation must never perturb simulated behaviour: every
    // statistic matches bit-for-bit.
    EXPECT_EQ(off.result.avg_packet_latency,
              on.result.avg_packet_latency);
    EXPECT_EQ(off.result.p99_packet_latency,
              on.result.p99_packet_latency);
    EXPECT_EQ(off.result.avg_network_latency,
              on.result.avg_network_latency);
    EXPECT_EQ(off.result.avg_hops, on.result.avg_hops);
    EXPECT_EQ(off.result.offered, on.result.offered);
    EXPECT_EQ(off.result.accepted, on.result.accepted);
    EXPECT_EQ(off.result.packets_measured, on.result.packets_measured);
    EXPECT_EQ(off.result.packets_finished, on.result.packets_finished);
    EXPECT_EQ(off.result.stable, on.result.stable);
    EXPECT_EQ(off.result.end_cycle, on.result.end_cycle);
    EXPECT_EQ(off.result.flits_delivered, on.result.flits_delivered);
    EXPECT_EQ(off.result.flits_injected, on.result.flits_injected);
}

TEST(SimObservation, CountersReconcileWithSimResult)
{
    const ObservedRun run = runObserved(0.5, true);
    ASSERT_NE(run.obs, nullptr);
    // Delivered-flit counters bump at the exact ejection event the
    // scalar uses, so the totals reconcile exactly — the CLI panics
    // on any mismatch.
    EXPECT_EQ(run.obs->totalCounter("flits_delivered"),
              static_cast<std::uint64_t>(run.result.flits_delivered));
    // Per-phase deltas partition the cumulative total.
    EXPECT_EQ(
        run.obs->totalCounter("flits_delivered", SimPhase::Warmup) +
            run.obs->totalCounter("flits_delivered",
                                  SimPhase::Measure) +
            run.obs->totalCounter("flits_delivered", SimPhase::Drain),
        run.obs->totalCounter("flits_delivered"));
    // Every delivered flit traversed at least one router crossbar.
    EXPECT_GE(run.obs->totalCounter("flits_routed"),
              run.obs->totalCounter("flits_delivered"));
}

TEST(SimObservation, PhasesLinksAndHistogramsArePopulated)
{
    const ObservedRun run = runObserved(0.6, true);
    const SimObservation &obs = *run.obs;
    EXPECT_GT(obs.routers, 0u);
    EXPECT_GT(obs.links, 0u);
    EXPECT_EQ(obs.link_channel_count.size(), obs.links);

    EXPECT_EQ(obs.phase_cycles[0], 300);
    EXPECT_EQ(obs.phase_cycles[1], 1200);
    EXPECT_GT(obs.phase_cycles[2], 0);

    // Traffic flowed in the measurement phase over some link, and
    // per-channel utilization is a fraction.
    std::uint64_t measure_flits = 0;
    for (std::size_t l = 0; l < obs.links; ++l) {
        measure_flits += obs.link_flits[1][l];
        const double u = obs.linkUtilization(SimPhase::Measure, l);
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
    EXPECT_GT(measure_flits, 0u);

    // Buffer-occupancy histograms exist for every router and saw one
    // sample per simulated cycle.
    const std::int64_t total_cycles =
        obs.phase_cycles[0] + obs.phase_cycles[1] + obs.phase_cycles[2];
    for (std::size_t r = 0; r < obs.routers; ++r) {
        std::string name = "r";
        name += std::to_string(r);
        name += ".buffer_occupancy";
        const HistogramData *h = obs.registry.findHistogram(name);
        ASSERT_NE(h, nullptr) << "router " << r;
        EXPECT_EQ(h->count, static_cast<std::uint64_t>(total_cycles));
    }
}

TEST(SimObservation, TimelineSamplesAtTheRequestedPeriod)
{
    const ObservedRun run = runObserved(0.4, true, 250);
    const SimObservation &obs = *run.obs;
    ASSERT_FALSE(obs.timeline.empty());
    for (std::size_t i = 0; i < obs.timeline.size(); ++i) {
        EXPECT_EQ(obs.timeline[i].cycle,
                  static_cast<std::int64_t>(i) * 250);
        EXPECT_GE(obs.timeline[i].flits_offered,
                  obs.timeline[i].flits_accepted);
    }
    // No sampling requested -> no series.
    const ObservedRun plain = runObserved(0.4, true, 0);
    EXPECT_TRUE(plain.obs->timeline.empty());
}

TEST(SimObservation, DumpCsvIsWellFormedLongFormat)
{
    const ObservedRun run = runObserved(0.5, true, 500);
    std::ostringstream os;
    run.obs->dumpCsv(os);
    const std::string csv = os.str();
    ASSERT_FALSE(csv.empty());
    EXPECT_EQ(csv.back(), '\n');

    std::istringstream in(csv);
    std::string line;
    bool saw_header = false;
    std::map<std::string, int> kinds;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (line == "record,phase,scope,metric,value") {
            saw_header = true;
            continue;
        }
        // Exactly four commas per data row (no embedded commas in
        // any scope/metric name).
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 4)
            << line;
        kinds[line.substr(0, line.find(','))]++;
    }
    EXPECT_TRUE(saw_header);
    EXPECT_GT(kinds["phase"], 0);
    EXPECT_GT(kinds["counter"], 0);
    EXPECT_GT(kinds["link"], 0);
    EXPECT_GT(kinds["hist"], 0);
    EXPECT_GT(kinds["sample"], 0);
}

TEST(SimObservation, PhaseNameDisambiguates)
{
    EXPECT_STREQ(phaseName(SimPhase::Warmup), "warmup");
    EXPECT_STREQ(phaseName(SimPhase::Measure), "measure");
    EXPECT_STREQ(phaseName(SimPhase::Drain), "drain");
}

// ---------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------

/// Busy-wait so a phase accumulates a nonzero, orderable duration.
void
spinFor(double seconds)
{
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < until) {
    }
}

TEST(Profiler, NestingProducesSlashJoinedPaths)
{
    Profiler p;
    {
        ScopedPhase outer(&p, "flow-sim");
        spinFor(2e-4);
        for (int i = 0; i < 3; ++i) {
            ScopedPhase inner(&p, "waterfill");
            spinFor(1e-4);
        }
    }
    EXPECT_FALSE(p.open());
    ASSERT_EQ(p.phases().size(), 2u);
    const auto &outer = p.phases().at("flow-sim");
    const auto &inner = p.phases().at("flow-sim/waterfill");
    EXPECT_EQ(outer.calls, 1);
    EXPECT_EQ(inner.calls, 3);
    // Single-threaded: a parent's inclusive time covers its children.
    EXPECT_GE(outer.seconds, inner.seconds);
    EXPECT_GT(inner.seconds, 0.0);
}

TEST(Profiler, NullHandleScopesAreNoOps)
{
    // The whole point of the null-handle contract: call sites
    // instrument unconditionally and pay one branch when off.
    ScopedPhase defaulted;
    ScopedPhase nulled(nullptr, "anything");
    Profiler p;
    {
        ScopedPhase real(&p, "real");
    }
    EXPECT_EQ(p.phases().size(), 1u);
}

TEST(Profiler, SelfTimeSubtractsDirectChildrenOnly)
{
    Profiler p;
    {
        ScopedPhase a(&p, "a");
        spinFor(1e-4);
        {
            ScopedPhase b(&p, "b");
            {
                ScopedPhase c(&p, "c");
                spinFor(1e-4);
            }
        }
    }
    // Self time of "a" subtracts "a/b" (direct child) but not
    // "a/b/c" — the grandchild is already inside "a/b".
    EXPECT_DOUBLE_EQ(p.selfSeconds("a"),
                     p.totalSeconds("a") - p.totalSeconds("a/b"));
    EXPECT_DOUBLE_EQ(p.selfSeconds("a/b/c"), p.totalSeconds("a/b/c"));
    EXPECT_DOUBLE_EQ(p.totalSeconds("absent"), 0.0);
}

TEST(Profiler, MergeSumsPathsAndReRootsUnderPrefix)
{
    // Two workers each profile the same phase; the owner folds them
    // in under a "campaign" prefix, exactly as exec::Campaign does.
    Profiler w1, w2;
    {
        ScopedPhase s(&w1, "cell");
        spinFor(1e-4);
    }
    {
        ScopedPhase s(&w2, "cell");
        spinFor(1e-4);
    }
    const double sum = w1.phases().at("cell").seconds +
                       w2.phases().at("cell").seconds;

    Profiler owner;
    owner.merge(w1, "campaign");
    owner.merge(w2, "campaign");
    ASSERT_EQ(owner.phases().count("campaign/cell"), 1u);
    const auto &merged = owner.phases().at("campaign/cell");
    EXPECT_EQ(merged.calls, 2);
    EXPECT_DOUBLE_EQ(merged.seconds, sum);
}

TEST(Profiler, MergeNestsUnderTheOpenPhase)
{
    // calibrateSwitchProfile times "calibrate" and merges the sweep's
    // worker profilers while that phase is open — their paths must
    // land below it so the summary reads as one tree.
    Profiler worker;
    {
        ScopedPhase s(&worker, "point");
        spinFor(1e-4);
    }
    Profiler owner;
    owner.enter("calibrate");
    owner.merge(worker, "sweep");
    owner.exit();
    EXPECT_EQ(owner.phases().count("calibrate/sweep/point"), 1u);
    EXPECT_EQ(owner.phases().count("sweep/point"), 0u);
}

TEST(Profiler, MisuseDiesLoudly)
{
    EXPECT_DEATH(
        {
            Profiler p;
            p.enter("a/b");
        },
        "'/'-free");
    EXPECT_DEATH(
        {
            Profiler p;
            p.exit();
        },
        "without a matching enter");
    EXPECT_DEATH(
        {
            Profiler src;
            src.enter("open");
            Profiler dst;
            dst.merge(src);
        },
        "open phases");
}

TEST(Profiler, SummaryAndTraceExportTheAggregate)
{
    Profiler p;
    {
        ScopedPhase a(&p, "outer");
        spinFor(1e-4);
        ScopedPhase b(&p, "inner");
        spinFor(1e-4);
    }
    std::ostringstream summary;
    p.writeSummary(summary);
    EXPECT_NE(summary.str().find("outer"), std::string::npos);
    EXPECT_NE(summary.str().find("outer/inner"), std::string::npos);

    TraceEventSink sink;
    p.addToTrace(sink, sink.allocateTrack("profile"));
    const Json root = parseTrace(sink);
    std::map<std::string, double> span_us;
    for (const Json &e : root.find("traceEvents")->array) {
        if (e.find("ph")->string != "X")
            continue;
        span_us[e.find("name")->string] = e.find("dur")->number;
    }
    ASSERT_EQ(span_us.count("outer"), 1u);
    ASSERT_EQ(span_us.count("inner"), 1u);
    // Synthetic layout preserves the hierarchy's inclusion relation.
    EXPECT_GE(span_us["outer"], span_us["inner"]);
}

// ---------------------------------------------------------------------
// RunManifest
// ---------------------------------------------------------------------

std::string
writeTempFile(const std::string &name, const std::string &content)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / name).string();
    std::ofstream os(path);
    os << content;
    os.close();
    return path;
}

TEST(RunManifest, RoundTripsThroughJsonFile)
{
    const std::string artifact =
        writeTempFile("wss_manifest_artifact.csv", "a,b\n1,2\n");

    RunManifest manifest("wss test");
    manifest.setConfig("arg.hosts", static_cast<std::int64_t>(64));
    manifest.setConfig("arg.load", 0.5);
    manifest.setConfig("arg.workloads", "websearch");
    manifest.setSeed(0xdeadbeefull);
    manifest.setJobs(4);
    manifest.addArtifact(artifact, "campaign-csv");
    manifest.addPhaseSeconds("campaign", 1.25, 3);

    const std::string path = (std::filesystem::temp_directory_path() /
                              "wss_manifest_roundtrip.json")
                                 .string();
    manifest.writeJsonFile(path);
    const RunManifest loaded = RunManifest::loadJsonFile(path);

    EXPECT_EQ(loaded.tool(), "wss test");
    EXPECT_EQ(loaded.seed(), 0xdeadbeefull);
    EXPECT_EQ(loaded.jobs(), 4);
    EXPECT_EQ(loaded.config().at("arg.hosts"), "64");
    EXPECT_EQ(loaded.config().at("arg.workloads"), "websearch");
    // The constructor records build provenance automatically.
    EXPECT_EQ(loaded.config().count("build.compiler"), 1u);
    ASSERT_EQ(loaded.artifacts().size(), 1u);
    EXPECT_EQ(loaded.artifacts()[0].kind, "campaign-csv");
    EXPECT_EQ(loaded.artifacts()[0].bytes, 8u);
    EXPECT_EQ(loaded.artifacts()[0].hash,
              RunManifest::hashBytes("a,b\n1,2\n"));
    ASSERT_EQ(loaded.phases().size(), 1u);
    EXPECT_EQ(loaded.phases()[0].path, "campaign");
    EXPECT_EQ(loaded.phases()[0].calls, 3);
    EXPECT_DOUBLE_EQ(loaded.phases()[0].seconds, 1.25);
    // Round-tripping preserves the identity bit-for-bit.
    EXPECT_EQ(loaded.identityJson(), manifest.identityJson());
    EXPECT_EQ(loaded.identityHash(), manifest.identityHash());

    std::remove(path.c_str());
    std::remove(artifact.c_str());
}

TEST(RunManifest, IdentityIgnoresArtifactPathsAndTimings)
{
    // The same run in a different directory, with different wall
    // times, is the same run.
    const std::string a =
        writeTempFile("wss_manifest_id_a.csv", "payload\n");
    const std::string b =
        writeTempFile("wss_manifest_id_b.csv", "payload\n");

    RunManifest m1("wss test");
    m1.setConfig("arg.hosts", static_cast<std::int64_t>(64));
    m1.setSeed(7);
    m1.setJobs(1);
    m1.addArtifact(a, "campaign-csv");
    m1.addPhaseSeconds("campaign", 0.5);

    RunManifest m2("wss test");
    m2.setConfig("arg.hosts", static_cast<std::int64_t>(64));
    m2.setSeed(7);
    m2.setJobs(1);
    m2.addArtifact(b, "campaign-csv");
    m2.addPhaseSeconds("campaign", 99.0, 12);

    EXPECT_EQ(m1.identityJson(), m2.identityJson());
    EXPECT_EQ(m1.identityHash(), m2.identityHash());

    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(RunManifest, IdentityTracksConfigSeedAndContent)
{
    const std::string base =
        writeTempFile("wss_manifest_id_c.csv", "payload\n");

    auto make = [&](const std::string &path) {
        auto m = std::make_unique<RunManifest>("wss test");
        m->setConfig("arg.hosts", static_cast<std::int64_t>(64));
        m->setSeed(7);
        m->setJobs(1);
        m->addArtifact(path, "campaign-csv");
        return m;
    };

    const std::uint64_t baseline = make(base)->identityHash();

    auto differing_config = make(base);
    differing_config->setConfig("arg.hosts",
                                static_cast<std::int64_t>(128));
    EXPECT_NE(differing_config->identityHash(), baseline);

    auto differing_seed = make(base);
    differing_seed->setSeed(8);
    EXPECT_NE(differing_seed->identityHash(), baseline);

    const std::string changed =
        writeTempFile("wss_manifest_id_d.csv", "payload CHANGED\n");
    EXPECT_NE(make(changed)->identityHash(), baseline);

    std::remove(base.c_str());
    std::remove(changed.c_str());
}

TEST(RunManifest, MissingArtifactDiesLoudly)
{
    EXPECT_EXIT(
        {
            RunManifest m("wss test");
            m.addArtifact("/nonexistent-dir/missing.csv", "csv");
        },
        ::testing::ExitedWithCode(1), "cannot read artifact");
}

TEST(RunManifest, HashBytesIsFnv1a64)
{
    // Published FNV-1a 64 test vectors.
    EXPECT_EQ(RunManifest::hashBytes(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(RunManifest::hashBytes("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(RunManifest::hashBytes("foobar"),
              0x85944171f73967e8ull);
}

TEST(RunManifest, WriteJsonIsParseable)
{
    const std::string artifact =
        writeTempFile("wss_manifest_parse.csv", "x\n");
    RunManifest manifest("wss test");
    manifest.setSeed(1);
    manifest.setJobs(2);
    manifest.addArtifact(artifact, "campaign-csv");

    std::ostringstream os;
    manifest.writeJson(os);
    const Json root = JsonParser(os.str()).parse();
    ASSERT_NE(root.find("tool"), nullptr);
    EXPECT_EQ(root.find("tool")->string, "wss test");
    ASSERT_NE(root.find("artifacts"), nullptr);
    EXPECT_EQ(root.find("artifacts")->array.size(), 1u);
    ASSERT_NE(root.find("identity_hash"), nullptr);

    std::remove(artifact.c_str());
}

// ---------------------------------------------------------------------
// Trace-track allocation
// ---------------------------------------------------------------------

TEST(TraceEvent, AllocateTrackIsIdempotentAndCollisionFree)
{
    TraceEventSink sink;
    const int flow = sink.allocateTrack("flow-telemetry");
    const int coll = sink.allocateTrack("coll-telemetry");
    const int profile = sink.allocateTrack("profile");
    EXPECT_GE(flow, TraceEventSink::kFirstAllocatedTrack);
    EXPECT_NE(flow, coll);
    EXPECT_NE(coll, profile);
    EXPECT_NE(flow, profile);
    // Re-requesting a name returns the same track, not a new one.
    EXPECT_EQ(sink.allocateTrack("flow-telemetry"), flow);
    EXPECT_EQ(sink.allocateTrack("coll-telemetry"), coll);

    // Each allocated track carries thread_name metadata so Perfetto
    // labels it.
    sink.complete("span", "test", flow, 0, 10, {});
    const Json root = parseTrace(sink);
    std::set<std::string> named;
    for (const Json &e : root.find("traceEvents")->array) {
        if (e.find("ph")->string != "M" ||
            e.find("name")->string != "thread_name")
            continue;
        if (const Json *args = e.find("args"))
            if (const Json *name = args->find("name"))
                named.insert(name->string);
    }
    EXPECT_EQ(named.count("flow-telemetry"), 1u);
    EXPECT_EQ(named.count("coll-telemetry"), 1u);
    EXPECT_EQ(named.count("profile"), 1u);
}

// ---------------------------------------------------------------------
// Run reports
// ---------------------------------------------------------------------

TEST(Report, SmokeFromFreshManifest)
{
    const std::string artifact =
        writeTempFile("wss_report_smoke.csv", "col\n1\n2\n");
    RunManifest manifest("wss test");
    manifest.setConfig("arg.hosts", static_cast<std::int64_t>(64));
    manifest.setSeed(9);
    manifest.setJobs(2);
    manifest.addArtifact(artifact, "campaign-csv");
    manifest.addPhaseSeconds("campaign", 0.25);
    const std::string manifest_path =
        (std::filesystem::temp_directory_path() /
         "wss_report_smoke.manifest.json")
            .string();
    manifest.writeJsonFile(manifest_path);

    ReportOptions opts;
    opts.manifest_path = manifest_path;
    const RunReport report = buildRunReport(opts);
    EXPECT_TRUE(report.ok());
    ASSERT_FALSE(report.checks.empty());
    EXPECT_EQ(report.checks[0].name, "artifact-hashes");
    EXPECT_TRUE(report.checks[0].ok);
    EXPECT_NE(report.markdown.find("wss test"), std::string::npos);
    EXPECT_NE(report.markdown.find("campaign-csv"), std::string::npos);

    // The JSON side parses and carries the marker and the checks.
    const Json root = JsonParser(report.json).parse();
    ASSERT_NE(root.find("wss_run_report"), nullptr);
    ASSERT_NE(root.find("checks"), nullptr);
    EXPECT_EQ(root.find("checks")->array.size(),
              report.checks.size());

    std::remove(manifest_path.c_str());
    std::remove(artifact.c_str());
}

TEST(Report, CorruptArtifactFailsTheHashCheckWithoutDying)
{
    const std::string artifact =
        writeTempFile("wss_report_corrupt.csv", "original\n");
    RunManifest manifest("wss test");
    manifest.setSeed(9);
    manifest.setJobs(1);
    manifest.addArtifact(artifact, "campaign-csv");
    const std::string manifest_path =
        (std::filesystem::temp_directory_path() /
         "wss_report_corrupt.manifest.json")
            .string();
    manifest.writeJsonFile(manifest_path);

    // Tamper after the manifest is sealed: the report must degrade
    // to a failed health check, not fatal() — one lost file must not
    // hide the rest of the story.
    writeTempFile("wss_report_corrupt.csv", "tampered\n");

    ReportOptions opts;
    opts.manifest_path = manifest_path;
    const RunReport report = buildRunReport(opts);
    EXPECT_FALSE(report.ok());
    ASSERT_FALSE(report.checks.empty());
    EXPECT_EQ(report.checks[0].name, "artifact-hashes");
    EXPECT_FALSE(report.checks[0].ok);
    EXPECT_NE(report.checks[0].detail.find("content differs"),
              std::string::npos);

    std::remove(manifest_path.c_str());
    std::remove(artifact.c_str());
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// RAII reset so one failing test cannot leak an enabled recorder /
/// watchdog / crash-dump installation into the next.
struct ObsReset
{
    ObsReset() { reset(); }
    ~ObsReset() { reset(); }
    static void
    reset()
    {
        Watchdog::resetForTesting();
        FlightRecorder::resetForTesting();
        CrashDump::resetForTesting();
    }
};

TEST(FlightRecorder, DisabledRecordIsANoOp)
{
    ObsReset guard;
    EXPECT_FALSE(FlightRecorder::enabled());
    // The disabled contract: no ring attached, recordEvent is one
    // predicted branch (BM_FlightRecorderDisabled measures it).
    recordEvent(EventKind::SimEpoch, 1, 2, "ignored");
    recordPhaseEnter("ignored");
    recordPhaseExit();
    EXPECT_EQ(FlightRecorder::ringCount(), 0u);
    EXPECT_EQ(FlightRecorder::kindCount(EventKind::SimEpoch), 0u);
}

TEST(FlightRecorder, AttachBeforeEnableIsIgnored)
{
    ObsReset guard;
    FlightRecorder::attachCurrentThread("early");
    EXPECT_EQ(FlightRecorder::ringCount(), 0u);
}

TEST(FlightRecorder, RecordsEventsAndWrapsTheRing)
{
    ObsReset guard;
    FlightRecorder::enable(16);
    FlightRecorder::attachCurrentThread("t0");
    ASSERT_EQ(FlightRecorder::ringCount(), 1u);
    // Attach is idempotent: same thread, same ring.
    FlightRecorder::attachCurrentThread("t0-again");
    EXPECT_EQ(FlightRecorder::ringCount(), 1u);

    for (int i = 0; i < 40; ++i)
        recordEvent(EventKind::JobStart, i, i * 2, "cell");
    ThreadRing *ring = FlightRecorder::ring(0);
    ASSERT_NE(ring, nullptr);
    EXPECT_EQ(std::string(ring->label()), "t0");
    EXPECT_EQ(ring->capacity(), 16u);
    EXPECT_EQ(ring->written(), 40u);
    EXPECT_EQ(FlightRecorder::kindCount(EventKind::JobStart), 40u);

    // Only the last `capacity` events survive; slot(i) is addressed
    // by absolute event index, so the tail is events 24..39.
    for (std::uint64_t i = 24; i < 40; ++i) {
        const FlightEvent &e = ring->slot(i);
        EXPECT_EQ(e.kind,
                  static_cast<std::uint16_t>(EventKind::JobStart));
        EXPECT_EQ(e.a, static_cast<std::int64_t>(i));
        EXPECT_EQ(e.b, static_cast<std::int64_t>(i) * 2);
        EXPECT_EQ(std::string(e.tag), "cell");
    }
    // Timestamps are monotone within the ring tail.
    for (std::uint64_t i = 25; i < 40; ++i)
        EXPECT_GE(ring->slot(i).t, ring->slot(i - 1).t);

    // Long tags truncate, never overflow.
    recordEvent(EventKind::DesignPoint, 0, 0,
                std::string(100, 'x'));
    const FlightEvent &last = ring->slot(ring->written() - 1);
    EXPECT_EQ(std::string(last.tag), std::string(29, 'x'));
}

TEST(FlightRecorder, ProfilerPhasesDriveTheOpenPhaseStack)
{
    ObsReset guard;
    FlightRecorder::enable(64);
    FlightRecorder::attachCurrentThread("prof");
    ThreadRing *ring = FlightRecorder::ring(0);
    ASSERT_NE(ring, nullptr);

    Profiler profiler;
    {
        ScopedPhase outer(&profiler, "campaign");
        {
            ScopedPhase inner(&profiler, "cell");
            EXPECT_EQ(ring->phaseDepth(), 2);
            EXPECT_EQ(std::string(ring->phaseName(0)), "campaign");
            EXPECT_EQ(std::string(ring->phaseName(1)), "cell");
        }
        EXPECT_EQ(ring->phaseDepth(), 1);
    }
    EXPECT_EQ(ring->phaseDepth(), 0);
    EXPECT_EQ(FlightRecorder::kindCount(EventKind::PhaseEnter), 2u);
    EXPECT_EQ(FlightRecorder::kindCount(EventKind::PhaseExit), 2u);
}

TEST(FlightRecorder, WarnOnceAndArtifactWritesBecomeEvents)
{
    ObsReset guard;
    FlightRecorder::enable(64);
    FlightRecorder::attachCurrentThread("hooked");

    // WSS_WARN_ONCE routes through the logging hook into the ring.
    WSS_WARN_ONCE("flight-recorder hook test warning");
    EXPECT_EQ(FlightRecorder::kindCount(EventKind::WarnOnce), 1u);

    const std::string path =
        (std::filesystem::temp_directory_path() /
         "wss_fr_artifact.txt")
            .string();
    util::writeArtifactFile(path, "test",
                            [](std::ostream &os) { os << "x\n"; });
    EXPECT_EQ(FlightRecorder::kindCount(EventKind::ArtifactWrite), 1u);
    ThreadRing *ring = FlightRecorder::ring(0);
    ASSERT_NE(ring, nullptr);
    const FlightEvent &e = ring->slot(ring->written() - 1);
    EXPECT_EQ(e.kind,
              static_cast<std::uint16_t>(EventKind::ArtifactWrite));
    // The tag keeps the (truncated) artifact path.
    EXPECT_NE(std::string(e.tag).find("wss_fr"), std::string::npos);
    std::remove(path.c_str());
}

TEST(FlightRecorder, SimResultsAreBitIdenticalWithRecorderOnOrOff)
{
    ObsReset guard;
    // Long enough to cross the simulator's epoch-mark cadence (one
    // SimEpoch event every 65536 cycles — the hot loop's per-cycle
    // cost is a single mask-and-compare).
    const auto run = [] {
        const auto topo = topology::buildFoldedClos(
            {8, power::scaledSsc(8, 200.0), 1});
        sim::NetworkSpec spec;
        spec.vcs = 2;
        spec.buffer_per_port = 8;
        sim::Network net(topo, spec, 21);
        sim::SyntheticWorkload workload(sim::uniformTraffic(8), 0.3,
                                        1);
        sim::SimConfig cfg;
        cfg.warmup = 500;
        cfg.measure = 66000;
        cfg.drain_limit = 80000;
        cfg.seed = 33;
        return sim::Simulator(net, workload, cfg).run();
    };
    const sim::SimResult off_result = run();

    FlightRecorder::enable(256);
    FlightRecorder::attachCurrentThread("sim");
    Watchdog::enableHeartbeats();
    Watchdog::registerCurrentThread("sim");
    const sim::SimResult on_result = run();
    // The instrumented run actually recorded something…
    EXPECT_GT(FlightRecorder::kindCount(EventKind::SimEpoch), 0u);
    ObservedRun off;
    off.result = off_result;
    ObservedRun on;
    on.result = on_result;

    // …and perturbed nothing: the recorder is write-only telemetry.
    EXPECT_EQ(off.result.avg_packet_latency,
              on.result.avg_packet_latency);
    EXPECT_EQ(off.result.p99_packet_latency,
              on.result.p99_packet_latency);
    EXPECT_EQ(off.result.avg_hops, on.result.avg_hops);
    EXPECT_EQ(off.result.offered, on.result.offered);
    EXPECT_EQ(off.result.accepted, on.result.accepted);
    EXPECT_EQ(off.result.packets_measured, on.result.packets_measured);
    EXPECT_EQ(off.result.packets_finished, on.result.packets_finished);
    EXPECT_EQ(off.result.stable, on.result.stable);
    EXPECT_EQ(off.result.end_cycle, on.result.end_cycle);
    EXPECT_EQ(off.result.flits_delivered, on.result.flits_delivered);
    EXPECT_EQ(off.result.flits_injected, on.result.flits_injected);
}

TEST(FlightRecorder, CampaignResultsAreBitIdenticalWithRecorderOnOrOff)
{
    ObsReset guard;
    exec::Campaign plain;
    plain.addSweep("uniform", tinySweepJob());
    exec::ThreadPool pool_off(2);
    const exec::CampaignResult off = plain.run(&pool_off);

    FlightRecorder::enable(512);
    FlightRecorder::attachCurrentThread("main");
    Watchdog::enableHeartbeats();
    Watchdog::registerCurrentThread("main");
    Watchdog::markThreadIdle();
    exec::Campaign traced;
    traced.addSweep("uniform", tinySweepJob());
    exec::ThreadPool pool_on(2);
    const exec::CampaignResult on = traced.run(&pool_on);

    EXPECT_EQ(FlightRecorder::kindCount(EventKind::JobStart),
              FlightRecorder::kindCount(EventKind::JobFinish));
    EXPECT_GT(FlightRecorder::kindCount(EventKind::JobStart), 0u);
    EXPECT_GT(FlightRecorder::kindCount(EventKind::DesignPoint), 0u);
    EXPECT_EQ(Watchdog::progressDone(), Watchdog::progressTotal());

    ASSERT_EQ(off.jobs.size(), on.jobs.size());
    for (std::size_t j = 0; j < off.jobs.size(); ++j) {
        const auto &a = off.jobs[j].sweep.combined;
        const auto &b = on.jobs[j].sweep.combined;
        ASSERT_EQ(a.points.size(), b.points.size());
        for (std::size_t p = 0; p < a.points.size(); ++p) {
            EXPECT_EQ(a.points[p].offered, b.points[p].offered);
            EXPECT_EQ(a.points[p].accepted, b.points[p].accepted);
            EXPECT_EQ(a.points[p].avg_latency, b.points[p].avg_latency);
            EXPECT_EQ(a.points[p].p99_latency, b.points[p].p99_latency);
            EXPECT_EQ(a.points[p].stable, b.points[p].stable);
        }
        EXPECT_EQ(a.zero_load_latency, b.zero_load_latency);
        EXPECT_EQ(a.saturation_throughput, b.saturation_throughput);
    }
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, HeartbeatIsANoOpWhileUnregistered)
{
    ObsReset guard;
    heartbeat(); // must not crash, must not register anything
    Watchdog::registerCurrentThread("ignored"); // disabled -> no-op
    EXPECT_FALSE(Watchdog::heartbeatsEnabled());
    EXPECT_TRUE(Watchdog::snapshot().empty());
}

TEST(Watchdog, SnapshotTracksBeatsDetailAndIdleState)
{
    ObsReset guard;
    Watchdog::enableHeartbeats();
    Watchdog::registerCurrentThread("worker-0");
    Watchdog::setThreadDetail("uniform rep 1 rate 0.4");
    heartbeat();
    heartbeat();

    auto snaps = Watchdog::snapshot();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].label, "worker-0");
    EXPECT_EQ(snaps[0].detail, "uniform rep 1 rate 0.4");
    // register + setThreadDetail + 2 explicit beats
    EXPECT_GE(snaps[0].beats, 3u);
    EXPECT_TRUE(snaps[0].active);
    EXPECT_LT(snaps[0].age_s, 5.0);

    Watchdog::markThreadIdle();
    EXPECT_FALSE(Watchdog::snapshot()[0].active);
    Watchdog::markThreadActive();
    EXPECT_TRUE(Watchdog::snapshot()[0].active);
}

TEST(Watchdog, CheckStallsNamesTheCulpritAndSparesIdleThreads)
{
    ObsReset guard;
    Watchdog::enableHeartbeats();
    Watchdog::registerCurrentThread("worker-3");
    Watchdog::setThreadDetail("fig21 rep 2 rate 0.8");
    EXPECT_EQ(Watchdog::checkStalls(10.0), "");

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const std::string culprit = Watchdog::checkStalls(0.005);
    EXPECT_NE(culprit.find("worker-3"), std::string::npos);
    EXPECT_NE(culprit.find("no heartbeat"), std::string::npos);
    EXPECT_NE(culprit.find("fig21 rep 2 rate 0.8"), std::string::npos);

    // A fresh beat clears the stall…
    heartbeat();
    EXPECT_EQ(Watchdog::checkStalls(1.0), "");
    // …and an idle thread is never a culprit, however stale.
    Watchdog::markThreadIdle();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(Watchdog::checkStalls(0.001), "");
}

TEST(Watchdog, ProgressLineReportsJobsAndActiveWorkers)
{
    ObsReset guard;
    Watchdog::enableHeartbeats();
    Watchdog::setProgressTotal(40);
    Watchdog::addProgressDone(12);
    EXPECT_EQ(Watchdog::progressTotal(), 40u);
    EXPECT_EQ(Watchdog::progressDone(), 12u);

    Watchdog::registerCurrentThread("worker-1");
    Watchdog::setThreadDetail("tornado rep 0 rate 0.7");
    const std::string line = Watchdog::renderProgressLine();
    EXPECT_NE(line.find("jobs 12/40"), std::string::npos);
    EXPECT_NE(line.find("30.0%"), std::string::npos);
    EXPECT_NE(line.find("worker-1 tornado rep 0 rate 0.7"),
              std::string::npos);

    // Idle workers drop off the line.
    Watchdog::markThreadIdle();
    EXPECT_EQ(Watchdog::renderProgressLine().find("worker-1"),
              std::string::npos);
}

TEST(Watchdog, MonitorThreadStartsAndStopsCleanly)
{
    ObsReset guard;
    Watchdog::start(0.0, false, 0.01); // no stall arm, no progress
    Watchdog::start(0.0, false, 0.01); // idempotent while running
    EXPECT_TRUE(Watchdog::heartbeatsEnabled());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Watchdog::stop();
    Watchdog::stop(); // idempotent when stopped
}

// ---------------------------------------------------------------------
// Crash dumps
// ---------------------------------------------------------------------

TEST(CrashDump, WriteNowWithoutInstallIsRefused)
{
    ObsReset guard;
    EXPECT_FALSE(CrashDump::installed());
    EXPECT_FALSE(CrashDump::writeNow("not installed", 0));
}

TEST(CrashDump, WriteNowProducesParseableJsonOnce)
{
    ObsReset guard;
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "wss_crash_unit.json")
            .string();
    std::remove(path.c_str());

    FlightRecorder::enable(64);
    FlightRecorder::attachCurrentThread("main");
    Profiler profiler;
    ScopedPhase phase(&profiler, "campaign");
    recordEvent(EventKind::JobStart, 7, 0, "uniform");
    recordEvent(EventKind::FaultInjection, 3, 120, "link down");

    CrashDump::install(path);
    CrashDump::setTool("wss test");
    CrashDump::setIdentity(0xdeadbeefu);
    ASSERT_TRUE(CrashDump::installed());
    EXPECT_EQ(CrashDump::path(), path);
    ASSERT_TRUE(CrashDump::writeNow("unit-test dump", 0));
    // Write-once latch: the second writer (e.g. the SIGABRT handler
    // running after panic() already dumped) must not clobber.
    EXPECT_FALSE(CrashDump::writeNow("second dump", 0));

    const util::JsonValue doc = util::JsonValue::parseFile(path, "crash dump");
    EXPECT_EQ(doc.require("wss_crash_report", "crash dump").asNumber("crash dump"), 1.0);
    EXPECT_EQ(doc.require("reason", "crash dump").asString("crash dump"), "unit-test dump");
    EXPECT_EQ(doc.require("tool", "crash dump").asString("crash dump"), "wss test");
    EXPECT_EQ(doc.require("identity_hash", "crash dump").asString("crash dump"), "0xdeadbeef");
    EXPECT_EQ(doc.require("signal", "crash dump").asNumber("crash dump"), 0.0);
    const auto &threads = doc.require("threads", "crash dump").asArray("crash dump");
    ASSERT_EQ(threads.size(), 1u);
    EXPECT_EQ(threads[0].require("label", "crash dump").asString("crash dump"), "main");
    // The open profiler phase is captured in the post-mortem.
    const auto &phases = threads[0].require("open_phases", "crash dump").asArray("crash dump");
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases[0].asString("crash dump"), "campaign");
    const auto &events = threads[0].require("events", "crash dump").asArray("crash dump");
    ASSERT_GE(events.size(), 2u);
    bool saw_fault = false;
    for (const auto &e : events)
        if (e.require("kind", "crash dump").asString("crash dump") ==
            std::string(eventKindName(EventKind::FaultInjection))) {
            saw_fault = true;
            EXPECT_EQ(e.require("a", "crash dump").asNumber("crash dump"), 3.0);
            EXPECT_EQ(e.require("b", "crash dump").asNumber("crash dump"), 120.0);
            EXPECT_EQ(e.require("tag", "crash dump").asString("crash dump"), "link down");
        }
    EXPECT_TRUE(saw_fault);
    // Counters section mirrors FlightRecorder::kindCount.
    EXPECT_EQ(doc.require("counters", "crash dump")
                  .require(eventKindName(EventKind::JobStart),
                           "crash dump")
                  .asNumber("crash dump"),
              1.0);
    std::remove(path.c_str());
}

TEST(CrashDump, ReportRendersThePostMortem)
{
    ObsReset guard;
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "wss_crash_report_unit.json")
            .string();
    FlightRecorder::enable(64);
    FlightRecorder::attachCurrentThread("worker-2");
    recordEvent(EventKind::DesignPoint, 1, 4, "rate 0.8");
    CrashDump::install(path);
    CrashDump::setTool("wss sweep");
    ASSERT_TRUE(CrashDump::writeNow("watchdog: stall detected", 6));

    ReportOptions opts;
    opts.crash_path = path; // crash-only report: no manifest at all
    const RunReport report = buildRunReport(opts);
    EXPECT_TRUE(report.ok());
    bool found = false;
    for (const auto &check : report.checks)
        if (check.name == "crash-post-mortem") {
            found = true;
            EXPECT_TRUE(check.ok);
            EXPECT_NE(check.detail.find("watchdog: stall detected"),
                      std::string::npos);
        }
    EXPECT_TRUE(found);
    EXPECT_NE(report.markdown.find("## Post-mortem"),
              std::string::npos);
    EXPECT_NE(report.markdown.find("### Thread worker-2"),
              std::string::npos);
    EXPECT_NE(report.markdown.find("rate 0.8"), std::string::npos);
    EXPECT_NE(report.json.find("\"crash\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(CrashDump, MalformedCrashJsonFailsTheCheckWithoutDying)
{
    ObsReset guard;
    const std::string path = writeTempFile(
        "wss_crash_malformed.json", "{\"not_a_crash\": true}\n");
    ReportOptions opts;
    opts.crash_path = path;
    const RunReport report = buildRunReport(opts);
    EXPECT_FALSE(report.ok());
    bool found = false;
    for (const auto &check : report.checks)
        if (check.name == "crash-post-mortem") {
            found = true;
            EXPECT_FALSE(check.ok);
        }
    EXPECT_TRUE(found);
    std::remove(path.c_str());
}

// Death tests live in their own *DiesLoudly suite: the sanitizer
// presets exclude them (fork + abort under tsan/asan is noise).
TEST(CrashDumpDiesLoudly, PanicDumpsThenAborts)
{
    ObsReset guard;
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "wss_crash_panic.json")
            .string();
    std::remove(path.c_str());
    // The child enables the recorder, installs the dump, and
    // panic()s: the logging hook writes crash.json *before* abort()
    // raises SIGABRT (whose handler then finds the write-once latch
    // taken and re-raises).
    EXPECT_DEATH(
        {
            FlightRecorder::enable(64);
            FlightRecorder::attachCurrentThread("doomed");
            recordEvent(EventKind::JobStart, 1, 0, "cell");
            CrashDump::install(path);
            CrashDump::setTool("wss test");
            panic("deliberate test panic");
        },
        "deliberate test panic");
    // The dump the dying child wrote is valid JSON with its reason.
    const util::JsonValue doc = util::JsonValue::parseFile(path, "crash dump");
    EXPECT_EQ(doc.require("wss_crash_report", "crash dump").asNumber("crash dump"), 1.0);
    EXPECT_NE(doc.require("reason", "crash dump").asString("crash dump").find(
                  "deliberate test panic"),
              std::string::npos);
    EXPECT_EQ(doc.require("threads", "crash dump").asArray("crash dump").size(), 1u);
    std::remove(path.c_str());
}

TEST(CrashDumpDiesLoudly, FatalDumpsThenExits)
{
    ObsReset guard;
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "wss_crash_fatal.json")
            .string();
    std::remove(path.c_str());
    EXPECT_EXIT(
        {
            FlightRecorder::enable(64);
            FlightRecorder::attachCurrentThread("doomed");
            CrashDump::install(path);
            fatal("deliberate test fatal");
        },
        ::testing::ExitedWithCode(1), "deliberate test fatal");
    const util::JsonValue doc = util::JsonValue::parseFile(path, "crash dump");
    EXPECT_NE(doc.require("reason", "crash dump").asString("crash dump").find(
                  "deliberate test fatal"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(CrashDumpDiesLoudly, WatchdogStallAbortsNamingTheCulprit)
{
    ObsReset guard;
    EXPECT_DEATH(
        {
            FlightRecorder::enable(64);
            FlightRecorder::attachCurrentThread("sleeper");
            Watchdog::enableHeartbeats();
            Watchdog::registerCurrentThread("sleeper");
            Watchdog::setThreadDetail("pretending to work");
            Watchdog::start(0.05, false, 0.01);
            std::this_thread::sleep_for(std::chrono::seconds(10));
        },
        "watchdog: stall detected.*sleeper.*pretending to work");
}

} // namespace
} // namespace wss::obs
