/**
 * @file
 * Property tests for the radix solver: monotonicity of the feasible
 * frontier in every resource axis, internal consistency of
 * evaluations, and cross-checks between the solver's answers and the
 * underlying models.
 */

#include <gtest/gtest.h>

#include "core/radix_solver.hpp"
#include "power/link_power.hpp"
#include "topology/clos.hpp"

namespace wss::core {
namespace {

DesignSpec
baseSpec()
{
    DesignSpec spec;
    spec.substrate_side = 300.0;
    spec.wsi = tech::siIf();
    spec.external_io = tech::opticalIo();
    spec.ssc = power::tomahawk5(1);
    spec.cooling = tech::unlimitedCooling();
    spec.mapping_restarts = 2;
    spec.seed = 1;
    return spec;
}

TEST(SolverProperties, MaxPortsMonotoneInSubstrate)
{
    std::int64_t prev = 0;
    for (double side : {100.0, 150.0, 200.0, 250.0, 300.0}) {
        DesignSpec spec = baseSpec();
        spec.substrate_side = side;
        const auto result = RadixSolver(spec).solveMaxPorts();
        EXPECT_GE(result.best.ports, prev) << side << " mm";
        prev = result.best.ports;
    }
}

TEST(SolverProperties, MaxPortsMonotoneInInternalBandwidth)
{
    std::int64_t prev = 0;
    for (int layers : {1, 2, 4, 8, 16}) {
        DesignSpec spec = baseSpec();
        spec.wsi = tech::siIfWithLayers(layers);
        const auto result = RadixSolver(spec).solveMaxPorts();
        EXPECT_GE(result.best.ports, prev) << layers << " layers";
        prev = result.best.ports;
    }
}

TEST(SolverProperties, MaxPortsMonotoneInCooling)
{
    DesignSpec spec = baseSpec();
    std::int64_t prev = 0;
    for (const auto &cooling : tech::allCoolingSolutions()) {
        spec.cooling = cooling;
        const auto result = RadixSolver(spec).solveMaxPorts();
        EXPECT_GE(result.best.ports, prev) << cooling.name;
        prev = result.best.ports;
    }
}

TEST(SolverProperties, IdealNeverBelowConstrained)
{
    for (double side : {100.0, 200.0, 300.0}) {
        DesignSpec constrained = baseSpec();
        constrained.substrate_side = side;
        DesignSpec ideal = constrained;
        ideal.area_only = true;
        EXPECT_GE(RadixSolver(ideal).solveMaxPorts().best.ports,
                  RadixSolver(constrained).solveMaxPorts().best.ports)
            << side << " mm";
    }
}

TEST(SolverProperties, SerdesNeverBeatsOptical)
{
    for (double side : {100.0, 200.0, 300.0}) {
        DesignSpec optical = baseSpec();
        optical.substrate_side = side;
        DesignSpec serdes = optical;
        serdes.external_io = tech::serdes();
        EXPECT_LE(RadixSolver(serdes).solveMaxPorts().best.ports,
                  RadixSolver(optical).solveMaxPorts().best.ports)
            << side << " mm";
    }
}

TEST(SolverProperties, SolveResultBoundariesAreConsistent)
{
    for (bool overclocked : {false, true}) {
        DesignSpec spec = baseSpec();
        if (overclocked)
            spec.wsi = tech::siIf2x();
        const auto result = RadixSolver(spec).solveMaxPorts();
        EXPECT_TRUE(result.best.feasible);
        EXPECT_EQ(result.best.violated, Constraint::None);
        if (result.blocking) {
            EXPECT_FALSE(result.blocking->feasible);
            EXPECT_NE(result.blocking->violated, Constraint::None);
            EXPECT_GT(result.blocking->ports, result.best.ports);
        }
    }
}

TEST(SolverProperties, EvaluationPowerMatchesComponentSum)
{
    const auto eval = RadixSolver(baseSpec()).evaluate(1024);
    EXPECT_NEAR(eval.power.total(),
                eval.power.ssc_core + eval.power.internal_io +
                    eval.power.external_io,
                1e-9);
    EXPECT_NEAR(eval.power_density,
                eval.power.total() / (300.0 * 300.0), 1e-12);
}

TEST(SolverProperties, EvaluationMatchesTopologyAggregates)
{
    const RadixSolver solver(baseSpec());
    const auto eval = solver.evaluate(2048);
    const auto topo = solver.buildTopology(2048);
    EXPECT_EQ(eval.ssc_chiplets, topo.nodeCount());
    EXPECT_NEAR(eval.power.ssc_core, topo.totalSscCorePower(), 1e-6);
    EXPECT_GE(eval.silicon_area, topo.totalSscArea());
}

TEST(SolverProperties, HigherLineRateConfigsShiftTheFrontier)
{
    // Same die, fewer fatter ports: the port count shrinks with the
    // configuration's line rate but aggregate bandwidth should not
    // collapse.
    DesignSpec spec = baseSpec();
    spec.wsi = tech::siIf2x();
    std::int64_t prev_ports = 1LL << 40;
    for (int cfg : {1, 2, 3}) {
        spec.ssc = power::tomahawk5(cfg);
        const auto result = RadixSolver(spec).solveMaxPorts();
        EXPECT_LT(result.best.ports, prev_ports) << "config " << cfg;
        EXPECT_GT(static_cast<double>(result.best.ports) *
                      spec.ssc.line_rate,
                  200000.0)
            << "config " << cfg; // >= 200 Tbps aggregate
        prev_ports = result.best.ports;
    }
}

TEST(SolverProperties, DeterministicAcrossRuns)
{
    const DesignSpec spec = baseSpec();
    const auto a = RadixSolver(spec).solveMaxPorts();
    const auto b = RadixSolver(spec).solveMaxPorts();
    EXPECT_EQ(a.best.ports, b.best.ports);
    EXPECT_DOUBLE_EQ(a.best.max_edge_load, b.best.max_edge_load);
    EXPECT_DOUBLE_EQ(a.best.power.total(), b.best.power.total());
}

TEST(SolverProperties, SeedChangesMappingOnlyMarginally)
{
    // The paper reports <1% spread over random restarts; different
    // seeds must agree on the solved radix.
    DesignSpec spec = baseSpec();
    const auto a = RadixSolver(spec).solveMaxPorts();
    spec.seed = 99;
    const auto b = RadixSolver(spec).solveMaxPorts();
    EXPECT_EQ(a.best.ports, b.best.ports);
}

TEST(SolverProperties, HeterogeneousNeverRaisesPowerAtIsoRadix)
{
    DesignSpec spec = baseSpec();
    spec.wsi = tech::siIf2x();
    const auto homo = RadixSolver(spec).evaluate(4096);
    spec.leaf_split = 2;
    const auto hetero2 = RadixSolver(spec).evaluate(4096);
    spec.leaf_split = 4;
    const auto hetero4 = RadixSolver(spec).evaluate(4096);
    EXPECT_LT(hetero2.power.total(), homo.power.total());
    EXPECT_LT(hetero4.power.total(), hetero2.power.total());
}

TEST(SolverProperties, EveryTopologySolvesSomething)
{
    for (TopologyKind kind :
         {TopologyKind::Clos, TopologyKind::Mesh, TopologyKind::Butterfly,
          TopologyKind::FlattenedButterfly, TopologyKind::Dragonfly}) {
        DesignSpec spec = baseSpec();
        spec.topology = kind;
        const auto result = RadixSolver(spec).solveMaxPorts();
        EXPECT_GT(result.best.ports, 0) << toString(kind);
        EXPECT_TRUE(result.best.feasible) << toString(kind);
    }
}

TEST(SolverProperties, CandidateEvaluateRoundTrip)
{
    const RadixSolver solver(baseSpec());
    for (std::int64_t ports : solver.candidatePorts()) {
        const auto eval = solver.evaluate(ports);
        EXPECT_EQ(eval.ports, ports);
        // Either feasible or tagged with a concrete constraint.
        if (!eval.feasible) {
            EXPECT_NE(eval.violated, Constraint::None) << ports;
        }
    }
}


TEST(SolverProperties, ExtremeLayerCountsShiftTheBottleneckToArea)
{
    // Fig. 27: once internal density is high enough, substrate area
    // itself binds the next candidate.
    DesignSpec spec = baseSpec();
    spec.wsi = tech::siIfWithLayers(32); // 25.6 Tbps/mm
    const auto result = RadixSolver(spec).solveMaxPorts();
    EXPECT_EQ(result.best.ports, 8192); // the area-bound ideal
    // The next candidate either fails the area check outright or was
    // already pruned from the ladder by the area cut-off.
    if (result.blocking) {
        EXPECT_EQ(result.blocking->violated, Constraint::Area);
    }
}

TEST(SolverProperties, BlockingConstraintMovesWithTheBottleneck)
{
    // SerDes: external binds. Optical @3200: internal binds.
    DesignSpec spec = baseSpec();
    spec.external_io = tech::serdes();
    const auto serdes = RadixSolver(spec).solveMaxPorts();
    ASSERT_TRUE(serdes.blocking.has_value());
    EXPECT_EQ(serdes.blocking->violated,
              Constraint::ExternalBandwidth);

    spec = baseSpec();
    const auto optical = RadixSolver(spec).solveMaxPorts();
    ASSERT_TRUE(optical.blocking.has_value());
    EXPECT_EQ(optical.blocking->violated,
              Constraint::InternalBandwidth);

    spec.cooling = tech::airCooling();
    const auto cooled = RadixSolver(spec).solveMaxPorts();
    ASSERT_TRUE(cooled.blocking.has_value());
    EXPECT_EQ(cooled.blocking->violated, Constraint::PowerDensity);
}

} // namespace
} // namespace wss::core
