/**
 * @file
 * Flow-control invariants of the VC router, exercised through small
 * networks under stress: packet integrity (no loss, no duplication,
 * in-order flits), buffer-credit safety across parameter sweeps, and
 * allocation fairness.
 */

#include <gtest/gtest.h>

#include <map>

#include "power/ssc.hpp"
#include "sim/simulator.hpp"
#include "topology/clos.hpp"
#include "topology/mesh.hpp"

namespace wss::sim {
namespace {

topology::LogicalTopology
smallClos()
{
    return topology::buildFoldedClos(
        {16, power::scaledSsc(8, 200.0), 1});
}

/// Drive a network raw (no Simulator) and record every ejected flit.
struct RawHarness
{
    Network net;
    std::vector<Flit> ejected;
    std::uint64_t next_packet = 0;

    RawHarness(const topology::LogicalTopology &topo,
               const NetworkSpec &spec, std::uint64_t seed)
        : net(topo, spec, seed)
    {}

    void
    sendPacket(Cycle now, int src, int dst, int flits, int vc)
    {
        for (int i = 0; i < flits; ++i) {
            Flit flit;
            flit.packet_id = next_packet;
            flit.src = src;
            flit.dst = dst;
            flit.head = i == 0;
            flit.tail = i == flits - 1;
            flit.vc = static_cast<std::int16_t>(vc);
            flit.created = now;
            pending.push_back(flit);
        }
        ++next_packet;
    }

    void
    tick(Cycle now)
    {
        if (!pending.empty() &&
            net.tryInject(pending.front().src, now, pending.front()))
            pending.erase(pending.begin());
        for (int t = 0; t < net.terminalCount(); ++t)
            if (auto flit = net.eject(t, now))
                ejected.push_back(*flit);
        net.step(now);
    }

    std::vector<Flit> pending;
};

TEST(RouterInvariants, MultiFlitPacketArrivesInOrderAndComplete)
{
    const auto topo = smallClos();
    NetworkSpec spec;
    spec.vcs = 2;
    spec.buffer_per_port = 4; // tight: forces credit stalls
    spec.pipeline_delay = 2;
    spec.terminal_link_latency = 3;
    RawHarness harness(topo, spec, 1);
    harness.sendPacket(0, 0, 12, 6, 0);
    for (Cycle now = 0; now < 300; ++now)
        harness.tick(now);
    ASSERT_EQ(harness.ejected.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(harness.ejected[i].head, i == 0);
        EXPECT_EQ(harness.ejected[i].tail, i == 5);
        EXPECT_EQ(harness.ejected[i].dst, 12);
    }
    EXPECT_EQ(harness.net.flitsInFlight(), 0);
}

TEST(RouterInvariants, PacketsOnTheSameVcDoNotInterleave)
{
    const auto topo = smallClos();
    NetworkSpec spec;
    spec.vcs = 1; // force both packets through one VC
    spec.buffer_per_port = 6;
    spec.pipeline_delay = 1;
    spec.terminal_link_latency = 1;
    RawHarness harness(topo, spec, 2);
    harness.sendPacket(0, 0, 12, 3, 0);
    harness.sendPacket(0, 0, 12, 3, 0);
    for (Cycle now = 0; now < 300; ++now)
        harness.tick(now);
    ASSERT_EQ(harness.ejected.size(), 6u);
    // First three flits belong to packet 0, then packet 1.
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(harness.ejected[i].packet_id, i / 3);
}

class StressSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(StressSweep, NoLossNoDuplicationUnderSaturation)
{
    const auto [vcs, buffer, packet_size] = GetParam();
    const auto topo = smallClos();
    NetworkSpec spec;
    spec.vcs = vcs;
    spec.buffer_per_port = buffer;
    spec.pipeline_delay = 2;
    spec.terminal_link_latency = 2;

    Network net(topo, spec, 7);
    SyntheticWorkload workload(uniformTraffic(16), 0.9, packet_size);
    SimConfig cfg;
    cfg.warmup = 200;
    cfg.measure = 1200;
    cfg.drain_limit = 60000;
    cfg.seed = 11;
    Simulator sim(net, workload, cfg);
    const SimResult result = sim.run();
    // Saturated or not, every measured packet must eventually arrive
    // exactly once (the drain cap is generous) and the fabric must
    // end empty. Any duplication would overshoot; any loss would
    // undershoot or leave flits in flight.
    EXPECT_EQ(result.packets_finished, result.packets_measured);
    EXPECT_EQ(net.flitsInFlight(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Parameters, StressSweep,
    ::testing::Values(std::tuple{1, 2, 1}, std::tuple{1, 8, 3},
                      std::tuple{2, 4, 2}, std::tuple{4, 4, 1},
                      std::tuple{4, 16, 5}, std::tuple{8, 32, 4},
                      std::tuple{16, 64, 8}));

TEST(RouterInvariants, HopCountsMatchTopologyDistance)
{
    const auto topo = smallClos();
    NetworkSpec spec;
    spec.vcs = 2;
    spec.buffer_per_port = 8;
    RawHarness harness(topo, spec, 3);
    // Terminal 0 and 1 share a leaf; 0 and 12 are on different leaves.
    harness.sendPacket(0, 0, 1, 1, 0);
    harness.sendPacket(0, 1, 12, 1, 1);
    for (Cycle now = 0; now < 200; ++now)
        harness.tick(now);
    ASSERT_EQ(harness.ejected.size(), 2u);
    std::map<int, int> hops;
    for (const auto &flit : harness.ejected)
        hops[flit.dst] = flit.hops;
    EXPECT_EQ(hops[1], 1);  // same leaf
    EXPECT_EQ(hops[12], 3); // leaf - spine - leaf
}

TEST(RouterInvariants, SharedBufferIsNeverExceeded)
{
    // portOccupancy is asserted against buffer_per_port inside the
    // router (panic on violation); a saturated run doubles as the
    // stress test. Tornado at rate 1.0 through 1 spine.
    const auto topo = smallClos();
    NetworkSpec spec;
    spec.vcs = 2;
    spec.buffer_per_port = 3;
    Network net(topo, spec, 13);
    SyntheticWorkload workload(tornadoTraffic(16), 1.0, 2);
    SimConfig cfg;
    cfg.warmup = 100;
    cfg.measure = 800;
    cfg.drain_limit = 40000;
    Simulator sim(net, workload, cfg);
    EXPECT_NO_FATAL_FAILURE(sim.run());
}

TEST(RouterInvariants, FlitsAreConservedAcrossTheRun)
{
    // The simulator panics if injected != delivered + in-flight at
    // run end; here we additionally check the reported numbers. Run
    // near saturation so the drain cap bites and flits legitimately
    // remain in flight at the end.
    const auto topo = smallClos();
    NetworkSpec spec;
    spec.vcs = 2;
    spec.buffer_per_port = 4;
    Network net(topo, spec, 23);
    SyntheticWorkload workload(uniformTraffic(16), 0.95, 4);
    SimConfig cfg;
    cfg.warmup = 200;
    cfg.measure = 1000;
    cfg.drain_limit = 2000; // tight: may stop with flits in flight
    cfg.seed = 29;
    Simulator sim(net, workload, cfg);
    const SimResult result = sim.run();
    EXPECT_GT(result.flits_injected, 0);
    EXPECT_EQ(result.flits_injected,
              result.flits_delivered + net.flitsInFlight());
}

TEST(RouterInvariants, ObservedCountersReconcileWithDeliveredFlits)
{
    const auto topo = smallClos();
    NetworkSpec spec;
    spec.vcs = 2;
    spec.buffer_per_port = 8;
    Network net(topo, spec, 31);
    SyntheticWorkload workload(uniformTraffic(16), 0.5, 2);
    SimConfig cfg;
    cfg.warmup = 200;
    cfg.measure = 1000;
    cfg.observe = true;
    Simulator sim(net, workload, cfg);
    const SimResult result = sim.run();
    ASSERT_NE(result.observation, nullptr);
    EXPECT_EQ(result.observation->totalCounter("flits_delivered"),
              static_cast<std::uint64_t>(result.flits_delivered));
    // Routed >= delivered: every delivered flit crossed >= 1 crossbar.
    EXPECT_GE(result.observation->totalCounter("flits_routed"),
              result.observation->totalCounter("flits_delivered"));
}

TEST(RouterInvariants, ParallelLinksShareLoadFairly)
{
    // 16-port Clos: each leaf has 4 uplinks split over 2 spines
    // (bundles of 2). Under sustained uniform load both spines must
    // carry comparable traffic — check via ejection balance of
    // flits that crossed 3 hops.
    const auto topo = smallClos();
    NetworkSpec spec;
    spec.vcs = 4;
    spec.buffer_per_port = 16;
    Network net(topo, spec, 17);
    SyntheticWorkload workload(uniformTraffic(16), 0.5, 1);
    SimConfig cfg;
    cfg.warmup = 500;
    cfg.measure = 3000;
    cfg.seed = 19;
    Simulator sim(net, workload, cfg);
    const SimResult result = sim.run();
    EXPECT_TRUE(result.stable);
    // Cross-leaf average hops must sit near the topology's 3 (same
    // leaf = 1); with 16 terminals over 4 leaves, ~1/5 of pairs are
    // local: expected ~2.6.
    EXPECT_NEAR(result.avg_hops, 2.6, 0.2);
}

} // namespace
} // namespace wss::sim
