/**
 * @file
 * Bit-exact determinism suite for the simulator core.
 *
 * The hot-path work (ring-buffer channels, flit pooling, active-set
 * scheduling, wake wheels, pending-VC lists) is only admissible
 * because it is behaviour-preserving. This suite pins that down:
 * every SimResult field — including the floating-point latency and
 * throughput statistics — must match golden values recorded from the
 * pre-optimization simulator, bit for bit, across the full matrix of
 * {uniform, transpose, tornado} x {mesh, clos} x {adaptive on/off}
 * x {low load, high load}, with observability off AND on.
 *
 * A second invariant rides along: once the fabric reaches steady
 * state, the cycle loop performs no heap allocation at all (every
 * ring, pool, wheel and scratch vector has reached its high-water
 * mark or was reserved up front). A global operator new/delete
 * counting hook asserts a zero allocation delta across the
 * measurement window. The AddressSanitizer preset excludes the
 * ZeroAllocation test (ASan interposes the allocator) and runs the
 * golden matrix under heap checking instead.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

#include "power/ssc.hpp"
#include "sim/simulator.hpp"
#include "topology/clos.hpp"
#include "topology/mesh.hpp"

// --- Global allocation counter -------------------------------------
//
// Replaces the global allocation functions for this test binary only.
// The counter is monotone (frees are not subtracted): the invariant
// under test is "no allocation happens", not "allocation is
// balanced", and a monotone counter cannot be fooled by a
// free-then-alloc pair inside one cycle.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

std::uint64_t
allocCount()
{
    return g_alloc_count.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace wss::sim {
namespace {

/// One cell of the golden matrix. The doubles are hexadecimal float
/// literals (exact), recorded with tools equivalent to
/// std::printf("%a", ...) against the pre-optimization core.
struct GoldenRow
{
    const char *pattern;
    const char *topo;
    bool adaptive;
    double load;
    double avg_packet_latency;
    double p99_packet_latency;
    double avg_network_latency;
    double avg_hops;
    double accepted;
    std::int64_t packets_measured;
    std::int64_t packets_finished;
    bool stable;
    std::int64_t end_cycle;
    std::int64_t flits_delivered;
    std::int64_t flits_injected;
};

constexpr GoldenRow kGolden[] = {
    {"uniform", "mesh", false, 0x1.999999999999ap-4,
     0x1.0e301b7d6c3d8p+4, 0x1.9p+4,
     0x1.fa93c225cc74dp+3, 0x1.0af3f920a4f03p+1,
     0x1.9735ee402bb0dp-4,
     1192, 1192, true, 1815, 2860, 2860},
    {"uniform", "mesh", false, 0x1.6666666666666p-1,
     0x0p+0, 0x0p+0,
     0x0p+0, 0x0p+0,
     0x0p+0,
     8418, 0, false, 11800, 316, 476},
    {"uniform", "clos", false, 0x1.999999999999ap-4,
     0x1.35a338b2af3fdp+4, 0x1.8p+4,
     0x1.24bcfe48293cp+4, 0x1.4e63a6a860368p+1,
     0x1.96b2dbd194238p-4,
     1192, 1192, true, 1820, 2860, 2860},
    {"uniform", "clos", false, 0x1.6666666666666p-1,
     0x1.7d10f82769a5dp+7, 0x1.bap+8,
     0x1.c71b4f2125e2bp+4, 0x1.4e08e148ecf74p+1,
     0x1.370a3d70a3d71p-1,
     8418, 8418, true, 2216, 20172, 20172},
    {"transpose", "mesh", false, 0x1.999999999999ap-4,
     0x1.1ec3dda338b2ap+4, 0x1.9p+4,
     0x1.0e112e63a6a87p+4, 0x1.286036fad87bfp+1,
     0x1.317e4b17e4b18p-4,
     894, 894, true, 1819, 2142, 2142},
    {"transpose", "mesh", false, 0x1.6666666666666p-1,
     0x1.1009c09c09c08p+4, 0x1.5p+4,
     0x1.ep+3, 0x1p+1,
     0x1.68b4395810625p-3,
     6315, 2100, false, 11800, 5178, 5274},
    {"transpose", "clos", false, 0x1.999999999999ap-4,
     0x1.537d6c3dda33bp+4, 0x1.8p+4,
     0x1.42cabcfe48291p+4, 0x1.8p+1,
     0x1.31d5acb6f4651p-4,
     894, 894, true, 1821, 2142, 2142},
    {"transpose", "clos", false, 0x1.6666666666666p-1,
     0x1.06078a46c7b18p+6, 0x1.54p+7,
     0x1.bbd3bb68b5f06p+4, 0x1.8p+1,
     0x1.05ddddddddddep-1,
     6315, 6315, true, 1969, 15202, 15202},
    {"tornado", "mesh", false, 0x1.999999999999ap-4,
     0x1.12f80c0975254p+4, 0x1.8p+4,
     0x1.0229b30cae892p+4, 0x1.0fcc69c0ce589p+1,
     0x1.97e4b17e4b17ep-4,
     1191, 1191, true, 1819, 2844, 2844},
    {"tornado", "mesh", false, 0x1.6666666666666p-1,
     0x1.029d3ca31dbabp+11, 0x1.8f6p+12,
     0x1.95c948a94f772p+4, 0x1.0fcdf5bca7025p+1,
     0x1.18ca11bfd44f3p-2,
     8431, 8431, true, 7945, 20296, 20296},
    {"tornado", "clos", false, 0x1.999999999999ap-4,
     0x1.546808990a88ap+4, 0x1.8p+4,
     0x1.4399af9c43ec7p+4, 0x1.8p+1,
     0x1.9810624dd2f1bp-4,
     1191, 1191, true, 1819, 2844, 2844},
    {"tornado", "clos", false, 0x1.6666666666666p-1,
     0x1.090c254982f4fp+8, 0x1.29p+9,
     0x1.eb7e29b866bf9p+4, 0x1.8p+1,
     0x1.24f3078263ab6p-1,
     8431, 8431, true, 2383, 20296, 20296},
    {"uniform", "mesh", true, 0x1.999999999999ap-4,
     0x1.0dbb4671655e7p+4, 0x1.8p+4,
     0x1.f9aa180dbeb67p+3, 0x1.0af3f920a4f0ap+1,
     0x1.96de8ca11bfd4p-4,
     1192, 1192, true, 1815, 2860, 2860},
    {"uniform", "mesh", true, 0x1.6666666666666p-1,
     0x0p+0, 0x0p+0,
     0x0p+0, 0x0p+0,
     0x0p+0,
     8418, 0, false, 11800, 227, 419},
    {"uniform", "clos", true, 0x1.999999999999ap-4,
     0x1.35a338b2af402p+4, 0x1.8p+4,
     0x1.24bcfe48293bep+4, 0x1.4e63a6a860367p+1,
     0x1.970a3d70a3d71p-4,
     1192, 1192, true, 1820, 2860, 2860},
    {"uniform", "clos", true, 0x1.6666666666666p-1,
     0x1.cf865b1c86892p+6, 0x1.14p+8,
     0x1.d393400bad87ap+4, 0x1.4e08e148ecf58p+1,
     0x1.4d3490b9af72p-1,
     8418, 8418, true, 2081, 20172, 20172},
    {"transpose", "mesh", true, 0x1.999999999999ap-4,
     0x1.1dda338b2af3cp+4, 0x1.8p+4,
     0x1.0d27844b98eap+4, 0x1.286036fad87cp+1,
     0x1.317e4b17e4b18p-4,
     894, 894, true, 1819, 2142, 2142},
    {"transpose", "mesh", true, 0x1.6666666666666p-1,
     0x0p+0, 0x0p+0,
     0x0p+0, 0x0p+0,
     0x0p+0,
     6315, 0, false, 11800, 480, 640},
    {"transpose", "clos", true, 0x1.999999999999ap-4,
     0x1.52816e884de3p+4, 0x1.8p+4,
     0x1.41cebf48bbd91p+4, 0x1.8p+1,
     0x1.31a9fbe76c8b4p-4,
     894, 894, true, 1819, 2142, 2142},
    {"transpose", "clos", true, 0x1.6666666666666p-1,
     0x1.51684e2875141p+5, 0x1.a8p+6,
     0x1.a6d88e5ef0e1bp+4, 0x1.8p+1,
     0x1.0b7fa89e60f05p-1,
     6315, 6315, true, 1875, 15202, 15202},
    {"tornado", "mesh", true, 0x1.999999999999ap-4,
     0x1.11ebcb8da626dp+4, 0x1.8p+4,
     0x1.011a022642a2ap+4, 0x1.0fcc69c0ce58ap+1,
     0x1.97e4b17e4b17ep-4,
     1191, 1191, true, 1819, 2844, 2844},
    {"tornado", "mesh", true, 0x1.6666666666666p-1,
     0x1.374f997d9dcd7p+11, 0x1.6cdp+12,
     0x1.89b95f7ec52efp+4, 0x1.0fcdf5bca700bp+1,
     0x1.b194237fa89e6p-3,
     8431, 8431, true, 7370, 20296, 20296},
    {"tornado", "clos", true, 0x1.999999999999ap-4,
     0x1.532831de09e2dp+4, 0x1.8p+4,
     0x1.4259d8e14346dp+4, 0x1.8p+1,
     0x1.9810624dd2f1bp-4,
     1191, 1191, true, 1819, 2844, 2844},
    {"tornado", "clos", true, 0x1.6666666666666p-1,
     0x1.351ef0e8b5f18p+7, 0x1.51p+8,
     0x1.e26d5f217ddbfp+4, 0x1.8p+1,
     0x1.4322d0e560419p-1,
     8431, 8431, true, 2128, 20296, 20296},
};

/// Rebuild the exact fabric + workload a golden row was recorded
/// with and run it.
SimResult
runGoldenConfig(const GoldenRow &row, bool observe)
{
    topology::LogicalTopology topo =
        row.topo[0] == 'm'
            ? topology::buildMesh(2, 2, power::scaledSsc(8, 200.0))
            : topology::buildFoldedClos(
                  {16, power::scaledSsc(8, 200.0), 1});
    NetworkSpec spec;
    spec.vcs = 4;
    spec.buffer_per_port = 8;
    spec.rc_delay_ingress = 2;
    spec.rc_delay_transit = 1;
    spec.pipeline_delay = 2;
    spec.terminal_link_latency = 3;
    spec.internal_link_latency = 2;
    spec.adaptive_routing = row.adaptive;

    Network net(topo, spec, 7);
    SyntheticWorkload workload(makeTraffic(row.pattern, 16), row.load,
                               2);
    SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 1500;
    cfg.drain_limit = 10000;
    cfg.seed = 42;
    cfg.observe = observe;
    Simulator simulator(net, workload, cfg);
    return simulator.run();
}

void
expectMatchesGolden(const SimResult &r, const GoldenRow &row)
{
    SCOPED_TRACE(std::string(row.pattern) + "/" + row.topo +
                 (row.adaptive ? "/adaptive" : "/oblivious") +
                 "/load=" + std::to_string(row.load));
    // EXPECT_EQ on doubles is deliberate: the contract is bit-exact
    // reproduction, not closeness.
    EXPECT_EQ(r.avg_packet_latency, row.avg_packet_latency);
    EXPECT_EQ(r.p99_packet_latency, row.p99_packet_latency);
    EXPECT_EQ(r.avg_network_latency, row.avg_network_latency);
    EXPECT_EQ(r.avg_hops, row.avg_hops);
    EXPECT_EQ(r.accepted, row.accepted);
    EXPECT_EQ(r.packets_measured, row.packets_measured);
    EXPECT_EQ(r.packets_finished, row.packets_finished);
    EXPECT_EQ(r.stable, row.stable);
    EXPECT_EQ(r.end_cycle, row.end_cycle);
    EXPECT_EQ(r.flits_delivered, row.flits_delivered);
    EXPECT_EQ(r.flits_injected, row.flits_injected);
}

TEST(SimDeterminism, MatchesGoldenMatrix)
{
    for (const GoldenRow &row : kGolden)
        expectMatchesGolden(runGoldenConfig(row, false), row);
}

TEST(SimDeterminism, ObservabilityNeverPerturbsResults)
{
    // The full matrix again with instruments attached: every counter
    // bump and histogram record must leave the simulated behaviour
    // untouched.
    for (const GoldenRow &row : kGolden) {
        const SimResult r = runGoldenConfig(row, true);
        expectMatchesGolden(r, row);
        ASSERT_NE(r.observation, nullptr);
    }
}

TEST(SimDeterminismZeroAllocation, SteadyStateCycleLoopIsAllocFree)
{
    // A stable low-load run: by mid-measurement every pool, ring,
    // wheel and scratch vector has hit its high-water mark, so the
    // cycle loop must run entirely allocation-free from there to the
    // end of the measurement window.
    topology::LogicalTopology topo =
        topology::buildMesh(2, 2, power::scaledSsc(8, 200.0));
    NetworkSpec spec;
    spec.vcs = 4;
    spec.buffer_per_port = 8;
    spec.rc_delay_ingress = 2;
    spec.rc_delay_transit = 1;
    spec.pipeline_delay = 2;
    spec.terminal_link_latency = 3;
    spec.internal_link_latency = 2;

    Network net(topo, spec, 7);
    SyntheticWorkload workload(makeTraffic("uniform", 16), 0.1, 2);
    SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 1500;
    cfg.drain_limit = 10000;
    cfg.seed = 42;
    std::uint64_t at_steady = 0;
    std::uint64_t at_window_end = 0;
    cfg.on_cycle = [&](Network &, Cycle now) {
        if (now == 800)
            at_steady = allocCount();
        if (now == 1800)
            at_window_end = allocCount();
    };
    Simulator simulator(net, workload, cfg);
    const SimResult r = simulator.run();

    ASSERT_TRUE(r.stable);
    ASSERT_GT(at_steady, 0u);
    ASSERT_GE(at_window_end, at_steady);
    EXPECT_EQ(at_window_end - at_steady, 0u)
        << "the cycle loop heap-allocated "
        << (at_window_end - at_steady)
        << " times between cycles 800 and 1800";
}

} // namespace
} // namespace wss::sim
