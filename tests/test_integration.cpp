/**
 * @file
 * Cross-module integration tests: the solver's chosen fabric runs on
 * the cycle simulator; the full system chain (radix -> power ->
 * delivery -> cooling -> enclosure) holds together at paper scale.
 */

#include <gtest/gtest.h>

#include "core/radix_solver.hpp"
#include "sim/load_sweep.hpp"
#include "sysarch/cooling_loop.hpp"
#include "sysarch/enclosure.hpp"
#include "sysarch/power_delivery.hpp"
#include "sysarch/use_cases.hpp"
#include "topology/clos.hpp"
#include "topology/properties.hpp"

namespace wss {
namespace {

TEST(Integration, SolvedFabricSimulatesCleanly)
{
    // Solve a small design point, then actually run packets through
    // the fabric the solver chose.
    core::DesignSpec spec;
    spec.substrate_side = 100.0;
    spec.wsi = tech::siIf();
    spec.external_io = tech::opticalIo();
    spec.ssc = power::scaledSsc(32, 200.0);
    spec.cooling = tech::unlimitedCooling();
    spec.mapping_restarts = 2;
    const core::RadixSolver solver(spec);
    const auto solved = solver.solveMaxPorts();
    ASSERT_GT(solved.best.ports, 0);

    const auto topo = solver.buildTopology(solved.best.ports);
    sim::NetworkSpec net_spec;
    net_spec.vcs = 4;
    net_spec.buffer_per_port = 16;
    net_spec.pipeline_delay = 2;
    net_spec.terminal_link_latency = 2;
    sim::Network net(topo, net_spec, 5);
    sim::SyntheticWorkload workload(
        sim::uniformTraffic(net.terminalCount()), 0.2, 1);
    sim::SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 1500;
    sim::Simulator sim(net, workload, cfg);
    const auto result = sim.run();
    EXPECT_TRUE(result.stable);
    EXPECT_NEAR(result.accepted, 0.2, 0.04);
}

TEST(Integration, FullSystemChainAtPaperScale)
{
    // 300 mm, 6400 Gbps/mm, optical I/O, heterogeneous leaves: the
    // paper's flagship switch. Radix, power, delivery, cooling and
    // chassis must all line up.
    core::DesignSpec spec;
    spec.substrate_side = 300.0;
    spec.wsi = tech::siIf2x();
    spec.external_io = tech::opticalIo();
    spec.ssc = power::tomahawk5(1);
    spec.cooling = tech::waterCooling();
    spec.leaf_split = 4;
    spec.mapping_restarts = 2;
    const auto solved = core::RadixSolver(spec).solveMaxPorts();
    ASSERT_EQ(solved.best.ports, 8192);

    const auto delivery = sysarch::sizePowerDelivery(
        solved.best.power.total(), spec.substrate_side);
    EXPECT_TRUE(delivery.fits_under_wafer);

    const auto cooling =
        sysarch::sizeCoolingLoop(solved.best.power.total(), 12);
    EXPECT_TRUE(cooling.within_band);

    const auto enclosure = sysarch::planEnclosure(solved.best.ports,
                                                  200.0);
    EXPECT_EQ(enclosure.rack_units, 20);

    // The Table III punchline: ~10x the capacity density of the best
    // modular switch.
    double best_modular = 0.0;
    for (const auto &row : sysarch::modularSwitchCatalog())
        best_modular = std::max(best_modular, row.capacityDensity());
    EXPECT_GT(enclosure.capacity_density_tbps_ru, 7.0 * best_modular);
}

TEST(Integration, DatacenterUseCaseUsesSolvedSwitch)
{
    core::DesignSpec spec;
    spec.substrate_side = 300.0;
    spec.wsi = tech::siIf2x();
    spec.external_io = tech::opticalIo();
    spec.ssc = power::tomahawk5(1);
    spec.cooling = tech::unlimitedCooling();
    spec.mapping_restarts = 2;
    const auto solved = core::RadixSolver(spec).solveMaxPorts();
    const auto enclosure =
        sysarch::planEnclosure(solved.best.ports, 200.0);
    const auto cmp = sysarch::singleSwitchDatacenter(
        solved.best.ports, 200.0, enclosure.rack_units);
    // 90% rack-space reduction (Table VII: 20 RU vs 192 RU).
    EXPECT_NEAR(1.0 - static_cast<double>(cmp.waferscale.rack_units) /
                          cmp.conventional.rack_units,
                0.9, 0.02);
}

TEST(Integration, HopCountMatchesSimulatedHops)
{
    // The analytic chiplet hop count and the simulator's measured
    // hops agree on a folded Clos.
    const auto topo = topology::buildFoldedClos(
        {64, power::scaledSsc(16, 200.0), 1});
    const double analytic = topology::averageHopCount(topo);

    sim::NetworkSpec spec;
    spec.vcs = 4;
    spec.buffer_per_port = 16;
    sim::Network net(topo, spec, 9);
    sim::SyntheticWorkload workload(sim::uniformTraffic(64), 0.1, 1);
    sim::SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 3000;
    sim::Simulator sim(net, workload, cfg);
    const auto result = sim.run();
    ASSERT_TRUE(result.stable);
    EXPECT_NEAR(result.avg_hops, analytic, 0.1);
}

} // namespace
} // namespace wss
