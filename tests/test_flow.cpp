/**
 * @file
 * Tests for the flow-level DCN simulator: profile serialization and
 * interpolation, fat-tree/dragonfly construction and ECMP routing,
 * workload generation, the flow-conservation invariant, fault-driven
 * reroutes, and campaign determinism (byte-identical CSV at any
 * thread count — the engine's core contract). Telemetry: windowed
 * per-link time series reconcile exactly with the run's counters and
 * never perturb the results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "exec/thread_pool.hpp"
#include "fault/flow_faults.hpp"
#include "flow/dcn_campaign.hpp"
#include "flow/dcn_topology.hpp"
#include "flow/flow_sim.hpp"
#include "flow/switch_profile.hpp"
#include "flow/workload.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "power/ssc.hpp"

namespace wss::flow {
namespace {

/// A hand-built profile: tests that don't exercise calibration skip
/// the cycle-accurate sweep entirely.
SwitchProfile
testProfile(const std::string &name, std::int64_t radix)
{
    SwitchProfile p;
    p.name = name;
    p.radix = radix;
    p.line_rate_gbps = 200.0;
    p.power_watts = 1000.0;
    p.zero_load_latency = 12.0;
    p.saturation = 0.95;
    p.points = {{0.1, 14.0, 20.0}, {0.5, 25.0, 60.0},
                {0.9, 80.0, 300.0}};
    return p;
}

// --- SwitchProfile ---------------------------------------------------

TEST(FlowProfile, InterpolationAnchorsAndClamps)
{
    const SwitchProfile p = testProfile("t", 64);
    // Anchored at (0, zero_load_latency).
    EXPECT_DOUBLE_EQ(p.latencyCycles(0.0), 12.0);
    // Halfway between the anchor and the first point.
    EXPECT_DOUBLE_EQ(p.latencyCycles(0.05), 13.0);
    // On the calibrated points.
    EXPECT_DOUBLE_EQ(p.latencyCycles(0.1), 14.0);
    EXPECT_DOUBLE_EQ(p.latencyCycles(0.5), 25.0);
    // Between points.
    EXPECT_DOUBLE_EQ(p.latencyCycles(0.3), 19.5);
    // Clamped past the last point.
    EXPECT_DOUBLE_EQ(p.latencyCycles(0.9), 80.0);
    EXPECT_DOUBLE_EQ(p.latencyCycles(1.5), 80.0);
    // p99 uses the same scheme on its own column.
    EXPECT_DOUBLE_EQ(p.p99LatencyCycles(0.5), 60.0);
    // Seconds conversion.
    EXPECT_DOUBLE_EQ(p.latencySeconds(0.0), 12.0 * p.cycle_seconds);
}

TEST(FlowProfile, EmptyCurveFallsBackToZeroLoad)
{
    SwitchProfile p = testProfile("t", 64);
    p.points.clear();
    EXPECT_DOUBLE_EQ(p.latencyCycles(0.7), 12.0);
}

TEST(FlowProfile, JsonRoundTripIsBitExact)
{
    SwitchProfile p = testProfile("ws-6400", 6400);
    // Awkward doubles must survive the round trip bit-for-bit.
    p.line_rate_gbps = 200.0 / 3.0;
    p.cycle_seconds = 2.56e-9;
    p.zero_load_latency = 12.3456789012345;
    p.saturation = 1.0 / 3.0;
    p.points = {{0.1 / 3.0, 1.0 / 7.0, 2.0 / 7.0},
                {0.9, 1e-17, 3.0e17}};

    std::stringstream ss;
    p.writeJson(ss);
    const SwitchProfile q = SwitchProfile::fromJson(ss);

    EXPECT_EQ(q.name, p.name);
    EXPECT_EQ(q.radix, p.radix);
    EXPECT_EQ(q.line_rate_gbps, p.line_rate_gbps);
    EXPECT_EQ(q.cycle_seconds, p.cycle_seconds);
    EXPECT_EQ(q.power_watts, p.power_watts);
    EXPECT_EQ(q.zero_load_latency, p.zero_load_latency);
    EXPECT_EQ(q.saturation, p.saturation);
    ASSERT_EQ(q.points.size(), p.points.size());
    for (std::size_t i = 0; i < p.points.size(); ++i) {
        EXPECT_EQ(q.points[i].offered, p.points[i].offered);
        EXPECT_EQ(q.points[i].avg_latency, p.points[i].avg_latency);
        EXPECT_EQ(q.points[i].p99_latency, p.points[i].p99_latency);
    }
}

TEST(FlowProfile, FromJsonRejectsGarbageDiesLoudly)
{
    std::stringstream not_a_profile("{\"foo\": 1}");
    EXPECT_DEATH(SwitchProfile::fromJson(not_a_profile),
                 "wss_switch_profile");
    std::stringstream malformed("{\"wss_switch_profile\": 1,");
    EXPECT_DEATH(SwitchProfile::fromJson(malformed), "JSON");
}

TEST(FlowProfile, CalibrationProducesUsableProfile)
{
    // Tiny cycle-accurate sweep: a 16-port fabric of radix-8 SSCs.
    CalibrationSpec spec;
    spec.name = "cal-test";
    spec.ports = 16;
    spec.ssc = power::scaledSsc(8, 200.0);
    spec.rates = {0.1, 0.5};
    spec.packet_flits = 1;
    spec.sim_cfg.warmup = 100;
    spec.sim_cfg.measure = 300;
    spec.sim_cfg.drain_limit = 2000;
    spec.power_watts = 123.0;

    const SwitchProfile p = calibrateSwitchProfile(spec);
    EXPECT_EQ(p.name, "cal-test");
    EXPECT_EQ(p.radix, 16);
    EXPECT_DOUBLE_EQ(p.line_rate_gbps, 200.0);
    EXPECT_DOUBLE_EQ(p.power_watts, 123.0);
    EXPECT_GT(p.zero_load_latency, 0.0);
    EXPECT_GT(p.saturation, 0.0);
    ASSERT_FALSE(p.points.empty());
    for (std::size_t i = 1; i < p.points.size(); ++i)
        EXPECT_GT(p.points[i].offered, p.points[i - 1].offered);
    // Latency at load must not undercut the zero-load floor.
    EXPECT_GE(p.latencyCycles(0.5), p.zero_load_latency * 0.99);
}

// --- DcnTopology -----------------------------------------------------

TEST(FlowTopology, FatTreeTierSelection)
{
    const DcnTopology one = DcnTopology::buildFatTree(8, 8, 200.0);
    EXPECT_EQ(one.tiers(), 1);
    EXPECT_EQ(one.switchCount(), 1);
    EXPECT_EQ(one.hostCount(), 8);
    EXPECT_EQ(one.worstCaseHops(), 1);
    EXPECT_EQ(one.cableCount(), 8); // host cables only

    const DcnTopology two = DcnTopology::buildFatTree(20, 8, 200.0);
    EXPECT_EQ(two.tiers(), 2);
    EXPECT_GT(two.switchCount(), 1);
    EXPECT_EQ(two.hostCount(), 20);
    EXPECT_EQ(two.worstCaseHops(), 3); // leaf-spine-leaf
    EXPECT_GT(two.cableCount(), 20);

    const DcnTopology three = DcnTopology::buildFatTree(100, 8, 200.0);
    EXPECT_EQ(three.tiers(), 3);
    EXPECT_EQ(three.hostCount(), 100);
    EXPECT_EQ(three.worstCaseHops(), 5); // leaf-agg-core-agg-leaf
}

TEST(FlowTopology, FatTreeBeyondCapacityDiesLoudly)
{
    // radix 8 tops out at 8^3/4 = 128 hosts.
    EXPECT_DEATH(DcnTopology::buildFatTree(129, 8, 200.0), "exceed");
    EXPECT_DEATH(DcnTopology::buildFatTree(8, 7, 200.0), "even");
    EXPECT_DEATH(DcnTopology::buildFatTree(0, 8, 200.0), "host");
}

TEST(FlowTopology, DragonflyShape)
{
    // radix 8: p = 2 hosts/switch, a = 4 switches/group, h = 2.
    const DcnTopology df = DcnTopology::buildDragonfly(32, 8, 200.0);
    EXPECT_EQ(df.kind(), DcnKind::Dragonfly);
    EXPECT_EQ(df.hostCount(), 32);
    EXPECT_EQ(df.switchCount(), 16); // 4 groups of 4
    EXPECT_GE(df.worstCaseHops(), 2);
    EXPECT_LE(df.worstCaseHops(), 4);
    EXPECT_NE(df.name().find("dragonfly"), std::string::npos);
}

TEST(FlowTopology, DragonflyBeyondBudgetDiesLoudly)
{
    // radix 4: a = 2, h = 1 -> 2 global links per group; more than
    // 3 groups cannot form a clique of groups.
    EXPECT_DEATH(DcnTopology::buildDragonfly(64, 4, 200.0), "exceed");
    EXPECT_DEATH(DcnTopology::buildDragonfly(8, 6, 200.0),
                 "multiple of 4");
}

TEST(FlowTopology, EcmpRouteIsDeterministicAndValid)
{
    const DcnTopology topo = DcnTopology::buildFatTree(32, 8, 200.0);
    ASSERT_EQ(topo.tiers(), 2);
    for (std::uint64_t flow = 0; flow < 100; ++flow) {
        const std::int64_t src = static_cast<std::int64_t>(flow % 32);
        const std::int64_t dst =
            static_cast<std::int64_t>((flow * 7 + 5) % 32);
        if (src == dst)
            continue;
        DcnPath a, b;
        ASSERT_TRUE(topo.route(src, dst, flow, &a));
        ASSERT_TRUE(topo.route(src, dst, flow, &b));
        // Same flow id, same path — bit-for-bit.
        EXPECT_EQ(a.switches, b.switches);
        EXPECT_EQ(a.directed_links, b.directed_links);
        // Structurally valid.
        ASSERT_FALSE(a.switches.empty());
        EXPECT_EQ(a.switches.front(), topo.edgeOf(src));
        EXPECT_EQ(a.switches.back(), topo.edgeOf(dst));
        ASSERT_EQ(a.directed_links.size(), a.switches.size() - 1);
        for (const int dl : a.directed_links) {
            const int link = dl >> 1;
            ASSERT_GE(link, 0);
            ASSERT_LT(static_cast<std::size_t>(link),
                      topo.links().size());
        }
    }
}

TEST(FlowTopology, EcmpSpreadsFlowsAcrossSpines)
{
    const DcnTopology topo = DcnTopology::buildFatTree(32, 8, 200.0);
    // Pick a cross-leaf pair and count distinct middle switches over
    // many flow ids: ECMP must use more than one spine.
    const std::int64_t src = 0;
    std::int64_t dst = -1;
    for (std::int64_t h = 0; h < 32; ++h)
        if (topo.edgeOf(h) != topo.edgeOf(src)) {
            dst = h;
            break;
        }
    ASSERT_GE(dst, 0);
    std::set<int> middles;
    for (std::uint64_t flow = 0; flow < 64; ++flow) {
        DcnPath path;
        ASSERT_TRUE(topo.route(src, dst, flow, &path));
        ASSERT_EQ(path.switches.size(), 3u);
        middles.insert(path.switches[1]);
    }
    EXPECT_GT(middles.size(), 1u);
}

TEST(FlowTopology, KilledSwitchDisappearsFromRoutes)
{
    DcnTopology topo = DcnTopology::buildFatTree(32, 8, 200.0);
    // Find a spine (a switch no host hangs off).
    std::set<int> edges;
    for (std::int64_t h = 0; h < topo.hostCount(); ++h)
        edges.insert(topo.edgeOf(h));
    int spine = -1;
    for (int s = 0; s < topo.switchCount(); ++s)
        if (!edges.count(s)) {
            spine = s;
            break;
        }
    ASSERT_GE(spine, 0);

    topo.setSwitchAlive(spine, false);
    EXPECT_TRUE(topo.routesDirty());
    topo.rebuildRoutes();
    EXPECT_FALSE(topo.switchAlive(spine));
    for (std::uint64_t flow = 0; flow < 200; ++flow) {
        DcnPath path;
        ASSERT_TRUE(topo.route(0, 31, flow, &path));
        for (const int sw : path.switches)
            EXPECT_NE(sw, spine);
    }
    // Killing an edge switch partitions its hosts.
    topo.setSwitchAlive(topo.edgeOf(0), false);
    topo.rebuildRoutes();
    DcnPath path;
    EXPECT_FALSE(topo.route(0, 31, 1, &path));
}

// --- Workloads -------------------------------------------------------

TEST(FlowWorkload, GenerationIsSortedAndDeterministic)
{
    DcnWorkloadSpec spec = workloadByName("websearch");
    spec.flow_count = 2000;
    spec.load = 0.4;
    const auto a = generateFlows(spec, 64, 200.0, 9);
    const auto b = generateFlows(spec, 64, 200.0, 9);
    ASSERT_EQ(a.size(), 2000u);
    ASSERT_EQ(b.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_EQ(a[i].src_host, b[i].src_host);
        EXPECT_EQ(a[i].dst_host, b[i].dst_host);
        EXPECT_EQ(a[i].bytes, b[i].bytes);
        if (i > 0) {
            EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
        }
        EXPECT_NE(a[i].src_host, a[i].dst_host);
        EXPECT_GT(a[i].bytes, 0.0);
    }
    // A different seed gives a different trace.
    const auto c = generateFlows(spec, 64, 200.0, 10);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size() && !any_diff; ++i)
        any_diff = a[i].bytes != c[i].bytes ||
                   a[i].arrival_s != c[i].arrival_s;
    EXPECT_TRUE(any_diff);
}

TEST(FlowWorkload, IncastMixProducesSynchronisedBursts)
{
    DcnWorkloadSpec spec = workloadByName("incast");
    EXPECT_GT(spec.incast_fraction, 0.0);
    spec.flow_count = 5000;
    const auto flows = generateFlows(spec, 64, 200.0, 4);
    ASSERT_EQ(flows.size(), 5000u);
    // A burst is >= incast_degree/2 flows at the same instant aimed
    // at the same destination (the generator emits whole bursts
    // unless truncated by flow_count).
    bool found_burst = false;
    for (std::size_t i = 0; i + 8 < flows.size() && !found_burst;
         ++i) {
        std::size_t j = i;
        while (j < flows.size() &&
               flows[j].arrival_s == flows[i].arrival_s &&
               flows[j].dst_host == flows[i].dst_host)
            ++j;
        found_burst = j - i >= 8;
    }
    EXPECT_TRUE(found_burst);
}

TEST(FlowWorkload, FixedDistMeanMatchesSpec)
{
    DcnWorkloadSpec spec = workloadByName("fixed");
    EXPECT_DOUBLE_EQ(meanFlowBytes(spec), spec.fixed_bytes);
    EXPECT_GT(meanFlowBytes(workloadByName("websearch")), 0.0);
    EXPECT_GT(meanFlowBytes(workloadByName("hadoop")), 0.0);
}

TEST(FlowWorkload, UnknownNameDiesLoudly)
{
    EXPECT_DEATH(workloadByName("netflix"), "unknown DCN workload");
}

// --- Flow simulator --------------------------------------------------

TEST(FlowSim, ConservationViolationDiesLoudly)
{
    // 10 started but only 5 + 1 + 2 accounted for: the engine must
    // abort, never quietly emit statistics.
    EXPECT_DEATH(verifyFlowConservation(10, 5, 1, 2),
                 "flow conservation violated");
    // And the accounting identity passes when it holds.
    verifyFlowConservation(10, 7, 1, 2);
    verifyFlowConservation(0, 0, 0, 0);
}

TEST(FlowSim, CleanRunCompletesEveryFlow)
{
    DcnTopology topo = DcnTopology::buildFatTree(16, 8, 200.0);
    const SwitchProfile profile = testProfile("t", 8);
    DcnWorkloadSpec spec = workloadByName("websearch");
    spec.flow_count = 500;
    spec.load = 0.5;
    const auto flows = generateFlows(spec, 16, 200.0, 2);

    const FlowSimResult r = simulateFlows(topo, profile, flows);
    EXPECT_EQ(r.started, 500);
    EXPECT_EQ(r.completed, 500);
    EXPECT_EQ(r.failed, 0);
    EXPECT_EQ(r.rerouted, 0);
    EXPECT_EQ(r.fault_events, 0);
    EXPECT_GT(r.duration_s, 0.0);
    EXPECT_GT(r.throughput_gbps, 0.0);
    EXPECT_GT(r.fct_avg_s, 0.0);
    EXPECT_GE(r.fct_p99_s, r.fct_p50_s);
    EXPECT_GE(r.fct_p999_s, r.fct_p99_s);
    // A shared fabric can't beat the lone-flow ideal.
    EXPECT_GE(r.slowdown_p50, 0.99);
    EXPECT_GE(r.avg_hops, 1.0);
    EXPECT_LE(r.avg_hops, 3.0);
}

TEST(FlowSim, MetricsAndTraceCoverTheRun)
{
    DcnTopology topo = DcnTopology::buildFatTree(16, 8, 200.0);
    const SwitchProfile profile = testProfile("t", 8);
    DcnWorkloadSpec spec = workloadByName("websearch");
    spec.flow_count = 300;
    const auto flows = generateFlows(spec, 16, 200.0, 3);

    obs::MetricsRegistry metrics;
    obs::TraceEventSink trace;
    FlowSimConfig cfg;
    cfg.metrics = &metrics;
    cfg.trace = &trace;
    const FlowSimResult r = simulateFlows(topo, profile, flows, {}, cfg);

    EXPECT_EQ(metrics.counterValue("flow.started"),
              static_cast<std::uint64_t>(r.started));
    EXPECT_EQ(metrics.counterValue("flow.completed"),
              static_cast<std::uint64_t>(r.completed));
    EXPECT_EQ(metrics.counterValue("flow.failed"), 0u);
    ASSERT_TRUE(metrics.histograms().count("flow.slowdown"));
    EXPECT_EQ(metrics.histograms().at("flow.slowdown").count,
              static_cast<std::uint64_t>(r.completed));
    EXPECT_GE(trace.size(), 1u);
}

TEST(FlowSim, SwitchKillMidRunReroutesSurvivors)
{
    DcnTopology topo = DcnTopology::buildFatTree(32, 8, 200.0);
    ASSERT_EQ(topo.tiers(), 2);
    // Find a spine switch.
    std::set<int> edges;
    for (std::int64_t h = 0; h < topo.hostCount(); ++h)
        edges.insert(topo.edgeOf(h));
    int spine = -1;
    for (int s = 0; s < topo.switchCount(); ++s)
        if (!edges.count(s)) {
            spine = s;
            break;
        }
    ASSERT_GE(spine, 0);

    const SwitchProfile profile = testProfile("t", 8);
    DcnWorkloadSpec spec = workloadByName("websearch");
    spec.flow_count = 3000;
    spec.load = 0.7;
    const auto flows = generateFlows(spec, 32, 200.0, 5);

    fault::DcnFaultSchedule faults;
    faults.killSwitch(flows[flows.size() / 2].arrival_s, spine);

    const FlowSimResult r = simulateFlows(topo, profile, flows, faults);
    EXPECT_EQ(r.fault_events, 1);
    // Flows in flight across the dead spine moved to survivors.
    EXPECT_GT(r.rerouted, 0);
    // The surviving spines keep every flow alive.
    EXPECT_EQ(r.failed, 0);
    EXPECT_EQ(r.completed + r.failed, r.started);
    EXPECT_FALSE(topo.switchAlive(spine));
}

TEST(FlowSim, EdgeSwitchKillFailsStrandedFlows)
{
    DcnTopology topo = DcnTopology::buildFatTree(32, 8, 200.0);
    const int edge = topo.edgeOf(0);
    const SwitchProfile profile = testProfile("t", 8);
    DcnWorkloadSpec spec = workloadByName("websearch");
    spec.flow_count = 3000;
    spec.load = 0.7;
    const auto flows = generateFlows(spec, 32, 200.0, 6);

    fault::DcnFaultSchedule faults;
    faults.killSwitch(flows[flows.size() / 3].arrival_s, edge);

    const FlowSimResult r = simulateFlows(topo, profile, flows, faults);
    // Flows touching the dead leaf's hosts have no path: they fail,
    // and the accounting still balances (the engine panics
    // otherwise).
    EXPECT_GT(r.failed, 0);
    EXPECT_GT(r.completed, 0);
    EXPECT_EQ(r.completed + r.failed, r.started);
}

// --- Degenerate flows ------------------------------------------------

TEST(FlowSim, LoopbackFlowsCompleteWithoutTouchingTheFabric)
{
    // src == dst never leaves the host NIC: zero hops, line-rate
    // transfer, and no share of any switch's capacity.
    DcnTopology topo = DcnTopology::buildFatTree(16, 8, 200.0);
    const SwitchProfile profile = testProfile("t", 8);
    const double bytes = 1e6;
    std::vector<FlowArrival> flows = {{1, 0.0, 3, 3, bytes}};
    const FlowSimResult r = simulateFlows(topo, profile, flows);
    EXPECT_EQ(r.completed, 1);
    EXPECT_EQ(r.failed, 0);
    EXPECT_EQ(r.avg_hops, 0.0);
    const double xfer = bytes / (200.0 * 1e9 / 8.0);
    EXPECT_NEAR(r.fct_avg_s, xfer, 1e-12);
    EXPECT_NEAR(r.slowdown_p50, 1.0, 1e-9);
    EXPECT_EQ(r.completed_bytes, bytes);
}

TEST(FlowSim, ZeroByteFlowsPayOnlyPathLatency)
{
    DcnTopology topo = DcnTopology::buildFatTree(16, 8, 200.0);
    const SwitchProfile profile = testProfile("t", 8);
    std::vector<FlowArrival> flows = {{1, 0.0, 0, 9, 0.0},
                                      {2, 0.0, 1, 2, 0.0}};
    const FlowSimResult r = simulateFlows(topo, profile, flows);
    EXPECT_EQ(r.completed, 2);
    EXPECT_EQ(r.failed, 0);
    // An RPC-style empty flow still crosses the calibrated switches:
    // its FCT is the zero-load path latency, not zero and not NaN.
    EXPECT_GT(r.fct_avg_s, 0.0);
    EXPECT_LT(r.fct_avg_s, 1e-3);
    EXPECT_TRUE(std::isfinite(r.slowdown_p99));
    EXPECT_EQ(r.completed_bytes, 0.0);
}

TEST(FlowSim, MixedDegenerateAndBulkFlowsBalance)
{
    DcnTopology topo = DcnTopology::buildFatTree(16, 8, 200.0);
    const SwitchProfile profile = testProfile("t", 8);
    std::vector<FlowArrival> flows = {
        {1, 0.0, 0, 1, 1e7},   // bulk
        {2, 0.0, 4, 4, 5e5},   // loopback
        {3, 0.0, 2, 11, 0.0},  // zero-byte RPC
        {4, 1e-5, 6, 6, 0.0},  // zero-byte loopback
    };
    const FlowSimResult r = simulateFlows(topo, profile, flows);
    EXPECT_EQ(r.started, 4);
    EXPECT_EQ(r.completed, 4);
    EXPECT_EQ(r.completed + r.failed, r.started);
    EXPECT_EQ(r.completed_bytes, 1e7 + 5e5);
    // fct_max_s covers the slowest flow — the bulk one here.
    EXPECT_GE(r.fct_max_s, 1e7 / (200.0 * 1e9 / 8.0));
    EXPECT_GE(r.fct_max_s, r.fct_p999_s);
}

TEST(FlowSim, NegativeByteSizeDiesLoudly)
{
    DcnTopology topo = DcnTopology::buildFatTree(16, 8, 200.0);
    const SwitchProfile profile = testProfile("t", 8);
    std::vector<FlowArrival> flows = {{1, 0.0, 0, 1, -5.0}};
    EXPECT_DEATH(simulateFlows(topo, profile, flows), "negative size");
}

TEST(FlowSim, FctMaxTracksTheSlowestFlow)
{
    DcnTopology topo = DcnTopology::buildFatTree(16, 8, 200.0);
    const SwitchProfile profile = testProfile("t", 8);
    std::vector<FlowArrival> flows;
    for (int i = 0; i < 8; ++i)
        flows.push_back({static_cast<std::uint64_t>(i + 1), 0.0, i,
                         i + 8, (i + 1) * 1e5});
    const FlowSimResult r = simulateFlows(topo, profile, flows);
    EXPECT_EQ(r.completed, 8);
    EXPECT_GE(r.fct_max_s, r.fct_p50_s);
    // The slowest flow is the largest one; its ideal time lower-bounds
    // the max FCT.
    EXPECT_GE(r.fct_max_s, 8e5 / (200.0 * 1e9 / 8.0));
}

// --- Campaign --------------------------------------------------------

DcnCampaignConfig
smallCampaign()
{
    DcnCampaignConfig cfg;
    cfg.designs = {testProfile("ws-512", 512), testProfile("conv", 8)};
    cfg.hosts = 32;
    cfg.workloads = {workloadByName("websearch")};
    cfg.loads = {0.5};
    cfg.flows_per_cell = 1500;
    cfg.seed = 3;
    return cfg;
}

TEST(FlowCampaign, CsvByteIdenticalAcrossJobs)
{
    const DcnCampaign campaign(smallCampaign());

    std::ostringstream serial, threaded, serial_again;
    campaign.run(nullptr).writeCsv(serial);
    {
        exec::ThreadPool pool(4);
        campaign.run(&pool).writeCsv(threaded);
    }
    campaign.run(nullptr).writeCsv(serial_again);

    // The engine's core contract: same (config, seed) => the same
    // bytes, at any thread count, on every run.
    EXPECT_EQ(serial.str(), threaded.str());
    EXPECT_EQ(serial.str(), serial_again.str());
    EXPECT_NE(serial.str().find("ws-512"), std::string::npos);
    EXPECT_NE(serial.str().find("fct_p99_us"), std::string::npos);
}

TEST(FlowCampaign, SeedChangesTheResults)
{
    DcnCampaignConfig cfg = smallCampaign();
    std::ostringstream a, b;
    DcnCampaign(cfg).run(nullptr).writeCsv(a);
    cfg.seed = 4;
    DcnCampaign(cfg).run(nullptr).writeCsv(b);
    EXPECT_NE(a.str(), b.str());
}

TEST(FlowCampaign, FieldFailuresKillSwitchesMidRun)
{
    DcnCampaignConfig cfg = smallCampaign();
    cfg.designs = {testProfile("conv", 8)};
    // Certain death for every switch during the arrival window.
    cfg.fault_model.node_field_failure = 1.0;
    const DcnResult result = DcnCampaign(cfg).run(nullptr);
    ASSERT_EQ(result.cells.size(), 1u);
    const auto &cell = result.cells[0];
    EXPECT_EQ(cell.sim.fault_events, cell.switches);
    // With the whole fabric eventually dead, late flows fail — but
    // the accounting identity held throughout (no panic).
    EXPECT_GT(cell.sim.failed, 0);
    EXPECT_EQ(cell.sim.completed + cell.sim.failed, cell.sim.started);
}

TEST(FlowCampaign, JsonIsWellFormedEnough)
{
    const DcnResult result = DcnCampaign(smallCampaign()).run(nullptr);
    std::ostringstream os;
    result.writeJson(os);
    const std::string json = os.str();
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_NE(json.find("\"cells\""), std::string::npos);
    EXPECT_NE(json.find("\"fct_p99_s\""), std::string::npos);
}

TEST(FlowCampaign, EmptyAxesDiesLoudly)
{
    DcnCampaignConfig cfg;
    EXPECT_DEATH(DcnCampaign{cfg}, "at least one");
    cfg = smallCampaign();
    cfg.designs[0].radix = 0;
    EXPECT_DEATH(DcnCampaign{cfg}, "calibrated");
}

// --- Telemetry -------------------------------------------------------

FlowSimResult
runWithTelemetry(double window_s, std::uint64_t seed = 7,
                 std::int64_t flow_count = 2000)
{
    DcnTopology topo = DcnTopology::buildFatTree(16, 8, 200.0);
    const SwitchProfile profile = testProfile("t", 8);
    DcnWorkloadSpec spec = workloadByName("websearch");
    spec.flow_count = flow_count;
    spec.load = 0.5;
    const auto flows = generateFlows(spec, 16, 200.0, seed);
    FlowSimConfig cfg;
    cfg.telemetry_window_s = window_s;
    return simulateFlows(topo, profile, flows, {}, cfg);
}

TEST(FlowTelemetry, WindowsReconcileExactlyWithTheResult)
{
    const FlowSimResult r = runWithTelemetry(1e-5);
    ASSERT_NE(r.telemetry, nullptr);
    const FlowTelemetry &t = *r.telemetry;
    ASSERT_FALSE(t.windows.empty());

    // Integer totals reconcile exactly — every started flow lands in
    // exactly one window, ditto completions and failures.
    EXPECT_EQ(t.totalStarted(), r.started);
    EXPECT_EQ(t.totalCompleted(), r.completed);
    EXPECT_EQ(t.totalFailed(), r.failed);
    EXPECT_EQ(r.failed, 0);

    std::int64_t started = 0, completed = 0, failed = 0;
    double bytes = 0.0;
    for (const FlowTelemetry::Window &w : t.windows) {
        started += w.started;
        completed += w.completed;
        failed += w.failed;
        bytes += w.completed_bytes;
        EXPECT_GE(w.in_flight_end, 0);
    }
    EXPECT_EQ(started, r.started);
    EXPECT_EQ(completed, r.completed);
    EXPECT_EQ(failed, r.failed);
    EXPECT_NEAR(bytes, r.completed_bytes,
                1e-9 * std::max(1.0, r.completed_bytes));

    // The window grid covers the whole run: the last completion is
    // inside the recorded span.
    EXPECT_GE(static_cast<double>(t.windows.size()) * t.window_s,
              r.duration_s);

    // Utilization is a fraction of derated capacity.
    for (std::size_t w = 0; w < t.windows.size(); ++w)
        for (std::size_t l = 0; l < t.link_capacity_bps.size(); ++l)
            EXPECT_GE(t.linkUtilization(w, l), 0.0);
}

TEST(FlowTelemetry, FaultedRunAccountsFailedFlowsInWindows)
{
    DcnTopology topo = DcnTopology::buildFatTree(32, 8, 200.0);
    const int edge = topo.edgeOf(0);
    const SwitchProfile profile = testProfile("t", 8);
    DcnWorkloadSpec spec = workloadByName("websearch");
    spec.flow_count = 3000;
    spec.load = 0.7;
    const auto flows = generateFlows(spec, 32, 200.0, 6);

    fault::DcnFaultSchedule faults;
    faults.killSwitch(flows[flows.size() / 3].arrival_s, edge);

    FlowSimConfig cfg;
    cfg.telemetry_window_s = 1e-5;
    const FlowSimResult r = simulateFlows(topo, profile, flows, faults, cfg);
    ASSERT_NE(r.telemetry, nullptr);
    ASSERT_GT(r.failed, 0);
    // Failures reconcile through the same window accounting as
    // completions — a faulted run cannot silently leak flows.
    EXPECT_EQ(r.telemetry->totalStarted(), r.started);
    EXPECT_EQ(r.telemetry->totalCompleted(), r.completed);
    EXPECT_EQ(r.telemetry->totalFailed(), r.failed);
    EXPECT_EQ(r.telemetry->totalCompleted() +
                  r.telemetry->totalFailed(),
              r.telemetry->totalStarted());
}

TEST(FlowTelemetry, ResultsAreBitIdenticalWithTelemetryOnOrOff)
{
    // Watching the run must not change it: every behavioural field
    // compares with EXPECT_EQ, not NEAR.
    const FlowSimResult off = runWithTelemetry(0.0);
    const FlowSimResult on = runWithTelemetry(1e-5);
    EXPECT_EQ(off.telemetry, nullptr);
    ASSERT_NE(on.telemetry, nullptr);

    EXPECT_EQ(off.started, on.started);
    EXPECT_EQ(off.completed, on.completed);
    EXPECT_EQ(off.failed, on.failed);
    EXPECT_EQ(off.rerouted, on.rerouted);
    EXPECT_EQ(off.duration_s, on.duration_s);
    EXPECT_EQ(off.completed_bytes, on.completed_bytes);
    EXPECT_EQ(off.throughput_gbps, on.throughput_gbps);
    EXPECT_EQ(off.fct_avg_s, on.fct_avg_s);
    EXPECT_EQ(off.fct_max_s, on.fct_max_s);
    EXPECT_EQ(off.fct_p50_s, on.fct_p50_s);
    EXPECT_EQ(off.fct_p99_s, on.fct_p99_s);
    EXPECT_EQ(off.fct_p999_s, on.fct_p999_s);
    EXPECT_EQ(off.slowdown_avg, on.slowdown_avg);
    EXPECT_EQ(off.slowdown_p99, on.slowdown_p99);
    EXPECT_EQ(off.avg_hops, on.avg_hops);
}

TEST(FlowTelemetry, ResultsAreBitIdenticalWithFlightRecorderOnOrOff)
{
    // Same contract as the telemetry test, but for the flight
    // recorder: its per-batch SimEpoch marks must observe the run
    // without perturbing a single behavioural field.
    obs::FlightRecorder::resetForTesting();
    const FlowSimResult off = runWithTelemetry(0.0);

    obs::FlightRecorder::enable(256);
    obs::FlightRecorder::attachCurrentThread("flow-test");
    const FlowSimResult on = runWithTelemetry(0.0);
    const std::uint64_t epochs =
        obs::FlightRecorder::kindCount(obs::EventKind::SimEpoch);
    obs::FlightRecorder::detachCurrentThread();
    obs::FlightRecorder::resetForTesting();

    EXPECT_GT(epochs, 0u) << "recorder saw no flow-sim epoch marks";
    EXPECT_EQ(off.started, on.started);
    EXPECT_EQ(off.completed, on.completed);
    EXPECT_EQ(off.failed, on.failed);
    EXPECT_EQ(off.rerouted, on.rerouted);
    EXPECT_EQ(off.duration_s, on.duration_s);
    EXPECT_EQ(off.completed_bytes, on.completed_bytes);
    EXPECT_EQ(off.throughput_gbps, on.throughput_gbps);
    EXPECT_EQ(off.fct_avg_s, on.fct_avg_s);
    EXPECT_EQ(off.fct_max_s, on.fct_max_s);
    EXPECT_EQ(off.fct_p50_s, on.fct_p50_s);
    EXPECT_EQ(off.fct_p99_s, on.fct_p99_s);
    EXPECT_EQ(off.fct_p999_s, on.fct_p999_s);
    EXPECT_EQ(off.slowdown_avg, on.slowdown_avg);
    EXPECT_EQ(off.slowdown_p99, on.slowdown_p99);
    EXPECT_EQ(off.avg_hops, on.avg_hops);
}

TEST(FlowTelemetry, DumpCsvIsWellFormedLongFormat)
{
    const FlowSimResult r = runWithTelemetry(1e-5);
    ASSERT_NE(r.telemetry, nullptr);
    std::ostringstream os;
    r.telemetry->dumpCsv(os);

    std::istringstream in(os.str());
    std::string line;
    bool saw_header = false;
    std::map<std::string, int> kinds;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (line == "record,window,scope,metric,value") {
            saw_header = true;
            continue;
        }
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 4)
            << line;
        kinds[line.substr(0, line.find(','))]++;
    }
    EXPECT_TRUE(saw_header);
    EXPECT_GT(kinds["capacity"], 0);
    EXPECT_GT(kinds["window"], 0);
    EXPECT_GT(kinds["link"], 0);
    EXPECT_GT(kinds["total"], 0);
}

TEST(FlowTelemetry, NonPositiveWindowMeansNoTelemetry)
{
    const FlowSimResult r = runWithTelemetry(0.0);
    EXPECT_EQ(r.telemetry, nullptr);
}

} // namespace
} // namespace wss::flow
