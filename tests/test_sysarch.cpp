/**
 * @file
 * Tests for the system-architecture layer: power delivery, cooling
 * loop, enclosure budgeting, and the Table VII/VIII/IX use cases.
 */

#include <gtest/gtest.h>

#include "sysarch/cooling_loop.hpp"
#include "sysarch/enclosure.hpp"
#include "sysarch/power_delivery.hpp"
#include "sysarch/use_cases.hpp"

namespace wss::sysarch {
namespace {

TEST(PowerDelivery, PaperScaleDeliveryChain)
{
    // Section VIII.A: ~45 kW switch + 5 kW non-ASIC -> 50 kW bank,
    // N+N redundant PSUs at 4 kW, ~50 DC-DC bricks, ~420 VRMs.
    const PowerDeliveryPlan plan = sizePowerDelivery(45000.0, 300.0);
    EXPECT_EQ(plan.psus, 26); // 2 x ceil(50/4); paper rounds to 25
    EXPECT_DOUBLE_EQ(plan.provisioned, 52000.0);
    EXPECT_EQ(plan.dcdc_converters, 45);
    EXPECT_NEAR(plan.vrms, 448, 30); // paper: ~420 with redundancy
    EXPECT_TRUE(plan.fits_under_wafer);
}

TEST(PowerDelivery, BoardAreaScalesWithPower)
{
    const auto small = sizePowerDelivery(10000.0, 300.0);
    const auto large = sizePowerDelivery(60000.0, 300.0);
    EXPECT_LT(small.board_area, large.board_area);
    EXPECT_TRUE(small.fits_under_wafer);
}

TEST(PowerDelivery, SmallWaferCanOverflow)
{
    // 60 kW of converters cannot hide under a 100 mm wafer.
    const auto plan = sizePowerDelivery(60000.0, 100.0);
    EXPECT_FALSE(plan.fits_under_wafer);
}

TEST(CoolingLoop, PaperScaleLayout)
{
    // 12x12 chiplet array -> 36 PCLs, 12 supply channels; 57.6 kW
    // gives 1.6 kW per PCL and a 70-80 C junction at 20 C inlet.
    const CoolingLoopPlan plan = sizeCoolingLoop(57600.0, 12);
    EXPECT_EQ(plan.pcls, 36);
    EXPECT_EQ(plan.supply_channels, 12);
    EXPECT_NEAR(plan.power_per_pcl, 1600.0, 1e-9);
    EXPECT_GE(plan.junction_temperature, 70.0);
    EXPECT_LE(plan.junction_temperature, 80.0);
    EXPECT_TRUE(plan.within_band);
}

TEST(CoolingLoop, HeterogeneousPowerRunsCooler)
{
    const auto hot = sizeCoolingLoop(57600.0, 12);
    const auto cool = sizeCoolingLoop(45000.0, 12);
    EXPECT_LT(cool.junction_temperature, hot.junction_temperature);
    EXPECT_TRUE(cool.within_band);
}

TEST(Enclosure, PaperRackBudgets)
{
    // 8192 x 200G -> 2048 adapters via 4-way splitters -> 19U + 1U
    // management = 20U; 4096 x 200G -> 11U (the 200 mm column).
    const EnclosurePlan big = planEnclosure(8192, 200.0);
    EXPECT_EQ(big.split, 4);
    EXPECT_EQ(big.adapters, 2048);
    EXPECT_EQ(big.rack_units, 20);
    EXPECT_NEAR(big.capacity_density_tbps_ru, 81.9, 0.1);

    const EnclosurePlan mid = planEnclosure(4096, 200.0);
    EXPECT_EQ(mid.rack_units, 11);
    EXPECT_NEAR(mid.capacity_density_tbps_ru, 74.5, 0.1);

    // 2048 x 800G (the GPU configuration): no splitters, still 20U.
    const EnclosurePlan gpu = planEnclosure(2048, 800.0);
    EXPECT_EQ(gpu.split, 1);
    EXPECT_EQ(gpu.rack_units, 20);
}

TEST(Enclosure, ModularCatalogMatchesTableIII)
{
    const auto catalog = modularSwitchCatalog();
    ASSERT_EQ(catalog.size(), 3u);
    // Power per port: 19.4 / 22.5 / 19.1 W (Table III).
    EXPECT_NEAR(catalog[0].powerPerPort(), 19.4, 0.1);
    EXPECT_NEAR(catalog[1].powerPerPort(), 22.5, 0.1);
    EXPECT_NEAR(catalog[2].powerPerPort(), 19.1, 0.1);
    // Capacity densities: 7.2 / 11 / 7.5 Tbps/RU.
    EXPECT_NEAR(catalog[0].capacityDensity(), 7.2, 0.1);
    EXPECT_NEAR(catalog[1].capacityDensity(), 11.0, 0.1);
    EXPECT_NEAR(catalog[2].capacityDensity(), 7.5, 0.3);
}

TEST(UseCases, TableVIISingleSwitchDatacenter)
{
    const auto cmp = singleSwitchDatacenter(8192, 200.0, 20);
    EXPECT_EQ(cmp.waferscale.switches, 1);
    EXPECT_EQ(cmp.waferscale.cables, 8192);
    EXPECT_EQ(cmp.waferscale.worst_case_hops, 1);
    EXPECT_EQ(cmp.waferscale.rack_units, 20);
    EXPECT_NEAR(cmp.waferscale.bisection_tbps, 819.2, 0.1);

    EXPECT_EQ(cmp.conventional.switches, 96);
    EXPECT_EQ(cmp.conventional.cables, 16384);
    EXPECT_EQ(cmp.conventional.worst_case_hops, 3);
    EXPECT_EQ(cmp.conventional.rack_units, 192);
}

TEST(UseCases, TableVIIScalesTo200mm)
{
    const auto cmp = singleSwitchDatacenter(4096, 200.0, 11);
    EXPECT_EQ(cmp.conventional.switches, 48);
    EXPECT_EQ(cmp.conventional.cables, 8192);
    EXPECT_EQ(cmp.conventional.rack_units, 96);
    EXPECT_NEAR(cmp.waferscale.bisection_tbps, 409.6, 0.1);
}

TEST(UseCases, TableVIIISingularGpu)
{
    const auto cmp = singularGpuCluster(2048, 20);
    EXPECT_EQ(cmp.waferscale.endpoints, 2048);
    EXPECT_EQ(cmp.waferscale.switches, 1);
    EXPECT_EQ(cmp.waferscale.cables, 2048);
    EXPECT_NEAR(cmp.waferscale.bisection_tbps, 819.2, 0.1);
    // DGX GH200 constants.
    EXPECT_EQ(cmp.conventional.endpoints, 256);
    EXPECT_EQ(cmp.conventional.switches, 132);
    EXPECT_EQ(cmp.conventional.cables, 2304);
    EXPECT_EQ(cmp.conventional.rack_units, 195);
    EXPECT_NEAR(cmp.conventional.bisection_tbps, 115.2, 0.1);
    // 8x the GPUs of the largest NVSwitch-built singular GPU.
    EXPECT_EQ(cmp.waferscale.endpoints / cmp.conventional.endpoints, 8);
}

TEST(UseCases, TableIXDcn)
{
    const auto cmp = waferscaleDcn(16384, 48, 20);
    EXPECT_EQ(cmp.waferscale.switches, 48);
    EXPECT_EQ(cmp.waferscale.cables, 65536);
    EXPECT_EQ(cmp.waferscale.rack_units, 960);
    EXPECT_EQ(cmp.waferscale.worst_case_hops, 3);
    EXPECT_NEAR(cmp.waferscale.bisection_tbps, 13107.2, 0.1);

    EXPECT_EQ(cmp.conventional.switches, 4608);
    EXPECT_EQ(cmp.conventional.cables, 163840);
    EXPECT_EQ(cmp.conventional.rack_units, 18432);
    EXPECT_EQ(cmp.conventional.worst_case_hops, 5);

    // The paper's claims: ~66% fewer optical links, ~94% less spine
    // rack space.
    const double cable_cut =
        1.0 - static_cast<double>(cmp.waferscale.cables) /
                  cmp.conventional.cables;
    EXPECT_NEAR(cable_cut, 0.6, 0.07);
    const double ru_cut =
        1.0 - static_cast<double>(cmp.waferscale.rack_units) /
                  cmp.conventional.rack_units;
    EXPECT_NEAR(ru_cut, 0.94, 0.01);
}

TEST(UseCases, SavingsAreMillionsForTheDcn)
{
    const auto cmp = waferscaleDcn(16384, 48, 20);
    const CostDelta delta = estimateSavings(cmp);
    EXPECT_GT(delta.optics_usd, 1e8); // hundreds of millions
    EXPECT_GT(delta.colocation_usd, 1e7);
    EXPECT_GT(delta.total(), delta.optics_usd);
}

TEST(UseCases, SavingsScaleWithDeploymentSize)
{
    const auto small = estimateSavings(singleSwitchDatacenter(4096, 200.0, 11));
    const auto large = estimateSavings(singleSwitchDatacenter(8192, 200.0, 20));
    EXPECT_GT(large.total(), small.total());
}


TEST(CoolingLoop, OddGridsRoundUp)
{
    // A 7x7 chiplet array needs ceil(7/2) = 4 PCLs per side.
    const auto plan = sizeCoolingLoop(10000.0, 7);
    EXPECT_EQ(plan.pcls, 16);
    EXPECT_EQ(plan.supply_channels, 4 * 2); // ceil(4/3) = 2 per row
    EXPECT_GT(plan.junction_temperature, 20.0);
}

TEST(CoolingLoop, OverPoweredLoopLeavesTheBand)
{
    const auto plan = sizeCoolingLoop(120000.0, 12);
    EXPECT_FALSE(plan.within_band);
    EXPECT_GT(plan.junction_temperature, 80.0);
}

TEST(Enclosure, SmallSwitchesFitInTwoRackUnits)
{
    const auto plan = planEnclosure(256, 200.0);
    EXPECT_EQ(plan.split, 4);
    EXPECT_EQ(plan.adapters, 64);
    EXPECT_EQ(plan.rack_units, 2); // 1 adapter RU + management
}

TEST(Enclosure, FourHundredGigUsesTwoWaySplitters)
{
    const auto plan = planEnclosure(4096, 400.0);
    EXPECT_EQ(plan.split, 2);
    EXPECT_EQ(plan.adapters, 2048);
    EXPECT_EQ(plan.rack_units, 20);
}

TEST(PowerDelivery, RedundancyIsAlwaysNPlusN)
{
    for (double kw : {5.0, 20.0, 45.0, 60.0}) {
        const auto plan = sizePowerDelivery(kw * 1000.0, 300.0);
        EXPECT_EQ(plan.psus % 2, 0) << kw;
        EXPECT_GE(plan.provisioned, kw * 1000.0);
    }
}

TEST(UseCases, CablesScaleLinearlyWithServers)
{
    const auto small = singleSwitchDatacenter(2048, 200.0, 20);
    const auto large = singleSwitchDatacenter(8192, 200.0, 20);
    EXPECT_EQ(large.waferscale.cables, 4 * small.waferscale.cables);
    EXPECT_EQ(large.conventional.cables,
              4 * small.conventional.cables);
}

} // namespace
} // namespace wss::sysarch
