/**
 * @file
 * Tests for the extension features beyond the paper's core study:
 * manufacturing-yield models, the 3-level Clos builder, and
 * credit-adaptive ECMP routing.
 */

#include <gtest/gtest.h>

#include "power/ssc.hpp"
#include "core/radix_solver.hpp"
#include "sim/load_sweep.hpp"
#include "tech/yield.hpp"
#include "topology/clos.hpp"
#include "topology/clos3.hpp"
#include "topology/properties.hpp"

namespace wss {
namespace {

TEST(Yield, DieYieldShrinksWithArea)
{
    const tech::YieldModel model;
    double prev = 1.0;
    for (double area : {50.0, 200.0, 800.0, 3200.0}) {
        const double y = tech::dieYield(area, model);
        EXPECT_GT(y, 0.0);
        EXPECT_LT(y, prev);
        prev = y;
    }
    EXPECT_DOUBLE_EQ(tech::dieYield(0.0, model), 1.0);
}

TEST(Yield, StapperReducesToPoissonAtLargeAlpha)
{
    tech::YieldModel nearly_poisson;
    nearly_poisson.clustering_alpha = 1e6;
    const double stapper = tech::dieYield(800.0, nearly_poisson);
    const double poisson = std::exp(-0.1 * 800.0 / 100.0);
    EXPECT_NEAR(stapper, poisson, 1e-3);
}

TEST(Yield, MonolithicWaferIsHopelessWithoutRedundancy)
{
    EXPECT_LT(tech::monolithicWaferYield(300.0, 0.0), 0.001);
    // Full coverage makes yield 1 by definition.
    EXPECT_DOUBLE_EQ(tech::monolithicWaferYield(300.0, 1.0), 1.0);
    // Coverage is monotone.
    EXPECT_LT(tech::monolithicWaferYield(300.0, 0.5),
              tech::monolithicWaferYield(300.0, 0.9));
}

TEST(Yield, ChipletAssemblyBeatsMonolithic)
{
    const tech::YieldModel model;
    // The 96-socket flagship: far better than any monolithic option.
    const double chiplet = tech::chipletSystemYield(96, 2, model);
    EXPECT_GT(chiplet, 0.999);
    EXPECT_GT(chiplet, tech::monolithicWaferYield(300.0, 0.99, model));
}

TEST(Yield, SparesHelpMonotonically)
{
    const tech::YieldModel model;
    double prev = 0.0;
    for (int spares : {0, 1, 2, 4, 8}) {
        const double y = tech::chipletSystemYield(96, spares, model);
        EXPECT_GE(y, prev);
        EXPECT_LE(y, 1.0);
        prev = y;
    }
}

TEST(Yield, ZeroSpareMatchesClosedForm)
{
    tech::YieldModel model;
    model.bond_yield = 0.999;
    EXPECT_NEAR(tech::chipletSystemYield(96, 0, model),
                std::pow(0.999, 96), 1e-12);
}

TEST(Yield, SparesBeyondSocketsSaturate)
{
    tech::YieldModel model;
    model.bond_yield = 0.99;
    // spares >= chiplets is a legal (if extravagant) assembly: the
    // binomial tail stays monotone and clamped to 1.
    const double equal = tech::chipletSystemYield(8, 8, model);
    const double more = tech::chipletSystemYield(8, 16, model);
    EXPECT_GT(equal, 0.999999);
    EXPECT_GE(more, equal);
    EXPECT_LE(more, 1.0);
}

TEST(Yield, PerfectBondsAlwaysYieldOne)
{
    tech::YieldModel model;
    model.bond_yield = 1.0;
    for (int spares : {0, 3, 96})
        EXPECT_DOUBLE_EQ(tech::chipletSystemYield(96, spares, model),
                         1.0);
}

TEST(Yield, DieYieldDecreasesTowardPoissonLimit)
{
    // (1 + DA/alpha)^(-alpha) falls monotonically in alpha and
    // converges to the Poisson yield e^(-DA) from above: clustering
    // concentrates defects on fewer dies, which helps yield.
    tech::YieldModel model;
    const double poisson = std::exp(-0.1 * 800.0 / 100.0);
    double prev = 1.0;
    double y = 0.0;
    for (double alpha : {1.0, 2.0, 8.0, 64.0, 1e4, 1e8}) {
        model.clustering_alpha = alpha;
        y = tech::dieYield(800.0, model);
        EXPECT_LT(y, prev);
        EXPECT_GT(y, poisson);
        prev = y;
    }
    EXPECT_NEAR(y, poisson, 1e-6);
}

TEST(Yield, KgdCostFactorIsInverseYield)
{
    const tech::YieldModel model;
    EXPECT_NEAR(tech::kgdCostFactor(800.0, model) *
                    tech::dieYield(800.0, model),
                1.0, 1e-12);
}

TEST(Clos3, StructureAndChipletCount)
{
    const power::SscConfig ssc = power::scaledSsc(8, 200.0);
    // k = 8: pods of 4 leaves x 4 ports; 64 ports = 4 full pods.
    const auto topo = topology::buildThreeLevelClos(64, ssc);
    EXPECT_EQ(topo.validate(), "");
    EXPECT_EQ(topo.totalExternalPorts(), 64);
    EXPECT_EQ(topo.nodeCount(), topology::clos3ChipletCount(64, 8));
    EXPECT_EQ(topo.nodeCount(), 40); // 16 + 16 + 8 = 5N/k
}

TEST(Clos3, WorstCaseHopsAreFive)
{
    const power::SscConfig ssc = power::scaledSsc(8, 200.0);
    const auto topo = topology::buildThreeLevelClos(64, ssc);
    // leaf - agg - spine - agg - leaf.
    EXPECT_EQ(topology::worstCaseHopCount(topo), 5);
}

TEST(Clos3, ScalesBeyondTwoLevelLimit)
{
    const int k = 8;
    // 2-level tops out at k^2/2 = 32 ports; 3-level reaches k^3/4.
    EXPECT_EQ(topology::clos3MaxPorts(k), 128);
    const power::SscConfig ssc = power::scaledSsc(k, 200.0);
    const auto topo = topology::buildThreeLevelClos(128, ssc);
    EXPECT_EQ(topo.validate(), "");
    EXPECT_EQ(topo.totalExternalPorts(), 128);
}

TEST(Clos3, PartialPodsWork)
{
    const power::SscConfig ssc = power::scaledSsc(8, 200.0);
    const auto topo = topology::buildThreeLevelClos(40, ssc); // 2.5 pods
    EXPECT_EQ(topo.validate(), "");
    EXPECT_EQ(topo.totalExternalPorts(), 40);
}

TEST(Clos3, TableIXDcnShape)
{
    // The paper's DCN spine: 48 waferscale 2048 x 800G switches
    // switching 16384 racks x 2 links. Modeling each waferscale
    // switch as one "SSC" of radix 2048 reproduces the 2-level
    // arithmetic: 3 * 32768 / 2048 = 48.
    EXPECT_EQ(topology::closChipletCount(32768, 2048), 48);
}

TEST(Clos3, RejectsOversizedRequests)
{
    const power::SscConfig ssc = power::scaledSsc(8, 200.0);
    EXPECT_DEATH(topology::buildThreeLevelClos(256, ssc), "exceed");
}

TEST(AdaptiveRouting, BeatsObliviousOnPermutationTraffic)
{
    const auto topo = topology::buildFoldedClos(
        {64, power::scaledSsc(16, 200.0), 1});
    sim::SimConfig cfg;
    cfg.warmup = 500;
    cfg.measure = 2500;
    cfg.drain_limit = 6000;
    cfg.seed = 5;

    auto saturation = [&](bool adaptive) {
        sim::NetworkSpec spec;
        spec.vcs = 4;
        spec.buffer_per_port = 16;
        spec.pipeline_delay = 2;
        spec.terminal_link_latency = 2;
        spec.adaptive_routing = adaptive;
        const auto sweep = sim::sweepLoad(
            [&] {
                return std::make_unique<sim::Network>(topo, spec, 11);
            },
            [&](double rate) {
                return std::make_unique<sim::SyntheticWorkload>(
                    sim::transposeTraffic(64), rate, 1);
            },
            {0.3, 0.6, 0.9}, cfg);
        return sweep.saturation_throughput;
    };
    const double oblivious = saturation(false);
    const double adaptive = saturation(true);
    EXPECT_GE(adaptive, oblivious * 0.98); // never meaningfully worse
}

TEST(AdaptiveRouting, MatchesObliviousAtZeroLoad)
{
    const auto topo = topology::buildFoldedClos(
        {64, power::scaledSsc(16, 200.0), 1});
    sim::SimConfig cfg;
    cfg.warmup = 200;
    cfg.measure = 1000;
    cfg.seed = 7;
    auto zero_load = [&](bool adaptive) {
        sim::NetworkSpec spec;
        spec.vcs = 4;
        spec.buffer_per_port = 16;
        spec.pipeline_delay = 2;
        spec.terminal_link_latency = 2;
        spec.adaptive_routing = adaptive;
        sim::Network net(topo, spec, 13);
        sim::SyntheticWorkload workload(sim::uniformTraffic(64), 0.02,
                                        1);
        sim::Simulator sim(net, workload, cfg);
        return sim.run().avg_packet_latency;
    };
    EXPECT_NEAR(zero_load(false), zero_load(true), 1.0);
}


TEST(RoundSubstrate, ShrinksAreaBoundDesigns)
{
    core::DesignSpec spec;
    spec.substrate_side = 300.0;
    spec.wsi = tech::siIf2x();
    spec.external_io = tech::opticalIo();
    spec.ssc = power::tomahawk5(1);
    spec.cooling = tech::unlimitedCooling();
    spec.mapping_restarts = 2;
    spec.area_only = true;
    const auto square = core::RadixSolver(spec).solveMaxPorts();
    spec.round_substrate = true;
    const auto round = core::RadixSolver(spec).solveMaxPorts();
    // pi/4 of the area: 8192 -> one ladder step down.
    EXPECT_LT(round.best.ports, square.best.ports);
    EXPECT_GE(round.best.ports, square.best.ports / 2);
}

TEST(RoundSubstrate, ExternalCapacityScalesByPiOverFour)
{
    const auto ext = tech::opticalIo();
    EXPECT_NEAR(ext.capacityPerDirectionRound(300.0) /
                    ext.capacityPerDirection(300.0),
                3.14159265 / 4.0, 1e-6);
    const auto area = tech::areaIo();
    EXPECT_NEAR(area.capacityPerDirectionRound(300.0) /
                    area.capacityPerDirection(300.0),
                3.14159265 / 4.0, 1e-6);
}

TEST(DegradedFabric, LosingOneUplinkStillDeliversEverything)
{
    // Resilience: remove one uplink from one leaf bundle (a failed
    // inter-chiplet lane); ECMP path diversity keeps the fabric
    // functional, every packet still arrives.
    auto topo = topology::buildFoldedClos(
        {64, power::scaledSsc(16, 200.0), 1});
    topology::LogicalTopology degraded("degraded", topo.lineRate());
    for (const auto &ssc : topo.sscTypes())
        degraded.addSscType(ssc);
    for (const auto &node : topo.nodes())
        degraded.addNode(node.role, node.ssc_type, node.external_ports);
    bool dropped = false;
    for (const auto &link : topo.links()) {
        int mult = link.multiplicity;
        if (!dropped && mult > 1) {
            --mult;
            dropped = true;
        }
        degraded.addLink(link.a, link.b, mult);
    }
    ASSERT_TRUE(dropped);
    EXPECT_EQ(degraded.validate(), "");

    sim::NetworkSpec spec;
    spec.vcs = 4;
    spec.buffer_per_port = 16;
    sim::Network net(degraded, spec, 3);
    sim::SyntheticWorkload workload(sim::uniformTraffic(64), 0.3, 1);
    sim::SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 2000;
    cfg.drain_limit = 30000;
    sim::Simulator sim(net, workload, cfg);
    const auto result = sim.run();
    EXPECT_TRUE(result.stable);
    EXPECT_EQ(result.packets_finished, result.packets_measured);
}

TEST(DegradedFabric, SaturationDegradesGracefully)
{
    // Halving one leaf's uplink bundle costs capacity on paths
    // through that leaf but must not collapse the fabric.
    const auto intact = topology::buildFoldedClos(
        {64, power::scaledSsc(16, 200.0), 1});
    topology::LogicalTopology degraded("degraded", intact.lineRate());
    for (const auto &ssc : intact.sscTypes())
        degraded.addSscType(ssc);
    for (const auto &node : intact.nodes())
        degraded.addNode(node.role, node.ssc_type, node.external_ports);
    bool first = true;
    for (const auto &link : intact.links()) {
        degraded.addLink(link.a, link.b,
                         first ? std::max(1, link.multiplicity / 2)
                               : link.multiplicity);
        first = false;
    }

    auto saturation = [](const topology::LogicalTopology &topo) {
        sim::NetworkSpec spec;
        spec.vcs = 4;
        spec.buffer_per_port = 16;
        sim::SimConfig cfg;
        cfg.warmup = 300;
        cfg.measure = 1500;
        cfg.drain_limit = 4000;
        const auto sweep = sim::sweepLoad(
            [&] { return std::make_unique<sim::Network>(topo, spec, 7); },
            [&](double rate) {
                return std::make_unique<sim::SyntheticWorkload>(
                    sim::uniformTraffic(64), rate, 1);
            },
            {0.5, 0.9}, cfg);
        return sweep.saturation_throughput;
    };
    const double full = saturation(intact);
    const double cut = saturation(degraded);
    EXPECT_LE(cut, full + 0.02);
    EXPECT_GT(cut, full * 0.5); // graceful, not catastrophic
}

} // namespace
} // namespace wss
