/**
 * @file
 * Unit tests for the technology models: process scaling, WSI
 * technologies, external I/O, cooling, link-latency constants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tech/cooling.hpp"
#include "tech/external_io.hpp"
#include "tech/link_latency.hpp"
#include "tech/process_scaling.hpp"
#include "tech/wsi.hpp"

namespace wss::tech {
namespace {

TEST(ProcessScaling, FactorsShrinkWithNode)
{
    const ProcessNode order[] = {
        ProcessNode::N180, ProcessNode::N130, ProcessNode::N90,
        ProcessNode::N65,  ProcessNode::N40,  ProcessNode::N28,
        ProcessNode::N16,  ProcessNode::N10,  ProcessNode::N7,
        ProcessNode::N5,
    };
    for (std::size_t i = 1; i < std::size(order); ++i) {
        EXPECT_GT(switchingEnergyFactor(order[i - 1]),
                  switchingEnergyFactor(order[i]))
            << toString(order[i - 1]) << " vs " << toString(order[i]);
    }
}

TEST(ProcessScaling, FiveNanometerIsUnity)
{
    EXPECT_DOUBLE_EQ(switchingEnergyFactor(ProcessNode::N5), 1.0);
}

TEST(ProcessScaling, ScalePowerRoundTrips)
{
    const Watts p = 240.0;
    const Watts there = scalePower(p, ProcessNode::N16, ProcessNode::N5);
    const Watts back = scalePower(there, ProcessNode::N5,
                                  ProcessNode::N16);
    EXPECT_NEAR(back, p, 1e-9);
    EXPECT_LT(there, p); // shrinking nodes cut power
}

TEST(ProcessScaling, NamesAreStable)
{
    EXPECT_EQ(toString(ProcessNode::N5), "5nm");
    EXPECT_EQ(toString(ProcessNode::N180), "180nm");
}

TEST(Wsi, SiIfBaselineMatchesPaper)
{
    const WsiTechnology t = siIf();
    EXPECT_DOUBLE_EQ(t.totalBandwidthDensity(), 3200.0);
    EXPECT_EQ(t.signal_layers, 4);
    EXPECT_DOUBLE_EQ(t.hop_latency_ns, 1.0);
    EXPECT_DOUBLE_EQ(t.max_substrate_side_mm, 300.0);
}

TEST(Wsi, SiIf2xDoublesDensityAtHigherEnergy)
{
    const WsiTechnology base = siIf();
    const WsiTechnology fast = siIf2x();
    EXPECT_DOUBLE_EQ(fast.totalBandwidthDensity(),
                     2.0 * base.totalBandwidthDensity());
    EXPECT_GT(fast.energy_per_bit, 1.5 * base.energy_per_bit);
}

TEST(Wsi, InfoSowMatchesPaper)
{
    const WsiTechnology t = infoSow();
    EXPECT_DOUBLE_EQ(t.totalBandwidthDensity(), 12800.0);
    EXPECT_DOUBLE_EQ(t.energy_per_bit, 1.5);
}

TEST(Wsi, InterposerIsSizeCapped)
{
    EXPECT_LT(siliconInterposer().max_substrate_side_mm, 100.0);
}

TEST(Wsi, LayerSweepScalesLinearly)
{
    for (int layers : {1, 2, 4, 8, 16}) {
        const WsiTechnology t = siIfWithLayers(layers);
        EXPECT_DOUBLE_EQ(t.totalBandwidthDensity(), layers * 800.0);
        EXPECT_DOUBLE_EQ(t.energy_per_bit, siIf().energy_per_bit);
    }
}

struct ExternalIoCase
{
    const char *name;
    double side;
    double expected_ports_200g;
};

class ExternalIoCapacity
    : public ::testing::TestWithParam<ExternalIoCase>
{};

TEST_P(ExternalIoCapacity, MatchesHandComputedPortBound)
{
    const auto &param = GetParam();
    ExternalIoTech tech = std::string(param.name) == "SerDes"
                              ? serdes()
                          : std::string(param.name) == "Optical"
                              ? opticalIo()
                              : areaIo();
    const double ports =
        tech.capacityPerDirection(param.side) / 200.0;
    EXPECT_NEAR(ports, param.expected_ports_200g, 1.0)
        << param.name << " @ " << param.side << " mm";
}

INSTANTIATE_TEST_SUITE_P(
    PaperOperatingPoints, ExternalIoCapacity,
    ::testing::Values(
        // SerDes: 4*side*512/3/2 / 200 — 512 ports at 300 mm (Fig. 7).
        ExternalIoCase{"SerDes", 300.0, 512.0},
        ExternalIoCase{"SerDes", 200.0, 341.3},
        ExternalIoCase{"SerDes", 100.0, 170.7},
        // Optical: 4*side*3200/2 / 200.
        ExternalIoCase{"Optical", 300.0, 9600.0},
        ExternalIoCase{"Optical", 200.0, 6400.0},
        ExternalIoCase{"Optical", 100.0, 3200.0},
        // Area I/O: side^2*16/2 / 200.
        ExternalIoCase{"AreaIO", 300.0, 3600.0},
        ExternalIoCase{"AreaIO", 200.0, 1600.0},
        ExternalIoCase{"AreaIO", 100.0, 400.0}));

TEST(ExternalIo, PlacementFlags)
{
    EXPECT_TRUE(serdes().usesMeshForEscape());
    EXPECT_TRUE(opticalIo().usesMeshForEscape());
    EXPECT_FALSE(areaIo().usesMeshForEscape());
    EXPECT_EQ(areaIo().io_chiplet_area, 0.0);
}

TEST(ExternalIo, OpticalOutpacesSerdesByShieldingAndLayers)
{
    // 4 layers x no shielding derate vs 1 layer x 1/3: about 18.75x.
    const double ratio = opticalIo().capacityPerDirection(300.0) /
                         serdes().capacityPerDirection(300.0);
    EXPECT_NEAR(ratio, 18.75, 0.01);
}

TEST(Cooling, BudgetsScaleWithArea)
{
    const CoolingSolution water = waterCooling();
    EXPECT_DOUBLE_EQ(water.powerBudget(300.0), 0.5 * 300.0 * 300.0);
    EXPECT_DOUBLE_EQ(water.powerBudget(100.0), 0.5 * 100.0 * 100.0);
}

TEST(Cooling, SolutionsAreOrdered)
{
    EXPECT_LT(airCooling().max_power_density_w_mm2,
              waterCooling().max_power_density_w_mm2);
    EXPECT_LT(waterCooling().max_power_density_w_mm2,
              multiphaseCooling().max_power_density_w_mm2);
    EXPECT_TRUE(std::isinf(
        unlimitedCooling().max_power_density_w_mm2));
    EXPECT_EQ(allCoolingSolutions().size(), 3u);
}

TEST(Cooling, WaterSustainsPaperDensity)
{
    // The paper: water cooling sustains 0.5 W/mm^2, and the
    // heterogeneous 300 mm switch sits just below it.
    EXPECT_DOUBLE_EQ(waterCooling().max_power_density_w_mm2, 0.5);
}

TEST(LinkLatency, TableVOrdering)
{
    EXPECT_LT(link_latency::kOnWaferNs, link_latency::kInRackPcbNs);
    EXPECT_LT(link_latency::kInRackPcbNs, link_latency::kOptical100mNs);
    EXPECT_DOUBLE_EQ(link_latency::kMeshHopNs, 1.0);
}

} // namespace
} // namespace wss::tech
