/**
 * @file
 * Deliberately-dying helper behind the observability smokes (ctest +
 * tools/check.sh).
 *
 * The doomed scenario runs in a fork()ed child with the full
 * observability stack wired up (flight recorder + crash dump + for
 * the stall mode a watchdog); the parent then verifies the child
 * died the *expected* way and — when a dump path was given — left a
 * crash.json behind. The helper itself exits 0 only when the death
 * matched, so ctest never has to reason about WILL_FAIL semantics
 * for signal deaths.
 *
 *   obs_crash_helper --mode panic --crash-dump crash.json
 *       child panic()s mid-"campaign": the logging hook writes the
 *       dump, abort() raises SIGABRT.
 *   obs_crash_helper --mode fatal --crash-dump crash.json
 *       child fatal()s: dump written, exit(1).
 *   obs_crash_helper --mode segv --crash-dump crash.json
 *       child dereferences nullptr: the async-signal-safe SIGSEGV
 *       handler writes the dump and re-raises.
 *   obs_crash_helper --mode stall --watchdog-timeout 0.2
 *       child registers a heartbeat then sleeps: the watchdog
 *       monitor dumps its diagnosis and panic()s naming the culprit.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "obs/crash_dump.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/watchdog.hpp"
#include "util/logging.hpp"

namespace {

using namespace wss;

/// The child's half: set up the stack, then die as asked. Only
/// returns (0) on an unknown mode, which the parent reports as a
/// failure.
int
runDoomed(const std::string &mode, const std::string &crash_path,
          double stall_timeout_s)
{
    obs::FlightRecorder::enable(128);
    obs::FlightRecorder::attachCurrentThread("main");
    if (!crash_path.empty()) {
        obs::CrashDump::install(crash_path);
        obs::CrashDump::setTool("obs_crash_helper " + mode);
        obs::CrashDump::setIdentity(0x0b5c4a54ull);
    }
    // A plausible mid-campaign state for the post-mortem to capture.
    obs::recordEvent(obs::EventKind::JobStart, 1, 0, "doomed-job");
    obs::recordEvent(obs::EventKind::DesignPoint, 0, 2, "rate 0.9");
    obs::recordPhaseEnter("campaign");
    obs::recordPhaseEnter("cell");

    if (mode == "panic")
        panic("obs_crash_helper: deliberate panic");
    if (mode == "fatal")
        fatal("obs_crash_helper: deliberate fatal");
    if (mode == "segv") {
        volatile int *p = nullptr;
        return *p; // SIGSEGV -> CrashDump handler -> re-raise
    }
    if (mode == "stall") {
        obs::Watchdog::enableHeartbeats();
        obs::Watchdog::registerCurrentThread("sleeper");
        obs::Watchdog::setThreadDetail("sleeping instead of working");
        obs::Watchdog::start(stall_timeout_s, false, 0.01);
        // Never beats again: the monitor thread must notice within
        // the (sub-second) timeout and abort the process.
        std::this_thread::sleep_for(std::chrono::seconds(60));
    }
    std::fprintf(stderr, "obs_crash_helper: unknown --mode '%s'\n",
                 mode.c_str());
    return 0;
}

bool
looksLikeJson(const std::string &path)
{
    std::ifstream in(path);
    char first = '\0';
    in >> first;
    return in.good() && first == '{';
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode;
    std::string crash_path;
    double stall_timeout_s = 0.2;
    for (int i = 1; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--mode") == 0)
            mode = argv[i + 1];
        else if (std::strcmp(argv[i], "--crash-dump") == 0)
            crash_path = argv[i + 1];
        else if (std::strcmp(argv[i], "--watchdog-timeout") == 0)
            stall_timeout_s = std::stod(argv[i + 1]);
    }
    if (mode.empty()) {
        std::fprintf(stderr,
                     "usage: obs_crash_helper --mode "
                     "panic|fatal|segv|stall [--crash-dump c.json] "
                     "[--watchdog-timeout 0.2]\n");
        return 2;
    }
    if (!crash_path.empty())
        std::remove(crash_path.c_str());

    const pid_t pid = fork();
    if (pid < 0) {
        std::perror("obs_crash_helper: fork");
        return 2;
    }
    if (pid == 0)
        _exit(runDoomed(mode, crash_path, stall_timeout_s));

    int status = 0;
    if (waitpid(pid, &status, 0) != pid) {
        std::perror("obs_crash_helper: waitpid");
        return 2;
    }

    bool died_right = false;
    if (mode == "fatal")
        died_right = WIFEXITED(status) && WEXITSTATUS(status) == 1;
    else if (mode == "segv")
        died_right =
            WIFSIGNALED(status) && WTERMSIG(status) == SIGSEGV;
    else // panic / stall end in panic() -> abort()
        died_right =
            WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT;
    if (!died_right) {
        std::fprintf(stderr,
                     "obs_crash_helper: child did not die as expected "
                     "for mode '%s' (status 0x%x)\n",
                     mode.c_str(), status);
        return 1;
    }
    if (!crash_path.empty() && !looksLikeJson(crash_path)) {
        std::fprintf(stderr,
                     "obs_crash_helper: expected crash dump '%s' is "
                     "missing or not JSON\n",
                     crash_path.c_str());
        return 1;
    }
    std::printf("obs_crash_helper: mode %s died as expected%s%s\n",
                mode.c_str(),
                crash_path.empty() ? "" : ", crash dump at ",
                crash_path.c_str());
    return 0;
}
