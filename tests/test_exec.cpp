/**
 * @file
 * Tests for the parallel execution engine: thread pool scheduling,
 * per-index seed derivation, sweep determinism across thread
 * counts (incl. bit-identity with the legacy serial sweepLoad),
 * and campaign batching/artifact output.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>

#include "exec/campaign.hpp"
#include "exec/sweep_runner.hpp"
#include "exec/thread_pool.hpp"
#include "power/ssc.hpp"
#include "sim/load_sweep.hpp"
#include "topology/clos.hpp"

namespace wss::exec {
namespace {

TEST(ThreadPool, SubmitReturnsFutureValues)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const std::int64_t n = 10000;
    std::vector<std::atomic<int>> visits(n);
    pool.parallelFor(n, [&](std::int64_t i) { ++visits[i]; });
    for (std::int64_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForWorksOnSingleThreadPool)
{
    ThreadPool pool(1);
    std::atomic<std::int64_t> sum{0};
    pool.parallelFor(100, [&](std::int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ParallelForPropagatesTheFirstException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(50,
                                  [&](std::int64_t i) {
                                      if (i == 17)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, WorkerSlotsAreStableAndDisjoint)
{
    ThreadPool pool(3);
    // The external caller maps to slot size().
    EXPECT_EQ(pool.workerSlot(), 3);
    std::mutex mutex;
    std::set<int> slots;
    pool.parallelFor(64, [&](std::int64_t) {
        const int slot = pool.workerSlot();
        EXPECT_GE(slot, 0);
        EXPECT_LE(slot, 3);
        std::lock_guard<std::mutex> lock(mutex);
        slots.insert(slot);
    });
    EXPECT_FALSE(slots.empty());
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.parallelFor(4, [&](std::int64_t) {
        pool.parallelFor(8, [&](std::int64_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, DefaultThreadsHonoursEnvOverride)
{
    setenv("WSS_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3);
    unsetenv("WSS_JOBS");
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
}

TEST(ThreadPool, RejectsMalformedJobsEnv)
{
    // Anything that is not a whole positive decimal integer must be
    // ignored (with a warning) in favour of hardware concurrency —
    // including trailing garbage that atoi would silently accept.
    unsetenv("WSS_JOBS");
    const int fallback = ThreadPool::defaultThreads();
    for (const char *bad :
         {"0", "-2", "abc", "", "8x", "3.5", " 4", "99999999999999"}) {
        setenv("WSS_JOBS", bad, 1);
        EXPECT_EQ(ThreadPool::defaultThreads(), fallback)
            << "WSS_JOBS='" << bad << "'";
    }
    setenv("WSS_JOBS", "2", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 2);
    unsetenv("WSS_JOBS");
}

TEST(ExecSeed, IndexZeroIsTheBaseSeed)
{
    EXPECT_EQ(deriveSeed(42, 0), 42u);
    EXPECT_EQ(deriveSeed(0, 0), 0u);
}

TEST(ExecSeed, IndicesGiveDistinctStableSeeds)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seeds.insert(deriveSeed(7, i));
    EXPECT_EQ(seeds.size(), 1000u);
    // Stateless: same inputs, same output, regardless of call order.
    EXPECT_EQ(deriveSeed(7, 500), deriveSeed(7, 500));
    EXPECT_NE(deriveSeed(7, 1), deriveSeed(8, 1));
}

/// An 8-port folded Clos small enough for many runs per test.
topology::LogicalTopology
tinyClos()
{
    return topology::buildFoldedClos({8, power::scaledSsc(8, 200.0), 1});
}

sim::NetworkSpec
tinySpec()
{
    sim::NetworkSpec spec;
    spec.vcs = 2;
    spec.buffer_per_port = 8;
    spec.rc_delay_ingress = 2;
    spec.rc_delay_transit = 2;
    spec.pipeline_delay = 2;
    spec.terminal_link_latency = 3;
    spec.internal_link_latency = 1;
    return spec;
}

sim::SimConfig
tinyCfg()
{
    sim::SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 1500;
    cfg.drain_limit = 10000;
    cfg.seed = 9;
    return cfg;
}

SweepJob
tinyJob(const topology::LogicalTopology &topo,
        const sim::NetworkSpec &spec, const std::vector<double> &rates,
        int repetitions = 1)
{
    SweepJob job;
    job.make_network = [&topo, spec](std::uint64_t seed) {
        return std::make_unique<sim::Network>(topo, spec, seed);
    };
    job.make_workload = [](double rate, std::uint64_t) {
        return std::make_unique<sim::SyntheticWorkload>(
            sim::uniformTraffic(8), rate, 1);
    };
    job.rates = rates;
    job.cfg = tinyCfg();
    job.repetitions = repetitions;
    return job;
}

void
expectIdenticalPoints(const std::vector<sim::LoadPoint> &a,
                      const std::vector<sim::LoadPoint> &b,
                      const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Bit-identical, not approximately equal: the parallel path
        // must run the exact serial computation.
        EXPECT_EQ(a[i].offered, b[i].offered) << what << " point " << i;
        EXPECT_EQ(a[i].accepted, b[i].accepted) << what << " point " << i;
        EXPECT_EQ(a[i].avg_latency, b[i].avg_latency)
            << what << " point " << i;
        EXPECT_EQ(a[i].p99_latency, b[i].p99_latency)
            << what << " point " << i;
        EXPECT_EQ(a[i].stable, b[i].stable) << what << " point " << i;
    }
}

TEST(SweepRunner, MatchesSerialSweepLoadAtAnyThreadCount)
{
    const auto topo = tinyClos();
    const auto spec = tinySpec();
    const std::vector<double> rates = {0.05, 0.3, 0.6};
    const auto cfg = tinyCfg();

    // The legacy serial baseline.
    const auto serial = sim::sweepLoad(
        [&] {
            return std::make_unique<sim::Network>(topo, spec, cfg.seed);
        },
        [&](double rate) {
            return std::make_unique<sim::SyntheticWorkload>(
                sim::uniformTraffic(8), rate, 1);
        },
        rates, cfg);

    const SweepRunner runner(tinyJob(topo, spec, rates));

    const auto inline_run = runner.run(nullptr);
    expectIdenticalPoints(serial.points, inline_run.combined.points,
                          "inline");

    ThreadPool one(1);
    const auto one_thread = runner.run(&one);
    expectIdenticalPoints(serial.points, one_thread.combined.points,
                          "1 thread");

    ThreadPool four(4);
    const auto four_threads = runner.run(&four);
    expectIdenticalPoints(serial.points, four_threads.combined.points,
                          "4 threads");

    EXPECT_EQ(serial.zero_load_latency,
              four_threads.combined.zero_load_latency);
    EXPECT_EQ(serial.saturation_throughput,
              four_threads.combined.saturation_throughput);
}

TEST(SweepRunner, RepetitionsAreDeterministicAndDistinct)
{
    const auto topo = tinyClos();
    const auto spec = tinySpec();
    const SweepRunner runner(tinyJob(topo, spec, {0.2, 0.5}, 3));

    ThreadPool pool(4);
    const auto parallel = runner.run(&pool);
    const auto serial = runner.run(nullptr);

    ASSERT_EQ(parallel.reps.size(), 3u);
    for (std::size_t rep = 0; rep < 3; ++rep)
        expectIdenticalPoints(serial.reps[rep].points,
                              parallel.reps[rep].points, "rep");

    // Different repetitions see different seeds, so the curves must
    // actually differ.
    EXPECT_NE(parallel.reps[0].points[0].avg_latency,
              parallel.reps[1].points[0].avg_latency);

    // The combined curve averages the repetitions.
    const double mean_avg = (parallel.reps[0].points[0].avg_latency +
                             parallel.reps[1].points[0].avg_latency +
                             parallel.reps[2].points[0].avg_latency) /
                            3.0;
    EXPECT_NEAR(parallel.combined.points[0].avg_latency, mean_avg,
                1e-12);
}

TEST(SweepRunner, RecordsPerPointTiming)
{
    const auto topo = tinyClos();
    const auto spec = tinySpec();
    const SweepRunner runner(tinyJob(topo, spec, {0.1, 0.4}));
    const auto out = runner.run(nullptr);
    ASSERT_EQ(out.outcomes.size(), 2u);
    for (const auto &outcome : out.outcomes) {
        EXPECT_GT(outcome.seconds, 0.0);
        EXPECT_GT(outcome.result.packets_measured, 0);
    }
    EXPECT_GT(out.wall_seconds, 0.0);
}

TEST(Campaign, BatchesHeterogeneousJobsWithTiming)
{
    const auto topo = tinyClos();
    const auto spec = tinySpec();

    Campaign campaign;
    const int sweep_a =
        campaign.addSweep("uniform", tinyJob(topo, spec, {0.1, 0.4}));
    const int sweep_b =
        campaign.addSweep("uniform-rep2",
                          tinyJob(topo, spec, {0.3}, 2));
    std::atomic<int> task_runs{0};
    const int task =
        campaign.addTask("count", [&task_runs] { ++task_runs; });
    ASSERT_EQ(campaign.jobCount(), 3);

    ThreadPool pool(4);
    const auto result = campaign.run(&pool);
    EXPECT_EQ(result.threads, 4);
    ASSERT_EQ(result.jobs.size(), 3u);
    EXPECT_EQ(task_runs.load(), 1);

    const auto &a = result.jobs[static_cast<std::size_t>(sweep_a)];
    EXPECT_EQ(a.kind, "sweep");
    EXPECT_EQ(a.cells, 2);
    EXPECT_EQ(a.sweep.combined.points.size(), 2u);
    EXPECT_GT(a.seconds, 0.0);
    EXPECT_GT(a.mean_cell_seconds, 0.0);
    EXPECT_GE(a.max_cell_seconds, a.mean_cell_seconds);

    const auto &b = result.jobs[static_cast<std::size_t>(sweep_b)];
    EXPECT_EQ(b.cells, 2); // 1 rate x 2 repetitions
    ASSERT_EQ(b.sweep.reps.size(), 2u);

    const auto &t = result.jobs[static_cast<std::size_t>(task)];
    EXPECT_EQ(t.kind, "task");
    EXPECT_EQ(t.cells, 1);

    EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(Campaign, MatchesDirectSweepRunnerOutput)
{
    const auto topo = tinyClos();
    const auto spec = tinySpec();
    const auto job = tinyJob(topo, spec, {0.1, 0.5});

    const auto direct = SweepRunner(job).run(nullptr);

    Campaign campaign;
    campaign.addSweep("curve", job);
    ThreadPool pool(3);
    const auto batched = campaign.run(&pool);
    expectIdenticalPoints(direct.combined.points,
                          batched.jobs[0].sweep.combined.points,
                          "campaign");
}

TEST(Campaign, WritesCsvAndJsonArtifacts)
{
    const auto topo = tinyClos();
    const auto spec = tinySpec();

    Campaign campaign;
    campaign.addSweep("curve", tinyJob(topo, spec, {0.2}));
    campaign.addTask("solve", [] {});
    const auto result = campaign.run(nullptr);

    std::ostringstream csv;
    result.writeCsv(csv);
    const std::string csv_text = csv.str();
    EXPECT_NE(csv_text.find("# wall_seconds="), std::string::npos);
    EXPECT_NE(csv_text.find("job,kind,repetition,offered"),
              std::string::npos);
    EXPECT_NE(csv_text.find("curve,sweep,0,"), std::string::npos);
    EXPECT_NE(csv_text.find("solve,task,"), std::string::npos);

    std::ostringstream json;
    result.writeJson(json);
    const std::string json_text = json.str();
    EXPECT_NE(json_text.find("\"wall_seconds\":"), std::string::npos);
    EXPECT_NE(json_text.find("\"name\": \"curve\""), std::string::npos);
    EXPECT_NE(json_text.find("\"kind\": \"task\""), std::string::npos);
    EXPECT_NE(json_text.find("\"saturation_throughput\":"),
              std::string::npos);
    // Balanced braces — cheap structural sanity for the hand-rolled
    // emitter.
    EXPECT_EQ(std::count(json_text.begin(), json_text.end(), '{'),
              std::count(json_text.begin(), json_text.end(), '}'));
    EXPECT_EQ(std::count(json_text.begin(), json_text.end(), '['),
              std::count(json_text.begin(), json_text.end(), ']'));
}

} // namespace
} // namespace wss::exec
