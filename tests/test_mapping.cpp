/**
 * @file
 * Unit and property tests for the mapping layer: floorplan geometry,
 * channel-load routing, incremental-update correctness, and the
 * Algorithm 1 pairwise-exchange optimizer.
 */

#include <gtest/gtest.h>

#include "mapping/pairwise_exchange.hpp"
#include "mapping/wafer_mapping.hpp"
#include "power/ssc.hpp"
#include "topology/clos.hpp"
#include "topology/mesh.hpp"

namespace wss::mapping {
namespace {

using topology::LogicalTopology;
using topology::NodeRole;

TEST(Floorplan, CountsWithoutRing)
{
    const WaferFloorplan fp(3, 4, false, 28.28);
    EXPECT_EQ(fp.interiorCount(), 12);
    EXPECT_EQ(fp.ringCount(), 0);
    EXPECT_EQ(fp.siteCount(), 12);
    // Grid edges: 3*3 horizontal + 2*4 vertical.
    EXPECT_EQ(fp.edgeCount(), 17);
}

TEST(Floorplan, CountsWithRing)
{
    const WaferFloorplan fp(3, 4, true, 28.28);
    EXPECT_EQ(fp.ringCount(), 14);
    EXPECT_EQ(fp.siteCount(), 26);
    // Interior 17 + one ring edge per boundary-cell side: 2*4 + 2*3.
    EXPECT_EQ(fp.edgeCount(), 17 + 14);
}

TEST(Floorplan, PaperScaleIsTwelveByTwelve)
{
    // The paper's largest system: a 12x12 array of switching and I/O
    // chiplets = a 10x10 SSC grid plus the ring.
    const WaferFloorplan fp(10, 10, true, 28.28);
    EXPECT_EQ(fp.interiorCount() + fp.ringCount(), 100 + 40);
}

TEST(Floorplan, EdgeTowardIsConsistentWithEdgeBetween)
{
    const WaferFloorplan fp(4, 5, true, 28.28);
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 5; ++c) {
            const int site = fp.interiorSite(r, c);
            if (c + 1 < 5) {
                EXPECT_EQ(fp.edgeToward(r, c, 3),
                          fp.edgeBetween(site, fp.interiorSite(r, c + 1)));
            }
            if (r + 1 < 4) {
                EXPECT_EQ(fp.edgeToward(r, c, 1),
                          fp.edgeBetween(site, fp.interiorSite(r + 1, c)));
            }
        }
    }
}

TEST(Floorplan, RingSitesConnectInwardOnly)
{
    const WaferFloorplan fp(3, 3, true, 28.28);
    for (int site = fp.interiorCount(); site < fp.siteCount(); ++site)
        EXPECT_EQ(fp.edgesOf(site).size(), 1u);
    // Boundary interior cell (0,0) reaches rings upward and leftward.
    EXPECT_GE(fp.ringSiteToward(0, 0, 0), fp.interiorCount());
    EXPECT_GE(fp.ringSiteToward(0, 0, 2), fp.interiorCount());
    EXPECT_EQ(fp.ringSiteToward(1, 1, 0), -1); // interior cell: none
}

/// Two-node topology with one bundle, placed at controlled sites.
LogicalTopology
pairTopology(int multiplicity, int ext_a = 0, int ext_b = 0)
{
    LogicalTopology topo("pair", 200.0);
    const int type = topo.addSscType(power::tomahawk5(1));
    const int a = topo.addNode(NodeRole::Router, type, ext_a);
    const int b = topo.addNode(NodeRole::Router, type, ext_b);
    topo.addLink(a, b, multiplicity);
    return topo;
}

TEST(WaferMapping, AdjacentRouteLoadsOneEdge)
{
    const LogicalTopology topo = pairTopology(4);
    const WaferFloorplan fp(1, 2, false, 28.28);
    WaferMapping wm(topo, fp, false);
    wm.assignIdentity();
    EXPECT_DOUBLE_EQ(wm.maxEdgeLoad(), 4 * 200.0);
    EXPECT_DOUBLE_EQ(wm.totalCrossingBandwidth(), 800.0);
    EXPECT_DOUBLE_EQ(wm.averageLinkHops(), 1.0);
}

TEST(WaferMapping, MultiHopRouteLoadsEveryEdgeOnThePath)
{
    const LogicalTopology topo = pairTopology(1);
    const WaferFloorplan fp(1, 5, false, 28.28);
    WaferMapping wm(topo, fp, false);
    wm.assign({0, 4}); // ends of the row: 4 hops
    EXPECT_DOUBLE_EQ(wm.maxEdgeLoad(), 200.0);
    EXPECT_DOUBLE_EQ(wm.totalCrossingBandwidth(), 4 * 200.0);
    EXPECT_DOUBLE_EQ(wm.averageLinkHops(), 4.0);
}

TEST(WaferMapping, ExternalTrafficSplitsFourWays)
{
    LogicalTopology topo("solo", 200.0);
    const int type = topo.addSscType(power::tomahawk5(1));
    topo.addNode(NodeRole::Leaf, type, 4); // 800 Gbps of ports
    const WaferFloorplan fp(3, 3, true, 28.28);
    WaferMapping wm(topo, fp, true);
    wm.assign({fp.interiorSite(1, 1)}); // center
    // Each direction carries a quarter: 200 Gbps on each of the two
    // edges toward the ring in every direction.
    EXPECT_DOUBLE_EQ(wm.maxEdgeLoad(), 200.0);
    EXPECT_DOUBLE_EQ(wm.totalCrossingBandwidth(), 4 * 2 * 200.0);
}

TEST(WaferMapping, AreaIoSchemesAddNoMeshLoad)
{
    LogicalTopology topo("solo", 200.0);
    const int type = topo.addSscType(power::tomahawk5(1));
    topo.addNode(NodeRole::Leaf, type, 4);
    const WaferFloorplan fp(3, 3, false, 28.28);
    WaferMapping wm(topo, fp, false);
    wm.assign({fp.interiorSite(1, 1)});
    EXPECT_DOUBLE_EQ(wm.maxEdgeLoad(), 0.0);
}

TEST(WaferMapping, SwapIsAnInvolution)
{
    const LogicalTopology topo =
        topology::buildFoldedClos({512, power::tomahawk5(1), 1});
    const WaferFloorplan fp(3, 3, true, 28.28);
    WaferMapping wm(topo, fp, true);
    Rng rng(1);
    wm.assignRandom(rng);
    const auto before = wm.edgeLoads();
    wm.swapNodes(0, 4);
    wm.swapNodes(0, 4);
    const auto after = wm.edgeLoads();
    for (std::size_t e = 0; e < before.size(); ++e)
        EXPECT_NEAR(before[e], after[e], 1e-9) << "edge " << e;
}

/// Property: after arbitrary swap/move sequences, incrementally
/// maintained loads equal a from-scratch rebuild.
TEST(WaferMapping, IncrementalUpdatesMatchRebuildOracle)
{
    const LogicalTopology topo =
        topology::buildFoldedClos({768, power::tomahawk5(1), 1});
    const WaferFloorplan fp(4, 4, true, 28.28); // 16 sites, 9 nodes
    WaferMapping wm(topo, fp, true);
    Rng rng(42);
    wm.assignRandom(rng);

    for (int step = 0; step < 200; ++step) {
        if (rng.nextBool(0.5)) {
            const int a = static_cast<int>(
                rng.nextBelow(topo.nodeCount()));
            const int b = static_cast<int>(
                rng.nextBelow(topo.nodeCount()));
            if (a != b)
                wm.swapNodes(a, b);
        } else {
            // Move to a random empty site, if any.
            const int node = static_cast<int>(
                rng.nextBelow(topo.nodeCount()));
            std::vector<int> empty;
            for (int s = 0; s < fp.interiorCount(); ++s)
                if (wm.nodeAt(s) == -1)
                    empty.push_back(s);
            if (!empty.empty())
                wm.moveNode(node,
                            empty[rng.nextBelow(empty.size())]);
        }
    }

    const auto incremental = wm.edgeLoads();
    wm.rebuildLoads();
    const auto oracle = wm.edgeLoads();
    ASSERT_EQ(incremental.size(), oracle.size());
    for (std::size_t e = 0; e < oracle.size(); ++e)
        EXPECT_NEAR(incremental[e], oracle[e], 1e-6) << "edge " << e;
}

TEST(WaferMapping, EquivalentLeavesShareKeys)
{
    const LogicalTopology topo =
        topology::buildFoldedClos({2048, power::tomahawk5(1), 1});
    const WaferFloorplan fp(5, 5, true, 28.28);
    WaferMapping wm(topo, fp, true);
    // 2048 = 8 spines x 256: every leaf has mult-16 bundles to all 8
    // spines, so all leaves are interchangeable; spines likewise.
    std::size_t leaf_key = 0, spine_key = 0;
    bool first_leaf = true, first_spine = true;
    for (int i = 0; i < topo.nodeCount(); ++i) {
        if (topo.nodes()[i].role == NodeRole::Leaf) {
            if (first_leaf) {
                leaf_key = wm.equivalenceKey(i);
                first_leaf = false;
            }
            EXPECT_EQ(wm.equivalenceKey(i), leaf_key);
        } else {
            if (first_spine) {
                spine_key = wm.equivalenceKey(i);
                first_spine = false;
            }
            EXPECT_EQ(wm.equivalenceKey(i), spine_key);
        }
    }
    EXPECT_NE(leaf_key, spine_key);
}

TEST(WaferMapping, RejectsOversizedTopology)
{
    const LogicalTopology topo =
        topology::buildFoldedClos({2048, power::tomahawk5(1), 1});
    const WaferFloorplan fp(3, 3, true, 28.28); // 9 < 24 nodes
    EXPECT_DEATH(WaferMapping(topo, fp, true), "interior sites");
}

TEST(PairwiseExchange, NeverWorsensTheObjective)
{
    const LogicalTopology topo =
        topology::buildFoldedClos({1024, power::tomahawk5(1), 1});
    const WaferFloorplan fp(4, 4, true, 28.28);
    WaferMapping wm(topo, fp, true);
    Rng rng(7);
    for (int trial = 0; trial < 5; ++trial) {
        wm.assignRandom(rng);
        const double before = wm.maxEdgeLoad();
        const double after = optimizePairwiseExchange(wm);
        EXPECT_LE(after, before + 1e-9);
        EXPECT_NEAR(after, wm.maxEdgeLoad(), 1e-9);
    }
}

TEST(PairwiseExchange, ImprovesRandomMappings)
{
    // Fig. 5's direction: the heuristic beats random placement. (The
    // paper reports ~147% better worst-case per-port bandwidth; our
    // four-way external-escape model softens random placements, so
    // the measured gap is smaller — see EXPERIMENTS.md.)
    const LogicalTopology topo =
        topology::buildFoldedClos({2048, power::tomahawk5(1), 1});
    const WaferFloorplan fp(5, 5, true, 28.28);
    Rng rng(11);
    const auto result = searchBestMapping(topo, fp, true, rng, 4);
    EXPECT_LT(result.max_edge_load,
              result.initial_max_edge_load * 0.85);
}

TEST(PairwiseExchange, ImprovesAtPaperScaleToo)
{
    const LogicalTopology topo =
        topology::buildFoldedClos({8192, power::tomahawk5(1), 1});
    const WaferFloorplan fp(10, 10, true, 28.28);
    Rng rng(11);
    const auto result = searchBestMapping(topo, fp, true, rng, 3);
    EXPECT_LT(result.max_edge_load,
              result.initial_max_edge_load * 0.92);
}

TEST(PairwiseExchange, ReturnsAValidAssignment)
{
    const LogicalTopology topo =
        topology::buildFoldedClos({512, power::tomahawk5(1), 1});
    const WaferFloorplan fp(3, 3, true, 28.28);
    Rng rng(3);
    const auto result = searchBestMapping(topo, fp, true, rng, 2);
    ASSERT_EQ(result.assignment.size(),
              static_cast<std::size_t>(topo.nodeCount()));
    std::vector<bool> used(fp.interiorCount(), false);
    for (int site : result.assignment) {
        ASSERT_GE(site, 0);
        ASSERT_LT(site, fp.interiorCount());
        EXPECT_FALSE(used[site]);
        used[site] = true;
    }
    // Replaying the assignment reproduces the reported objective.
    WaferMapping wm(topo, fp, true);
    wm.assign(result.assignment);
    EXPECT_NEAR(wm.maxEdgeLoad(), result.max_edge_load, 1e-9);
    EXPECT_NEAR(wm.totalCrossingBandwidth(),
                result.total_crossing_bandwidth, 1e-6);
}

TEST(PairwiseExchange, MeshIdentityIsAlreadyOptimal)
{
    // A mesh topology placed identically onto the grid has every
    // logical link on its own physical edge; the optimizer cannot
    // beat bundle-width load.
    const LogicalTopology topo =
        topology::buildMesh(3, 3, power::tomahawk5(1));
    const WaferFloorplan fp(3, 3, false, 28.28);
    WaferMapping wm(topo, fp, false);
    wm.assignIdentity();
    EXPECT_DOUBLE_EQ(wm.maxEdgeLoad(), 32 * 200.0);
    const double optimized = optimizePairwiseExchange(wm);
    EXPECT_DOUBLE_EQ(optimized, 32 * 200.0);
}

} // namespace
} // namespace wss::mapping
