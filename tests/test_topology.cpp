/**
 * @file
 * Unit tests for the topology layer: LogicalTopology invariants and
 * the Clos / mesh / butterfly / flattened-butterfly / dragonfly
 * builders.
 */

#include <gtest/gtest.h>

#include "power/ssc.hpp"
#include "topology/butterfly.hpp"
#include "topology/clos.hpp"
#include "topology/dragonfly.hpp"
#include "topology/flattened_butterfly.hpp"
#include "topology/logical_topology.hpp"
#include "topology/mesh.hpp"

namespace wss::topology {
namespace {

power::SscConfig
th5()
{
    return power::tomahawk5(1);
}

TEST(LogicalTopology, ValidatesPortBudget)
{
    LogicalTopology topo("t", 200.0);
    const int type = topo.addSscType(power::scaledSsc(4, 200.0));
    const int a = topo.addNode(NodeRole::Router, type, 2);
    const int b = topo.addNode(NodeRole::Router, type, 0);
    topo.addLink(a, b, 2);
    EXPECT_EQ(topo.validate(), "");
    topo.addLink(a, b, 1); // now a uses 5 > 4 ports
    EXPECT_NE(topo.validate(), "");
}

TEST(LogicalTopology, RejectsSelfLinks)
{
    LogicalTopology topo("t", 200.0);
    const int type = topo.addSscType(power::scaledSsc(4, 200.0));
    const int a = topo.addNode(NodeRole::Router, type, 0);
    EXPECT_DEATH(topo.addLink(a, a, 1), "self-link");
}

TEST(LogicalTopology, RejectsLineRateMismatch)
{
    LogicalTopology topo("t", 200.0);
    const int type = topo.addSscType(power::scaledSsc(4, 400.0));
    topo.addNode(NodeRole::Router, type, 0);
    EXPECT_NE(topo.validate(), "");
}

TEST(LogicalTopology, AggregatesAreConsistent)
{
    LogicalTopology topo("t", 200.0);
    const int type = topo.addSscType(power::scaledSsc(8, 200.0));
    const int a = topo.addNode(NodeRole::Leaf, type, 3);
    const int b = topo.addNode(NodeRole::Spine, type, 1);
    topo.addLink(a, b, 2);
    EXPECT_EQ(topo.totalExternalPorts(), 4);
    EXPECT_EQ(topo.portsUsed(a), 5);
    EXPECT_EQ(topo.portsUsed(b), 3);
    EXPECT_DOUBLE_EQ(topo.totalInternalLinkBandwidth(), 400.0);
    EXPECT_DOUBLE_EQ(topo.totalSscArea(),
                     2.0 * power::scaledSsc(8, 200.0).area);
}

class ClosSizes : public ::testing::TestWithParam<std::int64_t>
{};

TEST_P(ClosSizes, StructureMatchesPaperArithmetic)
{
    const std::int64_t ports = GetParam();
    const LogicalTopology topo = buildFoldedClos({ports, th5(), 1});
    EXPECT_EQ(topo.validate(), "");
    EXPECT_EQ(topo.totalExternalPorts(), ports);
    // 2N/k leaves + ceil(N/k) spines = 3N/k when k | N (Table VI).
    EXPECT_EQ(topo.nodeCount(), closChipletCount(ports, 256));

    int leaves = 0, spines = 0;
    for (const auto &node : topo.nodes()) {
        if (node.role == NodeRole::Leaf) {
            ++leaves;
            EXPECT_EQ(node.external_ports, 128);
        } else {
            ++spines;
            EXPECT_EQ(node.external_ports, 0);
        }
    }
    EXPECT_EQ(leaves, 2 * ports / 256);
    EXPECT_EQ(spines, (ports + 255) / 256);
}

INSTANTIATE_TEST_SUITE_P(PaperLadder, ClosSizes,
                         ::testing::Values(128, 256, 512, 1024, 2048,
                                           4096, 8192));

TEST(Clos, PaperScaleHasNinetySixChiplets)
{
    // "a 2-level Clos network with 96 radix-256 SSCs, forming an
    // overall radix of 8192".
    EXPECT_EQ(closChipletCount(8192, 256), 96);
    EXPECT_EQ(closChipletCount(2048, 256), 24);
}

TEST(Clos, UplinksAreBalancedAcrossSpines)
{
    const LogicalTopology topo = buildFoldedClos({2048, th5(), 1});
    std::vector<int> spine_down(topo.nodeCount(), 0);
    for (const auto &link : topo.links()) {
        // Builder emits (leaf, spine) pairs.
        spine_down[link.b] += link.multiplicity;
    }
    int min_down = 1 << 30, max_down = 0;
    for (int i = 0; i < topo.nodeCount(); ++i) {
        if (topo.nodes()[i].role == NodeRole::Spine) {
            min_down = std::min(min_down, spine_down[i]);
            max_down = std::max(max_down, spine_down[i]);
        }
    }
    EXPECT_EQ(min_down, max_down); // 2048 = 8 x 256: exactly even
    EXPECT_EQ(max_down, 256);
}

TEST(Clos, RejectsNonMultiplePortCounts)
{
    EXPECT_DEATH(buildFoldedClos({2000, th5(), 1}), "multiple");
}

TEST(Clos, HeterogeneousSplitPreservesRadixAndSpines)
{
    const LogicalTopology homo = buildFoldedClos({2048, th5(), 1});
    const LogicalTopology hetero = buildFoldedClos({2048, th5(), 4});
    EXPECT_EQ(hetero.validate(), "");
    EXPECT_EQ(hetero.totalExternalPorts(), homo.totalExternalPorts());

    int homo_spines = 0, hetero_spines = 0, hetero_leaves = 0;
    for (const auto &n : homo.nodes())
        homo_spines += n.role == NodeRole::Spine;
    for (const auto &n : hetero.nodes()) {
        hetero_spines += n.role == NodeRole::Spine;
        hetero_leaves += n.role == NodeRole::Leaf;
    }
    EXPECT_EQ(hetero_spines, homo_spines);
    EXPECT_EQ(hetero_leaves, 4 * 2 * 2048 / 256);

    // The whole point: smaller leaf dies cut total core power.
    EXPECT_LT(hetero.totalSscCorePower(), homo.totalSscCorePower());
}

TEST(Clos, HeterogeneousSavesPaperScalePower)
{
    // Section V.B: ~30% at the 8192-port scale (core power only here;
    // the solver adds I/O power on top).
    const LogicalTopology homo = buildFoldedClos({8192, th5(), 1});
    const LogicalTopology hetero = buildFoldedClos({8192, th5(), 4});
    const double saving = 1.0 - hetero.totalSscCorePower() /
                                    homo.totalSscCorePower();
    EXPECT_NEAR(saving, 0.50, 0.01); // 64x400 -> (256x25 + spines)
}

TEST(Clos, DeradixedSscKeepsAreaAndCutsPower)
{
    const power::SscConfig dr = deradixedSsc(th5(), 2);
    EXPECT_EQ(dr.radix, 128);
    EXPECT_DOUBLE_EQ(dr.area, 800.0);
    EXPECT_NEAR(dr.core_power, 100.0, 1e-9);
    EXPECT_DEATH(deradixedSsc(th5(), 3), "divide");
}

TEST(Mesh, StructureAndPortCount)
{
    const LogicalTopology topo = buildMesh(3, 4, th5());
    EXPECT_EQ(topo.validate(), "");
    EXPECT_EQ(topo.nodeCount(), 12);
    EXPECT_EQ(topo.totalExternalPorts(), meshPortCount(3, 4, 256));
    EXPECT_EQ(topo.totalExternalPorts(), 12 * 128);
    // Edges: horizontal 3*3 + vertical 2*4 = 17 bundles of width 32.
    EXPECT_EQ(topo.links().size(), 17u);
    for (const auto &link : topo.links())
        EXPECT_EQ(link.multiplicity, 32);
}

TEST(Mesh, SingleNodeHasNoLinks)
{
    const LogicalTopology topo = buildMesh(1, 1, th5());
    EXPECT_EQ(topo.links().size(), 0u);
    EXPECT_EQ(topo.totalExternalPorts(), 128);
}

TEST(Butterfly, OversubscribedLeafSpine)
{
    const std::int64_t ports = 5 * 256 / 8 * 16; // 16 leaves
    const LogicalTopology topo = buildButterfly(ports, th5());
    EXPECT_EQ(topo.validate(), "");
    EXPECT_EQ(topo.totalExternalPorts(), ports);
    int leaves = 0, spines = 0;
    for (const auto &n : topo.nodes()) {
        leaves += n.role == NodeRole::Leaf;
        spines += n.role == NodeRole::Spine;
    }
    EXPECT_EQ(leaves, 16);
    // 16 leaves x 96 uplinks / 256 = 6 spines.
    EXPECT_EQ(spines, 6);
    EXPECT_EQ(topo.nodeCount(), butterflyChipletCount(ports, 256));
}

TEST(Butterfly, UsesFewerChipletsPerPortThanClos)
{
    const std::int64_t ports = 7680;
    EXPECT_LT(butterflyChipletCount(ports, 256),
              closChipletCount(ports, 256));
}

class FlattenedButterflySizes : public ::testing::TestWithParam<int>
{};

TEST_P(FlattenedButterflySizes, AllToAllRowsAndColumns)
{
    const int m = GetParam();
    const LogicalTopology topo = buildFlattenedButterfly(m, th5());
    EXPECT_EQ(topo.validate(), "");
    EXPECT_EQ(topo.nodeCount(), m * m);
    EXPECT_EQ(topo.totalExternalPorts(),
              flattenedButterflyPortCount(m, 256));
    // Bundles: per row C(m,2), times m rows, times 2 dimensions.
    EXPECT_EQ(topo.links().size(),
              static_cast<std::size_t>(2 * m * m * (m - 1) / 2));
}

INSTANTIATE_TEST_SUITE_P(Sides, FlattenedButterflySizes,
                         ::testing::Values(2, 3, 5, 9));

TEST(FlattenedButterfly, FabricDominatesRadix)
{
    // Direct all-to-all wiring leaves fewer externals than mesh.
    EXPECT_LT(flattenedButterflyPortCount(9, 256) / (9 * 9),
              meshPortCount(9, 9, 256) / (9 * 9));
}

class DragonflySizes : public ::testing::TestWithParam<int>
{};

TEST_P(DragonflySizes, GroupsCliquesAndGlobals)
{
    const int groups = GetParam();
    const LogicalTopology topo = buildDragonfly(groups, th5());
    EXPECT_EQ(topo.validate(), "");
    EXPECT_EQ(topo.nodeCount(), groups * kDragonflyGroupSize);
    EXPECT_EQ(topo.totalExternalPorts(),
              dragonflyPortCount(groups, 256));
    for (const auto &node : topo.nodes())
        EXPECT_EQ(node.external_ports, 64);
}

INSTANTIATE_TEST_SUITE_P(Groups, DragonflySizes,
                         ::testing::Values(2, 3, 5, 8, 13));

TEST(Dragonfly, GlobalBudgetCapsGroupCount)
{
    // 8 routers x 80 global wires; with uniform pair width >= 1 the
    // group count is bounded by 641.
    EXPECT_DEATH(buildDragonfly(1000, th5()), "global-link budget");
}

} // namespace
} // namespace wss::topology
