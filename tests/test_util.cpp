/**
 * @file
 * Unit tests for the util layer: Rng, Table, StatsAccumulator,
 * QuantileSampler, unit conversions.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "util/logging.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/stats_accumulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace wss {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a() == b();
    EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsNotDegenerate)
{
    Rng rng(0);
    std::uint64_t all_or = 0;
    for (int i = 0; i < 16; ++i)
        all_or |= rng();
    EXPECT_NE(all_or, 0u);
}

TEST(Rng, NextBelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Rng rng(9);
    bool seen[7] = {};
    for (int i = 0; i < 500; ++i)
        seen[rng.nextBelow(7)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, NextInRangeInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRateIsCalibrated)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(5);
    Rng b = a.split();
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a() == b();
    EXPECT_LT(equal, 3);
}

TEST(Rng, WorksWithStdShuffle)
{
    Rng rng(23);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::shuffle(v.begin(), v.end(), rng);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Table, RendersAlignedGrid)
{
    Table t("demo", {"a", "longer"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("| a"), std::string::npos);
    EXPECT_NE(out.find("| longer"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 1u);
}

TEST(Table, RejectsMismatchedRow)
{
    Table t("demo", {"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeaders)
{
    EXPECT_THROW(Table("x", {}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(12345LL), "12345");
}

TEST(Table, CsvQuotesSpecialCharacters)
{
    Table t("demo", {"name", "value"});
    t.addRow({"a,b", "say \"hi\""});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
    EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundTripsTopologyLabels)
{
    // Resilience artifacts carry "clos(3,64)"-style labels: the
    // embedded comma must force quoting while plain fields stay
    // unquoted, so the row still splits into the right columns.
    Table t("demo", {"topology", "survival"});
    t.addRow({"clos(3,64)", "0.9981"});
    t.addRow({"mesh-8x8", "1.0000"});
    std::ostringstream os;
    t.printCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"clos(3,64)\",0.9981"), std::string::npos);
    EXPECT_NE(out.find("mesh-8x8,1.0000"), std::string::npos);
    EXPECT_EQ(out.find("\"mesh-8x8\""), std::string::npos);
}

TEST(StatsAccumulator, MeanMinMax)
{
    StatsAccumulator acc;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        acc.add(v);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 4.0);
    EXPECT_EQ(acc.count(), 4u);
    EXPECT_NEAR(acc.variance(), 1.25, 1e-12);
}

TEST(StatsAccumulator, EmptyIsSafe)
{
    StatsAccumulator acc;
    EXPECT_TRUE(acc.empty());
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(StatsAccumulator, MergeMatchesSingleStream)
{
    StatsAccumulator all, left, right;
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble() * 10.0;
        all.add(v);
        (i % 2 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_EQ(left.count(), all.count());
}

TEST(StatsAccumulator, MergeWithEmptySides)
{
    StatsAccumulator a, b;
    a.add(5.0);
    a.merge(b); // empty rhs
    EXPECT_EQ(a.count(), 1u);
    b.merge(a); // empty lhs
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(QuantileSampler, ExactQuantiles)
{
    QuantileSampler q;
    for (int i = 1; i <= 100; ++i)
        q.add(i);
    EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
    EXPECT_NEAR(q.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(q.quantile(0.99), 99.0, 1.0);
}

// "No samples" must be distinguishable from a measured zero: the
// documented contract is NaN, and callers that serialize pick their
// own sentinel behind an empty() check.
TEST(QuantileSampler, EmptyReturnsNan)
{
    QuantileSampler q;
    EXPECT_TRUE(std::isnan(q.quantile(0.0)));
    EXPECT_TRUE(std::isnan(q.quantile(0.5)));
    EXPECT_TRUE(std::isnan(q.quantile(1.0)));
    // Adding one sample ends the NaN regime.
    q.add(7.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 7.0);
}

TEST(QuantileSampler, MergeMatchesSingleStream)
{
    QuantileSampler all, left, right;
    for (int i = 1; i <= 200; ++i) {
        all.add(i);
        (i % 3 == 0 ? left : right).add(i);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(left.quantile(q), all.quantile(q)) << q;
}

TEST(QuantileSampler, MergeWithEmptySides)
{
    QuantileSampler a, b;
    a.add(3.0);
    a.merge(b); // empty rhs
    EXPECT_EQ(a.count(), 1u);
    b.merge(a); // empty lhs
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.quantile(0.5), 3.0);
}

TEST(QuantileSampler, MergeAfterSortStaysCorrect)
{
    QuantileSampler a, b;
    a.add(10.0);
    a.add(2.0);
    // quantile() sorts lazily; a merge after a sort must still give
    // exact quantiles over the union.
    EXPECT_DOUBLE_EQ(a.quantile(1.0), 10.0);
    b.add(30.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.quantile(1.0), 30.0);
    EXPECT_DOUBLE_EQ(a.quantile(0.0), 2.0);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(units::tbps(1.6), 1600.0);
    EXPECT_DOUBLE_EQ(units::kilowatts(2.5), 2500.0);
    EXPECT_DOUBLE_EQ(units::toKilowatts(500.0), 0.5);
    EXPECT_DOUBLE_EQ(units::toTbps(51200.0), 51.2);
}

TEST(Units, LinkPowerMatchesHandCalc)
{
    // 51.2 Tbps at 2 pJ/b is the TH-5 I/O budget: ~102.4 W.
    EXPECT_NEAR(units::linkPower(51200.0, 2.0), 102.4, 1e-9);
}

TEST(Logging, WarnOnceFiresExactlyOnceAcrossThreads)
{
    std::atomic<bool> fired{false};
    std::atomic<int> emitted{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < 100; ++i)
                if (warnOnce(fired, "warn-once stress (expected once)"))
                    ++emitted;
        });
    for (auto &thread : threads)
        thread.join();
    // Exactly one of the 800 racing calls wins the exchange.
    EXPECT_EQ(emitted.load(), 1);
    EXPECT_TRUE(fired.load());

    // The macro flavour: one message per call site, however often the
    // site executes.
    for (int i = 0; i < 3; ++i)
        WSS_WARN_ONCE("macro warn-once (expected once)");
}

TEST(ParsePositiveInt, AcceptsPlainPositiveDecimals)
{
    EXPECT_EQ(util::parsePositiveInt("1", "--x"), 1);
    EXPECT_EQ(util::parsePositiveInt("64", "--x"), 64);
    EXPECT_EQ(util::parsePositiveInt("4096", "--x", 4096), 4096);
    EXPECT_EQ(util::parsePositiveInt("007", "--x"), 7);
}

TEST(ParsePositiveInt, RejectsEverythingElseLoudly)
{
    // The WSS_JOBS contract, but fatal: an explicit CLI value that
    // does not parse must abort, not silently run with a default.
    EXPECT_DEATH(util::parsePositiveInt("0", "--seed"),
                 "--seed='0' is not a positive integer");
    EXPECT_DEATH(util::parsePositiveInt("-3", "--seed"), "--seed");
    EXPECT_DEATH(util::parsePositiveInt("8x", "--ranks"),
                 "--ranks='8x'");
    EXPECT_DEATH(util::parsePositiveInt("", "--ranks"), "--ranks");
    EXPECT_DEATH(util::parsePositiveInt(" 4", "--x"), "--x");
    EXPECT_DEATH(util::parsePositiveInt("+4", "--x"), "--x");
    EXPECT_DEATH(util::parsePositiveInt("4.5", "--x"), "--x");
    EXPECT_DEATH(util::parsePositiveInt("4097", "--jobs", 4096),
                 "--jobs");
    EXPECT_DEATH(util::parsePositiveInt("99999999999999999999", "--x"),
                 "--x");
}

} // namespace
} // namespace wss
