/**
 * @file
 * Tests for the design-space core: buffer sizing, the radix solver's
 * constraint logic, and the paper's headline anchors (Figs. 6, 7, 9,
 * 16, 17, 18, 28). These are the regression tests that pin the
 * reproduction to the paper's results.
 */

#include <gtest/gtest.h>

#include "core/buffer_sizing.hpp"
#include "core/physical_clos.hpp"
#include "core/radix_solver.hpp"
#include "power/link_power.hpp"
#include "tech/link_latency.hpp"
#include "topology/clos.hpp"

namespace wss::core {
namespace {

DesignSpec
baseSpec(double side, bool overclocked)
{
    DesignSpec spec;
    spec.substrate_side = side;
    spec.wsi = overclocked ? tech::siIf2x() : tech::siIf();
    spec.external_io = tech::opticalIo();
    spec.ssc = power::tomahawk5(1);
    spec.cooling = tech::unlimitedCooling();
    spec.mapping_restarts = 2;
    spec.seed = 1;
    return spec;
}

TEST(BufferSizing, FormulaMatchesHandCalc)
{
    // B = RTT x BW / sqrt(n): 200 ns x 200 Gbps / sqrt(4) = 20 kbit.
    EXPECT_NEAR(bufferSizeBits(200.0, 200.0, 4), 20000.0, 1e-9);
    EXPECT_EQ(bufferSizeFlits(200.0, 200.0, 4, 4000), 5);
    EXPECT_EQ(bufferSizeFlits(0.0, 200.0, 4, 4000), 1); // floor of 1
}

TEST(BufferSizing, OnWaferLinksNeedFarLessBuffering)
{
    // Table V: on-wafer 15 ns vs 350 ns optical: ~23x less buffer.
    const double wafer =
        bufferSizeBits(2 * tech::link_latency::kOnWaferNs, 200.0, 16);
    const double optical = bufferSizeBits(
        2 * tech::link_latency::kOptical100mNs, 200.0, 16);
    EXPECT_NEAR(optical / wafer, 350.0 / 15.0, 1e-9);
}

TEST(BufferSizing, RejectsBadArguments)
{
    EXPECT_DEATH(bufferSizeBits(-1.0, 200.0, 4), "non-negative");
    EXPECT_DEATH(bufferSizeBits(1.0, 200.0, 0), "flow count");
    EXPECT_DEATH(bufferSizeFlits(1.0, 200.0, 1, 0), "flit size");
}

TEST(RadixSolver, CandidateLaddersAreSortedAndUnique)
{
    for (TopologyKind kind :
         {TopologyKind::Clos, TopologyKind::Mesh, TopologyKind::Butterfly,
          TopologyKind::FlattenedButterfly, TopologyKind::Dragonfly}) {
        DesignSpec spec = baseSpec(300.0, false);
        spec.topology = kind;
        const auto ports = RadixSolver(spec).candidatePorts();
        ASSERT_FALSE(ports.empty()) << toString(kind);
        for (std::size_t i = 1; i < ports.size(); ++i)
            EXPECT_LT(ports[i - 1], ports[i]) << toString(kind);
    }
}

TEST(RadixSolver, Fig6IdealRadixBenefits)
{
    // The headline: 32x / 16x / 4x more ports than one TH-5 when
    // only area constrains, at 300 / 200 / 100 mm.
    const std::int64_t expected[][2] = {
        {300, 8192}, {200, 4096}, {100, 1024}};
    for (const auto &row : expected) {
        DesignSpec spec = baseSpec(static_cast<double>(row[0]), false);
        spec.area_only = true;
        const auto result = RadixSolver(spec).solveMaxPorts();
        EXPECT_EQ(result.best.ports, row[1]) << row[0] << " mm";
    }
}

TEST(RadixSolver, Fig6IdealScalesAcrossLineRates)
{
    // 32x holds for all three TH-5 configurations at 300 mm.
    for (int cfg : {1, 2, 3}) {
        DesignSpec spec = baseSpec(300.0, false);
        spec.ssc = power::tomahawk5(cfg);
        spec.area_only = true;
        const auto result = RadixSolver(spec).solveMaxPorts();
        EXPECT_EQ(result.best.ports, 32L * spec.ssc.radix)
            << "config " << cfg;
    }
}

TEST(RadixSolver, Fig7SerdesCapsAtFiveTwelve)
{
    DesignSpec spec = baseSpec(300.0, false);
    spec.external_io = tech::serdes();
    const auto result = RadixSolver(spec).solveMaxPorts();
    EXPECT_EQ(result.best.ports, 512);
    ASSERT_TRUE(result.blocking.has_value());
    EXPECT_EQ(result.blocking->violated,
              Constraint::ExternalBandwidth);
}

TEST(RadixSolver, Fig7OpticalIsInternalBandwidthBound)
{
    // 2048 ports at both 200 and 300 mm: internal 3200 Gbps/mm is the
    // bottleneck, so substrate growth does not help.
    for (double side : {200.0, 300.0}) {
        const auto result =
            RadixSolver(baseSpec(side, false)).solveMaxPorts();
        EXPECT_EQ(result.best.ports, 2048) << side << " mm";
        ASSERT_TRUE(result.blocking.has_value());
        EXPECT_EQ(result.blocking->violated,
                  Constraint::InternalBandwidth)
            << side << " mm";
    }
}

TEST(RadixSolver, Fig9DoubledInternalBandwidthUnlocksRadix)
{
    // 6400 Gbps/mm: 8192 at 300 mm (4x), 4096 at 200 mm (2x), and
    // 100 mm stays at its ideal 1024.
    const std::int64_t expected[][2] = {
        {300, 8192}, {200, 4096}, {100, 1024}};
    for (const auto &row : expected) {
        const auto result =
            RadixSolver(baseSpec(static_cast<double>(row[0]), true))
                .solveMaxPorts();
        EXPECT_EQ(result.best.ports, row[1]) << row[0] << " mm";
    }
}

TEST(RadixSolver, Fig9AreaIoStaysFlat)
{
    // Area I/O cannot exploit the faster fabric (Fig. 9).
    for (bool overclocked : {false, true}) {
        DesignSpec spec = baseSpec(300.0, overclocked);
        spec.external_io = tech::areaIo();
        const auto result = RadixSolver(spec).solveMaxPorts();
        EXPECT_EQ(result.best.ports, 2048);
    }
}

TEST(RadixSolver, Fig10PowerAtPaperScale)
{
    // 300 mm, 3200 Gbps/mm, optical: the paper reports >14 kW-class
    // power for the 2048-port switch; our model lands ~12-15 kW.
    const auto result = RadixSolver(baseSpec(300.0, false)).solveMaxPorts();
    EXPECT_GT(result.best.power.total(), 10000.0);
    EXPECT_LT(result.best.power.total(), 16000.0);
}

TEST(RadixSolver, Fig11PowerAndIoShareAtFullScale)
{
    // 8192 ports at 6400 Gbps/mm: the paper reports up to 62 kW with
    // a 33%-43.8% I/O share; the model lands ~58 kW at ~34%.
    const auto result = RadixSolver(baseSpec(300.0, true)).solveMaxPorts();
    ASSERT_EQ(result.best.ports, 8192);
    EXPECT_NEAR(result.best.power.total(), 60000.0, 8000.0);
    EXPECT_GT(result.best.power.ioFraction(), 0.30);
    EXPECT_LT(result.best.power.ioFraction(), 0.45);
}

TEST(RadixSolver, Fig16HeterogeneousReduction)
{
    // Section V.B: 30.8%-33.5% lower power; density drops below the
    // 0.5 W/mm^2 water-cooling envelope at 300 mm.
    DesignSpec spec = baseSpec(300.0, true);
    const auto homo = RadixSolver(spec).solveMaxPorts();
    spec.leaf_split = 4;
    const auto hetero = RadixSolver(spec).evaluate(homo.best.ports);
    ASSERT_TRUE(hetero.feasible);
    const double reduction =
        1.0 - hetero.power.total() / homo.best.power.total();
    EXPECT_GT(reduction, 0.28);
    EXPECT_LT(reduction, 0.38);
    EXPECT_GT(homo.best.power_density, 0.5);
    EXPECT_LT(hetero.power_density, 0.5);
}

TEST(RadixSolver, Fig17DeradixingDoublesRadixAtBaseline)
{
    // Fig. 17 at 300 mm / 3200 Gbps/mm: radix-128 sub-switches double
    // the switch from 2048 to 4096; radix-64 over-shoots the area
    // budget and falls back to 2048.
    const std::int64_t expected[][2] = {{1, 2048}, {2, 4096}, {4, 2048}};
    for (const auto &row : expected) {
        DesignSpec spec = baseSpec(300.0, false);
        spec.ssc = topology::deradixedSsc(power::tomahawk5(1),
                                          static_cast<int>(row[0]));
        const auto result = RadixSolver(spec).solveMaxPorts();
        EXPECT_EQ(result.best.ports, row[1])
            << "deradix factor " << row[0];
    }
}

TEST(RadixSolver, Fig18DeradixingHurtsWhenBandwidthSuffices)
{
    // Fig. 18 at 6400 Gbps/mm the internal bandwidth is already
    // sufficient; deradixing only wastes area.
    const std::int64_t expected[][2] = {{1, 8192}, {2, 4096}, {4, 2048}};
    for (const auto &row : expected) {
        DesignSpec spec = baseSpec(300.0, true);
        spec.ssc = topology::deradixedSsc(power::tomahawk5(1),
                                          static_cast<int>(row[0]));
        const auto result = RadixSolver(spec).solveMaxPorts();
        EXPECT_EQ(result.best.ports, row[1])
            << "deradix factor " << row[0];
    }
}

TEST(RadixSolver, Fig19AvailablePerPortBandwidth)
{
    // Fig. 19: at 300 mm / 3200, the feasible 2048-port design has
    // >= 200G available per port at the hottest edge; 4096 with
    // radix-256 sub-switches does not; 4096 with deradixed-128 does.
    DesignSpec spec = baseSpec(300.0, false);
    const auto ok = RadixSolver(spec).evaluate(2048);
    EXPECT_GE(ok.available_bw_per_port, 200.0);
    const auto bad = RadixSolver(spec).evaluate(4096);
    EXPECT_LT(bad.available_bw_per_port, 200.0);
    spec.ssc = topology::deradixedSsc(power::tomahawk5(1), 2);
    const auto fixed = RadixSolver(spec).evaluate(4096);
    EXPECT_GE(fixed.available_bw_per_port, 200.0);
}

TEST(RadixSolver, Fig28CoolingEnvelopes)
{
    // Fig. 28 at 300 mm after the heterogeneous optimization: air
    // sustains 8x (2048) and water 32x (8192).
    DesignSpec spec = baseSpec(300.0, true);
    spec.leaf_split = 4;
    spec.cooling = tech::airCooling();
    EXPECT_EQ(RadixSolver(spec).solveMaxPorts().best.ports, 2048);
    spec.cooling = tech::waterCooling();
    EXPECT_EQ(RadixSolver(spec).solveMaxPorts().best.ports, 8192);
    spec.cooling = tech::multiphaseCooling();
    EXPECT_EQ(RadixSolver(spec).solveMaxPorts().best.ports, 8192);
}

TEST(RadixSolver, EvaluationsReportConsistentDetail)
{
    const auto eval = RadixSolver(baseSpec(300.0, false)).evaluate(2048);
    EXPECT_TRUE(eval.feasible);
    EXPECT_EQ(eval.ssc_chiplets, 24);
    EXPECT_GT(eval.io_chiplets, 0);
    EXPECT_GT(eval.silicon_area, 24 * 800.0);
    EXPECT_LE(eval.max_edge_load, eval.edge_capacity);
    EXPECT_DOUBLE_EQ(eval.external_demand, 2048 * 200.0);
    EXPECT_GT(eval.average_link_hops, 1.0);
    EXPECT_GT(eval.power.ssc_core, 0.0);
    EXPECT_GT(eval.power.internal_io, 0.0);
    EXPECT_GT(eval.power.external_io, 0.0);
}

TEST(RadixSolver, RejectsOversizedSubstrates)
{
    DesignSpec spec = baseSpec(300.0, false);
    spec.substrate_side = 400.0;
    EXPECT_DEATH(RadixSolver{spec}, "exceeds");
}

TEST(RadixSolver, BuildTopologyMatchesEvaluation)
{
    const RadixSolver solver(baseSpec(300.0, false));
    const auto topo = solver.buildTopology(2048);
    EXPECT_EQ(topo.totalExternalPorts(), 2048);
    EXPECT_EQ(topo.validate(), "");
}

TEST(PhysicalClos, NeverBeatsMappedClos)
{
    // Fig. 26: the dedicated-trace construction always trails the
    // mapped Clos.
    for (double side : {200.0, 300.0}) {
        const DesignSpec spec = baseSpec(side, false);
        const auto mapped = RadixSolver(spec).solveMaxPorts();
        const auto phys = solveMaxPortsPhysicalClos(spec, false);
        EXPECT_LE(phys.ports, mapped.best.ports) << side << " mm";
        EXPECT_TRUE(phys.feasible);
    }
}

TEST(PhysicalClos, UnderChipRoutingHelpsOrTies)
{
    const DesignSpec spec = baseSpec(300.0, false);
    const auto without = solveMaxPortsPhysicalClos(spec, false);
    const auto with = solveMaxPortsPhysicalClos(spec, true);
    EXPECT_GE(with.ports, without.ports);
    EXPECT_GT(with.wire_budget, without.wire_budget);
}

TEST(PhysicalClos, PaysAPowerPremiumAtIsoRadix)
{
    // Fig. 26(c): ~10% more power than mapped Clos at equal radix.
    const DesignSpec spec = baseSpec(300.0, false);
    const auto mapped = RadixSolver(spec).evaluate(1024);
    const auto phys = evaluatePhysicalClos(spec, 1024, false);
    EXPECT_GT(phys.power.total(), mapped.power.total());
    EXPECT_LT(phys.power.total(), mapped.power.total() * 1.35);
}

TEST(PhysicalClos, WireAreaGrowsSuperlinearly)
{
    const DesignSpec spec = baseSpec(300.0, false);
    const auto small = evaluatePhysicalClos(spec, 1024, false);
    const auto large = evaluatePhysicalClos(spec, 2048, false);
    EXPECT_GT(large.wire_area, 2.0 * small.wire_area);
}

} // namespace
} // namespace wss::core
