/**
 * @file
 * Tests for the fault subsystem: defect-map sampling, spare-socket
 * repair, topology degradation, runtime fault injection, and the
 * resilience campaign's determinism contract.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "exec/thread_pool.hpp"
#include "fault/defect.hpp"
#include "fault/degrade.hpp"
#include "fault/fault_schedule.hpp"
#include "fault/resilience.hpp"
#include "power/ssc.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "sim/workload.hpp"
#include "topology/clos.hpp"

namespace wss::fault {
namespace {

/// 4 leaves (nodes 0-3, 4 external ports each) + 2 spines (nodes
/// 4-5) of radix-8 SSCs; every leaf has a multiplicity-2 bundle to
/// each spine.
topology::LogicalTopology
tinyClos(std::int64_t ports = 16)
{
    return topology::buildFoldedClos(
        {ports, power::scaledSsc(8, 200.0), 1});
}

/// An all-healthy map for @p topo.
DefectMap
cleanMap(const topology::LogicalTopology &topo)
{
    DefectMap map;
    map.node_failed.assign(
        static_cast<std::size_t>(topo.nodeCount()), 0);
    map.link_failed_units.assign(topo.links().size(), 0);
    return map;
}

/// First link-bundle index incident to node @p node.
int
linkTouching(const topology::LogicalTopology &topo, int node)
{
    const auto &links = topo.links();
    for (std::size_t li = 0; li < links.size(); ++li)
        if (links[li].a == node || links[li].b == node)
            return static_cast<int>(li);
    return -1;
}

TEST(FaultModel, ComposesIndependentFailureModes)
{
    FaultModel m;
    m.yield.bond_yield = 0.9;
    m.die_area = 800.0;
    m.test_escape = 0.5;
    m.node_field_failure = 0.1;
    m.link_field_failure = 0.2;
    const double die = tech::dieYield(m.die_area, m.yield);
    const double node_ok = 0.9 * (1.0 - 0.5 * (1.0 - die)) * 0.9;
    EXPECT_NEAR(m.nodeFailureProbability(), 1.0 - node_ok, 1e-12);
    EXPECT_NEAR(m.linkFailureProbability(), 1.0 - 0.9 * 0.8, 1e-12);
}

TEST(FaultModel, PerfectAssemblyNeverFails)
{
    FaultModel m;
    m.yield.bond_yield = 1.0;
    EXPECT_DOUBLE_EQ(m.nodeFailureProbability(), 0.0);
    EXPECT_DOUBLE_EQ(m.linkFailureProbability(), 0.0);

    const auto topo = tinyClos();
    const DefectSampler sampler(topo, m, 9);
    for (std::uint64_t i = 0; i < 16; ++i)
        EXPECT_FALSE(sampler.sample(i).anyFailure());
}

TEST(DefectSampler, SameSeedAndIndexReproduceTheMap)
{
    const auto topo = tinyClos();
    FaultModel m;
    m.yield.bond_yield = 0.9; // busy maps
    m.link_field_failure = 0.1;
    const DefectSampler a(topo, m, 42);
    const DefectSampler b(topo, m, 42);

    // b samples in reverse order: index determinism must not depend
    // on call history.
    std::vector<DefectMap> from_b;
    for (int i = 3; i >= 0; --i)
        from_b.push_back(b.sample(static_cast<std::uint64_t>(i)));
    for (int i = 0; i < 4; ++i) {
        const DefectMap ma = a.sample(static_cast<std::uint64_t>(i));
        const DefectMap &mb = from_b[static_cast<std::size_t>(3 - i)];
        EXPECT_EQ(ma.node_failed, mb.node_failed) << "index " << i;
        EXPECT_EQ(ma.link_failed_units, mb.link_failed_units)
            << "index " << i;
    }

    // Different indices draw different maps (at these failure rates
    // a collision over 12 nodes + 8 bundles is essentially
    // impossible).
    bool any_difference = false;
    const DefectMap first = a.sample(0);
    for (std::uint64_t i = 1; i < 8 && !any_difference; ++i) {
        const DefectMap other = a.sample(i);
        any_difference = other.node_failed != first.node_failed ||
                         other.link_failed_units !=
                             first.link_failed_units;
    }
    EXPECT_TRUE(any_difference);
}

TEST(DefectSampler, ObservedRatesMatchTheModel)
{
    const auto topo = tinyClos();
    FaultModel m;
    m.yield.bond_yield = 0.9;
    const DefectSampler sampler(topo, m, 7);
    const int samples = 4000;
    std::int64_t node_failures = 0;
    for (int i = 0; i < samples; ++i)
        node_failures += sampler.sample(
            static_cast<std::uint64_t>(i)).failedNodeCount();
    const double observed =
        static_cast<double>(node_failures) /
        (static_cast<double>(samples) * topo.nodeCount());
    EXPECT_NEAR(observed, m.nodeFailureProbability(), 0.01);
}

TEST(ApplySpares, RepairsLowestIdsWithFreshBonds)
{
    const auto topo = tinyClos();
    DefectMap map = cleanMap(topo);
    map.node_failed[1] = 1;
    map.node_failed[4] = 1;
    const int near_node1 = linkTouching(topo, 1);
    ASSERT_GE(near_node1, 0);
    map.link_failed_units[static_cast<std::size_t>(near_node1)] = 2;
    // A bundle not touching node 1: its dead unit must survive the
    // repair.
    int elsewhere = -1;
    for (std::size_t li = 0; li < topo.links().size(); ++li) {
        const auto &link = topo.links()[li];
        if (link.a != 1 && link.b != 1 && link.a != 4 && link.b != 4) {
            elsewhere = static_cast<int>(li);
            break;
        }
    }
    ASSERT_GE(elsewhere, 0);
    map.link_failed_units[static_cast<std::size_t>(elsewhere)] = 1;

    // One spare repairs the lowest-id failure only.
    EXPECT_EQ(applySpares(map, topo, 1), 1);
    EXPECT_EQ(map.node_failed[1], 0);
    EXPECT_EQ(map.node_failed[4], 1);
    EXPECT_EQ(
        map.link_failed_units[static_cast<std::size_t>(near_node1)],
        0);
    EXPECT_EQ(
        map.link_failed_units[static_cast<std::size_t>(elsewhere)], 1);

    // Plenty of spares repair the rest; only one node was left.
    EXPECT_EQ(applySpares(map, topo, 8), 1);
    EXPECT_EQ(map.failedNodeCount(), 0);
    EXPECT_EQ(applySpares(map, topo, 8), 0);
}

TEST(Degrade, HealthyMapIsFullyConnected)
{
    const auto topo = tinyClos();
    const DegradeResult deg = degradeTopology(topo, cleanMap(topo));
    EXPECT_EQ(deg.classification, Connectivity::FullyConnected);
    EXPECT_EQ(deg.usable_ports, 16);
    EXPECT_DOUBLE_EQ(deg.bisection_fraction, 1.0);
    ASSERT_TRUE(deg.topo.has_value());
    EXPECT_EQ(deg.topo->nodeCount(), topo.nodeCount());
}

TEST(Degrade, DeadSpineKeepsAllPortsAtHalfBisection)
{
    const auto topo = tinyClos();
    DefectMap map = cleanMap(topo);
    map.node_failed[5] = 1; // second spine
    const DegradeResult deg = degradeTopology(topo, map);
    EXPECT_EQ(deg.classification, Connectivity::FullyConnected);
    EXPECT_EQ(deg.usable_ports, 16);
    EXPECT_DOUBLE_EQ(deg.bisection_fraction, 0.5);
    ASSERT_TRUE(deg.topo.has_value());
    EXPECT_EQ(deg.topo->nodeCount(), 5);
    EXPECT_EQ(deg.node_map[5], -1);
    EXPECT_EQ(deg.topo->validate(), "");
}

TEST(Degrade, DeadLeafLosesItsPorts)
{
    const auto topo = tinyClos();
    DefectMap map = cleanMap(topo);
    map.node_failed[0] = 1; // a leaf: 4 external ports gone
    const DegradeResult deg = degradeTopology(topo, map);
    EXPECT_EQ(deg.classification, Connectivity::Degraded);
    EXPECT_EQ(deg.usable_ports, 12);
    ASSERT_TRUE(deg.topo.has_value());
    EXPECT_EQ(deg.topo->totalExternalPorts(), 12);
}

TEST(Degrade, DeadOnlySpinePartitionsTheLeaves)
{
    // 8 ports with radix-8 SSCs: 2 leaves sharing a single spine.
    const auto topo = tinyClos(8);
    DefectMap map = cleanMap(topo);
    map.node_failed[2] = 1; // the only spine
    const DegradeResult deg = degradeTopology(topo, map);
    EXPECT_EQ(deg.classification, Connectivity::Partitioned);
    // Two 4-port islands; the kept one is the lowest-id leaf.
    EXPECT_EQ(deg.usable_ports, 4);
}

TEST(NetworkFaults, SetLinkDownDisablesPortsAndReroutes)
{
    const auto topo = tinyClos();
    sim::NetworkSpec spec;
    spec.vcs = 4;
    spec.buffer_per_port = 16;
    sim::Network net(topo, spec, 7);
    ASSERT_EQ(net.linkCount(),
              static_cast<int>(topo.links().size()));

    const int link = linkTouching(topo, 0);
    ASSERT_GE(link, 0);
    const int multiplicity =
        topo.links()[static_cast<std::size_t>(link)].multiplicity;

    auto disabledPorts = [&net] {
        int disabled = 0;
        for (int r = 0; r < net.routerCount(); ++r) {
            const sim::Router &router = net.router(r);
            for (int p = 0; p < router.config().ports; ++p)
                disabled += router.portEnabled(p) ? 0 : 1;
        }
        return disabled;
    };

    EXPECT_TRUE(net.linkUp(link));
    EXPECT_EQ(disabledPorts(), 0);

    net.setLinkUp(link, false);
    EXPECT_FALSE(net.linkUp(link));
    // Both endpoints drop one port per bundle unit.
    EXPECT_EQ(disabledPorts(), 2 * multiplicity);

    // The degraded fabric still routes everything: every packet of a
    // moderate uniform load is delivered via the surviving paths.
    sim::SyntheticWorkload workload(
        sim::uniformTraffic(net.terminalCount()), 0.2, 2);
    sim::SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 1000;
    cfg.drain_limit = 8000;
    cfg.seed = 7;
    const sim::SimResult result =
        sim::Simulator(net, workload, cfg).run();
    EXPECT_TRUE(result.stable);
    EXPECT_NEAR(result.accepted, 0.2, 0.05);

    net.setLinkUp(link, true);
    EXPECT_TRUE(net.linkUp(link));
    EXPECT_EQ(disabledPorts(), 0);
}

TEST(NetworkFaults, PartitioningLinkFailureDiesLoudly)
{
    // 2 leaves + 1 spine: each leaf's single bundle is a cut edge.
    const auto topo = tinyClos(8);
    sim::NetworkSpec spec;
    spec.vcs = 2;
    spec.buffer_per_port = 8;
    sim::Network net(topo, spec, 3);
    EXPECT_DEATH(net.setLinkUp(0, false), "disconnected");
}

TEST(FaultSchedule, RejectsBadEvents)
{
    FaultSchedule schedule;
    EXPECT_DEATH(schedule.killLink(-1, 0), "bad kill");
    EXPECT_DEATH(schedule.restoreLink(0, -2), "bad restore");
    EXPECT_DEATH(schedule.flapLink(0, 400, 100), "after");
}

TEST(FaultSchedule, AppliesEventsMidSimulation)
{
    const auto topo = tinyClos();
    const int link = linkTouching(topo, 0);
    ASSERT_GE(link, 0);

    FaultSchedule schedule;
    schedule.flapLink(link, 150, 700);
    schedule.killLink(900, link);

    sim::NetworkSpec spec;
    spec.vcs = 4;
    spec.buffer_per_port = 16;
    sim::Network net(topo, spec, 5);
    sim::SyntheticWorkload workload(
        sim::uniformTraffic(net.terminalCount()), 0.2, 2);
    sim::SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 1000;
    cfg.drain_limit = 8000;
    cfg.seed = 5;
    schedule.installInto(cfg);
    ASSERT_TRUE(cfg.on_cycle);

    const sim::SimResult result =
        sim::Simulator(net, workload, cfg).run();
    // Flapped down, restored, killed again: the final administrative
    // state reflects the last event, and no measured packet was lost
    // along the way.
    EXPECT_FALSE(net.linkUp(link));
    EXPECT_TRUE(result.stable);
    EXPECT_NEAR(result.accepted, 0.2, 0.05);
}

/// The acceptance scenario: a Clos losing one middle-stage SSC stays
/// fully connected, reroutes over the surviving spine's ECMP paths,
/// and saturates at roughly the surviving bisection.
TEST(Resilience, GracefulDegradationEndToEnd)
{
    const auto topo = tinyClos();
    DefectMap map = cleanMap(topo);
    map.node_failed[5] = 1; // one of the two spines
    const DegradeResult deg = degradeTopology(topo, map);
    ASSERT_EQ(deg.classification, Connectivity::FullyConnected);
    ASSERT_DOUBLE_EQ(deg.bisection_fraction, 0.5);
    ASSERT_TRUE(deg.topo.has_value());

    auto runAt = [](const topology::LogicalTopology &t, double rate) {
        sim::NetworkSpec spec;
        spec.vcs = 4;
        spec.buffer_per_port = 16;
        sim::Network net(t, spec, 11);
        sim::SyntheticWorkload workload(
            sim::uniformTraffic(net.terminalCount()), rate, 2);
        sim::SimConfig cfg;
        cfg.warmup = 500;
        cfg.measure = 2000;
        cfg.drain_limit = 20000;
        cfg.seed = 11;
        return sim::Simulator(net, workload, cfg).run();
    };

    // Light load is rerouted without loss.
    const sim::SimResult light = runAt(*deg.topo, 0.25);
    EXPECT_TRUE(light.stable);
    EXPECT_NEAR(light.accepted, 0.25, 0.05);

    // At saturation the throughput drop tracks the lost bisection:
    // uplink capacity halved, and only the ~80% of uniform traffic
    // that crosses leaves is bisection-limited, so the degraded
    // fabric sustains roughly 0.5-0.7 of the healthy throughput.
    const sim::SimResult healthy = runAt(topo, 0.95);
    const sim::SimResult degraded = runAt(*deg.topo, 0.95);
    EXPECT_GT(healthy.accepted, degraded.accepted + 0.05);
    const double ratio = degraded.accepted / healthy.accepted;
    EXPECT_GT(ratio, deg.bisection_fraction - 0.1);
    EXPECT_LT(ratio, deg.bisection_fraction + 0.3);
}

ResilienceConfig
smallCampaign()
{
    ResilienceConfig cfg;
    cfg.ssc = power::scaledSsc(8, 200.0);
    cfg.radices = {16};
    cfg.defect_densities = {0.3};
    cfg.spare_counts = {0, 1};
    cfg.model.yield.bond_yield = 0.98; // busy maps at tiny scale
    cfg.samples = 40;
    cfg.sim_samples = 1;
    cfg.sim_cfg.warmup = 200;
    cfg.sim_cfg.measure = 500;
    cfg.sim_cfg.drain_limit = 4000;
    cfg.seed = 13;
    return cfg;
}

TEST(Resilience, CampaignCsvIsBitIdenticalAcrossPoolSizes)
{
    const ResilienceCampaign campaign(smallCampaign());
    const auto csv = [&](exec::ThreadPool *pool) {
        std::ostringstream os;
        campaign.run(pool).writeCsv(os);
        return os.str();
    };
    const std::string serial = csv(nullptr);
    exec::ThreadPool one(1);
    exec::ThreadPool four(4);
    EXPECT_EQ(serial, csv(&one));
    EXPECT_EQ(serial, csv(&four));
    // And the artifact quotes the comma-bearing topology label.
    EXPECT_NE(serial.find("\"clos(16,8)\""), std::string::npos);
}

TEST(Resilience, SparesImproveSurvivalOnSharedMaps)
{
    ResilienceConfig cfg = smallCampaign();
    cfg.spare_counts = {0, 1, 2, 4};
    cfg.samples = 150;
    cfg.sim_samples = 0;
    const ResilienceResult result =
        ResilienceCampaign(cfg).run(nullptr);
    ASSERT_EQ(result.cells.size(), 4u);
    for (std::size_t i = 1; i < result.cells.size(); ++i) {
        // The spare axis repairs the *same* sampled maps, so both
        // survival and usable radix are monotone sample-by-sample,
        // not merely in expectation.
        EXPECT_GE(result.cells[i].survival,
                  result.cells[i - 1].survival);
        EXPECT_GE(result.cells[i].expected_usable_ports,
                  result.cells[i - 1].expected_usable_ports);
    }
    for (const auto &cell : result.cells) {
        EXPECT_GE(cell.survival, 0.0);
        EXPECT_LE(cell.survival, 1.0);
        EXPECT_NEAR(cell.survival + cell.p_degraded +
                        cell.p_partitioned,
                    1.0, 1e-12);
        EXPECT_GT(cell.analytic_bond_yield, 0.0);
    }
}

} // namespace
} // namespace wss::fault
