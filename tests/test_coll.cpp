/**
 * @file
 * Tests for the collective-communication engine: schedule structure
 * against the textbook formulas, determinism (bit-identical builds,
 * byte-identical campaign CSV at any thread count), the three-fidelity
 * cross-check (alpha-beta == flow level on an uncongested single
 * switch, cycle-accurate fabric within quantization tolerance), the
 * parallelism-plan composer, and mid-collective fault injection.
 * Telemetry: the per-step per-rank Gantt reconciles exactly with the
 * run's counters and never perturbs the results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "coll/campaign.hpp"
#include "coll/execute.hpp"
#include "coll/plan.hpp"
#include "coll/schedule.hpp"
#include "exec/thread_pool.hpp"
#include "flow/dcn_topology.hpp"
#include "flow/switch_profile.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "power/ssc.hpp"
#include "topology/clos.hpp"

namespace wss::coll {
namespace {

/// Hand-built profile, as in test_flow: no calibration sweep needed.
flow::SwitchProfile
testProfile(const std::string &name, std::int64_t radix)
{
    flow::SwitchProfile p;
    p.name = name;
    p.radix = radix;
    p.line_rate_gbps = 200.0;
    p.power_watts = 1000.0;
    p.zero_load_latency = 12.0;
    p.saturation = 0.95;
    p.points = {{0.1, 14.0, 20.0}, {0.5, 25.0, 60.0},
                {0.9, 80.0, 300.0}};
    return p;
}

/// Messages of one step, sorted by (src, dst).
std::vector<CollMessage>
stepMessages(const Schedule &s, int step)
{
    std::vector<CollMessage> out;
    for (const auto &m : s.messages)
        if (m.step == step)
            out.push_back(m);
    std::sort(out.begin(), out.end(),
              [](const CollMessage &a, const CollMessage &b) {
                  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });
    return out;
}

// --- Schedules -------------------------------------------------------

TEST(CollSchedule, RingAllreduceMatchesTextbook)
{
    const int n = 8;
    const Schedule s = allReduceSchedule(Algorithm::Ring, n);
    EXPECT_TRUE(s.validate().empty()) << s.validate();
    EXPECT_EQ(s.name(), "allreduce/ring");
    // 2(N-1) steps, N messages each, each carrying 1/N of the vector.
    EXPECT_EQ(s.steps, 2 * (n - 1));
    EXPECT_EQ(s.messages.size(),
              static_cast<std::size_t>(2 * (n - 1) * n));
    for (const auto &m : s.messages) {
        EXPECT_EQ(m.dst, (m.src + 1) % n);
        EXPECT_DOUBLE_EQ(m.fraction, 1.0 / n);
    }
    // Total traffic: 2(N-1)/N of the payload per rank.
    EXPECT_NEAR(s.bytesOnWire(1.0),
                2.0 * (n - 1) * n * (1.0 / n), 1e-12);
}

TEST(CollSchedule, RecursiveDoublingIsFullVectorXorPartners)
{
    const int n = 8;
    const Schedule s =
        allReduceSchedule(Algorithm::RecursiveDoubling, n);
    EXPECT_TRUE(s.validate().empty()) << s.validate();
    EXPECT_EQ(s.steps, 3); // log2(8)
    for (int step = 0; step < s.steps; ++step) {
        const auto msgs = stepMessages(s, step);
        ASSERT_EQ(msgs.size(), static_cast<std::size_t>(n));
        for (const auto &m : msgs) {
            EXPECT_EQ(m.dst, m.src ^ (1 << step));
            EXPECT_DOUBLE_EQ(m.fraction, 1.0);
        }
    }
    // Non-power-of-two: the pruned hypercube just skips absent
    // partners, it must still validate.
    const Schedule odd =
        allReduceSchedule(Algorithm::RecursiveDoubling, 6);
    EXPECT_TRUE(odd.validate().empty()) << odd.validate();
}

TEST(CollSchedule, HalvingDoublingHalvesThenDoubles)
{
    const int n = 8;
    const Schedule s =
        allReduceSchedule(Algorithm::HalvingDoubling, n);
    EXPECT_TRUE(s.validate().empty()) << s.validate();
    EXPECT_EQ(s.steps, 6); // 2 log2(8)
    // Reduce-scatter stage fractions: 1/2, 1/4, 1/8.
    for (int k = 0; k < 3; ++k) {
        const auto msgs = stepMessages(s, k);
        ASSERT_EQ(msgs.size(), static_cast<std::size_t>(n));
        for (const auto &m : msgs)
            EXPECT_DOUBLE_EQ(m.fraction, 1.0 / (1 << (k + 1)));
    }
    // All-gather stage mirrors back up: 1/8, 1/4, 1/2.
    for (int k = 0; k < 3; ++k) {
        const auto msgs = stepMessages(s, 3 + k);
        for (const auto &m : msgs)
            EXPECT_DOUBLE_EQ(m.fraction,
                             static_cast<double>(1 << k) / n);
    }
    // Rabenseifner total: 2(N-1)/N of the vector per rank, summed
    // over the N ranks.
    EXPECT_NEAR(s.bytesOnWire(1.0), 2.0 * (n - 1), 1e-9);
}

TEST(CollSchedule, TreeReducesThenBroadcasts)
{
    const int n = 8;
    const Schedule s = allReduceSchedule(Algorithm::Tree, n);
    EXPECT_TRUE(s.validate().empty()) << s.validate();
    EXPECT_EQ(s.steps, 6); // log2(8) up + log2(8) down
    // First reduce step: odd ranks send to even neighbours.
    const auto first = stepMessages(s, 0);
    ASSERT_EQ(first.size(), static_cast<std::size_t>(n / 2));
    for (const auto &m : first) {
        EXPECT_EQ(m.src % 2, 1);
        EXPECT_EQ(m.dst, m.src - 1);
        EXPECT_DOUBLE_EQ(m.fraction, 1.0);
    }
    // Last broadcast step mirrors it.
    const auto last = stepMessages(s, s.steps - 1);
    ASSERT_EQ(last.size(), static_cast<std::size_t>(n / 2));
    for (const auto &m : last)
        EXPECT_EQ(m.src, m.dst - 1);
}

TEST(CollSchedule, AllToAllIsPairwiseExchange)
{
    const int n = 5;
    const Schedule s = allToAllSchedule(n);
    EXPECT_TRUE(s.validate().empty()) << s.validate();
    EXPECT_EQ(s.steps, n - 1);
    // Every ordered pair exactly once, 1/N each.
    std::set<std::pair<int, int>> pairs;
    for (const auto &m : s.messages) {
        EXPECT_DOUBLE_EQ(m.fraction, 1.0 / n);
        EXPECT_TRUE(pairs.insert({m.src, m.dst}).second);
    }
    EXPECT_EQ(pairs.size(), static_cast<std::size_t>(n * (n - 1)));
}

TEST(CollSchedule, ReduceScatterAllGatherAreRingHalves)
{
    const int n = 6;
    const Schedule rs = reduceScatterSchedule(n);
    const Schedule ag = allGatherSchedule(n);
    EXPECT_EQ(rs.steps, n - 1);
    EXPECT_EQ(ag.steps, n - 1);
    const Schedule ar = allReduceSchedule(Algorithm::Ring, n);
    EXPECT_NEAR(rs.bytesOnWire(1.0) + ag.bytesOnWire(1.0),
                ar.bytesOnWire(1.0), 1e-12);
}

TEST(CollSchedule, BuildsAreDeterministic)
{
    for (const CollSpec &spec : defaultCollSpecs()) {
        const Schedule a = buildSchedule(spec, 16);
        const Schedule b = buildSchedule(spec, 16);
        ASSERT_EQ(a.messages.size(), b.messages.size());
        for (std::size_t i = 0; i < a.messages.size(); ++i) {
            EXPECT_EQ(a.messages[i].step, b.messages[i].step);
            EXPECT_EQ(a.messages[i].src, b.messages[i].src);
            EXPECT_EQ(a.messages[i].dst, b.messages[i].dst);
            EXPECT_EQ(a.messages[i].fraction, b.messages[i].fraction);
        }
    }
}

TEST(CollSchedule, NonPowerOfTwoRanksDiesLoudly)
{
    EXPECT_DEATH(allReduceSchedule(Algorithm::HalvingDoubling, 6),
                 "power-of-two");
    EXPECT_DEATH(allReduceSchedule(Algorithm::Tree, 12),
                 "power-of-two");
    EXPECT_DEATH(allReduceSchedule(Algorithm::Ring, 1), "ranks");
}

TEST(CollSchedule, ValidateCatchesBrokenSchedules)
{
    Schedule s = allReduceSchedule(Algorithm::Ring, 4);
    EXPECT_TRUE(s.validate().empty());
    Schedule loop = s;
    loop.messages[0].dst = loop.messages[0].src;
    EXPECT_FALSE(loop.validate().empty());
    Schedule range = s;
    range.messages[0].dst = 99;
    EXPECT_FALSE(range.validate().empty());
    Schedule frac = s;
    frac.messages[0].fraction = 0.0;
    EXPECT_FALSE(frac.validate().empty());
    Schedule order = s;
    std::swap(order.messages.front(), order.messages.back());
    EXPECT_FALSE(order.validate().empty());
}

TEST(CollSchedule, AlphaBetaClosedForm)
{
    // 4-rank ring allreduce: 6 steps, max step bytes = payload/4.
    const Schedule s = allReduceSchedule(Algorithm::Ring, 4);
    const AlphaBeta cost{2e-6, 1e-9};
    const double t = alphaBetaSeconds(s, 1000.0, cost);
    EXPECT_NEAR(t, 6 * (2e-6 + 250.0 * 1e-9), 1e-15);
    // Bus-bandwidth factors.
    EXPECT_DOUBLE_EQ(busBandwidthFactor(Collective::AllReduce, 4),
                     2.0 * 3 / 4);
    EXPECT_DOUBLE_EQ(busBandwidthFactor(Collective::ReduceScatter, 4),
                     3.0 / 4);
    EXPECT_DOUBLE_EQ(busBandwidthFactor(Collective::AllToAll, 4),
                     3.0 / 4);
    EXPECT_DOUBLE_EQ(busBandwidthFactor(Collective::PointToPoint, 4),
                     1.0);
}

// --- Execution cross-check -------------------------------------------

TEST(CollExec, FlowMatchesAlphaBetaOnUncongestedSwitch)
{
    // Single 64-port switch, 8 ranks: every step's flows get the full
    // derated line rate and the zero-load path latency, so the flow
    // fidelity must land exactly on the closed-form model.
    const flow::SwitchProfile profile = testProfile("t", 64);
    const AlphaBeta cost = alphaBetaOf(profile, 200.0, 1);
    for (const CollSpec &spec : defaultCollSpecs()) {
        const Schedule s = buildSchedule(spec, 8);
        flow::DcnTopology topo =
            flow::DcnTopology::buildFatTree(8, 64, 200.0);
        ASSERT_EQ(topo.worstCaseHops(), 1) << s.name();
        const CollExecResult fr =
            executeOnDcn(s, 1 << 20, topo, profile);
        const CollExecResult mr =
            executeAlphaBeta(s, 1 << 20, cost);
        EXPECT_EQ(fr.failed_messages, 0) << s.name();
        ASSERT_GT(mr.seconds, 0.0);
        EXPECT_NEAR(fr.seconds / mr.seconds, 1.0, 1e-9) << s.name();
        EXPECT_NEAR(fr.busbw_gbps, mr.busbw_gbps,
                    1e-6 * mr.busbw_gbps)
            << s.name();
    }
}

TEST(CollExec, FabricReplayAgreesWithinQuantization)
{
    // Cycle-accurate replay on a small folded Clos: flit quantization
    // and router pipelining move the constant factors, but the two
    // fidelities must stay within the same small multiple.
    const topology::LogicalTopology fab =
        topology::buildFoldedClos({16, power::scaledSsc(8, 200.0), 1});
    sim::NetworkSpec spec;
    spec.vcs = 8;
    spec.buffer_per_port = 32;
    const flow::SwitchProfile profile = testProfile("t", 16);
    const Schedule s = allReduceSchedule(Algorithm::Ring, 8);
    const CollExecResult fr =
        executeOnFabric(s, 8192.0, fab, spec, profile.cycle_seconds,
                        64.0);
    const CollExecResult mr = executeAlphaBeta(
        s, 8192.0, alphaBetaOf(profile, 200.0, 1));
    ASSERT_GT(fr.seconds, 0.0);
    ASSERT_GT(mr.seconds, 0.0);
    const double ratio = fr.seconds / mr.seconds;
    EXPECT_GT(ratio, 0.2) << "fabric " << fr.seconds << " model "
                          << mr.seconds;
    EXPECT_LT(ratio, 5.0) << "fabric " << fr.seconds << " model "
                          << mr.seconds;
    EXPECT_GT(fr.bytes_on_wire, 0.0);
}

TEST(CollExec, FabricReplayIsDeterministic)
{
    const topology::LogicalTopology fab =
        topology::buildFoldedClos({16, power::scaledSsc(8, 200.0), 1});
    sim::NetworkSpec spec;
    const Schedule s = allToAllSchedule(8);
    const CollExecResult a =
        executeOnFabric(s, 4096.0, fab, spec, 2.56e-9, 64.0);
    const CollExecResult b =
        executeOnFabric(s, 4096.0, fab, spec, 2.56e-9, 64.0);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.bytes_on_wire, b.bytes_on_wire);
}

TEST(CollExec, MetricsAndTraceCoverTheRun)
{
    const flow::SwitchProfile profile = testProfile("t", 64);
    flow::DcnTopology topo =
        flow::DcnTopology::buildFatTree(8, 64, 200.0);
    const Schedule s = allReduceSchedule(Algorithm::Ring, 8);
    obs::MetricsRegistry metrics;
    obs::TraceEventSink trace;
    CollExecConfig cfg;
    cfg.metrics = &metrics;
    cfg.trace = &trace;
    executeOnDcn(s, 1 << 16, topo, profile, cfg);
    EXPECT_EQ(metrics.counterValue("coll.steps"),
              static_cast<std::uint64_t>(s.steps));
    EXPECT_EQ(metrics.counterValue("coll.messages"),
              s.messages.size());
    // One span per step.
    EXPECT_GE(trace.size(), static_cast<std::size_t>(s.steps));
}

TEST(CollExec, RejectsUndersizedTopology)
{
    const flow::SwitchProfile profile = testProfile("t", 64);
    flow::DcnTopology topo =
        flow::DcnTopology::buildFatTree(4, 64, 200.0);
    const Schedule s = allReduceSchedule(Algorithm::Ring, 8);
    EXPECT_DEATH(executeOnDcn(s, 1024.0, topo, profile), "hosts");
    EXPECT_DEATH(executeOnDcn(s, -1.0, topo, profile), "payload");
}

// --- Fault injection -------------------------------------------------

TEST(CollFault, EdgeKillMidCollectiveFailsMessages)
{
    // Killing rank 0's edge switch before step 1 strands every later
    // message in or out of its hosts; the run must report them as
    // failed instead of hanging or crashing.
    const flow::SwitchProfile profile = testProfile("t", 8);
    flow::DcnTopology topo =
        flow::DcnTopology::buildFatTree(16, 8, 200.0);
    const Schedule s = allReduceSchedule(Algorithm::Ring, 16);

    CollExecConfig cfg;
    cfg.fault.at_step = 1;
    cfg.fault.kill_switch = true;
    cfg.fault.id = topo.edgeOf(0);
    const CollExecResult faulted =
        executeOnDcn(s, 1 << 16, topo, profile, cfg);
    EXPECT_GT(faulted.failed_messages, 0);

    flow::DcnTopology clean_topo =
        flow::DcnTopology::buildFatTree(16, 8, 200.0);
    const CollExecResult clean =
        executeOnDcn(s, 1 << 16, clean_topo, profile);
    EXPECT_EQ(clean.failed_messages, 0);
    EXPECT_LT(faulted.bytes_on_wire, clean.bytes_on_wire);
}

TEST(CollFault, SpineKillReroutesAndCompletes)
{
    // A dead spine leaves the fat tree connected: everything still
    // completes, possibly slower.
    const flow::SwitchProfile profile = testProfile("t", 8);
    flow::DcnTopology topo =
        flow::DcnTopology::buildFatTree(32, 8, 200.0);
    std::set<int> edges;
    for (std::int64_t h = 0; h < topo.hostCount(); ++h)
        edges.insert(topo.edgeOf(h));
    int spine = -1;
    for (int sw = 0; sw < topo.switchCount(); ++sw)
        if (!edges.count(sw)) {
            spine = sw;
            break;
        }
    ASSERT_GE(spine, 0);

    const Schedule s = allToAllSchedule(32);
    CollExecConfig cfg;
    cfg.fault.at_step = 2;
    cfg.fault.kill_switch = true;
    cfg.fault.id = spine;
    const CollExecResult r =
        executeOnDcn(s, 1 << 16, topo, profile, cfg);
    EXPECT_EQ(r.failed_messages, 0);
    EXPECT_GT(r.seconds, 0.0);
}

// --- Parallelism plans -----------------------------------------------

TEST(CollPlan, ShapeValidation)
{
    PlanShape ok{8, 4, 2, 4};
    EXPECT_TRUE(ok.validate().empty()) << ok.validate();
    EXPECT_EQ(ok.totalRanks(), 64);
    PlanShape zero{0, 1, 1, 1};
    EXPECT_FALSE(zero.validate().empty());
    PlanShape ep{4, 1, 1, 3}; // ep must divide dp
    EXPECT_FALSE(ep.validate().empty());
}

TEST(CollPlan, DenseShapeEmitsTpPpDp)
{
    PlanShape shape{4, 2, 2, 1};
    ModelSpec model;
    model.moe_layers = 0;
    const auto plan = composeTrainingStep(shape, model);
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan[0].label, "tp_allreduce");
    EXPECT_EQ(plan[0].group_ranks, 2);
    EXPECT_EQ(plan[0].concurrent_groups, 8);
    // 4 allreduces per layer per microbatch.
    EXPECT_EQ(plan[0].invocations,
              4L * model.layers * model.microbatches);
    EXPECT_EQ(plan[1].label, "pp_send");
    EXPECT_EQ(plan[1].collective, Collective::PointToPoint);
    EXPECT_EQ(plan[1].invocations,
              2L * (shape.pp - 1) * model.microbatches);
    EXPECT_EQ(plan[2].label, "dp_allreduce");
    EXPECT_EQ(plan[2].group_ranks, 4);
    EXPECT_EQ(plan[2].invocations, 1);
    // DP payload: each of the tp*pp shards reduces its slice.
    EXPECT_DOUBLE_EQ(plan[2].payload_bytes,
                     model.parameters * model.bytes_per_grad / 4.0);
}

TEST(CollPlan, MoEAddsAllToAllAndAxesOfOneVanish)
{
    PlanShape shape{4, 1, 1, 2};
    ModelSpec model;
    model.moe_layers = 8;
    const auto plan = composeTrainingStep(shape, model);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].label, "ep_all_to_all");
    EXPECT_EQ(plan[0].collective, Collective::AllToAll);
    EXPECT_EQ(plan[0].group_ranks, 2);
    EXPECT_EQ(plan[0].invocations,
              4L * model.moe_layers * model.microbatches);
    EXPECT_EQ(plan[1].label, "dp_allreduce");
}

TEST(CollPlan, InvalidShapeDiesLoudly)
{
    EXPECT_DEATH(composeTrainingStep(PlanShape{0, 1, 1, 1}, {}),
                 "plan");
}

TEST(CollPlan, IterationSecondsIsInvocationWeightedSum)
{
    PlanShape shape{2, 2, 1, 1};
    ModelSpec model;
    const auto plan = composeTrainingStep(shape, model);
    double expect = 0.0;
    for (const auto &e : plan)
        expect += 1e-3 * static_cast<double>(e.invocations);
    const double got = iterationSeconds(
        plan, [](const PlannedCollective &) { return 1e-3; });
    EXPECT_NEAR(got, expect, 1e-12);
}

// --- Campaign determinism --------------------------------------------

CollCampaignConfig
smallCampaign()
{
    CollCampaignConfig cfg;
    cfg.designs = {testProfile("ws-512", 512), testProfile("conv", 8)};
    cfg.ranks = 8;
    cfg.payload_bytes = {1 << 12, 1 << 16};
    cfg.seed = 3;
    return cfg;
}

TEST(CollCampaign, CsvByteIdenticalAcrossJobs)
{
    const CollCampaignConfig cfg = smallCampaign();
    std::ostringstream serial, parallel;

    {
        const CollResult r = CollCampaign(cfg).run(nullptr);
        r.writeCsv(serial);
    }
    {
        exec::ThreadPool pool(4);
        const CollResult r = CollCampaign(cfg).run(&pool);
        r.writeCsv(parallel);
    }
    EXPECT_EQ(serial.str(), parallel.str());
    EXPECT_FALSE(serial.str().empty());
}

TEST(CollCampaign, CellsCoverTheGridAndCrossCheck)
{
    const CollCampaignConfig cfg = smallCampaign();
    const CollResult r = CollCampaign(cfg).run(nullptr);
    ASSERT_EQ(r.cells.size(),
              cfg.designs.size() * cfg.collectives.size() *
                  cfg.payload_bytes.size());
    for (const auto &cell : r.cells) {
        EXPECT_GT(cell.flow.seconds, 0.0);
        EXPECT_GT(cell.model.seconds, 0.0);
        EXPECT_EQ(cell.flow.failed_messages, 0);
        // Both fat trees here are single-switch (radix >= ranks), so
        // flow == model exactly; keep a loose envelope so the test
        // also documents the cross-check contract.
        EXPECT_NEAR(cell.flow.seconds / cell.model.seconds, 1.0, 0.01)
            << cell.design << " " << cell.collective;
    }
}

TEST(CollCampaign, RejectsBadConfigs)
{
    CollCampaignConfig empty = smallCampaign();
    empty.designs.clear();
    EXPECT_DEATH(CollCampaign{empty}, "axis");
    CollCampaignConfig one = smallCampaign();
    one.ranks = 1;
    EXPECT_DEATH(CollCampaign{one}, "ranks");
    CollCampaignConfig payload = smallCampaign();
    payload.payload_bytes = {0.0};
    EXPECT_DEATH(CollCampaign{payload}, "payload");
    // Power-of-two-only algorithms are rejected before any worker
    // starts.
    CollCampaignConfig odd = smallCampaign();
    odd.ranks = 6;
    EXPECT_DEATH(CollCampaign{odd}, "power-of-two");
}

TEST(CollCampaign, UnsupportedSpecDiesLoudly)
{
    EXPECT_DEATH(
        buildSchedule({Collective::ReduceScatter, Algorithm::Tree}, 8),
        "no");
}

// --- Telemetry -------------------------------------------------------

TEST(CollTelemetry, StepsReconcileExactlyWithTheResult)
{
    const flow::SwitchProfile profile = testProfile("t", 64);
    flow::DcnTopology topo =
        flow::DcnTopology::buildFatTree(8, 64, 200.0);
    const Schedule s = allReduceSchedule(Algorithm::Ring, 8);
    CollExecConfig cfg;
    cfg.telemetry = true;
    const CollExecResult r = executeOnDcn(s, 1 << 20, topo, profile, cfg);
    ASSERT_NE(r.telemetry, nullptr);
    const CollTelemetry &t = *r.telemetry;

    EXPECT_EQ(t.ranks, 8);
    ASSERT_EQ(static_cast<int>(t.steps.size()), r.steps);
    EXPECT_EQ(t.totalMessages(), r.messages);
    EXPECT_EQ(t.totalFailed(), r.failed_messages);
    // Step-order accumulation, so bit-identical — EXPECT_EQ, not
    // NEAR.
    EXPECT_EQ(t.totalBytes(), r.bytes_on_wire);

    // The Gantt data is populated and causally ordered: step k+1's
    // barrier releases when step k's slowest flow is done.
    double clock = 0.0;
    for (const CollTelemetry::Step &step : t.steps) {
        EXPECT_EQ(step.start_s, clock);
        EXPECT_GT(step.seconds, 0.0);
        EXPECT_GT(step.messages, 0);
        ASSERT_EQ(step.rank_busy_s.size(), 8u);
        ASSERT_EQ(step.rank_bytes.size(), 8u);
        double busiest = 0.0;
        for (double busy : step.rank_busy_s) {
            EXPECT_GE(busy, 0.0);
            busiest = std::max(busiest, busy);
        }
        // The step span is its slowest rank's slowest flow.
        EXPECT_LE(busiest, step.seconds + 1e-12);
        clock += step.seconds;
    }
    EXPECT_NEAR(clock, r.seconds, 1e-12 * std::max(1.0, r.seconds));
}

TEST(CollTelemetry, FaultedRunAccountsFailedMessages)
{
    const flow::SwitchProfile profile = testProfile("t", 8);
    flow::DcnTopology topo =
        flow::DcnTopology::buildFatTree(16, 8, 200.0);
    const Schedule s = allReduceSchedule(Algorithm::Ring, 16);
    CollExecConfig cfg;
    cfg.telemetry = true;
    cfg.fault.at_step = 1;
    cfg.fault.kill_switch = true;
    cfg.fault.id = topo.edgeOf(0);
    const CollExecResult r = executeOnDcn(s, 1 << 16, topo, profile, cfg);
    ASSERT_NE(r.telemetry, nullptr);
    ASSERT_GT(r.failed_messages, 0);
    EXPECT_EQ(r.telemetry->totalFailed(), r.failed_messages);
    EXPECT_EQ(r.telemetry->totalMessages(), r.messages);
    EXPECT_EQ(r.telemetry->totalBytes(), r.bytes_on_wire);
    // Failures only exist from the faulted step onward.
    for (const CollTelemetry::Step &step : r.telemetry->steps) {
        if (step.step < cfg.fault.at_step) {
            EXPECT_EQ(step.failed, 0) << "step " << step.step;
        }
    }
}

TEST(CollTelemetry, ResultsAreBitIdenticalWithTelemetryOnOrOff)
{
    const flow::SwitchProfile profile = testProfile("t", 64);
    const Schedule s = allToAllSchedule(8);

    flow::DcnTopology topo_off =
        flow::DcnTopology::buildFatTree(8, 64, 200.0);
    const CollExecResult off =
        executeOnDcn(s, 1 << 20, topo_off, profile);

    flow::DcnTopology topo_on =
        flow::DcnTopology::buildFatTree(8, 64, 200.0);
    CollExecConfig cfg;
    cfg.telemetry = true;
    const CollExecResult on =
        executeOnDcn(s, 1 << 20, topo_on, profile, cfg);

    EXPECT_EQ(off.telemetry, nullptr);
    ASSERT_NE(on.telemetry, nullptr);
    EXPECT_EQ(off.seconds, on.seconds);
    EXPECT_EQ(off.algbw_gbps, on.algbw_gbps);
    EXPECT_EQ(off.busbw_gbps, on.busbw_gbps);
    EXPECT_EQ(off.steps, on.steps);
    EXPECT_EQ(off.messages, on.messages);
    EXPECT_EQ(off.bytes_on_wire, on.bytes_on_wire);
    EXPECT_EQ(off.failed_messages, on.failed_messages);
}

TEST(CollTelemetry, ResultsAreBitIdenticalWithFlightRecorderOnOrOff)
{
    // The recorder's per-step SimEpoch marks must not perturb the
    // collective model: every result field compares exactly.
    const flow::SwitchProfile profile = testProfile("t", 64);
    const Schedule s = allToAllSchedule(8);

    obs::FlightRecorder::resetForTesting();
    flow::DcnTopology topo_off =
        flow::DcnTopology::buildFatTree(8, 64, 200.0);
    const CollExecResult off =
        executeOnDcn(s, 1 << 20, topo_off, profile);

    obs::FlightRecorder::enable(256);
    obs::FlightRecorder::attachCurrentThread("coll-test");
    flow::DcnTopology topo_on =
        flow::DcnTopology::buildFatTree(8, 64, 200.0);
    const CollExecResult on =
        executeOnDcn(s, 1 << 20, topo_on, profile);
    const std::uint64_t epochs =
        obs::FlightRecorder::kindCount(obs::EventKind::SimEpoch);
    obs::FlightRecorder::detachCurrentThread();
    obs::FlightRecorder::resetForTesting();

    EXPECT_GT(epochs, 0u) << "recorder saw no collective step marks";
    EXPECT_EQ(off.seconds, on.seconds);
    EXPECT_EQ(off.algbw_gbps, on.algbw_gbps);
    EXPECT_EQ(off.busbw_gbps, on.busbw_gbps);
    EXPECT_EQ(off.steps, on.steps);
    EXPECT_EQ(off.messages, on.messages);
    EXPECT_EQ(off.bytes_on_wire, on.bytes_on_wire);
    EXPECT_EQ(off.failed_messages, on.failed_messages);
}

TEST(CollTelemetry, DumpCsvIsWellFormedLongFormat)
{
    const flow::SwitchProfile profile = testProfile("t", 64);
    flow::DcnTopology topo =
        flow::DcnTopology::buildFatTree(8, 64, 200.0);
    const Schedule s = allReduceSchedule(Algorithm::Ring, 8);
    CollExecConfig cfg;
    cfg.telemetry = true;
    const CollExecResult r = executeOnDcn(s, 1 << 20, topo, profile, cfg);
    ASSERT_NE(r.telemetry, nullptr);

    std::ostringstream os;
    r.telemetry->dumpCsv(os);
    std::istringstream in(os.str());
    std::string line;
    bool saw_header = false;
    std::map<std::string, int> kinds;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (line == "record,step,scope,metric,value") {
            saw_header = true;
            continue;
        }
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 4)
            << line;
        kinds[line.substr(0, line.find(','))]++;
    }
    EXPECT_TRUE(saw_header);
    EXPECT_GT(kinds["step"], 0);
    EXPECT_GT(kinds["rank"], 0);
    EXPECT_GT(kinds["total"], 0);
}

TEST(CollTelemetry, PerRankTraceTracksDoNotCollide)
{
    const flow::SwitchProfile profile = testProfile("t", 64);
    flow::DcnTopology topo =
        flow::DcnTopology::buildFatTree(8, 64, 200.0);
    const Schedule s = allReduceSchedule(Algorithm::Ring, 8);
    obs::TraceEventSink trace;
    // Claim a track first, as wss coll does for its campaign lanes:
    // telemetry tracks must allocate around it, never on top of it.
    const int claimed = trace.allocateTrack("campaign");
    CollExecConfig cfg;
    cfg.telemetry = true;
    cfg.trace = &trace;
    cfg.trace_label = "coll-observed";
    executeOnDcn(s, 1 << 20, topo, profile, cfg);
    EXPECT_GE(trace.size(), 1u);
    EXPECT_GE(claimed, obs::TraceEventSink::kFirstAllocatedTrack);
    // The sink still owns the namespace: the claimed track survives
    // and fresh names land on fresh ids.
    EXPECT_EQ(trace.allocateTrack("campaign"), claimed);
    EXPECT_NE(trace.allocateTrack("fresh-after-run"), claimed);
}

} // namespace
} // namespace wss::coll
