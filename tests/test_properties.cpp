/**
 * @file
 * Unit tests for topology metrics: chiplet-count laws (Table VI),
 * bisection bandwidth, hop counts.
 */

#include <gtest/gtest.h>

#include "power/ssc.hpp"
#include "topology/clos.hpp"
#include "topology/clos3.hpp"
#include "topology/dragonfly.hpp"
#include "topology/mesh.hpp"
#include "topology/properties.hpp"

namespace wss::topology {
namespace {

TEST(TableVI, ChipletCountLaws)
{
    // Table VI: Clos 3(N/k), HC/MC (N/k)^2.
    EXPECT_EQ(closChipletCount(2048, 256), 24);
    EXPECT_EQ(hierarchicalCrossbarChiplets(2048, 256), 64);
    EXPECT_EQ(modularCrossbarChiplets(2048, 256), 64);
    EXPECT_EQ(closChipletCount(8192, 256), 96);
    EXPECT_EQ(hierarchicalCrossbarChiplets(8192, 256), 1024);
    EXPECT_EQ(modularCrossbarChiplets(8192, 256), 1024);
}

TEST(TableVI, CrossbarsScaleQuadratically)
{
    const auto at = [](std::int64_t n) {
        return hierarchicalCrossbarChiplets(n, 256);
    };
    EXPECT_EQ(at(4096) * 4, at(8192));
}

TEST(Bisection, FoldedClosIsHalfAggregate)
{
    const LogicalTopology topo =
        buildFoldedClos({1024, power::tomahawk5(1), 1});
    Rng rng(3);
    const Gbps bisection = estimateBisectionBandwidth(topo, rng, 12);
    // Ideal folded-Clos bisection: N/2 x 200G = 102400 Gbps. The
    // heuristic is an upper-bound estimate; accept 1x-1.3x.
    EXPECT_GE(bisection, 102400.0 * 0.99);
    EXPECT_LE(bisection, 102400.0 * 1.35);
}

TEST(Bisection, MeshIsMuchLowerThanClos)
{
    const power::SscConfig ssc = power::tomahawk5(1);
    const LogicalTopology clos = buildFoldedClos({1024, ssc, 1});
    const LogicalTopology mesh = buildMesh(3, 3, ssc); // 1152 ports
    Rng rng(5);
    const Gbps clos_bisection =
        estimateBisectionBandwidth(clos, rng, 8);
    const Gbps mesh_bisection =
        estimateBisectionBandwidth(mesh, rng, 8);
    // A port-balanced cut of a 3x3 mesh (4/5 nodes) crosses at most
    // 4 bundles of 32 links.
    EXPECT_LE(mesh_bisection, 4 * 32 * 200.0 + 1.0);
    EXPECT_LE(mesh_bisection, clos_bisection / 4.0);
}

TEST(Bisection, DegenerateCases)
{
    const power::SscConfig ssc = power::tomahawk5(1);
    const LogicalTopology single = buildMesh(1, 1, ssc);
    Rng rng(1);
    EXPECT_DOUBLE_EQ(estimateBisectionBandwidth(single, rng), 0.0);
}

TEST(HopCount, FoldedClosWorstCaseIsThreeChiplets)
{
    const LogicalTopology topo =
        buildFoldedClos({1024, power::tomahawk5(1), 1});
    EXPECT_EQ(worstCaseHopCount(topo), 3); // leaf - spine - leaf
    const double avg = averageHopCount(topo);
    EXPECT_GT(avg, 2.5); // most pairs cross the spine
    EXPECT_LT(avg, 3.0);
}

TEST(HopCount, SingleChipletFabric)
{
    const LogicalTopology topo =
        buildFoldedClos({128, power::tomahawk5(1), 1});
    // One leaf, one spine; all ports are on the single leaf.
    EXPECT_EQ(worstCaseHopCount(topo), 1);
    EXPECT_DOUBLE_EQ(averageHopCount(topo), 1.0);
}

TEST(HopCount, DisaggregationAddsAboutOnePercent)
{
    // Section V.B: leaf disaggregation increases average hop latency
    // by roughly 1% (same-leaf pairs become rarer).
    const power::SscConfig ssc = power::tomahawk5(1);
    const double homo = averageHopCount(buildFoldedClos({2048, ssc, 1}));
    const double hetero =
        averageHopCount(buildFoldedClos({2048, ssc, 2}));
    EXPECT_GT(hetero, homo);
    EXPECT_LT((hetero - homo) / homo, 0.03);
}

TEST(HopCount, MeshGrowsWithDiameter)
{
    const power::SscConfig ssc = power::tomahawk5(1);
    EXPECT_EQ(worstCaseHopCount(buildMesh(2, 2, ssc)), 3);
    EXPECT_EQ(worstCaseHopCount(buildMesh(4, 4, ssc)), 7);
    EXPECT_LT(averageHopCount(buildMesh(2, 2, ssc)),
              averageHopCount(buildMesh(4, 4, ssc)));
}

TEST(Dragonfly, MinimumGroupCountIsConnected)
{
    // Two groups is the smallest legal dragonfly; every property
    // helper must still work on it.
    const power::SscConfig ssc = power::tomahawk5(1);
    const LogicalTopology topo = buildDragonfly(2, ssc);
    EXPECT_EQ(topo.nodeCount(), 2 * kDragonflyGroupSize);
    const int worst = worstCaseHopCount(topo);
    EXPECT_GE(worst, 1);
    // Local clique + at most one global crossing + local clique.
    EXPECT_LE(worst, 3);
    Rng rng(11);
    EXPECT_GT(estimateBisectionBandwidth(topo, rng, 8), 0.0);
    EXPECT_EQ(dragonflyPortCount(2, ssc.radix),
              2 * kDragonflyGroupSize *
                  static_cast<std::int64_t>(ssc.radix / 4));
}

TEST(Dragonfly, SingleGroupDiesLoudly)
{
    // A one-group "dragonfly" is degenerate (no global links to
    // size); the builder must refuse rather than emit a clique.
    const power::SscConfig ssc = power::tomahawk5(1);
    EXPECT_DEATH(buildDragonfly(1, ssc), "at least 2 groups");
    EXPECT_DEATH(buildDragonfly(0, ssc), "at least 2 groups");
    EXPECT_DEATH(buildDragonfly(-3, ssc), "at least 2 groups");
}

TEST(Dragonfly, GroupCountBeyondGlobalBudgetDiesLoudly)
{
    // Radix 16: 5 global links per router, 40 per group — 42 groups
    // need 41 distinct peers and exceed the budget.
    const power::SscConfig ssc = power::scaledSsc(16, 200.0);
    EXPECT_DEATH(buildDragonfly(42, ssc), "global-link budget");
}

TEST(TableVI, Clos3ChipletCountNonPowerOfTwoRadix)
{
    // The 5N/k law is exact at whole pods, for any even radix — not
    // just powers of two. Radix 24: pods hold 144 ports.
    EXPECT_EQ(clos3ChipletCount(288, 24), 5 * 288 / 24);
    EXPECT_EQ(clos3ChipletCount(720, 24), 5 * 720 / 24);
    // Radix 96: one pod is 2304 ports.
    EXPECT_EQ(clos3ChipletCount(4608, 96), 5 * 4608 / 96);
    // Partial final pods round the aggregation/spine layers up; the
    // count must match what the builder actually instantiates.
    for (const int radix : {12, 24, 40}) {
        const power::SscConfig ssc =
            power::scaledSsc(radix, 200.0);
        const std::int64_t half = radix / 2;
        for (const std::int64_t ports :
             {half * 3, half * half, half * half * 2 + half}) {
            const LogicalTopology topo =
                buildThreeLevelClos(ports, ssc);
            EXPECT_EQ(topo.nodeCount(),
                      clos3ChipletCount(ports, radix))
                << "radix " << radix << ", ports " << ports;
        }
    }
}

} // namespace
} // namespace wss::topology
