/**
 * @file
 * Tests for the cycle-accurate fabric simulator: channel semantics,
 * router flow control, network routing, end-to-end latency and
 * conservation properties.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "power/ssc.hpp"
#include "sim/channel.hpp"
#include "sim/load_sweep.hpp"
#include "sim/simulator.hpp"
#include "topology/clos.hpp"

namespace wss::sim {
namespace {

TEST(DelayLine, DeliversAfterExactLatency)
{
    DelayLine<int> line(3);
    line.push(10, 42);
    EXPECT_FALSE(line.pop(11).has_value());
    EXPECT_FALSE(line.pop(12).has_value());
    const auto v = line.pop(13);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
    EXPECT_TRUE(line.empty());
}

TEST(DelayLine, IsFullyPipelined)
{
    DelayLine<int> line(2);
    line.push(0, 1);
    line.push(1, 2);
    line.push(2, 3);
    EXPECT_EQ(line.inFlight(), 3u);
    EXPECT_EQ(*line.pop(2), 1);
    EXPECT_EQ(*line.pop(3), 2);
    EXPECT_EQ(*line.pop(4), 3);
}

TEST(DelayLine, RejectsDoublePushPerCycle)
{
    DelayLine<int> line(1);
    line.push(5, 1);
    EXPECT_DEATH(line.push(5, 2), "two pushes");
}

/// A tiny fabric: 8 ports over 2 leaves + 1 spine of radix-8 SSCs.
topology::LogicalTopology
tinyClos()
{
    return topology::buildFoldedClos(
        {8, power::scaledSsc(8, 200.0), 1});
}

NetworkSpec
tinySpec()
{
    NetworkSpec spec;
    spec.vcs = 2;
    spec.buffer_per_port = 8;
    spec.rc_delay_ingress = 2;
    spec.rc_delay_transit = 2;
    spec.pipeline_delay = 2;
    spec.terminal_link_latency = 3;
    spec.internal_link_latency = 1;
    return spec;
}

TEST(Network, BuildsTheExpectedShape)
{
    const auto topo = tinyClos();
    const Network net(topo, tinySpec(), 1);
    EXPECT_EQ(net.terminalCount(), 8);
    EXPECT_EQ(net.routerCount(), 3);
    // Terminals 0-3 on leaf 0, 4-7 on leaf 1.
    EXPECT_EQ(net.routerOfTerminal(0), net.routerOfTerminal(3));
    EXPECT_NE(net.routerOfTerminal(0), net.routerOfTerminal(4));
}

TEST(Network, SingleFlitCrossesWithExactZeroLoadLatency)
{
    const auto topo = tinyClos();
    Network net(topo, tinySpec(), 1);

    Flit flit;
    flit.packet_id = 1;
    flit.src = 0;
    flit.dst = 5; // other leaf: leaf-spine-leaf
    flit.head = flit.tail = true;
    flit.created = 0;
    flit.vc = 0;
    ASSERT_TRUE(net.tryInject(0, 0, flit));

    Cycle arrival = -1;
    for (Cycle now = 0; now < 100 && arrival < 0; ++now) {
        for (int t = 0; t < net.terminalCount(); ++t) {
            if (auto got = net.eject(t, now)) {
                EXPECT_EQ(t, 5);
                EXPECT_EQ(got->hops, 3);
                arrival = now;
            }
        }
        net.step(now);
    }
    // terminal link 3 + 3 routers x (rc 2 + pipe 2) + 2 internal hops
    // + terminal link 3 = 20.
    EXPECT_EQ(arrival, 20);
}

TEST(Network, SameLeafTrafficSkipsTheSpine)
{
    const auto topo = tinyClos();
    Network net(topo, tinySpec(), 1);
    Flit flit;
    flit.src = 0;
    flit.dst = 1; // same leaf
    flit.head = flit.tail = true;
    flit.vc = 0;
    ASSERT_TRUE(net.tryInject(0, 0, flit));
    Cycle arrival = -1;
    int hops = 0;
    for (Cycle now = 0; now < 50 && arrival < 0; ++now) {
        for (int t = 0; t < net.terminalCount(); ++t) {
            if (auto got = net.eject(t, now)) {
                arrival = now;
                hops = got->hops;
            }
        }
        net.step(now);
    }
    EXPECT_EQ(hops, 1);
    EXPECT_EQ(arrival, 3 + 4 + 3); // link + one router + link
}

TEST(Network, InjectionRespectsCredits)
{
    const auto topo = tinyClos();
    NetworkSpec spec = tinySpec();
    spec.buffer_per_port = 2;
    Network net(topo, spec, 1);
    // Without stepping the network no credits return, so only
    // buffer_per_port flits fit (one injection attempt per cycle).
    int accepted = 0;
    for (int i = 0; i < 10; ++i) {
        Flit flit;
        flit.src = 0;
        flit.dst = 4;
        flit.head = flit.tail = true;
        flit.vc = 0;
        if (net.tryInject(0, i, flit))
            ++accepted;
        net.eject(0, i); // keep the credit line drained
    }
    EXPECT_EQ(accepted, 2);
}

TEST(Simulator, ConservesPacketsAtModerateLoad)
{
    const auto topo = tinyClos();
    Network net(topo, tinySpec(), 2);
    SyntheticWorkload workload(uniformTraffic(8), 0.3, 2);
    SimConfig cfg;
    cfg.warmup = 500;
    cfg.measure = 3000;
    cfg.drain_limit = 20000;
    cfg.seed = 3;
    Simulator sim(net, workload, cfg);
    const SimResult result = sim.run();
    EXPECT_TRUE(result.stable);
    EXPECT_EQ(result.packets_finished, result.packets_measured);
    EXPECT_GT(result.packets_measured, 500);
    EXPECT_NEAR(result.accepted, 0.3, 0.05);
    EXPECT_EQ(net.flitsInFlight(), 0);
}

TEST(Simulator, LatencyRisesWithLoad)
{
    const auto topo = tinyClos();
    const NetworkSpec spec = tinySpec();
    SimConfig cfg;
    cfg.warmup = 500;
    cfg.measure = 2500;
    cfg.seed = 5;
    const auto sweep = sweepLoad(
        [&] { return std::make_unique<Network>(topo, spec, 9); },
        [&](double rate) {
            return std::make_unique<SyntheticWorkload>(
                uniformTraffic(8), rate, 1);
        },
        {0.05, 0.4, 0.95}, cfg);
    ASSERT_EQ(sweep.points.size(), 3u);
    EXPECT_LT(sweep.points[0].avg_latency, sweep.points[1].avg_latency);
    EXPECT_LT(sweep.points[1].avg_latency, sweep.points[2].avg_latency);
    EXPECT_GT(sweep.saturation_throughput, 0.3);
}

TEST(Simulator, MultiFlitPacketsArriveIntact)
{
    const auto topo = tinyClos();
    Network net(topo, tinySpec(), 4);
    SyntheticWorkload workload(uniformTraffic(8), 0.4, 4);
    SimConfig cfg;
    cfg.warmup = 200;
    cfg.measure = 2000;
    cfg.seed = 7;
    Simulator sim(net, workload, cfg);
    const SimResult result = sim.run();
    EXPECT_TRUE(result.stable);
    // Accepted counts flits; at rate 0.4 flits/cycle it should match.
    EXPECT_NEAR(result.accepted, 0.4, 0.06);
}

TEST(Simulator, ProprietaryRoutingCutsLatency)
{
    // Fig. 22's mechanism in miniature: shrinking the transit RC
    // delay lowers zero-load latency.
    const auto topo = tinyClos();
    NetworkSpec base = tinySpec();
    base.rc_delay_ingress = 4;
    base.rc_delay_transit = 4;
    NetworkSpec prop = base;
    prop.rc_delay_ingress = 2;
    prop.rc_delay_transit = 1;

    SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 1500;
    cfg.seed = 11;
    auto run = [&](const NetworkSpec &spec) {
        Network net(topo, spec, 13);
        SyntheticWorkload workload(uniformTraffic(8), 0.05, 1);
        Simulator sim(net, workload, cfg);
        return sim.run().avg_packet_latency;
    };
    const double baseline = run(base);
    const double proprietary = run(prop);
    // Three routers: ingress saves 2, transit saves 3 each: ~8 cycles
    // at cross-leaf distance, less for same-leaf pairs.
    EXPECT_GT(baseline - proprietary, 4.0);
}

TEST(Simulator, SaturatedRunIsFlaggedUnstable)
{
    // Tornado traffic at full rate through one spine saturates; the
    // drain cap should trip and flag the run.
    const auto topo = tinyClos();
    NetworkSpec spec = tinySpec();
    Network net(topo, spec, 17);
    SyntheticWorkload workload(tornadoTraffic(8), 1.0, 1);
    SimConfig cfg;
    cfg.warmup = 200;
    cfg.measure = 2000;
    cfg.drain_limit = 300; // deliberately short
    cfg.seed = 19;
    Simulator sim(net, workload, cfg);
    const SimResult result = sim.run();
    EXPECT_FALSE(result.stable);
    EXPECT_LT(result.packets_finished, result.packets_measured);
}


TEST(Network, LinkUtilizationTracksTraffic)
{
    const auto topo = tinyClos();
    Network net(topo, tinySpec(), 21);
    SyntheticWorkload workload(uniformTraffic(8), 0.4, 1);
    SimConfig cfg;
    cfg.warmup = 200;
    cfg.measure = 2000;
    cfg.seed = 23;
    Simulator sim(net, workload, cfg);
    const SimResult result = sim.run();
    ASSERT_TRUE(result.stable);

    const auto util = net.linkUtilization(2500);
    ASSERT_EQ(util.size(), topo.links().size());
    double total = 0.0;
    for (double u : util) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
        total += u;
    }
    // At 0.4 offered with ~3/4 of pairs crossing the spine, the
    // uplinks must carry real traffic.
    EXPECT_GT(total, 0.1);
}

TEST(Network, IdleFabricHasZeroUtilization)
{
    const auto topo = tinyClos();
    Network net(topo, tinySpec(), 25);
    for (Cycle now = 0; now < 100; ++now) {
        for (int t = 0; t < net.terminalCount(); ++t)
            net.eject(t, now);
        net.step(now);
    }
    for (double u : net.linkUtilization(100))
        EXPECT_DOUBLE_EQ(u, 0.0);
}

TEST(Traffic, PatternsStayInRange)
{
    Rng rng(23);
    for (const char *name :
         {"uniform", "bitcomp", "bitrev", "shuffle", "tornado",
          "asymmetric"}) {
        const auto pattern = makeTraffic(name, 64);
        for (int src = 0; src < 64; ++src) {
            for (int i = 0; i < 8; ++i) {
                const int dst = pattern->destination(src, rng);
                EXPECT_GE(dst, 0) << name;
                EXPECT_LT(dst, 64) << name;
            }
        }
    }
}

TEST(Traffic, UniformNeverSendsToSelf)
{
    Rng rng(29);
    const auto pattern = uniformTraffic(16);
    for (int src = 0; src < 16; ++src)
        for (int i = 0; i < 100; ++i)
            EXPECT_NE(pattern->destination(src, rng), src);
}

TEST(Traffic, TransposeAndBitCompAreInvolutions)
{
    Rng rng(31);
    const auto transpose = transposeTraffic(64);
    const auto bitcomp = bitComplementTraffic(64);
    for (int src = 0; src < 64; ++src) {
        const int t = transpose->destination(src, rng);
        EXPECT_EQ(transpose->destination(t, rng), src);
        const int b = bitcomp->destination(src, rng);
        EXPECT_EQ(bitcomp->destination(b, rng), src);
    }
}

TEST(Traffic, ShuffleRotatesBits)
{
    Rng rng(37);
    const auto shuffle = shuffleTraffic(8);
    EXPECT_EQ(shuffle->destination(0b001, rng), 0b010);
    EXPECT_EQ(shuffle->destination(0b100, rng), 0b001);
}

TEST(Traffic, AsymmetricConcentratesOnHotSet)
{
    Rng rng(41);
    const auto pattern = asymmetricTraffic(64, 4, 0.5);
    int hot = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        hot += pattern->destination(32, rng) < 4;
    // 50% hotspot plus the uniform share of the first 4 terminals.
    EXPECT_NEAR(static_cast<double>(hot) / draws, 0.53, 0.03);
}

TEST(Traffic, FactoryRejectsUnknownNames)
{
    EXPECT_DEATH(makeTraffic("nope", 64), "unknown traffic");
}

TEST(LoadSweep, ZeroLoadLatencyComesFromTheMinimumRatePoint)
{
    // Points deliberately out of rate order: front() is NOT the
    // lowest-load point.
    std::vector<LoadPoint> points(3);
    points[0] = {0.5, 0.5, 40.0, 80.0, true};
    points[1] = {0.05, 0.05, 21.0, 30.0, true};
    points[2] = {0.9, 0.7, 200.0, 900.0, false};
    const auto sweep = finalizeSweep(points);
    EXPECT_DOUBLE_EQ(sweep.zero_load_latency, 21.0);
}

TEST(LoadSweep, SaturationThroughputIgnoresUnstablePoints)
{
    // The saturated run reports the highest accepted value (an
    // artifact of the drain window), but only stable points count.
    std::vector<LoadPoint> points(3);
    points[0] = {0.2, 0.2, 25.0, 40.0, true};
    points[1] = {0.6, 0.58, 60.0, 150.0, true};
    points[2] = {1.0, 0.72, 500.0, 2000.0, false};
    const auto sweep = finalizeSweep(points);
    EXPECT_DOUBLE_EQ(sweep.saturation_throughput, 0.58);
}

TEST(LoadSweep, AllUnstableFallsBackWithMaxAccepted)
{
    std::vector<LoadPoint> points(2);
    points[0] = {0.8, 0.55, 300.0, 1000.0, false};
    points[1] = {1.0, 0.6, 500.0, 2000.0, false};
    const auto sweep = finalizeSweep(points);
    EXPECT_DOUBLE_EQ(sweep.saturation_throughput, 0.6);
}

TEST(LoadSweep, LinearRatesRejectNonFiniteAndNonPositive)
{
    EXPECT_DEATH(linearRates(std::nan(""), 4), "finite");
    EXPECT_DEATH(linearRates(
                     std::numeric_limits<double>::infinity(), 4),
                 "finite");
    EXPECT_DEATH(linearRates(-1.0, 4), "finite");
    EXPECT_DEATH(linearRates(0.9, 0), "finite");
}

TEST(LoadSweep, GeometricRatesSpanExactlyAndMonotonically)
{
    const auto rates = geometricRates(0.01, 0.9, 7);
    ASSERT_EQ(rates.size(), 7u);
    EXPECT_DOUBLE_EQ(rates.front(), 0.01);
    EXPECT_DOUBLE_EQ(rates.back(), 0.9);
    for (std::size_t i = 1; i < rates.size(); ++i)
        EXPECT_GT(rates[i], rates[i - 1]);
    // Constant ratio between neighbours (geometric spacing).
    const double ratio = rates[1] / rates[0];
    for (std::size_t i = 2; i < rates.size(); ++i)
        EXPECT_NEAR(rates[i] / rates[i - 1], ratio, 1e-9);
}

TEST(LoadSweep, GeometricRatesEdgeCases)
{
    const auto single = geometricRates(0.1, 0.8, 1);
    ASSERT_EQ(single.size(), 1u);
    EXPECT_DOUBLE_EQ(single.front(), 0.8);

    EXPECT_DEATH(geometricRates(0.0, 0.9, 4), "min_rate");
    EXPECT_DEATH(geometricRates(0.9, 0.1, 4), "min_rate");
    EXPECT_DEATH(geometricRates(std::nan(""), 0.9, 4), "min_rate");
}

TEST(Workload, RejectsOverUnityPacketRate)
{
    EXPECT_DEATH(
        SyntheticWorkload(uniformTraffic(8), 1.5, 1), "exceeds");
}

} // namespace
} // namespace wss::sim
