/**
 * @file
 * Unit tests for the power models: SSC catalog, the quadratic
 * radix-power law (Fig. 15), Vdd/frequency link scaling (Section
 * V.A), and whole-switch power accounting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "power/link_power.hpp"
#include "power/radix_power_model.hpp"
#include "power/ssc.hpp"
#include "power/switch_power.hpp"

namespace wss::power {
namespace {

TEST(Ssc, Tomahawk5ConfigurationsShareTheDie)
{
    const SscConfig c1 = tomahawk5(1);
    const SscConfig c2 = tomahawk5(2);
    const SscConfig c3 = tomahawk5(3);
    EXPECT_EQ(c1.radix, 256);
    EXPECT_EQ(c2.radix, 128);
    EXPECT_EQ(c3.radix, 64);
    EXPECT_DOUBLE_EQ(c1.totalBandwidth(), 51200.0);
    EXPECT_DOUBLE_EQ(c2.totalBandwidth(), 51200.0);
    EXPECT_DOUBLE_EQ(c3.totalBandwidth(), 51200.0);
    EXPECT_DOUBLE_EQ(c1.area, 800.0);
    EXPECT_DOUBLE_EQ(c1.core_power, 400.0);
}

TEST(Ssc, EdgeLengthIsSquareRootOfArea)
{
    EXPECT_NEAR(tomahawk5(1).edgeLength(), std::sqrt(800.0), 1e-12);
}

TEST(Ssc, CatalogNormalizationTracksQuadratic)
{
    // Fig. 15: after 5 nm normalization the series should sit near
    // P(k) = 400 (k/256)^2 within ~25%.
    for (const auto &ssc : tomahawkSeries()) {
        const double expected =
            400.0 * ssc.radix / 256.0 * ssc.radix / 256.0;
        EXPECT_NEAR(ssc.corePowerAt5nm(), expected, expected * 0.25)
            << ssc.name;
    }
}

TEST(Ssc, TeralynxSeriesIsDistinctButSimilar)
{
    const auto tl = teralynxSeries();
    ASSERT_EQ(tl.size(), 3u);
    EXPECT_GT(tl[2].corePowerAt5nm(), tl[1].corePowerAt5nm());
    EXPECT_GT(tl[1].corePowerAt5nm(), tl[0].corePowerAt5nm());
}

TEST(Ssc, ScaledSscReproducesReferenceAnchors)
{
    const SscConfig full = scaledSsc(256, 200.0);
    EXPECT_NEAR(full.area, 800.0, 1e-9);
    EXPECT_NEAR(full.core_power, 400.0, 1e-9);

    const SscConfig half = scaledSsc(128, 200.0);
    EXPECT_NEAR(half.core_power, 100.0, 1e-9); // quadratic: /4
    const SscConfig quarter = scaledSsc(64, 200.0);
    EXPECT_NEAR(quarter.core_power, 25.0, 1e-9); // quadratic: /16
    EXPECT_LT(quarter.area, half.area);
    EXPECT_LT(half.area, full.area);
}

TEST(Ssc, ScaledSscNamesDefaultSensibly)
{
    EXPECT_EQ(scaledSsc(64, 200.0).name, "SSC-64x200G");
    EXPECT_EQ(scaledSsc(64, 200.0, "custom").name, "custom");
}

TEST(RadixPowerModel, QuadraticInRadixLinearInRate)
{
    const RadixPowerModel model;
    const Watts base = model.corePower(256, 200.0);
    EXPECT_NEAR(model.corePower(128, 200.0), base / 4.0, 1e-9);
    EXPECT_NEAR(model.corePower(64, 200.0), base / 16.0, 1e-9);
    EXPECT_NEAR(model.corePower(256, 400.0), base * 2.0, 1e-9);
    EXPECT_NEAR(model.corePower(512, 200.0), base * 4.0, 1e-9);
}

TEST(RadixPowerModel, DisaggregationSavesPower)
{
    // The heterogeneous-switch insight: m smaller switches beat one
    // big one by ~m-fold.
    const RadixPowerModel model;
    const Watts one = model.corePower(256, 200.0);
    const Watts four = 4.0 * model.corePower(64, 200.0);
    EXPECT_NEAR(four, one / 4.0, 1e-9);
}

TEST(QuadraticFitter, RecoversExactQuadratic)
{
    // Synthesize catalog points on P(k) = 0.005 k^2 + 0.3 k + 7 at
    // 5 nm (factor 1) and expect exact coefficient recovery.
    std::vector<SscConfig> catalog;
    for (int k : {32, 64, 128, 256}) {
        SscConfig ssc;
        ssc.radix = k;
        ssc.line_rate = 200.0;
        ssc.core_power = 0.005 * k * k + 0.3 * k + 7.0;
        ssc.node = tech::ProcessNode::N5;
        catalog.push_back(ssc);
    }
    const QuadraticFit fit = fitQuadratic(catalog);
    EXPECT_NEAR(fit.a, 0.005, 1e-9);
    EXPECT_NEAR(fit.b, 0.3, 1e-7);
    EXPECT_NEAR(fit.c, 7.0, 1e-5);
    EXPECT_NEAR(fit(100.0), 0.005 * 1e4 + 30.0 + 7.0, 1e-6);
}

TEST(QuadraticFitter, CatalogFitHasPositiveCurvature)
{
    EXPECT_GT(fitQuadratic(tomahawkSeries()).a, 0.0);
    EXPECT_GT(fitQuadratic(teralynxSeries()).a, 0.0);
}

TEST(LinkPower, UnitSpeedupIsIdentity)
{
    EXPECT_NEAR(vddForSpeedup(1.0), kDefaultVdd, 1e-9);
    EXPECT_NEAR(energyPerBitScale(1.0), 1.0, 1e-9);
}

TEST(LinkPower, DoubleSpeedMatchesClosedForm)
{
    // (V-0.3)^2/V = 2*(0.4)^2/0.7 solves to V = 0.9637 V, so
    // energy/bit scales by (0.9637/0.7)^2 = 1.895.
    EXPECT_NEAR(vddForSpeedup(2.0), 0.9637, 5e-4);
    EXPECT_NEAR(energyPerBitScale(2.0), 1.895, 2e-3);
}

TEST(LinkPower, VddSatisfiesTheScalingRelation)
{
    for (double s : {0.5, 1.5, 2.0, 3.0, 4.0}) {
        const Volts v = vddForSpeedup(s);
        const double lhs = (v - kDefaultVth) * (v - kDefaultVth) / v;
        const double rhs = s * (kDefaultVdd - kDefaultVth) *
                           (kDefaultVdd - kDefaultVth) / kDefaultVdd;
        EXPECT_NEAR(lhs, rhs, 1e-9) << "speedup " << s;
    }
}

TEST(LinkPower, EnergyScaleIsMonotoneInSpeedup)
{
    double prev = 0.0;
    for (double s : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        const double e = energyPerBitScale(s);
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(LinkPower, OverclockWsiScalesFields)
{
    const auto base = tech::siIf();
    const auto fast = overclockWsi(base, 2.0);
    EXPECT_DOUBLE_EQ(fast.totalBandwidthDensity(),
                     2.0 * base.totalBandwidthDensity());
    EXPECT_NEAR(fast.energy_per_bit,
                base.energy_per_bit * energyPerBitScale(2.0), 1e-9);
    EXPECT_NE(fast.name, base.name);
}

TEST(LinkPower, SiIf2xPresetMatchesDerivation)
{
    const auto preset = tech::siIf2x();
    const auto derived = overclockWsi(tech::siIf(), 2.0);
    EXPECT_NEAR(preset.energy_per_bit, derived.energy_per_bit, 0.005);
    EXPECT_DOUBLE_EQ(preset.totalBandwidthDensity(),
                     derived.totalBandwidthDensity());
}

TEST(SwitchPower, BreakdownArithmetic)
{
    SwitchPowerBreakdown p;
    p.ssc_core = 38400.0;
    p.internal_io = 11000.0;
    p.external_io = 8200.0;
    EXPECT_DOUBLE_EQ(p.total(), 57600.0);
    EXPECT_NEAR(p.ioFraction(), 19200.0 / 57600.0, 1e-12);
    EXPECT_NEAR(p.powerDensity(300.0), 57600.0 / 90000.0, 1e-12);
}

TEST(SwitchPower, InternalIoPowerPerBit)
{
    // 1e6 Gbps of crossings at 0.3 pJ/b = 300 W.
    EXPECT_NEAR(internalIoPower(1e6, tech::siIf()), 300.0, 1e-9);
}

TEST(SwitchPower, ExternalIoPowerPerPort)
{
    // 8192 ports x 200G at 5 pJ/b = 8192 W.
    EXPECT_NEAR(externalIoPower(8192, 200.0, tech::opticalIo()),
                8192.0, 1e-9);
}

TEST(SwitchPower, EmptyBreakdownIsSafe)
{
    SwitchPowerBreakdown p;
    EXPECT_DOUBLE_EQ(p.total(), 0.0);
    EXPECT_DOUBLE_EQ(p.ioFraction(), 0.0);
}

} // namespace
} // namespace wss::power
