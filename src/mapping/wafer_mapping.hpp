/**
 * @file
 * Logical-to-physical mapping and channel-load accounting — paper
 * Section IV.A.
 *
 * A WaferMapping assigns each logical-topology node to an interior
 * floorplan site. Every logical link bundle is routed over the
 * physical mesh with X-then-Y dimension-order routing, using
 * intermediate chiplets as feedthrough repeaters; external port
 * traffic (for periphery I/O schemes) is split equally four ways and
 * routed straight to the I/O ring. The per-edge accumulated load
 * (Gbps per direction) is the paper's C(M) metric: its maximum over
 * edges is what Algorithm 1 minimizes, and dividing the edge
 * bandwidth capacity by it gives the "available internal I/O
 * bandwidth per port" of Fig. 19.
 */

#ifndef WSS_MAPPING_WAFER_MAPPING_HPP
#define WSS_MAPPING_WAFER_MAPPING_HPP

#include <vector>

#include "mapping/floorplan.hpp"
#include "topology/logical_topology.hpp"
#include "util/rng.hpp"

namespace wss::mapping {

/**
 * One placement of a logical topology onto a wafer floorplan, with
 * incrementally maintained per-edge channel loads.
 */
class WaferMapping
{
  public:
    /**
     * @param topo  the logical fabric (must outlive the mapping)
     * @param fp    the floorplan (must outlive the mapping); needs
     *              at least as many interior sites as topo has nodes
     * @param external_via_mesh  route external-port traffic through
     *              the mesh to the I/O ring (periphery I/O schemes);
     *              requires fp.hasIoRing() when any node has ports
     */
    WaferMapping(const topology::LogicalTopology &topo,
                 const WaferFloorplan &fp, bool external_via_mesh);

    /// Place node i on interior site i (for natively grid-shaped
    /// topologies such as mesh / flattened butterfly).
    void assignIdentity();

    /// Place nodes on a random subset of interior sites.
    void assignRandom(Rng &rng);

    /// Place nodes per explicit site assignment (one entry per node).
    void assign(const std::vector<int> &node_to_site);

    const topology::LogicalTopology &topology() const { return *topo_; }
    const WaferFloorplan &floorplan() const { return *fp_; }
    bool externalViaMesh() const { return external_via_mesh_; }

    /// Site of node @p node.
    int siteOf(int node) const { return node_site_[node]; }
    /// Node on interior site @p site, or -1.
    int nodeAt(int site) const { return site_node_[site]; }

    /// Per-edge load, Gbps per direction, indexed by floorplan edge id.
    const std::vector<double> &edgeLoads() const { return edge_load_; }

    /// C(M): the maximum edge load (Gbps per direction).
    double maxEdgeLoad() const;

    /// Count of edges within @p tolerance (relative) of the maximum.
    int hotEdgeCount(double tolerance = 0.01) const;

    /// Sum of loads over all edges (Gbps); the internal I/O power is
    /// proportional to this total provisioned crossing bandwidth.
    double totalCrossingBandwidth() const;

    /// Mean mesh hops per logical link (bundle-bandwidth weighted).
    double averageLinkHops() const;

    /**
     * Swap the placements of two nodes, or move a node to an empty
     * interior site (pass the site's node as -1 via swapWithSite).
     * Loads are updated incrementally.
     */
    void swapNodes(int node_a, int node_b);

    /// Move @p node to empty interior site @p site.
    void moveNode(int node, int site);

    /**
     * Nodes are interchangeable when they share SSC type, external
     * port count, and an identical bundle multiset; swapping such a
     * pair cannot change any load. Key equality identifies this.
     */
    std::size_t equivalenceKey(int node) const
    {
        return equivalence_key_[node];
    }

    /// Recompute all loads from scratch (also a test oracle for the
    /// incremental updates).
    void rebuildLoads();

  private:
    /// Add (+1) or remove (-1) node @p node's load contributions.
    void applyNode(int node, double sign);
    /// Add/remove one bundle's route between two placed sites.
    void applyRoute(int site_a, int site_b, double bandwidth);
    /// Add/remove a node's external-port traffic at its site.
    void applyExternal(int site, double bandwidth);

    void computeEquivalenceKeys();

    const topology::LogicalTopology *topo_;
    const WaferFloorplan *fp_;
    bool external_via_mesh_;

    std::vector<int> node_site_;
    std::vector<int> site_node_;
    std::vector<double> edge_load_;
    /// Bundles incident to each node (indices into topo links).
    std::vector<std::vector<int>> node_bundles_;
    std::vector<std::size_t> equivalence_key_;
};

} // namespace wss::mapping

#endif // WSS_MAPPING_WAFER_MAPPING_HPP
