#include "mapping/wafer_mapping.hpp"

#include <algorithm>
#include <numeric>

#include "util/logging.hpp"

namespace wss::mapping {

WaferMapping::WaferMapping(const topology::LogicalTopology &topo,
                           const WaferFloorplan &fp,
                           bool external_via_mesh)
    : topo_(&topo), fp_(&fp), external_via_mesh_(external_via_mesh)
{
    if (topo.nodeCount() > fp.interiorCount()) {
        fatal("WaferMapping: topology has ", topo.nodeCount(),
              " nodes but the floorplan offers only ",
              fp.interiorCount(), " interior sites");
    }
    if (external_via_mesh_ && !fp.hasIoRing() &&
        topo.totalExternalPorts() > 0) {
        fatal("WaferMapping: external traffic routed via mesh needs an "
              "I/O ring in the floorplan");
    }

    node_site_.assign(topo.nodeCount(), -1);
    site_node_.assign(fp.interiorCount(), -1);
    edge_load_.assign(fp.edgeCount(), 0.0);

    node_bundles_.resize(topo.nodeCount());
    const auto &links = topo.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
        node_bundles_[links[i].a].push_back(static_cast<int>(i));
        node_bundles_[links[i].b].push_back(static_cast<int>(i));
    }
    computeEquivalenceKeys();
}

void
WaferMapping::computeEquivalenceKeys()
{
    equivalence_key_.resize(topo_->nodeCount());
    const auto &links = topo_->links();
    for (int n = 0; n < topo_->nodeCount(); ++n) {
        // Canonical neighbour multiset: sorted (other node, mult).
        std::vector<std::pair<int, int>> nbrs;
        nbrs.reserve(node_bundles_[n].size());
        for (int b : node_bundles_[n]) {
            const auto &link = links[b];
            nbrs.emplace_back(link.a == n ? link.b : link.a,
                              link.multiplicity);
        }
        std::sort(nbrs.begin(), nbrs.end());

        std::size_t h = std::hash<int>{}(topo_->nodes()[n].ssc_type);
        auto mix = [&h](std::size_t v) {
            h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        };
        mix(std::hash<int>{}(topo_->nodes()[n].external_ports));
        for (const auto &[other, mult] : nbrs) {
            mix(std::hash<int>{}(other));
            mix(std::hash<int>{}(mult));
        }
        equivalence_key_[n] = h;
    }
}

void
WaferMapping::assignIdentity()
{
    std::vector<int> sites(topo_->nodeCount());
    std::iota(sites.begin(), sites.end(), 0);
    assign(sites);
}

void
WaferMapping::assignRandom(Rng &rng)
{
    std::vector<int> sites(fp_->interiorCount());
    std::iota(sites.begin(), sites.end(), 0);
    std::shuffle(sites.begin(), sites.end(), rng);
    sites.resize(topo_->nodeCount());
    assign(sites);
}

void
WaferMapping::assign(const std::vector<int> &node_to_site)
{
    if (static_cast<int>(node_to_site.size()) != topo_->nodeCount())
        fatal("WaferMapping::assign: need one site per node");

    std::fill(node_site_.begin(), node_site_.end(), -1);
    std::fill(site_node_.begin(), site_node_.end(), -1);
    std::fill(edge_load_.begin(), edge_load_.end(), 0.0);

    for (int n = 0; n < topo_->nodeCount(); ++n) {
        const int site = node_to_site[n];
        if (site < 0 || site >= fp_->interiorCount())
            fatal("WaferMapping::assign: site ", site, " out of range");
        if (site_node_[site] != -1)
            fatal("WaferMapping::assign: site ", site,
                  " assigned twice");
        node_site_[n] = site;
        site_node_[site] = n;
    }
    rebuildLoads();
}

void
WaferMapping::rebuildLoads()
{
    std::fill(edge_load_.begin(), edge_load_.end(), 0.0);
    const auto &links = topo_->links();
    for (const auto &link : links) {
        const int sa = node_site_[link.a];
        const int sb = node_site_[link.b];
        if (sa >= 0 && sb >= 0)
            applyRoute(sa, sb, link.multiplicity * topo_->lineRate());
    }
    if (external_via_mesh_) {
        for (int n = 0; n < topo_->nodeCount(); ++n) {
            if (node_site_[n] >= 0 &&
                topo_->nodes()[n].external_ports > 0) {
                applyExternal(node_site_[n],
                              topo_->nodes()[n].external_ports *
                                  topo_->lineRate());
            }
        }
    }
}

double
WaferMapping::maxEdgeLoad() const
{
    double m = 0.0;
    for (double load : edge_load_)
        m = std::max(m, load);
    return m;
}

int
WaferMapping::hotEdgeCount(double tolerance) const
{
    const double m = maxEdgeLoad();
    if (m <= 0.0)
        return 0;
    int count = 0;
    for (double load : edge_load_)
        if (load >= m * (1.0 - tolerance))
            ++count;
    return count;
}

double
WaferMapping::totalCrossingBandwidth() const
{
    return std::accumulate(edge_load_.begin(), edge_load_.end(), 0.0);
}

double
WaferMapping::averageLinkHops() const
{
    double hops_weighted = 0.0;
    double weight = 0.0;
    for (const auto &link : topo_->links()) {
        const int sa = node_site_[link.a];
        const int sb = node_site_[link.b];
        if (sa < 0 || sb < 0)
            continue;
        const int hops = std::abs(fp_->rowOf(sa) - fp_->rowOf(sb)) +
                         std::abs(fp_->colOf(sa) - fp_->colOf(sb));
        const double bw = link.multiplicity * topo_->lineRate();
        hops_weighted += static_cast<double>(hops) * bw;
        weight += bw;
    }
    return weight > 0.0 ? hops_weighted / weight : 0.0;
}

void
WaferMapping::applyNode(int node, double sign)
{
    const int site = node_site_[node];
    const auto &links = topo_->links();
    for (int b : node_bundles_[node]) {
        const auto &link = links[b];
        const int other = link.a == node ? link.b : link.a;
        const int other_site = node_site_[other];
        if (other_site < 0)
            continue; // other endpoint currently unplaced
        // Route in the link's canonical a->b orientation: X-then-Y
        // paths are not symmetric, and removal must retrace exactly
        // the path that was added.
        const int from = link.a == node ? site : other_site;
        const int to = link.a == node ? other_site : site;
        applyRoute(from, to,
                   sign * link.multiplicity * topo_->lineRate());
    }
    if (external_via_mesh_ && topo_->nodes()[node].external_ports > 0) {
        applyExternal(site, sign * topo_->nodes()[node].external_ports *
                                topo_->lineRate());
    }
}

void
WaferMapping::applyRoute(int site_a, int site_b, double bandwidth)
{
    // X-then-Y dimension-order route through feedthrough chiplets.
    const int r1 = fp_->rowOf(site_a), c1 = fp_->colOf(site_a);
    const int r2 = fp_->rowOf(site_b), c2 = fp_->colOf(site_b);

    int c = c1;
    while (c != c2) {
        const int dir = c2 > c ? 3 : 2;
        edge_load_[fp_->edgeToward(r1, c, dir)] += bandwidth;
        c += c2 > c ? 1 : -1;
    }
    int r = r1;
    while (r != r2) {
        const int dir = r2 > r ? 1 : 0;
        edge_load_[fp_->edgeToward(r, c2, dir)] += bandwidth;
        r += r2 > r ? 1 : -1;
    }
}

void
WaferMapping::applyExternal(int site, double bandwidth)
{
    // Port traffic fans out equally to the four I/O ring sides,
    // straight-line routed; the final edge reaches the ring site.
    const int r = fp_->rowOf(site), c = fp_->colOf(site);
    const double quarter = bandwidth / 4.0;
    for (int ri = r; ri >= 0; --ri)
        edge_load_[fp_->edgeToward(ri, c, 0)] += quarter;
    for (int ri = r; ri < fp_->rows(); ++ri)
        edge_load_[fp_->edgeToward(ri, c, 1)] += quarter;
    for (int ci = c; ci >= 0; --ci)
        edge_load_[fp_->edgeToward(r, ci, 2)] += quarter;
    for (int ci = c; ci < fp_->cols(); ++ci)
        edge_load_[fp_->edgeToward(r, ci, 3)] += quarter;
}

void
WaferMapping::swapNodes(int node_a, int node_b)
{
    if (node_a == node_b)
        return;
    const int site_a = node_site_[node_a];
    const int site_b = node_site_[node_b];

    applyNode(node_a, -1.0);
    node_site_[node_a] = -1; // so node_b's removal skips the a-b bundle
    applyNode(node_b, -1.0);

    node_site_[node_a] = site_b;
    node_site_[node_b] = -1;
    applyNode(node_a, +1.0);
    node_site_[node_b] = site_a;
    applyNode(node_b, +1.0);

    site_node_[site_a] = node_b;
    site_node_[site_b] = node_a;
}

void
WaferMapping::moveNode(int node, int site)
{
    if (site_node_[site] != -1)
        fatal("WaferMapping::moveNode: target site ", site,
              " is occupied");
    const int old_site = node_site_[node];
    applyNode(node, -1.0);
    node_site_[node] = site;
    site_node_[old_site] = -1;
    site_node_[site] = node;
    applyNode(node, +1.0);
}

} // namespace wss::mapping
