/**
 * @file
 * Wafer floorplan: the physical chiplet-site mesh — paper Section III.
 *
 * The substrate hosts a rows x cols grid of SSC sites; when the
 * external I/O scheme is periphery-based (SerDes / Optical I/O), a
 * ring of I/O-chiplet sites surrounds the grid (the paper's largest
 * configuration is a 12x12 array of switching + I/O chiplets: a
 * 10x10 SSC grid plus the ring). Orthogonally adjacent sites are
 * joined by a physical mesh edge whose bandwidth capacity is the
 * abutting beachfront length times the WSI technology's bandwidth
 * density. Ring sites connect only inward (external traffic flows
 * between an I/O chiplet and the SSC array).
 */

#ifndef WSS_MAPPING_FLOORPLAN_HPP
#define WSS_MAPPING_FLOORPLAN_HPP

#include <vector>

#include "util/units.hpp"

namespace wss::mapping {

/// What a floorplan site can hold.
enum class SiteKind
{
    /// An SSC slot in the interior grid.
    Interior,
    /// An external-I/O chiplet slot on the perimeter ring.
    IoRing,
};

/**
 * A physical mesh edge between two adjacent sites.
 */
struct MeshEdge
{
    int site_a = 0;
    int site_b = 0;
};

/**
 * The site grid and its mesh edges.
 *
 * Site ids: interior sites come first, row-major (row * cols + col);
 * ring sites (when present) follow in the order top row, bottom row,
 * left column, right column. Ring corners hold no chiplets.
 */
class WaferFloorplan
{
  public:
    /**
     * Build a floorplan with an @p rows x @p cols interior SSC grid.
     *
     * @param rows      interior grid rows (>= 1)
     * @param cols      interior grid columns (>= 1)
     * @param io_ring   surround the grid with I/O-chiplet sites
     * @param ssc_edge  abutting beachfront per site edge (mm)
     */
    WaferFloorplan(int rows, int cols, bool io_ring,
                   Millimeters ssc_edge);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    bool hasIoRing() const { return io_ring_; }
    Millimeters sscEdge() const { return ssc_edge_; }

    /// Number of interior (SSC) sites.
    int interiorCount() const { return rows_ * cols_; }
    /// Number of ring (I/O) sites; 0 without a ring.
    int ringCount() const { return io_ring_ ? 2 * (rows_ + cols_) : 0; }
    /// Total sites.
    int siteCount() const { return interiorCount() + ringCount(); }

    SiteKind
    kindOf(int site) const
    {
        return site < interiorCount() ? SiteKind::Interior
                                      : SiteKind::IoRing;
    }

    /// Interior site id at (row, col).
    int
    interiorSite(int row, int col) const
    {
        return row * cols_ + col;
    }
    int rowOf(int interior_site) const { return interior_site / cols_; }
    int colOf(int interior_site) const { return interior_site % cols_; }

    /// Ring site adjacent to interior (row, col) in direction
    /// 0=up 1=down 2=left 3=right; only valid from boundary cells.
    int ringSiteToward(int row, int col, int direction) const;

    /// All mesh edges.
    const std::vector<MeshEdge> &edges() const { return edges_; }
    int edgeCount() const { return static_cast<int>(edges_.size()); }

    /**
     * Edge id between adjacent sites, or -1 when not adjacent.
     * O(1) via the direction tables below.
     */
    int edgeBetween(int site_a, int site_b) const;

    /// Edge ids adjacent to @p site (2-4 for interior, 1 for ring).
    const std::vector<int> &edgesOf(int site) const
    {
        return site_edges_[site];
    }

    /**
     * Edge from interior (row, col) toward direction
     * 0=up 1=down 2=left 3=right; -1 when it would leave the mesh
     * (boundary cell without a ring).
     */
    int
    edgeToward(int row, int col, int direction) const
    {
        return edge_toward_[(row * cols_ + col) * 4 + direction];
    }

  private:
    int addEdge(int a, int b);

    int rows_;
    int cols_;
    bool io_ring_;
    Millimeters ssc_edge_;
    std::vector<MeshEdge> edges_;
    std::vector<std::vector<int>> site_edges_;
    /// interior site * 4 + dir -> edge id or -1.
    std::vector<int> edge_toward_;
    /// Ring site lookup: side (0=top 1=bottom 2=left 3=right) offset.
    int ring_base_ = 0;
};

} // namespace wss::mapping

#endif // WSS_MAPPING_FLOORPLAN_HPP
