#include "mapping/floorplan.hpp"

#include "util/logging.hpp"

namespace wss::mapping {

WaferFloorplan::WaferFloorplan(int rows, int cols, bool io_ring,
                               Millimeters ssc_edge)
    : rows_(rows), cols_(cols), io_ring_(io_ring), ssc_edge_(ssc_edge)
{
    if (rows < 1 || cols < 1)
        fatal("WaferFloorplan: grid must be at least 1x1, got ", rows,
              "x", cols);
    if (ssc_edge <= 0.0)
        fatal("WaferFloorplan: SSC edge length must be positive");

    ring_base_ = interiorCount();
    site_edges_.resize(siteCount());
    edge_toward_.assign(static_cast<std::size_t>(interiorCount()) * 4, -1);

    // Interior grid edges.
    for (int r = 0; r < rows_; ++r) {
        for (int c = 0; c < cols_; ++c) {
            const int s = interiorSite(r, c);
            if (c + 1 < cols_) {
                const int e = addEdge(s, interiorSite(r, c + 1));
                edge_toward_[s * 4 + 3] = e;
                edge_toward_[interiorSite(r, c + 1) * 4 + 2] = e;
            }
            if (r + 1 < rows_) {
                const int e = addEdge(s, interiorSite(r + 1, c));
                edge_toward_[s * 4 + 1] = e;
                edge_toward_[interiorSite(r + 1, c) * 4 + 0] = e;
            }
        }
    }

    // Ring sites: one per boundary cell per exposed side, connected
    // inward only. Order: top row, bottom row, left column, right
    // column (corners hold no chiplets, so no diagonal sites).
    if (io_ring_) {
        for (int c = 0; c < cols_; ++c) { // top
            const int s = interiorSite(0, c);
            const int ring = ring_base_ + c;
            const int e = addEdge(s, ring);
            edge_toward_[s * 4 + 0] = e;
        }
        for (int c = 0; c < cols_; ++c) { // bottom
            const int s = interiorSite(rows_ - 1, c);
            const int ring = ring_base_ + cols_ + c;
            const int e = addEdge(s, ring);
            edge_toward_[s * 4 + 1] = e;
        }
        for (int r = 0; r < rows_; ++r) { // left
            const int s = interiorSite(r, 0);
            const int ring = ring_base_ + 2 * cols_ + r;
            const int e = addEdge(s, ring);
            edge_toward_[s * 4 + 2] = e;
        }
        for (int r = 0; r < rows_; ++r) { // right
            const int s = interiorSite(r, cols_ - 1);
            const int ring = ring_base_ + 2 * cols_ + rows_ + r;
            const int e = addEdge(s, ring);
            edge_toward_[s * 4 + 3] = e;
        }
    }
}

int
WaferFloorplan::addEdge(int a, int b)
{
    const int id = static_cast<int>(edges_.size());
    edges_.push_back({a, b});
    site_edges_[a].push_back(id);
    site_edges_[b].push_back(id);
    return id;
}

int
WaferFloorplan::ringSiteToward(int row, int col, int direction) const
{
    if (!io_ring_)
        return -1;
    switch (direction) {
      case 0:
        return row == 0 ? ring_base_ + col : -1;
      case 1:
        return row == rows_ - 1 ? ring_base_ + cols_ + col : -1;
      case 2:
        return col == 0 ? ring_base_ + 2 * cols_ + row : -1;
      case 3:
        return col == cols_ - 1 ? ring_base_ + 2 * cols_ + rows_ + row
                                : -1;
      default:
        panic("ringSiteToward: bad direction ", direction);
    }
}

int
WaferFloorplan::edgeBetween(int site_a, int site_b) const
{
    for (int e : site_edges_[site_a]) {
        if (edges_[e].site_a == site_b || edges_[e].site_b == site_b)
            return e;
    }
    return -1;
}

} // namespace wss::mapping
