/**
 * @file
 * Algorithm 1: pairwise-exchange mapping optimization — paper
 * Section IV.A.
 *
 * Starting from an initial placement, repeatedly trial-swap chiplet
 * pairs (and moves into empty sites) and keep any change that lowers
 * the maximum channel load C(M); stop when a full pass makes no
 * change. The driver restarts from multiple random placements and
 * returns the best mapping found (the paper runs 1000 restarts and
 * reports <1% spread; the spread is small because the optimization
 * landscape is dominated by the role layout, so a handful of
 * restarts suffices in practice).
 */

#ifndef WSS_MAPPING_PAIRWISE_EXCHANGE_HPP
#define WSS_MAPPING_PAIRWISE_EXCHANGE_HPP

#include "mapping/wafer_mapping.hpp"

namespace wss::mapping {

/// Outcome of one optimized mapping search.
struct MappingSearchResult
{
    /// Best C(M) found (Gbps per direction on the hottest edge).
    double max_edge_load = 0.0;
    /// C(M) of a representative (first) unoptimized random placement
    /// — the paper's Fig. 5 baseline.
    double initial_max_edge_load = 0.0;
    /// Total crossing bandwidth of the best mapping (for power).
    double total_crossing_bandwidth = 0.0;
    /// Mean mesh hops per logical link in the best mapping.
    double average_link_hops = 0.0;
    /// Best node->site assignment.
    std::vector<int> assignment;
};

/**
 * Run Algorithm 1 on @p mapping in place until converged.
 * @return the final C(M).
 *
 * Swaps between equivalence-identical nodes are skipped (they cannot
 * change any load). Ties on C(M) are broken by the number of
 * near-maximum edges, which helps escape plateaus.
 */
double optimizePairwiseExchange(WaferMapping &mapping);

/**
 * Multi-restart search: @p restarts random initial placements, each
 * optimized with Algorithm 1; returns the best result.
 */
MappingSearchResult searchBestMapping(
    const topology::LogicalTopology &topo, const WaferFloorplan &fp,
    bool external_via_mesh, Rng &rng, int restarts = 8);

} // namespace wss::mapping

#endif // WSS_MAPPING_PAIRWISE_EXCHANGE_HPP
