#include "mapping/pairwise_exchange.hpp"

#include <limits>

namespace wss::mapping {

namespace {

/// Lexicographic objective: (max load, count of near-max edges).
struct Objective
{
    double max_load;
    int hot_edges;

    bool
    betterThan(const Objective &other) const
    {
        constexpr double eps = 1e-9;
        if (max_load < other.max_load - eps)
            return true;
        if (max_load > other.max_load + eps)
            return false;
        return hot_edges < other.hot_edges;
    }
};

Objective
evaluate(const WaferMapping &mapping)
{
    return {mapping.maxEdgeLoad(), mapping.hotEdgeCount()};
}

} // namespace

double
optimizePairwiseExchange(WaferMapping &mapping)
{
    const int nodes = mapping.topology().nodeCount();
    const int sites = mapping.floorplan().interiorCount();

    // Empty interior sites are legal swap targets too (the chiplet
    // simply moves).
    std::vector<int> empty_sites;
    for (int s = 0; s < sites; ++s)
        if (mapping.nodeAt(s) == -1)
            empty_sites.push_back(s);

    Objective current = evaluate(mapping);
    bool changed = true;
    while (changed) {
        changed = false;

        // Node-node swaps.
        for (int a = 0; a < nodes; ++a) {
            for (int b = a + 1; b < nodes; ++b) {
                if (mapping.equivalenceKey(a) == mapping.equivalenceKey(b))
                    continue; // interchangeable: swap is a no-op
                mapping.swapNodes(a, b);
                const Objective candidate = evaluate(mapping);
                if (candidate.betterThan(current)) {
                    current = candidate;
                    changed = true;
                } else {
                    mapping.swapNodes(a, b); // revert
                }
            }
        }

        // Node-to-empty-site moves.
        for (int a = 0; a < nodes; ++a) {
            for (std::size_t i = 0; i < empty_sites.size(); ++i) {
                const int target = empty_sites[i];
                const int from = mapping.siteOf(a);
                mapping.moveNode(a, target);
                const Objective candidate = evaluate(mapping);
                if (candidate.betterThan(current)) {
                    current = candidate;
                    empty_sites[i] = from;
                    changed = true;
                } else {
                    mapping.moveNode(a, from); // revert
                }
            }
        }
    }
    return current.max_load;
}

MappingSearchResult
searchBestMapping(const topology::LogicalTopology &topo,
                  const WaferFloorplan &fp, bool external_via_mesh,
                  Rng &rng, int restarts)
{
    MappingSearchResult best;
    best.max_edge_load = std::numeric_limits<double>::infinity();
    best.initial_max_edge_load = std::numeric_limits<double>::infinity();

    WaferMapping mapping(topo, fp, external_via_mesh);
    for (int r = 0; r < restarts; ++r) {
        mapping.assignRandom(rng);
        // The "unoptimized random initialization" baseline the paper
        // compares against (Fig. 5): one representative random
        // placement, i.e. the first restart's starting point.
        if (r == 0)
            best.initial_max_edge_load = mapping.maxEdgeLoad();

        const double optimized = optimizePairwiseExchange(mapping);
        if (optimized < best.max_edge_load) {
            best.max_edge_load = optimized;
            best.total_crossing_bandwidth =
                mapping.totalCrossingBandwidth();
            best.average_link_hops = mapping.averageLinkHops();
            best.assignment.resize(topo.nodeCount());
            for (int n = 0; n < topo.nodeCount(); ++n)
                best.assignment[n] = mapping.siteOf(n);
        }
    }
    return best;
}

} // namespace wss::mapping
