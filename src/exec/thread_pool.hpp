/**
 * @file
 * Work-stealing thread pool for fanning out independent experiment
 * runs (sweep points, solver calls, mapping restarts) across cores.
 *
 * Each worker owns a deque: it pushes and pops its own work LIFO
 * (cache locality) and steals FIFO from the oldest end of its
 * siblings' deques when idle — the classic work-stealing split.
 * parallelFor() runs on exactly size() execution lanes: size() - 1
 * stolen by workers plus the *calling* thread, which participates
 * instead of blocking idle — so a 1-thread pool is truly serial and
 * nested calls from inside a worker cannot deadlock.
 *
 * Sizing: ThreadPool(0) uses defaultThreads(), which honours the
 * WSS_JOBS environment variable and otherwise takes
 * std::thread::hardware_concurrency().
 */

#ifndef WSS_EXEC_THREAD_POOL_HPP
#define WSS_EXEC_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace wss::exec {

/**
 * Move-only type-erased nullary callable. std::function requires
 * copyable targets, which rules out lambdas that capture a
 * std::packaged_task — hence this little wrapper.
 */
class UniqueTask
{
  public:
    UniqueTask() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, UniqueTask>>>
    explicit UniqueTask(F &&fn)
        : impl_(std::make_unique<Model<std::decay_t<F>>>(
              std::forward<F>(fn)))
    {
    }

    explicit operator bool() const { return impl_ != nullptr; }
    void operator()() { impl_->run(); }

  private:
    struct Concept
    {
        virtual ~Concept() = default;
        virtual void run() = 0;
    };

    template <typename F>
    struct Model final : Concept
    {
        explicit Model(F &&fn) : fn(std::move(fn)) {}
        explicit Model(const F &fn) : fn(fn) {}
        void run() override { fn(); }
        F fn;
    };

    std::unique_ptr<Concept> impl_;
};

/**
 * The pool. Tasks must not outlive the pool; the destructor stops
 * the workers after draining whatever is still queued.
 */
class ThreadPool
{
  public:
    /// @param threads worker count; <= 0 means defaultThreads().
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /// Number of worker threads.
    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * Stable slot of the calling thread for per-worker (mutex-free)
     * result buffers: workers get [0, size()), any external caller
     * (e.g. the thread driving parallelFor) gets size(). Buffers
     * sized size() + 1 therefore cover every thread that can touch
     * them.
     */
    int workerSlot() const;

    /// WSS_JOBS override, else hardware_concurrency(), min 1.
    static int defaultThreads();

    /// Queue @p fn and get a future for its result.
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        std::packaged_task<R()> task(std::forward<F>(fn));
        auto future = task.get_future();
        enqueue(UniqueTask(std::move(task)));
        return future;
    }

    /**
     * Run body(i) for every i in [0, n), spread over size()
     * execution lanes (workers + the calling thread), and return
     * when all n are done.
     * Indices are claimed atomically so each runs exactly once; the
     * first exception (if any) is rethrown in the caller after the
     * loop completes.
     */
    void parallelFor(std::int64_t n,
                     const std::function<void(std::int64_t)> &body);

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<UniqueTask> tasks;
    };

    void enqueue(UniqueTask task);
    bool tryRunOne(int self);
    void workerLoop(int id);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> next_queue_{0};
    std::atomic<std::int64_t> pending_{0};
    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;
    std::atomic<bool> stop_{false};
};

} // namespace wss::exec

#endif // WSS_EXEC_THREAD_POOL_HPP
