#include "exec/campaign.hpp"

#include <chrono>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <ostream>
#include <string_view>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/watchdog.hpp"
#include "util/artifact.hpp"
#include "util/logging.hpp"
#include "util/stats_accumulator.hpp"

namespace wss::exec {

namespace {

double
elapsedSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/// Minimal JSON string escaping (quotes, backslashes, control).
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

} // namespace

int
Campaign::addSweep(std::string name, SweepJob job)
{
    if (job.rates.empty())
        fatal("Campaign: sweep '", name, "' needs at least one rate");
    if (job.repetitions < 1)
        fatal("Campaign: sweep '", name,
              "' needs at least one repetition");
    if (!job.make_network || !job.make_workload)
        fatal("Campaign: sweep '", name, "' needs factories");
    Entry entry;
    entry.name = std::move(name);
    entry.is_sweep = true;
    entry.sweep = std::move(job);
    entries_.push_back(std::move(entry));
    return static_cast<int>(entries_.size()) - 1;
}

int
Campaign::addTask(std::string name, std::function<void()> fn)
{
    if (!fn)
        fatal("Campaign: task '", name, "' needs a callable");
    Entry entry;
    entry.name = std::move(name);
    entry.is_sweep = false;
    entry.fn = std::move(fn);
    entries_.push_back(std::move(entry));
    return static_cast<int>(entries_.size()) - 1;
}

CampaignResult
Campaign::run(ThreadPool *pool, obs::TraceEventSink *trace,
              obs::Profiler *profiler) const
{
    const auto start = std::chrono::steady_clock::now();

    // Flatten every job into cells: one per (repetition, rate) for
    // sweeps, one per generic task.
    struct Cell
    {
        int job = 0;
        int repetition = 0;
        int rate_index = 0;
    };
    std::vector<Cell> cells;
    for (int j = 0; j < jobCount(); ++j) {
        const Entry &entry = entries_[static_cast<std::size_t>(j)];
        if (!entry.is_sweep) {
            cells.push_back({j, 0, 0});
            continue;
        }
        for (int rep = 0; rep < entry.sweep.repetitions; ++rep)
            for (int ri = 0;
                 ri < static_cast<int>(entry.sweep.rates.size()); ++ri)
                cells.push_back({j, rep, ri});
    }

    // Slots keyed by cell index (each written exactly once) and
    // per-worker timing buffers: slot pool->size() is the calling
    // thread, so nothing on the execution path takes a lock.
    std::vector<PointOutcome> outcomes(cells.size());
    const int buffers = pool ? pool->size() + 1 : 1;
    struct WorkerBuffer
    {
        std::vector<StatsAccumulator> cell_seconds;
        std::vector<QuantileSampler> cell_seconds_q;
    };
    std::vector<WorkerBuffer> per_worker(
        static_cast<std::size_t>(buffers));
    for (auto &buffer : per_worker) {
        buffer.cell_seconds.resize(entries_.size());
        buffer.cell_seconds_q.resize(entries_.size());
    }

    // One profiler phase per job; job names may contain '/' (which
    // the profiler reserves for nesting), so sanitize them once.
    std::vector<obs::Profiler> worker_prof(
        profiler ? static_cast<std::size_t>(buffers) : 0);
    std::vector<std::string> phase_names;
    if (profiler) {
        phase_names.reserve(entries_.size());
        for (const Entry &entry : entries_) {
            std::string name = entry.name;
            for (char &c : name)
                if (c == '/')
                    c = ':';
            phase_names.push_back(std::move(name));
        }
    }

    // Liveness/progress plumbing (flight recorder + watchdog): all
    // of it is passive — events and heartbeats never feed back into
    // the cells, so results stay bit-identical with it on or off.
    obs::Watchdog::setProgressTotal(cells.size());

    const auto runCell = [&](std::int64_t index) {
        const Cell &cell = cells[static_cast<std::size_t>(index)];
        const Entry &entry =
            entries_[static_cast<std::size_t>(cell.job)];
        const int prof_slot = pool ? pool->workerSlot() : 0;
        if (obs::FlightRecorder::enabled() ||
            obs::Watchdog::heartbeatsEnabled()) {
            const std::string label =
                (!pool || prof_slot == pool->size())
                    ? "caller"
                    : "worker-" + std::to_string(prof_slot);
            obs::FlightRecorder::attachCurrentThread(label);
            obs::Watchdog::registerCurrentThread(label);
            obs::Watchdog::markThreadActive();
            obs::recordEvent(obs::EventKind::JobStart, index, cell.job,
                             entry.name);
            if (obs::Watchdog::heartbeatsEnabled()) {
                std::string detail = entry.name;
                if (entry.is_sweep) {
                    char point[48];
                    std::snprintf(
                        point, sizeof point, " rep %d rate %.3g",
                        cell.repetition,
                        entry.sweep.rates[static_cast<std::size_t>(
                            cell.rate_index)]);
                    detail += point;
                }
                obs::Watchdog::setThreadDetail(detail);
            }
        }
        obs::ScopedPhase cell_phase(
            profiler
                ? &worker_prof[static_cast<std::size_t>(prof_slot)]
                : nullptr,
            profiler ? phase_names[static_cast<std::size_t>(cell.job)]
                     : std::string_view());
        const std::int64_t ts = trace ? trace->nowMicros() : 0;
        PointOutcome outcome;
        if (entry.is_sweep) {
            outcome = SweepRunner(entry.sweep)
                          .runPoint(cell.repetition, cell.rate_index);
        } else {
            const auto cell_start = std::chrono::steady_clock::now();
            entry.fn();
            outcome.seconds = elapsedSeconds(cell_start);
        }
        outcomes[static_cast<std::size_t>(index)] = outcome;

        const int slot = pool ? pool->workerSlot() : 0;
        if (trace) {
            std::vector<obs::TraceArg> args;
            args.push_back(obs::TraceArg::str("job", entry.name));
            args.push_back(obs::TraceArg::str(
                "kind", entry.is_sweep ? "sweep" : "task"));
            if (entry.is_sweep) {
                args.push_back(obs::TraceArg::num(
                    "repetition",
                    static_cast<std::int64_t>(cell.repetition)));
                args.push_back(obs::TraceArg::num(
                    "rate_index",
                    static_cast<std::int64_t>(cell.rate_index)));
                args.push_back(obs::TraceArg::num(
                    "rate", entry.sweep.rates[static_cast<std::size_t>(
                                cell.rate_index)]));
            }
            trace->complete(entry.name,
                            entry.is_sweep ? "sweep" : "task", slot,
                            ts, trace->nowMicros() - ts,
                            std::move(args));
        }

        auto &buffer =
            per_worker[static_cast<std::size_t>(slot)];
        buffer.cell_seconds[static_cast<std::size_t>(cell.job)].add(
            outcome.seconds);
        buffer.cell_seconds_q[static_cast<std::size_t>(cell.job)].add(
            outcome.seconds);

        obs::recordEvent(obs::EventKind::JobFinish, index, cell.job,
                         entry.name);
        obs::Watchdog::addProgressDone();
        // Idle between cells: a drained queue must not read as a
        // stalled worker.
        obs::Watchdog::markThreadIdle();
    };
    if (pool)
        pool->parallelFor(static_cast<std::int64_t>(cells.size()),
                          runCell);
    else
        for (std::int64_t i = 0;
             i < static_cast<std::int64_t>(cells.size()); ++i)
            runCell(i);

    // Barrier passed: merge the per-worker buffers and finalize.
    if (profiler)
        for (const obs::Profiler &wp : worker_prof)
            profiler->merge(wp, "campaign");
    if (trace) {
        const int workers = pool ? pool->size() : 0;
        for (int w = 0; w < workers; ++w)
            trace->setThreadName(w, "worker " + std::to_string(w));
        trace->setThreadName(workers, "caller");
    }
    CampaignResult result;
    result.wall_seconds = elapsedSeconds(start);
    result.threads = pool ? pool->size() : 1;
    result.jobs.resize(entries_.size());

    std::vector<std::size_t> cursor(entries_.size());
    std::vector<std::vector<PointOutcome>> per_job(entries_.size());
    for (int j = 0; j < jobCount(); ++j) {
        const Entry &entry = entries_[static_cast<std::size_t>(j)];
        if (entry.is_sweep)
            per_job[static_cast<std::size_t>(j)].resize(
                static_cast<std::size_t>(entry.sweep.repetitions) *
                entry.sweep.rates.size());
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto j = static_cast<std::size_t>(cells[i].job);
        if (entries_[j].is_sweep)
            per_job[j][cursor[j]++] = outcomes[i];
    }

    for (int j = 0; j < jobCount(); ++j) {
        const auto ji = static_cast<std::size_t>(j);
        const Entry &entry = entries_[ji];
        CampaignJobResult &job_result = result.jobs[ji];
        job_result.name = entry.name;
        job_result.kind = entry.is_sweep ? "sweep" : "task";

        StatsAccumulator seconds;
        QuantileSampler seconds_q;
        for (const auto &buffer : per_worker) {
            seconds.merge(buffer.cell_seconds[ji]);
            seconds_q.merge(buffer.cell_seconds_q[ji]);
        }
        job_result.cells = static_cast<int>(seconds.count());
        job_result.seconds =
            seconds.mean() * static_cast<double>(seconds.count());
        job_result.mean_cell_seconds = seconds.mean();
        job_result.max_cell_seconds = seconds.max();
        job_result.p95_cell_seconds =
            seconds_q.empty() ? 0.0 : seconds_q.quantile(0.95);

        if (entry.is_sweep)
            job_result.sweep = finalizeSweepRun(
                entry.sweep, std::move(per_job[ji]), job_result.seconds);
    }
    return result;
}

void
CampaignResult::writeCsv(std::ostream &os) const
{
    os << "# wall_seconds=" << wall_seconds << "\n";
    os << "# threads=" << threads << "\n";
    os << "job,kind,repetition,offered,accepted,avg_latency,"
          "p99_latency,stable,seconds\n";
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (const auto &job : jobs) {
        if (job.kind == "task") {
            os << job.name << ",task,,,,,,," << job.seconds << "\n";
            continue;
        }
        for (const auto &outcome : job.sweep.outcomes) {
            os << job.name << ",sweep," << outcome.repetition << ","
               << outcome.point.offered << ","
               << outcome.point.accepted << ","
               << outcome.point.avg_latency << ","
               << outcome.point.p99_latency << ","
               << (outcome.point.stable ? 1 : 0) << ","
               << outcome.seconds << "\n";
        }
    }
}

void
CampaignResult::writeJson(std::ostream &os) const
{
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "{\n  \"wall_seconds\": " << wall_seconds
       << ",\n  \"threads\": " << threads << ",\n  \"jobs\": [";
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        const auto &job = jobs[j];
        os << (j ? ",\n" : "\n") << "    {\"name\": \""
           << jsonEscape(job.name) << "\", \"kind\": \"" << job.kind
           << "\", \"seconds\": " << job.seconds
           << ", \"cells\": " << job.cells
           << ", \"mean_cell_seconds\": " << job.mean_cell_seconds
           << ", \"max_cell_seconds\": " << job.max_cell_seconds
           << ", \"p95_cell_seconds\": " << job.p95_cell_seconds;
        if (job.kind == "sweep") {
            os << ", \"repetitions\": " << job.sweep.reps.size()
               << ", \"zero_load_latency\": "
               << job.sweep.combined.zero_load_latency
               << ", \"saturation_throughput\": "
               << job.sweep.combined.saturation_throughput
               << ", \"points\": [";
            const auto &points = job.sweep.combined.points;
            for (std::size_t i = 0; i < points.size(); ++i) {
                const auto &p = points[i];
                os << (i ? ", " : "") << "{\"offered\": " << p.offered
                   << ", \"accepted\": " << p.accepted
                   << ", \"avg_latency\": " << p.avg_latency
                   << ", \"p99_latency\": " << p.p99_latency
                   << ", \"stable\": " << (p.stable ? "true" : "false")
                   << "}";
            }
            os << "]";
        }
        os << "}";
    }
    os << "\n  ]\n}\n";
}

void
CampaignResult::writeCsvFile(const std::string &path) const
{
    util::writeArtifactFile(
        path, "CampaignResult",
        [this](std::ostream &os) { writeCsv(os); });
}

void
CampaignResult::writeJsonFile(const std::string &path) const
{
    util::writeArtifactFile(
        path, "CampaignResult",
        [this](std::ostream &os) { writeJson(os); });
}

} // namespace wss::exec
