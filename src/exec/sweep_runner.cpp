#include "exec/sweep_runner.hpp"

#include <chrono>
#include <string>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/watchdog.hpp"
#include "util/logging.hpp"
#include "util/stats_accumulator.hpp"

namespace wss::exec {

namespace {

double
elapsedSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

SweepRunner::SweepRunner(SweepJob job) : job_(std::move(job))
{
    if (job_.rates.empty())
        fatal("SweepRunner: need at least one rate");
    if (job_.repetitions < 1)
        fatal("SweepRunner: need at least one repetition");
    if (!job_.make_network || !job_.make_workload)
        fatal("SweepRunner: need network and workload factories");
}

PointOutcome
SweepRunner::runPoint(int repetition, int rate_index) const
{
    const auto start = std::chrono::steady_clock::now();

    sim::SimConfig cfg = job_.cfg;
    cfg.seed = deriveSeed(job_.cfg.seed,
                          static_cast<std::uint64_t>(repetition));

    // Design-point boundary for crash post-mortems; purely passive.
    obs::recordEvent(
        obs::EventKind::DesignPoint, repetition, rate_index,
        "rate " +
            std::to_string(job_.rates[static_cast<std::size_t>(rate_index)]));
    obs::heartbeat();

    PointOutcome outcome;
    outcome.repetition = repetition;
    outcome.rate_index = rate_index;
    // Route through the shared serial code path so parallel and
    // serial sweeps cannot diverge.
    outcome.point = sim::runLoadPoint(
        [&] { return job_.make_network(cfg.seed); },
        [&](double rate) { return job_.make_workload(rate, cfg.seed); },
        job_.rates[static_cast<std::size_t>(rate_index)], cfg,
        &outcome.result);
    outcome.seconds = elapsedSeconds(start);
    return outcome;
}

SweepRunOutput
SweepRunner::run(ThreadPool *pool, obs::TraceEventSink *trace,
                 obs::Profiler *profiler) const
{
    const auto start = std::chrono::steady_clock::now();
    const auto reps = static_cast<std::int64_t>(job_.repetitions);
    const auto rates = static_cast<std::int64_t>(job_.rates.size());

    std::vector<PointOutcome> outcomes(
        static_cast<std::size_t>(reps * rates));
    // Workers time into their own profiler (slot pool->size() is the
    // calling thread), merged into @p profiler after the barrier —
    // the same per-worker-buffer pattern Campaign uses for timing.
    std::vector<obs::Profiler> worker_prof(
        profiler ? static_cast<std::size_t>(pool ? pool->size() + 1 : 1)
                 : 0);
    const auto runCell = [&](std::int64_t index) {
        const int rep = static_cast<int>(index / rates);
        const int ri = static_cast<int>(index % rates);
        const int slot = pool ? pool->workerSlot() : 0;
        if (obs::FlightRecorder::enabled() ||
            obs::Watchdog::heartbeatsEnabled()) {
            const std::string label =
                (!pool || slot == pool->size())
                    ? "caller"
                    : "worker-" + std::to_string(slot);
            obs::FlightRecorder::attachCurrentThread(label);
            obs::Watchdog::registerCurrentThread(label);
            obs::Watchdog::markThreadActive();
        }
        const std::int64_t ts = trace ? trace->nowMicros() : 0;
        obs::ScopedPhase cell_phase(
            profiler ? &worker_prof[static_cast<std::size_t>(slot)]
                     : nullptr,
            "point");
        outcomes[static_cast<std::size_t>(index)] = runPoint(rep, ri);
        if (trace)
            trace->complete(
                "sweep point", "sweep", slot, ts,
                trace->nowMicros() - ts,
                {obs::TraceArg::num("repetition",
                                    static_cast<std::int64_t>(rep)),
                 obs::TraceArg::num("rate_index",
                                    static_cast<std::int64_t>(ri)),
                 obs::TraceArg::num(
                     "rate",
                     job_.rates[static_cast<std::size_t>(ri)])});
        obs::Watchdog::markThreadIdle();
    };
    if (pool)
        pool->parallelFor(reps * rates, runCell);
    else
        for (std::int64_t i = 0; i < reps * rates; ++i)
            runCell(i);

    if (profiler)
        for (const obs::Profiler &wp : worker_prof)
            profiler->merge(wp, "sweep");

    return finalizeSweepRun(job_, std::move(outcomes),
                            elapsedSeconds(start));
}

SweepRunOutput
finalizeSweepRun(const SweepJob &job, std::vector<PointOutcome> outcomes,
                 double wall_seconds)
{
    const auto rates = job.rates.size();

    SweepRunOutput out;
    out.wall_seconds = wall_seconds;
    out.outcomes = std::move(outcomes);

    out.reps.reserve(static_cast<std::size_t>(job.repetitions));
    for (int rep = 0; rep < job.repetitions; ++rep) {
        std::vector<sim::LoadPoint> points(rates);
        for (std::size_t i = 0; i < rates; ++i)
            points[i] =
                out.outcomes[static_cast<std::size_t>(rep) * rates + i]
                    .point;
        out.reps.push_back(sim::finalizeSweep(std::move(points)));
    }

    if (job.repetitions == 1) {
        out.combined = out.reps.front();
        return out;
    }

    // Average each rate's point across repetitions; a point is
    // stable only when every repetition's run was.
    std::vector<sim::LoadPoint> combined(rates);
    for (std::size_t i = 0; i < rates; ++i) {
        StatsAccumulator offered, accepted, avg, p99;
        bool stable = true;
        for (const auto &rep : out.reps) {
            const auto &p = rep.points[i];
            offered.add(p.offered);
            accepted.add(p.accepted);
            avg.add(p.avg_latency);
            p99.add(p.p99_latency);
            stable = stable && p.stable;
        }
        combined[i].offered = offered.mean();
        combined[i].accepted = accepted.mean();
        combined[i].avg_latency = avg.mean();
        combined[i].p99_latency = p99.mean();
        combined[i].stable = stable;
    }
    out.combined = sim::finalizeSweep(std::move(combined));
    return out;
}

} // namespace wss::exec
