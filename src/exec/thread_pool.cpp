#include "exec/thread_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <exception>

#include "util/logging.hpp"

namespace wss::exec {

namespace {

/// Identity of the current thread within a pool (workerSlot()).
thread_local const ThreadPool *tl_pool = nullptr;
thread_local int tl_slot = -1;

} // namespace

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = defaultThreads();
    queues_.reserve(threads);
    for (int i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(threads);
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        stop_.store(true, std::memory_order_release);
    }
    wake_cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

int
ThreadPool::workerSlot() const
{
    return tl_pool == this ? tl_slot : size();
}

int
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    const int fallback = hw > 0 ? static_cast<int>(hw) : 1;
    const char *env = std::getenv("WSS_JOBS");
    if (!env)
        return fallback;
    // Strict parse: the whole string must be a positive decimal
    // integer. "8x", "", "0" and "-2" all fall back loudly — a typo
    // silently serializing (or oversubscribing) a campaign is much
    // harder to notice than this warning.
    char *end = nullptr;
    errno = 0;
    const long n = std::strtol(env, &end, 10);
    // strtol alone would accept " 4", "+4" and "8x"; require the
    // value to be exactly a string of decimal digits.
    if (env[0] < '0' || env[0] > '9' || errno != 0 || end == env ||
        *end != '\0' || n <= 0 || n > 4096) {
        warn("WSS_JOBS='", env,
             "' is not a positive integer (1..4096); using ",
             fallback, " thread(s) instead");
        return fallback;
    }
    return static_cast<int>(n);
}

void
ThreadPool::enqueue(UniqueTask task)
{
    // Workers push to their own deque (popped LIFO for locality);
    // external threads scatter round-robin.
    const int self = workerSlot();
    const auto target =
        self < size()
            ? static_cast<std::size_t>(self)
            : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                  queues_.size();
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_release);
    // Empty critical section: pairs with the wait predicate so a
    // sleeping worker cannot miss the increment.
    { std::lock_guard<std::mutex> lock(wake_mutex_); }
    wake_cv_.notify_one();
}

bool
ThreadPool::tryRunOne(int self)
{
    UniqueTask task;
    if (self >= 0) {
        auto &own = *queues_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.back());
            own.tasks.pop_back();
        }
    }
    if (!task) {
        // Steal from the FIFO end of the siblings' deques, scanning
        // from the neighbour so thieves spread out.
        const int n = static_cast<int>(queues_.size());
        const int base = self >= 0 ? self : 0;
        for (int i = self >= 0 ? 1 : 0; i < n + 1 && !task; ++i) {
            auto &victim = *queues_[(base + i) % n];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                task = std::move(victim.tasks.front());
                victim.tasks.pop_front();
            }
        }
    }
    if (!task)
        return false;
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    task();
    return true;
}

void
ThreadPool::workerLoop(int id)
{
    tl_pool = this;
    tl_slot = id;
    while (!stop_.load(std::memory_order_acquire)) {
        if (tryRunOne(id))
            continue;
        std::unique_lock<std::mutex> lock(wake_mutex_);
        wake_cv_.wait(lock, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
    }
    // Drain what is still queued so pending futures are fulfilled
    // even when the pool is torn down right after submission.
    while (tryRunOne(id)) {
    }
}

void
ThreadPool::parallelFor(std::int64_t n,
                        const std::function<void(std::int64_t)> &body)
{
    if (n <= 0)
        return;
    if (n == 1) {
        body(0);
        return;
    }

    struct LoopState
    {
        std::function<void(std::int64_t)> body;
        std::int64_t total = 0;
        std::atomic<std::int64_t> next{0};
        std::atomic<std::int64_t> done{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex mutex;
        std::condition_variable cv;
    };
    auto state = std::make_shared<LoopState>();
    state->body = body;
    state->total = n;

    auto work = [state] {
        for (;;) {
            const std::int64_t i =
                state->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= state->total)
                return;
            if (!state->failed.load(std::memory_order_relaxed)) {
                try {
                    state->body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state->mutex);
                    if (!state->failed.exchange(true))
                        state->error = std::current_exception();
                }
            }
            if (state->done.fetch_add(1, std::memory_order_acq_rel) +
                    1 ==
                state->total) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->cv.notify_all();
            }
        }
    };

    // Exactly size() execution lanes: size() - 1 helper tasks plus
    // the calling thread, which participates instead of blocking
    // idle (this also keeps nested parallelFor deadlock-free). A
    // 1-thread pool therefore runs the loop serially in the caller.
    const auto helpers =
        std::min<std::int64_t>(size() - 1, n - 1);
    for (std::int64_t t = 0; t < helpers; ++t)
        enqueue(UniqueTask(work));
    work();

    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
        return state->done.load(std::memory_order_acquire) ==
               state->total;
    });
    if (state->failed.load(std::memory_order_acquire))
        std::rethrow_exception(state->error);
}

} // namespace wss::exec
