/**
 * @file
 * Deterministic parallel load sweeps.
 *
 * SweepRunner fans the (repetition x rate) grid of a load sweep out
 * across a ThreadPool. Determinism is by construction: every run's
 * RNG seed is derived from the base seed and the *repetition index*
 * alone (deriveSeed, a splitmix64 finalizer in the spirit of
 * Rng::split), each point executes through the exact serial code
 * path (sim::runLoadPoint), and results land in preallocated slots
 * keyed by index — so the output is bit-identical whether the grid
 * runs serially, on 1 thread, or on 64, in any scheduling order.
 *
 * Repetition 0 uses the base seed unchanged, which keeps a
 * 1-repetition SweepRunner bit-identical to the legacy serial
 * sim::sweepLoad for the same inputs (asserted by test_exec).
 */

#ifndef WSS_EXEC_SWEEP_RUNNER_HPP
#define WSS_EXEC_SWEEP_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_event.hpp"
#include "sim/load_sweep.hpp"
#include "util/seed.hpp"

namespace wss::exec {

/// Builds a fresh network for one run, seeded explicitly.
using SeededNetworkFactory =
    std::function<std::unique_ptr<sim::Network>(std::uint64_t seed)>;
/// Builds the workload for one run at the given offered load.
using SeededWorkloadFactory = std::function<std::unique_ptr<sim::Workload>(
    double rate, std::uint64_t seed)>;

/// The shared splitmix64 per-index seed derivation (util/seed.hpp);
/// re-exported here because the sweeps' determinism contract is
/// stated in terms of it.
using wss::deriveSeed;

/// Everything needed to run one load-sweep curve.
struct SweepJob
{
    SeededNetworkFactory make_network;
    SeededWorkloadFactory make_workload;
    /// Offered loads, one sweep point each.
    std::vector<double> rates;
    /// Phase configuration; cfg.seed is the base seed the
    /// per-repetition seeds derive from.
    sim::SimConfig cfg;
    /// Independent repetitions (seeds derived per index).
    int repetitions = 1;
};

/// One executed (repetition, rate) cell.
struct PointOutcome
{
    int repetition = 0;
    int rate_index = 0;
    sim::LoadPoint point;
    sim::SimResult result;
    /// Wall-clock spent simulating this cell.
    double seconds = 0.0;
};

/// What a sweep produced.
struct SweepRunOutput
{
    /// Finalized curve per repetition.
    std::vector<sim::SweepResult> reps;
    /// Points averaged across repetitions (== reps[0] when
    /// repetitions == 1, bit-identically).
    sim::SweepResult combined;
    /// Flat repetition-major cell outcomes (timing, full SimResult).
    std::vector<PointOutcome> outcomes;
    /// Wall-clock of the whole sweep.
    double wall_seconds = 0.0;
};

/**
 * Runs a SweepJob, serially or on a pool.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepJob job);

    /// Execute every (repetition, rate) cell. @p pool nullptr runs
    /// serially in the calling thread. @p trace, when given, records
    /// one span per cell on per-worker tracks (args: repetition,
    /// rate_index, rate) — the span *content* is deterministic at any
    /// pool size, only timestamps and track assignment vary.
    /// @p profiler, when given, accumulates one "sweep/point" phase
    /// per cell: workers time into per-worker profilers (no lock on
    /// the hot path) that merge into @p profiler after the barrier.
    SweepRunOutput run(ThreadPool *pool = nullptr,
                       obs::TraceEventSink *trace = nullptr,
                       obs::Profiler *profiler = nullptr) const;

    /// Execute a single cell (the unit the pool schedules).
    PointOutcome runPoint(int repetition, int rate_index) const;

    const SweepJob &job() const { return job_; }

  private:
    SweepJob job_;
};

/**
 * Finalize a complete rep-major outcome grid into per-repetition
 * curves plus the combined curve. Shared by SweepRunner and
 * Campaign (which schedules cells across jobs itself).
 */
SweepRunOutput finalizeSweepRun(const SweepJob &job,
                                std::vector<PointOutcome> outcomes,
                                double wall_seconds);

} // namespace wss::exec

#endif // WSS_EXEC_SWEEP_RUNNER_HPP
