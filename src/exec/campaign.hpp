/**
 * @file
 * Experiment campaigns: many heterogeneous jobs, one pool, one
 * artifact.
 *
 * A Campaign batches sweep jobs (full latency-vs-load curves) and
 * generic timed tasks (e.g. radix-solver design points) in a single
 * invocation. All cells of all jobs are flattened into one
 * parallelFor, so a short job cannot leave the pool idle while a
 * long one finishes. Results land in slots keyed by cell index and
 * per-cell timing is recorded in *per-worker* buffers — no mutex on
 * the hot path — which are merged (StatsAccumulator::merge /
 * QuantileSampler::merge) once the barrier has passed.
 *
 * CampaignResult carries wall-clock and per-job timing and can emit
 * itself as CSV (one row per cell) or JSON (nested per-job summary)
 * for the figure benches' artifact trail.
 */

#ifndef WSS_EXEC_CAMPAIGN_HPP
#define WSS_EXEC_CAMPAIGN_HPP

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "exec/sweep_runner.hpp"
#include "exec/thread_pool.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_event.hpp"

namespace wss::exec {

/// Timing/result summary of one campaign job.
struct CampaignJobResult
{
    std::string name;
    /// "sweep" or "task".
    std::string kind;
    /// Sweep output (curves, outcomes); empty for generic tasks.
    SweepRunOutput sweep;
    /// Sum of the job's per-cell wall times. Cells run
    /// concurrently, so this exceeds the campaign wall-clock; it is
    /// the job's serial-equivalent cost.
    double seconds = 0.0;
    /// Distribution of per-cell seconds (merged from the per-worker
    /// accumulators at the barrier).
    double mean_cell_seconds = 0.0;
    double max_cell_seconds = 0.0;
    double p95_cell_seconds = 0.0;
    int cells = 0;
};

/// What a whole campaign produced.
struct CampaignResult
{
    std::vector<CampaignJobResult> jobs;
    /// Wall-clock of the whole campaign (all jobs, one barrier).
    double wall_seconds = 0.0;
    /// Worker threads the campaign ran on (1 when run serially).
    int threads = 1;

    /// One row per executed cell plus `# key=value` header lines.
    void writeCsv(std::ostream &os) const;
    /// Nested per-job summary, full precision.
    void writeJson(std::ostream &os) const;

    /// writeCsv()/writeJson() to @p path through a flush-checked
    /// stream: the data hits the file (or a fatal() reports the I/O
    /// failure) before control returns, so later fatal() exits can
    /// never truncate the artifact.
    void writeCsvFile(const std::string &path) const;
    void writeJsonFile(const std::string &path) const;
};

/**
 * A batch of jobs executed together on one pool.
 */
class Campaign
{
  public:
    /// Add a load-sweep job; returns its job index.
    int addSweep(std::string name, SweepJob job);

    /// Add a generic timed task (runs once); returns its job index.
    int addTask(std::string name, std::function<void()> fn);

    int jobCount() const { return static_cast<int>(entries_.size()); }

    /**
     * Execute every cell of every job. @p pool nullptr runs
     * serially; otherwise all cells share the pool's workers plus
     * the calling thread. @p trace, when given, records one span per
     * cell on per-worker tracks (args: job, kind, and for sweep
     * cells repetition/rate_index/rate) plus thread-name metadata —
     * deterministic in content at any pool size. @p profiler, when
     * given, accumulates one "campaign/<job>" phase per cell (job
     * names are '/'-sanitized): workers time into per-worker
     * profilers merged into @p profiler after the barrier.
     */
    CampaignResult run(ThreadPool *pool = nullptr,
                       obs::TraceEventSink *trace = nullptr,
                       obs::Profiler *profiler = nullptr) const;

  private:
    struct Entry
    {
        std::string name;
        bool is_sweep = false;
        SweepJob sweep;
        std::function<void()> fn;
    };

    std::vector<Entry> entries_;
};

} // namespace wss::exec

#endif // WSS_EXEC_CAMPAIGN_HPP
