/**
 * @file
 * Router buffer sizing — paper Section VI.
 *
 * Following Appenzeller et al. [20], the buffering a switch port
 * needs to keep a link busy is B = RTT x BW / sqrt(n), where RTT is
 * the round-trip time of the link, BW its bandwidth, and n the
 * number of flows sharing it. On-wafer links have 10-20 ns RTT
 * against 100-350 ns for PCB/optical hops (Table V), which is the
 * basis of the paper's low-latency-buffering claim: waferscale SSCs
 * need an order of magnitude less buffering, small enough for fast
 * SRAM instead of DRAM.
 */

#ifndef WSS_CORE_BUFFER_SIZING_HPP
#define WSS_CORE_BUFFER_SIZING_HPP

#include "util/units.hpp"

namespace wss::core {

/**
 * Required buffer size in bits: RTT x BW / sqrt(n).
 *
 * @param rtt        link round-trip time (ns)
 * @param bandwidth  link bandwidth (Gbps)
 * @param flows      concurrent flows sharing the link (>= 1)
 */
double bufferSizeBits(Nanoseconds rtt, Gbps bandwidth, int flows);

/**
 * The same requirement expressed in flits of @p flit_bits bits
 * (rounded up, at least 1).
 */
int bufferSizeFlits(Nanoseconds rtt, Gbps bandwidth, int flows,
                    int flit_bits);

} // namespace wss::core

#endif // WSS_CORE_BUFFER_SIZING_HPP
