#include "core/physical_clos.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "topology/clos.hpp"
#include "util/logging.hpp"

namespace wss::core {

namespace {

/// Chiplet center positions for a spread-out grid placement.
struct Placement
{
    std::vector<double> x;
    std::vector<double> y;
};

Placement
gridPlacement(int chips, Millimeters min_pitch)
{
    // Chiplets are packed at die pitch (spreading them out only
    // lengthens every wire; the freed area is accounted globally).
    const int g = static_cast<int>(std::ceil(std::sqrt(chips)));
    const double pitch = min_pitch;
    Placement p;
    p.x.resize(chips);
    p.y.resize(chips);
    for (int i = 0; i < chips; ++i) {
        p.x[i] = (i % g + 0.5) * pitch;
        p.y[i] = (i / g + 0.5) * pitch;
    }
    return p;
}

/// Manhattan distance from a chiplet to the nearest array boundary
/// (where the external I/O chiplets sit), for port escape wires.
double
escapeDistance(const Placement &p, int slot_site, double extent_x,
               double extent_y)
{
    const double x = p.x[slot_site], y = p.y[slot_site];
    return std::min(std::min(x, extent_x - x),
                    std::min(y, extent_y - y));
}

/// Sum over links of multiplicity x line rate x Manhattan length for
/// one node->slot assignment.
double
wireBandwidthLength(const topology::LogicalTopology &topo,
                    const Placement &p, const std::vector<int> &slot)
{
    double total = 0.0;
    for (const auto &link : topo.links()) {
        const int sa = slot[link.a], sb = slot[link.b];
        const double len = std::abs(p.x[sa] - p.x[sb]) +
                           std::abs(p.y[sa] - p.y[sb]);
        total += link.multiplicity * topo.lineRate() * len;
    }
    return total;
}

/// Pairwise-exchange placement refinement minimizing total
/// bandwidth-length (the wiring-area objective).
void
optimizePlacement(const topology::LogicalTopology &topo,
                  const Placement &p, std::vector<int> &slot)
{
    // Per-node incident bundles for incremental evaluation.
    const int n = topo.nodeCount();
    std::vector<std::vector<int>> incident(n);
    const auto &links = topo.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
        incident[links[i].a].push_back(static_cast<int>(i));
        incident[links[i].b].push_back(static_cast<int>(i));
    }

    auto node_cost = [&](int node) {
        double c = 0.0;
        for (int b : incident[node]) {
            const auto &link = links[b];
            const int sa = slot[link.a], sb = slot[link.b];
            c += link.multiplicity * topo.lineRate() *
                 (std::abs(p.x[sa] - p.x[sb]) +
                  std::abs(p.y[sa] - p.y[sb]));
        }
        return c;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int a = 0; a < n; ++a) {
            for (int b = a + 1; b < n; ++b) {
                const double before = node_cost(a) + node_cost(b);
                std::swap(slot[a], slot[b]);
                const double after = node_cost(a) + node_cost(b);
                if (after < before - 1e-9) {
                    changed = true;
                } else {
                    std::swap(slot[a], slot[b]);
                }
            }
        }
    }
}

} // namespace

PhysicalClosEvaluation
evaluatePhysicalClos(const DesignSpec &spec, std::int64_t ports,
                     bool allow_under_ssc)
{
    PhysicalClosEvaluation eval;
    eval.ports = ports;

    const topology::LogicalTopology topo =
        topology::buildFoldedClos({ports, spec.ssc, 1});
    eval.ssc_chiplets = topo.nodeCount();
    eval.ssc_area = topo.totalSscArea();

    const Millimeters substrate = spec.substrate_side;
    const SquareMillimeters substrate_area = substrate * substrate;

    const Placement p =
        gridPlacement(topo.nodeCount(), spec.ssc.edgeLength());
    std::vector<int> slot(topo.nodeCount());
    // Initial interleave: spines spaced evenly among the leaves.
    {
        std::vector<int> spines, leaves;
        for (int i = 0; i < topo.nodeCount(); ++i) {
            (topo.nodes()[i].role == topology::NodeRole::Spine ? spines
                                                               : leaves)
                .push_back(i);
        }
        const int stride =
            spines.empty()
                ? topo.nodeCount()
                : std::max(1, topo.nodeCount() /
                                  static_cast<int>(spines.size()));
        std::size_t si = 0, li = 0;
        for (int s = 0; s < topo.nodeCount(); ++s) {
            if (si < spines.size() && s % stride == stride / 2)
                slot[spines[si++]] = s;
            else if (li < leaves.size())
                slot[leaves[li++]] = s;
            else
                slot[spines[si++]] = s;
        }
    }
    optimizePlacement(topo, p, slot);

    eval.wire_bandwidth_length = wireBandwidthLength(topo, p, slot);

    // External ports also need dedicated escape traces from their
    // leaf to the array boundary.
    {
        const int g = static_cast<int>(
            std::ceil(std::sqrt(topo.nodeCount())));
        const double extent = g * spec.ssc.edgeLength();
        for (int n = 0; n < topo.nodeCount(); ++n) {
            const int ext = topo.nodes()[n].external_ports;
            if (ext > 0) {
                eval.wire_bandwidth_length +=
                    ext * topo.lineRate() *
                    escapeDistance(p, slot[n], extent, extent);
            }
        }
    }

    // A trace of B Gbps occupies B / (density * routing efficiency)
    // mm of cross-section along its whole length.
    eval.wire_area = eval.wire_bandwidth_length /
                     (spec.wsi.totalBandwidthDensity() *
                      kChannelRoutingEfficiency);
    eval.wire_budget =
        substrate_area - eval.ssc_area * (allow_under_ssc
                                              ? 1.0 - kUnderChipWiringFraction
                                              : 1.0);

    const bool area_ok =
        eval.ssc_area <= substrate_area && eval.wire_budget >= 0.0 &&
        eval.wire_area <= eval.wire_budget;

    const Gbps external_capacity =
        spec.external_io.capacityPerDirection(substrate);
    const bool external_ok =
        static_cast<double>(ports) * topo.lineRate() <= external_capacity;

    // Power: dedicated traces pay per bit-mm what feedthrough hops
    // pay per chiplet edge, plus the long-wire repeater overhead.
    eval.power.ssc_core = topo.totalSscCorePower();
    const double equivalent_crossings =
        eval.wire_bandwidth_length / spec.ssc.edgeLength() *
        kDedicatedWireEnergyOverhead;
    eval.power.internal_io =
        power::internalIoPower(equivalent_crossings, spec.wsi);
    eval.power.external_io =
        power::externalIoPower(ports, topo.lineRate(), spec.external_io);
    const bool power_ok =
        eval.power.total() <= spec.cooling.powerBudget(substrate);

    eval.feasible = area_ok && external_ok && power_ok;
    return eval;
}

PhysicalClosEvaluation
solveMaxPortsPhysicalClos(const DesignSpec &spec, bool allow_under_ssc)
{
    const std::int64_t g = spec.ssc.radix / 2;
    static const std::int64_t ladder[] = {1,  2,  3,  4,   6,   8,
                                          12, 16, 24, 32,  48,  64,
                                          96, 128};
    PhysicalClosEvaluation best;
    for (std::int64_t m : ladder) {
        const std::int64_t ports = m * g;
        // Stop once even the bare dies cannot fit.
        const double die_area =
            static_cast<double>(
                topology::closChipletCount(ports, spec.ssc.radix)) *
            spec.ssc.area;
        if (die_area > 1.5 * spec.substrate_side * spec.substrate_side)
            break;
        const PhysicalClosEvaluation eval =
            evaluatePhysicalClos(spec, ports, allow_under_ssc);
        if (eval.feasible)
            best = eval;
    }
    return best;
}

} // namespace wss::core
