/**
 * @file
 * Waferscale-switch design-point description and evaluation results.
 *
 * A DesignSpec bundles everything that defines one point in the
 * paper's design space: substrate size, WSI interconnect technology,
 * external I/O scheme, sub-switch chiplet, fabric topology, cooling
 * limit, and the optimization knobs (heterogeneous leaf split,
 * subswitch deradixing). DesignEvaluation is what the solver reports
 * for one candidate port count.
 */

#ifndef WSS_CORE_DESIGN_HPP
#define WSS_CORE_DESIGN_HPP

#include <cstdint>
#include <string>

#include "power/ssc.hpp"
#include "power/switch_power.hpp"
#include "tech/cooling.hpp"
#include "tech/external_io.hpp"
#include "tech/wsi.hpp"
#include "util/units.hpp"

namespace wss::core {

/// Fabric topologies the solver can explore (Sections IV, VII).
enum class TopologyKind
{
    Clos,
    Mesh,
    Butterfly,
    FlattenedButterfly,
    Dragonfly,
};

/// Human-readable topology name.
std::string_view toString(TopologyKind kind);

/// Which resource limits a candidate design (or binds the optimum).
enum class Constraint
{
    None,
    /// The topology has no candidate of that size.
    TopologyLimit,
    /// Substrate silicon area.
    Area,
    /// Inter-chiplet mesh channel capacity.
    InternalBandwidth,
    /// Off-substrate I/O capacity.
    ExternalBandwidth,
    /// Cooling-limited substrate power density.
    PowerDensity,
};

/// Human-readable constraint name.
std::string_view toString(Constraint constraint);

/**
 * One point in the design space.
 */
struct DesignSpec
{
    /// Side of the square substrate (mm).
    Millimeters substrate_side = 300.0;
    /// Internal (inter-chiplet) interconnect technology.
    tech::WsiTechnology wsi;
    /// External I/O scheme.
    tech::ExternalIoTech external_io;
    /// Sub-switch chiplet (possibly deradixed; see deradixedSsc()).
    power::SscConfig ssc;
    /// Fabric topology.
    TopologyKind topology = TopologyKind::Clos;
    /// Cooling envelope (use unlimitedCooling() to disable).
    tech::CoolingSolution cooling;
    /// Heterogeneous design: disaggregate each Clos leaf into this
    /// many smaller dies (1 = homogeneous). Clos only.
    int leaf_split = 1;
    /// Ignore bandwidth/power constraints (the "ideal case", Fig. 6).
    bool area_only = false;
    /// Model the substrate as a round wafer of diameter
    /// substrate_side instead of the paper's square simplification:
    /// pi/4 of the area, pi/4 of the periphery beachfront.
    bool round_substrate = false;
    /// Random restarts for the mapping search.
    int mapping_restarts = 4;
    /// Mapping search seed.
    std::uint64_t seed = 1;
};

/**
 * Everything the solver learned about one candidate port count.
 */
struct DesignEvaluation
{
    /// Candidate switch radix (external ports).
    std::int64_t ports = 0;
    /// All constraints satisfied?
    bool feasible = false;
    /// First violated constraint (None when feasible).
    Constraint violated = Constraint::None;

    /// Chiplets used (SSCs; I/O chiplets reported separately).
    int ssc_chiplets = 0;
    int io_chiplets = 0;
    /// Total silicon area (SSCs + I/O chiplets), mm^2.
    SquareMillimeters silicon_area = 0.0;

    /// Hottest mesh-edge load and the per-edge capacity (Gbps/dir).
    double max_edge_load = 0.0;
    double edge_capacity = 0.0;
    /// Available internal bandwidth per port at the hottest edge
    /// (Fig. 19's metric): line_rate * capacity / load.
    Gbps available_bw_per_port = 0.0;
    /// Mean mesh hops per logical link.
    double average_link_hops = 0.0;

    /// External capacity per direction and the demand against it.
    Gbps external_capacity = 0.0;
    Gbps external_demand = 0.0;

    /// Power breakdown (SSC core / internal I/O / external I/O).
    power::SwitchPowerBreakdown power;
    /// Substrate power density (W/mm^2).
    double power_density = 0.0;
};

} // namespace wss::core

#endif // WSS_CORE_DESIGN_HPP
