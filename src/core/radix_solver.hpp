/**
 * @file
 * The maximum-radix feasibility solver — paper Sections IV-V.
 *
 * Given a DesignSpec, the solver enumerates the candidate port counts
 * the chosen topology can realize, evaluates each against the four
 * resource constraints (substrate area, internal mesh bandwidth via
 * the Algorithm-1-optimized mapping, external I/O bandwidth, cooling
 * power density), and reports the largest feasible switch radix plus
 * the constraint that binds it. This single engine regenerates
 * Figs. 6, 7, 9, 12, 17, 18, 25, 27, 28.
 */

#ifndef WSS_CORE_RADIX_SOLVER_HPP
#define WSS_CORE_RADIX_SOLVER_HPP

#include <optional>
#include <vector>

#include "core/design.hpp"
#include "topology/logical_topology.hpp"

namespace wss::core {

/// Result of a max-radix search.
struct SolveResult
{
    /// The largest feasible design (ports == 0 when nothing fits).
    DesignEvaluation best;
    /// Evaluation of the next larger candidate (what stopped us);
    /// empty when the best design is the largest candidate.
    std::optional<DesignEvaluation> blocking;
};

/**
 * Evaluates candidate designs for one DesignSpec.
 */
class RadixSolver
{
  public:
    explicit RadixSolver(DesignSpec spec);

    const DesignSpec &spec() const { return spec_; }

    /**
     * Candidate port counts the topology can realize on this
     * substrate, ascending, capped by the area bound. "Nice"
     * plot-grid sizes (powers of two and 1.5x steps) for indirect
     * topologies; exact grid/group sizes for direct ones.
     */
    std::vector<std::int64_t> candidatePorts() const;

    /**
     * Fully evaluate the candidate with @p ports external ports
     * (must come from candidatePorts()).
     */
    DesignEvaluation evaluate(std::int64_t ports) const;

    /**
     * Find the largest feasible candidate. Uses the monotonicity of
     * all four constraints in the port count: binary search over the
     * candidate ladder, then verifies the boundary.
     */
    SolveResult solveMaxPorts() const;

    /**
     * Build the logical topology for a candidate size (also used by
     * the fabric-simulation benches to get the exact fabric the
     * solver chose).
     */
    topology::LogicalTopology buildTopology(std::int64_t ports) const;

  private:
    DesignSpec spec_;
};

} // namespace wss::core

#endif // WSS_CORE_RADIX_SOLVER_HPP
