#include "core/radix_solver.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "mapping/pairwise_exchange.hpp"
#include "topology/butterfly.hpp"
#include "topology/clos.hpp"
#include "topology/dragonfly.hpp"
#include "topology/flattened_butterfly.hpp"
#include "topology/mesh.hpp"
#include "util/logging.hpp"

namespace wss::core {

std::string_view
toString(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::Clos: return "Clos";
      case TopologyKind::Mesh: return "Mesh";
      case TopologyKind::Butterfly: return "Butterfly";
      case TopologyKind::FlattenedButterfly: return "FlattenedButterfly";
      case TopologyKind::Dragonfly: return "Dragonfly";
    }
    panic("unknown TopologyKind");
}

std::string_view
toString(Constraint constraint)
{
    switch (constraint) {
      case Constraint::None: return "none";
      case Constraint::TopologyLimit: return "topology";
      case Constraint::Area: return "area";
      case Constraint::InternalBandwidth: return "internal-bw";
      case Constraint::ExternalBandwidth: return "external-bw";
      case Constraint::PowerDensity: return "power-density";
    }
    panic("unknown Constraint");
}

namespace {

/// A realizable candidate: ports plus its construction parameters
/// (grid dims for mesh, array side for FB, groups for dragonfly;
/// unused for indirect topologies).
struct CandidateShape
{
    std::int64_t ports = 0;
    int a = 0;
    int b = 0;
};

/// Ladder multipliers for indirect topologies: powers of two,
/// matching the paper's plotted candidate grid (512, 1024, ...,
/// 8192 ports for radix-256 sub-switches).
const std::int64_t kLadder[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

std::vector<CandidateShape>
candidateShapes(const DesignSpec &spec)
{
    // Generous area cut-off so evaluate() makes the real decision.
    const double area_cap =
        1.5 * spec.substrate_side * spec.substrate_side;
    const int k = spec.ssc.radix;

    std::vector<CandidateShape> shapes;
    switch (spec.topology) {
      case TopologyKind::Clos: {
        const std::int64_t g = k / 2;
        for (std::int64_t m : kLadder) {
            const std::int64_t ports = m * g;
            const double area =
                static_cast<double>(topology::closChipletCount(ports, k)) *
                spec.ssc.area;
            if (area > area_cap)
                break;
            shapes.push_back({ports, 0, 0});
        }
        break;
      }
      case TopologyKind::Butterfly: {
        // Butterfly sizes step by one leaf at a time (no power-of-two
        // plot grid to honor), so the solver can land between the
        // Clos ladder points.
        const std::int64_t g =
            static_cast<std::int64_t>(k) * topology::kButterflyDownShare /
            topology::kButterflyShareDen;
        for (std::int64_t m = 1;; ++m) {
            const std::int64_t ports = m * g;
            const double area =
                static_cast<double>(
                    topology::butterflyChipletCount(ports, k)) *
                spec.ssc.area;
            if (area > area_cap)
                break;
            shapes.push_back({ports, 0, 0});
        }
        break;
      }
      case TopologyKind::Mesh: {
        for (int m = 1;; ++m) {
            const double area_sq =
                static_cast<double>(m) * m * spec.ssc.area;
            if (area_sq > area_cap)
                break;
            shapes.push_back({topology::meshPortCount(m, m, k), m, m});
            const double area_rect =
                static_cast<double>(m) * (m + 1) * spec.ssc.area;
            if (area_rect <= area_cap) {
                shapes.push_back(
                    {topology::meshPortCount(m, m + 1, k), m, m + 1});
            }
        }
        break;
      }
      case TopologyKind::FlattenedButterfly: {
        for (int m = 2;; ++m) {
            if (static_cast<double>(m) * m * spec.ssc.area > area_cap)
                break;
            const std::int64_t ports =
                topology::flattenedButterflyPortCount(m, k);
            if (ports > 0)
                shapes.push_back({ports, m, 0});
        }
        break;
      }
      case TopologyKind::Dragonfly: {
        for (int g = 2;; ++g) {
            const double area =
                static_cast<double>(g) * topology::kDragonflyGroupSize *
                spec.ssc.area;
            if (area > area_cap)
                break;
            shapes.push_back({topology::dragonflyPortCount(g, k), g, 0});
        }
        break;
      }
    }

    std::sort(shapes.begin(), shapes.end(),
              [](const CandidateShape &x, const CandidateShape &y) {
                  return x.ports < y.ports;
              });
    // Deduplicate equal port counts (keep the first shape).
    shapes.erase(std::unique(shapes.begin(), shapes.end(),
                             [](const CandidateShape &x,
                                const CandidateShape &y) {
                                 return x.ports == y.ports;
                             }),
                 shapes.end());
    return shapes;
}

std::optional<CandidateShape>
shapeFor(const DesignSpec &spec, std::int64_t ports)
{
    for (const auto &shape : candidateShapes(spec))
        if (shape.ports == ports)
            return shape;
    return std::nullopt;
}

topology::LogicalTopology
buildFor(const DesignSpec &spec, const CandidateShape &shape,
         int leaf_split)
{
    switch (spec.topology) {
      case TopologyKind::Clos:
        return topology::buildFoldedClos(
            {shape.ports, spec.ssc, leaf_split});
      case TopologyKind::Butterfly:
        return topology::buildButterfly(shape.ports, spec.ssc);
      case TopologyKind::Mesh:
        return topology::buildMesh(shape.a, shape.b, spec.ssc);
      case TopologyKind::FlattenedButterfly:
        return topology::buildFlattenedButterfly(shape.a, spec.ssc);
      case TopologyKind::Dragonfly:
        return topology::buildDragonfly(shape.a, spec.ssc);
    }
    panic("unknown TopologyKind");
}

/// Direct grid topologies lay out natively: node i on site i.
bool
mapsIdentity(TopologyKind kind)
{
    return kind == TopologyKind::Mesh ||
           kind == TopologyKind::FlattenedButterfly;
}

} // namespace

RadixSolver::RadixSolver(DesignSpec spec) : spec_(std::move(spec))
{
    if (spec_.substrate_side <= 0.0)
        fatal("RadixSolver: substrate side must be positive");
    if (spec_.substrate_side > spec_.wsi.max_substrate_side_mm) {
        fatal("RadixSolver: substrate side ", spec_.substrate_side,
              " mm exceeds the ", spec_.wsi.name, " limit of ",
              spec_.wsi.max_substrate_side_mm, " mm");
    }
    if (spec_.leaf_split > 1 && spec_.topology != TopologyKind::Clos)
        fatal("RadixSolver: heterogeneous leaf_split applies to Clos only");
    if (spec_.cooling.name.empty())
        spec_.cooling = tech::unlimitedCooling();
}

std::vector<std::int64_t>
RadixSolver::candidatePorts() const
{
    std::vector<std::int64_t> ports;
    for (const auto &shape : candidateShapes(spec_))
        ports.push_back(shape.ports);
    return ports;
}

topology::LogicalTopology
RadixSolver::buildTopology(std::int64_t ports) const
{
    const auto shape = shapeFor(spec_, ports);
    if (!shape)
        fatal("buildTopology: ", ports,
              " ports is not a candidate size for ",
              toString(spec_.topology));
    return buildFor(spec_, *shape, spec_.leaf_split);
}

DesignEvaluation
RadixSolver::evaluate(std::int64_t ports) const
{
    DesignEvaluation eval;
    eval.ports = ports;

    const auto shape = shapeFor(spec_, ports);
    if (!shape) {
        eval.violated = Constraint::TopologyLimit;
        return eval;
    }

    // The topology whose dies we pay for (heterogeneous when asked).
    const topology::LogicalTopology topo =
        buildFor(spec_, *shape, spec_.leaf_split);
    eval.ssc_chiplets = topo.nodeCount();

    // The mapping/channel-load analysis always runs on the
    // homogeneous fabric: leaf disaggregation preserves the spine
    // connections and beachfront, so the channel loads are unchanged
    // (Section V.B) while chiplet count and die areas differ.
    const bool hetero = spec_.leaf_split > 1;

    constexpr double kPi = 3.14159265358979323846;
    const Millimeters substrate = spec_.substrate_side;
    const SquareMillimeters substrate_area =
        spec_.round_substrate ? kPi / 4.0 * substrate * substrate
                              : substrate * substrate;

    if (spec_.area_only) {
        // The "ideal case" (Fig. 6): only silicon area constrains.
        eval.silicon_area = topo.totalSscArea();
        eval.feasible = eval.silicon_area <= substrate_area;
        if (!eval.feasible)
            eval.violated = Constraint::Area;
        return eval;
    }

    const topology::LogicalTopology homo =
        hetero ? buildFor(spec_, *shape, 1) : topo;

    // Floorplan: near-square SSC grid, plus an I/O ring for
    // periphery external I/O.
    const int nodes = homo.nodeCount();
    int rows, cols;
    if (mapsIdentity(spec_.topology)) {
        rows = shape->a;
        cols = spec_.topology == TopologyKind::Mesh ? shape->b : shape->a;
    } else {
        rows = static_cast<int>(std::ceil(std::sqrt(nodes)));
        cols = (nodes + rows - 1) / rows;
    }
    const bool ring = spec_.external_io.usesMeshForEscape();
    const mapping::WaferFloorplan fp(rows, cols, ring,
                                     spec_.ssc.edgeLength());

    // Only as many I/O chiplets as the port bandwidth needs are
    // bonded (each perimeter site serves its beachfront share of the
    // external capacity); the rest of the ring stays unpopulated.
    if (ring) {
        const Gbps total_capacity =
            spec_.round_substrate
                ? spec_.external_io.capacityPerDirectionRound(
                      spec_.substrate_side)
                : spec_.external_io.capacityPerDirection(
                      spec_.substrate_side);
        const Gbps per_site = total_capacity / fp.ringCount();
        const double needed =
            std::ceil(static_cast<double>(ports) * topo.lineRate() /
                      per_site);
        eval.io_chiplets = std::min(
            fp.ringCount(), static_cast<int>(std::max(needed, 1.0)));
    } else {
        eval.io_chiplets = 0;
    }

    // Area constraint: SSC dies + bonded perimeter I/O chiplets.
    eval.silicon_area =
        topo.totalSscArea() +
        eval.io_chiplets * spec_.external_io.io_chiplet_area;
    const bool area_ok = eval.silicon_area <= substrate_area;

    // Internal-bandwidth constraint: optimized channel load vs the
    // abutting-beachfront capacity.
    eval.edge_capacity =
        fp.sscEdge() * spec_.wsi.totalBandwidthDensity();
    Rng rng(spec_.seed + static_cast<std::uint64_t>(ports) * 0x9e37);
    double crossing_bw = 0.0;
    if (mapsIdentity(spec_.topology)) {
        mapping::WaferMapping wm(homo, fp, ring);
        wm.assignIdentity();
        eval.max_edge_load = wm.maxEdgeLoad();
        crossing_bw = wm.totalCrossingBandwidth();
        eval.average_link_hops = wm.averageLinkHops();
    } else {
        const auto result = mapping::searchBestMapping(
            homo, fp, ring, rng, spec_.mapping_restarts);
        eval.max_edge_load = result.max_edge_load;
        crossing_bw = result.total_crossing_bandwidth;
        eval.average_link_hops = result.average_link_hops;
    }
    eval.available_bw_per_port =
        eval.max_edge_load > 0.0
            ? topo.lineRate() * eval.edge_capacity / eval.max_edge_load
            : eval.edge_capacity;
    const bool internal_ok = eval.max_edge_load <= eval.edge_capacity;

    // External-bandwidth constraint.
    eval.external_capacity =
        spec_.round_substrate
            ? spec_.external_io.capacityPerDirectionRound(substrate)
            : spec_.external_io.capacityPerDirection(substrate);
    eval.external_demand = static_cast<double>(ports) * topo.lineRate();
    const bool external_ok = eval.external_demand <= eval.external_capacity;

    // Power and cooling.
    eval.power.ssc_core = topo.totalSscCorePower();
    eval.power.internal_io =
        power::internalIoPower(crossing_bw, spec_.wsi);
    eval.power.external_io =
        power::externalIoPower(ports, topo.lineRate(), spec_.external_io);
    eval.power_density = eval.power.total() / substrate_area;
    const bool power_ok =
        eval.power.total() <=
        spec_.cooling.max_power_density_w_mm2 * substrate_area;

    eval.feasible = area_ok && internal_ok && external_ok && power_ok;
    if (!area_ok)
        eval.violated = Constraint::Area;
    else if (!internal_ok)
        eval.violated = Constraint::InternalBandwidth;
    else if (!external_ok)
        eval.violated = Constraint::ExternalBandwidth;
    else if (!power_ok)
        eval.violated = Constraint::PowerDensity;
    return eval;
}

SolveResult
RadixSolver::solveMaxPorts() const
{
    const auto candidates = candidatePorts();
    SolveResult result;
    if (candidates.empty()) {
        result.best.violated = Constraint::TopologyLimit;
        return result;
    }

    std::map<std::int64_t, DesignEvaluation> cache;
    auto eval_at = [&](std::size_t idx) -> const DesignEvaluation & {
        auto it = cache.find(candidates[idx]);
        if (it == cache.end())
            it = cache.emplace(candidates[idx], evaluate(candidates[idx]))
                     .first;
        return it->second;
    };

    // Feasibility is monotone non-increasing in the port count
    // (every constraint tightens with size), so binary search the
    // feasible/infeasible boundary on the candidate ladder.
    std::size_t lo = 0, hi = candidates.size();
    if (!eval_at(0).feasible) {
        result.best.violated = eval_at(0).violated;
        result.blocking = eval_at(0);
        return result;
    }
    // Invariant: candidates[lo] feasible; candidates[hi] infeasible
    // (hi == size means "past the end").
    while (hi - lo > 1) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (eval_at(mid).feasible)
            lo = mid;
        else
            hi = mid;
    }
    result.best = eval_at(lo);
    if (hi < candidates.size())
        result.blocking = eval_at(hi);
    return result;
}

} // namespace wss::core
