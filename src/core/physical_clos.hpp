/**
 * @file
 * Physical Clos construction — paper Section VII, Fig. 26.
 *
 * Instead of mapping the Clos onto the chiplet mesh (feedthrough
 * channels through intermediate SSCs), one can wire each logical
 * link as a dedicated repeatered interposer trace between the two
 * chiplets. Those traces consume substrate wiring area in proportion
 * to link bandwidth and Manhattan length, which cuts into the area
 * available for SSCs — the paper finds physical Clos always ends up
 * with lower radix than mapped Clos, and ~10% higher power at
 * iso-radix from the extra long-wire repeaters.
 */

#ifndef WSS_CORE_PHYSICAL_CLOS_HPP
#define WSS_CORE_PHYSICAL_CLOS_HPP

#include "core/design.hpp"

namespace wss::core {

/// Relative energy cost of a dedicated repeated trace versus the
/// same bits amortized through feedthrough chiplets (extra repeater
/// insertions on long point-to-point wires plus channel-routing
/// detours relative to the dimension-order feedthrough path).
inline constexpr double kDedicatedWireEnergyOverhead = 5.0;

/// Fraction of the WSI bandwidth density usable by dedicated global
/// point-to-point traces. Feedthrough links between abutted chiplets
/// use all signal layers at full density; channel-routed global
/// wires lose layers to crossings and track assignment (classic
/// channel-routing overhead), which is why the paper finds physical
/// Clos "cuts into the area that can be used to place TH5s".
inline constexpr double kChannelRoutingEfficiency = 0.2;

/// Fraction of the area under an SSC usable for pass-through wiring
/// when under-chip routing is allowed (the rest serves power
/// delivery, per Section VII).
inline constexpr double kUnderChipWiringFraction = 0.7;

/// Evaluation of one physical-Clos candidate.
struct PhysicalClosEvaluation
{
    std::int64_t ports = 0;
    bool feasible = false;
    int ssc_chiplets = 0;
    /// SSC die area (mm^2).
    SquareMillimeters ssc_area = 0.0;
    /// Dedicated-trace wiring area (mm^2).
    SquareMillimeters wire_area = 0.0;
    /// Wiring area the substrate can offer (mm^2).
    SquareMillimeters wire_budget = 0.0;
    /// Total Manhattan wire length x bandwidth (Gbps x mm).
    double wire_bandwidth_length = 0.0;
    power::SwitchPowerBreakdown power;
};

/**
 * Evaluate a physical Clos of @p ports ports under @p spec (the
 * spec's topology field is ignored; Clos is implied).
 *
 * @param allow_under_ssc  let traces run underneath the SSCs
 *        (kUnderChipWiringFraction of that area becomes usable).
 */
PhysicalClosEvaluation evaluatePhysicalClos(const DesignSpec &spec,
                                            std::int64_t ports,
                                            bool allow_under_ssc);

/**
 * Largest feasible physical-Clos port count on the candidate ladder.
 */
PhysicalClosEvaluation solveMaxPortsPhysicalClos(const DesignSpec &spec,
                                                 bool allow_under_ssc);

} // namespace wss::core

#endif // WSS_CORE_PHYSICAL_CLOS_HPP
