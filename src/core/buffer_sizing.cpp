#include "core/buffer_sizing.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace wss::core {

double
bufferSizeBits(Nanoseconds rtt, Gbps bandwidth, int flows)
{
    if (rtt < 0.0 || bandwidth < 0.0)
        fatal("bufferSizeBits: RTT and bandwidth must be non-negative");
    if (flows < 1)
        fatal("bufferSizeBits: flow count must be >= 1");
    // Gbps x ns = bits.
    return rtt * bandwidth / std::sqrt(static_cast<double>(flows));
}

int
bufferSizeFlits(Nanoseconds rtt, Gbps bandwidth, int flows, int flit_bits)
{
    if (flit_bits < 1)
        fatal("bufferSizeFlits: flit size must be positive");
    const double bits = bufferSizeBits(rtt, bandwidth, flows);
    const int flits = static_cast<int>(std::ceil(bits / flit_bits));
    return flits < 1 ? 1 : flits;
}

} // namespace wss::core
