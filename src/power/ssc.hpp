/**
 * @file
 * Sub-switch chiplet (SSC) models — paper Table II and Fig. 15.
 *
 * The waferscale switch is assembled from TH-5-like sub-switch
 * chiplets. An SscConfig captures one chiplet design point: its
 * radix, line rate, die area, core (non-I/O) power, and process node.
 * The catalog also carries the commodity switch-ASIC series
 * (Broadcom Tomahawk, Marvell TeraLynx) whose reported powers anchor
 * the radix-power scaling model of Fig. 15.
 */

#ifndef WSS_POWER_SSC_HPP
#define WSS_POWER_SSC_HPP

#include <string>
#include <vector>

#include "tech/process_scaling.hpp"
#include "util/units.hpp"

namespace wss::power {

/**
 * One sub-switch chiplet design point.
 */
struct SscConfig
{
    /// Display name ("TH-5 256x200G", "TH-5-dr128", ...).
    std::string name;
    /// Number of bidirectional ports.
    int radix = 0;
    /// Line rate per port.
    Gbps line_rate = 0.0;
    /// Die area.
    SquareMillimeters area = 0.0;
    /// Core power excluding off-chip I/O (paper: 400 W for TH-5).
    Watts core_power = 0.0;
    /// Fabrication node.
    tech::ProcessNode node = tech::ProcessNode::N5;

    /// Aggregate switching bandwidth (one direction).
    Gbps totalBandwidth() const { return radix * line_rate; }

    /// Die edge length assuming a square die.
    Millimeters edgeLength() const;

    /// Core power normalized to 5 nm (for Fig. 15 style comparisons).
    Watts
    corePowerAt5nm() const
    {
        return tech::scalePower(core_power, node, tech::ProcessNode::N5);
    }
};

/// TH-5 in its three Table II configurations; @p config in {1,2,3}
/// selects 256x200G, 128x400G, 64x800G (same die, same power).
SscConfig tomahawk5(int config = 1);

/// Reported (approximate public) figures for the Tomahawk series used
/// in Fig. 15: TH-1, TH-3, TH-4, TH-5 with their native nodes.
std::vector<SscConfig> tomahawkSeries();

/// Reported (approximate public) figures for the Marvell TeraLynx
/// series used in Fig. 15: TeraLynx 7, 8, 10.
std::vector<SscConfig> teralynxSeries();

/**
 * A hypothetical 5 nm SSC with radix @p radix at line rate
 * @p line_rate, derived from TH-5 by the quadratic radix-power law
 * (used for heterogeneous leaves and deradixed sub-switches).
 * Area scales with aggregate bandwidth (port logic + buffers) with a
 * fixed-cost floor.
 */
SscConfig scaledSsc(int radix, Gbps line_rate, const std::string &name = "");

} // namespace wss::power

#endif // WSS_POWER_SSC_HPP
