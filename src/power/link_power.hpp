/**
 * @file
 * Internal-link voltage/frequency power scaling — paper Section V.A.
 *
 * Si-IF link bandwidth can be raised by scaling link frequency and
 * supply voltage at the expense of energy efficiency, following the
 * alpha-power delay model [Rabaey'96]:
 *
 *     P ~ Vdd^2            (energy per bit ~ C * Vdd^2)
 *     B ~ (Vdd - Vth)^2 / Vdd   (max toggle rate)
 *
 * Given a baseline operating point (Vdd0, Vth) and a desired
 * bandwidth speedup s, this module solves for the required Vdd and
 * the resulting energy-per-bit multiplier. The paper's 2x point
 * (3200 -> 6400 Gbps/mm) lands at Vdd = 0.964 V from 0.7 V, an
 * energy/bit increase of 1.90x.
 */

#ifndef WSS_POWER_LINK_POWER_HPP
#define WSS_POWER_LINK_POWER_HPP

#include "tech/wsi.hpp"
#include "util/units.hpp"

namespace wss::power {

/// Baseline Si-IF link supply voltage (V).
inline constexpr Volts kDefaultVdd = 0.70;
/// Link driver threshold voltage (V).
inline constexpr Volts kDefaultVth = 0.30;

/**
 * Supply voltage needed to speed the link up by factor @p speedup
 * (>= any factor that keeps Vdd physical). Solves
 * (V - Vth)^2 / V = s * (V0 - Vth)^2 / V0 for V > Vth.
 *
 * @param speedup desired bandwidth multiplier (> 0)
 * @param vdd0    baseline supply voltage
 * @param vth     threshold voltage
 */
Volts vddForSpeedup(double speedup, Volts vdd0 = kDefaultVdd,
                    Volts vth = kDefaultVth);

/**
 * Energy-per-bit multiplier when the link is sped up by @p speedup:
 * (Vdd / Vdd0)^2 with Vdd from vddForSpeedup().
 */
double energyPerBitScale(double speedup, Volts vdd0 = kDefaultVdd,
                         Volts vth = kDefaultVth);

/**
 * Derive an overclocked WSI operating point from @p base: per-layer
 * bandwidth density multiplied by @p speedup, energy per bit scaled
 * by energyPerBitScale(speedup).
 */
tech::WsiTechnology overclockWsi(const tech::WsiTechnology &base,
                                 double speedup);

} // namespace wss::power

#endif // WSS_POWER_LINK_POWER_HPP
