/**
 * @file
 * Whole-switch power accounting — paper Figs. 10, 11, 13, 16, 26(c).
 *
 * Total waferscale-switch power decomposes into three parts:
 *   - SSC core power (the sub-switch dies, excluding off-die I/O),
 *   - internal I/O power (every bit crossing an inter-chiplet mesh
 *     edge, including feedthrough repeater hops, at the WSI
 *     technology's pJ/bit), and
 *   - external I/O power (every bit entering/leaving the substrate
 *     at the external I/O technology's pJ/bit).
 */

#ifndef WSS_POWER_SWITCH_POWER_HPP
#define WSS_POWER_SWITCH_POWER_HPP

#include <cstdint>

#include "tech/external_io.hpp"
#include "tech/wsi.hpp"
#include "util/units.hpp"

namespace wss::power {

/**
 * Power breakdown of one waferscale switch configuration.
 */
struct SwitchPowerBreakdown
{
    /// Aggregate SSC core (non-I/O) power.
    Watts ssc_core = 0.0;
    /// Inter-chiplet link power (includes feedthrough hops).
    Watts internal_io = 0.0;
    /// External transceiver power.
    Watts external_io = 0.0;

    Watts total() const { return ssc_core + internal_io + external_io; }

    /// I/O share of total (paper quotes 33%-43.8% at 6400 Gbps/mm).
    double
    ioFraction() const
    {
        const Watts t = total();
        return t > 0.0 ? (internal_io + external_io) / t : 0.0;
    }

    /// Substrate power density for a square substrate of side mm.
    double
    powerDensity(Millimeters substrate_side) const
    {
        return total() / (substrate_side * substrate_side);
    }
};

/**
 * Internal I/O power given the total provisioned edge-crossing
 * bandwidth of the mapped design.
 *
 * @param total_crossing_bandwidth  sum over all mesh edges of the
 *        provisioned logical-link bandwidth crossing that edge, per
 *        direction (Gbps). Energy is accounted once per provisioned
 *        direction (the Table I pJ/bit is per bit transported).
 * @param wsi  the internal interconnect technology.
 */
Watts internalIoPower(Gbps total_crossing_bandwidth,
                      const tech::WsiTechnology &wsi);

/**
 * External I/O power for @p ports full-duplex ports at @p line_rate.
 * Transceiver energy is paid per bit in each direction.
 */
Watts externalIoPower(std::int64_t ports, Gbps line_rate,
                      const tech::ExternalIoTech &io);

} // namespace wss::power

#endif // WSS_POWER_SWITCH_POWER_HPP
