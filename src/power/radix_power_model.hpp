/**
 * @file
 * Quadratic radix-power scaling model — paper Section V.B, Fig. 15.
 *
 * Commodity high-radix switch ASICs show super-linear (near
 * quadratic) scaling of node-normalized core power with radix,
 * matching the analytical crossbar models of Ahn et al. [19]. This
 * model anchors a P(k) = c * k^2 law (per unit line rate) on TH-5 and
 * provides the least-squares quadratic fit used to overlay the
 * catalog points in Fig. 15.
 *
 * The key consequence (exploited by the heterogeneous optimization):
 * replacing one radix-k switch with m radix-k/m switches cuts core
 * power by ~m-fold.
 */

#ifndef WSS_POWER_RADIX_POWER_MODEL_HPP
#define WSS_POWER_RADIX_POWER_MODEL_HPP

#include <vector>

#include "power/ssc.hpp"
#include "util/units.hpp"

namespace wss::power {

/**
 * P_core(k, r) model anchored on a reference SSC.
 */
class RadixPowerModel
{
  public:
    /// Anchor on a reference chiplet (default: TH-5 256x200G, 400 W).
    explicit RadixPowerModel(const SscConfig &reference = tomahawk5(1));

    /**
     * Core (non-I/O) power of a 5 nm switch die with @p radix ports
     * at @p line_rate: quadratic in radix, linear in line rate.
     *
     * P = P_ref * (r / r_ref) * (k / k_ref)^2
     */
    Watts corePower(int radix, Gbps line_rate) const;

    /// The reference design point.
    const SscConfig &reference() const { return ref_; }

  private:
    SscConfig ref_;
};

/// Coefficients of P(k) = a*k^2 + b*k + c.
struct QuadraticFit
{
    double a = 0.0;
    double b = 0.0;
    double c = 0.0;

    double operator()(double k) const { return (a * k + b) * k + c; }
};

/**
 * Least-squares quadratic fit of 5 nm-normalized core power versus
 * radix for a catalog of SscConfigs (the curves drawn in Fig. 15).
 * Requires at least 3 points with distinct radices.
 */
QuadraticFit fitQuadratic(const std::vector<SscConfig> &catalog);

} // namespace wss::power

#endif // WSS_POWER_RADIX_POWER_MODEL_HPP
