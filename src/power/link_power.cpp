#include "power/link_power.hpp"

#include <cmath>
#include <cstdio>

#include "util/logging.hpp"

namespace wss::power {

Volts
vddForSpeedup(double speedup, Volts vdd0, Volts vth)
{
    if (speedup <= 0.0)
        fatal("vddForSpeedup: speedup must be positive, got ", speedup);
    if (vdd0 <= vth)
        fatal("vddForSpeedup: baseline Vdd must exceed Vth");

    // (V - Vth)^2 / V = s * c0 with c0 = (V0 - Vth)^2 / V0
    // => V^2 - (2*Vth + s*c0) * V + Vth^2 = 0; take the root > Vth.
    const double c0 = (vdd0 - vth) * (vdd0 - vth) / vdd0;
    const double b = 2.0 * vth + speedup * c0;
    const double disc = b * b - 4.0 * vth * vth;
    // disc = (s*c0)^2 + 4*Vth*s*c0 > 0 always.
    const Volts v = (b + std::sqrt(disc)) / 2.0;
    return v;
}

double
energyPerBitScale(double speedup, Volts vdd0, Volts vth)
{
    const Volts v = vddForSpeedup(speedup, vdd0, vth);
    return (v / vdd0) * (v / vdd0);
}

tech::WsiTechnology
overclockWsi(const tech::WsiTechnology &base, double speedup)
{
    tech::WsiTechnology t = base;
    t.bandwidth_density_per_layer *= speedup;
    t.energy_per_bit *= energyPerBitScale(speedup);
    if (speedup != 1.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "-%.3gx", speedup);
        t.name += buf;
    }
    return t;
}

} // namespace wss::power
