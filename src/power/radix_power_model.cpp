#include "power/radix_power_model.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace wss::power {

RadixPowerModel::RadixPowerModel(const SscConfig &reference)
    : ref_(reference)
{
    if (ref_.radix <= 0 || ref_.line_rate <= 0.0 || ref_.core_power <= 0.0)
        fatal("RadixPowerModel: reference SSC must have positive "
              "radix, line rate, and core power");
}

Watts
RadixPowerModel::corePower(int radix, Gbps line_rate) const
{
    const double k_ratio = static_cast<double>(radix) / ref_.radix;
    return ref_.corePowerAt5nm() * (line_rate / ref_.line_rate) * k_ratio *
           k_ratio;
}

QuadraticFit
fitQuadratic(const std::vector<SscConfig> &catalog)
{
    if (catalog.size() < 3)
        fatal("fitQuadratic: need at least 3 catalog points, got ",
              catalog.size());

    // Least squares on (k, P_5nm): accumulate the normal equations
    // for [a b c] against basis [k^2 k 1].
    double s0 = 0, s1 = 0, s2 = 0, s3 = 0, s4 = 0;
    double t0 = 0, t1 = 0, t2 = 0;
    for (const auto &ssc : catalog) {
        const double k = ssc.radix;
        const double p = ssc.corePowerAt5nm();
        const double k2 = k * k;
        s0 += 1;
        s1 += k;
        s2 += k2;
        s3 += k2 * k;
        s4 += k2 * k2;
        t0 += p;
        t1 += p * k;
        t2 += p * k2;
    }

    // Solve the 3x3 symmetric system
    //   [s4 s3 s2][a]   [t2]
    //   [s3 s2 s1][b] = [t1]
    //   [s2 s1 s0][c]   [t0]
    // by Cramer's rule (well-conditioned at this size).
    auto det3 = [](double a11, double a12, double a13, double a21,
                   double a22, double a23, double a31, double a32,
                   double a33) {
        return a11 * (a22 * a33 - a23 * a32) -
               a12 * (a21 * a33 - a23 * a31) +
               a13 * (a21 * a32 - a22 * a31);
    };
    const double d = det3(s4, s3, s2, s3, s2, s1, s2, s1, s0);
    if (std::abs(d) < 1e-9)
        fatal("fitQuadratic: catalog radices are degenerate");

    QuadraticFit fit;
    fit.a = det3(t2, s3, s2, t1, s2, s1, t0, s1, s0) / d;
    fit.b = det3(s4, t2, s2, s3, t1, s1, s2, t0, s0) / d;
    fit.c = det3(s4, s3, t2, s3, s2, t1, s2, s1, t0) / d;
    return fit;
}

} // namespace wss::power
