#include "power/switch_power.hpp"

namespace wss::power {

Watts
internalIoPower(Gbps total_crossing_bandwidth, const tech::WsiTechnology &wsi)
{
    // The pJ/bit figures of Table I are per bit transported; power
    // is accounted on the provisioned per-direction bandwidth (this
    // reproduces the paper's reported totals, e.g. ~62 kW for the
    // 8192-port 300 mm switch at 6400 Gbps/mm).
    return units::linkPower(total_crossing_bandwidth, wsi.energy_per_bit);
}

Watts
externalIoPower(std::int64_t ports, Gbps line_rate,
                const tech::ExternalIoTech &io)
{
    return units::linkPower(static_cast<double>(ports) * line_rate,
                            io.energy_per_bit);
}

} // namespace wss::power
