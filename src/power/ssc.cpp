#include "power/ssc.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace wss::power {

Millimeters
SscConfig::edgeLength() const
{
    return std::sqrt(area);
}

SscConfig
tomahawk5(int config)
{
    // Table II: 51.2 Tbps, 500 W total of which 100 W is I/O
    // (2 pJ/b x 51.2 Tbps), 800 mm^2, 5 nm. The three configurations
    // share the die; only the port bonding differs.
    SscConfig ssc{
        .name = "TH-5 256x200G",
        .radix = 256,
        .line_rate = 200.0,
        .area = 800.0,
        .core_power = 400.0,
        .node = tech::ProcessNode::N5,
    };
    switch (config) {
      case 1:
        break;
      case 2:
        ssc.name = "TH-5 128x400G";
        ssc.radix = 128;
        ssc.line_rate = 400.0;
        break;
      case 3:
        ssc.name = "TH-5 64x800G";
        ssc.radix = 64;
        ssc.line_rate = 800.0;
        break;
      default:
        fatal("tomahawk5: config must be 1, 2 or 3, got ", config);
    }
    return ssc;
}

std::vector<SscConfig>
tomahawkSeries()
{
    // Fig. 15 catalog. Radix is expressed in 200G-equivalent ports
    // (aggregate bandwidth / 200 Gbps) so one P(k) law covers the
    // series. Core powers are calibrated approximations of public
    // figures with I/O subtracted; once normalized to 5 nm they
    // reproduce the near-quadratic trend the paper reports.
    return {
        {"TH-1", 16, 200.0, 450.0, 10.0, tech::ProcessNode::N28},
        {"TH-3", 64, 200.0, 660.0, 76.0, tech::ProcessNode::N16},
        {"TH-4", 128, 200.0, 550.0, 145.0, tech::ProcessNode::N7},
        {"TH-5", 256, 200.0, 800.0, 400.0, tech::ProcessNode::N5},
    };
}

std::vector<SscConfig>
teralynxSeries()
{
    return {
        {"TeraLynx-7", 64, 200.0, 700.0, 85.0, tech::ProcessNode::N16},
        {"TeraLynx-8", 128, 200.0, 600.0, 150.0, tech::ProcessNode::N7},
        {"TeraLynx-10", 256, 200.0, 820.0, 410.0, tech::ProcessNode::N5},
    };
}

SscConfig
scaledSsc(int radix, Gbps line_rate, const std::string &name)
{
    if (radix <= 0 || line_rate <= 0.0)
        fatal("scaledSsc: radix and line rate must be positive");

    const SscConfig ref = tomahawk5(1);
    const double k_ratio = static_cast<double>(radix) / ref.radix;
    const double bw_ratio = radix * line_rate / ref.totalBandwidth();

    // Area model: crossbar scales quadratically with radix, port
    // logic + buffering scale with aggregate bandwidth, plus a fixed
    // overhead (management, PLLs, fabric glue). Coefficients chosen
    // so radix 256 x 200G reproduces the TH-5 die exactly:
    // 250 + 490 + 60 = 800 mm^2.
    const SquareMillimeters area =
        250.0 * k_ratio * k_ratio + 490.0 * bw_ratio + 60.0;

    // Core power: quadratic in radix, linear in line rate (the
    // RadixPowerModel law, inlined to avoid a dependency cycle).
    const Watts core =
        ref.core_power * (line_rate / ref.line_rate) * k_ratio * k_ratio;

    SscConfig ssc{
        .name = name,
        .radix = radix,
        .line_rate = line_rate,
        .area = area,
        .core_power = core,
        .node = tech::ProcessNode::N5,
    };
    if (ssc.name.empty()) {
        ssc.name = "SSC-" + std::to_string(radix) + "x" +
                   std::to_string(static_cast<int>(line_rate)) + "G";
    }
    return ssc;
}

} // namespace wss::power
