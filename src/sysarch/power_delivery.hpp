/**
 * @file
 * Power-delivery network sizing — paper Section VIII.A.
 *
 * The 300 mm waferscale switch draws ~45 kW after the heterogeneous
 * optimization. The paper's delivery chain: high-density server PSUs
 * (4 kW each, 3-phase 240 V AC -> 48 V DC) provisioned N+N
 * redundant, 48 V -> 12 V DC-DC converter bricks (27 x 18 mm, 1 kW+),
 * and 12 V -> <2 V VRMs (10 x 9 mm, ~130 A) mounted on the back side
 * of the wafer, with 10% VRM redundancy and a third of the
 * under-wafer area reserved for passives.
 */

#ifndef WSS_SYSARCH_POWER_DELIVERY_HPP
#define WSS_SYSARCH_POWER_DELIVERY_HPP

#include "util/units.hpp"

namespace wss::sysarch {

/// Component ratings (Section VIII.A constants).
struct PowerDeliverySpec
{
    /// One PSU's deliverable power [5].
    Watts psu_power = 4000.0;
    /// Non-ASIC system overhead provisioned on top of switch power.
    Watts non_asic_power = 5000.0;
    /// One 48V->12V DC-DC brick's power [4].
    Watts dcdc_power = 1000.0;
    SquareMillimeters dcdc_area = 27.0 * 18.0;
    /// One VRM's deliverable current (A) and output voltage (V).
    double vrm_current = 130.0;
    Volts core_voltage = 0.85;
    SquareMillimeters vrm_area = 10.0 * 9.0;
    /// Extra VRMs for redundancy (fraction).
    double vrm_redundancy = 0.10;
    /// Fraction of the under-wafer area that must stay free for
    /// passive components. (The paper's 300 mm plan uses ~69% of the
    /// area, leaving about a third for passives.)
    double passives_fraction = 0.25;
};

/// A sized power-delivery network.
struct PowerDeliveryPlan
{
    /// PSUs including N+N redundancy.
    int psus = 0;
    /// Total provisioned PSU power (what the nameplate says).
    Watts provisioned = 0.0;
    int dcdc_converters = 0;
    int vrms = 0;
    /// Area the converters + VRMs occupy on the wafer's back side.
    SquareMillimeters board_area = 0.0;
    /// Does everything fit under the wafer with the passives margin?
    bool fits_under_wafer = false;
};

/**
 * Size the delivery chain for a switch drawing @p switch_power on a
 * square substrate of side @p substrate_side.
 */
PowerDeliveryPlan sizePowerDelivery(Watts switch_power,
                                    Millimeters substrate_side,
                                    const PowerDeliverySpec &spec = {});

} // namespace wss::sysarch

#endif // WSS_SYSARCH_POWER_DELIVERY_HPP
