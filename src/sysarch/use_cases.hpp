/**
 * @file
 * End-to-end use cases — paper Section VIII.B (Tables VII, VIII, IX).
 *
 * Three deployments are modeled, each comparing a waferscale-switch
 * build against the conventional equivalent:
 *  - a single-switch datacenter (one waferscale switch replaces a
 *    full 2-level TH-5 Clos),
 *  - a "singular GPU" training cluster (one 2048 x 800G waferscale
 *    switch versus the DGX GH200's 2-layer NVSwitch network),
 *  - a hyperscale DCN whose spine layer is built from waferscale
 *    switches.
 * Plus the cable/colocation cost deltas the paper quotes.
 */

#ifndef WSS_SYSARCH_USE_CASES_HPP
#define WSS_SYSARCH_USE_CASES_HPP

#include <cstdint>
#include <string>

#include "sysarch/enclosure.hpp"
#include "util/units.hpp"

namespace wss::sysarch {

/// One side of a deployment comparison.
struct DeploymentSide
{
    std::string name;
    std::int64_t endpoints = 0;
    std::int64_t switches = 0;
    std::int64_t cables = 0;
    int worst_case_hops = 0;
    std::int64_t rack_units = 0;
    Gbps port_bandwidth = 0.0;
    /// Bisection bandwidth (Tbps).
    double bisection_tbps = 0.0;
    /// Aggregate switching power (kW); 0 when the source the side is
    /// modeled from does not quote one.
    double total_power_kw = 0.0;
};

/// A full comparison (waferscale vs conventional).
struct DeploymentComparison
{
    DeploymentSide waferscale;
    DeploymentSide conventional;
};

/**
 * Table VII: a datacenter whose every server hangs off one
 * waferscale switch, vs the equivalent 2-level TH-5 Clos.
 *
 * @param servers  server count (8192 for 300 mm, 4096 for 200 mm)
 * @param line_rate  per-server bandwidth (200 Gbps in the paper)
 * @param ws_rack_units  the waferscale switch chassis height
 */
DeploymentComparison singleSwitchDatacenter(std::int64_t servers,
                                            Gbps line_rate,
                                            int ws_rack_units);

/**
 * Table VIII: a 2048-GPU singular-GPU cluster on one waferscale
 * switch (800G per GPU) vs the DGX GH200 NVSwitch fabric constants.
 */
DeploymentComparison singularGpuCluster(std::int64_t gpus,
                                        int ws_rack_units);

/**
 * Table IX: a hyperscale DCN whose spine is @p ws_switches
 * waferscale switches (2048 x 800G each, racks connected at
 * 2 x 800G), vs a TH-5-built network of the same rack count and
 * bisection.
 */
DeploymentComparison waferscaleDcn(std::int64_t racks, int ws_switches,
                                   int ws_rack_units);

/// Cost constants quoted in Section VIII.B.
struct CostModel
{
    /// One 800G QSFP-DD transceiver pair... the paper prices the
    /// module at $5000 [29]; a cable needs one per end.
    double transceiver_usd = 5000.0;
    /// Optical fiber per km [paper: ~$400/km].
    double fiber_usd_per_km = 400.0;
    /// Mean cable run (km) inside the datacenter.
    double mean_cable_km = 0.05;
    /// Colocation cost per RU per month (the paper quotes $75-$300).
    double colo_usd_per_ru_month = 150.0;
    /// Amortization horizon for the colocation delta (months).
    int colo_months = 36;
};

/// Savings of the waferscale side over the conventional side.
struct CostDelta
{
    double optics_usd = 0.0;
    double fiber_usd = 0.0;
    double colocation_usd = 0.0;

    double total() const { return optics_usd + fiber_usd + colocation_usd; }
};

/// Price the difference between the two sides of a comparison.
CostDelta estimateSavings(const DeploymentComparison &cmp,
                          const CostModel &model = {});

} // namespace wss::sysarch

#endif // WSS_SYSARCH_USE_CASES_HPP
