#include "sysarch/use_cases.hpp"

#include "power/ssc.hpp"
#include "power/switch_power.hpp"
#include "tech/external_io.hpp"
#include "tech/wsi.hpp"
#include "topology/clos.hpp"
#include "util/logging.hpp"

namespace wss::sysarch {

namespace {

/// Aggregate power (kW) of one waferscale switch with @p ports at
/// @p line_rate: chiplet cores of its internal 2-level Clos plus the
/// substrate-crossing I/O and optical external ports.
double
waferscalePowerKw(std::int64_t ports, Gbps line_rate)
{
    const power::SscConfig ssc = power::tomahawk5(1);
    const auto chiplets = topology::closChipletCount(ports, ssc.radix);
    const double watts =
        static_cast<double>(chiplets) * ssc.core_power +
        power::internalIoPower(
            2.0 * static_cast<double>(ports) * line_rate,
            tech::siIf2x()) +
        power::externalIoPower(ports, line_rate, tech::opticalIo());
    return watts / 1000.0;
}

/// Aggregate power (kW) of @p boxes conventional switch boxes of
/// radix @p radix: per-box core power plus pluggable-SerDes ports.
double
closBoxesPowerKw(std::int64_t boxes, int radix, Gbps line_rate)
{
    const power::SscConfig ssc = power::tomahawk5(1);
    const double per_box =
        ssc.core_power +
        power::externalIoPower(radix, line_rate, tech::serdes());
    return static_cast<double>(boxes) * per_box / 1000.0;
}

} // namespace

DeploymentComparison
singleSwitchDatacenter(std::int64_t servers, Gbps line_rate,
                       int ws_rack_units)
{
    if (servers <= 0)
        fatal("singleSwitchDatacenter: need a positive server count");

    DeploymentComparison cmp;

    cmp.waferscale.name = "waferscale switch";
    cmp.waferscale.endpoints = servers;
    cmp.waferscale.switches = 1;
    // One optical cable per server, straight into the switch.
    cmp.waferscale.cables = servers;
    cmp.waferscale.worst_case_hops = 1;
    cmp.waferscale.rack_units = ws_rack_units;
    cmp.waferscale.port_bandwidth = line_rate;
    cmp.waferscale.bisection_tbps =
        static_cast<double>(servers) * line_rate / 2.0 / 1000.0;
    cmp.waferscale.total_power_kw =
        waferscalePowerKw(servers, line_rate);

    // Equivalent 2-level TH-5 Clos: 3N/k switch boxes of 2U each;
    // every server cable plus every leaf-spine cable.
    constexpr int kTh5Radix = 256;
    constexpr int kSwitchBoxRu = 2;
    cmp.conventional.name = "TH-5 Clos network";
    cmp.conventional.endpoints = servers;
    cmp.conventional.switches =
        topology::closChipletCount(servers, kTh5Radix);
    cmp.conventional.cables = servers + servers; // host links + uplinks
    cmp.conventional.worst_case_hops = 3;        // leaf-spine-leaf
    cmp.conventional.rack_units =
        cmp.conventional.switches * kSwitchBoxRu;
    cmp.conventional.port_bandwidth = line_rate;
    cmp.conventional.bisection_tbps = cmp.waferscale.bisection_tbps;
    cmp.conventional.total_power_kw = closBoxesPowerKw(
        cmp.conventional.switches, kTh5Radix, line_rate);
    return cmp;
}

DeploymentComparison
singularGpuCluster(std::int64_t gpus, int ws_rack_units)
{
    DeploymentComparison cmp;

    constexpr Gbps kWsGpuRate = 800.0;
    cmp.waferscale.name = "waferscale switch";
    cmp.waferscale.endpoints = gpus;
    cmp.waferscale.switches = 1;
    cmp.waferscale.cables = gpus;
    cmp.waferscale.worst_case_hops = 1;
    cmp.waferscale.rack_units = ws_rack_units;
    cmp.waferscale.port_bandwidth = kWsGpuRate;
    cmp.waferscale.bisection_tbps =
        static_cast<double>(gpus) * kWsGpuRate / 2.0 / 1000.0;
    cmp.waferscale.total_power_kw =
        waferscalePowerKw(gpus, kWsGpuRate);

    // total_power_kw stays 0 on the NVSwitch side: the GH200 source
    // quotes no switching-power figure to model from.
    // DGX GH200 NVSwitch constants [8]: 256 GPUs at 900 Gbps behind
    // 132 NVSwitches in a 2-layer network, 2304 cables, 195 RU.
    cmp.conventional.name = "NVSwitch network (DGX GH200)";
    cmp.conventional.endpoints = 256;
    cmp.conventional.switches = 132;
    cmp.conventional.cables = 2304;
    cmp.conventional.worst_case_hops = 3;
    cmp.conventional.rack_units = 195;
    cmp.conventional.port_bandwidth = 900.0;
    cmp.conventional.bisection_tbps = 115.2;
    return cmp;
}

DeploymentComparison
waferscaleDcn(std::int64_t racks, int ws_switches, int ws_rack_units)
{
    if (racks <= 0 || ws_switches <= 0)
        fatal("waferscaleDcn: need positive rack and switch counts");

    DeploymentComparison cmp;

    // Every rack connects to the spine with 2 x 800G; each rack-spine
    // link is one cable, and the spine-internal Clos doubles the
    // count (Section VIII.B's 65536 cables for 16384 racks).
    constexpr Gbps kRackLink = 800.0;
    constexpr int kLinksPerRack = 2;

    cmp.waferscale.name = "waferscale spine DCN";
    cmp.waferscale.endpoints = racks;
    cmp.waferscale.switches = ws_switches;
    cmp.waferscale.cables = racks * kLinksPerRack * 2;
    cmp.waferscale.worst_case_hops = 3;
    cmp.waferscale.rack_units =
        static_cast<std::int64_t>(ws_switches) * ws_rack_units;
    cmp.waferscale.port_bandwidth = kRackLink * kLinksPerRack;
    cmp.waferscale.bisection_tbps = static_cast<double>(racks) *
                                    kRackLink * kLinksPerRack / 2.0 /
                                    1000.0;
    // Each spine switch is a 2048 x 800G waferscale build.
    cmp.waferscale.total_power_kw =
        static_cast<double>(ws_switches) *
        waferscalePowerKw(2048, kRackLink);

    // TH-5 DCN with the same racks and bisection: a 3-level Clos of
    // 256 x 200G boxes. Each rack needs 8 x 200G of uplink; the
    // paper's Table IX: 4608 switches, 163840 cables, 18432 RU for
    // 16384 racks (scaling linearly in the rack count).
    cmp.conventional.name = "TH-5 Clos DCN";
    cmp.conventional.endpoints = racks;
    cmp.conventional.switches = racks * 4608 / 16384;
    cmp.conventional.cables = racks * 163840 / 16384;
    cmp.conventional.worst_case_hops = 5;
    cmp.conventional.rack_units = racks * 18432 / 16384;
    cmp.conventional.port_bandwidth = kRackLink * kLinksPerRack;
    cmp.conventional.bisection_tbps = cmp.waferscale.bisection_tbps;
    cmp.conventional.total_power_kw =
        closBoxesPowerKw(cmp.conventional.switches, 256, 200.0);
    return cmp;
}

CostDelta
estimateSavings(const DeploymentComparison &cmp, const CostModel &model)
{
    CostDelta delta;
    const double cable_diff = static_cast<double>(
        cmp.conventional.cables - cmp.waferscale.cables);
    // Every removed cable removes two pluggable transceivers and its
    // fiber run.
    delta.optics_usd = cable_diff * 2.0 * model.transceiver_usd;
    delta.fiber_usd =
        cable_diff * model.mean_cable_km * model.fiber_usd_per_km;
    const double ru_diff = static_cast<double>(
        cmp.conventional.rack_units - cmp.waferscale.rack_units);
    delta.colocation_usd =
        ru_diff * model.colo_usd_per_ru_month * model.colo_months;
    return delta;
}

} // namespace wss::sysarch
