#include "sysarch/power_delivery.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace wss::sysarch {

PowerDeliveryPlan
sizePowerDelivery(Watts switch_power, Millimeters substrate_side,
                  const PowerDeliverySpec &spec)
{
    if (switch_power < 0.0 || substrate_side <= 0.0)
        fatal("sizePowerDelivery: bad inputs");

    PowerDeliveryPlan plan;
    const Watts demand = switch_power + spec.non_asic_power;

    // N+N redundancy: two full banks of PSUs.
    const int bank = static_cast<int>(
        std::ceil(demand / spec.psu_power));
    plan.psus = 2 * bank;
    plan.provisioned = static_cast<double>(bank) * spec.psu_power;

    plan.dcdc_converters = static_cast<int>(
        std::ceil(switch_power / spec.dcdc_power));

    const double amps = switch_power / spec.core_voltage;
    plan.vrms = static_cast<int>(std::ceil(
        amps / spec.vrm_current * (1.0 + spec.vrm_redundancy)));

    plan.board_area = plan.dcdc_converters * spec.dcdc_area +
                      plan.vrms * spec.vrm_area;
    const SquareMillimeters usable =
        substrate_side * substrate_side * (1.0 - spec.passives_fraction);
    plan.fits_under_wafer = plan.board_area <= usable;
    return plan;
}

} // namespace wss::sysarch
