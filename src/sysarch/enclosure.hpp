/**
 * @file
 * Chassis / front-panel budgeting — paper Section VIII.A, Fig. 29/30
 * and the Table III modular-switch comparison.
 *
 * O/E/O conversion happens on the wafer plane, so the front panel
 * needs only passive optical adapters (CS couplers): 108 per rack
 * unit. Higher port counts than the adapter budget are served with
 * splitter cables that bifurcate one 800G adapter into multiple
 * lower-rate ports. One additional RU hosts the management server;
 * the back panel carries power delivery and cooling.
 */

#ifndef WSS_SYSARCH_ENCLOSURE_HPP
#define WSS_SYSARCH_ENCLOSURE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace wss::sysarch {

/// Front-panel constants (Section VIII.A).
struct EnclosureSpec
{
    /// CS optical adapters per rack unit [6].
    int adapters_per_ru = 108;
    /// Rack units reserved for the management server.
    int management_ru = 1;
    /// Maximum ports one adapter can serve through splitter cables.
    int max_split = 4;
};

/// One sized enclosure.
struct EnclosurePlan
{
    /// Physical adapters on the front panel.
    int adapters = 0;
    /// Ports carried per adapter (1 = no splitters).
    int split = 1;
    /// Total chassis height, rack units.
    int rack_units = 0;
    /// Switch capacity density (Tbps per RU), Table III's metric.
    double capacity_density_tbps_ru = 0.0;
};

/**
 * Budget the enclosure for @p ports ports at @p line_rate.
 *
 * Picks the smallest splitter factor (1..max_split) whose adapter
 * count fits a compact chassis; reproduces the paper's 20 RU
 * (300 mm, 8192 ports) and 11 RU (200 mm, 4096 ports) results.
 */
EnclosurePlan planEnclosure(std::int64_t ports, Gbps line_rate,
                            const EnclosureSpec &spec = {});

/// A commercial modular switch row for the Table III comparison.
struct ModularSwitchRow
{
    std::string name;
    double rack_units;
    double total_bandwidth_tbps;
    std::int64_t ports_200g;
    double total_power_kw;

    double
    powerPerPort() const
    {
        return total_power_kw * 1000.0 /
               static_cast<double>(ports_200g);
    }
    double
    capacityDensity() const
    {
        return total_bandwidth_tbps / rack_units;
    }
};

/// The paper's three commercial comparison points [17], [12], [7].
std::vector<ModularSwitchRow> modularSwitchCatalog();

} // namespace wss::sysarch

#endif // WSS_SYSARCH_ENCLOSURE_HPP
