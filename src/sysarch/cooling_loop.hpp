/**
 * @file
 * Liquid-cooling loop design — paper Section VIII.A.
 *
 * A passive-cold-plate-loop (PCL) copper spreader covers each 2x2
 * block of chiplets; three consecutive PCLs share a supply channel;
 * each channel pair connects to the pump. A 1D thermal-resistance
 * model per PCL reproduces the paper's reported junction band
 * (70-80 C at 20 C inlet for 1.6 kW per PCL) and the OCP-guideline
 * flow requirement (10-12 LFM of DI water at 10 psi).
 */

#ifndef WSS_SYSARCH_COOLING_LOOP_HPP
#define WSS_SYSARCH_COOLING_LOOP_HPP

#include "util/units.hpp"

namespace wss::sysarch {

/// Cooling-loop constants (Section VIII.A).
struct CoolingLoopSpec
{
    /// Chiplets covered per PCL along each axis (2x2).
    int chiplets_per_pcl_side = 2;
    /// PCLs sharing one supply channel.
    int pcls_per_channel = 3;
    /// Junction-to-coolant thermal resistance per PCL (K/W);
    /// calibrated so 1.6 kW -> ~55 K rise (70-80 C junction).
    double pcl_thermal_resistance = 0.0344;
    /// Coolant inlet temperature (deg C).
    double inlet_temperature = 20.0;
    /// Nominal flow per loop, linear feet per minute (OCP band).
    double flow_lfm = 11.0;
    double pressure_psi = 10.0;
};

/// A sized cooling loop.
struct CoolingLoopPlan
{
    /// PCL spreaders (grid of 2x2 chiplet tiles).
    int pcls = 0;
    /// Supply channels leaving the wafer.
    int supply_channels = 0;
    /// Heat each PCL must dissipate (W).
    Watts power_per_pcl = 0.0;
    /// Predicted junction temperature (deg C).
    double junction_temperature = 0.0;
    /// Within the paper's 70-80 C operating band (or below)?
    bool within_band = false;
};

/**
 * Lay out the loop for a @p grid_side x @p grid_side chiplet array
 * dissipating @p total_power.
 */
CoolingLoopPlan sizeCoolingLoop(Watts total_power, int grid_side,
                                const CoolingLoopSpec &spec = {});

} // namespace wss::sysarch

#endif // WSS_SYSARCH_COOLING_LOOP_HPP
