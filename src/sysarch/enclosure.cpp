#include "sysarch/enclosure.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace wss::sysarch {

EnclosurePlan
planEnclosure(std::int64_t ports, Gbps line_rate,
              const EnclosureSpec &spec)
{
    if (ports <= 0 || line_rate <= 0.0)
        fatal("planEnclosure: ports and line rate must be positive");

    EnclosurePlan plan;
    // Front-panel adapters are 800G CS couplers; lower-rate ports are
    // bifurcated out of one adapter with splitter cables.
    constexpr double kAdapterGbps = 800.0;
    plan.split = std::max(
        1, std::min(spec.max_split,
                    static_cast<int>(kAdapterGbps / line_rate)));
    plan.adapters = static_cast<int>(
        (ports + plan.split - 1) / plan.split);
    plan.rack_units =
        static_cast<int>(std::ceil(static_cast<double>(plan.adapters) /
                                   spec.adapters_per_ru)) +
        spec.management_ru;
    plan.capacity_density_tbps_ru =
        static_cast<double>(ports) * line_rate /
        (1000.0 * plan.rack_units);
    return plan;
}

std::vector<ModularSwitchRow>
modularSwitchCatalog()
{
    // Table III's commercial rows: Cisco Nexus 9800 [17], Juniper
    // PTX10008 [12], Huawei NetEngine 8000 [7], at 200G per port.
    return {
        {"Cisco Nexus 9808", 16.0, 115.2, 576, 11.2},
        {"Juniper PTX10008", 21.0, 230.4, 1152, 25.9},
        {"Huawei NE8000 X8", 15.8, 115.2, 576, 11.0},
    };
}

} // namespace wss::sysarch
