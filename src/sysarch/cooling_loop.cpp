#include "sysarch/cooling_loop.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace wss::sysarch {

CoolingLoopPlan
sizeCoolingLoop(Watts total_power, int grid_side,
                const CoolingLoopSpec &spec)
{
    if (total_power < 0.0 || grid_side < 1)
        fatal("sizeCoolingLoop: bad inputs");

    CoolingLoopPlan plan;
    const int pcl_side = static_cast<int>(std::ceil(
        static_cast<double>(grid_side) / spec.chiplets_per_pcl_side));
    plan.pcls = pcl_side * pcl_side;
    plan.supply_channels = static_cast<int>(std::ceil(
        static_cast<double>(plan.pcls) /
        (spec.pcls_per_channel * pcl_side)));
    // Channels run per PCL row, every pcls_per_channel PCLs share one;
    // total channels leaving the wafer:
    plan.supply_channels = pcl_side *
                           static_cast<int>(std::ceil(
                               static_cast<double>(pcl_side) /
                               spec.pcls_per_channel));

    plan.power_per_pcl = total_power / plan.pcls;
    plan.junction_temperature =
        spec.inlet_temperature +
        plan.power_per_pcl * spec.pcl_thermal_resistance;
    plan.within_band = plan.junction_temperature <= 80.0;
    return plan;
}

} // namespace wss::sysarch
