/**
 * @file
 * Runtime fault injection: kill and restore links mid-simulation.
 *
 * A FaultSchedule is an ordered list of link up/down events applied
 * to a live sim::Network through the SimConfig::on_cycle hook. Each
 * event triggers Network::setLinkUp, which rebuilds every routing
 * table over the surviving links — so packets routed after the event
 * take the surviving ECMP paths, while flits already in flight on
 * the dead link drain out (the maintenance model; see
 * Network::setLinkUp). This is how degraded-mode latency and
 * throughput are measured with the existing Simulator, without any
 * changes to the router pipeline.
 */

#ifndef WSS_FAULT_FAULT_SCHEDULE_HPP
#define WSS_FAULT_FAULT_SCHEDULE_HPP

#include <functional>
#include <vector>

#include "obs/trace_event.hpp"
#include "sim/simulator.hpp"

namespace wss::fault {

/// One administrative link transition.
struct FaultEvent
{
    sim::Cycle at = 0;
    /// Logical link index (LogicalTopology::links() order).
    int link = 0;
    /// false = kill, true = restore.
    bool up = false;
};

/**
 * A deterministic, time-ordered schedule of link faults.
 */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /// Kill @p link at cycle @p at.
    void killLink(sim::Cycle at, int link);

    /// Restore @p link at cycle @p at.
    void restoreLink(sim::Cycle at, int link);

    /// Kill @p link at @p down and restore it at @p up (a flap).
    void flapLink(int link, sim::Cycle down, sim::Cycle up);

    const std::vector<FaultEvent> &events() const { return events_; }

    /**
     * Build the per-cycle hook for SimConfig::on_cycle. The hook
     * owns an immutable sorted copy of the events (insertion order
     * breaking same-cycle ties) and carries no per-run state, so one
     * hook can arm any number of independent simulations —
     * including concurrently, as each invocation only touches the
     * network it is handed.
     *
     * @p trace, when given, receives one instant event per applied
     * transition ("link N down" / "link N up", ts = simulated
     * cycle) — laying the fault timeline alongside the campaign
     * spans in the same trace file.
     */
    std::function<void(sim::Network &, sim::Cycle)>
    hook(obs::TraceEventSink *trace = nullptr) const;

    /// Arm @p cfg with this schedule (convenience for hook()).
    void
    installInto(sim::SimConfig &cfg,
                obs::TraceEventSink *trace = nullptr) const
    {
        cfg.on_cycle = hook(trace);
    }

  private:
    std::vector<FaultEvent> events_;
};

} // namespace wss::fault

#endif // WSS_FAULT_FAULT_SCHEDULE_HPP
