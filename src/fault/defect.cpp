#include "fault/defect.hpp"

#include <algorithm>
#include <numeric>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/seed.hpp"

namespace wss::fault {

double
FaultModel::nodeFailureProbability() const
{
    if (yield.bond_yield <= 0.0 || yield.bond_yield > 1.0)
        fatal("FaultModel: bond yield must be in (0, 1]");
    if (test_escape < 0.0 || test_escape > 1.0 ||
        node_field_failure < 0.0 || node_field_failure > 1.0)
        fatal("FaultModel: probabilities must be in [0, 1]");
    // A KGD test escape ships a defective die with probability
    // test_escape * P(die defective); dieYield validates the defect
    // model itself.
    const double defective = 1.0 - tech::dieYield(die_area, yield);
    const double survives = yield.bond_yield *
                            (1.0 - test_escape * defective) *
                            (1.0 - node_field_failure);
    return 1.0 - survives;
}

double
FaultModel::linkFailureProbability() const
{
    if (yield.bond_yield <= 0.0 || yield.bond_yield > 1.0)
        fatal("FaultModel: bond yield must be in (0, 1]");
    if (link_field_failure < 0.0 || link_field_failure > 1.0)
        fatal("FaultModel: probabilities must be in [0, 1]");
    return 1.0 - yield.bond_yield * (1.0 - link_field_failure);
}

int
DefectMap::failedNodeCount() const
{
    return static_cast<int>(
        std::count(node_failed.begin(), node_failed.end(), 1));
}

int
DefectMap::failedLinkUnits() const
{
    return std::accumulate(link_failed_units.begin(),
                           link_failed_units.end(), 0);
}

DefectSampler::DefectSampler(const topology::LogicalTopology &topo,
                             FaultModel model, std::uint64_t base_seed)
    : topo_(topo), model_(model), base_seed_(base_seed),
      p_node_(model.nodeFailureProbability()),
      p_link_(model.linkFailureProbability())
{}

DefectMap
DefectSampler::sample(std::uint64_t index) const
{
    Rng rng(deriveSeed(base_seed_, index));
    DefectMap map;
    map.node_failed.assign(topo_.nodes().size(), 0);
    map.link_failed_units.assign(topo_.links().size(), 0);
    // Fixed draw order — nodes first, then every unit of every
    // bundle — pins the map to (seed, index) alone.
    for (auto &dead : map.node_failed)
        dead = rng.nextBool(p_node_) ? 1 : 0;
    for (std::size_t li = 0; li < topo_.links().size(); ++li) {
        const int mult = topo_.links()[li].multiplicity;
        for (int m = 0; m < mult; ++m)
            if (rng.nextBool(p_link_))
                ++map.link_failed_units[li];
    }
    return map;
}

int
applySpares(DefectMap &map, const topology::LogicalTopology &topo,
            int spares)
{
    if (spares < 0)
        fatal("applySpares: spare count must be non-negative");
    if (map.node_failed.size() != topo.nodes().size() ||
        map.link_failed_units.size() != topo.links().size())
        fatal("applySpares: map does not match the topology");
    int repaired = 0;
    for (std::size_t node = 0;
         node < map.node_failed.size() && repaired < spares; ++node) {
        if (!map.node_failed[node])
            continue;
        map.node_failed[node] = 0;
        ++repaired;
        // The replacement chiplet is bonded fresh, so its link
        // interfaces come back too.
        for (std::size_t li = 0; li < topo.links().size(); ++li) {
            const auto &link = topo.links()[li];
            if (link.a == static_cast<int>(node) ||
                link.b == static_cast<int>(node))
                map.link_failed_units[li] = 0;
        }
    }
    return repaired;
}

} // namespace wss::fault
