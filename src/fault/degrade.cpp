#include "fault/degrade.hpp"

#include <queue>

#include "util/logging.hpp"

namespace wss::fault {

std::string_view
toString(Connectivity c)
{
    switch (c) {
    case Connectivity::FullyConnected: return "fully-connected";
    case Connectivity::Degraded: return "degraded";
    case Connectivity::Partitioned: return "partitioned";
    }
    return "?";
}

DegradeResult
degradeTopology(const topology::LogicalTopology &topo,
                const DefectMap &map)
{
    const auto &nodes = topo.nodes();
    const auto &links = topo.links();
    if (map.node_failed.size() != nodes.size() ||
        map.link_failed_units.size() != links.size())
        fatal("degradeTopology: map does not match the topology");

    DegradeResult result;
    result.original_ports = topo.totalExternalPorts();
    result.failed_nodes = map.failedNodeCount();
    result.failed_link_units = map.failedLinkUnits();

    const int n = topo.nodeCount();

    // Surviving adjacency: both endpoints alive and at least one
    // live unit left in the bundle.
    std::vector<std::vector<int>> adjacency(
        static_cast<std::size_t>(n));
    for (std::size_t li = 0; li < links.size(); ++li) {
        const auto &link = links[li];
        if (map.node_failed[link.a] || map.node_failed[link.b])
            continue;
        if (map.link_failed_units[li] >= link.multiplicity)
            continue;
        adjacency[link.a].push_back(link.b);
        adjacency[link.b].push_back(link.a);
    }

    // Connected components over surviving nodes.
    std::vector<int> component(static_cast<std::size_t>(n), -1);
    std::vector<std::int64_t> component_ports;
    for (int start = 0; start < n; ++start) {
        if (map.node_failed[start] || component[start] >= 0)
            continue;
        const int id = static_cast<int>(component_ports.size());
        std::int64_t ports = 0;
        std::queue<int> queue;
        component[start] = id;
        queue.push(start);
        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop();
            ports += nodes[u].external_ports;
            for (int v : adjacency[u]) {
                if (component[v] < 0) {
                    component[v] = id;
                    queue.push(v);
                }
            }
        }
        component_ports.push_back(ports);
    }

    // Keep the component with the most external ports (components
    // were discovered in ascending node id, so ties resolve to the
    // lowest id deterministically). Count how many port-bearing
    // islands exist for the classification.
    int kept = -1;
    int port_islands = 0;
    for (std::size_t c = 0; c < component_ports.size(); ++c) {
        if (component_ports[c] > 0)
            ++port_islands;
        if (kept < 0 || component_ports[c] > component_ports[kept])
            kept = static_cast<int>(c);
    }
    result.usable_ports = kept >= 0 ? component_ports[kept] : 0;

    if (port_islands > 1)
        result.classification = Connectivity::Partitioned;
    else if (result.usable_ports == result.original_ports)
        result.classification = Connectivity::FullyConnected;
    else
        result.classification = Connectivity::Degraded;

    // Rebuild the kept component as a standalone LogicalTopology.
    result.node_map.assign(static_cast<std::size_t>(n), -1);
    if (kept < 0)
        return result;

    topology::LogicalTopology survivor(topo.name() + "-degraded",
                                       topo.lineRate());
    for (const auto &ssc : topo.sscTypes())
        survivor.addSscType(ssc);
    for (int node = 0; node < n; ++node) {
        if (component[node] != kept)
            continue;
        result.node_map[node] =
            survivor.addNode(nodes[node].role, nodes[node].ssc_type,
                             nodes[node].external_ports);
    }

    const double original_bw = topo.totalInternalLinkBandwidth();
    double surviving_bw = 0.0;
    for (std::size_t li = 0; li < links.size(); ++li) {
        const auto &link = links[li];
        const int a = result.node_map[link.a];
        const int b = result.node_map[link.b];
        if (a < 0 || b < 0)
            continue;
        const int live = link.multiplicity - map.link_failed_units[li];
        if (live <= 0)
            continue;
        survivor.addLink(a, b, live);
        surviving_bw += static_cast<double>(live) * topo.lineRate();
    }
    result.bisection_fraction =
        original_bw > 0.0 ? surviving_bw / original_bw : 1.0;

    const std::string issue = survivor.validate();
    if (!issue.empty())
        panic("degradeTopology produced an invalid survivor: ", issue);
    result.topo = std::move(survivor);
    return result;
}

} // namespace wss::fault
