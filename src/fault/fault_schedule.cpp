#include "fault/fault_schedule.hpp"

#include <algorithm>
#include <memory>

#include "obs/flight_recorder.hpp"
#include "util/logging.hpp"

namespace wss::fault {

void
FaultSchedule::killLink(sim::Cycle at, int link)
{
    if (at < 0 || link < 0)
        fatal("FaultSchedule: bad kill event (cycle ", at, ", link ",
              link, ")");
    events_.push_back({at, link, false});
}

void
FaultSchedule::restoreLink(sim::Cycle at, int link)
{
    if (at < 0 || link < 0)
        fatal("FaultSchedule: bad restore event (cycle ", at, ", link ",
              link, ")");
    events_.push_back({at, link, true});
}

void
FaultSchedule::flapLink(int link, sim::Cycle down, sim::Cycle up)
{
    if (up <= down)
        fatal("FaultSchedule: flap must restore after it kills");
    killLink(down, link);
    restoreLink(up, link);
}

std::function<void(sim::Network &, sim::Cycle)>
FaultSchedule::hook(obs::TraceEventSink *trace) const
{
    auto events =
        std::make_shared<std::vector<FaultEvent>>(events_);
    std::stable_sort(events->begin(), events->end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    // The hook carries no mutable state — it binary-searches the
    // events due exactly at `now` each cycle (the simulator visits
    // every cycle from 0, so none are skipped). That makes the same
    // hook object safe to share across concurrently running
    // simulations, e.g. when a SweepJob copies one SimConfig into
    // many parallel cells.
    return [events, trace](sim::Network &network, sim::Cycle now) {
        const auto [begin, end] = std::equal_range(
            events->begin(), events->end(), FaultEvent{now, 0, false},
            [](const FaultEvent &a, const FaultEvent &b) {
                return a.at < b.at;
            });
        for (auto it = begin; it != end; ++it) {
            WSS_WARN_ONCE(
                "FaultSchedule: applying link transitions; each one "
                "rebuilds every routing table (O(routers^2) BFS) — "
                "fine per event, costly if scheduled every cycle");
            network.setLinkUp(it->link, it->up);
            obs::recordEvent(obs::EventKind::FaultInjection, it->link,
                             now, it->up ? "link up" : "link down");
            if (trace)
                trace->instant(
                    std::string("link ") + std::to_string(it->link) +
                        (it->up ? " up" : " down"),
                    "fault", 0, now,
                    {obs::TraceArg::num(
                         "link", static_cast<std::int64_t>(it->link)),
                     obs::TraceArg::str("state",
                                        it->up ? "up" : "down")});
        }
    };
}

} // namespace wss::fault
