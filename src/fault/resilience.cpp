#include "fault/resilience.hpp"

#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "exec/campaign.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "sim/workload.hpp"
#include "topology/clos.hpp"
#include "util/artifact.hpp"
#include "util/logging.hpp"
#include "util/seed.hpp"
#include "util/table.hpp"

namespace wss::fault {

namespace {

// Seed-derivation offsets keeping the map stream (indices
// [0, samples)) disjoint from the simulation streams of the same
// (radix, density) pair. Arbitrary constants well above any sample
// count.
constexpr std::uint64_t kHealthySimStream = 0xe5f1u << 16;
constexpr std::uint64_t kDegradedSimStream = 0xd3a7u << 16;

/// Minimal JSON string escaping (quotes, backslashes, control).
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

/// Accepted uniform-traffic throughput of @p topo at cfg.sim_rate
/// (flits/terminal/cycle). Fabrics with fewer than two terminals
/// cannot carry traffic and report 0.
double
acceptedThroughput(const topology::LogicalTopology &topo,
                   const ResilienceConfig &cfg, std::uint64_t seed)
{
    sim::Network network(topo, cfg.net_spec, seed);
    if (network.terminalCount() < 2)
        return 0.0;
    sim::SyntheticWorkload workload(
        sim::uniformTraffic(network.terminalCount()), cfg.sim_rate,
        cfg.sim_packet_size);
    sim::SimConfig sim_cfg = cfg.sim_cfg;
    sim_cfg.seed = seed;
    return sim::Simulator(network, workload, sim_cfg).run().accepted;
}

} // namespace

ResilienceCampaign::ResilienceCampaign(ResilienceConfig config)
    : config_(std::move(config))
{
    if (config_.radices.empty() || config_.defect_densities.empty() ||
        config_.spare_counts.empty())
        fatal("ResilienceCampaign: every sweep axis needs at least one "
              "value");
    if (config_.samples < 1)
        fatal("ResilienceCampaign: need at least one sample per cell");
    if (config_.sim_samples < 0 ||
        config_.sim_samples > config_.samples)
        fatal("ResilienceCampaign: sim_samples must be in [0, samples]");
    if (config_.sim_rate <= 0.0)
        fatal("ResilienceCampaign: sim_rate must be positive");
    for (int spares : config_.spare_counts)
        if (spares < 0)
            fatal("ResilienceCampaign: spare counts must be >= 0");
    for (double density : config_.defect_densities)
        if (density < 0.0)
            fatal("ResilienceCampaign: defect densities must be >= 0");
}

ResilienceResult
ResilienceCampaign::run(exec::ThreadPool *pool,
                        obs::TraceEventSink *trace,
                        obs::Profiler *profiler) const
{
    const auto &cfg = config_;
    const std::size_t n_r = cfg.radices.size();
    const std::size_t n_d = cfg.defect_densities.size();
    const std::size_t n_s = cfg.spare_counts.size();

    ResilienceResult result;
    result.cells.resize(n_r * n_d * n_s);

    // One campaign task per (radix, density, spares) cell, writing a
    // preallocated slot. The defect-map seed depends only on the
    // (radix, density) pair, so cells along the spare axis repair the
    // *same* sampled maps — survival is monotone in spares by
    // construction, not just in expectation.
    exec::Campaign campaign;
    for (std::size_t ri = 0; ri < n_r; ++ri) {
        for (std::size_t di = 0; di < n_d; ++di) {
            const std::uint64_t map_seed =
                deriveSeed(deriveSeed(cfg.seed, ri + 1), di + 1);
            for (std::size_t si = 0; si < n_s; ++si) {
                const std::size_t slot = (ri * n_d + di) * n_s + si;
                ResilienceCellResult *out = &result.cells[slot];
                std::ostringstream name;
                name << "clos(" << cfg.radices[ri] << ","
                     << cfg.ssc.radix << ")/d="
                     << cfg.defect_densities[di]
                     << "/s=" << cfg.spare_counts[si];
                campaign.addTask(name.str(), [this, ri, di, si,
                                              map_seed, out] {
                    *out = runCell(static_cast<int>(ri),
                                   static_cast<int>(di),
                                   static_cast<int>(si), map_seed);
                });
            }
        }
    }

    const exec::CampaignResult campaign_result =
        campaign.run(pool, trace, profiler);
    result.wall_seconds = campaign_result.wall_seconds;
    result.threads = campaign_result.threads;
    for (std::size_t i = 0; i < result.cells.size(); ++i)
        result.cells[i].seconds = campaign_result.jobs[i].seconds;
    return result;
}

ResilienceCellResult
ResilienceCampaign::runCell(int ri, int di, int si,
                            std::uint64_t map_seed) const
{
    const auto &cfg = config_;
    const std::int64_t ports =
        cfg.radices[static_cast<std::size_t>(ri)];
    const double density =
        cfg.defect_densities[static_cast<std::size_t>(di)];
    const int spares = cfg.spare_counts[static_cast<std::size_t>(si)];

    const topology::LogicalTopology topo =
        topology::buildFoldedClos({ports, cfg.ssc, 1});

    FaultModel model = cfg.model;
    model.yield.defect_density_cm2 = density;
    model.die_area = cfg.ssc.area;
    const DefectSampler sampler(topo, model, map_seed);

    ResilienceCellResult cell;
    {
        std::ostringstream label;
        label << "clos(" << ports << "," << cfg.ssc.radix << ")";
        cell.topology = label.str();
    }
    cell.ports = ports;
    cell.chiplets = topo.nodeCount();
    cell.defect_density = density;
    cell.spares = spares;
    cell.samples = cfg.samples;
    cell.p_node_fail = model.nodeFailureProbability();
    cell.p_link_fail = model.linkFailureProbability();
    cell.analytic_bond_yield =
        tech::chipletSystemYield(topo.nodeCount(), spares, model.yield);

    if (cfg.sim_samples > 0)
        cell.healthy_throughput = acceptedThroughput(
            topo, cfg,
            deriveSeed(map_seed,
                       kHealthySimStream +
                           static_cast<std::uint64_t>(si)));

    std::int64_t fully = 0;
    std::int64_t degraded = 0;
    std::int64_t partitioned = 0;
    double usable_sum = 0.0;
    double bisection_sum = 0.0;
    double degraded_throughput_sum = 0.0;
    int sims = 0;
    for (int s = 0; s < cfg.samples; ++s) {
        DefectMap map = sampler.sample(static_cast<std::uint64_t>(s));
        applySpares(map, topo, spares);
        const DegradeResult deg = degradeTopology(topo, map);
        switch (deg.classification) {
        case Connectivity::FullyConnected: ++fully; break;
        case Connectivity::Degraded: ++degraded; break;
        case Connectivity::Partitioned: ++partitioned; break;
        }
        usable_sum += static_cast<double>(deg.usable_ports);
        bisection_sum += deg.bisection_fraction;

        // Packet-level check of the first few maps: what uniform
        // throughput does the surviving fabric actually sustain?
        // Partitioned samples are skipped — the largest island's
        // throughput is not comparable to the whole switch's.
        if (s < cfg.sim_samples &&
            deg.classification != Connectivity::Partitioned &&
            deg.topo && deg.usable_ports >= 2) {
            degraded_throughput_sum += acceptedThroughput(
                *deg.topo, cfg,
                deriveSeed(map_seed,
                           kDegradedSimStream +
                               static_cast<std::uint64_t>(si) *
                                   (static_cast<std::uint64_t>(
                                        cfg.samples) +
                                    1) +
                               static_cast<std::uint64_t>(s)));
            ++sims;
        }
    }

    const auto total = static_cast<double>(cfg.samples);
    cell.survival = static_cast<double>(fully) / total;
    cell.p_degraded = static_cast<double>(degraded) / total;
    cell.p_partitioned = static_cast<double>(partitioned) / total;
    cell.expected_usable_ports = usable_sum / total;
    cell.usable_fraction =
        ports > 0 ? cell.expected_usable_ports /
                        static_cast<double>(ports)
                  : 0.0;
    cell.mean_bisection_fraction = bisection_sum / total;
    cell.sim_samples = sims;
    cell.mean_degraded_throughput =
        sims > 0 ? degraded_throughput_sum / static_cast<double>(sims)
                 : 0.0;
    return cell;
}

void
ResilienceResult::writeCsv(std::ostream &os) const
{
    // Provenance only — deliberately no wall-clock and no thread
    // count, so the same (config, seed) produces a byte-identical
    // file at any --jobs value.
    os << "# wss resilience campaign\n";
    os << "# cells=" << cells.size() << "\n";

    Table table("resilience",
                {"topology", "ports", "chiplets", "defect_density",
                 "spares", "samples", "p_node_fail", "p_link_fail",
                 "survival", "p_degraded", "p_partitioned",
                 "expected_usable_ports", "usable_fraction",
                 "mean_bisection_fraction", "analytic_bond_yield",
                 "sim_samples", "healthy_throughput",
                 "mean_degraded_throughput"});
    for (const auto &cell : cells) {
        table.addRow({cell.topology, Table::num(cell.ports),
                      Table::num(cell.chiplets),
                      Table::num(cell.defect_density, 4),
                      Table::num(cell.spares),
                      Table::num(cell.samples),
                      Table::num(cell.p_node_fail, 6),
                      Table::num(cell.p_link_fail, 6),
                      Table::num(cell.survival, 6),
                      Table::num(cell.p_degraded, 6),
                      Table::num(cell.p_partitioned, 6),
                      Table::num(cell.expected_usable_ports, 2),
                      Table::num(cell.usable_fraction, 6),
                      Table::num(cell.mean_bisection_fraction, 6),
                      Table::num(cell.analytic_bond_yield, 6),
                      Table::num(cell.sim_samples),
                      Table::num(cell.healthy_throughput, 4),
                      Table::num(cell.mean_degraded_throughput, 4)});
    }
    table.printCsv(os);
}

void
ResilienceResult::writeJson(std::ostream &os) const
{
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "{\n  \"wall_seconds\": " << wall_seconds
       << ",\n  \"threads\": " << threads << ",\n  \"cells\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i];
        os << (i ? ",\n" : "\n") << "    {\"topology\": \""
           << jsonEscape(c.topology) << "\", \"ports\": " << c.ports
           << ", \"chiplets\": " << c.chiplets
           << ", \"defect_density\": " << c.defect_density
           << ", \"spares\": " << c.spares
           << ", \"samples\": " << c.samples
           << ", \"p_node_fail\": " << c.p_node_fail
           << ", \"p_link_fail\": " << c.p_link_fail
           << ", \"survival\": " << c.survival
           << ", \"p_degraded\": " << c.p_degraded
           << ", \"p_partitioned\": " << c.p_partitioned
           << ", \"expected_usable_ports\": "
           << c.expected_usable_ports
           << ", \"usable_fraction\": " << c.usable_fraction
           << ", \"mean_bisection_fraction\": "
           << c.mean_bisection_fraction
           << ", \"analytic_bond_yield\": " << c.analytic_bond_yield
           << ", \"sim_samples\": " << c.sim_samples
           << ", \"healthy_throughput\": " << c.healthy_throughput
           << ", \"mean_degraded_throughput\": "
           << c.mean_degraded_throughput
           << ", \"seconds\": " << c.seconds << "}";
    }
    os << "\n  ]\n}\n";
}

void
ResilienceResult::writeCsvFile(const std::string &path) const
{
    util::writeArtifactFile(
        path, "ResilienceResult",
        [this](std::ostream &os) { writeCsv(os); });
}

void
ResilienceResult::writeJsonFile(const std::string &path) const
{
    util::writeArtifactFile(
        path, "ResilienceResult",
        [this](std::ostream &os) { writeJson(os); });
}

} // namespace wss::fault
