/**
 * @file
 * Monte-Carlo resilience campaigns: defect density x spare count x
 * radix.
 *
 * For every cell of the grid, a ResilienceCampaign samples many
 * DefectMaps of a folded-Clos switch (maps are shared across spare
 * counts of the same radix/density pair, so the spare axis is a true
 * paired comparison), repairs them with the paper's spare-socket
 * scheme, degrades the topology, and aggregates: survival
 * probability (the sampled analogue of tech::chipletSystemYield,
 * extended with link and field failures), expected usable radix, and
 * the surviving bisection fraction. Optionally the first few samples
 * of each cell are also *simulated* — packet-level saturation
 * throughput of the degraded fabric versus the healthy one.
 *
 * Execution rides the PR-1 engine: one exec::Campaign task per cell
 * on a work-stealing pool, results landing in preallocated slots,
 * and every random draw keyed by (seed, indices) through
 * util/seed.hpp — so the emitted CSV is bit-identical at any
 * --jobs value.
 */

#ifndef WSS_FAULT_RESILIENCE_HPP
#define WSS_FAULT_RESILIENCE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "fault/defect.hpp"
#include "fault/degrade.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_event.hpp"
#include "power/ssc.hpp"
#include "sim/simulator.hpp"

namespace wss::fault {

/// The sweep grid and Monte-Carlo knobs of one campaign.
struct ResilienceConfig
{
    /// Switch radices to study (external ports of the folded Clos;
    /// each must be a positive multiple of ssc.radix / 2).
    std::vector<std::int64_t> radices = {512};
    /// Die defect densities to sweep (defects per cm^2).
    std::vector<double> defect_densities = {0.1};
    /// Spare-SSC counts to sweep.
    std::vector<int> spare_counts = {0, 1, 2};
    /// Sub-switch chiplet; its area drives the KGD-escape term.
    power::SscConfig ssc;
    /// Failure model template. Per cell, yield.defect_density_cm2 is
    /// replaced by the swept density and die_area by ssc.area. The
    /// defaults include a small KGD test-escape and field-failure
    /// rate so the density axis is not a no-op under perfect
    /// screening.
    FaultModel model{
        .yield = {},
        .die_area = 800.0,
        .test_escape = 0.05,
        .node_field_failure = 0.002,
        .link_field_failure = 0.0005,
    };
    /// Defect maps sampled per cell.
    int samples = 1000;
    /// Of those, how many of the first samples additionally run a
    /// packet-level degraded-throughput simulation (0 = none).
    int sim_samples = 0;
    /// Offered load for the throughput simulations
    /// (flits/terminal/cycle; pick near saturation).
    double sim_rate = 0.9;
    /// Flits per packet in the throughput simulations.
    int sim_packet_size = 4;
    /// Fabric parameters for the throughput simulations.
    sim::NetworkSpec net_spec;
    /// Phase configuration for the throughput simulations (the seed
    /// field is ignored; per-run seeds are derived).
    sim::SimConfig sim_cfg;
    /// Base seed every per-cell and per-sample seed derives from.
    std::uint64_t seed = 1;
};

/// Aggregated outcome of one (radix, density, spares) cell.
struct ResilienceCellResult
{
    /// Topology label, e.g. "clos(512,256)" — note the comma: CSV
    /// emission must quote it.
    std::string topology;
    std::int64_t ports = 0;
    int chiplets = 0;
    double defect_density = 0.0;
    int spares = 0;
    int samples = 0;
    /// Per-draw failure probabilities the maps were sampled from.
    double p_node_fail = 0.0;
    double p_link_fail = 0.0;
    /// P(fully connected after spare repair) — the survival
    /// probability.
    double survival = 0.0;
    double p_degraded = 0.0;
    double p_partitioned = 0.0;
    double expected_usable_ports = 0.0;
    /// expected_usable_ports / ports.
    double usable_fraction = 0.0;
    double mean_bisection_fraction = 0.0;
    /// tech::chipletSystemYield(chiplets, spares) — the closed-form
    /// bond-only yield this campaign generalizes.
    double analytic_bond_yield = 0.0;
    /// Throughput simulations actually run (<= config.sim_samples).
    int sim_samples = 0;
    /// Accepted throughput of the pristine fabric at sim_rate.
    double healthy_throughput = 0.0;
    /// Mean accepted throughput over the simulated degraded maps.
    double mean_degraded_throughput = 0.0;
    /// Serial compute cost of the cell (excluded from the CSV so
    /// artifacts stay bit-identical across thread counts).
    double seconds = 0.0;
};

/// What a whole campaign produced.
struct ResilienceResult
{
    std::vector<ResilienceCellResult> cells;
    double wall_seconds = 0.0;
    int threads = 1;

    /// `# key=value` provenance lines plus one quoted CSV row per
    /// cell (via Table::printCsv, so embedded commas in topology
    /// names are escaped). Contains no timing — bit-identical for a
    /// given (config, seed) at any thread count.
    void writeCsv(std::ostream &os) const;
    /// Full-precision nested summary, including timing.
    void writeJson(std::ostream &os) const;

    /// Flush-checked file counterparts (fatal on I/O error, after
    /// everything writable has reached the file).
    void writeCsvFile(const std::string &path) const;
    void writeJsonFile(const std::string &path) const;
};

/**
 * Runs the grid. Cells execute as exec::Campaign tasks; @p pool
 * nullptr runs serially.
 */
class ResilienceCampaign
{
  public:
    explicit ResilienceCampaign(ResilienceConfig config);

    /// @p trace, when given, records one span per grid cell on
    /// per-worker tracks (design-point labels in the args).
    /// @p profiler accumulates one "campaign/<cell>" phase per cell.
    ResilienceResult run(exec::ThreadPool *pool = nullptr,
                         obs::TraceEventSink *trace = nullptr,
                         obs::Profiler *profiler = nullptr) const;

    const ResilienceConfig &config() const { return config_; }

  private:
    /// Compute one (radix, density, spares) cell; @p map_seed is the
    /// shared-by-spares defect-map seed of its (radix, density) pair.
    ResilienceCellResult runCell(int ri, int di, int si,
                                 std::uint64_t map_seed) const;

    ResilienceConfig config_;
};

} // namespace wss::fault

#endif // WSS_FAULT_RESILIENCE_HPP
