/**
 * @file
 * Fault timelines for the flow-level DCN simulator.
 *
 * The cycle-level FaultSchedule (fault_schedule.hpp) kills links of
 * one switch's internal fabric. At datacenter scale the unit of
 * failure is a whole switch or a trunk bundle, and time is wall-clock
 * seconds rather than fabric cycles — so the flow simulator gets its
 * own schedule type. flow::FlowSimulator consumes the sorted event
 * list, applies each transition to its DcnTopology, rebuilds the
 * ECMP tables, and reroutes the flows that were crossing the dead
 * element (paper Section III.C's resilience story, lifted from one
 * wafer to the network).
 *
 * sampleSwitchFailures() bridges from the defect layer: the same
 * FaultModel field-failure probability that drives DefectSampler
 * decides which switches die during a mission window, with the
 * standard (seed, index) determinism contract.
 */

#ifndef WSS_FAULT_FLOW_FAULTS_HPP
#define WSS_FAULT_FLOW_FAULTS_HPP

#include <cstdint>
#include <vector>

#include "fault/defect.hpp"

namespace wss::fault {

/// What a DCN fault event does.
enum class DcnFaultKind
{
    SwitchDown,
    SwitchUp,
    LinkDown,
    LinkUp,
};

/// One switch/trunk transition at a wall-clock instant.
struct DcnFaultEvent
{
    double at_s = 0.0;
    DcnFaultKind kind = DcnFaultKind::SwitchDown;
    /// Switch id or trunk link id, per kind.
    int id = 0;
};

/**
 * A deterministic, time-ordered schedule of DCN-level faults.
 */
class DcnFaultSchedule
{
  public:
    DcnFaultSchedule() = default;

    void killSwitch(double at_s, int id);
    void restoreSwitch(double at_s, int id);
    void killLink(double at_s, int id);
    void restoreLink(double at_s, int id);

    /// Events in insertion order.
    const std::vector<DcnFaultEvent> &events() const { return events_; }

    /// Events sorted by time, insertion order breaking ties — the
    /// order the flow simulator applies them in.
    std::vector<DcnFaultEvent> sorted() const;

    bool empty() const { return events_.empty(); }

    /**
     * Sample which of @p switches switches die during a mission
     * window of @p duration_s seconds: each fails independently with
     * @p model.node_field_failure probability, at a uniform instant.
     * Per-switch draws use Rng(deriveSeed(seed, id + 1)), so the
     * schedule is identical regardless of evaluation order.
     */
    static DcnFaultSchedule sampleSwitchFailures(const FaultModel &model,
                                                 int switches,
                                                 double duration_s,
                                                 std::uint64_t seed);

  private:
    std::vector<DcnFaultEvent> events_;
};

} // namespace wss::fault

#endif // WSS_FAULT_FLOW_FAULTS_HPP
