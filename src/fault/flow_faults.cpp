#include "fault/flow_faults.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/seed.hpp"

namespace wss::fault {

namespace {

void
checkEvent(double at_s, int id)
{
    if (at_s < 0.0)
        fatal("DcnFaultSchedule: event time must be >= 0, got ", at_s);
    if (id < 0)
        fatal("DcnFaultSchedule: element id must be >= 0, got ", id);
}

} // namespace

void
DcnFaultSchedule::killSwitch(double at_s, int id)
{
    checkEvent(at_s, id);
    events_.push_back({at_s, DcnFaultKind::SwitchDown, id});
}

void
DcnFaultSchedule::restoreSwitch(double at_s, int id)
{
    checkEvent(at_s, id);
    events_.push_back({at_s, DcnFaultKind::SwitchUp, id});
}

void
DcnFaultSchedule::killLink(double at_s, int id)
{
    checkEvent(at_s, id);
    events_.push_back({at_s, DcnFaultKind::LinkDown, id});
}

void
DcnFaultSchedule::restoreLink(double at_s, int id)
{
    checkEvent(at_s, id);
    events_.push_back({at_s, DcnFaultKind::LinkUp, id});
}

std::vector<DcnFaultEvent>
DcnFaultSchedule::sorted() const
{
    std::vector<DcnFaultEvent> out = events_;
    std::stable_sort(out.begin(), out.end(),
                     [](const DcnFaultEvent &x, const DcnFaultEvent &y) {
                         return x.at_s < y.at_s;
                     });
    return out;
}

DcnFaultSchedule
DcnFaultSchedule::sampleSwitchFailures(const FaultModel &model,
                                       int switches, double duration_s,
                                       std::uint64_t seed)
{
    if (switches < 0)
        fatal("sampleSwitchFailures: switch count must be >= 0");
    if (duration_s <= 0.0)
        fatal("sampleSwitchFailures: mission window must be positive");

    DcnFaultSchedule schedule;
    const double p = model.node_field_failure;
    if (p <= 0.0)
        return schedule;
    for (int id = 0; id < switches; ++id) {
        // Stateless per-switch substream: evaluation order never
        // changes the outcome.
        Rng rng(deriveSeed(seed,
                           static_cast<std::uint64_t>(id) + 1));
        if (rng.nextBool(p))
            schedule.killSwitch(rng.nextDouble() * duration_s, id);
    }
    return schedule;
}

} // namespace wss::fault
