/**
 * @file
 * Defect-map sampling — the dynamic counterpart of `tech/yield`.
 *
 * The paper's chiplet-based WSI argument rests on yield: known-good
 * dies plus >99.9% bond yield plus spare sockets make the assembly
 * buildable (Section III.A/B, modelled statically by
 * tech::chipletSystemYield). This module turns that closed-form
 * probability into concrete *failure maps*: which SSC sockets and
 * which bonded link units of a given LogicalTopology actually failed
 * — at assembly time (bond failures, KGD test escapes) or in the
 * field — so the degradation and resilience layers can ask what the
 * switch still does afterwards.
 *
 * Sampling is deterministic under the PR-1 contract: every map is
 * derived from (base seed, sample index) through the shared
 * splitmix64 finalizer (util/seed.hpp), so any thread can sample any
 * index independently and a campaign's output is bit-identical at
 * any worker count.
 */

#ifndef WSS_FAULT_DEFECT_HPP
#define WSS_FAULT_DEFECT_HPP

#include <cstdint>
#include <vector>

#include "tech/yield.hpp"
#include "topology/logical_topology.hpp"

namespace wss::fault {

/**
 * Failure-probability model for one assembled waferscale switch.
 *
 * An SSC socket fails when its bond fails, when a defective die
 * escaped the KGD test, or when it dies in service; a link bundle
 * unit fails when its interface bond fails or it dies in service.
 * All probabilities compose independently.
 */
struct FaultModel
{
    /// Die-defect + bond model (tech::YieldModel semantics).
    tech::YieldModel yield;
    /// SSC die area used for the KGD-escape computation (mm^2);
    /// the paper's TH-5-class die is ~800 mm^2.
    SquareMillimeters die_area = 800.0;
    /// Fraction of defective dies the KGD test *misses* (test
    /// escapes). 0 = perfect screening, the paper's idealization.
    double test_escape = 0.0;
    /// Probability an SSC fails in service over the studied mission
    /// window (field failures; 0 = assembly-time study only).
    double node_field_failure = 0.0;
    /// Probability one bonded link unit fails in service.
    double link_field_failure = 0.0;

    /// Probability one SSC socket is dead: bond failure, KGD test
    /// escape, or field failure.
    double nodeFailureProbability() const;

    /// Probability one link bundle unit is dead: interface bond
    /// failure or field failure.
    double linkFailureProbability() const;
};

/**
 * One sampled failure map over a LogicalTopology: which chiplets and
 * how many units of each link bundle are dead.
 */
struct DefectMap
{
    /// Per-node dead flag (indexed like LogicalTopology::nodes()).
    std::vector<char> node_failed;
    /// Dead units per link bundle (indexed like links(); in
    /// [0, multiplicity]).
    std::vector<int> link_failed_units;

    int failedNodeCount() const;
    int failedLinkUnits() const;
    bool
    anyFailure() const
    {
        return failedNodeCount() > 0 || failedLinkUnits() > 0;
    }
};

/**
 * Deterministic Monte-Carlo sampler of DefectMaps for one topology.
 */
class DefectSampler
{
  public:
    DefectSampler(const topology::LogicalTopology &topo, FaultModel model,
                  std::uint64_t base_seed);

    /**
     * Sample map @p index. Stateless per index: uses
     * Rng(deriveSeed(base_seed, index)), drawing nodes first then
     * link units, so the same (seed, index) always yields the same
     * map regardless of call order or thread.
     */
    DefectMap sample(std::uint64_t index) const;

    const FaultModel &model() const { return model_; }

  private:
    const topology::LogicalTopology &topo_;
    FaultModel model_;
    std::uint64_t base_seed_;
    double p_node_;
    double p_link_;
};

/**
 * Spare-SSC reallocation (the paper's spare-socket scheme): repair up
 * to @p spares failed nodes of @p map, lowest node id first — the
 * deterministic stand-in for "rebond the spare where it is needed".
 * A repaired socket gets a fresh chiplet and fresh bonds, so the
 * failed units of its incident link bundles are also restored.
 * Returns the number of nodes repaired.
 */
int applySpares(DefectMap &map, const topology::LogicalTopology &topo,
                int spares);

} // namespace wss::fault

#endif // WSS_FAULT_DEFECT_HPP
