/**
 * @file
 * Topology degradation: what a waferscale switch still is after a
 * DefectMap strikes it.
 *
 * Applying a map removes dead SSCs and dead link units from the
 * logical fabric, then asks the connectivity question the paper's
 * spare-socket story leaves open: are all surviving external ports
 * still mutually reachable (FullyConnected), did we lose ports but
 * keep one fabric (Degraded), or did the failures split the
 * port-bearing chiplets into islands (Partitioned)? The surviving
 * component is re-emitted as a valid LogicalTopology so the existing
 * sim::Network / Simulator stack can measure packet-level behaviour
 * of the degraded switch directly.
 */

#ifndef WSS_FAULT_DEGRADE_HPP
#define WSS_FAULT_DEGRADE_HPP

#include <optional>
#include <string_view>
#include <vector>

#include "fault/defect.hpp"
#include "topology/logical_topology.hpp"

namespace wss::fault {

/// How well the surviving fabric hangs together.
enum class Connectivity
{
    /// Every original external port survives and all port-bearing
    /// chiplets are mutually reachable (e.g. a dead spine in a Clos
    /// with surviving ECMP siblings).
    FullyConnected,
    /// Some external ports are gone (dead or unreachable leaves),
    /// but the surviving ports form one connected fabric.
    Degraded,
    /// Port-bearing chiplets ended up in two or more islands.
    Partitioned,
};

std::string_view toString(Connectivity c);

/// What applying a DefectMap left behind.
struct DegradeResult
{
    Connectivity classification = Connectivity::FullyConnected;
    /// The largest surviving connected component, renumbered into a
    /// valid LogicalTopology (link multiplicities reduced by their
    /// dead units). Absent when nothing port-bearing survived.
    std::optional<topology::LogicalTopology> topo;
    /// Original node id -> surviving node id, -1 for dead/dropped.
    std::vector<int> node_map;
    /// External ports usable in the kept component.
    std::int64_t usable_ports = 0;
    /// External ports of the pristine fabric.
    std::int64_t original_ports = 0;
    /// Surviving internal link bandwidth of the kept component as a
    /// fraction of the pristine fabric's — the proxy for the lost
    /// bisection under uniform traffic.
    double bisection_fraction = 0.0;
    int failed_nodes = 0;
    int failed_link_units = 0;
};

/**
 * Apply @p map to @p topo: drop dead nodes, reduce each bundle's
 * multiplicity by its dead units, keep the connected component with
 * the most external ports (ties: lowest node id), classify, and
 * rebuild the survivor as a LogicalTopology.
 */
DegradeResult degradeTopology(const topology::LogicalTopology &topo,
                              const DefectMap &map);

} // namespace wss::fault

#endif // WSS_FAULT_DEGRADE_HPP
