/**
 * @file
 * Collective-comparison campaigns: (switch design x collective x
 * payload) grids answering the headline question — what does a ring
 * allreduce or an MoE all-to-all cost on a waferscale switch versus
 * a conventional leaf-spine — with every cell cross-checked against
 * the closed-form alpha-beta model.
 *
 * Execution rides exec::Campaign exactly like DcnCampaign: one task
 * per cell into a preallocated slot, no randomness in the engine, so
 * the CSV artifact is byte-identical at any --jobs value
 * (ctest-asserted).
 */

#ifndef WSS_COLL_CAMPAIGN_HPP
#define WSS_COLL_CAMPAIGN_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "coll/execute.hpp"
#include "exec/thread_pool.hpp"
#include "flow/switch_profile.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_event.hpp"

namespace wss::coll {

/// One collective x algorithm point of the sweep.
struct CollSpec
{
    Collective collective = Collective::AllReduce;
    Algorithm algorithm = Algorithm::Ring;
};

/// The canonical comparison set: ring / halving-doubling / tree
/// allreduce plus the MoE all-to-all.
std::vector<CollSpec> defaultCollSpecs();

/// Build the schedule a CollSpec names (fatal on unsupported
/// combinations, e.g. tree reduce-scatter).
Schedule buildSchedule(const CollSpec &spec, int ranks);

/// The sweep grid of one collective campaign.
struct CollCampaignConfig
{
    /// Calibrated switch designs to compare (>= 1).
    std::vector<flow::SwitchProfile> designs;
    /// Fabric shape built from each design.
    flow::DcnKind kind = flow::DcnKind::FatTree;
    /// Ranks (one host per rank).
    int ranks = 64;
    /// Collectives to sweep.
    std::vector<CollSpec> collectives = defaultCollSpecs();
    /// Per-rank payloads (bytes) to sweep.
    std::vector<double> payload_bytes = {1 << 20};
    /// Optional mid-collective fault applied in every cell.
    CollFaultSpec fault;
    /// Provenance only — the engine is deterministic; recorded in
    /// the CSV header so artifacts state their full configuration.
    std::uint64_t seed = 1;
};

/// One (design, collective, payload) cell.
struct CollCellResult
{
    std::string design;
    std::string collective; ///< Schedule::name()
    int ranks = 0;
    double payload_bytes = 0.0;
    std::string topology;
    int switches = 0;
    int tiers = 0;
    int hops = 0; ///< worst-case switch hops (alpha-beta hop count)
    /// Flow-level execution and the closed-form model of the same
    /// schedule.
    CollExecResult flow;
    CollExecResult model;
    /// Serial compute cost (excluded from the CSV so artifacts stay
    /// bit-identical across thread counts).
    double seconds = 0.0;
};

/// What a whole campaign produced.
struct CollResult
{
    std::vector<CollCellResult> cells;
    double wall_seconds = 0.0;
    int threads = 1;

    /// `# key=value` provenance plus one quoted row per cell. No
    /// timing — byte-identical at any --jobs value.
    void writeCsv(std::ostream &os) const;
    /// Full-precision nested summary, including timing.
    void writeJson(std::ostream &os) const;

    /// Flush-checked file counterparts (fatal on I/O error).
    void writeCsvFile(const std::string &path) const;
    void writeJsonFile(const std::string &path) const;
};

/**
 * Runs the (design x collective x payload) grid.
 */
class CollCampaign
{
  public:
    explicit CollCampaign(CollCampaignConfig config);

    /// @p pool nullptr runs serially. @p trace records one span per
    /// cell on per-worker tracks. @p profiler accumulates one
    /// "campaign/<cell>" phase per cell (merged across workers after
    /// the barrier).
    CollResult run(exec::ThreadPool *pool = nullptr,
                   obs::TraceEventSink *trace = nullptr,
                   obs::Profiler *profiler = nullptr) const;

    const CollCampaignConfig &config() const { return config_; }

  private:
    CollCellResult runCell(std::size_t di, std::size_t ci,
                           std::size_t pi) const;

    CollCampaignConfig config_;
};

} // namespace wss::coll

#endif // WSS_COLL_CAMPAIGN_HPP
