/**
 * @file
 * Collective-communication schedules — the message-level plans that
 * ML frameworks (NCCL/RCCL-style) execute for allreduce,
 * reduce-scatter, all-gather and MoE all-to-all.
 *
 * A Schedule is a deterministic, dependency-ordered message list: it
 * is partitioned into *steps*, and the dependency contract is
 * bulk-synchronous — every message of step s must be delivered
 * before any message of step s+1 starts. That one contract is shared
 * by all three execution fidelities (closed-form alpha-beta,
 * flow-level DCN, cycle-accurate fabric), which is what makes them
 * cross-checkable: for the textbook algorithms the step-barrier sum
 * reproduces the classical cost formulas exactly (ring allreduce:
 * 2(N-1) · (α + S/(N·B)), recursive halving/doubling:
 * 2·lg N · α + 2·S·(1−1/N)/B, binomial tree: 2·lg N · (α + S/B)).
 *
 * Message payloads are stored as *fractions* of the collective's
 * vector size, so one schedule prices any payload and lowers to any
 * representation (bytes for the flow simulator, flits for the
 * cycle-accurate fabric).
 *
 * Builders are pure functions of (algorithm, ranks): same inputs,
 * same message list, bit for bit, on every platform and thread
 * count — the determinism the exec::Campaign CSV contract rides on.
 */

#ifndef WSS_COLL_SCHEDULE_HPP
#define WSS_COLL_SCHEDULE_HPP

#include <string>
#include <string_view>
#include <vector>

namespace wss::coll {

/// Which collective operation a schedule implements.
enum class Collective
{
    AllReduce,
    ReduceScatter,
    AllGather,
    /// Full personalized exchange — MoE expert-parallel dispatch.
    AllToAll,
    /// One rank sends the payload to one other (PP activations).
    PointToPoint,
};

/// Which message pattern implements it.
enum class Algorithm
{
    /// Logical ring; chunks of 1/N circulate N-1 times per phase.
    Ring,
    /// Full-vector pairwise exchange over hypercube dimensions
    /// (bit 1, 2, 4, ...). For non-power-of-two rank counts the
    /// pattern degenerates to the pruned hypercube the mini-app
    /// trace generators emit (partners >= ranks are skipped) — use
    /// it for trace synthesis, not as a complete allreduce there.
    RecursiveDoubling,
    /// Rabenseifner: reduce-scatter by recursive halving then
    /// all-gather by recursive doubling. Power-of-two ranks only.
    HalvingDoubling,
    /// Binomial tree reduce to rank 0 then binomial broadcast.
    /// Power-of-two ranks only.
    Tree,
    /// Linear-shift pairwise exchange (all-to-all).
    Pairwise,
    /// Single direct transfer (point-to-point).
    Direct,
};

std::string_view toString(Collective collective);
std::string_view toString(Algorithm algorithm);

/// One message of a schedule: @p src sends @p fraction of the
/// collective's payload to @p dst during step @p step.
struct CollMessage
{
    int step = 0;
    int src = 0;
    int dst = 0;
    /// Fraction of the full vector carried (0, 1].
    double fraction = 1.0;
};

/**
 * A complete collective schedule over ranks 0..ranks-1. Messages are
 * stored step-major in emission order (ascending src within a step),
 * and that order is part of the contract: trace lowering preserves
 * it so generated traces are reproducible byte for byte.
 */
struct Schedule
{
    Collective collective = Collective::AllReduce;
    Algorithm algorithm = Algorithm::Ring;
    int ranks = 0;
    /// Dependency depth: messages with equal step run concurrently,
    /// step s+1 starts only after every step-s delivery.
    int steps = 0;
    std::vector<CollMessage> messages;

    /// "allreduce/ring" — the label carried into CSV rows.
    std::string name() const;

    /// Structural validity: ranks >= 2, every step populated, src !=
    /// dst, endpoints in range, fractions in (0, 1], step-major
    /// order. Returns an empty string when valid.
    std::string validate() const;

    /// Total bytes crossing the network for @p payload_bytes per
    /// rank (sum of message fractions x payload).
    double bytesOnWire(double payload_bytes) const;

    /// Largest per-message byte count of step @p step — the term a
    /// bulk-synchronous step's duration is proportional to.
    double maxStepBytes(int step, double payload_bytes) const;
};

/**
 * Allreduce of @p ranks ranks with @p algorithm (Ring,
 * RecursiveDoubling, HalvingDoubling or Tree). fatal() on rank
 * counts an algorithm cannot schedule (HalvingDoubling/Tree need a
 * power of two; everything needs >= 2).
 */
Schedule allReduceSchedule(Algorithm algorithm, int ranks);

/// Ring reduce-scatter: N-1 steps of 1/N-fraction chunks.
Schedule reduceScatterSchedule(int ranks);

/// Ring all-gather: N-1 steps of 1/N-fraction chunks.
Schedule allGatherSchedule(int ranks);

/// Pairwise-shift all-to-all: step s sends each rank's 1/N chunk to
/// (rank + s) mod N, s = 1..N-1.
Schedule allToAllSchedule(int ranks);

/// Single full-payload transfer rank 0 -> rank 1.
Schedule pointToPointSchedule();

// --- closed-form cost -------------------------------------------------

/// The classic two-parameter cost model: a message of b bytes costs
/// alpha_s + b * beta_s_per_byte seconds.
struct AlphaBeta
{
    /// Per-message latency (seconds): switch traversals at zero
    /// load.
    double alpha_s = 0.0;
    /// Inverse bandwidth (seconds per byte) of one rank's link.
    double beta_s_per_byte = 0.0;
};

/**
 * Completion time of @p schedule under the alpha-beta model with the
 * bulk-synchronous step contract: sum over steps of
 * (alpha + beta * largest message of the step). For the textbook
 * algorithms this reproduces their published closed forms.
 */
double alphaBetaSeconds(const Schedule &schedule, double payload_bytes,
                        const AlphaBeta &cost);

/**
 * The standard bus-bandwidth correction factor relating algorithmic
 * bandwidth (payload / time) to link-level bandwidth: 2(N-1)/N for
 * allreduce, (N-1)/N for reduce-scatter / all-gather / all-to-all,
 * 1 for point-to-point. busbw = factor * payload / time.
 */
double busBandwidthFactor(Collective collective, int ranks);

} // namespace wss::coll

#endif // WSS_COLL_SCHEDULE_HPP
