#include "coll/execute.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <ostream>
#include <vector>

#include "flow/flow_sim.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/watchdog.hpp"
#include "sim/simulator.hpp"
#include "trace/coll_lowering.hpp"
#include "trace/trace_workload.hpp"
#include "util/artifact.hpp"
#include "util/logging.hpp"

namespace wss::coll {

namespace {

/// Shortest round-trip decimal form (SimObservation::dumpCsv idiom).
std::string
formatDouble(double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

/// Shared result assembly: bandwidth figures from (schedule,
/// payload, completion time).
CollExecResult
finalize(const Schedule &schedule, double payload_bytes, double seconds,
         double bytes_on_wire)
{
    CollExecResult r;
    r.seconds = seconds;
    r.steps = schedule.steps;
    r.messages = static_cast<std::int64_t>(schedule.messages.size());
    r.bytes_on_wire = bytes_on_wire;
    if (seconds > 0.0) {
        r.algbw_gbps = payload_bytes * 8.0 / seconds / 1e9;
        r.busbw_gbps =
            r.algbw_gbps *
            busBandwidthFactor(schedule.collective, schedule.ranks);
    }
    return r;
}

void
requireValid(const Schedule &schedule, double payload_bytes,
             const char *who)
{
    const std::string err = schedule.validate();
    if (!err.empty())
        fatal(who, ": invalid ", schedule.name(), " schedule: ", err);
    if (payload_bytes <= 0.0)
        fatal(who, ": payload must be positive, got ", payload_bytes);
}

void
countCollective(const CollExecConfig &cfg, const Schedule &schedule,
                double bytes_on_wire)
{
    if (!cfg.metrics)
        return;
    cfg.metrics->counter("coll.steps")
        .inc(static_cast<std::uint64_t>(schedule.steps));
    cfg.metrics->counter("coll.messages")
        .inc(static_cast<std::uint64_t>(schedule.messages.size()));
    cfg.metrics->counter("coll.bytes")
        .inc(static_cast<std::uint64_t>(bytes_on_wire));
}

} // namespace

std::int64_t
CollTelemetry::totalMessages() const
{
    std::int64_t total = 0;
    for (const Step &s : steps)
        total += s.messages;
    return total;
}

std::int64_t
CollTelemetry::totalFailed() const
{
    std::int64_t total = 0;
    for (const Step &s : steps)
        total += s.failed;
    return total;
}

double
CollTelemetry::totalBytes() const
{
    // Step order, like executeOnDcn's bytes_on_wire accumulation —
    // identical addition sequence, identical double.
    double total = 0.0;
    for (const Step &s : steps)
        total += s.bytes;
    return total;
}

void
CollTelemetry::dumpCsv(std::ostream &os) const
{
    os << "# wss coll telemetry\n";
    os << "# steps=" << steps.size() << " ranks=" << ranks << "\n";
    os << "record,step,scope,metric,value\n";

    for (const Step &s : steps) {
        os << "step," << s.step << ",-,start_s,"
           << formatDouble(s.start_s) << "\n";
        os << "step," << s.step << ",-,seconds,"
           << formatDouble(s.seconds) << "\n";
        os << "step," << s.step << ",-,messages," << s.messages
           << "\n";
        os << "step," << s.step << ",-,failed," << s.failed << "\n";
        os << "step," << s.step << ",-,bytes," << formatDouble(s.bytes)
           << "\n";
    }

    for (const Step &s : steps)
        for (std::size_t r = 0; r < s.rank_busy_s.size(); ++r)
            if (s.rank_busy_s[r] > 0.0 || s.rank_bytes[r] > 0.0) {
                os << "rank," << s.step << ",r" << r << ",busy_s,"
                   << formatDouble(s.rank_busy_s[r]) << "\n";
                os << "rank," << s.step << ",r" << r << ",bytes,"
                   << formatDouble(s.rank_bytes[r]) << "\n";
            }

    os << "total,run,-,messages," << totalMessages() << "\n";
    os << "total,run,-,failed," << totalFailed() << "\n";
    os << "total,run,-,bytes," << formatDouble(totalBytes()) << "\n";
}

void
CollTelemetry::dumpCsvFile(const std::string &path) const
{
    util::writeArtifactFile(path, "CollTelemetry",
                            [this](std::ostream &os) { dumpCsv(os); });
}

CollExecResult
executeAlphaBeta(const Schedule &schedule, double payload_bytes,
                 const AlphaBeta &cost)
{
    requireValid(schedule, payload_bytes, "executeAlphaBeta");
    return finalize(schedule, payload_bytes,
                    alphaBetaSeconds(schedule, payload_bytes, cost),
                    schedule.bytesOnWire(payload_bytes));
}

AlphaBeta
alphaBetaOf(const flow::SwitchProfile &profile, double line_rate_gbps,
            int hops)
{
    if (line_rate_gbps <= 0.0)
        fatal("alphaBetaOf: line rate must be positive");
    if (hops < 1) fatal("alphaBetaOf: hops must be >= 1");
    AlphaBeta ab;
    ab.alpha_s = static_cast<double>(hops) * profile.zero_load_latency *
                 profile.cycle_seconds;
    const double sat = std::min(profile.saturation, 1.0);
    ab.beta_s_per_byte = 1.0 / (line_rate_gbps * 1e9 / 8.0 * sat);
    return ab;
}

CollExecResult
executeOnDcn(const Schedule &schedule, double payload_bytes,
             flow::DcnTopology &topo, const flow::SwitchProfile &profile,
             const CollExecConfig &cfg)
{
    requireValid(schedule, payload_bytes, "executeOnDcn");
    if (topo.hostCount() < schedule.ranks)
        fatal("executeOnDcn: ", schedule.ranks, "-rank ",
              schedule.name(), " needs ", schedule.ranks,
              " hosts but the topology has ", topo.hostCount());

    obs::ScopedPhase exec_phase(cfg.profiler, "coll-dcn");

    double seconds = 0.0;
    double bytes_on_wire = 0.0;
    std::int64_t failed = 0;
    std::vector<flow::FlowArrival> step_flows;
    std::size_t mi = 0;
    std::uint64_t flow_id = 1;

    std::shared_ptr<CollTelemetry> telemetry;
    std::vector<flow::FlowRecord> records;
    if (cfg.telemetry) {
        telemetry = std::make_shared<CollTelemetry>();
        telemetry->ranks = schedule.ranks;
    }

    for (int step = 0; step < schedule.steps; ++step) {
        obs::ScopedPhase step_phase(cfg.profiler, "step");
        // Step boundary mark + heartbeat: a collective hung inside a
        // step names the step in the stall dump. Purely passive.
        obs::recordEvent(obs::EventKind::SimEpoch, step, schedule.steps,
                         schedule.name());
        obs::heartbeat();
        if (cfg.fault.at_step == step) {
            if (cfg.fault.kill_switch)
                topo.setSwitchAlive(cfg.fault.id, false);
            else
                topo.setLinkAlive(cfg.fault.id, false);
            if (cfg.trace)
                cfg.trace->instant(
                    cfg.fault.kill_switch ? "switch down" : "trunk down",
                    "fault", cfg.trace_tid,
                    static_cast<std::int64_t>(seconds * 1e6),
                    {obs::TraceArg::num(
                        "id", static_cast<std::int64_t>(cfg.fault.id))});
            obs::recordEvent(obs::EventKind::FaultInjection, cfg.fault.id,
                             step,
                             cfg.fault.kill_switch ? "switch down"
                                                   : "trunk down");
        }

        step_flows.clear();
        while (mi < schedule.messages.size() &&
               schedule.messages[mi].step == step) {
            const CollMessage &m = schedule.messages[mi++];
            flow::FlowArrival a;
            a.id = flow_id++;
            a.arrival_s = 0.0;
            a.src_host = m.src;
            a.dst_host = m.dst;
            a.bytes = m.fraction * payload_bytes;
            step_flows.push_back(a);
        }

        // Dependency-aware release: the whole batch starts at the
        // step barrier, the barrier's span is its slowest flow.
        flow::FlowSimConfig step_cfg;
        step_cfg.profiler = cfg.profiler;
        if (telemetry) {
            records.clear();
            step_cfg.flow_records = &records;
        }
        const flow::FlowSimResult r =
            flow::simulateFlows(topo, profile, step_flows, {}, step_cfg);
        const double step_seconds = r.fct_max_s;
        failed += r.failed;
        bytes_on_wire += r.completed_bytes;
        if (cfg.trace)
            cfg.trace->complete(
                "step " + std::to_string(step), cfg.trace_label,
                cfg.trace_tid, static_cast<std::int64_t>(seconds * 1e6),
                static_cast<std::int64_t>(step_seconds * 1e6),
                {obs::TraceArg::num(
                     "messages",
                     static_cast<std::int64_t>(step_flows.size())),
                 obs::TraceArg::num(
                     "failed", static_cast<std::int64_t>(r.failed))});

        if (telemetry) {
            CollTelemetry::Step ts;
            ts.step = step;
            ts.start_s = seconds;
            ts.seconds = step_seconds;
            ts.messages =
                static_cast<std::int64_t>(step_flows.size());
            ts.failed = r.failed;
            ts.bytes = r.completed_bytes;
            const auto ranks =
                static_cast<std::size_t>(schedule.ranks);
            ts.rank_busy_s.assign(ranks, 0.0);
            ts.rank_bytes.assign(ranks, 0.0);
            for (const flow::FlowRecord &rec : records) {
                if (rec.failed)
                    continue;
                const auto src = static_cast<std::size_t>(rec.src);
                ts.rank_busy_s[src] =
                    std::max(ts.rank_busy_s[src], rec.fct_s);
                ts.rank_bytes[src] += rec.bytes;
            }
            if (cfg.trace)
                // The Gantt view: one span per sending rank, on a
                // per-rank track owned by the sink (so coll ranks
                // never collide with flow or campaign tracks).
                for (std::size_t rk = 0; rk < ranks; ++rk) {
                    if (ts.rank_busy_s[rk] <= 0.0)
                        continue;
                    const int tid = cfg.trace->allocateTrack(
                        cfg.trace_label + "/rank " +
                        std::to_string(rk));
                    cfg.trace->complete(
                        "step " + std::to_string(step),
                        cfg.trace_label, tid,
                        static_cast<std::int64_t>(seconds * 1e6),
                        static_cast<std::int64_t>(ts.rank_busy_s[rk] *
                                                  1e6),
                        {obs::TraceArg::num("bytes",
                                            ts.rank_bytes[rk])});
                }
            telemetry->steps.push_back(std::move(ts));
        }
        seconds += step_seconds;
    }

    countCollective(cfg, schedule, bytes_on_wire);
    CollExecResult result =
        finalize(schedule, payload_bytes, seconds, bytes_on_wire);
    result.failed_messages = failed;
    result.telemetry = telemetry;
    return result;
}

CollExecResult
executeOnFabric(const Schedule &schedule, double payload_bytes,
                const topology::LogicalTopology &topo,
                const sim::NetworkSpec &spec, double cycle_seconds,
                double flit_bytes, const CollExecConfig &cfg)
{
    requireValid(schedule, payload_bytes, "executeOnFabric");
    obs::ScopedPhase exec_phase(cfg.profiler, "coll-fabric");
    if (cycle_seconds <= 0.0 || flit_bytes <= 0.0)
        fatal("executeOnFabric: cycle_seconds and flit_bytes must be "
              "positive");
    if (topo.totalExternalPorts() < schedule.ranks)
        fatal("executeOnFabric: ", schedule.ranks, "-rank ",
              schedule.name(), " needs ", schedule.ranks,
              " external ports but '", topo.name(), "' has ",
              topo.totalExternalPorts());

    // Lower to a one-cycle-per-step trace; barrier_period = 1 makes
    // every step an iteration barrier, i.e. the schedule's
    // dependency order.
    trace::MessageTrace mt;
    mt.name = schedule.name();
    mt.ranks = static_cast<int>(topo.totalExternalPorts());
    const int payload_flits = static_cast<int>(std::max<long>(
        1, std::lround(payload_bytes / flit_bytes)));
    trace::appendSchedule(mt, schedule, 0, 1, payload_flits);

    sim::Network net(topo, spec, 1);
    trace::TraceWorkload workload(mt, 1.0, 1);
    sim::SimConfig sim_cfg;
    sim_cfg.run_to_exhaustion = true;
    sim_cfg.warmup = 0;
    // Generous completion bound: per step, the largest message plus
    // pipeline/contention slack; fatal below if it is ever hit.
    std::int64_t largest = 1;
    for (const CollMessage &m : schedule.messages)
        largest = std::max<std::int64_t>(
            largest, std::lround(m.fraction * payload_flits));
    sim_cfg.measure = static_cast<sim::Cycle>(
        static_cast<std::int64_t>(schedule.steps) *
            (8 * largest + 4096) +
        100000);
    sim_cfg.drain_limit = 0;
    obs::recordEvent(obs::EventKind::SimEpoch, schedule.steps,
                     payload_flits, schedule.name());
    obs::heartbeat();
    sim::Simulator sim(net, workload, sim_cfg);
    const sim::SimResult r = sim.run();
    if (!r.stable)
        fatal("executeOnFabric: ", schedule.name(), " on '",
              topo.name(), "' did not complete within ",
              sim_cfg.measure, " cycles");

    const double bytes_on_wire =
        static_cast<double>(mt.totalFlits()) * flit_bytes;
    countCollective(cfg, schedule, bytes_on_wire);
    if (cfg.trace)
        cfg.trace->complete(
            schedule.name(), cfg.trace_label, cfg.trace_tid, 0,
            static_cast<std::int64_t>(
                static_cast<double>(r.end_cycle) * cycle_seconds * 1e6),
            {obs::TraceArg::num("cycles", static_cast<std::int64_t>(
                                              r.end_cycle))});
    return finalize(schedule, payload_bytes,
                    static_cast<double>(r.end_cycle) * cycle_seconds,
                    bytes_on_wire);
}

} // namespace wss::coll
