/**
 * @file
 * LLM parallelism-plan composer: map a (DP, TP, PP, EP) decomposition
 * of a training job onto the collective mix one training iteration
 * issues, in the style of Megatron-LM / DeepSpeed execution:
 *
 *  - tensor parallel: an allreduce of the activation tile after each
 *    of the two sharded matmul pairs, forward and backward — four
 *    allreduces per transformer layer per microbatch over the TP
 *    group;
 *  - pipeline parallel: one activation send per stage boundary per
 *    microbatch, forward and backward (point-to-point);
 *  - expert parallel (MoE): token dispatch and combine all-to-all,
 *    forward and backward — four all-to-alls per MoE layer per
 *    microbatch over the EP group;
 *  - data parallel: one gradient allreduce of each rank's parameter
 *    shard at the end of the iteration over the DP group.
 *
 * The composer only decides *what* collectives run, on how many
 * ranks, with what payload, how many times; pricing them is the
 * execution layer's job, injected as a callback so the same plan can
 * be costed by the alpha-beta model, the flow simulator, or the
 * cycle-accurate fabric.
 */

#ifndef WSS_COLL_PLAN_HPP
#define WSS_COLL_PLAN_HPP

#include <functional>
#include <string>
#include <vector>

#include "coll/schedule.hpp"

namespace wss::coll {

/// How many ways each axis of the job is split. Total GPUs/hosts =
/// dp * tp * pp (EP reuses DP-dimension ranks, Switch-style).
struct PlanShape
{
    int dp = 1;    ///< data-parallel replicas
    int tp = 1;    ///< tensor-parallel shards per layer
    int pp = 1;    ///< pipeline stages
    int ep = 1;    ///< expert-parallel group size (MoE), 1 = dense

    int totalRanks() const { return dp * tp * pp; }

    /// Empty string when consistent (all >= 1, ep divides dp).
    std::string validate() const;
};

/// The model + batch geometry that sets collective payloads.
struct ModelSpec
{
    double parameters = 7e9;           ///< total weights
    double bytes_per_grad = 2.0;       ///< fp16/bf16 gradients
    int layers = 32;                   ///< transformer blocks
    int hidden = 4096;                 ///< model width
    double bytes_per_act = 2.0;        ///< activation precision
    int tokens_per_microbatch = 4096;  ///< seq_len x microbatch size
    int microbatches = 8;              ///< pipeline microbatches
    int moe_layers = 0;                ///< how many blocks are MoE
    /// Token expansion through the MoE dispatch (capacity factor x
    /// top-k); scales all-to-all payloads.
    double moe_capacity = 1.0;
};

/// One entry of the iteration's collective mix.
struct PlannedCollective
{
    std::string label;          ///< "tp_allreduce_fwd", "dp_allreduce", ...
    Collective collective = Collective::AllReduce;
    Algorithm algorithm = Algorithm::Ring;
    int group_ranks = 0;        ///< ranks participating per group
    /// How many disjoint groups run this collective at the same
    /// time (e.g. dp*pp TP groups). They share the network.
    int concurrent_groups = 1;
    double payload_bytes = 0.0; ///< per-rank payload of one invocation
    long invocations = 0;       ///< times per training iteration
};

/**
 * The collective mix of one training iteration for @p shape x
 * @p model. fatal() on an invalid shape. Entries with zero
 * invocations (e.g. PP sends when pp == 1) are omitted; entries are
 * emitted in a fixed order (TP, PP, EP, DP) so downstream CSV output
 * is deterministic.
 */
std::vector<PlannedCollective>
composeTrainingStep(const PlanShape &shape, const ModelSpec &model);

/// Prices one invocation of a planned collective in seconds.
using CollectiveCost = std::function<double(const PlannedCollective &)>;

/**
 * Serial-sum iteration time: sum over entries of invocations x
 * cost(entry). A deliberate upper bound — no overlap of collectives
 * with compute or with each other — matching how collective cost
 * ceilings are usually quoted.
 */
double iterationSeconds(const std::vector<PlannedCollective> &plan,
                        const CollectiveCost &cost);

} // namespace wss::coll

#endif // WSS_COLL_PLAN_HPP
