#include "coll/plan.hpp"

#include "util/logging.hpp"

namespace wss::coll {

std::string
PlanShape::validate() const
{
    if (dp < 1 || tp < 1 || pp < 1 || ep < 1)
        return "dp/tp/pp/ep must all be >= 1";
    if (ep > dp || dp % ep != 0)
        return "ep must divide dp (experts are sharded across the "
               "data-parallel dimension)";
    return "";
}

std::vector<PlannedCollective>
composeTrainingStep(const PlanShape &shape, const ModelSpec &model)
{
    const std::string err = shape.validate();
    if (!err.empty()) fatal("coll: invalid plan shape: ", err);

    std::vector<PlannedCollective> plan;
    const double act_bytes = static_cast<double>(model.tokens_per_microbatch) *
                             model.hidden * model.bytes_per_act;

    if (shape.tp > 1) {
        // Megatron sharding: 2 row-parallel matmul outputs per block
        // need an allreduce in forward, mirrored in backward.
        PlannedCollective tp;
        tp.label = "tp_allreduce";
        tp.collective = Collective::AllReduce;
        tp.algorithm = Algorithm::Ring;
        tp.group_ranks = shape.tp;
        tp.concurrent_groups = shape.dp * shape.pp;
        tp.payload_bytes = act_bytes;
        tp.invocations = 4L * model.layers * model.microbatches;
        plan.push_back(tp);
    }

    if (shape.pp > 1) {
        // Stage-boundary activation transfer, forward + backward.
        PlannedCollective pp;
        pp.label = "pp_send";
        pp.collective = Collective::PointToPoint;
        pp.algorithm = Algorithm::Direct;
        pp.group_ranks = 2;
        pp.concurrent_groups = shape.dp * shape.tp;
        pp.payload_bytes = act_bytes;
        pp.invocations = 2L * (shape.pp - 1) * model.microbatches;
        plan.push_back(pp);
    }

    if (shape.ep > 1 && model.moe_layers > 0) {
        // Token dispatch + combine, forward + backward.
        PlannedCollective ep;
        ep.label = "ep_all_to_all";
        ep.collective = Collective::AllToAll;
        ep.algorithm = Algorithm::Pairwise;
        ep.group_ranks = shape.ep;
        ep.concurrent_groups = shape.totalRanks() / shape.ep;
        ep.payload_bytes = act_bytes * model.moe_capacity;
        ep.invocations = 4L * model.moe_layers * model.microbatches;
        plan.push_back(ep);
    }

    if (shape.dp > 1) {
        // Gradient sync of this rank's parameter shard, once per
        // iteration.
        PlannedCollective dp;
        dp.label = "dp_allreduce";
        dp.collective = Collective::AllReduce;
        dp.algorithm = Algorithm::Ring;
        dp.group_ranks = shape.dp;
        dp.concurrent_groups = shape.tp * shape.pp;
        dp.payload_bytes =
            model.parameters * model.bytes_per_grad / (shape.tp * shape.pp);
        dp.invocations = 1;
        plan.push_back(dp);
    }

    return plan;
}

double
iterationSeconds(const std::vector<PlannedCollective> &plan,
                 const CollectiveCost &cost)
{
    double total = 0.0;
    for (const PlannedCollective &p : plan)
        total += static_cast<double>(p.invocations) * cost(p);
    return total;
}

} // namespace wss::coll
