/**
 * @file
 * Collective execution at three fidelities over one shared semantic —
 * the bulk-synchronous step barrier of coll::Schedule:
 *
 *  - executeAlphaBeta: the closed-form cost model, instant;
 *  - executeOnDcn: each step becomes a batch of flow::simulateFlows
 *    flows released together (dependency-aware release: step s+1's
 *    flows only exist after step s's slowest flow completes), so
 *    congestion, ECMP collisions and faults shape the completion
 *    time;
 *  - executeOnFabric: the schedule is lowered to a MessageTrace
 *    (trace::appendSchedule, one cycle per step) and replayed
 *    closed-loop through the cycle-accurate sim:: fabric with
 *    iteration barriers of one step.
 *
 * On an uncongested single-switch topology the flow fidelity matches
 * the alpha-beta model exactly (each step's flows all get the full
 * derated line rate and the zero-load latency) — ctest asserts this;
 * the fabric fidelity agrees within the tolerance set by flit
 * quantization and router pipelining.
 */

#ifndef WSS_COLL_EXECUTE_HPP
#define WSS_COLL_EXECUTE_HPP

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "coll/schedule.hpp"
#include "flow/dcn_topology.hpp"
#include "flow/switch_profile.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_event.hpp"
#include "sim/network.hpp"
#include "topology/logical_topology.hpp"

namespace wss::coll {

/**
 * Per-step, per-rank time-resolved telemetry of one executeOnDcn()
 * run (enabled by CollExecConfig::telemetry): when each step's
 * barrier released, how long it ran, and how long each rank's
 * slowest outgoing message took inside it — the collective's Gantt
 * chart. Integer totals reconcile exactly with the run's counters
 * and totalBytes() is bit-identical to bytes_on_wire (both
 * ctest-asserted).
 */
struct CollTelemetry
{
    int ranks = 0;
    struct Step
    {
        int step = 0;
        /// Barrier instant the step released at (seconds).
        double start_s = 0.0;
        /// Step span: its slowest flow (seconds).
        double seconds = 0.0;
        std::int64_t messages = 0;
        std::int64_t failed = 0;
        /// Bytes the step's completed flows delivered.
        double bytes = 0.0;
        /// Per-rank busy time: the slowest completed flow sourced at
        /// that rank (0 when the rank sent nothing this step).
        std::vector<double> rank_busy_s;
        /// Bytes each rank sourced via completed flows.
        std::vector<double> rank_bytes;
    };
    std::vector<Step> steps;

    std::int64_t totalMessages() const;
    std::int64_t totalFailed() const;
    /// Per-step bytes summed in step order — the same accumulation
    /// executeOnDcn uses for bytes_on_wire, so the two are
    /// bit-identical.
    double totalBytes() const;

    /// Long-format CSV (`record,step,scope,metric,value` with record
    /// ∈ {step, rank, total}); rank rows only where the rank sent.
    void dumpCsv(std::ostream &os) const;
    /// Flush-checked file counterpart (util::writeArtifactFile).
    void dumpCsvFile(const std::string &path) const;
};

/// What one collective execution produced, at any fidelity.
struct CollExecResult
{
    /// Collective completion time (seconds).
    double seconds = 0.0;
    /// Algorithmic bandwidth: payload / time (Gbps) — what the
    /// application observes.
    double algbw_gbps = 0.0;
    /// Bus bandwidth: algbw x busBandwidthFactor — what the wires
    /// carry; comparable across algorithms and rank counts.
    double busbw_gbps = 0.0;
    int steps = 0;
    std::int64_t messages = 0;
    /// Bytes the network actually carried.
    double bytes_on_wire = 0.0;
    /// Flow fidelity only: messages that found no live path (after a
    /// mid-collective fault). Nonzero means the collective would
    /// hang; seconds then covers only the delivered messages.
    std::int64_t failed_messages = 0;
    /// Per-step per-rank Gantt data; null unless
    /// CollExecConfig::telemetry (flow fidelity only).
    std::shared_ptr<CollTelemetry> telemetry;
};

/// Optional mid-collective fault, applied just before the given step
/// releases (flow fidelity only).
struct CollFaultSpec
{
    /// Step index the fault precedes; -1 disables.
    int at_step = -1;
    /// Kill a switch (true) or a trunk bundle (false).
    bool kill_switch = true;
    /// Switch or trunk id.
    int id = 0;
};

/// Optional instrumentation / fault injection for one execution.
struct CollExecConfig
{
    /// coll.steps / coll.messages / coll.bytes counters land here.
    obs::MetricsRegistry *metrics = nullptr;
    /// One span per collective step (simulated microseconds).
    obs::TraceEventSink *trace = nullptr;
    int trace_tid = 0;
    std::string trace_label = "coll";
    CollFaultSpec fault;
    /// Collect CollExecResult::telemetry in executeOnDcn; with
    /// `trace` also set, emits one span per (rank, step) on per-rank
    /// tracks from TraceEventSink::allocateTrack. Purely additive:
    /// behavioural results are bit-identical on/off.
    bool telemetry = false;
    /// Scoped phase timers when set ("coll-dcn" with "step" and the
    /// flow simulator's own phases nested).
    obs::Profiler *profiler = nullptr;
};

/// Price @p schedule with the closed-form model (same result shape
/// as the simulated fidelities, for uniform reporting).
CollExecResult executeAlphaBeta(const Schedule &schedule,
                                double payload_bytes,
                                const AlphaBeta &cost);

/**
 * The alpha-beta parameters a calibrated switch design implies for
 * hosts @p hops switches apart: alpha = hops x zero-load latency,
 * beta = 1 / (saturation-derated line rate). This is what the flow
 * fidelity charges an uncongested flow, so the two fidelities agree
 * exactly on a single-switch (hops = 1) fabric.
 */
AlphaBeta alphaBetaOf(const flow::SwitchProfile &profile,
                      double line_rate_gbps, int hops);

/**
 * Execute @p schedule rank-per-host over @p topo (rank i = host i;
 * topo must cover schedule.ranks hosts). Each step runs as one
 * simulateFlows batch; @p cfg.fault can kill a switch/trunk between
 * steps (routes rebuild, later steps reroute or fail). @p topo is
 * mutated (fault state); build a fresh topology per run.
 */
CollExecResult executeOnDcn(const Schedule &schedule,
                            double payload_bytes, flow::DcnTopology &topo,
                            const flow::SwitchProfile &profile,
                            const CollExecConfig &cfg = {});

/**
 * Execute @p schedule cycle-accurately: rank-per-external-port on the
 * chiplet fabric @p topo (which must expose >= schedule.ranks
 * external ports), message sizes quantized to @p flit_bytes-byte
 * flits, completion time = makespan cycles x @p cycle_seconds.
 * fatal() if the replay hits its cycle bound without completing.
 */
CollExecResult executeOnFabric(const Schedule &schedule,
                               double payload_bytes,
                               const topology::LogicalTopology &topo,
                               const sim::NetworkSpec &spec,
                               double cycle_seconds, double flit_bytes,
                               const CollExecConfig &cfg = {});

} // namespace wss::coll

#endif // WSS_COLL_EXECUTE_HPP
