#include "coll/campaign.hpp"

#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "exec/campaign.hpp"
#include "flow/dcn_topology.hpp"
#include "util/artifact.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace wss::coll {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::vector<CollSpec>
defaultCollSpecs()
{
    return {{Collective::AllReduce, Algorithm::Ring},
            {Collective::AllReduce, Algorithm::HalvingDoubling},
            {Collective::AllReduce, Algorithm::Tree},
            {Collective::AllToAll, Algorithm::Pairwise}};
}

Schedule
buildSchedule(const CollSpec &spec, int ranks)
{
    switch (spec.collective) {
    case Collective::AllReduce:
        return allReduceSchedule(spec.algorithm, ranks);
    case Collective::ReduceScatter:
        if (spec.algorithm != Algorithm::Ring)
            break;
        return reduceScatterSchedule(ranks);
    case Collective::AllGather:
        if (spec.algorithm != Algorithm::Ring)
            break;
        return allGatherSchedule(ranks);
    case Collective::AllToAll:
        if (spec.algorithm != Algorithm::Pairwise)
            break;
        return allToAllSchedule(ranks);
    case Collective::PointToPoint:
        if (spec.algorithm != Algorithm::Direct)
            break;
        return pointToPointSchedule();
    }
    fatal("coll: no ", toString(spec.algorithm), " schedule for ",
          toString(spec.collective));
}

CollCampaign::CollCampaign(CollCampaignConfig config)
    : config_(std::move(config))
{
    if (config_.designs.empty() || config_.collectives.empty() ||
        config_.payload_bytes.empty())
        fatal("CollCampaign: every sweep axis needs at least one value");
    if (config_.ranks < 2)
        fatal("CollCampaign: need at least 2 ranks, got ",
              config_.ranks);
    for (const auto &design : config_.designs)
        if (design.radix <= 0 || design.line_rate_gbps <= 0.0)
            fatal("CollCampaign: design '", design.name,
                  "' lacks a positive radix/line rate — was it "
                  "calibrated?");
    for (double payload : config_.payload_bytes)
        if (payload <= 0.0)
            fatal("CollCampaign: payloads must be positive");
    // Fail fast on rank counts an algorithm cannot schedule, before
    // the campaign spins up workers.
    for (const CollSpec &spec : config_.collectives)
        buildSchedule(spec, config_.ranks);
}

CollResult
CollCampaign::run(exec::ThreadPool *pool, obs::TraceEventSink *trace,
                  obs::Profiler *profiler) const
{
    const auto &cfg = config_;
    const std::size_t n_d = cfg.designs.size();
    const std::size_t n_c = cfg.collectives.size();
    const std::size_t n_p = cfg.payload_bytes.size();

    CollResult result;
    result.cells.resize(n_d * n_c * n_p);

    exec::Campaign campaign;
    for (std::size_t di = 0; di < n_d; ++di)
        for (std::size_t ci = 0; ci < n_c; ++ci)
            for (std::size_t pi = 0; pi < n_p; ++pi) {
                const std::size_t slot = (di * n_c + ci) * n_p + pi;
                CollCellResult *out = &result.cells[slot];
                std::ostringstream name;
                name << cfg.designs[di].name << "/"
                     << toString(cfg.collectives[ci].collective) << "/"
                     << toString(cfg.collectives[ci].algorithm)
                     << "/b=" << cfg.payload_bytes[pi];
                campaign.addTask(name.str(), [this, di, ci, pi, out] {
                    *out = runCell(di, ci, pi);
                });
            }

    const exec::CampaignResult campaign_result =
        campaign.run(pool, trace, profiler);
    result.wall_seconds = campaign_result.wall_seconds;
    result.threads = campaign_result.threads;
    for (std::size_t i = 0; i < result.cells.size(); ++i)
        result.cells[i].seconds = campaign_result.jobs[i].seconds;
    return result;
}

CollCellResult
CollCampaign::runCell(std::size_t di, std::size_t ci,
                      std::size_t pi) const
{
    const auto &cfg = config_;
    const flow::SwitchProfile &profile = cfg.designs[di];
    const double payload = cfg.payload_bytes[pi];

    const Schedule schedule =
        buildSchedule(cfg.collectives[ci], cfg.ranks);

    flow::DcnTopology topo =
        cfg.kind == flow::DcnKind::FatTree
            ? flow::DcnTopology::buildFatTree(
                  cfg.ranks, static_cast<int>(profile.radix),
                  profile.line_rate_gbps)
            : flow::DcnTopology::buildDragonfly(
                  cfg.ranks, static_cast<int>(profile.radix),
                  profile.line_rate_gbps);

    CollCellResult cell;
    cell.design = profile.name;
    cell.collective = schedule.name();
    cell.ranks = cfg.ranks;
    cell.payload_bytes = payload;
    cell.topology = topo.name();
    cell.switches = topo.switchCount();
    cell.tiers = topo.tiers();
    cell.hops = topo.worstCaseHops();

    CollExecConfig exec_cfg;
    exec_cfg.fault = cfg.fault;
    cell.flow = executeOnDcn(schedule, payload, topo, profile, exec_cfg);
    cell.model = executeAlphaBeta(
        schedule, payload,
        alphaBetaOf(profile, topo.lineRateGbps(), cell.hops));
    return cell;
}

void
CollResult::writeCsv(std::ostream &os) const
{
    // Provenance only — deliberately no wall-clock and no thread
    // count, so the same config produces a byte-identical file at
    // any --jobs value.
    os << "# wss coll campaign\n";
    os << "# cells=" << cells.size() << "\n";

    Table table("coll",
                {"design", "collective", "ranks", "payload_bytes",
                 "topology", "switches", "tiers", "hops", "steps",
                 "messages", "bytes_on_wire", "failed", "flow_us",
                 "flow_algbw_gbps", "flow_busbw_gbps", "model_us",
                 "model_busbw_gbps", "flow_vs_model"});
    for (const auto &cell : cells) {
        const double ratio = cell.model.seconds > 0.0
                                 ? cell.flow.seconds / cell.model.seconds
                                 : 0.0;
        table.addRow(
            {cell.design, cell.collective, Table::num(cell.ranks),
             Table::num(cell.payload_bytes, 0),
             cell.topology, Table::num(cell.switches),
             Table::num(cell.tiers), Table::num(cell.hops),
             Table::num(cell.flow.steps),
             Table::num(cell.flow.messages),
             Table::num(cell.flow.bytes_on_wire, 0),
             Table::num(cell.flow.failed_messages),
             Table::num(cell.flow.seconds * 1e6, 4),
             Table::num(cell.flow.algbw_gbps, 3),
             Table::num(cell.flow.busbw_gbps, 3),
             Table::num(cell.model.seconds * 1e6, 4),
             Table::num(cell.model.busbw_gbps, 3),
             Table::num(ratio, 4)});
    }
    table.printCsv(os);
}

void
CollResult::writeJson(std::ostream &os) const
{
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "{\n  \"wall_seconds\": " << wall_seconds
       << ",\n  \"threads\": " << threads << ",\n  \"cells\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i];
        os << (i ? ",\n" : "\n") << "    {\"design\": \""
           << jsonEscape(c.design) << "\", \"collective\": \""
           << jsonEscape(c.collective) << "\", \"ranks\": " << c.ranks
           << ", \"payload_bytes\": " << c.payload_bytes
           << ", \"topology\": \"" << jsonEscape(c.topology)
           << "\", \"switches\": " << c.switches
           << ", \"tiers\": " << c.tiers << ", \"hops\": " << c.hops
           << ", \"steps\": " << c.flow.steps
           << ", \"messages\": " << c.flow.messages
           << ", \"bytes_on_wire\": " << c.flow.bytes_on_wire
           << ", \"failed\": " << c.flow.failed_messages
           << ", \"flow_seconds\": " << c.flow.seconds
           << ", \"flow_algbw_gbps\": " << c.flow.algbw_gbps
           << ", \"flow_busbw_gbps\": " << c.flow.busbw_gbps
           << ", \"model_seconds\": " << c.model.seconds
           << ", \"model_busbw_gbps\": " << c.model.busbw_gbps
           << ", \"seconds\": " << c.seconds << "}";
    }
    os << "\n  ]\n}\n";
}

void
CollResult::writeCsvFile(const std::string &path) const
{
    util::writeArtifactFile(path, "CollResult",
                            [this](std::ostream &os) { writeCsv(os); });
}

void
CollResult::writeJsonFile(const std::string &path) const
{
    util::writeArtifactFile(path, "CollResult",
                            [this](std::ostream &os) { writeJson(os); });
}

} // namespace wss::coll
