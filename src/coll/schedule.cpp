#include "coll/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace wss::coll {

namespace {

bool
isPowerOfTwo(int n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

int
log2Exact(int n)
{
    int bits = 0;
    while ((1 << bits) < n) ++bits;
    return bits;
}

void
requireRanks(Algorithm algorithm, int ranks, bool power_of_two)
{
    if (ranks < 2)
        fatal("coll: ", toString(algorithm),
                    " needs at least 2 ranks, got ", ranks);
    if (power_of_two && !isPowerOfTwo(ranks))
        fatal("coll: ", toString(algorithm),
                    " needs a power-of-two rank count, got ", ranks);
}

/// Ring reduce-scatter phase: step s has rank r sending chunk
/// (r - s) mod N to neighbour (r + 1) mod N. N-1 steps, 1/N each.
void
appendRingPhase(Schedule &s, int first_step)
{
    const int n = s.ranks;
    const double chunk = 1.0 / n;
    for (int step = 0; step < n - 1; ++step)
        for (int r = 0; r < n; ++r)
            s.messages.push_back({first_step + step, r, (r + 1) % n, chunk});
}

Schedule
ringAllReduce(int ranks)
{
    Schedule s;
    s.collective = Collective::AllReduce;
    s.algorithm = Algorithm::Ring;
    s.ranks = ranks;
    s.steps = 2 * (ranks - 1);
    s.messages.reserve(static_cast<size_t>(s.steps) * ranks);
    appendRingPhase(s, 0);             // reduce-scatter
    appendRingPhase(s, ranks - 1);     // all-gather
    return s;
}

/**
 * Full-vector hypercube exchange, emitted stage-major with ranks
 * ascending — the exact pattern (and order) the mini-app trace
 * generators have always produced, so trace lowering stays
 * bit-identical. Partners beyond the rank count are skipped, which
 * for non-power-of-two N leaves a pruned hypercube.
 */
Schedule
recursiveDoublingAllReduce(int ranks)
{
    Schedule s;
    s.collective = Collective::AllReduce;
    s.algorithm = Algorithm::RecursiveDoubling;
    s.ranks = ranks;
    int step = 0;
    for (int bit = 1; bit < ranks; bit <<= 1) {
        for (int r = 0; r < ranks; ++r) {
            const int partner = r ^ bit;
            if (partner < ranks)
                s.messages.push_back({step, r, partner, 1.0});
        }
        ++step;
    }
    s.steps = step;
    return s;
}

/**
 * Rabenseifner: lg N halving steps exchanging shrinking halves
 * (reduce-scatter), then lg N doubling steps growing them back
 * (all-gather). 2 lg N steps, bandwidth term 2 S (N-1)/N.
 */
Schedule
halvingDoublingAllReduce(int ranks)
{
    Schedule s;
    s.collective = Collective::AllReduce;
    s.algorithm = Algorithm::HalvingDoubling;
    s.ranks = ranks;
    const int stages = log2Exact(ranks);
    int step = 0;
    for (int k = 0; k < stages; ++k) {     // halving: distance N/2, N/4, ...
        const int dist = ranks >> (k + 1);
        const double fraction = 1.0 / (1 << (k + 1));
        for (int r = 0; r < ranks; ++r)
            s.messages.push_back({step, r, r ^ dist, fraction});
        ++step;
    }
    for (int k = 0; k < stages; ++k) {     // doubling: distance 1, 2, 4, ...
        const int dist = 1 << k;
        const double fraction = static_cast<double>(dist) / ranks;
        for (int r = 0; r < ranks; ++r)
            s.messages.push_back({step, r, r ^ dist, fraction});
        ++step;
    }
    s.steps = step;
    return s;
}

/**
 * Binomial tree: lg N reduce steps toward rank 0 (halving the live
 * set each step), then the mirrored broadcast. Full vector on every
 * hop — latency-optimal, bandwidth-poor.
 */
Schedule
treeAllReduce(int ranks)
{
    Schedule s;
    s.collective = Collective::AllReduce;
    s.algorithm = Algorithm::Tree;
    s.ranks = ranks;
    const int stages = log2Exact(ranks);
    int step = 0;
    for (int k = 0; k < stages; ++k) {     // reduce: odd multiples of 2^k send
        const int dist = 1 << k;
        for (int r = dist; r < ranks; r += 2 * dist)
            s.messages.push_back({step, r, r - dist, 1.0});
        ++step;
    }
    for (int k = stages - 1; k >= 0; --k) {    // broadcast: mirror image
        const int dist = 1 << k;
        for (int r = dist; r < ranks; r += 2 * dist)
            s.messages.push_back({step, r - dist, r, 1.0});
        ++step;
    }
    s.steps = step;
    return s;
}

} // namespace

std::string_view
toString(Collective collective)
{
    switch (collective) {
    case Collective::AllReduce: return "allreduce";
    case Collective::ReduceScatter: return "reduce_scatter";
    case Collective::AllGather: return "all_gather";
    case Collective::AllToAll: return "all_to_all";
    case Collective::PointToPoint: return "point_to_point";
    }
    return "?";
}

std::string_view
toString(Algorithm algorithm)
{
    switch (algorithm) {
    case Algorithm::Ring: return "ring";
    case Algorithm::RecursiveDoubling: return "recursive_doubling";
    case Algorithm::HalvingDoubling: return "halving_doubling";
    case Algorithm::Tree: return "tree";
    case Algorithm::Pairwise: return "pairwise";
    case Algorithm::Direct: return "direct";
    }
    return "?";
}

std::string
Schedule::name() const
{
    std::string n{toString(collective)};
    n += '/';
    n += toString(algorithm);
    return n;
}

std::string
Schedule::validate() const
{
    if (ranks < 2) return "ranks must be >= 2";
    if (steps < 1) return "steps must be >= 1";
    if (messages.empty()) return "schedule has no messages";
    std::vector<char> populated(static_cast<size_t>(steps), 0);
    int prev_step = 0;
    for (const CollMessage &m : messages) {
        if (m.step < 0 || m.step >= steps) return "message step out of range";
        if (m.step < prev_step) return "messages not step-major";
        prev_step = m.step;
        if (m.src < 0 || m.src >= ranks) return "message src out of range";
        if (m.dst < 0 || m.dst >= ranks) return "message dst out of range";
        if (m.src == m.dst) return "message src == dst";
        if (!(m.fraction > 0.0) || m.fraction > 1.0)
            return "message fraction outside (0, 1]";
        populated[static_cast<size_t>(m.step)] = 1;
    }
    for (int st = 0; st < steps; ++st)
        if (!populated[static_cast<size_t>(st)]) return "empty step";
    return "";
}

double
Schedule::bytesOnWire(double payload_bytes) const
{
    double total = 0.0;
    for (const CollMessage &m : messages) total += m.fraction * payload_bytes;
    return total;
}

double
Schedule::maxStepBytes(int step, double payload_bytes) const
{
    double max_bytes = 0.0;
    for (const CollMessage &m : messages)
        if (m.step == step)
            max_bytes = std::max(max_bytes, m.fraction * payload_bytes);
    return max_bytes;
}

Schedule
allReduceSchedule(Algorithm algorithm, int ranks)
{
    switch (algorithm) {
    case Algorithm::Ring:
        requireRanks(algorithm, ranks, false);
        return ringAllReduce(ranks);
    case Algorithm::RecursiveDoubling:
        requireRanks(algorithm, ranks, false);
        return recursiveDoublingAllReduce(ranks);
    case Algorithm::HalvingDoubling:
        requireRanks(algorithm, ranks, true);
        return halvingDoublingAllReduce(ranks);
    case Algorithm::Tree:
        requireRanks(algorithm, ranks, true);
        return treeAllReduce(ranks);
    case Algorithm::Pairwise:
    case Algorithm::Direct:
        break;
    }
    fatal("coll: algorithm '", toString(algorithm),
                "' does not implement allreduce");
}

Schedule
reduceScatterSchedule(int ranks)
{
    requireRanks(Algorithm::Ring, ranks, false);
    Schedule s;
    s.collective = Collective::ReduceScatter;
    s.algorithm = Algorithm::Ring;
    s.ranks = ranks;
    s.steps = ranks - 1;
    s.messages.reserve(static_cast<size_t>(s.steps) * ranks);
    appendRingPhase(s, 0);
    return s;
}

Schedule
allGatherSchedule(int ranks)
{
    requireRanks(Algorithm::Ring, ranks, false);
    Schedule s;
    s.collective = Collective::AllGather;
    s.algorithm = Algorithm::Ring;
    s.ranks = ranks;
    s.steps = ranks - 1;
    s.messages.reserve(static_cast<size_t>(s.steps) * ranks);
    appendRingPhase(s, 0);
    return s;
}

Schedule
allToAllSchedule(int ranks)
{
    requireRanks(Algorithm::Pairwise, ranks, false);
    Schedule s;
    s.collective = Collective::AllToAll;
    s.algorithm = Algorithm::Pairwise;
    s.ranks = ranks;
    s.steps = ranks - 1;
    s.messages.reserve(static_cast<size_t>(s.steps) * ranks);
    const double chunk = 1.0 / ranks;
    for (int shift = 1; shift < ranks; ++shift)
        for (int r = 0; r < ranks; ++r)
            s.messages.push_back({shift - 1, r, (r + shift) % ranks, chunk});
    return s;
}

Schedule
pointToPointSchedule()
{
    Schedule s;
    s.collective = Collective::PointToPoint;
    s.algorithm = Algorithm::Direct;
    s.ranks = 2;
    s.steps = 1;
    s.messages.push_back({0, 0, 1, 1.0});
    return s;
}

double
alphaBetaSeconds(const Schedule &schedule, double payload_bytes,
                 const AlphaBeta &cost)
{
    if (payload_bytes < 0.0)
        fatal("coll: negative payload ", payload_bytes);
    std::vector<double> step_max(static_cast<size_t>(schedule.steps), 0.0);
    for (const CollMessage &m : schedule.messages) {
        double &mx = step_max[static_cast<size_t>(m.step)];
        mx = std::max(mx, m.fraction * payload_bytes);
    }
    double total = 0.0;
    for (double mx : step_max)
        total += cost.alpha_s + cost.beta_s_per_byte * mx;
    return total;
}

double
busBandwidthFactor(Collective collective, int ranks)
{
    if (ranks < 1) fatal("coll: busBandwidthFactor ranks ", ranks);
    const double n = ranks;
    switch (collective) {
    case Collective::AllReduce: return 2.0 * (n - 1.0) / n;
    case Collective::ReduceScatter:
    case Collective::AllGather:
    case Collective::AllToAll: return (n - 1.0) / n;
    case Collective::PointToPoint: return 1.0;
    }
    return 1.0;
}

} // namespace wss::coll
