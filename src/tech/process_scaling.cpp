#include "tech/process_scaling.hpp"

#include "util/logging.hpp"

namespace wss::tech {

std::string_view
toString(ProcessNode node)
{
    switch (node) {
      case ProcessNode::N180: return "180nm";
      case ProcessNode::N130: return "130nm";
      case ProcessNode::N90: return "90nm";
      case ProcessNode::N65: return "65nm";
      case ProcessNode::N40: return "40nm";
      case ProcessNode::N28: return "28nm";
      case ProcessNode::N16: return "16nm";
      case ProcessNode::N10: return "10nm";
      case ProcessNode::N7: return "7nm";
      case ProcessNode::N5: return "5nm";
    }
    panic("unknown ProcessNode");
}

double
switchingEnergyFactor(ProcessNode node)
{
    // Relative CV^2 switching energy per operation, 5 nm == 1.0.
    // Values follow the Stillmaker & Baas general-purpose scaling fit
    // (Table 5 of that paper gives energy ratios between 180 nm and
    // 7 nm); the 10 nm and 5 nm entries extend the same fit. Absolute
    // calibration does not matter for this repository - only ratios
    // between the nodes of the catalog entries are ever used.
    switch (node) {
      case ProcessNode::N180: return 91.0;
      case ProcessNode::N130: return 49.0;
      case ProcessNode::N90: return 24.5;
      case ProcessNode::N65: return 16.2;
      case ProcessNode::N40: return 9.4;
      case ProcessNode::N28: return 5.3;
      case ProcessNode::N16: return 3.18;
      case ProcessNode::N10: return 2.0;
      case ProcessNode::N7: return 1.41;
      case ProcessNode::N5: return 1.0;
    }
    panic("unknown ProcessNode");
}

Watts
scalePower(Watts power, ProcessNode from, ProcessNode to)
{
    return power * switchingEnergyFactor(to) / switchingEnergyFactor(from);
}

} // namespace wss::tech
