#include "tech/yield.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace wss::tech {

double
dieYield(SquareMillimeters area, const YieldModel &model)
{
    if (area < 0.0)
        fatal("dieYield: area must be non-negative");
    if (model.defect_density_cm2 < 0.0 || model.clustering_alpha <= 0.0)
        fatal("dieYield: bad defect model");
    const double defects =
        model.defect_density_cm2 * area / 100.0; // mm^2 -> cm^2
    return std::pow(1.0 + defects / model.clustering_alpha,
                    -model.clustering_alpha);
}

double
monolithicWaferYield(Millimeters side, double redundancy_coverage,
                     const YieldModel &model)
{
    if (redundancy_coverage < 0.0 || redundancy_coverage > 1.0)
        fatal("monolithicWaferYield: coverage must be in [0, 1]");
    // Only the unprotected fraction of the area is yield-critical.
    const SquareMillimeters critical =
        side * side * (1.0 - redundancy_coverage);
    return dieYield(critical, model);
}

double
chipletSystemYield(int chiplets, int spares, const YieldModel &model)
{
    if (chiplets < 1 || spares < 0)
        fatal("chipletSystemYield: bad socket counts");
    if (model.bond_yield <= 0.0 || model.bond_yield > 1.0)
        fatal("chipletSystemYield: bond yield must be in (0, 1]");

    // P(at least `chiplets` of `chiplets + spares` bonds succeed):
    // binomial tail, computed with incremental terms for stability.
    const int n = chiplets + spares;
    const double p = model.bond_yield;
    const double q = 1.0 - p;

    // term(k) = C(n, k) p^(n-k) q^k for k failures; sum k = 0..spares.
    double term = std::pow(p, n); // k = 0
    double total = term;
    for (int k = 1; k <= spares; ++k) {
        term *= static_cast<double>(n - k + 1) / k * (q / p);
        total += term;
    }
    return total > 1.0 ? 1.0 : total;
}

double
kgdCostFactor(SquareMillimeters area, const YieldModel &model)
{
    const double yield = dieYield(area, model);
    if (yield <= 0.0)
        fatal("kgdCostFactor: zero die yield");
    return 1.0 / yield;
}

} // namespace wss::tech
