/**
 * @file
 * External I/O technology models — paper Table IV.
 *
 * A waferscale switch must move its full port bandwidth on and off
 * the substrate. Three schemes are modeled:
 *
 *  - SerDes (periphery): conventional electrical transceivers on
 *    chiplets at the wafer edge. 512 Gbps/mm of beachfront, 1 layer,
 *    8 pJ/b. Electrical escapes additionally need ground-shielded
 *    (G-S-G) routing, which derates usable beachfront by 3x.
 *  - Optical I/O (periphery): on-substrate E/O-O/E chiplets at the
 *    wafer edge. 800 Gbps/mm/layer over 4 layers, 5 pJ/b.
 *  - Area I/O: external signals reach any chiplet through
 *    through-wafer vias and a mezzanine PCB acting as an RDL.
 *    16 Gbps/mm^2 of substrate, 8 pJ/b. Because signals drop straight
 *    down, Area I/O traffic does not consume on-substrate mesh links.
 *
 * Capacities returned are per direction; the raw Table IV densities
 * count physical wires, half of which serve each direction of the
 * full-duplex ports.
 */

#ifndef WSS_TECH_EXTERNAL_IO_HPP
#define WSS_TECH_EXTERNAL_IO_HPP

#include <string>

#include "util/units.hpp"

namespace wss::tech {

/// Where external I/O enters the substrate.
enum class IoPlacement
{
    /// Through I/O chiplets on the substrate perimeter.
    Periphery,
    /// Through-wafer vias under the whole substrate area.
    Area,
};

/**
 * One external I/O technology (paper Table IV).
 */
struct ExternalIoTech
{
    /// Display name ("SerDes", "Optical", "AreaIO").
    std::string name;
    /// Periphery vs area scheme.
    IoPlacement placement = IoPlacement::Periphery;
    /// Raw wire bandwidth density per layer: Gbps/mm of periphery for
    /// periphery schemes, Gbps/mm^2 of substrate for Area I/O.
    double raw_density_per_layer = 0.0;
    /// Escape routing layers available.
    int layers = 1;
    /// Transceiver energy per bit moved (pJ/b), per direction.
    PjPerBit energy_per_bit = 0.0;
    /// Fraction of raw wires usable for signal (shielding overhead).
    double signal_fraction = 1.0;
    /// Silicon area of one I/O chiplet placed on a perimeter site
    /// (mm^2); 0 for Area I/O, which needs no dedicated chiplets.
    SquareMillimeters io_chiplet_area = 0.0;

    /**
     * External bandwidth capacity per direction for a square
     * substrate of side @p side (mm).
     *
     * Periphery: 4*side mm of beachfront; Area: side^2 mm^2. Raw wire
     * density x layers x signal fraction, halved because half the
     * wires carry each direction.
     */
    Gbps
    capacityPerDirection(Millimeters side) const
    {
        const double extent = placement == IoPlacement::Periphery
                                  ? 4.0 * side
                                  : side * side;
        return extent * raw_density_per_layer * layers * signal_fraction /
               2.0;
    }

    /**
     * Capacity per direction for a round wafer of diameter @p side:
     * periphery pi*d mm, area pi/4*d^2 mm^2 (what a real wafer
     * offers before the paper's square-substrate simplification).
     */
    Gbps
    capacityPerDirectionRound(Millimeters diameter) const
    {
        constexpr double kPi = 3.14159265358979323846;
        const double extent =
            placement == IoPlacement::Periphery
                ? kPi * diameter
                : kPi / 4.0 * diameter * diameter;
        return extent * raw_density_per_layer * layers * signal_fraction /
               2.0;
    }

    /// True when external traffic traverses on-substrate mesh links
    /// between a port's SSC and a perimeter I/O chiplet.
    bool
    usesMeshForEscape() const
    {
        return placement == IoPlacement::Periphery;
    }
};

/// Conventional SerDes periphery I/O: 512 Gbps/mm, 1 layer, 8 pJ/b,
/// 1/3 signal fraction (G-S-G shielding).
ExternalIoTech serdes();

/// Optical I/O chiplets at the periphery: 800 Gbps/mm x 4 layers, 5 pJ/b.
ExternalIoTech opticalIo();

/// Mezzanine-PCB Area I/O: 16 Gbps/mm^2, 8 pJ/b, no perimeter chiplets.
ExternalIoTech areaIo();

} // namespace wss::tech

#endif // WSS_TECH_EXTERNAL_IO_HPP
