/**
 * @file
 * Manufacturing-yield models for waferscale integration — paper
 * Section III.A/III.B.
 *
 * The paper picks chiplet-based WSI over monolithic WSI "because of
 * its ability to achieve high yield": known-good dies (KGD) are
 * tested before bonding [Arnold'98], and bonding succeeds at >99.9%
 * [Pal'18], so the system yield is an assembly question rather than
 * a silicon-defect question. This module quantifies that argument:
 *
 *  - dieYield(): the negative-binomial (Stapper) defect-limited
 *    yield of one die,
 *  - monolithicWaferYield(): the same model applied to an entire
 *    waferscale device with a given fraction of defect-tolerant
 *    (redundancy-covered) area,
 *  - chipletSystemYield(): probability that enough bonded KGD
 *    chiplets work, with optional spare sockets,
 *  - kgdCostFactor(): dies fabbed per known-good die.
 */

#ifndef WSS_TECH_YIELD_HPP
#define WSS_TECH_YIELD_HPP

#include "util/units.hpp"

namespace wss::tech {

/// Defect model parameters.
struct YieldModel
{
    /// Defect density (defects per cm^2); ~0.1 for a mature node.
    double defect_density_cm2 = 0.1;
    /// Stapper clustering parameter (alpha -> inf is pure Poisson).
    double clustering_alpha = 2.0;
    /// Probability one chiplet-to-substrate bond succeeds [Pal'18].
    double bond_yield = 0.999;
};

/**
 * Defect-limited yield of a die of @p area (mm^2):
 * Y = (1 + D*A/alpha)^(-alpha).
 */
double dieYield(SquareMillimeters area, const YieldModel &model = {});

/**
 * Yield of a monolithic waferscale device of substrate side @p side
 * (mm) where a fraction @p redundancy_coverage of the area is
 * protected by built-in redundancy (defects there are tolerated, as
 * in Cerebras' spare-core scheme [Lauterbach'21]).
 */
double monolithicWaferYield(Millimeters side, double redundancy_coverage,
                            const YieldModel &model = {});

/**
 * Probability that a chiplet-based assembly of @p chiplets sockets
 * plus @p spares spare sockets ends up with at least @p chiplets
 * working bonds (KGD chiplets: die defects are screened before
 * bonding, so only bond failures count).
 */
double chipletSystemYield(int chiplets, int spares,
                          const YieldModel &model = {});

/**
 * Expected dies fabbed per known-good die of @p area: 1/dieYield.
 * The KGD flow pays this in silicon cost instead of system yield.
 */
double kgdCostFactor(SquareMillimeters area, const YieldModel &model = {});

} // namespace wss::tech

#endif // WSS_TECH_YIELD_HPP
