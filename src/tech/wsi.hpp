/**
 * @file
 * Waferscale-integration (WSI) technology models — paper Table I.
 *
 * A WsiTechnology describes the substrate-level interconnect fabric
 * between chiplets bonded on a waferscale substrate: how much
 * bandwidth crosses one mm of chiplet edge per signal layer, what a
 * bit costs in energy, the hop latency between adjacent chiplets, and
 * the largest substrate the technology supports.
 *
 * Section V.A of the paper additionally derives an "overclocked"
 * Si-IF operating point: link frequency (and hence Vdd) is raised to
 * double the per-layer bandwidth density at a superlinear energy
 * cost, using P ~ Vdd^2 and B ~ (Vdd - Vth)^2 / Vdd. That derivation
 * lives in power/link_power.*; here we expose the named operating
 * points used throughout the evaluation.
 */

#ifndef WSS_TECH_WSI_HPP
#define WSS_TECH_WSI_HPP

#include <string>

#include "util/units.hpp"

namespace wss::tech {

/**
 * One waferscale-integration interconnect technology operating point.
 */
struct WsiTechnology
{
    /// Display name ("Si-IF", "Si-IF-2x", "InFO-SoW", ...).
    std::string name;
    /// Inter-chiplet I/O bump pitch (um). Informational.
    double io_pitch_um = 0.0;
    /// Substrate interconnect wire pitch (um). Informational.
    double wire_pitch_um = 0.0;
    /// Bandwidth density per signal layer across a chiplet edge.
    GbpsPerMm bandwidth_density_per_layer = 0.0;
    /// Number of signal layers available for chiplet-to-chiplet links.
    int signal_layers = 1;
    /// Energy cost of moving one bit across one inter-chiplet hop.
    PjPerBit energy_per_bit = 0.0;
    /// Latency of one inter-chiplet hop.
    Nanoseconds hop_latency_ns = 1.0;
    /// Largest square substrate side supported (mm).
    Millimeters max_substrate_side_mm = 0.0;

    /// Total bandwidth density across all signal layers (Gbps/mm).
    GbpsPerMm
    totalBandwidthDensity() const
    {
        return bandwidth_density_per_layer * signal_layers;
    }
};

/// Baseline Si-IF [Iyer'19]: 800 Gbps/mm/layer x 4 layers = 3200 Gbps/mm.
WsiTechnology siIf();

/**
 * Overclocked Si-IF (Section V.A): 1600 Gbps/mm/layer x 4 layers =
 * 6400 Gbps/mm, with energy/bit raised per the Vdd/frequency scaling
 * relation (computed in power/link_power and cached here).
 */
WsiTechnology siIf2x();

/// TSMC InFO-SoW: 3200 Gbps/mm/layer x 4 layers = 12.8 Tbps/mm, 1.5 pJ/b.
WsiTechnology infoSow();

/// Conventional silicon interposer (for context; size-limited to 8.5 cm^2).
WsiTechnology siliconInterposer();

/**
 * A Si-IF-like operating point with an arbitrary number of signal
 * layers (Fig. 27's metal-layer sensitivity sweep). Energy per bit is
 * the baseline Si-IF value; density scales linearly with layers.
 */
WsiTechnology siIfWithLayers(int layers);

} // namespace wss::tech

#endif // WSS_TECH_WSI_HPP
