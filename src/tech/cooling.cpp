#include "tech/cooling.hpp"

#include <limits>

namespace wss::tech {

CoolingSolution
airCooling()
{
    return {"air", 0.12};
}

CoolingSolution
waterCooling()
{
    return {"water", 0.50};
}

CoolingSolution
multiphaseCooling()
{
    return {"multiphase", 1.20};
}

CoolingSolution
unlimitedCooling()
{
    return {"unlimited", std::numeric_limits<double>::infinity()};
}

std::vector<CoolingSolution>
allCoolingSolutions()
{
    return {airCooling(), waterCooling(), multiphaseCooling()};
}

} // namespace wss::tech
