#include "tech/wsi.hpp"

#include "util/logging.hpp"

namespace wss::tech {

WsiTechnology
siIf()
{
    // Si-IF [Iyer'19], paper Table I: 800-1600 Gbps/mm/layer; the
    // evaluation's baseline operating point is 800 Gbps/mm/layer over
    // 4 signal layers = 3200 Gbps/mm, 1 ns per inter-chiplet hop.
    // Energy/bit 0.3 pJ/b sits in Table I's 0.06-4 pJ/b band and
    // reproduces the paper's reported I/O power shares (Figs. 10-11).
    return {
        .name = "Si-IF",
        .io_pitch_um = 10.0,
        .wire_pitch_um = 4.0,
        .bandwidth_density_per_layer = 800.0,
        .signal_layers = 4,
        .energy_per_bit = 0.3,
        .hop_latency_ns = 1.0,
        .max_substrate_side_mm = 300.0,
    };
}

WsiTechnology
siIf2x()
{
    // Section V.A: double the link frequency; Vdd rises per
    // B ~ (Vdd-Vth)^2/Vdd, and energy/bit rises as Vdd^2. With
    // Vdd0 = 0.7 V, Vth = 0.3 V, doubling B needs Vdd = 0.964 V,
    // giving energy/bit x1.90 (see power/link_power.* which computes
    // this; the value here is that closed-form result).
    WsiTechnology t = siIf();
    t.name = "Si-IF-2x";
    t.bandwidth_density_per_layer = 1600.0;
    t.energy_per_bit = 0.57;
    return t;
}

WsiTechnology
infoSow()
{
    // TSMC InFO-SoW [Chun'20], Table I: up to 3200 Gbps/mm/layer and
    // 1.5-3 pJ/b; Section V uses 12.8 Tbps/mm total at 1.5 pJ/b.
    return {
        .name = "InFO-SoW",
        .io_pitch_um = 80.0,
        .wire_pitch_um = 20.0,
        .bandwidth_density_per_layer = 3200.0,
        .signal_layers = 4,
        .energy_per_bit = 1.5,
        .hop_latency_ns = 12.0,
        .max_substrate_side_mm = 300.0,
    };
}

WsiTechnology
siliconInterposer()
{
    // Conventional 2.5D interposer [Lenihan'13]: high density but
    // size-capped at ~8.5 cm^2 (~29 mm square), so it cannot host a
    // waferscale switch; included for baseline comparisons.
    return {
        .name = "Si-Interposer",
        .io_pitch_um = 6.0,
        .wire_pitch_um = 4.0,
        .bandwidth_density_per_layer = 1000.0,
        .signal_layers = 1,
        .energy_per_bit = 0.25,
        .hop_latency_ns = 0.1,
        .max_substrate_side_mm = 29.0,
    };
}

WsiTechnology
siIfWithLayers(int layers)
{
    if (layers < 1)
        fatal("siIfWithLayers: layer count must be >= 1, got ", layers);
    WsiTechnology t = siIf();
    t.name = "Si-IF-" + std::to_string(layers) + "L";
    t.signal_layers = layers;
    return t;
}

} // namespace wss::tech
