/**
 * @file
 * Latencies of connections between two switching ASICs — paper
 * Table V. Used to parameterize the buffer-sizing analysis (Fig. 21)
 * and the fabric-simulation channel delays (Figs. 22-24).
 */

#ifndef WSS_TECH_LINK_LATENCY_HPP
#define WSS_TECH_LINK_LATENCY_HPP

#include "util/units.hpp"

namespace wss::tech {

/// Latency classes for ASIC-to-ASIC connections (Table V).
namespace link_latency {

/// On-wafer connection between SSCs (Si-IF class) [Iyer'19].
inline constexpr Nanoseconds kOnWaferNs = 15.0;
/// In-rack PCB trace between switch ASICs [60].
inline constexpr Nanoseconds kInRackPcbNs = 150.0;
/// 100 m optical link between racks [2].
inline constexpr Nanoseconds kOptical100mNs = 350.0;
/// One inter-chiplet hop of the physical mesh (Section III.C).
inline constexpr Nanoseconds kMeshHopNs = 1.0;

} // namespace link_latency
} // namespace wss::tech

#endif // WSS_TECH_LINK_LATENCY_HPP
