/**
 * @file
 * Cooling solutions and their sustainable power densities.
 *
 * Section V.B / Fig. 16 / Fig. 28 of the paper gate the feasible
 * switch power by the cooling technology: forced-air heat sinks,
 * single-phase cold-plate water loops (as used for Cerebras WSE-2),
 * and multi-phase (two-phase immersion / evaporative) cooling.
 */

#ifndef WSS_TECH_COOLING_HPP
#define WSS_TECH_COOLING_HPP

#include <string>
#include <vector>

#include "util/units.hpp"

namespace wss::tech {

/**
 * One cooling technology and the area power density it can remove.
 */
struct CoolingSolution
{
    /// Display name ("air", "water", "multiphase").
    std::string name;
    /// Sustainable substrate power density (W per mm^2 of substrate).
    double max_power_density_w_mm2 = 0.0;

    /// Power budget for a square substrate of side @p side mm.
    Watts
    powerBudget(Millimeters side) const
    {
        return max_power_density_w_mm2 * side * side;
    }
};

/// Forced-air limit [Nakayama'06]: ~0.15 W/mm^2 at waferscale.
CoolingSolution airCooling();

/// Single-phase water cold plates [Lauterbach'21]: ~0.5 W/mm^2
/// (the paper: "water cooling can sustain 0.5 kW per 1000 mm^2").
CoolingSolution waterCooling();

/// Multi-phase cooling [Joshi'17]: ~1.2 W/mm^2.
CoolingSolution multiphaseCooling();

/// An unconstrained pseudo-solution (for no-power-cap analyses).
CoolingSolution unlimitedCooling();

/// The three real solutions in ascending capability order.
std::vector<CoolingSolution> allCoolingSolutions();

} // namespace wss::tech

#endif // WSS_TECH_COOLING_HPP
