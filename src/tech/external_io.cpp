#include "tech/external_io.hpp"

namespace wss::tech {

ExternalIoTech
serdes()
{
    // [Lee'15]-class 56G SerDes macros on perimeter chiplets. The 1/3
    // signal fraction models ground-shielded escape routing (one
    // signal per G-S-G triple); with it, a 300 mm substrate supports
    // 512 x 200G ports externally, matching the paper's Fig. 7.
    return {
        .name = "SerDes",
        .placement = IoPlacement::Periphery,
        .raw_density_per_layer = 512.0,
        .layers = 1,
        .energy_per_bit = 8.0,
        .signal_fraction = 1.0 / 3.0,
        .io_chiplet_area = 50.0,
    };
}

ExternalIoTech
opticalIo()
{
    // Ayar-Labs-class optical I/O chiplets [16]: fibers leave the
    // package directly, so no shielding derate.
    return {
        .name = "Optical",
        .placement = IoPlacement::Periphery,
        .raw_density_per_layer = 800.0,
        .layers = 4,
        .energy_per_bit = 5.0,
        .signal_fraction = 1.0,
        .io_chiplet_area = 50.0,
    };
}

ExternalIoTech
areaIo()
{
    // OCP mezzanine-card style Area I/O [9]: through-wafer vias under
    // every chiplet; the mezzanine PCB is the escape RDL.
    return {
        .name = "AreaIO",
        .placement = IoPlacement::Area,
        .raw_density_per_layer = 16.0,
        .layers = 1,
        .energy_per_bit = 8.0,
        .signal_fraction = 1.0,
        .io_chiplet_area = 0.0,
    };
}

} // namespace wss::tech
