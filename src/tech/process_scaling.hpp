/**
 * @file
 * CMOS process-node power scaling (Stillmaker & Baas style).
 *
 * Figure 15 of the paper normalizes the reported power of commodity
 * switch ASICs fabricated at different nodes (40 nm .. 5 nm) to a
 * common 5 nm node using the scaling equations of Stillmaker & Baas,
 * "Scaling equations for the accurate prediction of CMOS device
 * performance from 180nm to 7nm" (Integration, 2017). We encode the
 * resulting per-node relative switching-energy factors (extended to
 * 5 nm by the same fit) and expose power normalization between nodes.
 */

#ifndef WSS_TECH_PROCESS_SCALING_HPP
#define WSS_TECH_PROCESS_SCALING_HPP

#include <string_view>

#include "util/units.hpp"

namespace wss::tech {

/// Fabrication nodes that appear in the switch-ASIC catalog.
enum class ProcessNode
{
    N180,
    N130,
    N90,
    N65,
    N40,
    N28,
    N16,
    N10,
    N7,
    N5,
};

/// Human-readable node name ("16nm", ...).
std::string_view toString(ProcessNode node);

/**
 * Relative dynamic switching energy of @p node, normalized so that
 * 5 nm == 1.0. Iso-design, iso-frequency: a design burning P at
 * `from` burns P * factor(to)/factor(from) at `to`.
 */
double switchingEnergyFactor(ProcessNode node);

/**
 * Normalize a power figure measured at @p from to what the same
 * design would draw at @p to (iso-frequency dynamic power scaling).
 */
Watts scalePower(Watts power, ProcessNode from, ProcessNode to);

} // namespace wss::tech

#endif // WSS_TECH_PROCESS_SCALING_HPP
