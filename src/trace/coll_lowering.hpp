/**
 * @file
 * Lowering from coll:: collective schedules to message traces — the
 * single path by which a schedule becomes cycle-accurate fabric
 * traffic (via TraceWorkload), shared by the mini-app generators'
 * allreduce phases and by coll::executeOnFabric so the two can never
 * drift.
 */

#ifndef WSS_TRACE_COLL_LOWERING_HPP
#define WSS_TRACE_COLL_LOWERING_HPP

#include "coll/schedule.hpp"
#include "trace/trace.hpp"

namespace wss::trace {

/**
 * Append @p schedule's messages to @p trace, step s landing at cycle
 * @p start + s * @p step_gap. Message sizes are
 * max(1, round(fraction * payload_flits)) — a fraction never rounds
 * to a zero-flit message. Events are appended in schedule order
 * (step-major, source-ascending), which TraceWorkload's barrier mode
 * turns into dependency-ordered injection; callers that need global
 * cycle order still call trace.normalize() once at the end
 * (stable_sort, so intra-cycle schedule order is preserved).
 *
 * The schedule's ranks must not exceed trace.ranks (fatal otherwise).
 */
void appendSchedule(MessageTrace &trace, const coll::Schedule &schedule,
                    sim::Cycle start, sim::Cycle step_gap,
                    int payload_flits);

} // namespace wss::trace

#endif // WSS_TRACE_COLL_LOWERING_HPP
