/**
 * @file
 * Message traces — paper Section VI, Fig. 24.
 *
 * The paper replays four DOE/NERSC mini-app communication traces
 * (LULESH, MOCFE, MultiGrid, Nekbone) through Booksim2. Those trace
 * files are not redistributable, so this module defines the trace
 * representation plus loaders/savers; src/trace/generators.hpp
 * synthesizes traces whose communication structure matches the
 * published characterization of each mini-app (see DESIGN.md's
 * substitution notes).
 */

#ifndef WSS_TRACE_TRACE_HPP
#define WSS_TRACE_TRACE_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/flit.hpp"

namespace wss::trace {

/// One message: @p size_flits flits from @p src to @p dst at @p cycle.
struct TraceEvent
{
    sim::Cycle cycle = 0;
    std::int32_t src = 0;
    std::int32_t dst = 0;
    std::int32_t size_flits = 1;
};

/**
 * A complete trace: events sorted by cycle, over a fixed number of
 * ranks (terminals).
 */
struct MessageTrace
{
    std::string name;
    int ranks = 0;
    std::vector<TraceEvent> events;

    /// Last event cycle (0 for an empty trace).
    sim::Cycle span() const;

    /// Total flits carried.
    std::int64_t totalFlits() const;

    /// Mean offered load in flits per rank per cycle over the span.
    double averageLoad() const;

    /// Sort events by cycle (generators emit per-phase; call once).
    void normalize();

    /// Validity check: sorted, ranks in range, positive sizes.
    /// Returns an empty string when valid.
    std::string validate() const;
};

/**
 * Duplicate a trace @p factor times onto disjoint rank ranges with
 * identical timing — the paper's method for scaling 512/1024-rank
 * traces to its 2048-node network.
 */
MessageTrace duplicateTrace(const MessageTrace &trace, int factor);

/// Serialize as "cycle src dst flits" lines with a small header.
void saveTrace(const MessageTrace &trace, std::ostream &os);

/// Parse the saveTrace() format. Calls fatal() on malformed input.
MessageTrace loadTrace(std::istream &is);

} // namespace wss::trace

#endif // WSS_TRACE_TRACE_HPP
