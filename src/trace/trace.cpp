#include "trace/trace.hpp"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>

#include "util/logging.hpp"

namespace wss::trace {

sim::Cycle
MessageTrace::span() const
{
    return events.empty() ? 0 : events.back().cycle;
}

std::int64_t
MessageTrace::totalFlits() const
{
    return std::accumulate(events.begin(), events.end(),
                           std::int64_t{0},
                           [](std::int64_t acc, const TraceEvent &e) {
                               return acc + e.size_flits;
                           });
}

double
MessageTrace::averageLoad() const
{
    const sim::Cycle s = span();
    if (s <= 0 || ranks <= 0)
        return 0.0;
    return static_cast<double>(totalFlits()) /
           (static_cast<double>(s) * ranks);
}

void
MessageTrace::normalize()
{
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.cycle < b.cycle;
                     });
}

std::string
MessageTrace::validate() const
{
    std::ostringstream err;
    if (ranks <= 0)
        return "rank count must be positive";
    sim::Cycle prev = 0;
    for (const auto &e : events) {
        if (e.cycle < prev) {
            err << "events out of order at cycle " << e.cycle;
            return err.str();
        }
        prev = e.cycle;
        if (e.src < 0 || e.src >= ranks || e.dst < 0 || e.dst >= ranks) {
            err << "rank out of range: " << e.src << " -> " << e.dst;
            return err.str();
        }
        if (e.size_flits < 1) {
            err << "non-positive message size at cycle " << e.cycle;
            return err.str();
        }
    }
    return "";
}

MessageTrace
duplicateTrace(const MessageTrace &trace, int factor)
{
    if (factor < 1)
        fatal("duplicateTrace: factor must be >= 1");
    MessageTrace out;
    out.name = trace.name + "-x" + std::to_string(factor);
    out.ranks = trace.ranks * factor;
    out.events.reserve(trace.events.size() * factor);
    // Interleave copies per cycle so the result stays sorted.
    for (const auto &e : trace.events) {
        for (int c = 0; c < factor; ++c) {
            TraceEvent dup = e;
            dup.src += c * trace.ranks;
            dup.dst += c * trace.ranks;
            out.events.push_back(dup);
        }
    }
    return out;
}

void
saveTrace(const MessageTrace &trace, std::ostream &os)
{
    os << "wss-trace 1 " << trace.name << ' ' << trace.ranks << ' '
       << trace.events.size() << '\n';
    for (const auto &e : trace.events) {
        os << e.cycle << ' ' << e.src << ' ' << e.dst << ' '
           << e.size_flits << '\n';
    }
}

MessageTrace
loadTrace(std::istream &is)
{
    std::string magic;
    int version = 0;
    MessageTrace trace;
    std::size_t count = 0;
    if (!(is >> magic >> version >> trace.name >> trace.ranks >> count))
        fatal("loadTrace: malformed header");
    if (magic != "wss-trace" || version != 1)
        fatal("loadTrace: unsupported trace format '", magic, " ",
              version, "'");
    trace.events.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto &e = trace.events[i];
        if (!(is >> e.cycle >> e.src >> e.dst >> e.size_flits))
            fatal("loadTrace: truncated event list at entry ", i);
    }
    const std::string issue = trace.validate();
    if (!issue.empty())
        fatal("loadTrace: invalid trace: ", issue);
    return trace;
}

} // namespace wss::trace
