#include "trace/trace_workload.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace wss::trace {

TraceWorkload::TraceWorkload(const MessageTrace &trace, double intensity,
                             sim::Cycle barrier_period)
    : trace_(&trace), intensity_(intensity),
      barrier_period_(barrier_period)
{
    if (intensity <= 0.0)
        fatal("TraceWorkload: intensity must be positive");
    if (barrier_period < 0)
        fatal("TraceWorkload: barrier period must be non-negative");
    const std::string issue = trace.validate();
    if (!issue.empty())
        fatal("TraceWorkload: invalid trace: ", issue);
}

void
TraceWorkload::generate(sim::Cycle now, Rng &,
                        const sim::EmitPacket &emit)
{
    const auto &events = trace_->events;
    while (next_ < events.size()) {
        const auto &e = events[next_];
        sim::Cycle release;
        if (barrier_period_ > 0) {
            const std::int64_t epoch = e.cycle / barrier_period_;
            if (epoch != current_epoch_) {
                // A new epoch opens only once everything already
                // emitted has been delivered (bulk-synchronous
                // iteration barrier).
                if (delivered_ < emitted_)
                    return;
                current_epoch_ = epoch;
                epoch_release_ = now;
            }
            const sim::Cycle offset =
                e.cycle - current_epoch_ * barrier_period_;
            release = epoch_release_ +
                      static_cast<sim::Cycle>(
                          static_cast<double>(offset) / intensity_);
        } else {
            release = static_cast<sim::Cycle>(
                static_cast<double>(e.cycle) / intensity_);
        }
        if (release > now)
            return;
        emit(e.src, e.dst, e.size_flits);
        if (e.src != e.dst)
            ++emitted_; // self-traffic never enters the fabric
        ++next_;
    }
}

double
TraceWorkload::offeredLoad() const
{
    return trace_->averageLoad() * intensity_;
}

sim::Cycle
TraceWorkload::scaledSpan() const
{
    return static_cast<sim::Cycle>(
        std::ceil(static_cast<double>(trace_->span()) / intensity_));
}

} // namespace wss::trace
