#include "trace/coll_lowering.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace wss::trace {

void
appendSchedule(MessageTrace &trace, const coll::Schedule &schedule,
               sim::Cycle start, sim::Cycle step_gap, int payload_flits)
{
    const std::string err = schedule.validate();
    if (!err.empty())
        fatal("appendSchedule: invalid ", schedule.name(), " schedule: ",
              err);
    if (schedule.ranks > trace.ranks)
        fatal("appendSchedule: schedule spans ", schedule.ranks,
              " ranks but trace has only ", trace.ranks);
    if (payload_flits < 1)
        fatal("appendSchedule: payload_flits must be >= 1, got ",
              payload_flits);

    trace.events.reserve(trace.events.size() + schedule.messages.size());
    for (const coll::CollMessage &m : schedule.messages) {
        const auto flits = static_cast<std::int32_t>(std::max<long>(
            1, std::lround(m.fraction * payload_flits)));
        trace.events.push_back({start + m.step * step_gap, m.src, m.dst,
                                flits});
    }
}

} // namespace wss::trace
