/**
 * @file
 * Trace replay as a simulator workload — feeds Fig. 24.
 *
 * Replays a MessageTrace through the fabric simulator. The intensity
 * factor compresses (>1) or stretches (<1) the trace timeline, which
 * is how the load axis of a trace-driven latency/load curve is swept
 * (message order and structure are preserved; only the injection
 * tempo changes).
 */

#ifndef WSS_TRACE_TRACE_WORKLOAD_HPP
#define WSS_TRACE_TRACE_WORKLOAD_HPP

#include "sim/workload.hpp"
#include "trace/trace.hpp"

namespace wss::trace {

/**
 * sim::Workload adapter over a MessageTrace.
 *
 * Two replay modes:
 *  - open loop (barrier_period == 0): events fire at their scaled
 *    timestamps regardless of delivery — the load axis of a
 *    latency/load curve;
 *  - iteration barriers (barrier_period > 0): events are grouped
 *    into epochs of barrier_period original cycles (the generators'
 *    iteration period) and an epoch is released only after every
 *    earlier packet has been delivered — modeling the bulk-
 *    synchronous dependence of the mini-apps, where fabric latency
 *    stretches the application critical path.
 */
class TraceWorkload : public sim::Workload
{
  public:
    /**
     * @param trace      the trace (must outlive the workload)
     * @param intensity  timeline compression factor (> 0)
     * @param barrier_period  epoch length in original trace cycles;
     *        0 disables barriers (open loop)
     */
    TraceWorkload(const MessageTrace &trace, double intensity,
                  sim::Cycle barrier_period = 0);

    void generate(sim::Cycle now, Rng &rng,
                  const sim::EmitPacket &emit) override;
    bool
    exhausted(sim::Cycle) const override
    {
        return next_ >= trace_->events.size();
    }
    void
    packetDelivered(sim::Cycle) override
    {
        ++delivered_;
    }
    double offeredLoad() const override;
    std::string name() const override { return trace_->name; }

    /// Replay length in simulator cycles (open-loop lower bound).
    sim::Cycle scaledSpan() const;

  private:
    const MessageTrace *trace_;
    double intensity_;
    sim::Cycle barrier_period_;
    std::size_t next_ = 0;
    // Closed-loop bookkeeping.
    std::int64_t emitted_ = 0;
    std::int64_t delivered_ = 0;
    std::int64_t current_epoch_ = -1;
    sim::Cycle epoch_release_ = 0;
};

} // namespace wss::trace

#endif // WSS_TRACE_TRACE_WORKLOAD_HPP
