/**
 * @file
 * Synthetic NERSC mini-app trace generators — the Fig. 24 workloads.
 *
 * The real DOE mini-app traces are not redistributable; these
 * generators synthesize message traces whose communication structure
 * matches each mini-app's published characterization (see the DOE
 * "Characterization of the DOE Mini-apps" study the paper's traces
 * come from):
 *
 *  - LULESH: Lagrangian shock hydrodynamics on a 3D domain; per
 *    iteration every rank exchanges halos with up to 26 neighbors
 *    (large face, medium edge, small corner messages) followed by a
 *    small global allreduce.
 *  - MOCFE: method-of-characteristics neutron transport; angular
 *    sweeps form wavefront pipelines across the 3D rank grid, one
 *    staggered send per neighbor per sweep direction.
 *  - MultiGrid (MG): geometric multigrid V-cycles; 6-neighbor halo
 *    exchanges whose active rank set and message size shrink by 8x
 *    and 4x per level, plus restriction/prolongation transfers to
 *    the parent rank.
 *  - Nekbone: spectral-element CG solve; per iteration a
 *    gather/scatter nearest-neighbor exchange plus a ring allreduce
 *    of small messages.
 *
 * All sizes/periods are in simulator flits/cycles and are chosen so
 * the traces exercise the fabric at a comparable average load;
 * absolute values are documented constants, not measurements.
 */

#ifndef WSS_TRACE_GENERATORS_HPP
#define WSS_TRACE_GENERATORS_HPP

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace wss::trace {

/// Tuning knobs shared by the generators.
struct GeneratorConfig
{
    /// Communication iterations to synthesize.
    int iterations = 8;
    /// Cycles between iteration starts (compute phase length).
    sim::Cycle iteration_period = 600;
    /// Base message size in flits (faces / large transfers).
    int base_message_flits = 8;
    /// Seed for the small jitter applied to message start times.
    std::uint64_t seed = 1;
};

/// 3D 27-point halo exchange + allreduce. @p ranks must be a cube
/// (512 = 8^3 matches the paper's trace scale).
MessageTrace generateLulesh(int ranks, const GeneratorConfig &cfg = {});

/// Wavefront sweep pipelines over a 3D rank grid. @p ranks must be a
/// cube.
MessageTrace generateMocfe(int ranks, const GeneratorConfig &cfg = {});

/// Multigrid V-cycles. @p ranks must be a cube with side a power of
/// two (512 or 4096).
MessageTrace generateMultigrid(int ranks, const GeneratorConfig &cfg = {});

/// Nearest-neighbor gather/scatter + ring allreduce. @p ranks must be
/// a cube.
MessageTrace generateNekbone(int ranks, const GeneratorConfig &cfg = {});

/// Generator lookup by mini-app name ("lulesh", "mocfe", "multigrid",
/// "nekbone"). Calls fatal() on unknown names.
MessageTrace generateMiniApp(const std::string &name, int ranks,
                             const GeneratorConfig &cfg = {});

} // namespace wss::trace

#endif // WSS_TRACE_GENERATORS_HPP
