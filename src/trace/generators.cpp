#include "trace/generators.hpp"

#include <cmath>

#include "trace/coll_lowering.hpp"
#include "util/logging.hpp"

namespace wss::trace {

namespace {

/// 3D rank-grid helper for the cube-structured mini-apps.
struct Grid3
{
    int side = 0;

    explicit Grid3(int ranks)
    {
        side = static_cast<int>(std::round(std::cbrt(ranks)));
        if (side * side * side != ranks)
            fatal("mini-app generator: rank count ", ranks,
                  " is not a cube");
    }

    int rank(int x, int y, int z) const
    {
        return (z * side + y) * side + x;
    }
    bool
    inside(int x, int y, int z) const
    {
        return x >= 0 && x < side && y >= 0 && y < side && z >= 0 &&
               z < side;
    }
};

/// Recursive-doubling allreduce: log2(ranks) stages of pairwise
/// exchanges of @p flits-flit messages, @p stage_gap cycles apart.
/// Lowered from the coll:: schedule so mini-app traces and the
/// collective engine share one message pattern.
void
emitAllreduce(MessageTrace &trace, int ranks, sim::Cycle start,
              int flits, sim::Cycle stage_gap)
{
    const coll::Schedule schedule =
        coll::allReduceSchedule(coll::Algorithm::RecursiveDoubling, ranks);
    appendSchedule(trace, schedule, start, stage_gap, flits);
}

} // namespace

MessageTrace
generateLulesh(int ranks, const GeneratorConfig &cfg)
{
    const Grid3 grid(ranks);
    Rng rng(cfg.seed);
    MessageTrace trace;
    trace.name = "lulesh";
    trace.ranks = ranks;

    const int face = cfg.base_message_flits;
    const int edge = std::max(1, face / 2);
    const int corner = std::max(1, face / 4);

    for (int it = 0; it < cfg.iterations; ++it) {
        const sim::Cycle start = it * cfg.iteration_period;
        for (int z = 0; z < grid.side; ++z) {
            for (int y = 0; y < grid.side; ++y) {
                for (int x = 0; x < grid.side; ++x) {
                    const int src = grid.rank(x, y, z);
                    for (int dz = -1; dz <= 1; ++dz) {
                        for (int dy = -1; dy <= 1; ++dy) {
                            for (int dx = -1; dx <= 1; ++dx) {
                                if (!dx && !dy && !dz)
                                    continue;
                                if (!grid.inside(x + dx, y + dy, z + dz))
                                    continue;
                                const int dims = (dx != 0) + (dy != 0) +
                                                 (dz != 0);
                                const int size = dims == 1 ? face
                                                 : dims == 2 ? edge
                                                             : corner;
                                const auto jitter = static_cast<
                                    sim::Cycle>(rng.nextBelow(32));
                                trace.events.push_back(
                                    {start + jitter, src,
                                     grid.rank(x + dx, y + dy, z + dz),
                                     size});
                            }
                        }
                    }
                }
            }
        }
        // Residual-norm allreduce after the halo phase.
        emitAllreduce(trace, ranks, start + cfg.iteration_period * 2 / 3,
                      1, 8);
    }
    trace.normalize();
    return trace;
}

MessageTrace
generateMocfe(int ranks, const GeneratorConfig &cfg)
{
    const Grid3 grid(ranks);
    MessageTrace trace;
    trace.name = "mocfe";
    trace.ranks = ranks;

    const int size = std::max(1, cfg.base_message_flits / 2);
    const sim::Cycle hop_stagger = 4;

    for (int it = 0; it < cfg.iterations; ++it) {
        const sim::Cycle iter_start = it * cfg.iteration_period;
        // Eight angular octants, one pipelined sweep each.
        int octant = 0;
        for (int sz = -1; sz <= 1; sz += 2) {
            for (int sy = -1; sy <= 1; sy += 2) {
                for (int sx = -1; sx <= 1; sx += 2, ++octant) {
                    const sim::Cycle sweep_start =
                        iter_start +
                        octant * (cfg.iteration_period / 8);
                    for (int z = 0; z < grid.side; ++z) {
                        for (int y = 0; y < grid.side; ++y) {
                            for (int x = 0; x < grid.side; ++x) {
                                // Wavefront depth from the sweep
                                // origin corner.
                                const int wx = sx > 0 ? x
                                                      : grid.side - 1 - x;
                                const int wy = sy > 0 ? y
                                                      : grid.side - 1 - y;
                                const int wz = sz > 0 ? z
                                                      : grid.side - 1 - z;
                                const sim::Cycle t =
                                    sweep_start +
                                    (wx + wy + wz) * hop_stagger;
                                const int src = grid.rank(x, y, z);
                                if (grid.inside(x + sx, y, z))
                                    trace.events.push_back(
                                        {t, src,
                                         grid.rank(x + sx, y, z), size});
                                if (grid.inside(x, y + sy, z))
                                    trace.events.push_back(
                                        {t, src,
                                         grid.rank(x, y + sy, z), size});
                                if (grid.inside(x, y, z + sz))
                                    trace.events.push_back(
                                        {t, src,
                                         grid.rank(x, y, z + sz), size});
                            }
                        }
                    }
                }
            }
        }
    }
    trace.normalize();
    return trace;
}

MessageTrace
generateMultigrid(int ranks, const GeneratorConfig &cfg)
{
    const Grid3 grid(ranks);
    if ((grid.side & (grid.side - 1)) != 0)
        fatal("multigrid generator: grid side must be a power of two");
    MessageTrace trace;
    trace.name = "multigrid";
    trace.ranks = ranks;

    int levels = 0;
    while ((1 << levels) < grid.side)
        ++levels;

    static const int kFaceDirs[6][3] = {{1, 0, 0},  {-1, 0, 0},
                                        {0, 1, 0},  {0, -1, 0},
                                        {0, 0, 1},  {0, 0, -1}};

    for (int it = 0; it < cfg.iterations; ++it) {
        const sim::Cycle start = it * cfg.iteration_period;
        const sim::Cycle level_gap =
            cfg.iteration_period / (2 * levels + 1);

        // V-cycle: down (restriction) then up (prolongation). Phase p
        // walks levels 0..levels-1..0.
        for (int p = 0; p < 2 * levels - 1; ++p) {
            const int level = p < levels ? p : 2 * levels - 2 - p;
            const int stride = 1 << level;
            const int size =
                std::max(1, cfg.base_message_flits >> level);
            const sim::Cycle t = start + p * level_gap;

            for (int z = 0; z < grid.side; z += stride) {
                for (int y = 0; y < grid.side; y += stride) {
                    for (int x = 0; x < grid.side; x += stride) {
                        const int src = grid.rank(x, y, z);
                        // Smoother halo with 6 level-neighbors.
                        for (const auto &d : kFaceDirs) {
                            const int nx = x + d[0] * stride;
                            const int ny = y + d[1] * stride;
                            const int nz = z + d[2] * stride;
                            if (grid.inside(nx, ny, nz))
                                trace.events.push_back(
                                    {t, src, grid.rank(nx, ny, nz),
                                     size});
                        }
                        // Restriction to the parent rank on the way
                        // down.
                        if (p < levels - 1) {
                            const int ps = stride * 2;
                            const int parent = grid.rank(
                                x / ps * ps, y / ps * ps, z / ps * ps);
                            if (parent != src)
                                trace.events.push_back(
                                    {t + level_gap / 2, src, parent,
                                     std::max(1, size / 2)});
                        }
                    }
                }
            }
        }
    }
    trace.normalize();
    return trace;
}

MessageTrace
generateNekbone(int ranks, const GeneratorConfig &cfg)
{
    const Grid3 grid(ranks);
    MessageTrace trace;
    trace.name = "nekbone";
    trace.ranks = ranks;

    static const int kFaceDirs[6][3] = {{1, 0, 0},  {-1, 0, 0},
                                        {0, 1, 0},  {0, -1, 0},
                                        {0, 0, 1},  {0, 0, -1}};
    const int size = std::max(1, cfg.base_message_flits / 2);

    for (int it = 0; it < cfg.iterations; ++it) {
        const sim::Cycle start = it * cfg.iteration_period;
        // CG gather/scatter: two nearest-neighbor exchange rounds.
        for (int round = 0; round < 2; ++round) {
            const sim::Cycle t =
                start + round * (cfg.iteration_period / 4);
            for (int z = 0; z < grid.side; ++z) {
                for (int y = 0; y < grid.side; ++y) {
                    for (int x = 0; x < grid.side; ++x) {
                        const int src = grid.rank(x, y, z);
                        for (const auto &d : kFaceDirs) {
                            if (grid.inside(x + d[0], y + d[1],
                                            z + d[2]))
                                trace.events.push_back(
                                    {t, src,
                                     grid.rank(x + d[0], y + d[1],
                                               z + d[2]),
                                     size});
                        }
                    }
                }
            }
        }
        // Two dot-product allreduces per CG iteration.
        emitAllreduce(trace, ranks, start + cfg.iteration_period / 2, 1,
                      8);
        emitAllreduce(trace, ranks, start + cfg.iteration_period * 3 / 4,
                      1, 8);
    }
    trace.normalize();
    return trace;
}

MessageTrace
generateMiniApp(const std::string &name, int ranks,
                const GeneratorConfig &cfg)
{
    if (name == "lulesh")
        return generateLulesh(ranks, cfg);
    if (name == "mocfe")
        return generateMocfe(ranks, cfg);
    if (name == "multigrid")
        return generateMultigrid(ranks, cfg);
    if (name == "nekbone")
        return generateNekbone(ranks, cfg);
    fatal("unknown mini-app '", name, "'");
}

} // namespace wss::trace
