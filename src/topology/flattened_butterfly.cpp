#include "topology/flattened_butterfly.hpp"

#include "util/logging.hpp"

namespace wss::topology {

namespace {

/// Fabric bundle width and external ports for an m x m FB of radix k.
struct FbSplit
{
    int bundle = 0;
    int external = 0;
};

FbSplit
splitRadix(int m, int k)
{
    const int bundles = 2 * (m - 1);
    // Reserve ~13/16 of the radix for fabric wiring (Section VII's
    // operating point), at least one link per bundle.
    const int fabric_budget = k * 13 / 16;
    FbSplit split;
    split.bundle = std::max(1, fabric_budget / bundles);
    split.external = k - split.bundle * bundles;
    return split;
}

} // namespace

LogicalTopology
buildFlattenedButterfly(int m, const power::SscConfig &ssc)
{
    if (m < 2)
        fatal("buildFlattenedButterfly: m must be >= 2, got ", m);
    const FbSplit split = splitRadix(m, ssc.radix);
    if (split.external < 1) {
        fatal("buildFlattenedButterfly: radix ", ssc.radix,
              " cannot support an ", m, "x", m,
              " array (no ports left for external I/O)");
    }

    LogicalTopology topo("fb2d-" + std::to_string(m) + "x" +
                             std::to_string(m),
                         ssc.line_rate);
    const int type = topo.addSscType(ssc);

    std::vector<int> id(static_cast<std::size_t>(m) * m);
    for (int r = 0; r < m; ++r)
        for (int c = 0; c < m; ++c)
            id[r * m + c] =
                topo.addNode(NodeRole::Router, type, split.external);

    for (int r = 0; r < m; ++r) {
        for (int c = 0; c < m; ++c) {
            // Row all-to-all (emit each pair once).
            for (int c2 = c + 1; c2 < m; ++c2)
                topo.addLink(id[r * m + c], id[r * m + c2], split.bundle);
            // Column all-to-all.
            for (int r2 = r + 1; r2 < m; ++r2)
                topo.addLink(id[r * m + c], id[r2 * m + c], split.bundle);
        }
    }

    const std::string issue = topo.validate();
    if (!issue.empty())
        panic("buildFlattenedButterfly produced an invalid topology: ",
              issue);
    return topo;
}

std::int64_t
flattenedButterflyPortCount(int m, int ssc_radix)
{
    if (m < 2)
        return 0;
    const FbSplit split = splitRadix(m, ssc_radix);
    if (split.external < 1)
        return 0;
    return static_cast<std::int64_t>(m) * m * split.external;
}

} // namespace wss::topology
