/**
 * @file
 * Three-level folded Clos (leaf / aggregation / spine) builder.
 *
 * A 2-level folded Clos of radix-k sub-switches tops out at k^2/2
 * ports. The 3-level fabric — pods of leaves behind aggregation
 * switches, joined by a spine — scales to k^3/4 ports, which is what
 * datacenter networks (and the paper's Table IX DCN, whose spine
 * layer is built from waferscale switches) use. Chiplet count is
 * 5N/k (2N/k leaves + 2N/k aggregation + N/k spines).
 */

#ifndef WSS_TOPOLOGY_CLOS3_HPP
#define WSS_TOPOLOGY_CLOS3_HPP

#include <cstdint>

#include "topology/logical_topology.hpp"

namespace wss::topology {

/**
 * Build a 3-level folded Clos with @p total_ports external ports on
 * radix-k @p ssc sub-switches.
 *
 * Structure: pods of k/2 leaves + k/2 aggregation switches each
 * (every leaf: k/2 ports down, one uplink bundle to every
 * aggregation switch of its pod); aggregation uplinks spread
 * round-robin over N/k spines. total_ports must be a multiple of
 * k/2 and leave whole pods (multiple of k^2/4) except for the final
 * partial pod, which is allowed.
 */
LogicalTopology buildThreeLevelClos(std::int64_t total_ports,
                                    const power::SscConfig &ssc);

/// Chiplets a 3-level folded Clos of @p total_ports needs: ~5N/k.
std::int64_t clos3ChipletCount(std::int64_t total_ports, int ssc_radix);

/// Largest port count a 3-level Clos of radix-k sub-switches offers.
std::int64_t clos3MaxPorts(int ssc_radix);

} // namespace wss::topology

#endif // WSS_TOPOLOGY_CLOS3_HPP
