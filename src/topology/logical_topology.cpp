#include "topology/logical_topology.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace wss::topology {

std::string_view
toString(NodeRole role)
{
    switch (role) {
      case NodeRole::Leaf: return "leaf";
      case NodeRole::Spine: return "spine";
      case NodeRole::Router: return "router";
    }
    panic("unknown NodeRole");
}

int
LogicalTopology::addSscType(const power::SscConfig &ssc)
{
    sscs_.push_back(ssc);
    return static_cast<int>(sscs_.size()) - 1;
}

int
LogicalTopology::addNode(NodeRole role, int ssc_type, int external_ports)
{
    if (ssc_type < 0 || ssc_type >= static_cast<int>(sscs_.size()))
        fatal("addNode: unknown SSC type index ", ssc_type);
    nodes_.push_back({role, ssc_type, external_ports});
    return static_cast<int>(nodes_.size()) - 1;
}

void
LogicalTopology::addLink(int a, int b, int multiplicity)
{
    const int n = nodeCount();
    if (a < 0 || a >= n || b < 0 || b >= n)
        fatal("addLink: node id out of range (", a, ", ", b, ")");
    if (a == b)
        fatal("addLink: self-links are not allowed (node ", a, ")");
    if (multiplicity < 1)
        fatal("addLink: multiplicity must be >= 1");
    links_.push_back({a, b, multiplicity});
}

const power::SscConfig &
LogicalTopology::sscOf(int id) const
{
    return sscs_[nodes_[id].ssc_type];
}

std::int64_t
LogicalTopology::totalExternalPorts() const
{
    std::int64_t total = 0;
    for (const auto &node : nodes_)
        total += node.external_ports;
    return total;
}

int
LogicalTopology::portsUsed(int id) const
{
    int used = nodes_[id].external_ports;
    for (const auto &link : links_)
        if (link.a == id || link.b == id)
            used += link.multiplicity;
    return used;
}

SquareMillimeters
LogicalTopology::totalSscArea() const
{
    SquareMillimeters total = 0.0;
    for (const auto &node : nodes_)
        total += sscs_[node.ssc_type].area;
    return total;
}

Watts
LogicalTopology::totalSscCorePower() const
{
    Watts total = 0.0;
    for (const auto &node : nodes_)
        total += sscs_[node.ssc_type].corePowerAt5nm();
    return total;
}

Gbps
LogicalTopology::totalInternalLinkBandwidth() const
{
    double links = 0.0;
    for (const auto &link : links_)
        links += link.multiplicity;
    return links * line_rate_;
}

std::string
LogicalTopology::validate() const
{
    std::ostringstream err;
    if (line_rate_ <= 0.0)
        return "line rate must be positive";

    for (const auto &link : links_) {
        const int n = nodeCount();
        if (link.a < 0 || link.a >= n || link.b < 0 || link.b >= n) {
            err << "link endpoint out of range (" << link.a << ", "
                << link.b << ")";
            return err.str();
        }
        if (link.a == link.b) {
            err << "self-link at node " << link.a;
            return err.str();
        }
        if (link.multiplicity < 1) {
            err << "non-positive multiplicity on link (" << link.a << ", "
                << link.b << ")";
            return err.str();
        }
    }

    // Port budget per node. Accumulate in one pass instead of calling
    // portsUsed() per node (which would be quadratic in links).
    std::vector<int> used(nodes_.size(), 0);
    for (const auto &link : links_) {
        used[link.a] += link.multiplicity;
        used[link.b] += link.multiplicity;
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        used[i] += nodes_[i].external_ports;
        const auto &ssc = sscs_[nodes_[i].ssc_type];
        if (nodes_[i].external_ports < 0) {
            err << "node " << i << " has negative external ports";
            return err.str();
        }
        if (used[i] > ssc.radix) {
            err << "node " << i << " (" << toString(nodes_[i].role)
                << ") uses " << used[i] << " ports but its SSC '"
                << ssc.name << "' has radix " << ssc.radix;
            return err.str();
        }
        if (sscs_[nodes_[i].ssc_type].line_rate != line_rate_) {
            err << "node " << i << " SSC line rate "
                << sscs_[nodes_[i].ssc_type].line_rate
                << " != topology line rate " << line_rate_;
            return err.str();
        }
    }
    return "";
}

} // namespace wss::topology
