/**
 * @file
 * 2D flattened-butterfly builder — paper Section VII.
 *
 * Routers form an m x m array; every router links to every other
 * router in its row and in its column. Being a direct topology with
 * all-to-all row/column wiring, its long links make wafer mapping
 * expensive and its per-router port budget is mostly consumed by
 * fabric links — the paper finds it achieves 1.7x-3.2x lower radix
 * than Clos once constraints are applied.
 */

#ifndef WSS_TOPOLOGY_FLATTENED_BUTTERFLY_HPP
#define WSS_TOPOLOGY_FLATTENED_BUTTERFLY_HPP

#include <cstdint>

#include "topology/logical_topology.hpp"

namespace wss::topology {

/**
 * Build an m x m flattened butterfly of @p ssc routers. A fraction
 * 13/16 of the radix is reserved for fabric wiring, split evenly over
 * the 2(m-1) row/column bundles (width >= 1); the remainder hosts
 * external ports.
 *
 * Requires m >= 2 and enough radix for at least one link per bundle.
 */
LogicalTopology buildFlattenedButterfly(int m, const power::SscConfig &ssc);

/// External ports an m x m flattened butterfly of radix-k provides.
std::int64_t flattenedButterflyPortCount(int m, int ssc_radix);

} // namespace wss::topology

#endif // WSS_TOPOLOGY_FLATTENED_BUTTERFLY_HPP
