/**
 * @file
 * Direct 2D-mesh fabric builder — paper Section VII (Fig. 25).
 *
 * Every chiplet is a router hosting external ports; half the SSC
 * radix faces users and the other half is split into four equal
 * neighbor bundles. Mesh lays out natively on the wafer (every
 * logical link is one physical hop) which is why the paper finds it
 * gains ~10% radix over Clos — at the price of poor bisection
 * bandwidth and blocking behaviour.
 */

#ifndef WSS_TOPOLOGY_MESH_HPP
#define WSS_TOPOLOGY_MESH_HPP

#include "topology/logical_topology.hpp"

namespace wss::topology {

/**
 * Build a rows x cols direct mesh of @p ssc routers. Each router
 * hosts radix/2 external ports; each neighbor bundle is radix/8
 * links. Requires radix divisible by 8.
 */
LogicalTopology buildMesh(int rows, int cols, const power::SscConfig &ssc);

/// External ports a rows x cols mesh of radix-k routers provides.
std::int64_t meshPortCount(int rows, int cols, int ssc_radix);

} // namespace wss::topology

#endif // WSS_TOPOLOGY_MESH_HPP
