/**
 * @file
 * Dragonfly builder — paper Section VII.
 *
 * Groups of `a` routers form local cliques; groups are joined by
 * global links spread over the routers of each group [Kim'08]. As a
 * direct topology each router hosts external ports (k/4 here), and
 * the global links are long on the wafer, which is why the paper
 * finds dragonfly achieves 1.7x-3.2x lower radix than Clos once
 * mapping constraints are applied.
 */

#ifndef WSS_TOPOLOGY_DRAGONFLY_HPP
#define WSS_TOPOLOGY_DRAGONFLY_HPP

#include <cstdint>

#include "topology/logical_topology.hpp"

namespace wss::topology {

/// Routers per dragonfly group used throughout (a = 8).
inline constexpr int kDragonflyGroupSize = 8;

/**
 * Build a dragonfly of @p groups groups of kDragonflyGroupSize
 * radix-k routers. Per router: k/4 external ports, 7 local bundles of
 * k/16 links each, and the remaining ports as global links spread
 * round-robin over the other groups.
 *
 * Requires groups >= 2 and radix divisible by 16.
 */
LogicalTopology buildDragonfly(int groups, const power::SscConfig &ssc);

/// External ports a dragonfly of @p groups provides with radix-k SSCs.
std::int64_t dragonflyPortCount(int groups, int ssc_radix);

} // namespace wss::topology

#endif // WSS_TOPOLOGY_DRAGONFLY_HPP
