/**
 * @file
 * Folded-Clos (leaf-spine) fabric builders — paper Sections IV & V.
 *
 * The paper's waferscale switch is a 2-level folded Clos of TH-5-like
 * SSCs: 2N/k leaf chiplets (k/2 external ports + k/2 uplinks each)
 * and N/k spine chiplets, 3N/k chiplets total (Table VI). Uplinks are
 * spread round-robin across the spines, which keeps the fabric
 * rearrangeably non-blocking for any leaf count and strictly
 * non-blocking when the spread is even.
 *
 * Two paper optimizations are expressed through this builder:
 *  - Heterogeneous switch (V.B): each radix-k leaf is disaggregated
 *    into `leaf_split` radix-(k/split) leaves built from smaller,
 *    super-linearly cheaper dies; spine connectivity is preserved.
 *  - Subswitch deradixing (V.C): pass an SSC whose radix is reduced
 *    while its area stays at the full die size (see deradixedSsc()).
 */

#ifndef WSS_TOPOLOGY_CLOS_HPP
#define WSS_TOPOLOGY_CLOS_HPP

#include <cstdint>

#include "topology/logical_topology.hpp"

namespace wss::topology {

/// Parameters for buildFoldedClos().
struct ClosSpec
{
    /// Total external ports (switch radix). Must be a positive
    /// multiple of ssc.radix/2.
    std::int64_t total_ports = 0;
    /// Sub-switch chiplet used for leaves and (by default) spines.
    power::SscConfig ssc;
    /// Disaggregate each leaf into this many smaller leaves (>= 1).
    int leaf_split = 1;
};

/**
 * Build a 2-level folded Clos with @p spec.total_ports external
 * ports. With leaf_split > 1 the leaves use scaledSsc(k/split) dies
 * (heterogeneous design); spines always use spec.ssc.
 *
 * Calls fatal() if total_ports is not a multiple of ssc.radix/2 or
 * leaf_split does not divide ssc.radix/2.
 */
LogicalTopology buildFoldedClos(const ClosSpec &spec);

/**
 * Number of chiplets a folded Clos of @p total_ports needs with
 * radix-@p ssc_radix sub-switches: 3N/k (Table VI), exact for any N
 * that is a multiple of k/2.
 */
std::int64_t closChipletCount(std::int64_t total_ports, int ssc_radix);

/**
 * An SSC "deradixed" from @p base (Section V.C): radix divided by
 * @p factor, area kept at the full die size (the freed beachfront
 * becomes feedthrough I/O), core power reduced per the quadratic
 * radix-power law.
 */
power::SscConfig deradixedSsc(const power::SscConfig &base, int factor);

} // namespace wss::topology

#endif // WSS_TOPOLOGY_CLOS_HPP
