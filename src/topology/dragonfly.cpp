#include "topology/dragonfly.hpp"

#include <map>

#include "util/logging.hpp"

namespace wss::topology {

LogicalTopology
buildDragonfly(int groups, const power::SscConfig &ssc)
{
    if (groups < 2)
        fatal("buildDragonfly: need at least 2 groups, got ", groups);
    const int k = ssc.radix;
    if (k % 16 != 0)
        fatal("buildDragonfly: SSC radix must be divisible by 16, got ",
              k);

    const int a = kDragonflyGroupSize;
    const int external = k / 4;
    const int local_bundle = k / 16;
    const int global_budget = k - external - (a - 1) * local_bundle;
    // Wires from one group to the rest; uniform per-pair width (the
    // remainder stays unused rather than unbalancing router budgets).
    const int group_global = a * global_budget;
    const int pair_width = group_global / (groups - 1);
    if (pair_width < 1) {
        fatal("buildDragonfly: ", groups,
              " groups exceed the global-link budget of radix ", k);
    }

    LogicalTopology topo("dragonfly-" + std::to_string(groups) + "g",
                         ssc.line_rate);
    const int type = topo.addSscType(ssc);

    std::vector<std::vector<int>> id(groups, std::vector<int>(a));
    for (int g = 0; g < groups; ++g)
        for (int r = 0; r < a; ++r)
            id[g][r] = topo.addNode(NodeRole::Router, type, external);

    // Local cliques.
    for (int g = 0; g < groups; ++g)
        for (int r = 0; r < a; ++r)
            for (int r2 = r + 1; r2 < a; ++r2)
                topo.addLink(id[g][r], id[g][r2], local_bundle);

    // Global links: each unordered group pair gets pair_width wires,
    // endpoints rotated over the routers of each group.
    std::map<std::pair<int, int>, int> bundle;
    std::vector<int> cursor(groups, 0);
    for (int g1 = 0; g1 < groups; ++g1) {
        for (int g2 = g1 + 1; g2 < groups; ++g2) {
            for (int w = 0; w < pair_width; ++w) {
                const int r1 = cursor[g1]++ % a;
                const int r2 = cursor[g2]++ % a;
                ++bundle[{id[g1][r1], id[g2][r2]}];
            }
        }
    }
    for (const auto &[pair, mult] : bundle)
        topo.addLink(pair.first, pair.second, mult);

    const std::string issue = topo.validate();
    if (!issue.empty())
        panic("buildDragonfly produced an invalid topology: ", issue);
    return topo;
}

std::int64_t
dragonflyPortCount(int groups, int ssc_radix)
{
    return static_cast<std::int64_t>(groups) * kDragonflyGroupSize *
           (ssc_radix / 4);
}

} // namespace wss::topology
