/**
 * @file
 * Oversubscribed 2-level butterfly builder — paper Section VII.
 *
 * The paper's butterfly trades bisection bandwidth and path diversity
 * for chiplet efficiency: relative to the folded Clos it thins the
 * second stage. We model it as a leaf-spine fabric where each leaf
 * dedicates 5/8 of its radix to external ports and 3/8 to uplinks
 * (a 5:3 oversubscription), so fewer spine chiplets are needed per
 * port and the achievable radix is ~10% above Clos in the optimized
 * regime — with ~3x lower bisection bandwidth, as the paper notes.
 */

#ifndef WSS_TOPOLOGY_BUTTERFLY_HPP
#define WSS_TOPOLOGY_BUTTERFLY_HPP

#include <cstdint>

#include "topology/logical_topology.hpp"

namespace wss::topology {

/// Numerator of the leaf external-port share (5 of 8).
inline constexpr int kButterflyDownShare = 5;
/// Denominator of the leaf radix split.
inline constexpr int kButterflyShareDen = 8;

/**
 * Build the oversubscribed butterfly with @p total_ports external
 * ports on @p ssc chiplets. total_ports must be a multiple of
 * 5*radix/8; requires radix divisible by 8.
 */
LogicalTopology buildButterfly(std::int64_t total_ports,
                               const power::SscConfig &ssc);

/// Chiplets an oversubscribed butterfly of @p total_ports needs.
std::int64_t butterflyChipletCount(std::int64_t total_ports, int ssc_radix);

} // namespace wss::topology

#endif // WSS_TOPOLOGY_BUTTERFLY_HPP
