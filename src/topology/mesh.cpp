#include "topology/mesh.hpp"

#include "util/logging.hpp"

namespace wss::topology {

LogicalTopology
buildMesh(int rows, int cols, const power::SscConfig &ssc)
{
    if (rows < 1 || cols < 1)
        fatal("buildMesh: grid must be at least 1x1");
    if (ssc.radix % 8 != 0)
        fatal("buildMesh: SSC radix must be divisible by 8, got ",
              ssc.radix);

    const int ports_per_router = ssc.radix / 2;
    const int bundle = ssc.radix / 8;

    LogicalTopology topo(
        "mesh-" + std::to_string(rows) + "x" + std::to_string(cols),
        ssc.line_rate);
    const int type = topo.addSscType(ssc);

    std::vector<int> id(static_cast<std::size_t>(rows) * cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            id[r * cols + c] =
                topo.addNode(NodeRole::Router, type, ports_per_router);

    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                topo.addLink(id[r * cols + c], id[r * cols + c + 1],
                             bundle);
            if (r + 1 < rows)
                topo.addLink(id[r * cols + c], id[(r + 1) * cols + c],
                             bundle);
        }
    }

    const std::string issue = topo.validate();
    if (!issue.empty())
        panic("buildMesh produced an invalid topology: ", issue);
    return topo;
}

std::int64_t
meshPortCount(int rows, int cols, int ssc_radix)
{
    return static_cast<std::int64_t>(rows) * cols * (ssc_radix / 2);
}

} // namespace wss::topology
