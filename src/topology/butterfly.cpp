#include "topology/butterfly.hpp"

#include <map>

#include "util/logging.hpp"

namespace wss::topology {

LogicalTopology
buildButterfly(std::int64_t total_ports, const power::SscConfig &ssc)
{
    const int k = ssc.radix;
    if (k % kButterflyShareDen != 0)
        fatal("buildButterfly: SSC radix must be divisible by ",
              kButterflyShareDen, ", got ", k);
    const int down = k * kButterflyDownShare / kButterflyShareDen;
    const int up = k - down;
    if (total_ports <= 0 || total_ports % down != 0) {
        fatal("buildButterfly: total ports (", total_ports,
              ") must be a positive multiple of ", down);
    }

    const auto leaves = static_cast<int>(total_ports / down);
    // Spines sized so every uplink lands on a spine port.
    const auto spines = static_cast<int>(
        (static_cast<std::int64_t>(leaves) * up + k - 1) / k);

    LogicalTopology topo("butterfly-" + std::to_string(total_ports),
                         ssc.line_rate);
    const int type = topo.addSscType(ssc);

    std::vector<int> leaf_ids(leaves), spine_ids(spines);
    for (int l = 0; l < leaves; ++l)
        leaf_ids[l] = topo.addNode(NodeRole::Leaf, type, down);
    for (int s = 0; s < spines; ++s)
        spine_ids[s] = topo.addNode(NodeRole::Spine, type, 0);

    std::map<std::pair<int, int>, int> bundle;
    int cursor = 0;
    for (int l = 0; l < leaves; ++l) {
        for (int u = 0; u < up; ++u) {
            ++bundle[{leaf_ids[l], spine_ids[cursor % spines]}];
            ++cursor;
        }
    }
    for (const auto &[pair, mult] : bundle)
        topo.addLink(pair.first, pair.second, mult);

    const std::string issue = topo.validate();
    if (!issue.empty())
        panic("buildButterfly produced an invalid topology: ", issue);
    return topo;
}

std::int64_t
butterflyChipletCount(std::int64_t total_ports, int ssc_radix)
{
    const int down = ssc_radix * kButterflyDownShare / kButterflyShareDen;
    const int up = ssc_radix - down;
    const std::int64_t leaves = (total_ports + down - 1) / down;
    const std::int64_t spines = (leaves * up + ssc_radix - 1) / ssc_radix;
    return leaves + spines;
}

} // namespace wss::topology
