#include "topology/properties.hpp"

#include <algorithm>
#include <queue>

#include "util/logging.hpp"

namespace wss::topology {

namespace {

/// Adjacency list with bundle bandwidth (Gbps) per edge.
struct Adjacency
{
    struct Edge
    {
        int to;
        Gbps bandwidth;
    };
    std::vector<std::vector<Edge>> out;

    explicit Adjacency(const LogicalTopology &topo)
        : out(topo.nodeCount())
    {
        for (const auto &link : topo.links()) {
            const Gbps bw = link.multiplicity * topo.lineRate();
            out[link.a].push_back({link.b, bw});
            out[link.b].push_back({link.a, bw});
        }
    }
};

/// Unweighted BFS distances (in links) from @p src.
std::vector<int>
bfsDistances(const Adjacency &adj, int src)
{
    std::vector<int> dist(adj.out.size(), -1);
    std::queue<int> queue;
    dist[src] = 0;
    queue.push(src);
    while (!queue.empty()) {
        const int u = queue.front();
        queue.pop();
        for (const auto &edge : adj.out[u]) {
            if (dist[edge.to] < 0) {
                dist[edge.to] = dist[u] + 1;
                queue.push(edge.to);
            }
        }
    }
    return dist;
}

} // namespace

std::int64_t
hierarchicalCrossbarChiplets(std::int64_t ports, int ssc_radix)
{
    if (ssc_radix <= 0)
        fatal("hierarchicalCrossbarChiplets: radix must be positive");
    const std::int64_t n = (ports + ssc_radix - 1) / ssc_radix;
    return n * n;
}

std::int64_t
modularCrossbarChiplets(std::int64_t ports, int ssc_radix)
{
    // Same asymptotic cost as the hierarchical crossbar (Table VI).
    return hierarchicalCrossbarChiplets(ports, ssc_radix);
}

Gbps
estimateBisectionBandwidth(const LogicalTopology &topo, Rng &rng,
                           int trials)
{
    const int n = topo.nodeCount();
    if (n < 2)
        return 0.0;

    const auto &nodes = topo.nodes();
    const std::int64_t total_ports = topo.totalExternalPorts();
    if (total_ports == 0)
        return 0.0;

    Gbps best = -1.0;
    std::vector<int> order(n);
    for (int i = 0; i < n; ++i)
        order[i] = i;

    for (int t = 0; t < trials; ++t) {
        std::shuffle(order.begin(), order.end(), rng);

        // Greedy balanced split by external ports: walk the shuffled
        // nodes, assign port-carrying nodes to the lighter side.
        std::vector<char> side(n, 0);
        std::int64_t ports_a = 0;
        for (int id : order) {
            if (nodes[id].external_ports == 0) {
                side[id] = static_cast<char>(rng.nextBelow(2));
                continue;
            }
            if (ports_a * 2 < total_ports) {
                side[id] = 0;
                ports_a += nodes[id].external_ports;
            } else {
                side[id] = 1;
            }
        }

        auto cut = [&] {
            Gbps c = 0.0;
            for (const auto &link : topo.links())
                if (side[link.a] != side[link.b])
                    c += link.multiplicity * topo.lineRate();
            return c;
        };

        // Greedy refinement: move port-less nodes (free to move) and
        // swap equal-port node pairs while the cut shrinks.
        Gbps current = cut();
        bool improved = true;
        while (improved) {
            improved = false;
            for (int id = 0; id < n; ++id) {
                if (nodes[id].external_ports != 0)
                    continue;
                side[id] ^= 1;
                const Gbps candidate = cut();
                if (candidate < current) {
                    current = candidate;
                    improved = true;
                } else {
                    side[id] ^= 1;
                }
            }
            for (int i = 0; i < n && !improved; ++i) {
                for (int j = i + 1; j < n; ++j) {
                    if (side[i] == side[j] ||
                        nodes[i].external_ports !=
                            nodes[j].external_ports ||
                        nodes[i].external_ports == 0) {
                        continue;
                    }
                    std::swap(side[i], side[j]);
                    const Gbps candidate = cut();
                    if (candidate < current) {
                        current = candidate;
                        improved = true;
                        break;
                    }
                    std::swap(side[i], side[j]);
                }
            }
        }
        if (best < 0.0 || current < best)
            best = current;
    }
    return best;
}

double
averageHopCount(const LogicalTopology &topo)
{
    const Adjacency adj(topo);
    const auto &nodes = topo.nodes();
    const int n = topo.nodeCount();

    double weighted = 0.0;
    double weight = 0.0;
    for (int src = 0; src < n; ++src) {
        if (nodes[src].external_ports == 0)
            continue;
        const auto dist = bfsDistances(adj, src);
        const double src_ports = nodes[src].external_ports;
        for (int dst = 0; dst < n; ++dst) {
            if (nodes[dst].external_ports == 0)
                continue;
            double pairs = src_ports * nodes[dst].external_ports;
            if (dst == src) {
                // Port pairs on the same chiplet: 1 chiplet traversed.
                pairs = src_ports * (src_ports - 1);
                weighted += pairs * 1.0;
                weight += pairs;
                continue;
            }
            if (dist[dst] < 0)
                fatal("averageHopCount: topology is disconnected");
            // Chiplets traversed = link hops + 1.
            weighted += pairs * (dist[dst] + 1);
            weight += pairs;
        }
    }
    return weight > 0.0 ? weighted / weight : 0.0;
}

int
worstCaseHopCount(const LogicalTopology &topo)
{
    const Adjacency adj(topo);
    const auto &nodes = topo.nodes();
    const int n = topo.nodeCount();

    int worst = 0;
    for (int src = 0; src < n; ++src) {
        if (nodes[src].external_ports == 0)
            continue;
        const auto dist = bfsDistances(adj, src);
        for (int dst = 0; dst < n; ++dst) {
            if (nodes[dst].external_ports == 0 || dst == src)
                continue;
            if (dist[dst] < 0)
                fatal("worstCaseHopCount: topology is disconnected");
            worst = std::max(worst, dist[dst] + 1);
        }
    }
    // A single-chiplet fabric still traverses that chiplet.
    return std::max(worst, 1);
}

} // namespace wss::topology
