#include "topology/clos.hpp"

#include <map>

#include "util/logging.hpp"

namespace wss::topology {

LogicalTopology
buildFoldedClos(const ClosSpec &spec)
{
    const int k = spec.ssc.radix;
    if (k < 2 || k % 2 != 0)
        fatal("buildFoldedClos: SSC radix must be even and >= 2, got ", k);
    const int half = k / 2;
    if (spec.total_ports <= 0 || spec.total_ports % half != 0) {
        fatal("buildFoldedClos: total ports (", spec.total_ports,
              ") must be a positive multiple of half the SSC radix (",
              half, ")");
    }
    if (spec.leaf_split < 1 || half % spec.leaf_split != 0) {
        fatal("buildFoldedClos: leaf_split (", spec.leaf_split,
              ") must divide half the SSC radix (", half, ")");
    }

    LogicalTopology topo("clos-" + std::to_string(spec.total_ports),
                         spec.ssc.line_rate);

    // Spine chiplets always use the full-radix SSC.
    const int spine_type = topo.addSscType(spec.ssc);

    // Leaf chiplets: the full SSC, or a disaggregated smaller die.
    int leaf_type = spine_type;
    int leaf_half = half;
    if (spec.leaf_split > 1) {
        leaf_half = half / spec.leaf_split;
        power::SscConfig leaf_ssc = power::scaledSsc(
            k / spec.leaf_split, spec.ssc.line_rate,
            "hetero-leaf-" + std::to_string(k / spec.leaf_split));
        leaf_type = topo.addSscType(leaf_ssc);
    }

    const auto leaves =
        static_cast<int>(spec.total_ports / leaf_half);
    const auto spines =
        static_cast<int>((spec.total_ports + k - 1) / k); // ceil(N/k)

    std::vector<int> leaf_ids(leaves);
    for (int l = 0; l < leaves; ++l)
        leaf_ids[l] = topo.addNode(NodeRole::Leaf, leaf_type, leaf_half);
    std::vector<int> spine_ids(spines);
    for (int s = 0; s < spines; ++s)
        spine_ids[s] = topo.addNode(NodeRole::Spine, spine_type, 0);

    // Spread each leaf's uplinks round-robin over the spines,
    // continuing the rotation across leaves so every spine ends up
    // with the same total (+-1) number of downlinks.
    std::map<std::pair<int, int>, int> bundle;
    int cursor = 0;
    for (int l = 0; l < leaves; ++l) {
        for (int u = 0; u < leaf_half; ++u) {
            const int s = cursor % spines;
            ++bundle[{leaf_ids[l], spine_ids[s]}];
            ++cursor;
        }
    }
    for (const auto &[pair, mult] : bundle)
        topo.addLink(pair.first, pair.second, mult);

    const std::string issue = topo.validate();
    if (!issue.empty())
        panic("buildFoldedClos produced an invalid topology: ", issue);
    return topo;
}

std::int64_t
closChipletCount(std::int64_t total_ports, int ssc_radix)
{
    if (ssc_radix <= 0)
        fatal("closChipletCount: radix must be positive");
    // 2N/k leaves + ceil(N/k) spines; equals 3N/k when k | N.
    return 2 * total_ports / ssc_radix +
           (total_ports + ssc_radix - 1) / ssc_radix;
}

power::SscConfig
deradixedSsc(const power::SscConfig &base, int factor)
{
    if (factor < 1 || base.radix % factor != 0)
        fatal("deradixedSsc: factor (", factor,
              ") must divide the base radix (", base.radix, ")");
    // Same die area - the freed beachfront becomes feedthrough I/O -
    // but only radix/factor ports of switching logic, so core power
    // follows the quadratic radix law. Repeater power for the
    // feedthroughs is accounted as internal I/O power by the mapping
    // layer, not here.
    power::SscConfig ssc = power::scaledSsc(
        base.radix / factor, base.line_rate,
        base.name + "-dr" + std::to_string(base.radix / factor));
    ssc.area = base.area;
    return ssc;
}

} // namespace wss::topology
