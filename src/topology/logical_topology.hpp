/**
 * @file
 * Logical switch-fabric topologies — paper Sections III.C, IV, VII.
 *
 * A LogicalTopology describes how sub-switch chiplets (SSCs) are
 * wired into one big switch: the chiplet instances (each referencing
 * an SSC design from a small per-topology catalog), the logical
 * inter-chiplet links (with multiplicity for parallel links), and how
 * many external ports each chiplet hosts. It is purely logical — the
 * physical placement onto the wafer mesh is the mapping layer's job.
 */

#ifndef WSS_TOPOLOGY_LOGICAL_TOPOLOGY_HPP
#define WSS_TOPOLOGY_LOGICAL_TOPOLOGY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "power/ssc.hpp"
#include "util/units.hpp"

namespace wss::topology {

/// Functional role of a chiplet within the fabric.
enum class NodeRole
{
    /// Ingress/egress stage: hosts external ports.
    Leaf,
    /// Interior stage: switches between leaves.
    Spine,
    /// Direct-topology router: hosts ports and routes through-traffic.
    Router,
};

/// Human-readable role name.
std::string_view toString(NodeRole role);

/**
 * One chiplet instance of the fabric.
 */
struct LogicalNode
{
    /// Role in the fabric.
    NodeRole role = NodeRole::Router;
    /// Index into LogicalTopology::sscTypes().
    int ssc_type = 0;
    /// Number of external (user-facing) ports hosted by this chiplet.
    int external_ports = 0;
};

/**
 * A bundle of parallel bidirectional links between two chiplets,
 * each running at the topology line rate.
 */
struct LogicalLink
{
    /// Endpoint node ids (order is not meaningful).
    int a = 0;
    int b = 0;
    /// Number of parallel links in this bundle (>= 1).
    int multiplicity = 1;
};

/**
 * A complete logical fabric: nodes, link bundles, external ports.
 *
 * Invariants (checked by validate()):
 *  - every node's used link count + external ports fits its SSC radix,
 *  - link endpoints are valid and distinct,
 *  - multiplicities are positive.
 */
class LogicalTopology
{
  public:
    LogicalTopology(std::string name, Gbps line_rate)
        : name_(std::move(name)), line_rate_(line_rate)
    {}

    /// Register an SSC design; returns its type index.
    int addSscType(const power::SscConfig &ssc);

    /// Add a chiplet; returns its node id.
    int addNode(NodeRole role, int ssc_type, int external_ports);

    /// Add a bundle of @p multiplicity parallel links between a and b.
    void addLink(int a, int b, int multiplicity = 1);

    const std::string &name() const { return name_; }
    Gbps lineRate() const { return line_rate_; }
    const std::vector<power::SscConfig> &sscTypes() const { return sscs_; }
    const std::vector<LogicalNode> &nodes() const { return nodes_; }
    const std::vector<LogicalLink> &links() const { return links_; }

    /// The SSC design of node @p id.
    const power::SscConfig &sscOf(int id) const;

    /// Sum of external ports over all nodes (the switch radix).
    std::int64_t totalExternalPorts() const;

    /// Number of chiplets.
    int nodeCount() const { return static_cast<int>(nodes_.size()); }

    /// Links (counting multiplicity) touching node @p id, plus its
    /// external ports: the number of SSC ports the node consumes.
    int portsUsed(int id) const;

    /// Total silicon area of all SSCs (excludes I/O chiplets).
    SquareMillimeters totalSscArea() const;

    /// Total SSC core power at 5 nm.
    Watts totalSscCorePower() const;

    /// Aggregate provisioned internal link bandwidth, one direction
    /// (sum over bundles of multiplicity x line rate).
    Gbps totalInternalLinkBandwidth() const;

    /**
     * Verify structural invariants; returns an empty string when
     * valid, else a description of the first violation.
     */
    std::string validate() const;

  private:
    std::string name_;
    Gbps line_rate_;
    std::vector<power::SscConfig> sscs_;
    std::vector<LogicalNode> nodes_;
    std::vector<LogicalLink> links_;
};

} // namespace wss::topology

#endif // WSS_TOPOLOGY_LOGICAL_TOPOLOGY_HPP
