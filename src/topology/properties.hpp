/**
 * @file
 * Topology metrics: chiplet-count laws (Table VI), bisection
 * bandwidth, and hop counts.
 */

#ifndef WSS_TOPOLOGY_PROPERTIES_HPP
#define WSS_TOPOLOGY_PROPERTIES_HPP

#include <cstdint>

#include "topology/logical_topology.hpp"
#include "util/rng.hpp"

namespace wss::topology {

/// Chiplets a hierarchical crossbar needs: (N/k)^2 (Table VI).
std::int64_t hierarchicalCrossbarChiplets(std::int64_t ports, int ssc_radix);

/// Chiplets a modular crossbar needs: (N/k)^2 (Table VI).
std::int64_t modularCrossbarChiplets(std::int64_t ports, int ssc_radix);

/**
 * Bisection bandwidth estimate (Gbps, one direction): the fabric
 * nodes are split into two halves of equal external-port count and
 * the cut link bandwidth is minimized by randomized
 * partitioning + greedy refinement over @p trials trials.
 *
 * Exact for leaf-spine fabrics (where the optimum is to split the
 * leaves evenly); a good upper-bound heuristic elsewhere.
 */
Gbps estimateBisectionBandwidth(const LogicalTopology &topo, Rng &rng,
                                int trials = 8);

/**
 * Average chiplet-level hop count between external ports, weighted
 * by port-pair traffic under uniform random traffic (includes the
 * ingress and egress chiplets; a port pair on the same chiplet
 * counts 1 hop). BFS over the logical links.
 */
double averageHopCount(const LogicalTopology &topo);

/// Worst-case chiplet-level hop count between any two external ports.
int worstCaseHopCount(const LogicalTopology &topo);

} // namespace wss::topology

#endif // WSS_TOPOLOGY_PROPERTIES_HPP
