#include "topology/clos3.hpp"

#include <map>

#include "util/logging.hpp"

namespace wss::topology {

LogicalTopology
buildThreeLevelClos(std::int64_t total_ports, const power::SscConfig &ssc)
{
    const int k = ssc.radix;
    if (k < 4 || k % 2 != 0)
        fatal("buildThreeLevelClos: SSC radix must be even and >= 4");
    const int half = k / 2;
    if (total_ports <= 0 || total_ports % half != 0) {
        fatal("buildThreeLevelClos: total ports (", total_ports,
              ") must be a positive multiple of half the radix (", half,
              ")");
    }
    if (total_ports > clos3MaxPorts(k)) {
        fatal("buildThreeLevelClos: ", total_ports,
              " ports exceed the 3-level limit of ", clos3MaxPorts(k));
    }

    LogicalTopology topo("clos3-" + std::to_string(total_ports),
                         ssc.line_rate);
    const int type = topo.addSscType(ssc);

    const std::int64_t pod_ports =
        static_cast<std::int64_t>(half) * half;
    const auto pods =
        static_cast<int>((total_ports + pod_ports - 1) / pod_ports);

    std::vector<int> agg_ids;
    std::int64_t remaining = total_ports;
    for (int pod = 0; pod < pods; ++pod) {
        const auto pod_now = std::min<std::int64_t>(remaining, pod_ports);
        const auto leaves = static_cast<int>(pod_now / half);
        remaining -= pod_now;

        // Aggregation layer of this pod: one switch per leaf uplink.
        std::vector<int> pod_aggs(half);
        for (int a = 0; a < half; ++a) {
            pod_aggs[a] = topo.addNode(NodeRole::Spine, type, 0);
            agg_ids.push_back(pod_aggs[a]);
        }
        for (int l = 0; l < leaves; ++l) {
            const int leaf = topo.addNode(NodeRole::Leaf, type, half);
            for (int a = 0; a < half; ++a)
                topo.addLink(leaf, pod_aggs[a], 1);
        }
    }

    // Spine layer: every aggregation switch has `half` uplinks,
    // spread round-robin.
    const std::int64_t uplinks =
        static_cast<std::int64_t>(agg_ids.size()) * half;
    const auto spines = static_cast<int>((uplinks + k - 1) / k);
    std::vector<int> spine_ids(spines);
    for (int s = 0; s < spines; ++s)
        spine_ids[s] = topo.addNode(NodeRole::Spine, type, 0);

    std::map<std::pair<int, int>, int> bundle;
    std::int64_t cursor = 0;
    for (int agg : agg_ids) {
        for (int u = 0; u < half; ++u) {
            ++bundle[{agg, spine_ids[cursor % spines]}];
            ++cursor;
        }
    }
    for (const auto &[pair, mult] : bundle)
        topo.addLink(pair.first, pair.second, mult);

    const std::string issue = topo.validate();
    if (!issue.empty())
        panic("buildThreeLevelClos produced an invalid topology: ",
              issue);
    return topo;
}

std::int64_t
clos3ChipletCount(std::int64_t total_ports, int ssc_radix)
{
    const int half = ssc_radix / 2;
    const std::int64_t pod_ports =
        static_cast<std::int64_t>(half) * half;
    const std::int64_t pods = (total_ports + pod_ports - 1) / pod_ports;
    const std::int64_t leaves = total_ports / half;
    const std::int64_t aggs = pods * half;
    const std::int64_t spines =
        (aggs * half + ssc_radix - 1) / ssc_radix;
    return leaves + aggs + spines;
}

std::int64_t
clos3MaxPorts(int ssc_radix)
{
    // k/2 pods of (k/2)^2 ports: k^3/8... limited by spine radix:
    // spines absorb pods * (k/2)^2 uplinks over N/k spines of radix
    // k; the classic fat-tree bound with radix-k switches is k^3/4
    // hosts, reached with k pods of k/2 leaves. Our pods hold k/2
    // leaves x k/2 ports, and the spine layer scales until every
    // spine port is used: k pods.
    const std::int64_t half = ssc_radix / 2;
    return ssc_radix * half * half;
}

} // namespace wss::topology
