/**
 * @file
 * Hierarchical wall-clock self-profiler for the execution engine.
 *
 * Answers "where does the wall time go?" across the repo's fidelity
 * stack: calibration sweeps, campaign cells, the flow-level event
 * loop, collective steps. The design mirrors obs::MetricsRegistry's
 * null-handle contract:
 *
 *   - instrumented code takes a `Profiler *` that may be nullptr;
 *   - ScopedPhase on a null profiler is a single predicted branch
 *     (≤1% hot-loop overhead, guarded by BM_ProfilerScope* in
 *     bench_micro);
 *   - a Profiler is single-threaded — concurrent workers each keep
 *     their own and the owner merge()s them after the barrier,
 *     exactly like per-worker MetricsRegistries.
 *
 * Phases nest: entering "waterfill" inside "flow-sim" accumulates
 * under the path "flow-sim/waterfill". Aggregation is by path, so a
 * phase entered a million times costs one map node, and merge() of
 * two profilers is a sum over the union of their paths. The
 * aggregate exports three ways: a self-time summary table
 * (writeSummary), Chrome-trace spans laid out synthetically so the
 * hierarchy renders in Perfetto (addToTrace), and raw phases() for
 * RunManifest's timing section.
 */

#ifndef WSS_OBS_PROFILER_HPP
#define WSS_OBS_PROFILER_HPP

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wss::obs {

class TraceEventSink;

/// Accumulated totals of one phase path.
struct PhaseStats
{
    /// Times the phase was entered.
    std::int64_t calls = 0;
    /// Total inclusive wall seconds (children included).
    double seconds = 0.0;
};

/**
 * Per-thread hierarchical phase-timer aggregate.
 *
 * Copying is deleted for the same reason as MetricsRegistry: an
 * accidental copy would fork the aggregate and silently drop half
 * the timings at merge; moves are fine.
 */
class Profiler
{
  public:
    Profiler() = default;
    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;
    Profiler(Profiler &&) = default;
    Profiler &operator=(Profiler &&) = default;

    /// Open a phase named @p name nested under the currently open
    /// phase (or at the root). Prefer ScopedPhase over calling this
    /// directly — unbalanced enter/exit() panics.
    void enter(std::string_view name);

    /// Close the innermost open phase, accumulating its elapsed time.
    void exit();

    /// True while any phase is open (merge()/exports require false).
    bool open() const { return !stack_.empty(); }

    /// Aggregated stats keyed by '/'-joined phase path, sorted — the
    /// sort order is a pre-order walk of the phase tree ("a" before
    /// "a/b" before "a/b/c").
    const std::map<std::string, PhaseStats> &
    phases() const
    {
        return phases_;
    }

    /// Inclusive seconds of @p path (0 when never entered).
    double totalSeconds(const std::string &path) const;

    /// Self time of @p path: inclusive minus the sum of its direct
    /// children. Concurrent merged children can push this below zero
    /// (their inclusive times overlap the parent's single wall
    /// clock); the summary clamps at zero and says so.
    double selfSeconds(const std::string &path) const;

    /**
     * Fold @p other into this profiler: stats sum path-by-path. A
     * non-empty @p prefix re-roots the other profiler's paths under
     * "prefix/..." so an engine can file its workers' phases below
     * its own (exec::Campaign merges worker profilers under a
     * "campaign" prefix this way). When *this* profiler has a phase
     * open, the merged paths additionally nest under the open path —
     * so a caller timing "calibrate" sees its sweep's worker phases
     * land at "calibrate/sweep/...". @p other must be fully exited.
     */
    void merge(const Profiler &other, const std::string &prefix = "");

    /// Aligned self-time table, heaviest self time first.
    void writeSummary(std::ostream &os) const;

    /**
     * Emit the aggregate as Chrome-trace spans on track @p tid of
     * @p sink. The layout is synthetic: children are laid end-to-end
     * inside their parent starting at the parent's start, preserving
     * nesting for Perfetto's flame view. Spans carry the call count
     * as an arg. Timestamps are deterministic functions of the
     * aggregate, not of when this is called.
     */
    void addToTrace(TraceEventSink &sink, int tid) const;

  private:
    struct OpenPhase
    {
        std::string path;
        std::chrono::steady_clock::time_point start;
    };

    std::vector<OpenPhase> stack_;
    std::map<std::string, PhaseStats> phases_;
};

/**
 * RAII phase scope: enters on construction, exits on destruction.
 * The default-constructed or null-profiler form is a no-op (one
 * branch per end), so call sites instrument unconditionally:
 *
 *   obs::ScopedPhase phase(cfg.profiler, "waterfill");
 */
class ScopedPhase
{
  public:
    ScopedPhase() = default;

    ScopedPhase(Profiler *profiler, std::string_view name)
        : profiler_(profiler)
    {
        if (profiler_)
            profiler_->enter(name);
    }

    ~ScopedPhase()
    {
        if (profiler_)
            profiler_->exit();
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    Profiler *profiler_ = nullptr;
};

} // namespace wss::obs

#endif // WSS_OBS_PROFILER_HPP
