#include "obs/watchdog.hpp"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "util/logging.hpp"

namespace wss::obs {
namespace wddetail {

struct HeartbeatSlot
{
    std::atomic<std::uint64_t> last_beat_ns{0};
    std::atomic<std::uint64_t> beats{0};
    std::atomic<bool> active{false};
    char label[32] = {};
    /// Guards detail (written per design point, read per progress
    /// render — both cold).
    std::mutex detail_mutex;
    char detail[96] = {};
};

thread_local HeartbeatSlot *tl_slot = nullptr;

} // namespace wddetail

namespace {

using wddetail::HeartbeatSlot;

constexpr std::size_t kMaxSlots = 256;
constexpr std::size_t kProgressLineCap = 156;

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::atomic<bool> g_enabled{false};
std::atomic<HeartbeatSlot *> g_slots[kMaxSlots]{};
std::atomic<std::size_t> g_slot_count{0};
std::mutex g_register_mutex;

std::atomic<std::uint64_t> g_progress_total{0};
std::atomic<std::uint64_t> g_progress_done{0};
std::atomic<std::uint64_t> g_progress_epoch_ns{0};

std::thread g_monitor;
std::mutex g_monitor_mutex;
std::condition_variable g_monitor_cv;
bool g_monitor_running = false;
bool g_monitor_stop = false;
std::size_t g_last_line_len = 0;

void
copyTruncated(char *dst, std::size_t cap, std::string_view src)
{
    const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
}

/// Re-render the status line in place (no newline; the next log line
/// simply starts after it, which is cosmetic).
void
paintProgressLine(const std::string &line)
{
    std::string text = "\r" + line;
    if (line.size() < g_last_line_len)
        text.append(g_last_line_len - line.size(), ' ');
    g_last_line_len = line.size();
    std::lock_guard<std::mutex> lock(wss::detail::logMutex());
    std::cerr << text << std::flush;
}

void
eraseProgressLine()
{
    if (g_last_line_len == 0)
        return;
    std::string text = "\r";
    text.append(g_last_line_len, ' ');
    text += '\r';
    g_last_line_len = 0;
    std::lock_guard<std::mutex> lock(wss::detail::logMutex());
    std::cerr << text << std::flush;
}

/// Stall diagnosis: the heartbeat table plus each flight-recorder
/// ring's tail (events + open phase stack), one atomic stderr write.
std::string
renderStallDump()
{
    std::ostringstream os;
    os << "watchdog: heartbeat table:\n";
    for (const HeartbeatSnap &s : Watchdog::snapshot()) {
        os << "  " << s.label << ": "
           << (s.active ? "active" : "idle") << ", " << s.beats
           << " beats, last " << std::fixed;
        os.precision(2);
        os << s.age_s << "s ago";
        if (!s.detail.empty())
            os << ", on '" << s.detail << "'";
        os << "\n";
    }
    os << "watchdog: flight recorder tails:\n";
    const std::size_t rings = FlightRecorder::ringCount();
    if (rings == 0)
        os << "  (flight recorder disabled or no threads attached)\n";
    for (std::size_t i = 0; i < rings; ++i) {
        ThreadRing *ring = FlightRecorder::ring(i);
        if (ring == nullptr)
            continue;
        const std::uint64_t written = ring->written();
        os << "  " << ring->label() << ": " << written
           << " events, open phases:";
        const int depth = ring->phaseDepth();
        const int named = depth < ThreadRing::kMaxPhaseDepth
                              ? depth
                              : ThreadRing::kMaxPhaseDepth;
        if (named == 0)
            os << " (none)";
        for (int p = 0; p < named; ++p)
            os << (p == 0 ? " " : "/") << ring->phaseName(p);
        os << "\n";
        std::uint64_t window = 8;
        if (window > ring->capacity())
            window = ring->capacity();
        if (window > written)
            window = written;
        for (std::uint64_t k = 0; k < window; ++k) {
            const FlightEvent &e = ring->slot(written - window + k);
            const EventKind kind =
                e.kind < static_cast<std::uint16_t>(EventKind::kCount)
                    ? static_cast<EventKind>(e.kind)
                    : EventKind::kCount;
            os << "    t=" << std::fixed;
            os.precision(6);
            os << e.t << " " << eventKindName(kind) << " a=" << e.a
               << " b=" << e.b;
            if (e.tag[0] != '\0')
                os << " '" << e.tag << "'";
            os << "\n";
        }
    }
    return os.str();
}

void
monitorLoop(double stall_timeout_s, bool progress, double progress_period_s)
{
    double poll_s = progress ? progress_period_s : 0.25;
    if (stall_timeout_s > 0.0 && stall_timeout_s / 4.0 < poll_s)
        poll_s = stall_timeout_s / 4.0;
    if (poll_s < 0.01)
        poll_s = 0.01;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(g_monitor_mutex);
            g_monitor_cv.wait_for(
                lock, std::chrono::duration<double>(poll_s),
                [] { return g_monitor_stop; });
            if (g_monitor_stop)
                return;
        }
        if (stall_timeout_s > 0.0) {
            const std::string culprit =
                Watchdog::checkStalls(stall_timeout_s);
            if (!culprit.empty()) {
                eraseProgressLine();
                {
                    const std::string dump = renderStallDump();
                    std::lock_guard<std::mutex> lock(
                        wss::detail::logMutex());
                    std::cerr << dump << std::flush;
                }
                panic("watchdog: stall detected — ", culprit);
            }
        }
        if (progress)
            paintProgressLine(Watchdog::renderProgressLine());
    }
}

} // namespace

namespace wddetail {

void
beatSlow(HeartbeatSlot *slot)
{
    slot->last_beat_ns.store(nowNs(), std::memory_order_relaxed);
    slot->beats.fetch_add(1, std::memory_order_relaxed);
}

} // namespace wddetail

void
Watchdog::enableHeartbeats()
{
    g_enabled.store(true, std::memory_order_release);
}

bool
Watchdog::heartbeatsEnabled()
{
    return g_enabled.load(std::memory_order_acquire);
}

void
Watchdog::registerCurrentThread(std::string_view label)
{
    if (!heartbeatsEnabled() || wddetail::tl_slot != nullptr)
        return;
    std::lock_guard<std::mutex> lock(g_register_mutex);
    const std::size_t i = g_slot_count.load(std::memory_order_relaxed);
    if (i >= kMaxSlots) {
        WSS_WARN_ONCE("watchdog: heartbeat table full (", kMaxSlots,
                      " threads) — further threads are unmonitored");
        return;
    }
    HeartbeatSlot *slot = new HeartbeatSlot;
    copyTruncated(slot->label, sizeof(slot->label), label);
    slot->last_beat_ns.store(nowNs(), std::memory_order_relaxed);
    slot->active.store(true, std::memory_order_relaxed);
    g_slots[i].store(slot, std::memory_order_release);
    g_slot_count.store(i + 1, std::memory_order_release);
    wddetail::tl_slot = slot;
}

void
Watchdog::setThreadDetail(std::string_view detail)
{
    HeartbeatSlot *slot = wddetail::tl_slot;
    if (slot == nullptr)
        return;
    {
        std::lock_guard<std::mutex> lock(slot->detail_mutex);
        copyTruncated(slot->detail, sizeof(slot->detail), detail);
    }
    wddetail::beatSlow(slot);
    recordEvent(EventKind::Heartbeat, 0, 0, detail);
}

void
Watchdog::markThreadIdle()
{
    if (HeartbeatSlot *slot = wddetail::tl_slot)
        slot->active.store(false, std::memory_order_relaxed);
}

void
Watchdog::markThreadActive()
{
    if (HeartbeatSlot *slot = wddetail::tl_slot) {
        wddetail::beatSlow(slot);
        slot->active.store(true, std::memory_order_relaxed);
    }
}

void
Watchdog::setProgressTotal(std::uint64_t total)
{
    g_progress_total.store(total, std::memory_order_relaxed);
    g_progress_done.store(0, std::memory_order_relaxed);
    g_progress_epoch_ns.store(nowNs(), std::memory_order_relaxed);
}

void
Watchdog::addProgressDone(std::uint64_t n)
{
    g_progress_done.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t
Watchdog::progressTotal()
{
    return g_progress_total.load(std::memory_order_relaxed);
}

std::uint64_t
Watchdog::progressDone()
{
    return g_progress_done.load(std::memory_order_relaxed);
}

void
Watchdog::start(double stall_timeout_s, bool progress,
                double progress_period_s)
{
    enableHeartbeats();
    std::lock_guard<std::mutex> lock(g_monitor_mutex);
    if (g_monitor_running)
        return;
    g_monitor_stop = false;
    g_monitor_running = true;
    g_monitor = std::thread(monitorLoop, stall_timeout_s, progress,
                            progress_period_s);
}

void
Watchdog::stop()
{
    {
        std::lock_guard<std::mutex> lock(g_monitor_mutex);
        if (!g_monitor_running)
            return;
        g_monitor_stop = true;
    }
    g_monitor_cv.notify_all();
    g_monitor.join();
    {
        std::lock_guard<std::mutex> lock(g_monitor_mutex);
        g_monitor_running = false;
    }
    eraseProgressLine();
}

std::vector<HeartbeatSnap>
Watchdog::snapshot()
{
    std::vector<HeartbeatSnap> out;
    const std::uint64_t now = nowNs();
    const std::size_t n = g_slot_count.load(std::memory_order_acquire);
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        HeartbeatSlot *slot = g_slots[i].load(std::memory_order_acquire);
        if (slot == nullptr)
            continue;
        HeartbeatSnap s;
        s.label = slot->label;
        {
            std::lock_guard<std::mutex> lock(slot->detail_mutex);
            s.detail = slot->detail;
        }
        s.beats = slot->beats.load(std::memory_order_relaxed);
        const std::uint64_t last =
            slot->last_beat_ns.load(std::memory_order_relaxed);
        s.age_s = last <= now ? (now - last) * 1.0e-9 : 0.0;
        s.active = slot->active.load(std::memory_order_relaxed);
        out.push_back(std::move(s));
    }
    return out;
}

std::string
Watchdog::checkStalls(double stall_timeout_s)
{
    for (const HeartbeatSnap &s : snapshot()) {
        if (!s.active || s.age_s <= stall_timeout_s)
            continue;
        std::ostringstream os;
        os << s.label << ": no heartbeat for " << std::fixed;
        os.precision(2);
        os << s.age_s << "s (timeout " << stall_timeout_s << "s)";
        if (!s.detail.empty())
            os << " while on '" << s.detail << "'";
        return os.str();
    }
    return "";
}

std::string
Watchdog::renderProgressLine()
{
    std::ostringstream os;
    const std::uint64_t total = progressTotal();
    const std::uint64_t done = progressDone();
    os << "jobs " << done << "/" << total;
    if (total > 0) {
        os << " (" << std::fixed;
        os.precision(1);
        os << 100.0 * static_cast<double>(done) /
                  static_cast<double>(total)
           << "%)";
        if (done > 0 && done < total) {
            const double elapsed =
                (nowNs() -
                 g_progress_epoch_ns.load(std::memory_order_relaxed)) *
                1.0e-9;
            const double eta = elapsed *
                               static_cast<double>(total - done) /
                               static_cast<double>(done);
            os << " eta " << std::fixed;
            os.precision(0);
            os << eta << "s";
        }
    }
    for (const HeartbeatSnap &s : snapshot()) {
        if (!s.active || s.detail.empty())
            continue;
        os << " | " << s.label << " " << s.detail;
    }
    std::string line = os.str();
    if (line.size() > kProgressLineCap) {
        line.resize(kProgressLineCap - 3);
        line += "...";
    }
    return line;
}

void
Watchdog::resetForTesting()
{
    stop();
    std::lock_guard<std::mutex> lock(g_register_mutex);
    wddetail::tl_slot = nullptr;
    g_enabled.store(false, std::memory_order_release);
    const std::size_t n = g_slot_count.load(std::memory_order_relaxed);
    g_slot_count.store(0, std::memory_order_release);
    for (std::size_t i = 0; i < n; ++i)
        delete g_slots[i].exchange(nullptr, std::memory_order_acq_rel);
    g_progress_total.store(0, std::memory_order_relaxed);
    g_progress_done.store(0, std::memory_order_relaxed);
}

} // namespace wss::obs
