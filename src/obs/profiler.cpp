#include "obs/profiler.hpp"

#include <algorithm>
#include <ostream>

#include "obs/flight_recorder.hpp"
#include "obs/trace_event.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace wss::obs {

namespace {

/// Leaf name of a '/'-joined phase path.
std::string_view
leafName(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos
               ? std::string_view(path)
               : std::string_view(path).substr(slash + 1);
}

/// Parent path ("" for roots).
std::string
parentPath(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

/// True when @p path is a direct child of @p parent ("" = root).
bool
isDirectChild(const std::string &path, const std::string &parent)
{
    if (parent.empty())
        return path.find('/') == std::string::npos;
    if (path.size() <= parent.size() + 1 ||
        path.compare(0, parent.size(), parent) != 0 ||
        path[parent.size()] != '/')
        return false;
    return path.find('/', parent.size() + 1) == std::string::npos;
}

} // namespace

void
Profiler::enter(std::string_view name)
{
    if (name.empty() || name.find('/') != std::string_view::npos)
        panic("Profiler: phase name '", std::string(name),
              "' must be non-empty and '/'-free ('/' joins the "
              "hierarchy)");
    std::string path;
    if (stack_.empty()) {
        path.assign(name);
    } else {
        path.reserve(stack_.back().path.size() + 1 + name.size());
        path = stack_.back().path;
        path += '/';
        path += name;
    }
    stack_.push_back({std::move(path), std::chrono::steady_clock::now()});
    recordPhaseEnter(name);
}

void
Profiler::exit()
{
    if (stack_.empty())
        panic("Profiler: exit() without a matching enter()");
    const OpenPhase &top = stack_.back();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      top.start)
            .count();
    PhaseStats &stats = phases_[top.path];
    stats.calls += 1;
    stats.seconds += elapsed;
    stack_.pop_back();
    recordPhaseExit();
}

double
Profiler::totalSeconds(const std::string &path) const
{
    const auto it = phases_.find(path);
    return it == phases_.end() ? 0.0 : it->second.seconds;
}

double
Profiler::selfSeconds(const std::string &path) const
{
    const auto it = phases_.find(path);
    if (it == phases_.end())
        return 0.0;
    double children = 0.0;
    const std::string prefix = path + "/";
    for (auto child = phases_.upper_bound(prefix);
         child != phases_.end() &&
         child->first.compare(0, prefix.size(), prefix) == 0;
         ++child) {
        if (isDirectChild(child->first, path))
            children += child->second.seconds;
    }
    return it->second.seconds - children;
}

void
Profiler::merge(const Profiler &other, const std::string &prefix)
{
    if (other.open())
        panic("Profiler: merge() source has open phases (exit all "
              "scopes before merging)");
    // Merging while a phase is open files the other profiler's paths
    // below it, so engines can merge worker profilers mid-scope.
    std::string base = stack_.empty() ? "" : stack_.back().path;
    if (!prefix.empty())
        base = base.empty() ? prefix : base + "/" + prefix;
    for (const auto &[path, stats] : other.phases_) {
        const std::string key =
            base.empty() ? path : base + "/" + path;
        PhaseStats &mine = phases_[key];
        mine.calls += stats.calls;
        mine.seconds += stats.seconds;
    }
}

void
Profiler::writeSummary(std::ostream &os) const
{
    if (open())
        panic("Profiler: writeSummary() with open phases");

    // Heaviest self time first; path breaks ties so the table is
    // deterministic even when timings collide (e.g. all zero).
    std::vector<std::pair<double, const std::string *>> order;
    order.reserve(phases_.size());
    double total_self = 0.0;
    for (const auto &[path, stats] : phases_) {
        const double self = std::max(selfSeconds(path), 0.0);
        order.emplace_back(self, &path);
        total_self += self;
    }
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return *a.second < *b.second;
              });

    Table table("Profile (self time)",
                {"phase", "calls", "total s", "self s", "self %"});
    for (const auto &[self, path] : order) {
        const PhaseStats &stats = phases_.at(*path);
        table.addRow({*path, Table::num(stats.calls),
                      Table::num(stats.seconds, 4),
                      Table::num(self, 4),
                      Table::num(total_self > 0.0
                                     ? 100.0 * self / total_self
                                     : 0.0,
                                 1)});
    }
    table.print(os);
}

void
Profiler::addToTrace(TraceEventSink &sink, int tid) const
{
    if (open())
        panic("Profiler: addToTrace() with open phases");

    // Synthetic layout: each phase starts at its parent's cursor and
    // advances it by its own inclusive duration, so siblings sit
    // end-to-end and children nest under their parent's span. The
    // sorted map is already a pre-order walk, so one pass suffices.
    // Merged concurrent children can overflow their parent's span —
    // the aggregate has more child-seconds than parent wall time —
    // which Perfetto renders as overhang, not an error.
    std::map<std::string, double> cursor;
    cursor[""] = 0.0;
    for (const auto &[path, stats] : phases_) {
        const double start = cursor[parentPath(path)];
        const double dur_us = stats.seconds * 1e6;
        sink.complete(std::string(leafName(path)), "profile", tid,
                      static_cast<std::int64_t>(start),
                      static_cast<std::int64_t>(dur_us),
                      {TraceArg::num("calls", stats.calls),
                       TraceArg::str("path", path)});
        cursor[path] = start;
        cursor[parentPath(path)] = start + dur_us;
    }
}

} // namespace wss::obs
