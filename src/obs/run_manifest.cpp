#include "obs/run_manifest.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/profiler.hpp"
#include "util/artifact.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace wss::obs {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << v;
    return os.str();
}

/// Hashes render as fixed-width hex strings: 64-bit values do not
/// survive a round-trip through JSON numbers (doubles).
std::string
hexString(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

std::uint64_t
parseHex(const std::string &text, std::string_view what)
{
    std::size_t used = 0;
    std::uint64_t value = 0;
    try {
        value = std::stoull(text, &used, 16);
    } catch (const std::exception &) {
        fatal(what, ": bad hash string '", text, "'");
    }
    if (used != text.size())
        fatal(what, ": bad hash string '", text, "'");
    return value;
}

/// The identity section, shared verbatim between identityJson() and
/// writeJson() so the hash always covers exactly what the file says.
void
writeIdentityMembers(std::ostream &os, const std::string &tool,
                     const std::map<std::string, std::string> &config,
                     std::uint64_t seed, int jobs,
                     std::vector<ManifestArtifact> artifacts,
                     bool with_paths)
{
    os << "\"tool\": \"" << jsonEscape(tool) << "\",\n"
       << "  \"seed\": \"" << seed << "\",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"config\": {";
    bool first = true;
    for (const auto &[key, value] : config) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(key)
           << "\": \"" << jsonEscape(value) << "\"";
        first = false;
    }
    os << (first ? "}" : "\n  }") << ",\n  \"artifacts\": [";
    // Identity must not depend on the order artifacts were recorded
    // in (parallel writers) nor on where they live on disk.
    std::sort(artifacts.begin(), artifacts.end(),
              [](const ManifestArtifact &a, const ManifestArtifact &b) {
                  if (a.kind != b.kind)
                      return a.kind < b.kind;
                  if (a.hash != b.hash)
                      return a.hash < b.hash;
                  return a.bytes < b.bytes;
              });
    for (std::size_t i = 0; i < artifacts.size(); ++i) {
        const ManifestArtifact &a = artifacts[i];
        os << (i ? ",\n" : "\n") << "    {";
        if (with_paths)
            os << "\"path\": \"" << jsonEscape(a.path) << "\", ";
        os << "\"kind\": \"" << jsonEscape(a.kind)
           << "\", \"bytes\": " << a.bytes << ", \"hash\": \""
           << hexString(a.hash) << "\"}";
    }
    os << (artifacts.empty() ? "]" : "\n  ]");
}

} // namespace

RunManifest::RunManifest(std::string tool) : tool_(std::move(tool))
{
#ifdef NDEBUG
    config_["build.mode"] = "release";
#else
    config_["build.mode"] = "debug";
#endif
#ifdef __VERSION__
    config_["build.compiler"] = __VERSION__;
#endif
}

void
RunManifest::setConfig(const std::string &key, std::string value)
{
    config_[key] = std::move(value);
}

void
RunManifest::setConfig(const std::string &key, std::int64_t value)
{
    config_[key] = std::to_string(value);
}

void
RunManifest::setConfig(const std::string &key, double value)
{
    config_[key] = jsonNumber(value);
}

void
RunManifest::setSeed(std::uint64_t seed)
{
    seed_ = seed;
}

void
RunManifest::setJobs(int jobs)
{
    jobs_ = jobs;
}

void
RunManifest::addArtifact(const std::string &path, std::string kind)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("RunManifest: cannot read artifact '", path,
              "' for hashing (was it written?)");
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string content = buffer.str();

    ManifestArtifact artifact;
    artifact.path = path;
    artifact.kind = std::move(kind);
    artifact.bytes = content.size();
    artifact.hash = hashBytes(content);
    artifacts_.push_back(std::move(artifact));
}

void
RunManifest::addPhaseSeconds(const std::string &path, double seconds,
                             std::int64_t calls)
{
    phases_.push_back({path, calls, seconds});
}

void
RunManifest::setProfile(const Profiler &profiler)
{
    phases_.clear();
    for (const auto &[path, stats] : profiler.phases())
        phases_.push_back({path, stats.calls, stats.seconds});
}

std::string
RunManifest::identityJson() const
{
    std::ostringstream os;
    os << "{\"wss_run_manifest_identity\": 1,\n  ";
    writeIdentityMembers(os, tool_, config_, seed_, jobs_, artifacts_,
                         /*with_paths=*/false);
    os << "\n}\n";
    return os.str();
}

std::uint64_t
RunManifest::identityHash() const
{
    return hashBytes(identityJson());
}

void
RunManifest::writeJson(std::ostream &os) const
{
    os << "{\n  \"wss_run_manifest\": 1,\n  ";
    writeIdentityMembers(os, tool_, config_, seed_, jobs_, artifacts_,
                         /*with_paths=*/true);
    os << ",\n  \"identity_hash\": \"" << hexString(identityHash())
       << "\",\n  \"timing\": {\n    \"phases\": [";
    for (std::size_t i = 0; i < phases_.size(); ++i) {
        const ManifestPhase &p = phases_[i];
        os << (i ? ",\n" : "\n") << "      {\"path\": \""
           << jsonEscape(p.path) << "\", \"calls\": " << p.calls
           << ", \"seconds\": " << jsonNumber(p.seconds) << "}";
    }
    os << (phases_.empty() ? "]" : "\n    ]") << "\n  }\n}\n";
}

void
RunManifest::writeJsonFile(const std::string &path) const
{
    util::writeArtifactFile(path, "RunManifest",
                            [this](std::ostream &os) { writeJson(os); });
}

RunManifest
RunManifest::loadJsonFile(const std::string &path)
{
    const std::string what = "run manifest '" + path + "'";
    const util::JsonValue doc = util::JsonValue::parseFile(path, what);
    if (!doc.find("wss_run_manifest"))
        fatal(what, ": not a wss run manifest (missing version "
                    "marker)");

    RunManifest manifest(doc.require("tool", what).asString(what));
    manifest.config_.clear(); // loaded, not rebuilt: file wins
    for (const auto &[key, value] :
         doc.require("config", what).asObject(what))
        manifest.config_[key] = value.asString(what);

    const std::string seed_text =
        doc.require("seed", what).asString(what);
    try {
        std::size_t used = 0;
        manifest.seed_ = std::stoull(seed_text, &used, 10);
        if (used != seed_text.size())
            throw std::invalid_argument(seed_text);
    } catch (const std::exception &) {
        fatal(what, ": bad seed '", seed_text, "'");
    }
    manifest.jobs_ =
        static_cast<int>(doc.require("jobs", what).asNumber(what));

    for (const util::JsonValue &entry :
         doc.require("artifacts", what).asArray(what)) {
        ManifestArtifact artifact;
        artifact.path = entry.require("path", what).asString(what);
        artifact.kind = entry.require("kind", what).asString(what);
        artifact.bytes = static_cast<std::uint64_t>(
            entry.require("bytes", what).asNumber(what));
        artifact.hash =
            parseHex(entry.require("hash", what).asString(what), what);
        manifest.artifacts_.push_back(std::move(artifact));
    }

    if (const util::JsonValue *timing = doc.find("timing")) {
        if (const util::JsonValue *phases = timing->find("phases")) {
            for (const util::JsonValue &entry :
                 phases->asArray(what)) {
                ManifestPhase phase;
                phase.path =
                    entry.require("path", what).asString(what);
                phase.calls = static_cast<std::int64_t>(
                    entry.require("calls", what).asNumber(what));
                phase.seconds =
                    entry.require("seconds", what).asNumber(what);
                manifest.phases_.push_back(std::move(phase));
            }
        }
    }
    return manifest;
}

std::uint64_t
RunManifest::hashBytes(std::string_view data)
{
    std::uint64_t hash = 14695981039346656037ULL;
    for (unsigned char c : data) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

} // namespace wss::obs
