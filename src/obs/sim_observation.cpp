#include "obs/sim_observation.hpp"

#include <charconv>
#include <ostream>

#include "util/artifact.hpp"
#include "util/logging.hpp"

namespace wss::obs {

namespace {

/// Shortest round-trip decimal form, so CSVs are bit-identical
/// across runs and lossless to parse back.
std::string
formatDouble(double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

/// Split "r3.credit_stalls" into {"r3", "credit_stalls"}; names
/// without a dot map to scope "-".
std::pair<std::string, std::string>
splitScope(const std::string &name)
{
    const auto dot = name.find('.');
    if (dot == std::string::npos)
        return {"-", name};
    return {name.substr(0, dot), name.substr(dot + 1)};
}

bool
isRouterScope(const std::string &scope)
{
    if (scope.size() < 2 || scope[0] != 'r')
        return false;
    for (std::size_t i = 1; i < scope.size(); ++i)
        if (scope[i] < '0' || scope[i] > '9')
            return false;
    return true;
}

} // namespace

const char *
phaseName(SimPhase phase)
{
    switch (phase) {
    case SimPhase::Warmup: return "warmup";
    case SimPhase::Measure: return "measure";
    case SimPhase::Drain: return "drain";
    }
    panic("phaseName: invalid phase ",
          static_cast<int>(phase));
}

std::uint64_t
SimObservation::totalCounter(const std::string &metric) const
{
    std::uint64_t total = 0;
    for (const auto &[name, value] : registry.counters()) {
        const auto [scope, suffix] = splitScope(name);
        if (isRouterScope(scope) && suffix == metric)
            total += value;
    }
    return total;
}

std::uint64_t
SimObservation::totalCounter(const std::string &metric,
                             SimPhase phase) const
{
    std::uint64_t total = 0;
    const auto &snap =
        phase_counters[static_cast<std::size_t>(phase)];
    for (const auto &[name, value] : snap.counters) {
        const auto [scope, suffix] = splitScope(name);
        if (isRouterScope(scope) && suffix == metric)
            total += value;
    }
    return total;
}

double
SimObservation::linkUtilization(SimPhase phase,
                                std::size_t link) const
{
    const auto p = static_cast<std::size_t>(phase);
    if (link >= link_flits[p].size())
        panic("SimObservation::linkUtilization: link ", link,
              " out of range (", link_flits[p].size(), " links)");
    const std::int64_t cycles = phase_cycles[p];
    const std::uint32_t channels =
        link < link_channel_count.size() ? link_channel_count[link]
                                         : 0;
    if (cycles <= 0 || channels == 0)
        return 0.0;
    return static_cast<double>(link_flits[p][link]) /
           (static_cast<double>(channels) *
            static_cast<double>(cycles));
}

void
SimObservation::dumpCsv(std::ostream &os) const
{
    os << "# wss sim observability\n";
    os << "# routers=" << routers << " links=" << links << "\n";
    os << "record,phase,scope,metric,value\n";

    for (std::size_t l = 0; l < link_channel_count.size(); ++l)
        os << "link,run,l" << l << ",channels,"
           << link_channel_count[l] << "\n";

    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const char *phase = phaseName(static_cast<SimPhase>(p));
        os << "phase," << phase << ",-,cycles," << phase_cycles[p]
           << "\n";
    }

    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const char *phase = phaseName(static_cast<SimPhase>(p));
        for (const auto &[name, value] : phase_counters[p].counters) {
            const auto [scope, metric] = splitScope(name);
            os << "counter," << phase << "," << scope << ","
               << metric << "," << value << "\n";
        }
    }

    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const char *phase = phaseName(static_cast<SimPhase>(p));
        for (std::size_t l = 0; l < link_flits[p].size(); ++l) {
            os << "link," << phase << ",l" << l << ",flits,"
               << link_flits[p][l] << "\n";
            os << "link," << phase << ",l" << l << ",utilization,"
               << formatDouble(
                      linkUtilization(static_cast<SimPhase>(p), l))
               << "\n";
        }
    }

    for (const auto &[name, data] : registry.histograms()) {
        const auto [scope, metric] = splitScope(name);
        for (std::size_t b = 0; b < data.edges.size(); ++b)
            os << "hist,run," << scope << "," << metric << ".le_"
               << formatDouble(data.edges[b]) << ","
               << data.buckets[b] << "\n";
        os << "hist,run," << scope << "," << metric << ".overflow,"
           << data.buckets.back() << "\n";
        os << "hist,run," << scope << "," << metric << ".count,"
           << data.count << "\n";
        os << "hist,run," << scope << "," << metric << ".sum,"
           << formatDouble(data.sum) << "\n";
    }

    for (const TimelineSample &s : timeline) {
        os << "sample,run,c" << s.cycle << ",flits_offered,"
           << s.flits_offered << "\n";
        os << "sample,run,c" << s.cycle << ",flits_accepted,"
           << s.flits_accepted << "\n";
        os << "sample,run,c" << s.cycle << ",flits_in_flight,"
           << s.flits_in_flight << "\n";
    }
}

void
SimObservation::dumpCsvFile(const std::string &path) const
{
    util::writeArtifactFile(
        path, "SimObservation",
        [this](std::ostream &os) { dumpCsv(os); });
}

} // namespace wss::obs
