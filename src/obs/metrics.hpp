/**
 * @file
 * Observability instruments: a registry of named counters, gauges and
 * histograms with hot-path costs cheap enough for the cycle-accurate
 * simulator's inner loops.
 *
 * Design contract (benchmarked in bench_micro):
 *  - An *enabled* instrument is a handle holding a raw pointer into
 *    registry-owned storage; bumping it is a plain `++*cell` — no
 *    lookup, no lock, no atomic.
 *  - A *disabled* (default-constructed) instrument holds a null
 *    pointer; bumping it is a single always-false, perfectly
 *    predicted branch. Instrumented code therefore pays ≤1% on the
 *    router hot loop when observability is off.
 *
 * A MetricsRegistry is intentionally NOT thread-safe: each simulation
 * run (one thread) owns its own registry, and concurrent collection
 * uses one registry per thread merged after the barrier
 * (MetricsRegistry::merge), mirroring the per-worker-buffer pattern
 * of exec::Campaign. Handles point into std::map nodes, so they stay
 * valid as the registry grows (and across registry moves), but must
 * not outlive it.
 */

#ifndef WSS_OBS_METRICS_HPP
#define WSS_OBS_METRICS_HPP

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace wss::obs {

class MetricsRegistry;

/// Monotonic event count. Default-constructed handles are no-ops.
class Counter
{
  public:
    Counter() = default;

    void
    inc(std::uint64_t n = 1)
    {
        if (cell_)
            *cell_ += n;
    }

    bool enabled() const { return cell_ != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Counter(std::uint64_t *cell) : cell_(cell) {}

    std::uint64_t *cell_ = nullptr;
};

/// Last-value instrument (signed). Default handles are no-ops.
class Gauge
{
  public:
    Gauge() = default;

    void
    set(std::int64_t v)
    {
        if (cell_)
            *cell_ = v;
    }

    void
    add(std::int64_t d)
    {
        if (cell_)
            *cell_ += d;
    }

    bool enabled() const { return cell_ != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Gauge(std::int64_t *cell) : cell_(cell) {}

    std::int64_t *cell_ = nullptr;
};

/**
 * Bucketed distribution with "less-or-equal" upper edges (bucket i
 * counts samples v <= edges[i]; one implicit overflow bucket at the
 * end) plus exact count/sum/min/max.
 */
struct HistogramData
{
    /// Ascending upper bucket edges.
    std::vector<double> edges;
    /// edges.size() + 1 counts; the last one is the overflow bucket.
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();

    void record(double v);

    /// Bucket-wise sum; edges must match exactly (fatal otherwise).
    void merge(const HistogramData &other);
};

/// Histogram handle. Default-constructed handles are no-ops.
class Histogram
{
  public:
    Histogram() = default;

    void
    record(double v)
    {
        if (data_)
            data_->record(v);
    }

    bool enabled() const { return data_ != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Histogram(HistogramData *data) : data_(data) {}

    HistogramData *data_ = nullptr;
};

/**
 * A point-in-time copy of every counter, name-sorted. Per-phase
 * statistics are deltas between successive snapshots.
 */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    /// Value of @p name, 0 when absent.
    std::uint64_t value(const std::string &name) const;

    /// Counter-wise `later - earlier` (names only ever accumulate,
    /// so every `earlier` entry also exists in `later`).
    static MetricsSnapshot delta(const MetricsSnapshot &later,
                                 const MetricsSnapshot &earlier);
};

/**
 * Owns instrument storage and hands out handles. Creation is
 * idempotent: asking for an existing name returns a handle to the
 * same cell (histograms additionally require matching edges).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    // Handles hold raw pointers into the maps; copying the registry
    // would silently detach them, so copies are forbidden. Moves are
    // fine: std::map moves keep node addresses stable.
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;
    MetricsRegistry(MetricsRegistry &&) = default;
    MetricsRegistry &operator=(MetricsRegistry &&) = default;

    Counter counter(const std::string &name);
    Gauge gauge(const std::string &name);
    Histogram histogram(const std::string &name,
                        std::vector<double> edges);

    std::uint64_t counterValue(const std::string &name) const;
    std::int64_t gaugeValue(const std::string &name) const;
    /// nullptr when absent.
    const HistogramData *findHistogram(const std::string &name) const;

    const std::map<std::string, std::uint64_t> &
    counters() const
    {
        return counters_;
    }

    const std::map<std::string, std::int64_t> &
    gauges() const
    {
        return gauges_;
    }

    const std::map<std::string, HistogramData> &
    histograms() const
    {
        return histograms_;
    }

    bool
    empty() const
    {
        return counters_.empty() && gauges_.empty() &&
               histograms_.empty();
    }

    /**
     * Fold @p other into this registry: counters and gauges sum,
     * histograms merge bucket-wise (matching edges required). The
     * cross-thread aggregation primitive: one registry per worker,
     * merged after the barrier.
     */
    void merge(const MetricsRegistry &other);

    /// Copy of every counter, name-sorted.
    MetricsSnapshot snapshot() const;

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, std::int64_t> gauges_;
    std::map<std::string, HistogramData> histograms_;
};

} // namespace wss::obs

#endif // WSS_OBS_METRICS_HPP
