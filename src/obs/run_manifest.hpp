/**
 * @file
 * Run provenance manifests.
 *
 * Every artifact-producing entry point (wss subcommands, the bench
 * binaries, campaigns) can write one RunManifest next to its
 * artifacts: the full resolved configuration, the base seed, the
 * worker count, build flags, per-phase wall times from the Profiler,
 * and an inventory of every artifact written with content hash and
 * byte size. `wss report` consumes the manifest to find and verify a
 * run's artifacts; tools/bench_compare.py reads it to prove two bench
 * reports came from the same configuration.
 *
 * The manifest splits into two parts:
 *
 *   - the *identity* (tool, config, seed, jobs, artifact kinds +
 *     content hashes) is timestamp-free and canonically serialized,
 *     so two identical runs produce byte-identical identity sections
 *     and equal identityHash() values (ctest-asserted);
 *   - the *timing* section (per-phase wall seconds) varies run to
 *     run and is excluded from the hash.
 *
 * Hashing is FNV-1a 64 over artifact bytes — not cryptographic, but
 * collisions here would only misreport provenance, and the stdlib
 * offers nothing better without new dependencies.
 */

#ifndef WSS_OBS_RUN_MANIFEST_HPP
#define WSS_OBS_RUN_MANIFEST_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wss::obs {

class Profiler;

/// One artifact the run wrote, identified by content.
struct ManifestArtifact
{
    /// Path as recorded (not part of the identity — the same run in
    /// a different directory is still the same run).
    std::string path;
    /// What the artifact is ("campaign-json", "trace",
    /// "flow-telemetry", ...); free-form but stable per writer.
    std::string kind;
    /// Content size in bytes.
    std::uint64_t bytes = 0;
    /// FNV-1a 64 of the content.
    std::uint64_t hash = 0;
};

/// One aggregated phase timing carried into the manifest.
struct ManifestPhase
{
    /// '/'-joined Profiler path.
    std::string path;
    std::int64_t calls = 0;
    double seconds = 0.0;
};

/**
 * Provenance of one run. Build it as the run goes (config first,
 * artifacts as they are written, timings last) and writeJsonFile()
 * after the final artifact so the inventory is complete.
 */
class RunManifest
{
  public:
    /// @p tool names the entry point ("wss coll", "bench_coll", ...).
    /// Build mode and compiler are recorded automatically.
    explicit RunManifest(std::string tool);

    /// Record one resolved configuration entry. Values are strings;
    /// numeric overloads format at full precision. Keys are unique —
    /// setting one twice overwrites (last resolved value wins).
    void setConfig(const std::string &key, std::string value);
    void setConfig(const std::string &key, std::int64_t value);
    void setConfig(const std::string &key, double value);

    /// Base RNG seed of the run.
    void setSeed(std::uint64_t seed);

    /// Resolved worker-thread count (WSS_JOBS / --jobs).
    void setJobs(int jobs);

    /// Inventory @p path (reading and hashing its current content);
    /// fatal() when the file cannot be read — an artifact that was
    /// claimed but not written is a provenance lie.
    void addArtifact(const std::string &path, std::string kind);

    /// Record one phase wall time directly (for runs without a
    /// Profiler).
    void addPhaseSeconds(const std::string &path, double seconds,
                         std::int64_t calls = 1);

    /// Import every aggregated phase of @p profiler.
    void setProfile(const Profiler &profiler);

    const std::string &tool() const { return tool_; }
    const std::map<std::string, std::string> &
    config() const
    {
        return config_;
    }
    std::uint64_t seed() const { return seed_; }
    int jobs() const { return jobs_; }
    const std::vector<ManifestArtifact> &
    artifacts() const
    {
        return artifacts_;
    }
    const std::vector<ManifestPhase> &phases() const { return phases_; }

    /**
     * The canonical timestamp-free identity document: tool, sorted
     * config, seed, jobs, and the artifact inventory sorted by
     * (kind, hash, bytes) with paths omitted. Byte-identical across
     * identical runs.
     */
    std::string identityJson() const;

    /// FNV-1a 64 of identityJson().
    std::uint64_t identityHash() const;

    /// Full manifest: identity fields, artifact paths, and timings.
    void writeJson(std::ostream &os) const;

    /// Flush-checked file counterpart (util::writeArtifactFile).
    void writeJsonFile(const std::string &path) const;

    /// Parse a document written by writeJson(); fatal() on malformed
    /// input or a missing version marker.
    static RunManifest loadJsonFile(const std::string &path);

    /// FNV-1a 64 of @p data (the manifest's content hash function,
    /// exposed for tests and for `wss report`'s artifact check).
    static std::uint64_t hashBytes(std::string_view data);

  private:
    std::string tool_;
    std::map<std::string, std::string> config_;
    std::uint64_t seed_ = 0;
    int jobs_ = 0;
    std::vector<ManifestArtifact> artifacts_;
    std::vector<ManifestPhase> phases_;
};

} // namespace wss::obs

#endif // WSS_OBS_RUN_MANIFEST_HPP
