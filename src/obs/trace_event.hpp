/**
 * @file
 * Chrome trace-event JSON writer (the format chrome://tracing and
 * Perfetto load natively): complete events ("X") for spans such as
 * exec::Campaign cells, instant events ("i") for point occurrences
 * such as fault::FaultSchedule link transitions, and metadata events
 * ("M") naming the process and per-worker thread tracks.
 *
 * The sink is thread-safe (appends take a mutex — it sits on the
 * per-cell boundary of the execution engine, never inside the
 * simulator's cycle loop) and the recorded *content* (names,
 * categories, args) is deterministic for a deterministic workload:
 * the same campaign records the same events at any --jobs value, only
 * timestamps and track assignment vary with scheduling.
 */

#ifndef WSS_OBS_TRACE_EVENT_HPP
#define WSS_OBS_TRACE_EVENT_HPP

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace wss::obs {

/// One "args" entry of a trace event. Numeric values are emitted as
/// JSON numbers, everything else as escaped JSON strings.
struct TraceArg
{
    std::string key;
    std::string value;
    bool is_number = false;

    static TraceArg str(std::string key, std::string value);
    static TraceArg num(std::string key, double value);
    static TraceArg num(std::string key, std::int64_t value);
};

/**
 * Collects trace events and serializes them as a JSON object
 * (`{"traceEvents": [...]}`). Timestamps are microseconds on
 * whatever clock the caller uses; nowMicros() offers elapsed-µs
 * since sink construction for wall-clock spans, while simulated-time
 * events (fault injection) pass cycles directly.
 */
class TraceEventSink
{
  public:
    TraceEventSink();

    /// Elapsed microseconds since this sink was constructed.
    std::int64_t nowMicros() const;

    /// A span: [ts_us, ts_us + dur_us) on track @p tid.
    void complete(std::string name, std::string category, int tid,
                  std::int64_t ts_us, std::int64_t dur_us,
                  std::vector<TraceArg> args = {});

    /// A point event at @p ts_us on track @p tid.
    void instant(std::string name, std::string category, int tid,
                 std::int64_t ts_us, std::vector<TraceArg> args = {});

    /// A counter sample ("C"): Perfetto renders successive samples of
    /// the same @p name as a time series — used for the flow
    /// simulator's in-flight gauge and link-utilization telemetry.
    void counter(std::string name, std::string category, int tid,
                 std::int64_t ts_us, double value);

    /// Track ids handed out by allocateTrack() start here; the ids
    /// below are the callers' own (exec::Campaign uses worker slots
    /// 0..N), so allocated tracks can never collide with them.
    static constexpr int kFirstAllocatedTrack = 1000;

    /**
     * Sink-owned track allocation: the first call with a given
     * @p name claims the next free track id (kFirstAllocatedTrack
     * upward, in first-call order) and emits its thread_name
     * metadata; later calls with the same name return the same id.
     * This replaces ad-hoc per-call-site tid constants, which
     * collided as soon as two subsystems (flow + coll) logged into
     * one sink. Thread-safe.
     */
    int allocateTrack(const std::string &name);

    /// Label the process row in the viewer.
    void setProcessName(std::string name);

    /// Label track @p tid ("worker 3", "caller", ...).
    void setThreadName(int tid, std::string name);

    /// Events recorded so far (metadata included).
    std::size_t size() const;

    /**
     * Emit the whole trace as JSON: metadata events first, then all
     * other events sorted by (timestamp, record order) so the file
     * reads chronologically.
     */
    void write(std::ostream &os) const;

    /// write() to @p path, flushing and error-checking before
    /// returning; fatal() on I/O failure (after the stream is
    /// closed, so no partial artifact survives unnoticed).
    void writeFile(const std::string &path) const;

  private:
    struct Event
    {
        // X = complete, i = instant, C = counter, M = metadata
        char phase = 'X';
        std::string name;
        std::string category;
        int tid = 0;
        std::int64_t ts = 0;
        std::int64_t dur = 0;
        std::vector<TraceArg> args;
        std::uint64_t seq = 0; // stable tie-break for sorting
    };

    void push(Event event);

    mutable std::mutex mutex_;
    std::vector<Event> events_;
    std::uint64_t next_seq_ = 0;
    std::map<std::string, int> tracks_;
    std::chrono::steady_clock::time_point epoch_;
};

} // namespace wss::obs

#endif // WSS_OBS_TRACE_EVENT_HPP
