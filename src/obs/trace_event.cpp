#include "obs/trace_event.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/artifact.hpp"
#include "util/logging.hpp"

namespace wss::obs {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control).
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

void
writeArgs(std::ostream &os, const std::vector<TraceArg> &args)
{
    os << "{";
    for (std::size_t i = 0; i < args.size(); ++i) {
        os << (i ? ", " : "") << "\"" << jsonEscape(args[i].key)
           << "\": ";
        if (args[i].is_number)
            os << args[i].value;
        else
            os << "\"" << jsonEscape(args[i].value) << "\"";
    }
    os << "}";
}

} // namespace

TraceArg
TraceArg::str(std::string key, std::string value)
{
    return {std::move(key), std::move(value), false};
}

TraceArg
TraceArg::num(std::string key, double value)
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << value;
    std::string text = os.str();
    // JSON has no literal for non-finite numbers.
    if (text == "inf" || text == "-inf" || text == "nan" ||
        text == "-nan")
        return {std::move(key), std::move(text), false};
    return {std::move(key), std::move(text), true};
}

TraceArg
TraceArg::num(std::string key, std::int64_t value)
{
    return {std::move(key), std::to_string(value), true};
}

TraceEventSink::TraceEventSink()
    : epoch_(std::chrono::steady_clock::now())
{
}

std::int64_t
TraceEventSink::nowMicros() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
TraceEventSink::push(Event event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    event.seq = next_seq_++;
    events_.push_back(std::move(event));
}

void
TraceEventSink::complete(std::string name, std::string category,
                         int tid, std::int64_t ts_us,
                         std::int64_t dur_us,
                         std::vector<TraceArg> args)
{
    Event event;
    event.phase = 'X';
    event.name = std::move(name);
    event.category = std::move(category);
    event.tid = tid;
    event.ts = ts_us;
    event.dur = dur_us;
    event.args = std::move(args);
    push(std::move(event));
}

void
TraceEventSink::instant(std::string name, std::string category,
                        int tid, std::int64_t ts_us,
                        std::vector<TraceArg> args)
{
    Event event;
    event.phase = 'i';
    event.name = std::move(name);
    event.category = std::move(category);
    event.tid = tid;
    event.ts = ts_us;
    event.args = std::move(args);
    push(std::move(event));
}

void
TraceEventSink::counter(std::string name, std::string category,
                        int tid, std::int64_t ts_us, double value)
{
    Event event;
    event.phase = 'C';
    event.name = std::move(name);
    event.category = std::move(category);
    event.tid = tid;
    event.ts = ts_us;
    event.args.push_back(TraceArg::num("value", value));
    push(std::move(event));
}

int
TraceEventSink::allocateTrack(const std::string &name)
{
    // The metadata event is appended inline rather than via push():
    // the track id and its thread_name must land under one lock so
    // two racing allocations of different names cannot interleave.
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tracks_.find(name);
    if (it != tracks_.end())
        return it->second;
    const int tid =
        kFirstAllocatedTrack + static_cast<int>(tracks_.size());
    tracks_.emplace(name, tid);
    Event event;
    event.phase = 'M';
    event.name = "thread_name";
    event.tid = tid;
    event.args.push_back(TraceArg::str("name", name));
    event.seq = next_seq_++;
    events_.push_back(std::move(event));
    return tid;
}

void
TraceEventSink::setProcessName(std::string name)
{
    Event event;
    event.phase = 'M';
    event.name = "process_name";
    event.args.push_back(TraceArg::str("name", std::move(name)));
    push(std::move(event));
}

void
TraceEventSink::setThreadName(int tid, std::string name)
{
    Event event;
    event.phase = 'M';
    event.name = "thread_name";
    event.tid = tid;
    event.args.push_back(TraceArg::str("name", std::move(name)));
    push(std::move(event));
}

std::size_t
TraceEventSink::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
TraceEventSink::write(std::ostream &os) const
{
    std::vector<Event> sorted;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sorted = events_;
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const Event &a, const Event &b) {
                  // Metadata first so viewers name tracks before any
                  // span references them; then chronological with
                  // record order as the tie-break.
                  if ((a.phase == 'M') != (b.phase == 'M'))
                      return a.phase == 'M';
                  if (a.ts != b.ts)
                      return a.ts < b.ts;
                  return a.seq < b.seq;
              });

    os << "{\"traceEvents\": [";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const Event &e = sorted[i];
        os << (i ? ",\n  " : "\n  ");
        os << "{\"name\": \"" << jsonEscape(e.name) << "\", \"ph\": \""
           << e.phase << "\", \"pid\": 1, \"tid\": " << e.tid;
        if (e.phase != 'M') {
            os << ", \"ts\": " << e.ts;
            if (!e.category.empty())
                os << ", \"cat\": \"" << jsonEscape(e.category)
                   << "\"";
            if (e.phase == 'X')
                os << ", \"dur\": " << e.dur;
            if (e.phase == 'i')
                os << ", \"s\": \"t\"";
        }
        if (!e.args.empty()) {
            os << ", \"args\": ";
            writeArgs(os, e.args);
        }
        os << "}";
    }
    os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void
TraceEventSink::writeFile(const std::string &path) const
{
    util::writeArtifactFile(path, "TraceEventSink",
                            [this](std::ostream &os) { write(os); });
}

} // namespace wss::obs
