#include "obs/crash_dump.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

#include "obs/flight_recorder.hpp"

namespace wss::obs {
namespace {

constexpr int kSignals[] = {SIGSEGV, SIGABRT, SIGBUS};
constexpr std::size_t kNumSignals = sizeof(kSignals) / sizeof(kSignals[0]);
/// Last events dumped per thread (the ring may hold more).
constexpr std::uint64_t kDumpEvents = 64;

char g_path[512] = {};
char g_tool[64] = {};
std::atomic<std::uint64_t> g_identity{0};
std::atomic<bool> g_installed{false};
std::atomic<bool> g_written{false};
struct sigaction g_old_actions[kNumSignals];

/// Minimal async-signal-safe JSON emitter: every method bottoms out
/// in write(2) on an O_APPEND-free fd, no allocation, no locks.
class SafeWriter
{
  public:
    explicit SafeWriter(int fd) : fd_(fd) {}

    void
    raw(const char *s)
    {
        std::size_t n = 0;
        while (s[n] != '\0')
            ++n;
        rawN(s, n);
    }

    void
    rawN(const char *s, std::size_t n)
    {
        while (n > 0) {
            const ssize_t w = ::write(fd_, s, n);
            if (w <= 0)
                return;
            s += static_cast<std::size_t>(w);
            n -= static_cast<std::size_t>(w);
        }
    }

    void
    u64(std::uint64_t v)
    {
        char buf[24];
        int i = sizeof(buf);
        do {
            buf[--i] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v != 0);
        rawN(buf + i, sizeof(buf) - static_cast<std::size_t>(i));
    }

    void
    i64(std::int64_t v)
    {
        if (v < 0) {
            raw("-");
            // Negate via unsigned so INT64_MIN does not overflow.
            u64(~static_cast<std::uint64_t>(v) + 1);
        } else {
            u64(static_cast<std::uint64_t>(v));
        }
    }

    void
    hex64(std::uint64_t v)
    {
        char buf[16];
        int i = sizeof(buf);
        do {
            buf[--i] = "0123456789abcdef"[v & 0xf];
            v >>= 4;
        } while (v != 0);
        raw("0x");
        rawN(buf + i, sizeof(buf) - static_cast<std::size_t>(i));
    }

    /// Fixed-point seconds with 6 fractional digits; non-finite or
    /// absurd values degrade to 0 rather than corrupting the JSON.
    void
    seconds(double v)
    {
        if (!(v > -9.0e12) || !(v < 9.0e12))
            v = 0.0;
        if (v < 0) {
            raw("-");
            v = -v;
        }
        const std::uint64_t micros =
            static_cast<std::uint64_t>(v * 1.0e6 + 0.5);
        u64(micros / 1000000);
        raw(".");
        char frac[6];
        std::uint64_t rem = micros % 1000000;
        for (int i = 5; i >= 0; --i) {
            frac[i] = static_cast<char>('0' + rem % 10);
            rem /= 10;
        }
        rawN(frac, 6);
    }

    /// Quoted string; control chars, '"' and '\\' become '_', input
    /// is clamped to @p max_len bytes.
    void
    str(const char *s, std::size_t max_len)
    {
        raw("\"");
        char buf[64];
        std::size_t n = 0;
        for (std::size_t i = 0; i < max_len && s[i] != '\0'; ++i) {
            const unsigned char c = static_cast<unsigned char>(s[i]);
            buf[n++] = (c < 0x20 || c > 0x7e || c == '"' || c == '\\')
                           ? '_'
                           : static_cast<char>(c);
            if (n == sizeof(buf)) {
                rawN(buf, n);
                n = 0;
            }
        }
        rawN(buf, n);
        raw("\"");
    }

  private:
    int fd_;
};

const char *
signalName(int sig)
{
    switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case 0: return "none";
    }
    return "signal";
}

void
writeThread(SafeWriter &w, ThreadRing *ring)
{
    w.raw("{\"label\": ");
    w.str(ring->label(), 32);
    const std::uint64_t written = ring->written();
    w.raw(", \"events_recorded\": ");
    w.u64(written);
    w.raw(", \"open_phases\": [");
    const int depth = ring->phaseDepth();
    const int named = depth < ThreadRing::kMaxPhaseDepth
                          ? depth
                          : ThreadRing::kMaxPhaseDepth;
    for (int p = 0; p < named; ++p) {
        if (p > 0)
            w.raw(", ");
        w.str(ring->phaseName(p), ThreadRing::kPhaseNameCap);
    }
    w.raw("], \"open_phase_depth\": ");
    w.i64(depth);
    w.raw(", \"events\": [");
    std::uint64_t window = kDumpEvents;
    if (window > ring->capacity())
        window = ring->capacity();
    if (window > written)
        window = written;
    for (std::uint64_t k = 0; k < window; ++k) {
        const FlightEvent &e = ring->slot(written - window + k);
        if (k > 0)
            w.raw(", ");
        w.raw("{\"t_s\": ");
        w.seconds(e.t);
        w.raw(", \"kind\": ");
        const EventKind kind =
            e.kind < static_cast<std::uint16_t>(EventKind::kCount)
                ? static_cast<EventKind>(e.kind)
                : EventKind::kCount;
        w.str(eventKindName(kind), 24);
        w.raw(", \"a\": ");
        w.i64(e.a);
        w.raw(", \"b\": ");
        w.i64(e.b);
        w.raw(", \"tag\": ");
        w.str(e.tag, sizeof(e.tag));
        w.raw("}");
    }
    w.raw("]}");
}

void
crashSignalHandler(int sig)
{
    CrashDump::writeNow(signalName(sig), sig);
    // Restore the default disposition and re-raise so the process
    // still dies with the original signal's exit status.
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

} // namespace

void
CrashDump::install(const std::string &path)
{
    if (g_installed.exchange(true, std::memory_order_acq_rel))
        return;
    const std::size_t n =
        path.size() < sizeof(g_path) - 1 ? path.size() : sizeof(g_path) - 1;
    std::memcpy(g_path, path.data(), n);
    g_path[n] = '\0';
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &crashSignalHandler;
    sigemptyset(&sa.sa_mask);
    for (std::size_t i = 0; i < kNumSignals; ++i)
        ::sigaction(kSignals[i], &sa, &g_old_actions[i]);
}

bool
CrashDump::installed()
{
    return g_installed.load(std::memory_order_acquire);
}

void
CrashDump::setTool(std::string_view tool)
{
    const std::size_t n =
        tool.size() < sizeof(g_tool) - 1 ? tool.size() : sizeof(g_tool) - 1;
    std::memcpy(g_tool, tool.data(), n);
    g_tool[n] = '\0';
}

void
CrashDump::setIdentity(std::uint64_t hash)
{
    g_identity.store(hash, std::memory_order_relaxed);
}

bool
CrashDump::writeNow(const char *reason, int sig)
{
    if (!installed() || g_path[0] == '\0')
        return false;
    if (g_written.exchange(true, std::memory_order_acq_rel))
        return false;
    const int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    SafeWriter w(fd);
    w.raw("{\n  \"wss_crash_report\": 1,\n  \"reason\": ");
    w.str(reason != nullptr ? reason : "", 256);
    w.raw(",\n  \"signal\": ");
    w.i64(sig);
    w.raw(",\n  \"signal_name\": ");
    w.str(signalName(sig), 16);
    w.raw(",\n  \"tool\": ");
    w.str(g_tool, sizeof(g_tool));
    w.raw(",\n  \"identity_hash\": \"");
    w.hex64(g_identity.load(std::memory_order_relaxed));
    w.raw("\",\n  \"uptime_s\": ");
    w.seconds(FlightRecorder::now());
    w.raw(",\n  \"counters\": {");
    for (std::uint16_t k = 0;
         k < static_cast<std::uint16_t>(EventKind::kCount); ++k) {
        if (k > 0)
            w.raw(", ");
        w.raw("\"");
        w.raw(eventKindName(static_cast<EventKind>(k)));
        w.raw("\": ");
        w.u64(FlightRecorder::kindCount(static_cast<EventKind>(k)));
    }
    w.raw("},\n  \"threads\": [");
    const std::size_t rings = FlightRecorder::ringCount();
    for (std::size_t i = 0; i < rings; ++i) {
        ThreadRing *ring = FlightRecorder::ring(i);
        if (ring == nullptr)
            continue;
        if (i > 0)
            w.raw(",\n    ");
        else
            w.raw("\n    ");
        writeThread(w, ring);
    }
    w.raw("\n  ]\n}\n");
    ::close(fd);
    return true;
}

const char *
CrashDump::path()
{
    return g_path;
}

void
CrashDump::resetForTesting()
{
    if (g_installed.exchange(false, std::memory_order_acq_rel)) {
        for (std::size_t i = 0; i < kNumSignals; ++i)
            ::sigaction(kSignals[i], &g_old_actions[i], nullptr);
    }
    g_path[0] = '\0';
    g_tool[0] = '\0';
    g_identity.store(0, std::memory_order_relaxed);
    g_written.store(false, std::memory_order_release);
}

} // namespace wss::obs
