#include "obs/flight_recorder.hpp"

#include <chrono>
#include <cstring>
#include <mutex>

#include "obs/crash_dump.hpp"
#include "util/logging.hpp"

namespace wss::obs {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kMaxRings = 256;
constexpr std::size_t kMinCapacity = 16;

std::atomic<bool> g_enabled{false};
std::size_t g_capacity = 4096;
Clock::time_point g_epoch{};

/// Fixed-size lock-free ring table: the crash writer walks
/// g_rings[0, g_ring_count) without a mutex. Registration (cold)
/// serializes on g_attach_mutex; publication is the release store
/// into the atomic slot plus the count bump.
std::atomic<ThreadRing *> g_rings[kMaxRings]{};
std::atomic<std::size_t> g_ring_count{0};
std::mutex g_attach_mutex;

std::atomic<std::uint64_t>
    g_kind_counts[static_cast<std::size_t>(EventKind::kCount)]{};

void
copyTruncated(char *dst, std::size_t cap, std::string_view src)
{
    const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
}

/// util/logging.hpp bridge: record the event, and on panic()/fatal()
/// drain everything into the crash post-mortem before the process
/// dies. Runs in normal (non-signal) context — see the
/// async-signal-safety rules in util/logging.hpp.
void
obsLogEventHook(wss::detail::LogEvent event, const char *msg)
{
    switch (event) {
    case wss::detail::LogEvent::WarnOnce:
        recordEvent(EventKind::WarnOnce, 0, 0, msg);
        break;
    case wss::detail::LogEvent::Artifact:
        recordEvent(EventKind::ArtifactWrite, 0, 0, msg);
        break;
    case wss::detail::LogEvent::Panic:
        recordEvent(EventKind::Panic, 0, 0, msg);
        CrashDump::writeNow(msg, 0);
        break;
    case wss::detail::LogEvent::Fatal:
        recordEvent(EventKind::Fatal, 0, 0, msg);
        CrashDump::writeNow(msg, 0);
        break;
    }
}

} // namespace

namespace frdetail {

thread_local ThreadRing *tl_ring = nullptr;

void
recordSlow(ThreadRing *ring, EventKind kind, std::int64_t a, std::int64_t b,
           std::string_view tag)
{
    const double t = std::chrono::duration<double>(Clock::now() - g_epoch)
                         .count();
    g_kind_counts[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
    ring->record(kind, t, a, b, tag);
}

} // namespace frdetail

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
    case EventKind::PhaseEnter: return "phase_enter";
    case EventKind::PhaseExit: return "phase_exit";
    case EventKind::JobStart: return "job_start";
    case EventKind::JobFinish: return "job_finish";
    case EventKind::DesignPoint: return "design_point";
    case EventKind::SimEpoch: return "sim_epoch";
    case EventKind::FaultInjection: return "fault_injection";
    case EventKind::ArtifactWrite: return "artifact_write";
    case EventKind::WarnOnce: return "warn_once";
    case EventKind::Heartbeat: return "heartbeat";
    case EventKind::Panic: return "panic";
    case EventKind::Fatal: return "fatal";
    case EventKind::kCount: break;
    }
    return "unknown";
}

ThreadRing::ThreadRing(std::string_view label, std::size_t capacity)
    : slots_(new FlightEvent[capacity]), capacity_(capacity)
{
    copyTruncated(label_, sizeof(label_), label);
}

ThreadRing::~ThreadRing() { delete[] slots_; }

void
ThreadRing::record(EventKind kind, double t, std::int64_t a, std::int64_t b,
                   std::string_view tag)
{
    const std::uint64_t i = written_.load(std::memory_order_relaxed);
    FlightEvent &e = slots_[i % capacity_];
    e.t = t;
    e.a = a;
    e.b = b;
    e.kind = static_cast<std::uint16_t>(kind);
    copyTruncated(e.tag, sizeof(e.tag), tag);
    written_.store(i + 1, std::memory_order_release);
}

void
ThreadRing::pushPhase(std::string_view name)
{
    const int depth = phase_depth_.load(std::memory_order_relaxed);
    if (depth < kMaxPhaseDepth)
        copyTruncated(phase_names_[depth], kPhaseNameCap, name);
    phase_depth_.store(depth + 1, std::memory_order_release);
}

void
ThreadRing::popPhase()
{
    const int depth = phase_depth_.load(std::memory_order_relaxed);
    if (depth > 0)
        phase_depth_.store(depth - 1, std::memory_order_release);
}

void
FlightRecorder::enable(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(g_attach_mutex);
    if (g_enabled.load(std::memory_order_relaxed))
        return;
    g_capacity = capacity < kMinCapacity ? kMinCapacity : capacity;
    g_epoch = Clock::now();
    setLogEventHook(&obsLogEventHook);
    g_enabled.store(true, std::memory_order_release);
}

bool
FlightRecorder::enabled()
{
    return g_enabled.load(std::memory_order_acquire);
}

void
FlightRecorder::attachCurrentThread(std::string_view label)
{
    if (!enabled() || frdetail::tl_ring)
        return;
    std::lock_guard<std::mutex> lock(g_attach_mutex);
    const std::size_t i = g_ring_count.load(std::memory_order_relaxed);
    if (i >= kMaxRings) {
        WSS_WARN_ONCE("flight recorder: ring table full (", kMaxRings,
                      " threads) — further threads record nothing");
        return;
    }
    ThreadRing *ring = new ThreadRing(label, g_capacity);
    g_rings[i].store(ring, std::memory_order_release);
    g_ring_count.store(i + 1, std::memory_order_release);
    frdetail::tl_ring = ring;
}

void
FlightRecorder::detachCurrentThread()
{
    frdetail::tl_ring = nullptr;
}

std::size_t
FlightRecorder::ringCount()
{
    return g_ring_count.load(std::memory_order_acquire);
}

ThreadRing *
FlightRecorder::ring(std::size_t i)
{
    return g_rings[i].load(std::memory_order_acquire);
}

std::uint64_t
FlightRecorder::kindCount(EventKind kind)
{
    return g_kind_counts[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
}

double
FlightRecorder::now()
{
    if (!enabled())
        return 0.0;
    return std::chrono::duration<double>(Clock::now() - g_epoch).count();
}

void
FlightRecorder::resetForTesting()
{
    std::lock_guard<std::mutex> lock(g_attach_mutex);
    frdetail::tl_ring = nullptr;
    g_enabled.store(false, std::memory_order_release);
    const std::size_t n = g_ring_count.load(std::memory_order_relaxed);
    g_ring_count.store(0, std::memory_order_release);
    for (std::size_t i = 0; i < n; ++i)
        delete g_rings[i].exchange(nullptr, std::memory_order_acq_rel);
    for (auto &c : g_kind_counts)
        c.store(0, std::memory_order_relaxed);
    setLogEventHook(nullptr);
}

} // namespace wss::obs
