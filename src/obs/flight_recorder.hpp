/**
 * @file
 * Process-wide flight recorder: per-thread lock-free rings of
 * compact binary events, drained into crash post-mortems.
 *
 * Phases 1-2 of the observability stack (metrics, traces, profiler,
 * manifests, reports) describe runs that *finish*. The flight
 * recorder covers the runs that don't: every thread that does real
 * work keeps a fixed-capacity ring of the last events it saw — phase
 * enter/exit, campaign job start/finish, sweep design-point
 * boundaries, sim epoch marks, fault injections, artifact writes,
 * WARN_ONCE firings — so that a panic(), a fatal() invariant, a
 * watchdog stall, or a SIGSEGV can dump "what was every thread doing
 * just now" instead of a bare abort (see obs::CrashDump).
 *
 * The contract mirrors obs::MetricsRegistry / obs::Profiler:
 *
 *   - disabled (the default) costs one predicted branch per
 *     recordEvent() call — a thread-local pointer test, guarded by
 *     BM_FlightRecorder* in bench_micro and a >=10x ratio gate in
 *     check.sh;
 *   - recording is purely passive: results are bit-identical with
 *     the recorder on or off (ctest-asserted, FlightRecorder suite);
 *   - each ring has exactly one writer (its owning thread), so the
 *     hot path takes no lock: a slot is written, then the count is
 *     release-stored. Readers that stay >= capacity events behind the
 *     writer (tests, the watchdog's stall dump) see fully published
 *     slots; only the crash-time dump may observe a torn slot in the
 *     ring position being overwritten at the instant of the crash,
 *     which is an acceptable price for a wait-free writer.
 *
 * Threads attach lazily at cold call sites (campaign workers, CLI
 * main); attaching is idempotent and a no-op while the recorder is
 * disabled. Rings are registered in a fixed-size lock-free table so
 * the async-signal-safe crash writer can walk them without taking a
 * mutex (see the async-signal-safety rules in util/logging.hpp).
 */

#ifndef WSS_OBS_FLIGHT_RECORDER_HPP
#define WSS_OBS_FLIGHT_RECORDER_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wss::obs {

/// What happened. Names (eventKindName) are stable: they appear in
/// crash.json and in the `wss report` post-mortem section.
enum class EventKind : std::uint16_t {
    PhaseEnter = 0,   ///< Profiler phase opened (tag = phase name).
    PhaseExit,        ///< Innermost profiler phase closed.
    JobStart,         ///< Campaign cell started (a = cell index).
    JobFinish,        ///< Campaign cell finished (a = cell index).
    DesignPoint,      ///< Sweep design-point boundary (a = rep, b = rate index).
    SimEpoch,         ///< Simulator progress mark (a = events/cycles so far).
    FaultInjection,   ///< A fault transition was applied (tag = target).
    ArtifactWrite,    ///< An artifact file was written (tag = path tail).
    WarnOnce,         ///< A WSS_WARN_ONCE call site fired (tag = message head).
    Heartbeat,        ///< Watchdog heartbeat detail change (tag = detail).
    Panic,            ///< panic() fired (tag = message head).
    Fatal,            ///< fatal() fired (tag = message head).
    kCount
};

/// Stable lower_snake_case name of @p kind ("job_start", ...).
const char *eventKindName(EventKind kind);

/// One recorded event. Compact POD: rings are arrays of these, and
/// the crash writer reads the fields through raw pointers only.
struct FlightEvent
{
    /// Seconds since FlightRecorder::enable().
    double t = 0.0;
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::uint16_t kind = 0;
    /// NUL-terminated (truncating) free-text payload.
    char tag[30] = {};
};

/**
 * One thread's event ring plus its open-profiler-phase stack.
 * Single writer (the owning thread); see file comment for the
 * reader contract. Never freed once registered, so crash-time
 * readers cannot chase a dangling pointer.
 */
class ThreadRing
{
  public:
    static constexpr int kMaxPhaseDepth = 16;
    static constexpr int kPhaseNameCap = 48;

    ThreadRing(std::string_view label, std::size_t capacity);
    ~ThreadRing();
    ThreadRing(const ThreadRing &) = delete;
    ThreadRing &operator=(const ThreadRing &) = delete;

    /// Write one event (wait-free; wraps when full).
    void record(EventKind kind, double t, std::int64_t a, std::int64_t b,
                std::string_view tag);

    /// Push/pop the open-profiler-phase stack (depth beyond
    /// kMaxPhaseDepth is counted but not named).
    void pushPhase(std::string_view name);
    void popPhase();

    /// Total events ever recorded (acquire: slots below this count,
    /// and at most capacity() back, are fully published).
    std::uint64_t written() const
    {
        return written_.load(std::memory_order_acquire);
    }

    std::size_t capacity() const { return capacity_; }

    /// Raw slot access; @p i is an absolute event index (mod
    /// capacity). Valid for indices in [written - min(written,
    /// capacity), written).
    const FlightEvent &slot(std::uint64_t i) const
    {
        return slots_[i % capacity_];
    }

    /// NUL-terminated thread label ("main", "worker-3", ...).
    const char *label() const { return label_; }

    /// Open-phase stack depth (may exceed kMaxPhaseDepth; only the
    /// first kMaxPhaseDepth entries carry names).
    int phaseDepth() const
    {
        return phase_depth_.load(std::memory_order_acquire);
    }

    /// NUL-terminated name of open phase @p i (< kMaxPhaseDepth).
    const char *phaseName(int i) const { return phase_names_[i]; }

  private:
    FlightEvent *slots_ = nullptr;
    std::size_t capacity_ = 0;
    std::atomic<std::uint64_t> written_{0};
    char label_[32] = {};
    std::atomic<int> phase_depth_{0};
    char phase_names_[kMaxPhaseDepth][kPhaseNameCap] = {};
};

namespace frdetail {

/// Null while this thread is detached or the recorder is disabled —
/// the one predicted branch of the disabled contract.
extern thread_local ThreadRing *tl_ring;

/// Slow path: timestamp, per-kind counter bump, ring write.
void recordSlow(ThreadRing *ring, EventKind kind, std::int64_t a,
                std::int64_t b, std::string_view tag);

} // namespace frdetail

/**
 * Global recorder control. All static: there is one recorder per
 * process, like the logging mutex — crash diagnostics have no use
 * for a second one.
 */
class FlightRecorder
{
  public:
    /// Turn the recorder on with @p capacity events per thread ring
    /// (clamped to >= 16). Idempotent; threads still have to
    /// attachCurrentThread() before their events are kept. Also
    /// installs the util/logging.hpp hook so WSS_WARN_ONCE, panic(),
    /// fatal() and artifact writes record events.
    static void enable(std::size_t capacity = 4096);

    static bool enabled();

    /// Register the calling thread under @p label. No-op when the
    /// recorder is disabled or the thread is already attached.
    /// Cold: takes a mutex, allocates the ring.
    static void attachCurrentThread(std::string_view label);

    /// Forget this thread's ring pointer (the ring itself stays
    /// registered for post-mortems).
    static void detachCurrentThread();

    /// Registered rings, in attach order. ring(i) stays valid until
    /// resetForTesting(); readers follow the ThreadRing contract.
    static std::size_t ringCount();
    static ThreadRing *ring(std::size_t i);

    /// Process-wide events recorded of @p kind (lock-free atomics —
    /// safe to read from a signal handler).
    static std::uint64_t kindCount(EventKind kind);

    /// Seconds since enable() (0 while disabled).
    static double now();

    /// Disable, detach the calling thread, free every ring, zero the
    /// counters. Test-only: no other thread may be recording.
    static void resetForTesting();
};

/**
 * Record one event on the calling thread's ring. Disabled or
 * detached threads pay exactly one predicted branch
 * (BM_FlightRecorderDisabled).
 */
inline void
recordEvent(EventKind kind, std::int64_t a = 0, std::int64_t b = 0,
            std::string_view tag = {})
{
    if (ThreadRing *ring = frdetail::tl_ring)
        frdetail::recordSlow(ring, kind, a, b, tag);
}

/// Profiler integration: maintain the open-phase stack *and* record
/// a PhaseEnter/PhaseExit event. Called by Profiler::enter/exit.
inline void
recordPhaseEnter(std::string_view name)
{
    if (ThreadRing *ring = frdetail::tl_ring) {
        ring->pushPhase(name);
        frdetail::recordSlow(ring, EventKind::PhaseEnter, 0, 0, name);
    }
}

inline void
recordPhaseExit()
{
    if (ThreadRing *ring = frdetail::tl_ring) {
        ring->popPhase();
        frdetail::recordSlow(ring, EventKind::PhaseExit, 0, 0, {});
    }
}

} // namespace wss::obs

#endif // WSS_OBS_FLIGHT_RECORDER_HPP
