/**
 * @file
 * Post-run reporting: one manifest in, one human-readable story out.
 *
 * `wss report` points this engine at a RunManifest. It resolves the
 * manifest's artifact inventory (paths as recorded, else relative to
 * the manifest's own directory), re-hashes every artifact against the
 * recorded FNV-1a content hash, parses the long-format telemetry CSVs
 * (flow windows, collective steps), and renders:
 *
 *   - self-contained Markdown: run identity and configuration, the
 *     top self-time phases from the manifest's timing section, the
 *     hottest links over time, the per-step collective breakdown,
 *     and a health-check table (artifact hashes, flow conservation,
 *     telemetry-vs-counter reconciliation, saturation flags);
 *   - machine-readable report JSON with the same content for
 *     dashboards and CI (valid per python3 -m json.tool, checked by
 *     tools/check.sh).
 *
 * The reporter is read-only and deterministic: same manifest and
 * artifacts, same report bytes (no timestamps).
 */

#ifndef WSS_OBS_REPORT_HPP
#define WSS_OBS_REPORT_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace wss::obs {

/// One pass/fail line of the report's health section.
struct ReportCheck
{
    std::string name;
    bool ok = false;
    std::string detail;
};

/// What to report on, and how much of it.
struct ReportOptions
{
    /// Manifest to load (required unless crash_path is set — a run
    /// that crashed usually never wrote its manifest).
    std::string manifest_path;
    /// Optional obs::CrashDump crash.json to render as a
    /// post-mortem section ("" = none).
    std::string crash_path;
    /// Rows in the self-time phase table.
    std::size_t top_phases = 12;
    /// Rows in the hottest-links table.
    std::size_t top_links = 10;
    /// Events shown per thread in the post-mortem section.
    std::size_t crash_events = 12;
    /// Utilization above this flags a link-window as saturated.
    double saturation_threshold = 0.95;
};

/// A fully rendered report.
struct RunReport
{
    /// Self-contained Markdown document.
    std::string markdown;
    /// Machine-readable counterpart ("wss_run_report" marker).
    std::string json;
    /// The health checks, in render order.
    std::vector<ReportCheck> checks;

    /// True when every health check passed.
    bool ok() const;

    /// Write markdown/json to @p path through a flush-checked stream.
    void writeMarkdownFile(const std::string &path) const;
    void writeJsonFile(const std::string &path) const;
};

/**
 * Load @p opts.manifest_path, resolve and verify its artifacts, and
 * render the report. fatal() only when the manifest (or an
 * explicitly requested crash report) itself is missing or malformed;
 * a missing or corrupt *artifact* degrades to a failed health check
 * so one lost file cannot hide the rest of the story.
 *
 * With opts.crash_path set, the crash.json is rendered as a
 * "Post-mortem" section (reason, per-kind event counters, per-thread
 * open phase stacks and last recorded events) plus a
 * "crash-post-mortem" health check that passes when the crash report
 * was structurally sound — the check validates the report artifact,
 * not the crashed run. A crash-only report (no manifest) still
 * evaluates every applicable health check.
 */
RunReport buildRunReport(const ReportOptions &opts);

} // namespace wss::obs

#endif // WSS_OBS_REPORT_HPP
