#include "obs/metrics.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace wss::obs {

void
HistogramData::record(double v)
{
    // First bucket whose upper edge is >= v ("le" semantics); values
    // above every edge land in the trailing overflow bucket.
    const auto it = std::lower_bound(edges.begin(), edges.end(), v);
    ++buckets[static_cast<std::size_t>(it - edges.begin())];
    ++count;
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
}

void
HistogramData::merge(const HistogramData &other)
{
    if (edges != other.edges)
        fatal("HistogramData::merge: bucket edges differ (",
              edges.size(), " vs ", other.edges.size(),
              " edges); histograms with the same name must share "
              "their layout");
    for (std::size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
}

std::uint64_t
MetricsSnapshot::value(const std::string &name) const
{
    const auto it = std::lower_bound(
        counters.begin(), counters.end(), name,
        [](const auto &entry, const std::string &key) {
            return entry.first < key;
        });
    return it != counters.end() && it->first == name ? it->second : 0;
}

MetricsSnapshot
MetricsSnapshot::delta(const MetricsSnapshot &later,
                       const MetricsSnapshot &earlier)
{
    MetricsSnapshot out;
    out.counters.reserve(later.counters.size());
    for (const auto &[name, value] : later.counters) {
        const std::uint64_t before = earlier.value(name);
        if (value < before)
            panic("MetricsSnapshot::delta: counter '", name,
                  "' went backwards (", before, " -> ", value, ")");
        out.counters.emplace_back(name, value - before);
    }
    return out;
}

Counter
MetricsRegistry::counter(const std::string &name)
{
    return Counter(&counters_[name]);
}

Gauge
MetricsRegistry::gauge(const std::string &name)
{
    return Gauge(&gauges_[name]);
}

Histogram
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> edges)
{
    if (edges.empty())
        fatal("MetricsRegistry: histogram '", name,
              "' needs at least one bucket edge");
    if (!std::is_sorted(edges.begin(), edges.end()) ||
        std::adjacent_find(edges.begin(), edges.end()) != edges.end())
        fatal("MetricsRegistry: histogram '", name,
              "' needs strictly ascending bucket edges");

    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
        if (it->second.edges != edges)
            fatal("MetricsRegistry: histogram '", name,
                  "' already exists with different bucket edges");
        return Histogram(&it->second);
    }

    HistogramData data;
    data.buckets.assign(edges.size() + 1, 0);
    data.edges = std::move(edges);
    auto [inserted, ok] = histograms_.emplace(name, std::move(data));
    (void)ok;
    return Histogram(&inserted->second);
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::int64_t
MetricsRegistry::gaugeValue(const std::string &name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
}

const HistogramData *
MetricsRegistry::findHistogram(const std::string &name) const
{
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
    for (const auto &[name, value] : other.gauges_)
        gauges_[name] += value;
    for (const auto &[name, data] : other.histograms_) {
        const auto it = histograms_.find(name);
        if (it == histograms_.end())
            histograms_.emplace(name, data);
        else
            it->second.merge(data);
    }
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    snap.counters.assign(counters_.begin(), counters_.end());
    return snap;
}

} // namespace wss::obs
