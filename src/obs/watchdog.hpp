/**
 * @file
 * Liveness watchdog and live progress for long-running campaigns.
 *
 * Every worker that does real work publishes heartbeats into a
 * process-wide registry: exec::Campaign / exec::SweepRunner workers
 * beat once per cell and label themselves with the design point they
 * are on; flow::simulateFlows beats every few thousand event-loop
 * iterations; the coll:: execution loops beat per collective step.
 * Two consumers ride on the same data:
 *
 *   - a monitor thread (Watchdog::start with a stall timeout) that
 *     detects a worker whose heartbeat has gone stale, dumps the
 *     heartbeat table plus each flight-recorder ring's tail to
 *     stderr, and panic()s with the culprit named — so a hung
 *     10k-job campaign produces a diagnosis (and, with
 *     obs::CrashDump installed, a crash.json post-mortem) instead of
 *     sitting silent forever;
 *   - a `--progress` status line (jobs done/total, percent, ETA,
 *     per-worker current design point), re-rendered in place on
 *     stderr at a fixed period.
 *
 * The contract matches the flight recorder: disabled (the default)
 * heartbeat() is one predicted branch on a thread-local pointer;
 * registration is cold and idempotent; publishing a beat is two
 * relaxed atomic stores plus a clock read, taken at call sites that
 * run at most once per event batch, never per flit. Heartbeats never
 * influence results — runs are bit-identical with the watchdog on or
 * off.
 *
 * Stall detection itself is testable without dying:
 * Watchdog::checkStalls() returns the culprit description (empty
 * when everything is live) and is what the monitor thread calls
 * before escalating to panic().
 */

#ifndef WSS_OBS_WATCHDOG_HPP
#define WSS_OBS_WATCHDOG_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wss::obs {

namespace wddetail {

struct HeartbeatSlot;

/// Null while this thread is unregistered or heartbeats are
/// disabled — the one predicted branch of the disabled contract.
extern thread_local HeartbeatSlot *tl_slot;

/// Slow path: clock read + relaxed stores into the slot.
void beatSlow(HeartbeatSlot *slot);

} // namespace wddetail

/// Point-in-time view of one heartbeat slot (Watchdog::snapshot).
struct HeartbeatSnap
{
    std::string label;
    /// Current design-point / step description ("" when none).
    std::string detail;
    std::uint64_t beats = 0;
    /// Seconds since the last beat.
    double age_s = 0.0;
    /// False once the thread declared itself idle (idle threads are
    /// never stall culprits).
    bool active = false;
};

class Watchdog
{
  public:
    /// Turn the heartbeat registry on. Idempotent. Both the monitor
    /// and the progress line require this; threads still have to
    /// registerCurrentThread() before their beats are kept.
    static void enableHeartbeats();

    static bool heartbeatsEnabled();

    /// Register the calling thread under @p label (cold, idempotent,
    /// no-op while heartbeats are disabled). The thread starts
    /// active with a fresh beat.
    static void registerCurrentThread(std::string_view label);

    /// Describe what the calling thread is working on ("fig21 rep 2
    /// rate 0.80"). Cold: takes the slot mutex, records an
    /// EventKind::Heartbeat flight-recorder event.
    static void setThreadDetail(std::string_view detail);

    /// Mark the calling thread idle (waiting for work) / active.
    /// Idle threads are skipped by stall detection.
    static void markThreadIdle();
    static void markThreadActive();

    /// Campaign progress for the status line: total cells in the
    /// current run, and completions as they happen.
    static void setProgressTotal(std::uint64_t total);
    static void addProgressDone(std::uint64_t n = 1);
    static std::uint64_t progressTotal();
    static std::uint64_t progressDone();

    /**
     * Start the monitor thread. @p stall_timeout_s > 0 arms stall
     * detection: an *active* slot whose last beat is older than the
     * timeout triggers a diagnostic dump and panic() naming the
     * culprit. @p progress additionally re-renders the status line
     * on stderr every @p progress_period_s. Implies
     * enableHeartbeats(). No-op if already running.
     */
    static void start(double stall_timeout_s, bool progress,
                      double progress_period_s = 0.5);

    /// Join the monitor thread and erase the progress line.
    static void stop();

    /// All registered slots, registration order.
    static std::vector<HeartbeatSnap> snapshot();

    /**
     * The monitor's core, exposed for tests: the description of the
     * first active slot whose last beat is older than
     * @p stall_timeout_s ("worker-3: no heartbeat for 1.2s ..."),
     * or "" when every active thread is live.
     */
    static std::string checkStalls(double stall_timeout_s);

    /// The status line ("jobs 12/40 (30%) eta 42s | ..."), without
    /// the leading carriage return.
    static std::string renderProgressLine();

    /// Stop the monitor, drop every slot, zero the progress
    /// counters, disable heartbeats. Test-only: no other thread may
    /// be beating.
    static void resetForTesting();
};

/**
 * Publish one heartbeat for the calling thread. Unregistered
 * threads pay exactly one predicted branch.
 */
inline void
heartbeat()
{
    if (wddetail::HeartbeatSlot *slot = wddetail::tl_slot)
        wddetail::beatSlow(slot);
}

} // namespace wss::obs

#endif // WSS_OBS_WATCHDOG_HPP
