#include "obs/report.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>

#include "obs/run_manifest.hpp"
#include "util/artifact.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace wss::obs {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << v;
    return os.str();
}

std::string
hexString(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

/// Directory part of @p path ("." when it has none).
std::string
dirName(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Short fixed-precision number for Markdown tables.
std::string
fmt(double v, int digits = 4)
{
    std::ostringstream os;
    os << std::setprecision(digits) << v;
    return os.str();
}

/// One parsed row of a long-format telemetry CSV
/// (`record,key,scope,metric,value`).
struct CsvRow
{
    std::string record;
    std::string key;
    std::string scope;
    std::string metric;
    double value = 0.0;
};

/// Parse the repo's long-format CSVs: `#` comments and the header
/// line are skipped, short or non-numeric rows are ignored (a
/// corrupt artifact already fails the hash check).
std::vector<CsvRow>
parseLongCsv(const std::string &content)
{
    std::vector<CsvRow> rows;
    std::istringstream is(content);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#' ||
            line.rfind("record,", 0) == 0)
            continue;
        std::array<std::string, 5> fields;
        std::size_t field = 0;
        std::size_t start = 0;
        while (field < 4) {
            const std::size_t comma = line.find(',', start);
            if (comma == std::string::npos)
                break;
            fields[field++] = line.substr(start, comma - start);
            start = comma + 1;
        }
        if (field < 4)
            continue;
        fields[4] = line.substr(start);
        try {
            rows.push_back({fields[0], fields[1], fields[2], fields[3],
                            std::stod(fields[4])});
        } catch (const std::exception &) {
            // Non-numeric value cell: not one of ours.
        }
    }
    return rows;
}

/// One resolved artifact: the manifest entry plus what we found.
struct ResolvedArtifact
{
    ManifestArtifact entry;
    /// Where the content was actually read; empty when missing.
    std::string resolved_path;
    bool hash_ok = false;
    std::string content;
};

ResolvedArtifact
resolveArtifact(const ManifestArtifact &entry,
                const std::string &manifest_dir)
{
    ResolvedArtifact out;
    out.entry = entry;
    const std::string candidates[] = {
        entry.path,
        manifest_dir + "/" + entry.path,
        manifest_dir + "/" + baseName(entry.path),
    };
    for (const std::string &candidate : candidates) {
        std::ifstream is(candidate, std::ios::binary);
        if (!is)
            continue;
        std::ostringstream buffer;
        buffer << is.rdbuf();
        out.content = buffer.str();
        out.resolved_path = candidate;
        out.hash_ok = out.content.size() == entry.bytes &&
                      RunManifest::hashBytes(out.content) == entry.hash;
        break;
    }
    return out;
}

/// Per-window aggregate of one flow-telemetry artifact.
struct FlowWindow
{
    double started = 0, completed = 0, failed = 0;
    double in_flight_end = 0, completed_bytes = 0;
    double max_utilization = 0;
};

/// Everything the report keeps from one flow-telemetry artifact.
struct FlowView
{
    std::string name;
    /// Keyed by window index string, in numeric file order (the
    /// writer emits windows ascending, map re-sorts by int value).
    std::map<long, FlowWindow> windows;
    double total_started = 0, total_completed = 0, total_failed = 0;
    double total_completed_bytes = 0;
};

/// Per-step aggregate of one coll-telemetry artifact.
struct CollStep
{
    double start_s = 0, seconds = 0, messages = 0, failed = 0,
           bytes = 0;
};

struct CollView
{
    std::string name;
    std::map<long, CollStep> steps;
    double total_messages = 0, total_failed = 0, total_bytes = 0;
};

struct HotLink
{
    /// "<artifact basename>:<trunk scope>".
    std::string link;
    double peak_utilization = 0;
    long peak_window = 0;
    int saturated_windows = 0;
};

long
keyIndex(const std::string &key)
{
    try {
        return std::stol(key);
    } catch (const std::exception &) {
        return -1;
    }
}

/// Everything the report keeps from one crash.json post-mortem.
struct CrashThreadView
{
    std::string label;
    double events_recorded = 0;
    long open_phase_depth = 0;
    std::vector<std::string> open_phases;
    struct Event
    {
        double t_s = 0;
        std::string kind;
        double a = 0, b = 0;
        std::string tag;
    };
    std::vector<Event> events;
};

struct CrashView
{
    bool present = false;
    /// Structurally sound (every expected member present and typed).
    bool well_formed = false;
    std::string problem;
    std::string reason, signal_name, tool, identity_hash;
    double signal = 0, uptime_s = 0;
    std::vector<std::pair<std::string, double>> counters;
    std::vector<CrashThreadView> threads;
};

/// Parse an obs::CrashDump crash.json. fatal() on unreadable or
/// non-JSON input (the path was explicitly requested); structural
/// surprises inside valid JSON degrade to well_formed = false so the
/// crash-post-mortem health check can report them.
CrashView
parseCrashReport(const std::string &path)
{
    CrashView view;
    view.present = true;
    const util::JsonValue doc =
        util::JsonValue::parseFile(path, "crash report");
    if (doc.find("wss_crash_report") == nullptr) {
        view.problem = "missing wss_crash_report marker";
        return view;
    }
    view.reason = doc.stringOr("reason", "");
    view.signal = doc.numberOr("signal", 0);
    view.signal_name = doc.stringOr("signal_name", "");
    view.tool = doc.stringOr("tool", "");
    view.identity_hash = doc.stringOr("identity_hash", "");
    view.uptime_s = doc.numberOr("uptime_s", 0.0);
    if (const util::JsonValue *counters = doc.find("counters"))
        for (const auto &[name, value] :
             counters->asObject("crash counters"))
            view.counters.emplace_back(
                name, value.asNumber("crash counter " + name));
    const util::JsonValue *threads = doc.find("threads");
    if (threads == nullptr) {
        view.problem = "missing threads array";
        return view;
    }
    for (const util::JsonValue &t : threads->asArray("crash threads")) {
        CrashThreadView tv;
        tv.label = t.stringOr("label", "?");
        tv.events_recorded = t.numberOr("events_recorded", 0);
        tv.open_phase_depth = static_cast<long>(
            t.numberOr("open_phase_depth", 0));
        if (const util::JsonValue *phases = t.find("open_phases"))
            for (const util::JsonValue &p :
                 phases->asArray("crash open_phases"))
                tv.open_phases.push_back(p.asString("crash phase"));
        if (const util::JsonValue *events = t.find("events"))
            for (const util::JsonValue &e :
                 events->asArray("crash events")) {
                CrashThreadView::Event ev;
                ev.t_s = e.numberOr("t_s", 0.0);
                ev.kind = e.stringOr("kind", "?");
                ev.a = e.numberOr("a", 0);
                ev.b = e.numberOr("b", 0);
                ev.tag = e.stringOr("tag", "");
                tv.events.push_back(std::move(ev));
            }
        view.threads.push_back(std::move(tv));
    }
    view.well_formed = true;
    return view;
}

} // namespace

bool
RunReport::ok() const
{
    for (const ReportCheck &check : checks)
        if (!check.ok)
            return false;
    return true;
}

void
RunReport::writeMarkdownFile(const std::string &path) const
{
    util::writeArtifactFile(path, "RunReport markdown",
                            [this](std::ostream &os) { os << markdown; });
}

void
RunReport::writeJsonFile(const std::string &path) const
{
    util::writeArtifactFile(path, "RunReport json",
                            [this](std::ostream &os) { os << json; });
}

RunReport
buildRunReport(const ReportOptions &opts)
{
    if (opts.manifest_path.empty() && opts.crash_path.empty())
        fatal("wss report: need a manifest path (or --crash)");
    // A crashed run usually never wrote its manifest, so a
    // crash-only report is legal: manifest-backed sections collapse
    // to their empty forms and every applicable check still runs.
    RunManifest manifest{std::string()};
    if (!opts.manifest_path.empty())
        manifest = RunManifest::loadJsonFile(opts.manifest_path);
    const std::string manifest_dir = dirName(opts.manifest_path);

    CrashView crash;
    if (!opts.crash_path.empty())
        crash = parseCrashReport(opts.crash_path);

    RunReport report;

    // ---- resolve + verify artifacts -----------------------------
    std::vector<ResolvedArtifact> artifacts;
    artifacts.reserve(manifest.artifacts().size());
    std::size_t verified = 0;
    std::string first_problem;
    for (const ManifestArtifact &entry : manifest.artifacts()) {
        artifacts.push_back(resolveArtifact(entry, manifest_dir));
        const ResolvedArtifact &a = artifacts.back();
        if (a.hash_ok) {
            ++verified;
        } else if (first_problem.empty()) {
            first_problem = a.resolved_path.empty()
                                ? entry.path + " missing"
                                : entry.path + " content differs";
        }
    }
    {
        ReportCheck check;
        check.name = "artifact-hashes";
        check.ok = verified == artifacts.size();
        std::ostringstream detail;
        detail << verified << "/" << artifacts.size()
               << " artifacts verified";
        if (!check.ok)
            detail << " (" << first_problem << ")";
        check.detail = detail.str();
        report.checks.push_back(std::move(check));
    }

    // ---- parse telemetry artifacts ------------------------------
    std::vector<FlowView> flows;
    std::vector<CollView> colls;
    std::vector<HotLink> hot_links;
    int saturated_link_windows = 0;
    double peak_utilization = 0.0;

    for (const ResolvedArtifact &a : artifacts) {
        if (a.resolved_path.empty())
            continue;
        if (a.entry.kind == "flow-telemetry") {
            FlowView view;
            view.name = baseName(a.entry.path);
            std::map<std::string, HotLink> links;
            for (const CsvRow &row : parseLongCsv(a.content)) {
                if (row.record == "window") {
                    FlowWindow &w = view.windows[keyIndex(row.key)];
                    if (row.metric == "started")
                        w.started += row.value;
                    else if (row.metric == "completed")
                        w.completed += row.value;
                    else if (row.metric == "failed")
                        w.failed += row.value;
                    else if (row.metric == "in_flight_end")
                        w.in_flight_end = row.value;
                    else if (row.metric == "completed_bytes")
                        w.completed_bytes = row.value;
                } else if (row.record == "link" &&
                           row.metric == "utilization") {
                    view.windows[keyIndex(row.key)].max_utilization =
                        std::max(view.windows[keyIndex(row.key)]
                                     .max_utilization,
                                 row.value);
                    HotLink &link = links[row.scope];
                    if (row.value > link.peak_utilization) {
                        link.peak_utilization = row.value;
                        link.peak_window = keyIndex(row.key);
                    }
                    if (row.value > opts.saturation_threshold) {
                        ++link.saturated_windows;
                        ++saturated_link_windows;
                    }
                    peak_utilization =
                        std::max(peak_utilization, row.value);
                } else if (row.record == "total") {
                    if (row.metric == "started")
                        view.total_started = row.value;
                    else if (row.metric == "completed")
                        view.total_completed = row.value;
                    else if (row.metric == "failed")
                        view.total_failed = row.value;
                    else if (row.metric == "completed_bytes")
                        view.total_completed_bytes = row.value;
                }
            }
            for (auto &[scope, link] : links) {
                link.link = view.name + ":" + scope;
                hot_links.push_back(link);
            }

            // Flow conservation + windows-vs-totals reconciliation:
            // every started flow is completed or failed, and the
            // windowed series sums exactly to the run totals.
            double started = 0, completed = 0, failed = 0;
            for (const auto &[index, w] : view.windows) {
                started += w.started;
                completed += w.completed;
                failed += w.failed;
            }
            ReportCheck check;
            check.name = "flow-reconciliation (" + view.name + ")";
            check.ok = started == view.total_started &&
                       completed == view.total_completed &&
                       failed == view.total_failed &&
                       view.total_started ==
                           view.total_completed + view.total_failed;
            std::ostringstream detail;
            detail << "windows sum " << started << "/" << completed
                   << "/" << failed << " started/completed/failed; "
                   << "totals " << view.total_started << "/"
                   << view.total_completed << "/" << view.total_failed;
            check.detail = detail.str();
            report.checks.push_back(std::move(check));
            flows.push_back(std::move(view));
        } else if (a.entry.kind == "coll-telemetry") {
            CollView view;
            view.name = baseName(a.entry.path);
            for (const CsvRow &row : parseLongCsv(a.content)) {
                if (row.record == "step") {
                    CollStep &s = view.steps[keyIndex(row.key)];
                    if (row.metric == "start_s")
                        s.start_s = row.value;
                    else if (row.metric == "seconds")
                        s.seconds = row.value;
                    else if (row.metric == "messages")
                        s.messages = row.value;
                    else if (row.metric == "failed")
                        s.failed = row.value;
                    else if (row.metric == "bytes")
                        s.bytes = row.value;
                } else if (row.record == "total") {
                    if (row.metric == "messages")
                        view.total_messages = row.value;
                    else if (row.metric == "failed")
                        view.total_failed = row.value;
                    else if (row.metric == "bytes")
                        view.total_bytes = row.value;
                }
            }
            double messages = 0, failed = 0, bytes = 0;
            for (const auto &[index, s] : view.steps) {
                messages += s.messages;
                failed += s.failed;
                bytes += s.bytes;
            }
            ReportCheck check;
            check.name = "coll-reconciliation (" + view.name + ")";
            check.ok = messages == view.total_messages &&
                       failed == view.total_failed &&
                       bytes == view.total_bytes;
            std::ostringstream detail;
            detail << "per-step sums " << messages << " msgs, "
                   << failed << " failed, " << jsonNumber(bytes)
                   << " B; totals " << view.total_messages << ", "
                   << view.total_failed << ", "
                   << jsonNumber(view.total_bytes);
            check.detail = detail.str();
            report.checks.push_back(std::move(check));
            colls.push_back(std::move(view));
        }
    }

    // Saturation is informational: a hot fabric is a finding, not a
    // broken run. The check always passes; the detail carries the
    // flags.
    {
        ReportCheck check;
        check.name = "saturation";
        check.ok = true;
        std::ostringstream detail;
        if (saturated_link_windows == 0)
            detail << "no link-window above "
                   << fmt(opts.saturation_threshold, 3)
                   << " utilization (peak " << fmt(peak_utilization, 3)
                   << ")";
        else
            detail << saturated_link_windows
                   << " link-window(s) above "
                   << fmt(opts.saturation_threshold, 3) << " (peak "
                   << fmt(peak_utilization, 3) << ")";
        check.detail = detail.str();
        report.checks.push_back(std::move(check));
    }

    // The crash report validates as a report artifact: the check
    // passes when the post-mortem was structurally sound. The crash
    // itself is the *content* of the post-mortem section, not a
    // health failure of this report.
    if (crash.present) {
        ReportCheck check;
        check.name = "crash-post-mortem";
        check.ok = crash.well_formed;
        std::ostringstream detail;
        if (crash.well_formed)
            detail << "reason '" << crash.reason << "', "
                   << crash.threads.size() << " thread(s) captured";
        else
            detail << "malformed crash report (" << crash.problem
                   << ")";
        check.detail = detail.str();
        report.checks.push_back(std::move(check));
    }

    // ---- self-time phases from the manifest timing --------------
    struct PhaseRow
    {
        std::string path;
        std::int64_t calls = 0;
        double seconds = 0;
        double self_seconds = 0;
    };
    std::vector<PhaseRow> phase_rows;
    {
        std::map<std::string, double> self;
        for (const ManifestPhase &p : manifest.phases())
            self[p.path] += p.seconds;
        for (const ManifestPhase &p : manifest.phases()) {
            const std::size_t slash = p.path.rfind('/');
            if (slash == std::string::npos)
                continue;
            const auto parent = self.find(p.path.substr(0, slash));
            if (parent != self.end())
                parent->second -= p.seconds;
        }
        for (const ManifestPhase &p : manifest.phases())
            phase_rows.push_back(
                {p.path, p.calls, p.seconds,
                 std::max(self[p.path], 0.0)});
        std::sort(phase_rows.begin(), phase_rows.end(),
                  [](const PhaseRow &a, const PhaseRow &b) {
                      if (a.self_seconds != b.self_seconds)
                          return a.self_seconds > b.self_seconds;
                      return a.path < b.path;
                  });
        if (phase_rows.size() > opts.top_phases)
            phase_rows.resize(opts.top_phases);
    }

    std::sort(hot_links.begin(), hot_links.end(),
              [](const HotLink &a, const HotLink &b) {
                  if (a.peak_utilization != b.peak_utilization)
                      return a.peak_utilization > b.peak_utilization;
                  return a.link < b.link;
              });
    if (hot_links.size() > opts.top_links)
        hot_links.resize(opts.top_links);

    // ---- render Markdown ----------------------------------------
    const bool have_manifest = !opts.manifest_path.empty();
    std::string title = manifest.tool();
    if (title.empty())
        title = crash.tool.empty() ? "(unknown tool)"
                                   : crash.tool + " (crashed run)";
    std::ostringstream md;
    md << "# wss run report: " << title << "\n\n";
    if (have_manifest) {
        md << "- identity hash: `" << hexString(manifest.identityHash())
           << "`\n";
        md << "- seed: " << manifest.seed() << "\n";
        md << "- jobs: " << manifest.jobs() << "\n";
    }
    md << "- health: " << (report.ok() ? "all checks passed"
                                       : "CHECKS FAILED")
       << "\n\n";

    if (have_manifest) {
        md << "## Configuration\n\n";
        md << "| key | value |\n|---|---|\n";
        for (const auto &[key, value] : manifest.config())
            md << "| " << key << " | " << value << " |\n";
        md << "\n";

        md << "## Artifacts\n\n";
        md << "| path | kind | bytes | verified |\n|---|---|---|---|\n";
        for (const ResolvedArtifact &a : artifacts)
            md << "| " << a.entry.path << " | " << a.entry.kind << " | "
               << a.entry.bytes << " | "
               << (a.hash_ok
                       ? "yes"
                       : (a.resolved_path.empty() ? "MISSING"
                                                  : "HASH MISMATCH"))
               << " |\n";
        md << "\n";
    }

    if (!phase_rows.empty()) {
        md << "## Top self-time phases\n\n";
        md << "| phase | calls | total s | self s |\n|---|---|---|---|"
              "\n";
        for (const PhaseRow &row : phase_rows)
            md << "| " << row.path << " | " << row.calls << " | "
               << fmt(row.seconds) << " | " << fmt(row.self_seconds)
               << " |\n";
        md << "\n";
    }

    if (!hot_links.empty()) {
        md << "## Hottest links\n\n";
        md << "| link | peak utilization | peak window | windows > "
           << fmt(opts.saturation_threshold, 3)
           << " |\n|---|---|---|---|\n";
        for (const HotLink &link : hot_links)
            md << "| " << link.link << " | "
               << fmt(link.peak_utilization, 3) << " | "
               << link.peak_window << " | " << link.saturated_windows
               << " |\n";
        md << "\n";
    }

    for (const FlowView &view : flows) {
        md << "## Congestion timeline: " << view.name << "\n\n";
        md << "| window | started | completed | failed | in flight | "
              "max link util |\n|---|---|---|---|---|---|\n";
        for (const auto &[index, w] : view.windows)
            md << "| " << index << " | " << w.started << " | "
               << w.completed << " | " << w.failed << " | "
               << w.in_flight_end << " | "
               << fmt(w.max_utilization, 3) << " |\n";
        md << "\n";
    }

    for (const CollView &view : colls) {
        md << "## Collective steps: " << view.name << "\n\n";
        md << "| step | start s | seconds | messages | failed | bytes "
              "|\n|---|---|---|---|---|---|\n";
        for (const auto &[index, s] : view.steps)
            md << "| " << index << " | " << fmt(s.start_s) << " | "
               << fmt(s.seconds) << " | " << s.messages << " | "
               << s.failed << " | " << fmt(s.bytes, 10) << " |\n";
        md << "\n";
    }

    if (crash.present) {
        md << "## Post-mortem\n\n";
        md << "- reason: " << (crash.reason.empty() ? "(unknown)"
                                                    : crash.reason)
           << "\n";
        md << "- signal: " << crash.signal_name << " ("
           << static_cast<long>(crash.signal) << ")\n";
        if (!crash.tool.empty())
            md << "- tool: " << crash.tool << "\n";
        if (!crash.identity_hash.empty())
            md << "- config identity hash: `" << crash.identity_hash
               << "`\n";
        md << "- uptime: " << fmt(crash.uptime_s) << " s\n\n";
        if (!crash.counters.empty()) {
            md << "### Event counters\n\n";
            md << "| event | count |\n|---|---|\n";
            for (const auto &[name, count] : crash.counters)
                md << "| " << name << " | "
                   << static_cast<long long>(count) << " |\n";
            md << "\n";
        }
        for (const CrashThreadView &t : crash.threads) {
            md << "### Thread " << t.label << "\n\n";
            md << "- events recorded: "
               << static_cast<long long>(t.events_recorded) << "\n";
            md << "- open phases: ";
            if (t.open_phases.empty()) {
                md << "(none)";
            } else {
                for (std::size_t p = 0; p < t.open_phases.size(); ++p)
                    md << (p ? "/" : "") << t.open_phases[p];
                if (t.open_phase_depth >
                    static_cast<long>(t.open_phases.size()))
                    md << " (+"
                       << t.open_phase_depth -
                              static_cast<long>(t.open_phases.size())
                       << " deeper)";
            }
            md << "\n\n";
            if (!t.events.empty()) {
                md << "| t (s) | kind | a | b | tag |\n"
                      "|---|---|---|---|---|\n";
                const std::size_t first =
                    t.events.size() > opts.crash_events
                        ? t.events.size() - opts.crash_events
                        : 0;
                for (std::size_t e = first; e < t.events.size(); ++e) {
                    const CrashThreadView::Event &ev = t.events[e];
                    md << "| " << fmt(ev.t_s, 6) << " | " << ev.kind
                       << " | " << static_cast<long long>(ev.a)
                       << " | " << static_cast<long long>(ev.b)
                       << " | " << ev.tag << " |\n";
                }
                md << "\n";
            }
        }
    }

    md << "## Health checks\n\n";
    md << "| check | status | detail |\n|---|---|---|\n";
    for (const ReportCheck &check : report.checks)
        md << "| " << check.name << " | "
           << (check.ok ? "ok" : "FAIL") << " | " << check.detail
           << " |\n";
    report.markdown = md.str();

    // ---- render JSON --------------------------------------------
    std::ostringstream js;
    js << "{\n  \"wss_run_report\": 1,\n";
    js << "  \"tool\": \"" << jsonEscape(manifest.tool()) << "\",\n";
    js << "  \"identity_hash\": \""
       << hexString(manifest.identityHash()) << "\",\n";
    js << "  \"seed\": \"" << manifest.seed() << "\",\n";
    js << "  \"jobs\": " << manifest.jobs() << ",\n";
    js << "  \"ok\": " << (report.ok() ? "true" : "false") << ",\n";
    js << "  \"checks\": [";
    for (std::size_t i = 0; i < report.checks.size(); ++i) {
        const ReportCheck &check = report.checks[i];
        js << (i ? ",\n" : "\n") << "    {\"name\": \""
           << jsonEscape(check.name) << "\", \"ok\": "
           << (check.ok ? "true" : "false") << ", \"detail\": \""
           << jsonEscape(check.detail) << "\"}";
    }
    js << (report.checks.empty() ? "]" : "\n  ]") << ",\n";
    js << "  \"phases\": [";
    for (std::size_t i = 0; i < phase_rows.size(); ++i) {
        const PhaseRow &row = phase_rows[i];
        js << (i ? ",\n" : "\n") << "    {\"path\": \""
           << jsonEscape(row.path) << "\", \"calls\": " << row.calls
           << ", \"seconds\": " << jsonNumber(row.seconds)
           << ", \"self_seconds\": " << jsonNumber(row.self_seconds)
           << "}";
    }
    js << (phase_rows.empty() ? "]" : "\n  ]") << ",\n";
    js << "  \"links\": [";
    for (std::size_t i = 0; i < hot_links.size(); ++i) {
        const HotLink &link = hot_links[i];
        js << (i ? ",\n" : "\n") << "    {\"link\": \""
           << jsonEscape(link.link) << "\", \"peak_utilization\": "
           << jsonNumber(link.peak_utilization)
           << ", \"peak_window\": " << link.peak_window
           << ", \"saturated_windows\": " << link.saturated_windows
           << "}";
    }
    js << (hot_links.empty() ? "]" : "\n  ]") << ",\n";
    js << "  \"flow_totals\": {";
    {
        double started = 0, completed = 0, failed = 0, bytes = 0;
        for (const FlowView &view : flows) {
            started += view.total_started;
            completed += view.total_completed;
            failed += view.total_failed;
            bytes += view.total_completed_bytes;
        }
        js << "\"started\": " << jsonNumber(started)
           << ", \"completed\": " << jsonNumber(completed)
           << ", \"failed\": " << jsonNumber(failed)
           << ", \"completed_bytes\": " << jsonNumber(bytes);
    }
    js << "},\n";
    js << "  \"coll_totals\": {";
    {
        double messages = 0, failed = 0, bytes = 0;
        for (const CollView &view : colls) {
            messages += view.total_messages;
            failed += view.total_failed;
            bytes += view.total_bytes;
        }
        js << "\"messages\": " << jsonNumber(messages)
           << ", \"failed\": " << jsonNumber(failed)
           << ", \"bytes\": " << jsonNumber(bytes);
    }
    js << "}";
    if (crash.present) {
        js << ",\n  \"crash\": {\"reason\": \""
           << jsonEscape(crash.reason) << "\", \"signal\": "
           << static_cast<long>(crash.signal) << ", \"signal_name\": \""
           << jsonEscape(crash.signal_name) << "\", \"tool\": \""
           << jsonEscape(crash.tool) << "\", \"identity_hash\": \""
           << jsonEscape(crash.identity_hash)
           << "\", \"uptime_s\": " << jsonNumber(crash.uptime_s)
           << ", \"well_formed\": "
           << (crash.well_formed ? "true" : "false")
           << ", \"threads\": [";
        for (std::size_t i = 0; i < crash.threads.size(); ++i) {
            const CrashThreadView &t = crash.threads[i];
            js << (i ? ", " : "") << "{\"label\": \""
               << jsonEscape(t.label) << "\", \"events_recorded\": "
               << jsonNumber(t.events_recorded)
               << ", \"open_phase_depth\": " << t.open_phase_depth
               << ", \"open_phases\": [";
            for (std::size_t p = 0; p < t.open_phases.size(); ++p)
                js << (p ? ", " : "") << "\""
                   << jsonEscape(t.open_phases[p]) << "\"";
            js << "], \"events\": " << t.events.size() << "}";
        }
        js << "]}";
    }
    js << "\n}\n";
    report.json = js.str();

    return report;
}

} // namespace wss::obs
