/**
 * @file
 * Structured crash post-mortems: drain the flight recorder into a
 * `crash.json` when the process dies abnormally.
 *
 * Three death paths converge here:
 *
 *   - panic() / fatal() (normal context): the util/logging.hpp hook
 *     installed by FlightRecorder::enable() records the event and
 *     calls writeNow() with the message before abort()/exit(1);
 *   - SIGSEGV / SIGABRT / SIGBUS (signal context): install() puts in
 *     sigaction handlers that call writeNow() and then re-raise the
 *     signal with its default disposition, so the exit status still
 *     reports the original signal;
 *   - the watchdog's stall abort, which goes through panic() and so
 *     takes the first path with the culprit already named.
 *
 * writeNow() is async-signal-safe end to end: open()/write() only,
 * manual integer/fixed-point formatting into stack buffers, no
 * allocation, no locks, no iostreams (the rules are documented in
 * util/logging.hpp). A process writes at most one post-mortem — the
 * panic path wins over the SIGABRT handler that follows it.
 *
 * The report is JSON (always parseable by `python3 -m json.tool`,
 * ctest-asserted): reason, signal, tool, config identity hash, a
 * process-wide per-kind event counter snapshot, and per thread the
 * label, open profiler phase stack, and last-N recorded events.
 * `wss report --crash crash.json` renders it as a post-mortem
 * section.
 */

#ifndef WSS_OBS_CRASH_DUMP_HPP
#define WSS_OBS_CRASH_DUMP_HPP

#include <cstdint>
#include <string>
#include <string_view>

namespace wss::obs {

class CrashDump
{
  public:
    /// Route future crashes into @p path: remember the path and
    /// install the SIGSEGV/SIGABRT/SIGBUS handlers. Idempotent
    /// (the first path wins until resetForTesting()).
    static void install(const std::string &path);

    static bool installed();

    /// Label the run ("sweep", "coll", ...) in the report.
    static void setTool(std::string_view tool);

    /// Config/seed/jobs identity hash (RunManifest::hashBytes over
    /// the identity JSON, artifacts excluded — at crash time none
    /// were finalized) echoed in the report so a post-mortem can be
    /// matched to its configuration.
    static void setIdentity(std::uint64_t hash);

    /**
     * Write the post-mortem now. Async-signal-safe. Returns true if
     * this call wrote the file; false when not installed or when a
     * report was already written (every later caller loses the race
     * exactly once, process-wide). @p sig is the delivering signal
     * number, 0 for the panic()/fatal() path.
     */
    static bool writeNow(const char *reason, int sig);

    /// Installed output path ("" when not installed).
    static const char *path();

    /// Forget the path, restore previous signal dispositions, rearm
    /// the write-once latch. Test-only.
    static void resetForTesting();
};

} // namespace wss::obs

#endif // WSS_OBS_CRASH_DUMP_HPP
