#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>

#include "obs/flight_recorder.hpp"
#include "obs/watchdog.hpp"
#include "util/logging.hpp"

namespace wss::sim {

Simulator::Simulator(Network &network, Workload &workload,
                     const SimConfig &cfg)
    : network_(network), workload_(workload), cfg_(cfg), rng_(cfg.seed)
{
    if (cfg.warmup < 0 || cfg.measure < 1 || cfg.drain_limit < 0)
        fatal("Simulator: bad phase configuration");
    if (cfg.observe_sample_every < 0)
        fatal("Simulator: observe_sample_every must be >= 0");
    source_.resize(network.terminalCount());
    inject_mask_.assign(
        (static_cast<std::size_t>(network.terminalCount()) + 63) / 64,
        0);
    current_vc_.assign(network.terminalCount(), 0);
    next_vc_.assign(network.terminalCount(), 0);
    front_head_.assign(
        static_cast<std::size_t>(network.terminalCount()), 0);
    // At most one packet per terminal per cycle can fall in the
    // measurement window, so this bound makes the latency sampler
    // allocation-free for the whole run (capped: a huge fabric's
    // sampler grows amortized past 1M samples instead of reserving
    // gigabytes it will likely never fill).
    packet_latency_q_.reserve(std::min<std::size_t>(
        static_cast<std::size_t>(network.terminalCount()) *
            static_cast<std::size_t>(cfg.measure),
        std::size_t{1} << 20));
    emit_ = [this](int src, int dst, int flits) {
        emitPacket(src, dst, flits);
    };
    if (cfg.observe)
        setupObs();
}

void
Simulator::setupObs()
{
    obs_ = std::make_unique<ObsState>();
    obs_->data = std::make_shared<obs::SimObservation>();
    auto &data = *obs_->data;
    data.routers = static_cast<std::size_t>(network_.routerCount());
    data.links = static_cast<std::size_t>(network_.linkCount());
    data.link_channel_count.assign(network_.linkChannelCount().begin(),
                                   network_.linkChannelCount().end());

    network_.instrument(data.registry);

    // Power-of-two occupancy buckets up to each router's shared-
    // buffer capacity, with a dedicated <=0 bucket for idle cycles.
    for (int r = 0; r < network_.routerCount(); ++r) {
        const RouterConfig &cfg = network_.router(r).config();
        const std::int64_t capacity =
            static_cast<std::int64_t>(cfg.ports) * cfg.buffer_per_port;
        std::vector<double> edges{0.0};
        for (std::int64_t e = 1; e < capacity; e *= 2)
            edges.push_back(static_cast<double>(e));
        edges.push_back(static_cast<double>(capacity));
        std::string name = "r";
        name += std::to_string(r);
        name += ".buffer_occupancy";
        obs_->occupancy.push_back(
            data.registry.histogram(name, std::move(edges)));
    }

    // Delivery is a terminal-side event (ejectAll), so hand every
    // terminal a handle on its router's flits_delivered cell — this
    // keeps the per-router counters reconcilable with
    // SimResult::flits_delivered by construction.
    for (int t = 0; t < network_.terminalCount(); ++t) {
        std::string name = "r";
        name += std::to_string(network_.routerOfTerminal(t));
        name += ".flits_delivered";
        obs_->delivered.push_back(data.registry.counter(name));
    }

    // Every counter now exists, so phase deltas line up name-by-name.
    obs_->last_snapshot = data.registry.snapshot();
    obs_->last_link_flits = network_.linkFlitsForwarded();
}

void
Simulator::closePhase(Cycle end)
{
    auto &data = *obs_->data;
    const std::size_t p = obs_->next_phase;
    data.phase_cycles[p] = end - obs_->phase_start;

    obs::MetricsSnapshot snap = data.registry.snapshot();
    data.phase_counters[p] =
        obs::MetricsSnapshot::delta(snap, obs_->last_snapshot);
    obs_->last_snapshot = std::move(snap);

    std::vector<std::uint64_t> flits = network_.linkFlitsForwarded();
    data.link_flits[p].resize(flits.size());
    for (std::size_t l = 0; l < flits.size(); ++l)
        data.link_flits[p][l] = flits[l] - obs_->last_link_flits[l];
    obs_->last_link_flits = std::move(flits);

    obs_->phase_start = end;
    ++obs_->next_phase;
}

void
Simulator::beginCycleObs(Cycle now)
{
    // Phase boundaries: warmup ends at cfg.warmup, measurement at
    // cfg.warmup + cfg.measure; close them before any of this
    // cycle's counter bumps so each event lands in its own phase.
    if (obs_->next_phase == 0 && now >= cfg_.warmup)
        closePhase(cfg_.warmup);
    if (obs_->next_phase == 1 && now >= cfg_.warmup + cfg_.measure)
        closePhase(cfg_.warmup + cfg_.measure);
}

void
Simulator::endCycleObs(Cycle now)
{
    for (std::size_t r = 0; r < obs_->occupancy.size(); ++r)
        obs_->occupancy[r].record(static_cast<double>(
            network_.router(static_cast<int>(r)).bufferedFlits()));
    if (cfg_.observe_sample_every > 0 &&
        now % cfg_.observe_sample_every == 0) {
        obs::TimelineSample sample;
        sample.cycle = now;
        sample.flits_offered =
            static_cast<std::uint64_t>(flits_generated_);
        sample.flits_accepted =
            static_cast<std::uint64_t>(flits_delivered_);
        sample.flits_in_flight =
            static_cast<std::uint64_t>(network_.flitsInFlight());
        obs_->data->timeline.push_back(sample);
    }
}

void
Simulator::finalizeObs(Cycle end)
{
    // Close whatever phases remain; a run that ended early leaves
    // later phases at zero cycles.
    while (obs_->next_phase < obs::kNumPhases)
        closePhase(end);
}

void
Simulator::emitPacket(int src, int dst, int flits)
{
    if (src < 0 || src >= network_.terminalCount() || dst < 0 ||
        dst >= network_.terminalCount())
        fatal("workload emitted an out-of-range terminal (", src,
              " -> ", dst, ")");
    if (dst == src)
        return; // self-traffic never enters the fabric
    const std::uint64_t id = next_packet_id_++;
    const Cycle now = gen_now_;
    for (int i = 0; i < flits; ++i) {
        SourceFlit sf;
        sf.packet_id = id;
        sf.created = now;
        sf.dst = dst;
        sf.head = i == 0;
        sf.tail = i == flits - 1;
        if (source_[src].empty())
            front_head_[src] = sf.head ? 1 : 0;
        source_[src].push_back(sf);
        ++flits_generated_;
    }
    inject_mask_[static_cast<std::size_t>(src) >> 6] |=
        std::uint64_t{1} << (src & 63);
    if (gen_in_window_)
        ++measured_created_;
}

void
Simulator::generate(Cycle now)
{
    gen_now_ = now;
    gen_in_window_ =
        cfg_.run_to_exhaustion ||
        (now >= cfg_.warmup && now < cfg_.warmup + cfg_.measure);
    workload_.generate(now, rng_, emit_);
}

void
Simulator::inject(Cycle now)
{
    // Sweep only terminals with queued flits, in ascending id order
    // (the same order the dense loop used).
    for (std::size_t w = 0; w < inject_mask_.size(); ++w) {
        std::uint64_t word = inject_mask_[w];
        while (word) {
            const int t =
                static_cast<int>(w) * 64 + std::countr_zero(word);
            const std::uint64_t bit = word & (~word + 1);
            word &= word - 1;
            if (!network_.injectReady(t, now)) {
                // Blocked: a queued head still advances the VC
                // cursor, exactly as the full attempt always did —
                // but the (possibly huge, cold) source ring is never
                // touched.
                if (front_head_[t]) {
                    current_vc_[t] = next_vc_[t];
                    next_vc_[t] = next_vc_[t] + 1 == network_.vcs()
                                      ? 0
                                      : next_vc_[t] + 1;
                }
                continue;
            }
            auto &queue = source_[t];
            const SourceFlit &sf = queue.front();
            if (sf.head) {
                // New packet: pick its VC (round-robin per terminal).
                current_vc_[t] = next_vc_[t];
                next_vc_[t] = next_vc_[t] + 1 == network_.vcs()
                                  ? 0
                                  : next_vc_[t] + 1;
            }
            Flit flit;
            flit.packet_id = sf.packet_id;
            flit.src = t;
            flit.dst = sf.dst;
            flit.vc = current_vc_[t];
            flit.head = sf.head;
            flit.tail = sf.tail;
            flit.created = sf.created;
            flit.injected = now;
            if (network_.tryInject(t, now, flit)) {
                queue.pop_front();
                ++flits_injected_;
                if (queue.empty())
                    inject_mask_[w] &= ~bit;
                else
                    front_head_[t] = queue.front().head ? 1 : 0;
            }
        }
    }
}

void
Simulator::ejectAll(Cycle now)
{
    const bool in_window =
        cfg_.run_to_exhaustion ||
        (now >= cfg_.warmup && now < cfg_.warmup + cfg_.measure);
    // Sweep only terminals with flits in flight toward them.
    // Ascending terminal order is load-bearing: the floating-point
    // statistics accumulate in the same order the dense loop used.
    const auto &pending = network_.ejectPending();
    for (std::size_t w = 0; w < pending.size(); ++w) {
        std::uint64_t word = pending[w];
        while (word) {
            const int t =
                static_cast<int>(w) * 64 + std::countr_zero(word);
            word &= word - 1;
            const auto flit = network_.eject(t, now);
            if (!flit)
                continue; // still in flight on the channel
            if (flit->dst != t)
                panic("flit for terminal ", flit->dst, " ejected at ",
                      t);
            ++flits_delivered_;
            if (obs_)
                obs_->delivered[t].inc();
            if (in_window)
                ++window_flits_ejected_;
            if (!flit->tail)
                continue;
            // Tail: the whole packet has arrived.
            workload_.packetDelivered(now);
            const bool measured =
                cfg_.run_to_exhaustion ||
                (flit->created >= cfg_.warmup &&
                 flit->created < cfg_.warmup + cfg_.measure);
            if (measured) {
                const auto latency =
                    static_cast<double>(now - flit->created);
                packet_latency_.add(latency);
                packet_latency_q_.add(latency);
                network_latency_.add(
                    static_cast<double>(now - flit->injected));
                hops_.add(static_cast<double>(flit->hops));
                ++measured_finished_;
            }
        }
    }
}

SimResult
Simulator::run()
{
    const Cycle window_end = cfg_.warmup + cfg_.measure;
    const Cycle hard_stop = window_end + cfg_.drain_limit;

    Cycle now = 0;
    for (;; ++now) {
        if (obs_)
            beginCycleObs(now);
        if (cfg_.on_cycle)
            cfg_.on_cycle(network_, now);
        if (cfg_.run_to_exhaustion ? !workload_.exhausted(now)
                                   : now < window_end)
            generate(now);
        // Once generation stops we just drain what is in flight.
        inject(now);
        ejectAll(now);
        network_.step(now);
        if (obs_)
            endCycleObs(now);

        // Liveness mark every 64k cycles: one test on a register per
        // cycle, so the hot loop stays at PR-4 speed; long fabric
        // replays still publish progress for the watchdog.
        if ((now & 0xffff) == 0xffff) {
            obs::heartbeat();
            obs::recordEvent(obs::EventKind::SimEpoch, now,
                             measured_created_ - measured_finished_,
                             "sim-cycle");
        }

        if (cfg_.run_to_exhaustion) {
            const bool done = workload_.exhausted(now) &&
                              measured_finished_ == measured_created_;
            if (done || now >= hard_stop)
                break;
        } else if (now >= window_end) {
            const bool drained = measured_finished_ == measured_created_;
            if (drained || now >= hard_stop)
                break;
        }
    }

    SimResult result;
    result.offered = workload_.offeredLoad();
    result.avg_packet_latency = packet_latency_.mean();
    result.avg_network_latency = network_latency_.mean();
    result.avg_hops = hops_.mean();
    result.packets_measured = measured_created_;
    result.packets_finished = measured_finished_;
    result.stable = measured_finished_ == measured_created_;
    result.accepted =
        static_cast<double>(window_flits_ejected_) /
        (static_cast<double>(network_.terminalCount()) *
         static_cast<double>(cfg_.measure));
    result.end_cycle = now;
    result.flits_delivered = flits_delivered_;
    result.flits_injected = flits_injected_;

    // Flit conservation: everything injected is either delivered or
    // still in the fabric. A mismatch means a router dropped or
    // duplicated a flit — always a wss bug, never a workload effect.
    const std::int64_t in_flight = network_.flitsInFlight();
    if (flits_injected_ != flits_delivered_ + in_flight)
        panic("Simulator: flit conservation violated: injected ",
              flits_injected_, " != delivered ", flits_delivered_,
              " + in-flight ", in_flight);

    if (obs_) {
        finalizeObs(now + 1);
        result.observation = obs_->data;
    }
    result.p99_packet_latency = packet_latency_q_.empty()
                                    ? 0.0
                                    : packet_latency_q_.quantile(0.99);
    return result;
}

} // namespace wss::sim
