#include "sim/simulator.hpp"

#include "util/logging.hpp"

namespace wss::sim {

Simulator::Simulator(Network &network, Workload &workload,
                     const SimConfig &cfg)
    : network_(network), workload_(workload), cfg_(cfg), rng_(cfg.seed)
{
    if (cfg.warmup < 0 || cfg.measure < 1 || cfg.drain_limit < 0)
        fatal("Simulator: bad phase configuration");
    source_.resize(network.terminalCount());
    current_vc_.assign(network.terminalCount(), 0);
    vc_counter_.assign(network.terminalCount(), 0);
}

void
Simulator::generate(Cycle now)
{
    const bool in_window =
        cfg_.run_to_exhaustion ||
        (now >= cfg_.warmup && now < cfg_.warmup + cfg_.measure);
    workload_.generate(now, rng_, [&](int src, int dst, int flits) {
        if (src < 0 || src >= network_.terminalCount() || dst < 0 ||
            dst >= network_.terminalCount())
            fatal("workload emitted an out-of-range terminal (", src,
                  " -> ", dst, ")");
        if (dst == src)
            return; // self-traffic never enters the fabric
        const std::uint64_t id = next_packet_id_++;
        for (int i = 0; i < flits; ++i) {
            Flit flit;
            flit.packet_id = id;
            flit.src = src;
            flit.dst = dst;
            flit.head = i == 0;
            flit.tail = i == flits - 1;
            flit.created = now;
            source_[src].push_back(flit);
        }
        if (in_window)
            ++measured_created_;
    });
}

void
Simulator::inject(Cycle now)
{
    for (int t = 0; t < network_.terminalCount(); ++t) {
        auto &queue = source_[t];
        if (queue.empty())
            continue;
        Flit &flit = queue.front();
        if (flit.head) {
            // New packet: pick its VC (round-robin per terminal).
            current_vc_[t] = static_cast<std::int16_t>(
                vc_counter_[t]++ % network_.vcs());
        }
        flit.vc = current_vc_[t];
        flit.injected = now;
        if (network_.tryInject(t, now, flit))
            queue.pop_front();
    }
}

void
Simulator::ejectAll(Cycle now)
{
    const bool in_window =
        cfg_.run_to_exhaustion ||
        (now >= cfg_.warmup && now < cfg_.warmup + cfg_.measure);
    for (int t = 0; t < network_.terminalCount(); ++t) {
        const auto flit = network_.eject(t, now);
        if (!flit)
            continue;
        if (flit->dst != t)
            panic("flit for terminal ", flit->dst, " ejected at ", t);
        ++flits_delivered_;
        if (in_window)
            ++window_flits_ejected_;
        if (!flit->tail)
            continue;
        // Tail: the whole packet has arrived.
        workload_.packetDelivered(now);
        const bool measured =
            cfg_.run_to_exhaustion ||
            (flit->created >= cfg_.warmup &&
             flit->created < cfg_.warmup + cfg_.measure);
        if (measured) {
            const auto latency =
                static_cast<double>(now - flit->created);
            packet_latency_.add(latency);
            packet_latency_q_.add(latency);
            network_latency_.add(
                static_cast<double>(now - flit->injected));
            hops_.add(static_cast<double>(flit->hops));
            ++measured_finished_;
        }
    }
}

SimResult
Simulator::run()
{
    const Cycle window_end = cfg_.warmup + cfg_.measure;
    const Cycle hard_stop = window_end + cfg_.drain_limit;

    Cycle now = 0;
    for (;; ++now) {
        if (cfg_.on_cycle)
            cfg_.on_cycle(network_, now);
        if (cfg_.run_to_exhaustion ? !workload_.exhausted(now)
                                   : now < window_end)
            generate(now);
        // Once generation stops we just drain what is in flight.
        inject(now);
        ejectAll(now);
        network_.step(now);

        if (cfg_.run_to_exhaustion) {
            const bool done = workload_.exhausted(now) &&
                              measured_finished_ == measured_created_;
            if (done || now >= hard_stop)
                break;
        } else if (now >= window_end) {
            const bool drained = measured_finished_ == measured_created_;
            if (drained || now >= hard_stop)
                break;
        }
    }

    SimResult result;
    result.offered = workload_.offeredLoad();
    result.avg_packet_latency = packet_latency_.mean();
    result.avg_network_latency = network_latency_.mean();
    result.avg_hops = hops_.mean();
    result.packets_measured = measured_created_;
    result.packets_finished = measured_finished_;
    result.stable = measured_finished_ == measured_created_;
    result.accepted =
        static_cast<double>(window_flits_ejected_) /
        (static_cast<double>(network_.terminalCount()) *
         static_cast<double>(cfg_.measure));
    result.end_cycle = now;
    result.flits_delivered = flits_delivered_;
    QuantileSampler q = packet_latency_q_;
    result.p99_packet_latency = q.quantile(0.99);
    return result;
}

} // namespace wss::sim
