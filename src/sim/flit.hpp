/**
 * @file
 * Flits and packets — the units of the cycle-accurate fabric
 * simulator (paper Section VI, Fig. 20).
 *
 * The simulator models wormhole switching with virtual channels:
 * packets are split into flits; the head flit acquires a route and a
 * VC, body flits follow it, and the tail flit releases the VC. Flit
 * length is chosen so one flit matches the SSC line rate per
 * simulation cycle (the paper uses 20 ns cycles and sizes flits to
 * the TH-5 line rate).
 */

#ifndef WSS_SIM_FLIT_HPP
#define WSS_SIM_FLIT_HPP

#include <cstdint>

namespace wss::sim {

/// Simulation time in cycles.
using Cycle = std::int64_t;

/**
 * One flit in flight.
 */
struct Flit
{
    /// Identifier of the packet this flit belongs to.
    std::uint64_t packet_id = 0;
    /// Source terminal (external port) id.
    std::int32_t src = 0;
    /// Destination terminal id.
    std::int32_t dst = 0;
    /// Virtual channel currently carrying the flit (set hop by hop).
    std::int16_t vc = 0;
    /// True for the first flit of a packet (triggers RC + VA).
    bool head = false;
    /// True for the last flit (releases the VC); single-flit packets
    /// are both head and tail.
    bool tail = false;
    /// Cycle the packet was created (enqueued at the source).
    Cycle created = 0;
    /// Cycle the head flit entered the network proper.
    Cycle injected = 0;
    /// Router hops taken so far (for hop statistics).
    std::int16_t hops = 0;
};

} // namespace wss::sim

#endif // WSS_SIM_FLIT_HPP
