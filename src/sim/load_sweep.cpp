#include "sim/load_sweep.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace wss::sim {

LoadPoint
runLoadPoint(const NetworkFactory &make_network,
             const WorkloadFactory &make_workload, double rate,
             const SimConfig &cfg, SimResult *full)
{
    auto network = make_network();
    auto workload = make_workload(rate);
    Simulator sim(*network, *workload, cfg);
    const SimResult r = sim.run();
    if (full)
        *full = r;

    LoadPoint point;
    point.offered = r.offered;
    point.accepted = r.accepted;
    point.avg_latency = r.avg_packet_latency;
    point.p99_latency = r.p99_packet_latency;
    point.stable = r.stable;
    return point;
}

SweepResult
finalizeSweep(std::vector<LoadPoint> points)
{
    if (points.empty())
        fatal("finalizeSweep: need at least one point");

    SweepResult result;
    result.points = std::move(points);

    // Zero-load latency: explicitly the minimum-offered point, not
    // whatever happens to come first in the vector.
    const auto min_point = std::min_element(
        result.points.begin(), result.points.end(),
        [](const LoadPoint &a, const LoadPoint &b) {
            return a.offered < b.offered;
        });
    result.zero_load_latency = min_point->avg_latency;

    // Saturation throughput: accepted throughput of saturated runs
    // is an artifact of the drain cap, so only stable points count.
    bool any_stable = false;
    for (const auto &p : result.points) {
        if (!p.stable)
            continue;
        any_stable = true;
        result.saturation_throughput =
            std::max(result.saturation_throughput, p.accepted);
    }
    if (!any_stable) {
        for (const auto &p : result.points)
            result.saturation_throughput =
                std::max(result.saturation_throughput, p.accepted);
        warn("finalizeSweep: no stable point in the sweep; saturation "
             "throughput of ",
             result.saturation_throughput,
             " includes saturated runs and is unreliable");
    }
    return result;
}

SweepResult
sweepLoad(const NetworkFactory &make_network,
          const WorkloadFactory &make_workload,
          const std::vector<double> &rates, const SimConfig &cfg)
{
    if (rates.empty())
        fatal("sweepLoad: need at least one rate");

    std::vector<LoadPoint> points;
    points.reserve(rates.size());
    for (double rate : rates)
        points.push_back(
            runLoadPoint(make_network, make_workload, rate, cfg));
    return finalizeSweep(std::move(points));
}

std::vector<double>
linearRates(double max_rate, int points)
{
    if (points < 1 || !std::isfinite(max_rate) || max_rate <= 0.0)
        fatal("linearRates: need positive finite rate and point count");
    std::vector<double> rates(points);
    for (int i = 0; i < points; ++i)
        rates[i] = max_rate * (i + 1) / points;
    return rates;
}

std::vector<double>
geometricRates(double min_rate, double max_rate, int points)
{
    if (points < 1 || !std::isfinite(min_rate) ||
        !std::isfinite(max_rate) || min_rate <= 0.0 ||
        max_rate < min_rate)
        fatal("geometricRates: need 0 < min_rate <= max_rate (finite) "
              "and a positive point count");
    if (points == 1)
        return {max_rate};

    std::vector<double> rates(points);
    const double ratio = std::pow(max_rate / min_rate,
                                  1.0 / static_cast<double>(points - 1));
    double rate = min_rate;
    for (int i = 0; i < points; ++i, rate *= ratio)
        rates[i] = rate;
    // Pin the endpoints exactly (the multiplication drifts in the
    // last few ulps).
    rates.front() = min_rate;
    rates.back() = max_rate;
    return rates;
}

} // namespace wss::sim
