#include "sim/load_sweep.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace wss::sim {

SweepResult
sweepLoad(const NetworkFactory &make_network,
          const WorkloadFactory &make_workload,
          const std::vector<double> &rates, const SimConfig &cfg)
{
    if (rates.empty())
        fatal("sweepLoad: need at least one rate");

    SweepResult result;
    for (double rate : rates) {
        auto network = make_network();
        auto workload = make_workload(rate);
        Simulator sim(*network, *workload, cfg);
        const SimResult r = sim.run();

        LoadPoint point;
        point.offered = r.offered;
        point.accepted = r.accepted;
        point.avg_latency = r.avg_packet_latency;
        point.p99_latency = r.p99_packet_latency;
        point.stable = r.stable;
        result.points.push_back(point);

        result.saturation_throughput =
            std::max(result.saturation_throughput, r.accepted);
    }
    result.zero_load_latency = result.points.front().avg_latency;
    return result;
}

std::vector<double>
linearRates(double max_rate, int points)
{
    if (points < 1 || max_rate <= 0.0)
        fatal("linearRates: need positive rate and point count");
    std::vector<double> rates(points);
    for (int i = 0; i < points; ++i)
        rates[i] = max_rate * (i + 1) / points;
    return rates;
}

} // namespace wss::sim
