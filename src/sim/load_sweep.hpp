/**
 * @file
 * Latency-versus-load sweeps — the x-axes of Figs. 21-24.
 */

#ifndef WSS_SIM_LOAD_SWEEP_HPP
#define WSS_SIM_LOAD_SWEEP_HPP

#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace wss::sim {

/// One point of a latency-load curve.
struct LoadPoint
{
    double offered = 0.0;
    double accepted = 0.0;
    double avg_latency = 0.0;
    double p99_latency = 0.0;
    bool stable = false;
};

/// A whole curve plus its summary metrics.
struct SweepResult
{
    std::vector<LoadPoint> points;
    /// Latency of the lowest-load point (the "zero-load latency").
    double zero_load_latency = 0.0;
    /// Highest accepted throughput seen (flits/terminal/cycle) -- the
    /// saturation throughput once the curve has flattened.
    double saturation_throughput = 0.0;
};

/// Builds a fresh network for one run (state is not reusable).
using NetworkFactory = std::function<std::unique_ptr<Network>()>;
/// Builds the workload for a given offered load.
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(double rate)>;

/**
 * Run the simulator once per rate and collect the curve.
 */
SweepResult sweepLoad(const NetworkFactory &make_network,
                      const WorkloadFactory &make_workload,
                      const std::vector<double> &rates,
                      const SimConfig &cfg);

/// Convenience: evenly spaced rates in (0, max_rate].
std::vector<double> linearRates(double max_rate, int points);

} // namespace wss::sim

#endif // WSS_SIM_LOAD_SWEEP_HPP
