/**
 * @file
 * Latency-versus-load sweeps — the x-axes of Figs. 21-24.
 *
 * The single-point runner (runLoadPoint) and the curve summariser
 * (finalizeSweep) are exposed so `exec::SweepRunner` can fan the
 * same computation out across a thread pool while staying
 * bit-identical to the serial sweepLoad() path.
 */

#ifndef WSS_SIM_LOAD_SWEEP_HPP
#define WSS_SIM_LOAD_SWEEP_HPP

#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace wss::sim {

/// One point of a latency-load curve.
struct LoadPoint
{
    double offered = 0.0;
    double accepted = 0.0;
    double avg_latency = 0.0;
    double p99_latency = 0.0;
    bool stable = false;
};

/// A whole curve plus its summary metrics.
struct SweepResult
{
    std::vector<LoadPoint> points;
    /// Latency of the minimum-offered-rate point (the "zero-load
    /// latency").
    double zero_load_latency = 0.0;
    /// Highest accepted throughput over the *stable* points
    /// (flits/terminal/cycle) — the saturation throughput once the
    /// curve has flattened. Falls back to the overall maximum (with
    /// a warning) when every point is saturated.
    double saturation_throughput = 0.0;
};

/// Builds a fresh network for one run (state is not reusable).
using NetworkFactory = std::function<std::unique_ptr<Network>()>;
/// Builds the workload for a given offered load.
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(double rate)>;

/**
 * Run one sweep point: build a fresh network and workload at
 * @p rate, simulate, and condense to a LoadPoint. This is *the*
 * shared code path for serial and parallel sweeps — any change here
 * changes both identically.
 *
 * @param full  optional out-parameter receiving the complete
 *              SimResult of the run.
 */
LoadPoint runLoadPoint(const NetworkFactory &make_network,
                       const WorkloadFactory &make_workload, double rate,
                       const SimConfig &cfg, SimResult *full = nullptr);

/**
 * Derive the curve summary (zero-load latency, saturation
 * throughput) from a complete set of points.
 */
SweepResult finalizeSweep(std::vector<LoadPoint> points);

/**
 * Run the simulator once per rate (serially, in the calling thread)
 * and collect the curve. For parallel execution use
 * exec::SweepRunner, which produces bit-identical results.
 */
SweepResult sweepLoad(const NetworkFactory &make_network,
                      const WorkloadFactory &make_workload,
                      const std::vector<double> &rates,
                      const SimConfig &cfg);

/// Convenience: evenly spaced rates in (0, max_rate].
std::vector<double> linearRates(double max_rate, int points);

/**
 * Geometrically spaced rates in [min_rate, max_rate], denser toward
 * the low end — the natural sampling for latency-vs-load curves
 * that need resolution near zero load but must still reach
 * saturation. Endpoints are exact.
 */
std::vector<double> geometricRates(double min_rate, double max_rate,
                                   int points);

} // namespace wss::sim

#endif // WSS_SIM_LOAD_SWEEP_HPP
