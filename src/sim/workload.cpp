#include "sim/workload.hpp"

#include "util/logging.hpp"

namespace wss::sim {

SyntheticWorkload::SyntheticWorkload(
    std::unique_ptr<TrafficPattern> pattern, double rate, int packet_size)
    : pattern_(std::move(pattern)), rate_(rate), packet_size_(packet_size)
{
    if (!pattern_)
        fatal("SyntheticWorkload: pattern is required");
    if (rate_ < 0.0)
        fatal("SyntheticWorkload: rate must be non-negative");
    if (packet_size_ < 1)
        fatal("SyntheticWorkload: packet size must be >= 1");
    if (rate_ / packet_size_ > 1.0)
        fatal("SyntheticWorkload: rate ", rate_, " with packet size ",
              packet_size_, " exceeds one packet per cycle");
}

void
SyntheticWorkload::generate(Cycle, Rng &rng, const EmitPacket &emit)
{
    const double p = rate_ / packet_size_;
    const int n = pattern_->terminals();
    for (int src = 0; src < n; ++src) {
        if (rng.nextBool(p))
            emit(src, pattern_->destination(src, rng), packet_size_);
    }
}

std::string
SyntheticWorkload::name() const
{
    return pattern_->name();
}

} // namespace wss::sim
