/**
 * @file
 * Synthetic traffic patterns — paper Section VI (Figs. 22, 23).
 *
 * Destination maps in the Booksim tradition: uniform random, the
 * classic permutations (transpose, bit-complement, bit-reverse,
 * shuffle), tornado/neighbor offsets, and the paper's "asymmetric"
 * pattern (a hotspot subset of terminals receives a share of all
 * traffic).
 */

#ifndef WSS_SIM_TRAFFIC_HPP
#define WSS_SIM_TRAFFIC_HPP

#include <memory>
#include <string>

#include "util/rng.hpp"

namespace wss::sim {

/**
 * A stateless destination map over @p terminals endpoints.
 */
class TrafficPattern
{
  public:
    explicit TrafficPattern(int terminals) : terminals_(terminals) {}
    virtual ~TrafficPattern() = default;

    int terminals() const { return terminals_; }

    /// Destination terminal for a packet from @p src (may use @p rng).
    virtual int destination(int src, Rng &rng) const = 0;

    /// Pattern name for reports.
    virtual std::string name() const = 0;

  protected:
    int terminals_;
};

/// Uniform random over all other terminals.
std::unique_ptr<TrafficPattern> uniformTraffic(int terminals);

/// Matrix transpose: src (r, c) -> (c, r) over a near-square layout.
std::unique_ptr<TrafficPattern> transposeTraffic(int terminals);

/// Bit complement: dst = ~src (within the terminal id width).
std::unique_ptr<TrafficPattern> bitComplementTraffic(int terminals);

/// Bit reverse: dst = reverse of src's bits.
std::unique_ptr<TrafficPattern> bitReverseTraffic(int terminals);

/// Perfect shuffle: dst = rotate-left-by-1 of src's bits.
std::unique_ptr<TrafficPattern> shuffleTraffic(int terminals);

/// Tornado: dst = src + terminals/2 - 1 (mod terminals).
std::unique_ptr<TrafficPattern> tornadoTraffic(int terminals);

/**
 * Asymmetric/hotspot: with probability @p hot_fraction the packet
 * goes to one of the first @p hot_terminals endpoints; otherwise
 * uniform (the paper's "asymmetric traffic").
 */
std::unique_ptr<TrafficPattern> asymmetricTraffic(int terminals,
                                                  int hot_terminals,
                                                  double hot_fraction);

/**
 * Factory by name: "uniform", "transpose", "bitcomp", "bitrev",
 * "shuffle", "tornado", "asymmetric". Calls fatal() on unknown names.
 */
std::unique_ptr<TrafficPattern> makeTraffic(const std::string &name,
                                            int terminals);

} // namespace wss::sim

#endif // WSS_SIM_TRAFFIC_HPP
