/**
 * @file
 * Arena for buffered flits.
 *
 * Credit flow control bounds the flits alive inside a fabric's input
 * buffers to the total buffer capacity (ports x buffer_per_port,
 * summed over routers), so the Network sizes one pool to exactly that
 * and every router's VC queues become intrusive linked lists of pool
 * slots: steady-state simulation performs zero heap allocation, and a
 * pool-exhaustion panic doubles as a credit-protocol check.
 */

#ifndef WSS_SIM_FLIT_POOL_HPP
#define WSS_SIM_FLIT_POOL_HPP

#include <cstdint>
#include <vector>

#include "sim/flit.hpp"
#include "util/logging.hpp"

namespace wss::sim {

class FlitPool
{
  public:
    using Index = std::int32_t;
    static constexpr Index kNil = -1;

    /// Size the arena; invalidates every outstanding index.
    void
    reserve(std::size_t slots)
    {
        slots_.resize(slots);
        free_head_ = kNil;
        for (std::size_t i = slots; i-- > 0;) {
            slots_[i].next = free_head_;
            free_head_ = static_cast<Index>(i);
        }
        in_use_ = 0;
    }

    Index
    alloc(const Flit &flit)
    {
        if (free_head_ == kNil)
            panic("FlitPool: exhausted (", slots_.size(),
                  " slots); credit flow control should bound live "
                  "flits to the total buffer capacity");
        const Index slot = free_head_;
        free_head_ = slots_[slot].next;
        slots_[slot].flit = flit;
        slots_[slot].next = kNil;
        ++in_use_;
        return slot;
    }

    void
    release(Index slot)
    {
        slots_[slot].next = free_head_;
        free_head_ = slot;
        --in_use_;
    }

    Flit &at(Index slot) { return slots_[slot].flit; }
    const Flit &at(Index slot) const { return slots_[slot].flit; }

    Index next(Index slot) const { return slots_[slot].next; }
    void setNext(Index slot, Index next) { slots_[slot].next = next; }

    std::size_t capacity() const { return slots_.size(); }
    std::size_t inUse() const { return in_use_; }

  private:
    struct Slot
    {
        Flit flit;
        Index next = kNil;
    };

    std::vector<Slot> slots_;
    Index free_head_ = kNil;
    std::size_t in_use_ = 0;
};

} // namespace wss::sim

#endif // WSS_SIM_FLIT_POOL_HPP
