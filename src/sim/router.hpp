/**
 * @file
 * Cycle-accurate virtual-channel router — paper Section VI, Fig. 20.
 *
 * Models the four-stage switch microarchitecture the paper simulates
 * with Booksim2: route computation (RC), virtual-channel allocation
 * (VA), switch allocation (SA), and switch traversal (ST). Input
 * ports hold a shared flit buffer divided into per-VC queues
 * (the paper's "shared buffer policy for all the input ports");
 * credit-based flow control tracks the downstream shared pool as an
 * aggregate credit count plus per-output-VC ownership.
 *
 * Timing: a head flit that arrives in cycle t completes RC in
 * t + rc_delay, may win VA and SA in that same cycle, and spends
 * pipeline_delay cycles in the output stage (VA/SA/ST pipeline
 * depth), so the zero-load router traversal is
 * rc_delay + pipeline_delay cycles. The RC delay differs between
 * ingress (terminal-facing) and transit inputs to model the paper's
 * proprietary routing optimization (Fig. 22): with a fixed topology,
 * non-ingress SSCs skip the L3 IP-table lookup.
 */

#ifndef WSS_SIM_ROUTER_HPP
#define WSS_SIM_ROUTER_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/channel.hpp"
#include "sim/flit.hpp"
#include "util/rng.hpp"

namespace wss::sim {

/**
 * Optional observability instruments for one router. Default-
 * constructed handles are no-ops (a single predicted branch each), so
 * an un-instrumented router pays essentially nothing; the Simulator
 * binds them to its obs::MetricsRegistry when observability is on.
 */
struct RouterInstruments
{
    /// Cycles a head flit waited because no output VC was free.
    obs::Counter vc_alloc_failures;
    /// Losing switch-allocation requests (requesters - 1 per grant).
    obs::Counter sa_conflicts;
    /// Cycles an Active VC was passed over for lack of credits.
    obs::Counter credit_stalls;
    /// Flits forwarded through the crossbar.
    obs::Counter flits_routed;
};

/// Static configuration of one router.
struct RouterConfig
{
    /// Bidirectional ports (terminal ports first, then link ports).
    int ports = 0;
    /// Ports 0..terminal_ports-1 face terminals (ingress RC delay).
    int terminal_ports = 0;
    /// Virtual channels per port.
    int vcs = 1;
    /// Shared input-buffer capacity per port (flits).
    int buffer_per_port = 8;
    /// RC delay for packets arriving from terminals (cycles).
    int rc_delay_ingress = 1;
    /// RC delay for packets arriving from other routers (cycles).
    int rc_delay_transit = 1;
    /// VA/SA/ST pipeline depth beyond RC (cycles, >= 1).
    int pipeline_delay = 1;
    /// ECMP next-hop selection: false = oblivious (uniform random,
    /// the Booksim default), true = adaptive (most downstream
    /// credits, ties broken randomly).
    bool adaptive_routing = false;
};

/**
 * One router instance. The Network wires its ports to channels and
 * calls step() once per cycle.
 */
class Router
{
  public:
    /**
     * @param id    router id (for routing-table lookups)
     * @param cfg   static configuration
     * @param seed  RNG seed for ECMP candidate selection
     */
    Router(int id, const RouterConfig &cfg, std::uint64_t seed);

    int id() const { return id_; }
    const RouterConfig &config() const { return cfg_; }

    /**
     * Wire input port @p port to @p channel (flits arrive on
     * channel->flits, credits leave on channel->credits). Terminal
     * injection ports use the terminal's channel; pass nullptr for
     * unused ports.
     */
    void connectInput(int port, ChannelPair *channel);

    /**
     * Wire output port @p port to @p channel and declare the
     * downstream buffer capacity backing the credit count.
     */
    void connectOutput(int port, ChannelPair *channel,
                       int downstream_buffer);

    /**
     * Install the routing table: for every destination router, the
     * candidate output ports (shortest-path ECMP) in CSR form.
     * Destinations terminating here use the terminal port directly.
     *
     * @param dst_router_of_terminal  terminal id -> router id table,
     *        owned by the Network and shared by all routers
     * @param candidate_offsets  CSR offsets, one entry per router + 1
     * @param candidate_ports    CSR payload of output ports
     * @param terminal_port_of   terminal id -> local output port, or
     *        -1 when the terminal is not attached here
     */
    void installRoutes(
        const std::vector<std::int32_t> *dst_router_of_terminal,
        std::vector<std::int32_t> candidate_offsets,
        std::vector<std::int16_t> candidate_ports,
        std::vector<std::int16_t> terminal_port_of);

    /**
     * Administratively enable/disable output port @p port (fault
     * layer). Disabled ports are excluded from rebuilt routing
     * tables; flits already staged for the port keep draining so
     * wormhole state stays consistent.
     */
    void setPortEnabled(int port, bool enabled);

    /// Administrative state of output port @p port.
    bool
    portEnabled(int port) const
    {
        return port_enabled_.at(static_cast<std::size_t>(port)) != 0;
    }

    /// Attach observability instruments (pass {} to detach).
    void setInstruments(const RouterInstruments &instr)
    {
        instr_ = instr;
    }

    /// Advance one cycle: ingest flits/credits, run RC/VA/SA/ST.
    void step(Cycle now);

    /// Total flits currently buffered (for drain detection).
    std::int64_t bufferedFlits() const { return buffered_; }

    /// Flits sitting in output pipeline stages (for drain detection).
    std::int64_t
    stagedFlits() const
    {
        std::int64_t total = 0;
        for (const auto &out : outputs_)
            total += static_cast<std::int64_t>(out.stage.size());
        return total;
    }

    /// Occupancy of one input port's shared buffer (for tests).
    int portOccupancy(int port) const { return inputs_[port].occupancy; }

    /// Credits available at an output port (for tests).
    int outputCredits(int port) const { return outputs_[port].credits; }

  private:
    /// Per-VC input state machine.
    enum class VcState : std::uint8_t
    {
        Idle,
        Routing,
        WaitVc,
        Active,
    };

    struct InputVc
    {
        std::deque<Flit> queue;
        VcState state = VcState::Idle;
        Cycle rc_ready = 0;
        std::int16_t out_port = -1;
        std::int16_t out_vc = -1;
    };

    struct InputPort
    {
        ChannelPair *channel = nullptr;
        std::vector<InputVc> vcs;
        /// VC ids with non-empty queues (active set; keeps the per-
        /// cycle work proportional to traffic, not to port * VC).
        std::vector<std::int16_t> occupied;
        int occupancy = 0;
        int rr = 0; // SA round-robin cursor into occupied
    };

    struct OutputPort
    {
        ChannelPair *channel = nullptr;
        /// Extra pipeline stage modeling VA/SA/ST depth.
        std::vector<Flit> stage;
        std::vector<Cycle> stage_ready;
        /// Owning input VC (encoded port * vcs + vc) per output VC.
        std::vector<std::int32_t> vc_owner;
        int credits = 0;
        int rr_vc = 0;    // VA round-robin over output VCs
        int rr_input = 0; // SA round-robin over requesting inputs
    };

    struct Request
    {
        std::int32_t in_port;
        std::int16_t in_vc;
    };

    void ingest(Cycle now);
    void runInputStages(Cycle now);
    void arbitrateOutputs(Cycle now);
    void drainOutputStages(Cycle now);

    /// Pick the output port for a routed head flit.
    std::int16_t route(const Flit &flit);

    int id_;
    RouterConfig cfg_;
    Rng rng_;
    RouterInstruments instr_;

    std::vector<InputPort> inputs_;
    std::vector<OutputPort> outputs_;
    /// Administrative per-port state (fault layer); 1 = up.
    std::vector<char> port_enabled_;

    const std::vector<std::int32_t> *dst_router_of_terminal_ = nullptr;
    /// CSR routing table: candidates for router d live at
    /// [offsets[d], offsets[d+1]).
    std::vector<std::int32_t> route_offsets_;
    std::vector<std::int16_t> route_ports_;
    std::vector<std::int16_t> terminal_port_of_;

    /// Per-output request lists, rebuilt each cycle.
    std::vector<std::vector<Request>> requests_;
    std::vector<std::int16_t> touched_outputs_;

    std::int64_t buffered_ = 0;
};

} // namespace wss::sim

#endif // WSS_SIM_ROUTER_HPP
