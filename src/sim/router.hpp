/**
 * @file
 * Cycle-accurate virtual-channel router — paper Section VI, Fig. 20.
 *
 * Models the four-stage switch microarchitecture the paper simulates
 * with Booksim2: route computation (RC), virtual-channel allocation
 * (VA), switch allocation (SA), and switch traversal (ST). Input
 * ports hold a shared flit buffer divided into per-VC queues
 * (the paper's "shared buffer policy for all the input ports");
 * credit-based flow control tracks the downstream shared pool as an
 * aggregate credit count plus per-output-VC ownership.
 *
 * Timing: a head flit that arrives in cycle t completes RC in
 * t + rc_delay, may win VA and SA in that same cycle, and spends
 * pipeline_delay cycles in the output stage (VA/SA/ST pipeline
 * depth), so the zero-load router traversal is
 * rc_delay + pipeline_delay cycles. The RC delay differs between
 * ingress (terminal-facing) and transit inputs to model the paper's
 * proprietary routing optimization (Fig. 22): with a fixed topology,
 * non-ingress SSCs skip the L3 IP-table lookup.
 *
 * Storage and scheduling are built for throughput without changing
 * results: VC queues are intrusive lists over a network-wide
 * FlitPool, the VA/SA/ST pipeline depth is folded into each output
 * channel's flit lead (an arbitrated flit is pushed exactly once, at
 * allocation time, and arrives pipeline_delay + wire latency cycles
 * later), and per-port pending-work bitmasks (arriving flits,
 * returning credits, occupied inputs) drive both the intra-router
 * loops and the network-level active set — an idle router is never
 * stepped, a busy one only touches ports that have work. All channel latencies are
 * >= 1 cycle, so nothing a router does in cycle t is visible to any
 * other router until t+1 and the active-set step order cannot affect
 * simulation results.
 */

#ifndef WSS_SIM_ROUTER_HPP
#define WSS_SIM_ROUTER_HPP

#include <bit>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/channel.hpp"
#include "sim/flit.hpp"
#include "sim/flit_pool.hpp"
#include "util/rng.hpp"

namespace wss::sim {

/**
 * Optional observability instruments for one router. Default-
 * constructed handles are no-ops (a single predicted branch each), so
 * an un-instrumented router pays essentially nothing; the Simulator
 * binds them to its obs::MetricsRegistry when observability is on.
 */
struct RouterInstruments
{
    /// Cycles a head flit waited because no output VC was free.
    obs::Counter vc_alloc_failures;
    /// Losing switch-allocation requests (requesters - 1 per grant).
    obs::Counter sa_conflicts;
    /// Cycles an Active VC was passed over for lack of credits.
    obs::Counter credit_stalls;
    /// Flits forwarded through the crossbar.
    obs::Counter flits_routed;
};

/// Static configuration of one router.
struct RouterConfig
{
    /// Bidirectional ports (terminal ports first, then link ports).
    int ports = 0;
    /// Ports 0..terminal_ports-1 face terminals (ingress RC delay).
    int terminal_ports = 0;
    /// Virtual channels per port.
    int vcs = 1;
    /// Shared input-buffer capacity per port (flits).
    int buffer_per_port = 8;
    /// RC delay for packets arriving from terminals (cycles).
    int rc_delay_ingress = 1;
    /// RC delay for packets arriving from other routers (cycles).
    int rc_delay_transit = 1;
    /// VA/SA/ST pipeline depth beyond RC (cycles, >= 1).
    int pipeline_delay = 1;
    /// ECMP next-hop selection: false = oblivious (uniform random,
    /// the Booksim default), true = adaptive (power-of-two-choices on
    /// downstream credits).
    bool adaptive_routing = false;
};

/**
 * The Network's active set: routers with pending work, deduplicated
 * by a per-router flag. A channel push schedules a wake for the
 * consuming router at the delivery cycle (a timing-wheel slot), so a
 * router with traffic merely in flight toward it is never stepped;
 * same-cycle re-arming (a busy router keeping itself active) goes
 * through the immediate pending set. Network::step merges the
 * current wheel slot into the pending set and steps only those.
 */
class RouterScheduler
{
  public:
    /// Size for @p routers routers and wakes up to @p max_latency
    /// cycles ahead; reserves so wake() never allocates afterwards
    /// (the flag bounds the set to one entry per router).
    void
    attach(int routers, int max_latency = 1)
    {
        flags_.assign(static_cast<std::size_t>(routers), 0);
        pending_.clear();
        pending_.reserve(static_cast<std::size_t>(routers));
        run_.clear();
        run_.reserve(static_cast<std::size_t>(routers));
        const std::size_t slots = std::bit_ceil(
            static_cast<std::size_t>(max_latency) + 2);
        wheel_.assign(slots, {});
        wheel_mask_ = slots - 1;
    }

    void
    wake(std::int32_t id)
    {
        auto &flag = flags_[static_cast<std::size_t>(id)];
        if (!flag) {
            flag = 1;
            pending_.push_back(id);
        }
    }

    /// Schedule a wake for cycle @p cycle (at most max_latency ahead
    /// of the current cycle). Consecutive duplicate ids are dropped,
    /// which already collapses the common burst — one router pushing
    /// many items toward the same consumer in one cycle.
    void
    wakeAt(std::int32_t id, Cycle cycle)
    {
        auto &slot = wheel_[static_cast<std::size_t>(cycle) &
                            wheel_mask_];
        if (slot.empty() || slot.back() != id)
            slot.push_back(id);
    }

    /// Merge cycle @p now's wheel slot into the pending set, swap it
    /// into the run list (clearing flags so this cycle's pushes
    /// re-arm routers for the next cycle) and return it. Wake order
    /// is arrival order; with all channel latencies >= 1 the step
    /// order is invisible to results. Cycles must be stepped
    /// consecutively — the strict channels already require that.
    std::vector<std::int32_t> &
    beginCycle(Cycle now)
    {
        auto &slot =
            wheel_[static_cast<std::size_t>(now) & wheel_mask_];
        for (const std::int32_t id : slot)
            wake(id);
        slot.clear();
        run_.swap(pending_);
        pending_.clear();
        for (const std::int32_t id : run_)
            flags_[static_cast<std::size_t>(id)] = 0;
        return run_;
    }

  private:
    std::vector<std::int32_t> pending_;
    std::vector<std::int32_t> run_;
    std::vector<std::uint8_t> flags_;
    /// wheel_[c & mask] holds the ids to wake in cycle c.
    std::vector<std::vector<std::int32_t>> wheel_{1};
    std::size_t wheel_mask_ = 0;
};

/**
 * One router instance. The Network wires its ports to channels and
 * steps it through the scheduler whenever it has work.
 */
class Router
{
  public:
    /**
     * @param id    router id (for routing-table lookups)
     * @param cfg   static configuration
     * @param seed  RNG seed for ECMP candidate selection
     * @param pool  flit arena backing the VC queues (shared across
     *              the network; must outlive the router)
     */
    Router(int id, const RouterConfig &cfg, std::uint64_t seed,
           FlitPool *pool);

    int id() const { return id_; }
    const RouterConfig &config() const { return cfg_; }

    /// Bind the network's active-set scheduler (nullptr detaches;
    /// wakes then become no-ops for standalone stepping).
    void bindScheduler(RouterScheduler *sched) { sched_ = sched; }

    /**
     * Wire input port @p port to @p channel (flits arrive on
     * channel->flits, credits leave on channel->credits). Terminal
     * injection ports use the terminal's channel; pass nullptr for
     * unused ports.
     */
    void connectInput(int port, ChannelPair *channel);

    /**
     * Wire output port @p port to @p channel and declare the
     * downstream buffer capacity backing the credit count.
     */
    void connectOutput(int port, ChannelPair *channel,
                       int downstream_buffer);

    /**
     * Install the routing table: for every destination router, the
     * candidate output ports (shortest-path ECMP) in CSR form.
     * Destinations terminating here use the terminal port directly.
     *
     * @param dst_router_of_terminal  terminal id -> router id table,
     *        owned by the Network and shared by all routers
     * @param candidate_offsets  CSR offsets, one entry per router + 1
     * @param candidate_ports    CSR payload of output ports
     * @param terminal_port_of   terminal id -> local output port, or
     *        -1 when the terminal is not attached here
     */
    void installRoutes(
        const std::vector<std::int32_t> *dst_router_of_terminal,
        std::vector<std::int32_t> candidate_offsets,
        std::vector<std::int16_t> candidate_ports,
        std::vector<std::int16_t> terminal_port_of);

    /**
     * Administratively enable/disable output port @p port (fault
     * layer). Disabled ports are excluded from rebuilt routing
     * tables; flits already staged for the port keep draining so
     * wormhole state stays consistent.
     */
    void setPortEnabled(int port, bool enabled);

    /// Administrative state of output port @p port.
    bool
    portEnabled(int port) const
    {
        return port_enabled_.at(static_cast<std::size_t>(port)) != 0;
    }

    /// Call once after the last connectInput/connectOutput: pre-sizes
    /// every wake-wheel slot to its structural bound (one flit wake
    /// per input port plus one credit wake per output port can land
    /// on the same future cycle), so scheduling a wake never
    /// allocates — part of the cycle loop's zero-steady-state-
    /// allocation invariant.
    void
    finalizeWiring()
    {
        for (auto &slot : wake_wheel_)
            slot.reserve(2 * static_cast<std::size_t>(cfg_.ports));
    }

    /// Attach observability instruments (pass {} to detach).
    void setInstruments(const RouterInstruments &instr)
    {
        instr_ = instr;
    }

    /**
     * Advance one cycle: ingest flits/credits, run RC/VA/SA/ST.
     * @return true while the router still has pending work (buffered
     * or staged flits, or in-flight arrivals) and must be stepped
     * again next cycle.
     */
    bool step(Cycle now);

    /// A flit will arrive at input port @p port in cycle @p ready:
    /// schedule the port's pending bit and the router's wake for
    /// exactly that cycle (called on channel push).
    void
    noteIncomingFlit(int port, Cycle ready)
    {
        wake_wheel_[static_cast<std::size_t>(ready) & wake_mask_]
            .push_back(port);
        if (sched_)
            sched_->wakeAt(id_, ready);
    }

    /// A credit will arrive at output port @p port in cycle @p ready:
    /// the wheel entry itself carries it (one entry = one credit,
    /// applied to the port's count when the slot drains).
    void
    noteIncomingCredit(int port, Cycle ready)
    {
        wake_wheel_[static_cast<std::size_t>(ready) & wake_mask_]
            .push_back(-(port + 1));
        if (sched_)
            sched_->wakeAt(id_, ready);
    }

    /// Total flits currently buffered (for drain detection).
    std::int64_t bufferedFlits() const { return buffered_; }

    /// Occupancy of one input port's shared buffer (for tests).
    int portOccupancy(int port) const { return inputs_[port].occupancy; }

    /// Credits available at an output port (for tests).
    int outputCredits(int port) const { return outputs_[port].credits; }

  private:
    /// Per-VC input state machine.
    enum class VcState : std::uint8_t
    {
        Idle,
        Routing,
        WaitVc,
        Active,
    };

    /// Packed to 32 bytes (two per cache line): the RC/VA and SA
    /// scans hit these at random VC offsets, so struct size directly
    /// sets their miss rate once ports * vcs outgrows the caches.
    struct InputVc
    {
        /// Intrusive FIFO through the flit pool.
        FlitPool::Index q_head = FlitPool::kNil;
        FlitPool::Index q_tail = FlitPool::kNil;
        Cycle rc_ready = 0;
        /// Destination of the packet in flight, cached when the head
        /// flit is first seen (route() inputs are per-packet
        /// invariants).
        std::int32_t dst_terminal = -1;
        std::int32_t dst_router = -1;
        std::int16_t out_port = -1;
        std::int16_t out_vc = -1;
        /// Back-index into the port's occupied list while queued.
        std::int16_t occ_pos = -1;
        VcState state = VcState::Idle;
    };
    static_assert(sizeof(InputVc) == 32);

    struct InputPort
    {
        ChannelPair *channel = nullptr;
        std::vector<InputVc> vcs;
        /// VC ids with non-empty queues (active set; keeps the per-
        /// cycle work proportional to traffic, not to port * VC).
        std::vector<std::int16_t> occupied;
        /// Occupied VCs not yet in the Active state: exactly the set
        /// the RC/VA state machines must visit. Processing sorts by
        /// occ_pos, reproducing the occupied-order scan without
        /// walking the (mostly Active) occupied list. Invariant:
        /// pending is a subset of occupied — a non-Active VC cannot
        /// be dequeued, so membership only ends through VA success.
        std::vector<std::int16_t> pending;
        /// VCs currently in the Active state. Zero means the SA
        /// nomination walk cannot find a candidate and is skipped
        /// outright (the common case while a lone packet sits in its
        /// RC delay at low load); the walk leaves no trace when it
        /// nominates nothing, so skipping it is invisible.
        int active_vcs = 0;
        int occupancy = 0;
        int rr = 0; // SA round-robin cursor into occupied
    };

    struct OutputPort
    {
        ChannelPair *channel = nullptr;
        /// Owning input VC (encoded port * vcs + vc) per output VC.
        std::vector<std::int32_t> vc_owner;
        int credits = 0;
        int rr_vc = 0;    // VA round-robin over output VCs
        int rr_input = 0; // SA round-robin over requesting inputs
    };

    struct Request
    {
        std::int32_t in_port;
        std::int16_t in_vc;
    };

    void ingest(Cycle now);
    void runInputStages(Cycle now);
    void arbitrateOutputs(Cycle now);

    /// Ensure the wake wheel spans @p latency cycles of look-ahead
    /// (called while wiring, before any traffic exists).
    void
    growWakeWheel(int latency)
    {
        const std::size_t slots =
            std::bit_ceil(static_cast<std::size_t>(latency) + 2);
        if (slots > wake_wheel_.size()) {
            wake_wheel_.resize(slots);
            wake_mask_ = slots - 1;
        }
    }

    /// Pick the output port for a routed head flit.
    std::int16_t route(std::int32_t dst_terminal,
                       std::int32_t dst_router);

    int id_;
    RouterConfig cfg_;
    Rng rng_;
    RouterInstruments instr_;
    FlitPool *pool_;
    RouterScheduler *sched_ = nullptr;

    std::vector<InputPort> inputs_;
    std::vector<OutputPort> outputs_;
    /// Administrative per-port state (fault layer); 1 = up.
    std::vector<char> port_enabled_;

    /// Pending-work bitmasks, one bit per port: flits arriving this
    /// cycle on an input channel (materialized from the wake wheel at
    /// the top of step() and fully consumed by ingest) and inputs
    /// with occupied VCs. busy empty <=> the router may leave the
    /// active set (arrivals re-wake it through the scheduler's wheel,
    /// and arbitrated flits leave through their output channel at
    /// push time — the VA/SA/ST pipeline depth rides on the channel's
    /// flit lead, so there is no staging ring to drain). Credits need
    /// no mask at all: each wake-wheel entry is one credit, applied
    /// directly when its slot drains.
    std::vector<std::uint64_t> in_flit_mask_;
    std::vector<std::uint64_t> busy_mask_;

    /// Delivery-cycle wake wheel: wake_wheel_[c & mask] lists the
    /// ports with an arrival in cycle c — port for a flit,
    /// -(port + 1) for a credit. Sized at wiring time to cover the
    /// longest attached channel.
    std::vector<std::vector<std::int32_t>> wake_wheel_{1};
    std::size_t wake_mask_ = 0;

    const std::vector<std::int32_t> *dst_router_of_terminal_ = nullptr;
    /// CSR routing table: candidates for router d live at
    /// [offsets[d], offsets[d+1]).
    std::vector<std::int32_t> route_offsets_;
    std::vector<std::int16_t> route_ports_;
    std::vector<std::int16_t> terminal_port_of_;

    /// Per-output request lists, rebuilt each cycle.
    std::vector<std::vector<Request>> requests_;
    std::vector<std::int16_t> touched_outputs_;

    std::int64_t buffered_ = 0;
};

/// Push a flit into a channel and schedule its consumer's wake (a
/// router input port, or a terminal's ejection-pending bit) for the
/// delivery cycle.
inline void
channelPushFlit(ChannelPair &ch, Cycle now, const Flit &flit)
{
    ch.flits.push(now, flit);
    const Cycle ready = now + ch.flits.latency();
    if (ch.flit_sink)
        ch.flit_sink->noteIncomingFlit(ch.flit_sink_port, ready);
    else if (ch.eject_wheel)
        (*ch.eject_wheel)[static_cast<std::size_t>(ready) &
                          ch.eject_wheel_mask]
            .push_back(ch.eject_terminal);
}

/// Push a credit toward a channel's consumer for delivery after the
/// credit latency. Fabric credits never enter the CreditLine: a
/// router-consumed credit is a wake-wheel entry that bumps the output
/// port's count at its arrival cycle, and a terminal-injection credit
/// is an entry in the network's credit wheel (one entry = one
/// credit). Only standalone channels (no sink wired) use the line.
inline void
channelPushCredit(ChannelPair &ch, Cycle now)
{
    if (ch.credit_sink) {
        ch.credit_sink->noteIncomingCredit(
            ch.credit_sink_port, now + ch.credits.latency());
    } else if (ch.credit_wheel) {
        (*ch.credit_wheel)[static_cast<std::size_t>(
                               now + ch.credits.latency()) &
                           ch.credit_wheel_mask]
            .push_back(ch.credit_terminal);
    } else {
        ch.credits.push(now); // standalone use: drained lazily
    }
}

} // namespace wss::sim

#endif // WSS_SIM_ROUTER_HPP
