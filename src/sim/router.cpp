#include "sim/router.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace wss::sim {

Router::Router(int id, const RouterConfig &cfg, std::uint64_t seed)
    : id_(id), cfg_(cfg), rng_(seed)
{
    if (cfg.ports < 1 || cfg.terminal_ports < 0 ||
        cfg.terminal_ports > cfg.ports)
        fatal("Router: bad port configuration");
    if (cfg.vcs < 1)
        fatal("Router: need at least one VC");
    if (cfg.buffer_per_port < 1)
        fatal("Router: need at least one buffer slot per port");
    if (cfg.pipeline_delay < 1)
        fatal("Router: pipeline delay must be >= 1 cycle");
    if (cfg.rc_delay_ingress < 0 || cfg.rc_delay_transit < 0)
        fatal("Router: RC delays must be non-negative");

    inputs_.resize(cfg.ports);
    for (auto &in : inputs_)
        in.vcs.resize(cfg.vcs);
    port_enabled_.assign(static_cast<std::size_t>(cfg.ports), 1);
    outputs_.resize(cfg.ports);
    for (auto &out : outputs_)
        out.vc_owner.assign(cfg.vcs, -1);
    requests_.resize(cfg.ports);
}

void
Router::connectInput(int port, ChannelPair *channel)
{
    inputs_.at(port).channel = channel;
}

void
Router::connectOutput(int port, ChannelPair *channel,
                      int downstream_buffer)
{
    auto &out = outputs_.at(port);
    out.channel = channel;
    out.credits = downstream_buffer;
}

void
Router::setPortEnabled(int port, bool enabled)
{
    port_enabled_.at(static_cast<std::size_t>(port)) = enabled ? 1 : 0;
}

void
Router::installRoutes(
    const std::vector<std::int32_t> *dst_router_of_terminal,
    std::vector<std::int32_t> candidate_offsets,
    std::vector<std::int16_t> candidate_ports,
    std::vector<std::int16_t> terminal_port_of)
{
    dst_router_of_terminal_ = dst_router_of_terminal;
    route_offsets_ = std::move(candidate_offsets);
    route_ports_ = std::move(candidate_ports);
    terminal_port_of_ = std::move(terminal_port_of);
}

std::int16_t
Router::route(const Flit &flit)
{
    const std::int32_t dst_router = (*dst_router_of_terminal_)[flit.dst];
    if (dst_router == id_) {
        const std::int16_t port = terminal_port_of_[flit.dst];
        if (port < 0)
            panic("Router ", id_, ": destination terminal ", flit.dst,
                  " not attached here");
        return port;
    }
    const std::int32_t begin = route_offsets_[dst_router];
    const std::int32_t count = route_offsets_[dst_router + 1] - begin;
    if (count == 0)
        panic("Router ", id_, ": no route toward router ", dst_router);
    if (count == 1)
        return route_ports_[begin];
    if (!cfg_.adaptive_routing) {
        return route_ports_[begin + static_cast<std::int32_t>(
                                        rng_.nextBelow(count))];
    }
    // Adaptive: power-of-two-choices on downstream credits. Sampling
    // two random candidates and keeping the less congested one gets
    // most of the balancing benefit while avoiding the herding that
    // a fully greedy pick suffers (every ingress chasing the same
    // momentarily-emptiest spine).
    const std::int16_t a =
        route_ports_[begin +
                     static_cast<std::int32_t>(rng_.nextBelow(count))];
    const std::int16_t b =
        route_ports_[begin +
                     static_cast<std::int32_t>(rng_.nextBelow(count))];
    return outputs_[a].credits >= outputs_[b].credits ? a : b;
}

void
Router::ingest(Cycle now)
{
    for (std::size_t port = 0; port < inputs_.size(); ++port) {
        auto &in = inputs_[port];
        if (!in.channel)
            continue;
        if (auto flit = in.channel->flits.pop(now)) {
            auto &vc = in.vcs[flit->vc];
            if (vc.queue.empty())
                in.occupied.push_back(flit->vc);
            vc.queue.push_back(*flit);
            ++in.occupancy;
            ++buffered_;
            if (in.occupancy > cfg_.buffer_per_port)
                panic("Router ", id_, " port ", port,
                      ": shared buffer overflow (credit protocol bug)");
        }
    }
    for (auto &out : outputs_) {
        if (!out.channel)
            continue;
        while (out.channel->credits.pop(now))
            ++out.credits;
    }
}

void
Router::runInputStages(Cycle now)
{
    for (std::size_t port = 0; port < inputs_.size(); ++port) {
        auto &in = inputs_[port];
        if (in.occupied.empty())
            continue;

        // RC / VA state machines for every occupied VC. Active VCs
        // (the common case under load) are skipped without touching
        // their queues.
        for (std::int16_t vc_id : in.occupied) {
            auto &vc = in.vcs[vc_id];
            if (vc.state == VcState::Active)
                continue;
            if (vc.state == VcState::Idle) {
                if (!vc.queue.front().head)
                    panic("Router ", id_, ": body flit at the head of "
                          "an idle VC");
                const int rc = static_cast<int>(port) <
                                       cfg_.terminal_ports
                                   ? cfg_.rc_delay_ingress
                                   : cfg_.rc_delay_transit;
                vc.state = VcState::Routing;
                vc.rc_ready = now + rc;
            }
            if (vc.state == VcState::Routing && now >= vc.rc_ready) {
                vc.out_port = route(vc.queue.front());
                vc.state = VcState::WaitVc;
            }
            if (vc.state == VcState::WaitVc) {
                auto &out = outputs_[vc.out_port];
                // Claim a free output VC, round-robin.
                for (int i = 0; i < cfg_.vcs; ++i) {
                    const int cand = (out.rr_vc + i) % cfg_.vcs;
                    if (out.vc_owner[cand] < 0) {
                        out.vc_owner[cand] =
                            static_cast<std::int32_t>(port) * cfg_.vcs +
                            vc_id;
                        out.rr_vc = (cand + 1) % cfg_.vcs;
                        vc.out_vc = static_cast<std::int16_t>(cand);
                        vc.state = VcState::Active;
                        break;
                    }
                }
                if (vc.state == VcState::WaitVc)
                    instr_.vc_alloc_failures.inc();
            }
        }

        // SA stage, input side: nominate one Active VC with a flit
        // and downstream credit, round-robin over the occupied set.
        const int n = static_cast<int>(in.occupied.size());
        for (int i = 0; i < n; ++i) {
            const int slot = (in.rr + i) % n;
            const std::int16_t vc_id = in.occupied[slot];
            auto &vc = in.vcs[vc_id];
            if (vc.state != VcState::Active || vc.queue.empty())
                continue;
            if (outputs_[vc.out_port].credits <= 0) {
                instr_.credit_stalls.inc();
                continue;
            }
            auto &reqs = requests_[vc.out_port];
            if (reqs.empty())
                touched_outputs_.push_back(vc.out_port);
            reqs.push_back({static_cast<std::int32_t>(port), vc_id});
            in.rr = (slot + 1) % n;
            break;
        }
    }
}

void
Router::arbitrateOutputs(Cycle now)
{
    for (std::int16_t out_port : touched_outputs_) {
        auto &out = outputs_[out_port];
        auto &reqs = requests_[out_port];

        // Output side of SA: round-robin over requesting inputs.
        int winner = 0;
        int best_rank = cfg_.ports;
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            const int rank =
                (reqs[i].in_port - out.rr_input + cfg_.ports) %
                cfg_.ports;
            if (rank < best_rank) {
                best_rank = rank;
                winner = static_cast<int>(i);
            }
        }
        if (reqs.size() > 1)
            instr_.sa_conflicts.inc(reqs.size() - 1);
        const Request req = reqs[winner];
        reqs.clear();
        out.rr_input = (req.in_port + 1) % cfg_.ports;

        auto &in = inputs_[req.in_port];
        auto &vc = in.vcs[req.in_vc];
        Flit flit = vc.queue.front();
        vc.queue.pop_front();
        --in.occupancy;
        --buffered_;

        // Return the freed buffer slot upstream.
        if (in.channel)
            in.channel->credits.push(now, {req.in_vc, flit.tail});

        if (vc.queue.empty()) {
            auto it = std::find(in.occupied.begin(), in.occupied.end(),
                                req.in_vc);
            *it = in.occupied.back();
            in.occupied.pop_back();
        }

        flit.vc = vc.out_vc;
        ++flit.hops;

        if (flit.tail) {
            out.vc_owner[vc.out_vc] = -1;
            vc.state = VcState::Idle;
            vc.out_port = -1;
            vc.out_vc = -1;
        }

        instr_.flits_routed.inc();
        --out.credits;
        out.stage.push_back(flit);
        out.stage_ready.push_back(now + cfg_.pipeline_delay);
    }
    touched_outputs_.clear();
}

void
Router::drainOutputStages(Cycle now)
{
    for (auto &out : outputs_) {
        if (out.stage.empty() || out.stage_ready.front() > now)
            continue;
        if (!out.channel)
            panic("Router ", id_, ": flit routed to an unwired port");
        out.channel->flits.push(now, out.stage.front());
        out.stage.erase(out.stage.begin());
        out.stage_ready.erase(out.stage_ready.begin());
    }
}

void
Router::step(Cycle now)
{
    ingest(now);
    runInputStages(now);
    arbitrateOutputs(now);
    drainOutputStages(now);
}

} // namespace wss::sim
